// Benchmarks that regenerate each table/figure of the paper's evaluation
// (section 4). They run a scaled frame (40 simulated seconds, 10^6
// objects) so `go test -bench=.` completes in minutes; cmd/elbench runs
// the full 500 s / 10^7-object frame and EXPERIMENTS.md records the
// resulting numbers against the paper's.
//
// Reported metrics use the figures' units: blocks (disk space), writes/s
// (log bandwidth), bytes (memory), oid distance (flush locality).
package ellog

import (
	"testing"
)

// benchOptions is the scaled frame shared by the figure benchmarks.
func benchOptions(mixes ...float64) ExperimentOptions {
	if len(mixes) == 0 {
		mixes = []float64{0.05, 0.40}
	}
	return ExperimentOptions{
		Seed:       1,
		Runtime:    40 * Second,
		NumObjects: 1_000_000,
		Mixes:      mixes,
	}
}

// BenchmarkFig4DiskSpace regenerates Figure 4: minimum log disk space
// versus transaction mix for FW and EL (recirculation off).
func BenchmarkFig4DiskSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := Fig456(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		p5, p40 := points[0], points[1]
		b.ReportMetric(float64(p5.FWBlocks), "fw-blocks@5%")
		b.ReportMetric(float64(p5.ELBlocks), "el-blocks@5%")
		b.ReportMetric(float64(p5.FWBlocks)/float64(p5.ELBlocks), "space-ratio@5%")
		b.ReportMetric(float64(p40.FWBlocks)/float64(p40.ELBlocks), "space-ratio@40%")
	}
}

// BenchmarkFig5Bandwidth regenerates Figure 5: log disk bandwidth versus
// transaction mix at the Figure-4 minimum sizes.
func BenchmarkFig5Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := Fig456(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		p5, p40 := points[0], points[1]
		b.ReportMetric(p5.FWBW, "fw-writes/s@5%")
		b.ReportMetric(p5.ELBW, "el-writes/s@5%")
		b.ReportMetric(100*(p5.ELBW/p5.FWBW-1), "bw-increase-%@5%")
		b.ReportMetric(100*(p40.ELBW/p40.FWBW-1), "bw-increase-%@40%")
	}
}

// BenchmarkFig6Memory regenerates Figure 6: peak LOT+LTT memory versus
// transaction mix at the Figure-4 minimum sizes.
func BenchmarkFig6Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := Fig456(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		p5, p40 := points[0], points[1]
		b.ReportMetric(p5.FWMemPeak, "fw-bytes@5%")
		b.ReportMetric(p5.ELMemPeak, "el-bytes@5%")
		b.ReportMetric(p40.ELMemPeak, "el-bytes@40%")
	}
}

// BenchmarkFig7BandwidthVsSpace regenerates Figure 7: EL bandwidth as the
// recirculating last generation shrinks from the no-recirculation minimum
// to its recirculating minimum.
func BenchmarkFig7BandwidthVsSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig7(benchOptions(0.05))
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		b.ReportMetric(float64(r.Gen0), "gen0-blocks")
		b.ReportMetric(float64(r.NoRecircG1), "gen1-max-blocks")
		b.ReportMetric(float64(r.MinRecircG1), "gen1-min-blocks")
		b.ReportMetric(first.TotalBW, "writes/s@max-space")
		b.ReportMetric(last.TotalBW, "writes/s@min-space")
	}
}

// BenchmarkScarceFlushBandwidth regenerates the section-4 text experiment:
// flush transfers at 45 ms (222/s capacity vs 210 updates/s), recirculation
// keeping unflushed updates alive, and the locality gain under backlog.
func BenchmarkScarceFlushBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Scarce(benchOptions(0.05))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.TotalBlocks), "el-blocks")
		b.ReportMetric(r.TotalBW, "writes/s")
		b.ReportMetric(r.AvgDist, "flush-oid-dist")
		b.ReportMetric(r.BaselineDist, "flush-oid-dist-25ms")
	}
}

// BenchmarkHeadlineRatios regenerates the paper's summary numbers at the
// 5% mix (space /3.6 and /4.4; bandwidth +11% and +12%).
func BenchmarkHeadlineRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := Headline(benchOptions(0.05))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.SpaceFactorNR, "space-factor-norecirc")
		b.ReportMetric(h.SpaceFactorR, "space-factor-recirc")
		b.ReportMetric(h.BWIncreaseNR, "bw-increase-%-norecirc")
		b.ReportMetric(h.BWIncreaseR, "bw-increase-%-recirc")
	}
}

// BenchmarkSimulatorThroughputEL measures raw simulator speed: simulated
// seconds per wall second for the paper's EL configuration.
func BenchmarkSimulatorThroughputEL(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := PaperDefaults(0.05)
		cfg.LM = Params{Mode: ModeEphemeral, GenSizes: []int{18, 16}}
		cfg.Workload.Runtime = 20 * Second
		cfg.Workload.NumObjects = 1_000_000
		cfg.Flush.NumObjects = 1_000_000
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughputFW is the FW counterpart.
func BenchmarkSimulatorThroughputFW(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := PaperDefaults(0.05)
		cfg.LM = Params{Mode: ModeFirewall, GenSizes: []int{123}}
		cfg.Workload.Runtime = 20 * Second
		cfg.Workload.NumObjects = 1_000_000
		cfg.Flush.NumObjects = 1_000_000
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSinglePassRecovery measures recovery work on a crashed EL log
// at the paper's minimum sizes, reporting the modeled recovery time (the
// paper argues "recovery in less than a second may be feasible").
func BenchmarkSinglePassRecovery(b *testing.B) {
	cfg := PaperDefaults(0.05)
	cfg.LM = Params{Mode: ModeEphemeral, GenSizes: []int{18, 16}, Recirculate: true}
	cfg.Workload.Runtime = 60 * Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000
	live, err := BuildLive(cfg)
	if err != nil {
		b.Fatal(err)
	}
	live.Setup.Eng.Run(45 * Second) // crash mid-run
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recovered, res, err := Recover(live.Setup.Dev, live.Setup.DB, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := VerifyRecovery(recovered, live.Gen.Oracle()); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.BlocksRead), "blocks-read")
			b.ReportMetric(res.EstimatedTime.Seconds()*1000, "modeled-recovery-ms")
		}
	}
}
