// recoverydrill crashes an ephemeral-logging database at several points
// mid-workload and proves that single-pass redo recovery restores exactly
// the durably committed state each time — including while records are
// mid-forward and mid-recirculation. It also shows the paper's recovery
// argument in numbers: the whole log fits in a handful of blocks, so
// recovery reads it in well under a second.
package main

import (
	"fmt"
	"log"

	"ellog"
)

func main() {
	fmt.Println("crash/recovery drill on EL [18,10] with recirculation, 5% long mix")
	fmt.Println()
	fmt.Printf("%-12s %12s %12s %10s %10s %14s\n",
		"crash at", "committed", "blocks read", "winners", "applied", "modeled time")

	for _, crashAt := range []ellog.Time{
		5 * ellog.Second,
		20 * ellog.Second,
		45 * ellog.Second,
		80 * ellog.Second,
	} {
		cfg := ellog.PaperDefaults(0.05)
		cfg.LM = ellog.Params{
			Mode:        ellog.ModeEphemeral,
			GenSizes:    []int{18, 10},
			Recirculate: true,
		}
		cfg.Workload.Runtime = crashAt + ellog.Second
		cfg.Workload.NumObjects = 1_000_000
		cfg.Flush.NumObjects = 1_000_000

		live, err := ellog.BuildLive(cfg)
		if err != nil {
			log.Fatal(err)
		}
		live.Setup.Eng.Run(crashAt) // the crash: the world stops here

		recovered, res, err := ellog.Recover(live.Setup.Dev, live.Setup.DB, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := ellog.VerifyRecovery(recovered, live.Gen.Oracle()); err != nil {
			log.Fatalf("recovery diverged from committed state: %v", err)
		}
		fmt.Printf("%-12v %12d %12d %10d %10d %14v\n",
			crashAt, live.Gen.Stats().Committed, res.BlocksRead,
			res.Winners, res.Applied, res.EstimatedTime)
	}

	fmt.Println()
	fmt.Println("every crash point verified: recovered state == durably committed state.")
	fmt.Println("a 28-block log reads in ~0.4s — versus ~1.8s for the firewall's 123")
	fmt.Println("blocks — which is the paper's 'much faster recovery after a crash'.")
}
