// adaptivetuning demonstrates the extension the paper wishes for in its
// concluding remarks: "Ideally, we would like an adaptable version of EL
// that dynamically chooses the number and sizes of generations itself."
//
// The log starts with absurdly small generations. The controller watches
// kill pressure and garbage-age statistics each epoch, grows the
// generation that is actually at fault (a too-small generation 0 floods
// its elder with still-hot records), and later trims slack. No DBA, no
// offline search — and after convergence, no more killed transactions.
package main

import (
	"fmt"
	"log"

	"ellog"
	"ellog/internal/adaptive"
	"ellog/internal/harness"
)

func main() {
	cfg := ellog.PaperDefaults(0.05)
	cfg.LM = ellog.Params{Mode: ellog.ModeEphemeral, GenSizes: []int{6, 6}}
	cfg.Workload.Runtime = 300 * ellog.Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000

	live, err := harness.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctl := adaptive.Attach(live.Setup.Eng, live.Setup.LM, adaptive.Config{})

	fmt.Println("paper workload (5% long txs) on a log that starts at [6 6] blocks:")
	fmt.Printf("%8s %14s %10s %10s\n", "time", "sizes", "killed", "resizes")
	var lastKilled uint64
	for t := 30 * ellog.Second; t <= cfg.Workload.Runtime; t += 30 * ellog.Second {
		live.Setup.Eng.Run(t)
		ws := live.Gen.Stats()
		fmt.Printf("%8v %14v %10d %10d\n", t, ctl.Sizes(), ws.Killed-lastKilled, len(ctl.Decisions()))
		lastKilled = ws.Killed
	}

	total := 0
	for _, s := range ctl.Sizes() {
		total += s
	}
	fmt.Println()
	fmt.Printf("converged to %v (total %d blocks; the offline search minimum is ~34)\n", ctl.Sizes(), total)
	fmt.Printf("grew %d blocks, reclaimed %d; final run insufficient: %v\n",
		ctl.Grown(), ctl.Shrunk(), live.Setup.LM.Stats().Insufficient())

	// The paper's other deliverable still holds under resizing: crash now
	// and recover exactly the committed state.
	recovered, res, err := ellog.Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := ellog.VerifyRecovery(recovered, live.Gen.Oracle()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash at %v recovered losslessly (%d blocks read, modeled %v)\n",
		live.Setup.Eng.Now(), res.BlocksRead, res.EstimatedTime)
}
