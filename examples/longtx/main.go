// longtx demonstrates the behaviour the paper's introduction motivates:
// transactions of widely varying lifetimes sharing one log. A single
// very-long-lived transaction (think: a report or bulk load running for
// minutes among sub-second OLTP traffic) survives in a small ephemeral log
// because its records recirculate in the last generation — while the
// firewall discipline, given the same disk budget, kills it.
//
// This example drives the logging manager directly through the public API
// rather than through the workload generator.
package main

import (
	"fmt"
	"log"

	"ellog"
)

// run simulates 2000 short transactions (one every 20 ms) around one
// transaction that stays alive the whole time, on a 12-block log budget.
func run(p ellog.Params) (killed bool, stats ellog.Stats) {
	// Flushing is deliberately scarce (one drive, 30 ms per object, versus
	// 50 commits/s): committed-but-unflushed updates pile up and flow into
	// the last generation, making its head sweep continuously — the
	// situation where recirculation earns its keep.
	setup, err := ellog.NewSetup(7, p, ellog.FlushConfig{
		Drives: 1, Transfer: 30 * ellog.Millisecond, NumObjects: 1_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	lm := setup.LM
	lm.SetKillHandler(func(tid ellog.TxID) {
		if tid == 1 {
			killed = true
		}
	})

	// The long transaction: writes a handful of records early, then stays
	// active while the world churns.
	lm.Begin(1)
	for i := 0; i < 3; i++ {
		lm.WriteData(1, ellog.OID(100+i), 100)
	}

	for i := 0; i < 2000; i++ {
		tid := ellog.TxID(1000 + i)
		lm.Begin(tid)
		lm.WriteData(tid, ellog.OID(10_000+i), 100)
		lm.Commit(tid, nil)
		setup.Eng.Run(setup.Eng.Now() + 20*ellog.Millisecond)
	}

	if !killed {
		lm.Commit(1, nil)
		lm.Quiesce()
		setup.Eng.Run(setup.Eng.Now() + 10*ellog.Second)
	}
	return killed, lm.Stats()
}

func main() {
	budgets := []struct {
		name string
		p    ellog.Params
	}{
		{"FW, 12 blocks", ellog.Params{
			Mode: ellog.ModeFirewall, GenSizes: []int{12}}},
		{"EL 6+6, no recirculation", ellog.Params{
			Mode: ellog.ModeEphemeral, GenSizes: []int{6, 6}}},
		{"EL 6+6, recirculation", ellog.Params{
			Mode: ellog.ModeEphemeral, GenSizes: []int{6, 6}, Recirculate: true}},
	}
	fmt.Println("one 40-second transaction among 20ms OLTP traffic, 12-block log budget:")
	fmt.Println()
	for _, b := range budgets {
		killed, st := run(b.p)
		verdict := "long transaction SURVIVED"
		if killed {
			verdict = "long transaction KILLED"
		}
		fmt.Printf("%-28s %s\n", b.name+":", verdict)
		fmt.Printf("%-28s %.1f writes/s, %d forwarded, %d recirculated\n",
			"", st.TotalBandwidth, st.Forwarded, st.Recirculated)
	}
	fmt.Println()
	fmt.Println("recirculation lets the last generation hold records of arbitrarily")
	fmt.Println("long transactions in bounded space, at a small bandwidth premium —")
	fmt.Println("the behaviour behind Figure 7 of the paper.")
}
