// Quickstart: run the paper's headline configuration — ephemeral logging
// with two generations at its minimum disk budget — against the section 4
// workload, and print what the paper measures: disk space, log bandwidth,
// and LOT/LTT memory.
package main

import (
	"fmt"
	"log"

	"ellog"
)

func main() {
	// The paper's experimental frame: 100 transactions per second for 500
	// simulated seconds, 5% of them long-lived (10 s), over 10^7 objects,
	// flushing committed updates through 10 disk drives.
	cfg := ellog.PaperDefaults(0.05)

	// Shrink the frame so the example finishes in well under a second of
	// wall time; the shapes are unchanged.
	cfg.Workload.Runtime = 60 * ellog.Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000

	// Ephemeral logging with two generations at the minimum sizes the
	// paper reports (18 + 16 blocks, recirculation off).
	cfg.LM = ellog.Params{
		Mode:     ellog.ModeEphemeral,
		GenSizes: []int{18, 16},
	}

	res, err := ellog.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.LM)
	fmt.Printf("\n%d of %d transactions committed; %d records forwarded to generation 1\n",
		res.Workload.Committed, res.Workload.Started, res.LM.Forwarded)
	if res.Insufficient() {
		fmt.Println("the disk budget was too small for this workload")
	} else {
		fmt.Println("the 34-block log sustained the workload with no kills —")
		fmt.Println("the firewall discipline needs ~123 blocks for the same guarantee")
	}
}
