// oltpmix compares ephemeral logging against the firewall baseline across
// transaction mixes, the way the paper's Figures 4 and 5 motivate: an
// order-entry style system where most transactions are short interactive
// updates but a growing minority are long-running batch jobs.
//
// For each mix the example searches the minimum disk budget each technique
// needs to avoid killing transactions, then reports the space ratio and
// the bandwidth cost EL pays for it.
package main

import (
	"fmt"
	"log"

	"ellog"
)

func main() {
	fmt.Println("minimum log disk budget, EL vs FW (no transaction kills allowed)")
	fmt.Printf("%-22s %10s %16s %10s %12s\n", "workload", "FW blocks", "EL blocks", "space", "bandwidth")

	for _, mix := range []float64{0.05, 0.20, 0.40} {
		cfg := ellog.PaperDefaults(mix)
		// A quick frame: 40 simulated seconds, 10^6 objects.
		cfg.Workload.Runtime = 40 * ellog.Second
		cfg.Workload.NumObjects = 1_000_000
		cfg.Flush.NumObjects = 1_000_000

		fwBlocks, fwRun, err := ellog.MinFirewall(cfg, 192)
		if err != nil {
			log.Fatal(err)
		}
		el, err := ellog.MinTwoGen(cfg, false)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%.0f%% long (10s) txs", mix*100)
		split := fmt.Sprintf("%d (%d+%d)", el.Total, el.Gen0, el.Gen1)
		fmt.Printf("%-22s %10d %16s %9.1fx %+11.0f%%\n",
			label, fwBlocks, split,
			float64(fwBlocks)/float64(el.Total),
			100*(el.Run.LM.TotalBandwidth/fwRun.LM.TotalBandwidth-1))
	}

	fmt.Println()
	fmt.Println("reading the table: EL's space advantage is largest when long")
	fmt.Println("transactions are rare, and it pays for the savings with extra log")
	fmt.Println("bandwidth that grows with the long fraction — Figures 4 and 5.")
}
