// Package ellog is a Go reproduction of "Performance Evaluation of
// Ephemeral Logging" (John S. Keen and William J. Dally, SIGMOD 1993).
//
// Ephemeral logging (EL) manages a database log on disk as a chain of
// fixed-size circular queues ("generations"). New log records enter the
// tail of generation 0; records that must still be retained when they
// reach the head of generation i are forwarded to generation i+1 (or
// recirculated within the last generation), while garbage records are
// simply passed over. Committed updates are continuously flushed to a
// stable database so that their log records become garbage — no
// checkpoints, and no aborting of long transactions as eagerly as the
// traditional firewall (FW) discipline.
//
// This package is the public facade over the full simulation stack:
//
//   - internal/sim: a deterministic discrete-event engine;
//   - internal/core: the EL logging manager (generations, cells, LOT and
//     LTT tables, forwarding, recirculation) and the FW baseline;
//   - internal/blockdev, internal/flushdisk, internal/statedb: the disk
//     models and the stable database;
//   - internal/workload: the paper's transaction model;
//   - internal/recovery: single-pass redo recovery from a crash image;
//   - internal/search: minimum-disk-space searches;
//   - internal/experiments: drivers that regenerate every figure of the
//     paper's evaluation.
//
// Quick start:
//
//	cfg := ellog.PaperDefaults(0.05)
//	cfg.LM = ellog.Params{Mode: ellog.ModeEphemeral, GenSizes: []int{18, 16}}
//	res, err := ellog.Run(cfg)
//	fmt.Println(res.LM)
package ellog

import (
	"ellog/internal/blockdev"
	"ellog/internal/config"
	"ellog/internal/core"
	"ellog/internal/experiments"
	"ellog/internal/harness"
	"ellog/internal/logrec"
	"ellog/internal/recovery"
	"ellog/internal/search"
	"ellog/internal/sim"
	"ellog/internal/statedb"
	"ellog/internal/workload"
)

// Core model types.
type (
	// Time is simulated time in microseconds.
	Time = sim.Time
	// Mode selects ephemeral logging or the firewall baseline.
	Mode = core.Mode
	// Params configures the logging manager (generation sizes,
	// recirculation, block geometry, memory model).
	Params = core.Params
	// FlushConfig sizes the flush disk array.
	FlushConfig = core.FlushConfig
	// Stats is the logging manager's measurement snapshot.
	Stats = core.Stats
	// Manager is the logging manager itself, for callers that drive
	// transactions directly rather than through a workload generator.
	Manager = core.Manager
	// Setup bundles a manager with its substrate.
	Setup = core.Setup

	// TxID, OID and LSN identify transactions, objects and log records.
	TxID = logrec.TxID
	OID  = logrec.OID
	LSN  = logrec.LSN

	// TxType and Mix describe the workload's transaction distribution.
	TxType = workload.TxType
	Mix    = workload.Mix
	// WorkloadConfig parameterizes the generator.
	WorkloadConfig = workload.Config

	// Config is a complete simulation configuration; Result its summary.
	Config = harness.Config
	Result = harness.Result
	// Live exposes a running simulation's components (for crash drills).
	Live = harness.Live

	// DB is the stable version of the database.
	DB = statedb.DB
	// Device is the simulated log disk.
	Device = blockdev.Device

	// RecoveryResult describes a single-pass recovery.
	RecoveryResult = recovery.Result

	// SimConfig is the JSON-serializable run description used by cmd/elsim.
	SimConfig = config.SimConfig

	// ExperimentOptions scales the paper's experimental frame.
	ExperimentOptions = experiments.Options
	// MixPoint, Fig7Result, ScarceResult and HeadlineResult carry the
	// regenerated figures.
	MixPoint       = experiments.MixPoint
	Fig7Result     = experiments.Fig7Result
	ScarceResult   = experiments.ScarceResult
	HeadlineResult = experiments.HeadlineResult
	// TwoGenResult is the outcome of the two-generation minimum search.
	TwoGenResult = search.TwoGenResult
)

// Modes and time units.
const (
	ModeEphemeral = core.ModeEphemeral
	ModeFirewall  = core.ModeFirewall

	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// PaperDefaults returns the paper's fixed experimental frame (100 TPS,
// 500 s, 10^7 objects, 10 flush drives at 25 ms) for the given fraction of
// long transactions; set cfg.LM before running.
func PaperDefaults(fracLong float64) Config { return harness.PaperDefaults(fracLong) }

// PaperMix returns the two-type workload of section 4.
func PaperMix(fracLong float64) Mix { return workload.PaperMix(fracLong) }

// Run executes a configuration to its workload runtime.
func Run(cfg Config) (Result, error) { return harness.Run(cfg) }

// BuildLive assembles a run without executing it, so the caller can drive
// (and crash) the simulation explicitly.
func BuildLive(cfg Config) (*Live, error) { return harness.Build(cfg) }

// NewSetup assembles a manager with substrate on a fresh engine for callers
// that issue Begin/WriteData/Commit directly.
func NewSetup(seed uint64, p Params, fc FlushConfig) (*Setup, error) {
	return core.NewSetup(sim.NewEngine(seed, seed^0x9e3779b97f4a7c15), p, fc)
}

// MinFirewall finds the minimum single-queue FW size for a configuration.
// The facade searches sequentially; pass a runner.Pool to the internal
// search package directly to fan probes out.
func MinFirewall(base Config, hi int) (int, Result, error) {
	return search.MinFirewall(nil, base, hi)
}

// MinTwoGen finds the minimum-total two-generation EL configuration.
func MinTwoGen(base Config, recirc bool) (TwoGenResult, error) {
	return search.MinTwoGen(nil, base, recirc, 0, 0)
}

// MinLastGen finds the minimum last-generation size given fixed younger
// generations.
func MinLastGen(base Config, mode Mode, fixed []int, recirc bool, hi int) (int, Result, error) {
	return search.MinLastGen(nil, base, mode, fixed, recirc, hi)
}

// Recover performs single-pass redo recovery from a crash image.
func Recover(dev *Device, db *DB, blockRead Time) (*DB, RecoveryResult, error) {
	return recovery.Recover(dev, db, blockRead)
}

// VerifyRecovery checks a recovered database against the latest durably
// committed LSN per object.
func VerifyRecovery(recovered *DB, oracle map[OID]LSN) error {
	return recovery.VerifyOracle(recovered, oracle)
}

// Experiment drivers: each regenerates one of the paper's figures.
var (
	Fig456         = experiments.Fig456
	Fig7           = experiments.Fig7
	Scarce         = experiments.Scarce
	Headline       = experiments.Headline
	FormatFig456   = experiments.FormatFig456
	FormatFig7     = experiments.FormatFig7
	FormatScarce   = experiments.FormatScarce
	FormatHeadline = experiments.FormatHeadline
)

// DefaultSimConfig returns the paper's 5%-mix EL run as a JSON-friendly
// configuration; LoadSimConfig reads one from disk.
func DefaultSimConfig() SimConfig { return config.Default() }

// LoadSimConfig reads a SimConfig from a JSON file.
func LoadSimConfig(path string) (SimConfig, error) { return config.Load(path) }
