package ellog_test

import (
	"fmt"

	"ellog"
)

// The paper's headline configuration: ephemeral logging with two
// generations at its minimum disk budget, driven by the section 4
// workload.
func Example() {
	cfg := ellog.PaperDefaults(0.05) // 5% of transactions live 10 s
	cfg.Workload.Runtime = 10 * ellog.Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000
	cfg.LM = ellog.Params{
		Mode:     ellog.ModeEphemeral,
		GenSizes: []int{18, 16}, // the paper's Figure-4 minimum
	}
	res, err := ellog.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("killed=%d blocks=%d\n", res.Workload.Killed, res.LM.TotalBlocks)
	// Output: killed=0 blocks=34
}

// Driving the logging manager directly, without the workload generator.
func ExampleNewSetup() {
	setup, err := ellog.NewSetup(1, ellog.Params{
		Mode:     ellog.ModeEphemeral,
		GenSizes: []int{8, 8},
	}, ellog.FlushConfig{Drives: 2, Transfer: 10 * ellog.Millisecond, NumObjects: 1000})
	if err != nil {
		panic(err)
	}
	lm := setup.LM
	lm.Begin(1)
	lm.WriteData(1, 42, 100)
	lm.Commit(1, func() {
		fmt.Println("committed at", setup.Eng.Now())
	})
	lm.Quiesce() // force the group-commit buffer out
	setup.Eng.Run(ellog.Second)
	// Output: committed at 15ms
}

// Crashing a run mid-flight and recovering the stable database with the
// single-pass algorithm.
func ExampleRecover() {
	cfg := ellog.PaperDefaults(0.05)
	cfg.Workload.Runtime = 30 * ellog.Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000
	cfg.LM = ellog.Params{Mode: ellog.ModeEphemeral, GenSizes: []int{18, 12}, Recirculate: true}

	live, err := ellog.BuildLive(cfg)
	if err != nil {
		panic(err)
	}
	live.Setup.Eng.Run(20 * ellog.Second) // crash here

	recovered, _, err := ellog.Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		panic(err)
	}
	if err := ellog.VerifyRecovery(recovered, live.Gen.Oracle()); err != nil {
		panic(err)
	}
	fmt.Println("recovered state equals the committed state")
	// Output: recovered state equals the committed state
}

// Finding the minimum disk budget the way the paper does: shrink until a
// transaction gets killed.
func ExampleMinFirewall() {
	cfg := ellog.PaperDefaults(0.05)
	cfg.Workload.Runtime = 30 * ellog.Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000
	size, run, err := ellog.MinFirewall(cfg, 192)
	if err != nil {
		panic(err)
	}
	fmt.Printf("FW needs ~%d blocks (run sufficient: %v)\n", size/10*10, !run.Insufficient())
	// Output: FW needs ~120 blocks (run sufficient: true)
}
