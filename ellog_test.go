package ellog

import (
	"testing"
)

// The facade tests exercise the public API exactly the way README and the
// examples present it; deeper behaviour is covered in the internal
// packages.

func quickConfig(fracLong float64) Config {
	cfg := PaperDefaults(fracLong)
	cfg.Workload.Runtime = 20 * Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000
	return cfg
}

func TestRunPaperDefaults(t *testing.T) {
	cfg := quickConfig(0.05)
	cfg.LM = Params{Mode: ModeEphemeral, GenSizes: []int{18, 16}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insufficient() {
		t.Fatalf("paper minimum insufficient:\n%s", res.LM)
	}
	if res.Workload.Started != 2000 {
		t.Fatalf("started %d txs, want 2000", res.Workload.Started)
	}
	if res.LM.String() == "" {
		t.Fatal("empty report")
	}
}

func TestDirectManagerUse(t *testing.T) {
	setup, err := NewSetup(1, Params{
		Mode: ModeEphemeral, GenSizes: []int{8, 8},
	}, FlushConfig{Drives: 2, Transfer: 10 * Millisecond, NumObjects: 1000})
	if err != nil {
		t.Fatal(err)
	}
	lm := setup.LM
	durable := false
	lm.Begin(1)
	lsn := lm.WriteData(1, 42, 100)
	lm.Commit(1, func() { durable = true })
	lm.Quiesce()
	setup.Eng.Run(Second)
	if !durable {
		t.Fatal("commit not acknowledged")
	}
	if v, ok := setup.DB.Get(42); !ok || v.LSN != lsn {
		t.Fatalf("stable DB: %+v %v", v, ok)
	}
}

func TestCrashRecoveryThroughFacade(t *testing.T) {
	cfg := quickConfig(0.05)
	cfg.LM = Params{Mode: ModeEphemeral, GenSizes: []int{18, 12}, Recirculate: true}
	live, err := BuildLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Setup.Eng.Run(15 * Second)
	recovered, res, err := Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRecovery(recovered, live.Gen.Oracle()); err != nil {
		t.Fatal(err)
	}
	if res.BlocksRead == 0 {
		t.Fatal("no blocks read")
	}
}

func TestSearchThroughFacade(t *testing.T) {
	cfg := quickConfig(0.05)
	size, run, err := MinFirewall(cfg, 192)
	if err != nil {
		t.Fatal(err)
	}
	if size < 100 || size > 150 || run.Insufficient() {
		t.Fatalf("FW minimum %d implausible", size)
	}
	two, err := MinTwoGen(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if two.Total*2 >= size {
		t.Fatalf("EL %d not well below FW %d", two.Total, size)
	}
	g1, _, err := MinLastGen(cfg, ModeEphemeral, []int{two.Gen0}, true, two.Gen1+2)
	if err != nil {
		t.Fatal(err)
	}
	if g1 > two.Gen1 {
		t.Fatalf("recirculation grew the last generation: %d > %d", g1, two.Gen1)
	}
}

func TestSimConfigRoundTrip(t *testing.T) {
	sc := DefaultSimConfig()
	sc.RuntimeS = 5
	sc.NumObjects = 1_000_000
	hc, err := sc.ToHarness()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(hc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload.Started != 500 {
		t.Fatalf("started %d", res.Workload.Started)
	}
	if _, err := LoadSimConfig("/nonexistent.json"); err == nil {
		t.Fatal("missing config loaded")
	}
}

func TestStealThroughFacade(t *testing.T) {
	cfg := quickConfig(0.05)
	cfg.LM = Params{Mode: ModeEphemeral, GenSizes: []int{18, 14}, Recirculate: true, Steal: true}
	live, err := BuildLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Setup.Eng.Run(15 * Second)
	recovered, _, err := Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRecovery(recovered, live.Gen.Oracle()); err != nil {
		t.Fatal(err)
	}
}
