// Command elreal runs a configured ephemeral-logging workload against the
// REAL backend: a file-backed log device with group commit and fsync
// durability (internal/realdev) driven by a wall-clock event loop
// (internal/realtime), in place of the paper's simulator. The same
// configuration files elsim runs accepted here measure, instead of model,
// the log's bandwidth, commit latency and minimum space.
//
// Usage:
//
//	elreal -init cfg.json             write the default configuration and exit
//	elreal -dir /var/tmp/ellog -config cfg.json -runtime 2
//	elreal -dir /var/tmp/ellog -compressed -runtime 1
//	elreal -dir /var/tmp/ellog -compressed -runtime 5 -metrics-addr :9188 -watch 1
//	elreal -dir /var/tmp/ellog -compressed -runtime 1 -trace-out trace.jsonl
//	elreal -dir /var/tmp/ellog -recover
//
// A run pays its runtime in actual wall time; the -compressed flag swaps
// in a 100x-compressed paper mix (10 ms and 50 ms transactions at 400 TPS)
// so smoke runs finish in about a second. -recover performs the
// single-pass scan/salvage recovery against whatever the directory holds —
// typically after a crashed or interrupted run — and reports what it
// found. The stable database is not persisted, so -recover starts it
// empty: every committed update in the log is applied.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ellog/internal/config"
	"ellog/internal/obs"
	"ellog/internal/obs/live"
	"ellog/internal/realdev"
	"ellog/internal/recovery"
	"ellog/internal/sim"
	"ellog/internal/statedb"
	"ellog/internal/trace"
	"ellog/internal/workload"
)

func main() {
	var (
		initPath   = flag.String("init", "", "write the default configuration JSON to this path and exit")
		configPath = flag.String("config", "", "configuration JSON to run (elsim's format)")
		dir        = flag.String("dir", "", "log directory (created if missing; an existing log is overwritten)")
		runtime    = flag.Float64("runtime", 0, "override: run duration in (wall-clock) seconds")
		seed       = flag.Uint64("seed", 0, "override: random seed for the workload schedule")
		compressed = flag.Bool("compressed", false, "use a 100x-compressed paper mix (10/50 ms transactions at 400 TPS)")
		direct     = flag.String("direct", "auto", "direct I/O: auto|on|off")
		groupMS    = flag.Float64("group-delay-ms", 0, "device group-commit timeout in ms (default 2)")
		groupKB    = flag.Int("group-bytes", 0, "device group-commit size threshold in bytes (default 256 KiB)")
		pipeline   = flag.Int("pipeline", 0, "fsync pipelining depth (default 2)")
		sampleMS   = flag.Float64("sample-ms", 0, "sample the commit curve at this cadence in ms (0 = off)")
		jsonPath   = flag.String("json", "", "write the machine-readable result to this path")
		doRecover  = flag.Bool("recover", false, "recover from -dir instead of running a workload")
		verbose    = flag.Bool("v", false, "also print workload statistics")

		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, /metrics.json and pprof on this address during the run (e.g. 127.0.0.1:9188 or :0)")
		watchSec    = flag.Float64("watch", 0, "print a one-line live dashboard to stderr at this cadence in seconds (0 = off)")
		traceOut    = flag.String("trace-out", "", "stream trace events to this file (eltrace-compatible; the loop clock is the trace clock)")
		traceFmt    = flag.String("trace-format", "jsonl", "trace stream format: jsonl or binary")
		probesOut   = flag.String("probes-out", "", "sample standard ellog_* probes and write the series JSON to this file")
		probeMS     = flag.Float64("probe-ms", 100, "probe sampling cadence in ms (with -probes-out)")
	)
	flag.Parse()

	if *initPath != "" {
		if err := config.Default().Save(*initPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote default configuration to %s\n", *initPath)
		return
	}
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required (the log directory)"))
	}
	if *doRecover {
		runRecovery(*dir, *jsonPath)
		return
	}

	cfg := config.Default()
	if *configPath != "" {
		var err error
		cfg, err = config.Load(*configPath)
		if err != nil {
			fatal(err)
		}
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	hc, err := cfg.ToHarness()
	if err != nil {
		fatal(err)
	}
	if *compressed {
		hc.Workload.Mix = workload.Mix{
			{Name: "short-10ms", Prob: 0.8, Lifetime: 10 * sim.Millisecond, NumRecords: 2, RecordSize: 100},
			{Name: "long-50ms", Prob: 0.2, Lifetime: 50 * sim.Millisecond, NumRecords: 4, RecordSize: 100},
		}
		hc.Workload.ArrivalRate = 400
		if hc.Workload.NumObjects > 20_000 {
			n := uint64(10_000)
			hc.Workload.NumObjects = n
			hc.Flush.NumObjects = n
		}
		if hc.LM.GroupCommitTimeout == 0 || hc.LM.GroupCommitTimeout > 5*sim.Millisecond {
			hc.LM.GroupCommitTimeout = 5 * sim.Millisecond
		}
	}
	if *runtime > 0 {
		hc.Workload.Runtime = sim.Time(*runtime * float64(sim.Second))
	}

	rc := realdev.RunConfig{
		Seed:     hc.Seed,
		Dir:      *dir,
		LM:       hc.LM,
		Flush:    hc.Flush,
		Workload: hc.Workload,
		Device: realdev.Options{
			Direct:     realdev.DirectMode(*direct),
			GroupDelay: sim.Time(*groupMS * float64(sim.Millisecond)),
			GroupBytes: *groupKB,
			Pipeline:   *pipeline,
		},
		SampleEvery: sim.Time(*sampleMS * float64(sim.Millisecond)),
	}

	var reg *live.Registry
	if *metricsAddr != "" || *watchSec > 0 {
		reg = live.NewRegistry()
		rc.Metrics = reg
	}
	var traceFile *os.File
	var traceFlush func() error
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		var sink trace.Sink
		switch *traceFmt {
		case "", "jsonl":
			s := obs.NewJSONLSink(f)
			sink, traceFlush = s, s.Flush
		case "binary":
			s := obs.NewBinarySink(f)
			sink, traceFlush = s, s.Flush
		default:
			fatal(fmt.Errorf("unknown trace format %q (want jsonl or binary)", *traceFmt))
		}
		rc.Tracer = sink
	}
	if *probesOut != "" {
		rc.ProbeEvery = sim.Time(*probeMS * float64(sim.Millisecond))
	}

	var srv *live.Server
	watchDone := make(chan struct{})
	watchExited := make(chan struct{})
	rc.OnLive = func(l *realdev.Live) {
		if *metricsAddr != "" {
			s, err := live.Serve(*metricsAddr, reg, l.Loop.Now)
			if err != nil {
				fatal(err)
			}
			srv = s
			fmt.Fprintf(os.Stderr, "elreal: serving metrics on http://%s/metrics (pprof at /debug/pprof/)\n", s.Addr())
		}
		if *watchSec > 0 {
			go watch(reg, *watchSec, watchDone, watchExited)
		} else {
			close(watchExited)
		}
	}

	res, err := realdev.Run(rc)
	if err != nil {
		fatal(err)
	}
	close(watchDone)
	<-watchExited
	if srv != nil {
		srv.Close()
	}
	if traceFlush != nil {
		if err := traceFlush(); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
	}
	if *probesOut != "" {
		f, err := os.Create(*probesOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteSeriesJSON(f, rc.ProbeEvery, res.Probes); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("probes: %d series -> %s\n", len(res.Probes), *probesOut)
	}
	printResult(rc, res, *verbose)
	if *jsonPath != "" {
		writeJSON(*jsonPath, map[string]any{
			"config":   cfg,
			"lm":       res.LM,
			"workload": res.Workload,
			"real":     res.Real,
			"curve":    res.Curve,
		})
	}
	if res.Insufficient() {
		fatal(fmt.Errorf("insufficient log space: %d killed, %d emergency blocks, %d refugee stalls",
			res.Workload.Killed, res.LM.EmergencyBlocks, res.LM.RefugeeStalls))
	}
}

// watch prints one dashboard line per cadence to stderr until done
// closes. It only reads registry snapshots (atomic loads), so it never
// perturbs the run.
func watch(reg *live.Registry, sec float64, done <-chan struct{}, exited chan<- struct{}) {
	defer close(exited)
	t := time.NewTicker(time.Duration(sec * float64(time.Second)))
	defer t.Stop()
	prev := reg.Snapshot()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			cur := reg.Snapshot()
			fmt.Fprintln(os.Stderr, "elreal: "+live.WatchLine(prev, cur, sec))
			prev = cur
		}
	}
}

func printResult(rc realdev.RunConfig, res realdev.Result, verbose bool) {
	st, w, rs := res.LM, res.Workload, res.Real
	io := "buffered"
	if rs.Direct {
		io = "O_DIRECT"
	}
	fmt.Printf("real backend run: %s mode, %v wall clock, %s I/O (%d B slots) in %s\n",
		st.Mode, st.Elapsed, io, rs.SlotBytes, rc.Dir)
	fmt.Printf("\ntransactions: %d started, %d committed, %d killed\n", w.Started, w.Committed, w.Killed)
	fmt.Printf("\nmeasured bandwidth:\n")
	fmt.Printf("  %d block writes (%.1f writes/s), %.1f KB payload\n",
		st.TotalWrites, st.TotalBandwidth, float64(st.AppendedBytes)/1000)
	for i, g := range st.Gens {
		fmt.Printf("  gen %d: %d blocks, %d writes\n", i, g.Size, g.BlockWrites)
	}
	fmt.Printf("  %d fsync batches (max %d blocks), %d pipeline stalls\n",
		rs.Batches, rs.MaxBatchBlocks, rs.PipelineStalls)
	fmt.Printf("  fsync latency: mean %.2f, p50 %.2f, p95 %.2f, p99 %.2f, p999 %.2f ms\n",
		rs.BatchMeanMS, rs.BatchP50MS, rs.BatchP95MS, rs.BatchP99MS, rs.BatchP999MS)
	fmt.Printf("  batch size: mean %.1f blocks (p99 %.0f), mean %.1f KiB (p99 %.1f)\n",
		rs.BatchBlocksMean, rs.BatchBlocksP99, rs.BatchBytesMean/1024, rs.BatchBytesP99/1024)
	fmt.Printf("\nmeasured latency:\n")
	fmt.Printf("  commit durability: mean %.2f ms, p99 %.2f ms\n", st.CommitDelayMean*1000, st.CommitDelayP99*1000)
	fmt.Printf("  end-to-end:        mean %.2f ms, p99 %.2f ms\n", w.EndToEndMean*1000, w.EndToEndP99*1000)
	fmt.Printf("\nmin-space view:\n")
	fmt.Printf("  %d log blocks configured (%d B file), insufficient: %v\n",
		st.TotalBlocks, rs.FileBytes, res.Insufficient())
	if verbose {
		fmt.Printf("\nworkload detail: per-type starts %v, LOT peak %.0f, LTT peak %.0f, mem peak %.0f B\n",
			w.PerType, st.LOTPeak, st.LTTPeak, st.MemPeakBytes)
	}
}

func runRecovery(dir, jsonPath string) {
	im, err := realdev.ReadImage(dir)
	if err != nil {
		fatal(err)
	}
	recovered, res, err := recovery.Recover(im, statedb.New(), 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recovered %s: %d of %d slots readable (%d never written or torn at the frame)\n",
		dir, im.NumBlocks(), im.NumBlocks()+im.Skipped(), im.Skipped())
	fmt.Printf("  single pass: %d blocks, %d records, estimated read time %v\n",
		res.BlocksRead, res.RecordsRead, res.EstimatedTime)
	fmt.Printf("  %d winners, %d losers, %d in doubt\n", res.Winners, res.Losers, len(res.InDoubt))
	fmt.Printf("  torn blocks: %d (salvaged %d records from valid prefixes)\n", res.TornBlocks, res.SalvagedRecs)
	fmt.Printf("  applied %d updates (%d stale) to an empty stable database; %d objects recovered\n",
		res.Applied, res.Stale, recovered.Len())
	if jsonPath != "" {
		writeJSON(jsonPath, map[string]any{
			"slots_readable": im.NumBlocks(),
			"slots_skipped":  im.Skipped(),
			"result":         res,
		})
	}
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elreal:", err)
	os.Exit(1)
}
