// Command elbench regenerates every table and figure of the paper's
// evaluation (section 4) and prints them as aligned text tables.
//
// Usage:
//
//	elbench                      run everything at full paper fidelity
//	elbench -exp fig4            one experiment (fig4 = fig5 = fig6 data)
//	elbench -runtime 60 -objects 1000000   scaled-down quick pass
//	elbench -csv results.csv     also dump the Figure 4-6 data as CSV
//
// Full fidelity (500 simulated seconds, 10^7 objects, five mixes) takes a
// few minutes of wall time; the searches alone run hundreds of complete
// simulations, mirroring the paper's method of "continu[ing] to run
// simulations and reduce the disk space until we observed transactions
// being killed".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ellog/internal/experiments"
	"ellog/internal/sim"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig4|fig5|fig6|fig7|scarce|headline|all|hints|chain|hybrid|adaptive|arrivals|steal|scale|ext")
		runtime = flag.Float64("runtime", 500, "simulated seconds per run")
		objects = flag.Uint64("objects", 10_000_000, "database object count")
		seed    = flag.Uint64("seed", 1, "random seed")
		mixes   = flag.String("mixes", "", "comma-separated long-transaction fractions (default 0.05,0.1,0.2,0.3,0.4)")
		csvPath = flag.String("csv", "", "write Figure 4-6 data as CSV to this path")
	)
	flag.Parse()

	opt := experiments.Options{
		Seed:       *seed,
		Runtime:    sim.Time(*runtime * float64(sim.Second)),
		NumObjects: *objects,
	}
	if *mixes != "" {
		for _, part := range strings.Split(*mixes, ",") {
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &f); err != nil {
				fatal(fmt.Errorf("bad -mixes %q: %w", *mixes, err))
			}
			opt.Mixes = append(opt.Mixes, f)
		}
	}

	runFig456 := func() {
		start := time.Now()
		points, err := experiments.Fig456(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatFig456(points))
		fmt.Printf("(figures 4-6 regenerated in %v)\n\n", time.Since(start).Round(time.Second))
		if *csvPath != "" {
			if err := writeCSV(*csvPath, points); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *csvPath)
		}
	}

	switch *exp {
	case "fig4", "fig5", "fig6":
		runFig456()
	case "fig7":
		r, err := experiments.Fig7(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatFig7(r))
	case "scarce":
		r, err := experiments.Scarce(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatScarce(r))
	case "headline":
		h, err := experiments.Headline(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatHeadline(h))
	case "hints":
		r, err := experiments.Hints(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatHints(r))
	case "chain":
		r, err := experiments.Chain(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatChain(r))
	case "hybrid":
		r, err := experiments.HybridCompare(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatHybridCompare(r))
	case "adaptive":
		r, err := experiments.Adaptive(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatAdaptive(r))
	case "arrivals":
		pts, err := experiments.ArrivalSensitivity(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatArrivals(pts))
	case "steal":
		r, err := experiments.Steal(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatSteal(r))
	case "scale":
		pts, err := experiments.Scale(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatScale(pts))
	case "ext":
		rh, err := experiments.Hints(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatHints(rh))
		fmt.Println()
		rc, err := experiments.Chain(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatChain(rc))
		fmt.Println()
		rb, err := experiments.HybridCompare(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatHybridCompare(rb))
		fmt.Println()
		ra, err := experiments.Adaptive(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatAdaptive(ra))
		fmt.Println()
		rv, err := experiments.ArrivalSensitivity(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatArrivals(rv))
		fmt.Println()
		rs, err := experiments.Steal(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatSteal(rs))
		fmt.Println()
		rsc, err := experiments.Scale(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatScale(rsc))
	case "all":
		runFig456()
		r7, err := experiments.Fig7(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatFig7(r7))
		fmt.Println()
		sc, err := experiments.Scarce(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatScarce(sc))
		fmt.Println()
		h, err := experiments.Headline(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatHeadline(h))
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func writeCSV(path string, points []experiments.MixPoint) error {
	var b strings.Builder
	b.WriteString("frac_long,fw_blocks,el_gen0,el_gen1,el_blocks,fw_writes_per_s,el_writes_per_s,fw_mem_bytes,el_mem_bytes\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%g,%d,%d,%d,%d,%.3f,%.3f,%.0f,%.0f\n",
			p.FracLong, p.FWBlocks, p.ELGen0, p.ELGen1, p.ELBlocks,
			p.FWBW, p.ELBW, p.FWMemPeak, p.ELMemPeak)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elbench:", err)
	os.Exit(1)
}
