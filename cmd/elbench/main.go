// Command elbench regenerates every table and figure of the paper's
// evaluation (section 4) and prints them as aligned text tables.
//
// Usage:
//
//	elbench                      run everything at full paper fidelity
//	elbench -exp fig4            one experiment (fig4 = fig5 = fig6 data)
//	elbench -runtime 60 -objects 1000000   scaled-down quick pass
//	elbench -csv results.csv     also dump the Figure 4-6 data as CSV
//	elbench -json BENCH.json     also emit a machine-readable perf report
//	elbench -cpuprofile cpu.pprof   profile the run for go tool pprof
//
// Full fidelity (500 simulated seconds, 10^7 objects, five mixes) takes a
// few minutes of wall time; the searches alone run hundreds of complete
// simulations, mirroring the paper's method of "continu[ing] to run
// simulations and reduce the disk space until we observed transactions
// being killed".
//
// The -json report follows internal/perf's schema (suite → metric → value
// with seed and frame metadata): each experiment that runs contributes a
// suite, and an "engine" suite with the event-arena micro-benchmark is
// always included. CI compares such a report against the committed
// baseline (results/BENCH_7.json) with cmd/perfdiff; see README.md for
// how to refresh the baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ellog/internal/experiments"
	"ellog/internal/perf"
	"ellog/internal/runner"
	"ellog/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig4|fig5|fig6|fig7|scarce|headline|pdes|all|hints|chain|hybrid|adaptive|arrivals|steal|scale|xshard|simvreal|ext")
		runtime  = flag.Float64("runtime", 500, "simulated seconds per run")
		objects  = flag.Uint64("objects", 10_000_000, "database object count")
		seed     = flag.Uint64("seed", 1, "random seed")
		mixes    = flag.String("mixes", "", "comma-separated long-transaction fractions (default 0.05,0.1,0.2,0.3,0.4)")
		csvPath  = flag.String("csv", "", "write Figure 4-6 data as CSV to this path")
		jsonPath = flag.String("json", "", "write a machine-readable benchmark report (internal/perf schema) to this path")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
		heapProf = flag.String("heapprofile", "", "write a heap profile (after the run) to this path")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, negative = strictly sequential)")
		realDir  = flag.String("realdir", "", "log directory for -exp simvreal's real run (default: a temporary directory)")
		realIO   = flag.String("realdirect", "auto", "direct-I/O mode for -exp simvreal: auto|on|off")
	)
	flag.Parse()

	if *cpuProf != "" {
		stop, err := perf.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fatal(err)
			}
		}()
	}

	opt := experiments.Options{
		Seed:       *seed,
		Runtime:    sim.Time(*runtime * float64(sim.Second)),
		NumObjects: *objects,
		Parallel:   *parallel,
		RealDir:    *realDir,
		RealDirect: *realIO,
	}
	// One pool shared across every experiment of this invocation: probe
	// points recur between experiments (the headline numbers reuse the
	// figure 4-6 searches), and the shared cache answers the repeats. The
	// results are identical with or without it.
	var pool *runner.Pool
	if *parallel >= 0 {
		pool = runner.New(*parallel)
		opt.Pool = pool
	}
	wallStart := time.Now() //ellint:allow wallclock harness-only wall timing, reported as informational
	if *mixes != "" {
		for _, part := range strings.Split(*mixes, ",") {
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &f); err != nil {
				fatal(fmt.Errorf("bad -mixes %q: %w", *mixes, err))
			}
			opt.Mixes = append(opt.Mixes, f)
		}
	}

	var rep *perf.Report
	if *jsonPath != "" {
		rep = perf.NewReport(*seed, perf.Frame{
			RuntimeSeconds: *runtime,
			Objects:        *objects,
			Mixes:          opt.Mixes,
		})
	}

	runFig456 := func() {
		start := time.Now() //ellint:allow wallclock operator feedback on regeneration cost
		points, err := experiments.Fig456(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatFig456(points))
		fmt.Printf("(figures 4-6 regenerated in %v wall clock)\n\n", time.Since(start).Round(time.Millisecond)) //ellint:allow wallclock operator feedback, not a simulation result
		if *csvPath != "" {
			if err := writeCSV(*csvPath, points); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *csvPath)
		}
		if rep != nil {
			addFig456(rep, points)
		}
	}

	switch *exp {
	case "fig4", "fig5", "fig6":
		runFig456()
	case "fig7":
		show("fig7", opt, experiments.Fig7, experiments.FormatFig7, collectFig7(rep))
	case "scarce":
		show("scarce", opt, experiments.Scarce, experiments.FormatScarce, collectScarce(rep))
	case "headline":
		show("headline", opt, experiments.Headline, experiments.FormatHeadline, collectHeadline(rep))
	case "hints":
		show("hints", opt, experiments.Hints, experiments.FormatHints, nil)
	case "chain":
		show("chain", opt, experiments.Chain, experiments.FormatChain, nil)
	case "hybrid":
		show("hybrid", opt, experiments.HybridCompare, experiments.FormatHybridCompare, nil)
	case "adaptive":
		show("adaptive", opt, experiments.Adaptive, experiments.FormatAdaptive, nil)
	case "arrivals":
		show("arrivals", opt, experiments.ArrivalSensitivity, experiments.FormatArrivals, nil)
	case "steal":
		show("steal", opt, experiments.Steal, experiments.FormatSteal, nil)
	case "scale":
		show("scale", opt, experiments.Scale, experiments.FormatScale, nil)
	case "pdes":
		show("pdes", opt, experiments.PDES, experiments.FormatPDES, collectPDES(rep))
	case "simvreal":
		// Deliberately not part of "all": the real run pays its runtime
		// in wall-clock fsync traffic and its measured numbers are not
		// deterministic, so it stays out of the gated perfdiff baseline.
		// The commit-curve shape check makes this invocation itself the
		// gate: elbench exits non-zero when the curves diverge.
		show("simvreal", opt, experiments.SimVsReal, experiments.FormatSimVsReal, checkSimVsReal(rep))
	case "xshard":
		// Deliberately not part of "all": the gated report covers the
		// paper figures plus the pdes suite, and xshard's sweep is slow at
		// full fidelity; run it explicitly when the 2PC path is in play.
		show("xshard", opt, experiments.CrossShard, experiments.FormatCrossShard, nil)
	case "ext":
		show("hints", opt, experiments.Hints, experiments.FormatHints, nil)
		fmt.Println()
		show("chain", opt, experiments.Chain, experiments.FormatChain, nil)
		fmt.Println()
		show("hybrid", opt, experiments.HybridCompare, experiments.FormatHybridCompare, nil)
		fmt.Println()
		show("adaptive", opt, experiments.Adaptive, experiments.FormatAdaptive, nil)
		fmt.Println()
		show("arrivals", opt, experiments.ArrivalSensitivity, experiments.FormatArrivals, nil)
		fmt.Println()
		show("steal", opt, experiments.Steal, experiments.FormatSteal, nil)
		fmt.Println()
		show("scale", opt, experiments.Scale, experiments.FormatScale, nil)
	case "all":
		runFig456()
		show("fig7", opt, experiments.Fig7, experiments.FormatFig7, collectFig7(rep))
		fmt.Println()
		show("scarce", opt, experiments.Scarce, experiments.FormatScarce, collectScarce(rep))
		fmt.Println()
		show("headline", opt, experiments.Headline, experiments.FormatHeadline, collectHeadline(rep))
		fmt.Println()
		show("pdes", opt, experiments.PDES, experiments.FormatPDES, collectPDES(rep))
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if pool != nil {
		runs, hits := pool.Stats()
		fmt.Printf("(%d simulations run, %d answered from cache, %d workers, %v wall clock)\n",
			runs, hits, pool.Workers(), time.Since(wallStart).Round(time.Millisecond)) //ellint:allow wallclock operator feedback, not a simulation result
		if rep != nil {
			rep.SetInformational("harness", "simulations_run", float64(runs))
			rep.SetInformational("harness", "cache_hits", float64(hits))
		}
	}
	if rep != nil {
		fmt.Println("measuring engine hot path...")
		perf.MeasureEngine().AddTo(rep)
		rep.SetInformational("harness", "wall_seconds", time.Since(wallStart).Seconds()) //ellint:allow wallclock informational metric, excluded from the perfdiff gate
		if err := rep.WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *heapProf != "" {
		if err := perf.WriteHeapProfile(*heapProf); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *heapProf)
	}
}

// show runs one experiment, prints its formatted report, reports the
// wall-clock time it took, and hands the result to collect (if non-nil)
// for the -json perf report.
func show[T any](name string, opt experiments.Options, run func(experiments.Options) (T, error), format func(T) string, collect func(T)) {
	start := time.Now() //ellint:allow wallclock operator feedback on experiment cost
	r, err := run(opt)
	if err != nil {
		fatal(err)
	}
	fmt.Print(format(r))
	fmt.Printf("(%s finished in %v wall clock)\n", name, time.Since(start).Round(time.Millisecond)) //ellint:allow wallclock operator feedback, not a simulation result
	if collect != nil {
		collect(r)
	}
}

// mixKey renders a mix fraction as a metric-name suffix ("0.05" → "5pct").
func mixKey(frac float64) string {
	return fmt.Sprintf("%gpct", frac*100)
}

// addFig456 records the Figure 4-6 data: all values are deterministic
// simulation outputs, so every metric is gated.
func addFig456(rep *perf.Report, points []experiments.MixPoint) {
	for _, p := range points {
		k := mixKey(p.FracLong)
		rep.Set("fig456", "fw_blocks_"+k, float64(p.FWBlocks))
		rep.Set("fig456", "el_blocks_"+k, float64(p.ELBlocks))
		rep.Set("fig456", "el_gen0_"+k, float64(p.ELGen0))
		rep.Set("fig456", "el_gen1_"+k, float64(p.ELGen1))
		rep.Set("fig456", "fw_writes_per_s_"+k, p.FWBW)
		rep.Set("fig456", "el_writes_per_s_"+k, p.ELBW)
		rep.Set("fig456", "fw_mem_bytes_"+k, p.FWMemPeak)
		rep.Set("fig456", "el_mem_bytes_"+k, p.ELMemPeak)
	}
}

// checkSimVsReal records the comparison in the -json report and enforces
// the shape gate: the simulated side's numbers are deterministic and
// gated, the real side's are measurements and informational only. A curve
// divergence beyond the tolerance fails the whole invocation.
func checkSimVsReal(rep *perf.Report) func(experiments.SimVsRealResult) {
	return func(r experiments.SimVsRealResult) {
		if rep != nil {
			rep.Set("simvreal", "sim_committed", float64(r.Sim.Committed))
			rep.Set("simvreal", "sim_block_writes", float64(r.Sim.BlockWrites))
			rep.SetInformational("simvreal", "real_committed", float64(r.Real.Committed))
			rep.SetInformational("simvreal", "real_block_writes", float64(r.Real.BlockWrites))
			rep.SetInformational("simvreal", "real_writes_per_s", r.Real.WritesPerS)
			rep.SetInformational("simvreal", "real_e2e_mean_ms", r.Real.E2EMeanMS)
			rep.SetInformational("simvreal", "real_batch_mean_ms", r.IO.BatchMeanMS)
			rep.SetInformational("simvreal", "real_fsync_p99_ms", r.IO.BatchP99MS)
			rep.SetInformational("simvreal", "real_fsyncs", float64(r.IO.Fsyncs))
			rep.SetInformational("simvreal", "max_curve_dev", r.MaxCurveDev)
			for _, sd := range r.Series {
				rep.SetInformational("simvreal", "series_dev_"+sd.Name, sd.MaxDev)
			}
		}
		if !r.WithinTolerance {
			fatal(fmt.Errorf("simvreal: commit curves diverge: max deviation %.3f exceeds tolerance %.2f",
				r.MaxCurveDev, r.Tolerance))
		}
		if !r.SeriesOK {
			fatal(fmt.Errorf("simvreal: shared metric series diverge beyond tolerance %.2f (see report)",
				r.SeriesTolerance))
		}
	}
}

func collectFig7(rep *perf.Report) func(experiments.Fig7Result) {
	if rep == nil {
		return nil
	}
	return func(r experiments.Fig7Result) {
		rep.Set("fig7", "gen0_blocks", float64(r.Gen0))
		rep.Set("fig7", "gen1_max_blocks", float64(r.NoRecircG1))
		rep.Set("fig7", "gen1_min_blocks", float64(r.MinRecircG1))
		if len(r.Points) > 0 {
			rep.Set("fig7", "writes_per_s_max_space", r.Points[0].TotalBW)
			rep.Set("fig7", "writes_per_s_min_space", r.Points[len(r.Points)-1].TotalBW)
		}
	}
}

func collectScarce(rep *perf.Report) func(experiments.ScarceResult) {
	if rep == nil {
		return nil
	}
	return func(r experiments.ScarceResult) {
		rep.Set("scarce", "total_blocks", float64(r.TotalBlocks))
		rep.Set("scarce", "writes_per_s", r.TotalBW)
		rep.Set("scarce", "flush_oid_dist", r.AvgDist)
		rep.Set("scarce", "flush_oid_dist_25ms", r.BaselineDist)
	}
}

func collectHeadline(rep *perf.Report) func(experiments.HeadlineResult) {
	if rep == nil {
		return nil
	}
	return func(h experiments.HeadlineResult) {
		rep.Set("headline", "fw_blocks", float64(h.FWBlocks))
		rep.Set("headline", "el_blocks_norecirc", float64(h.ELNoRecirc))
		rep.Set("headline", "el_blocks_recirc", float64(h.ELRecirc))
		rep.Set("headline", "space_factor_norecirc", h.SpaceFactorNR)
		rep.Set("headline", "space_factor_recirc", h.SpaceFactorR)
		rep.Set("headline", "bw_increase_pct_norecirc", h.BWIncreaseNR)
		rep.Set("headline", "bw_increase_pct_recirc", h.BWIncreaseR)
	}
}

// collectPDES records the parallel-engine benchmark. The simulated
// outputs (events, commits, the identity bit) are deterministic and
// gated; the wall-clock seconds and speedup depend on the host and are
// informational only.
func collectPDES(rep *perf.Report) func(experiments.PDESResult) {
	if rep == nil {
		return nil
	}
	return func(r experiments.PDESResult) {
		rep.Set("pdes", "events", float64(r.Stats.Events))
		rep.Set("pdes", "windows", float64(r.Stats.Windows))
		rep.Set("pdes", "cross_lp_events", float64(r.Stats.Delivered))
		rep.Set("pdes", "local_committed", float64(r.Stats.Committed))
		rep.Set("pdes", "cross_committed", float64(r.Stats.CrossCommitted))
		identical := 0.0
		if r.Identical {
			identical = 1.0
		}
		rep.Set("pdes", "parallel_identical", identical)
		rep.SetInformational("pdes", "seq_seconds", r.SeqSeconds)
		rep.SetInformational("pdes", "par_seconds", r.ParSeconds)
		rep.SetInformational("pdes", "speedup", r.Speedup)
		rep.SetInformational("pdes", "cpus", float64(r.CPUs))
	}
}

func writeCSV(path string, points []experiments.MixPoint) error {
	var b strings.Builder
	b.WriteString("frac_long,fw_blocks,el_gen0,el_gen1,el_blocks,fw_writes_per_s,el_writes_per_s,fw_mem_bytes,el_mem_bytes\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%g,%d,%d,%d,%d,%.3f,%.3f,%.0f,%.0f\n",
			p.FracLong, p.FWBlocks, p.ELGen0, p.ELGen1, p.ELBlocks,
			p.FWBW, p.ELBW, p.FWMemPeak, p.ELMemPeak)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elbench:", err)
	os.Exit(1)
}
