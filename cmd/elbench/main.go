// Command elbench regenerates every table and figure of the paper's
// evaluation (section 4) and prints them as aligned text tables.
//
// Usage:
//
//	elbench                      run everything at full paper fidelity
//	elbench -exp fig4            one experiment (fig4 = fig5 = fig6 data)
//	elbench -runtime 60 -objects 1000000   scaled-down quick pass
//	elbench -csv results.csv     also dump the Figure 4-6 data as CSV
//
// Full fidelity (500 simulated seconds, 10^7 objects, five mixes) takes a
// few minutes of wall time; the searches alone run hundreds of complete
// simulations, mirroring the paper's method of "continu[ing] to run
// simulations and reduce the disk space until we observed transactions
// being killed".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ellog/internal/experiments"
	"ellog/internal/runner"
	"ellog/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig4|fig5|fig6|fig7|scarce|headline|all|hints|chain|hybrid|adaptive|arrivals|steal|scale|ext")
		runtime  = flag.Float64("runtime", 500, "simulated seconds per run")
		objects  = flag.Uint64("objects", 10_000_000, "database object count")
		seed     = flag.Uint64("seed", 1, "random seed")
		mixes    = flag.String("mixes", "", "comma-separated long-transaction fractions (default 0.05,0.1,0.2,0.3,0.4)")
		csvPath  = flag.String("csv", "", "write Figure 4-6 data as CSV to this path")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, negative = strictly sequential)")
	)
	flag.Parse()

	opt := experiments.Options{
		Seed:       *seed,
		Runtime:    sim.Time(*runtime * float64(sim.Second)),
		NumObjects: *objects,
		Parallel:   *parallel,
	}
	// One pool shared across every experiment of this invocation: probe
	// points recur between experiments (the headline numbers reuse the
	// figure 4-6 searches), and the shared cache answers the repeats. The
	// results are identical with or without it.
	var pool *runner.Pool
	if *parallel >= 0 {
		pool = runner.New(*parallel)
		opt.Pool = pool
	}
	wallStart := time.Now()
	if *mixes != "" {
		for _, part := range strings.Split(*mixes, ",") {
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &f); err != nil {
				fatal(fmt.Errorf("bad -mixes %q: %w", *mixes, err))
			}
			opt.Mixes = append(opt.Mixes, f)
		}
	}

	runFig456 := func() {
		start := time.Now()
		points, err := experiments.Fig456(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatFig456(points))
		fmt.Printf("(figures 4-6 regenerated in %v wall clock)\n\n", time.Since(start).Round(time.Millisecond))
		if *csvPath != "" {
			if err := writeCSV(*csvPath, points); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *csvPath)
		}
	}

	switch *exp {
	case "fig4", "fig5", "fig6":
		runFig456()
	case "fig7":
		show("fig7", opt, experiments.Fig7, experiments.FormatFig7)
	case "scarce":
		show("scarce", opt, experiments.Scarce, experiments.FormatScarce)
	case "headline":
		show("headline", opt, experiments.Headline, experiments.FormatHeadline)
	case "hints":
		show("hints", opt, experiments.Hints, experiments.FormatHints)
	case "chain":
		show("chain", opt, experiments.Chain, experiments.FormatChain)
	case "hybrid":
		show("hybrid", opt, experiments.HybridCompare, experiments.FormatHybridCompare)
	case "adaptive":
		show("adaptive", opt, experiments.Adaptive, experiments.FormatAdaptive)
	case "arrivals":
		show("arrivals", opt, experiments.ArrivalSensitivity, experiments.FormatArrivals)
	case "steal":
		show("steal", opt, experiments.Steal, experiments.FormatSteal)
	case "scale":
		show("scale", opt, experiments.Scale, experiments.FormatScale)
	case "ext":
		show("hints", opt, experiments.Hints, experiments.FormatHints)
		fmt.Println()
		show("chain", opt, experiments.Chain, experiments.FormatChain)
		fmt.Println()
		show("hybrid", opt, experiments.HybridCompare, experiments.FormatHybridCompare)
		fmt.Println()
		show("adaptive", opt, experiments.Adaptive, experiments.FormatAdaptive)
		fmt.Println()
		show("arrivals", opt, experiments.ArrivalSensitivity, experiments.FormatArrivals)
		fmt.Println()
		show("steal", opt, experiments.Steal, experiments.FormatSteal)
		fmt.Println()
		show("scale", opt, experiments.Scale, experiments.FormatScale)
	case "all":
		runFig456()
		show("fig7", opt, experiments.Fig7, experiments.FormatFig7)
		fmt.Println()
		show("scarce", opt, experiments.Scarce, experiments.FormatScarce)
		fmt.Println()
		show("headline", opt, experiments.Headline, experiments.FormatHeadline)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if pool != nil {
		runs, hits := pool.Stats()
		fmt.Printf("(%d simulations run, %d answered from cache, %d workers, %v wall clock)\n",
			runs, hits, pool.Workers(), time.Since(wallStart).Round(time.Millisecond))
	}
}

// show runs one experiment, prints its formatted report, and reports the
// wall-clock time it took.
func show[T any](name string, opt experiments.Options, run func(experiments.Options) (T, error), format func(T) string) {
	start := time.Now()
	r, err := run(opt)
	if err != nil {
		fatal(err)
	}
	fmt.Print(format(r))
	fmt.Printf("(%s finished in %v wall clock)\n", name, time.Since(start).Round(time.Millisecond))
}

func writeCSV(path string, points []experiments.MixPoint) error {
	var b strings.Builder
	b.WriteString("frac_long,fw_blocks,el_gen0,el_gen1,el_blocks,fw_writes_per_s,el_writes_per_s,fw_mem_bytes,el_mem_bytes\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%g,%d,%d,%d,%d,%.3f,%.3f,%.0f,%.0f\n",
			p.FracLong, p.FWBlocks, p.ELGen0, p.ELGen1, p.ELBlocks,
			p.FWBW, p.ELBW, p.FWMemPeak, p.ELMemPeak)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elbench:", err)
	os.Exit(1)
}
