// Command elsim runs a single configured simulation of ephemeral or
// firewall logging and prints its report — the Go equivalent of the
// paper's C simulator binary (section 3).
//
// Usage:
//
//	elsim -init cfg.json          write the default configuration and exit
//	elsim -config cfg.json        run a configuration file
//	elsim -mode fw -gens 123      run ad hoc, overriding the defaults
//	elsim -seeds 8 -parallel 4    fan one configuration across 8 seeds
//
// The default configuration is the paper's 5%-mix EL run at its measured
// minimum generation sizes (18+16 blocks, recirculation off).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ellog/internal/config"
	"ellog/internal/fault"
	"ellog/internal/harness"
	"ellog/internal/metrics"
	"ellog/internal/multilog"
	"ellog/internal/obs"
	"ellog/internal/recovery"
	"ellog/internal/runner"
	"ellog/internal/sim"
	"ellog/internal/trace"
)

func main() {
	var (
		initPath   = flag.String("init", "", "write the default configuration JSON to this path and exit")
		configPath = flag.String("config", "", "configuration JSON to run")
		mode       = flag.String("mode", "", "override: el or fw")
		gens       = flag.String("gens", "", "override: comma-separated generation sizes in blocks, e.g. 18,16")
		recirc     = flag.Bool("recirc", false, "override: enable recirculation in the last generation")
		runtime    = flag.Float64("runtime", 0, "override: simulated seconds")
		fracLong   = flag.Float64("long", -1, "override: fraction of 10s transactions in the paper mix")
		seed       = flag.Uint64("seed", 0, "override: random seed")
		flushMS    = flag.Int64("flush-ms", 0, "override: per-object flush transfer time in ms")
		verbose    = flag.Bool("v", false, "also print workload statistics")
		traceN     = flag.Int("trace", 0, "dump the last N logging-manager trace events")
		seeds      = flag.Int("seeds", 1, "fan the configuration across this many consecutive seeds")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations when -seeds > 1 (0 = GOMAXPROCS)")
		traceOut   = flag.String("trace-out", "", "stream every trace event to this file (inspect with eltrace)")
		traceFmt   = flag.String("trace-format", "", "trace-out format: jsonl (default) or binary")
		probesOut  = flag.String("probes-out", "", "sample standard probes and write the series JSON to this file")
		probeMS    = flag.Int64("probe-ms", 0, "probe sampling cadence in simulated ms (default 100)")
		plot       = flag.String("plot", "", "after the run, ASCII-plot the first sampled series whose name contains this substring (needs -probes-out)")
		shards     = flag.Int("shards", 0, "override: run as this many shared-nothing shards (multilog; >= 2)")
		crossFrac  = flag.Float64("cross-frac", -1, "override: fraction of transactions spanning two shards (needs -shards)")
		hashPart   = flag.Bool("hash", false, "override: hash declustering instead of range partitioning (needs -shards)")
		pdes       = flag.Int("pdes", 0, "run shards as parallel logical processes on this many workers (PDES; 1 = sequential reference execution)")
	)
	flag.Parse()

	if *initPath != "" {
		if err := config.Default().Save(*initPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote default configuration to %s\n", *initPath)
		return
	}

	cfg := config.Default()
	if *configPath != "" {
		var err error
		cfg, err = config.Load(*configPath)
		if err != nil {
			fatal(err)
		}
	}
	if *mode != "" {
		cfg.Mode = *mode
	}
	if *gens != "" {
		var sizes []int
		for _, part := range strings.Split(*gens, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -gens %q: %w", *gens, err))
			}
			sizes = append(sizes, n)
		}
		cfg.Generations = sizes
	}
	if *recirc {
		cfg.Recirculate = true
	}
	if *runtime > 0 {
		cfg.RuntimeS = *runtime
	}
	if *fracLong >= 0 {
		cfg.Mix = []config.TxTypeJSON{
			{Name: "short-1s", Prob: 1 - *fracLong, LifetimeMS: 1000, NumRecords: 2, RecordSize: 100},
			{Name: "long-10s", Prob: *fracLong, LifetimeMS: 10000, NumRecords: 4, RecordSize: 100},
		}
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *flushMS > 0 {
		cfg.FlushTransferMS = *flushMS
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	if *crossFrac >= 0 {
		cfg.CrossShardFrac = *crossFrac
	}
	if *hashPart {
		cfg.PartitionHash = true
	}

	if *pdes > 0 {
		if *seeds > 1 || *traceN > 0 {
			fatal(fmt.Errorf("pdes runs support neither -seeds nor -trace yet"))
		}
		if cfg.Faults != nil && cfg.Faults.ToFault().Active() {
			fatal(config.Unsupported("pdes", "faults",
				"drop the faults section; fault injection is sequential-only"))
		}
		if cfg.Shards < 1 {
			cfg.Shards = 1 // single-LP run: the sequential reduction
		}
		runPDES(cfg, *pdes, *traceOut, *traceFmt, *probesOut, *probeMS, *verbose)
		return
	}

	if cfg.Shards > 1 {
		if *seeds > 1 || *traceN > 0 || *traceOut != "" || *probesOut != "" {
			fatal(fmt.Errorf("sharded runs support none of -seeds/-trace/-trace-out/-probes-out yet"))
		}
		if cfg.Faults != nil && cfg.Faults.ToFault().Active() {
			fatal(config.Unsupported("sharded", "faults",
				"drop the faults section; use elchaos -shards for crash campaigns"))
		}
		runSharded(cfg, *verbose)
		return
	}

	// Observability: the config's section is the base; flags override.
	var ocfg obs.Config
	if cfg.Observability != nil {
		ocfg = cfg.Observability.ToObs()
	}
	if *traceOut != "" {
		ocfg.TracePath = *traceOut
	}
	if *traceFmt != "" {
		ocfg.TraceFormat = *traceFmt
	}
	if *probesOut != "" {
		ocfg.ProbesPath = *probesOut
	}
	if *probeMS > 0 {
		ocfg.SampleInterval = sim.Time(*probeMS) * sim.Millisecond
	}

	hcfg, err := cfg.ToHarness()
	if err != nil {
		fatal(err)
	}
	if *seeds > 1 {
		if *traceN > 0 {
			fatal(fmt.Errorf("-trace needs a single run; drop -seeds"))
		}
		if ocfg.Armed() {
			fatal(fmt.Errorf("-trace-out/-probes-out need a single run; drop -seeds"))
		}
		if cfg.Faults != nil && cfg.Faults.ToFault().Active() {
			fatal(fmt.Errorf("fault injection needs a single run; drop -seeds (or use elchaos)"))
		}
		runSeeds(cfg, hcfg, *seeds, *parallel, *verbose)
		return
	}
	fmt.Printf("running %s, generations %v (recirculation %v), %s, seed %d\n",
		strings.ToUpper(cfg.Mode), cfg.Generations, cfg.Recirculate,
		sim.Time(cfg.RuntimeS*float64(sim.Second)), cfg.Seed)
	live, err := harness.Build(hcfg)
	if err != nil {
		fatal(err)
	}
	observer, err := obs.New(live.Setup, ocfg)
	if err != nil {
		fatal(err)
	}
	// One composed sink feeds both the flight-recorder ring and the
	// streaming trace file; nil stays nil so an unobserved run keeps the
	// manager's hot path gate closed. The ring only enters the composition
	// when armed — a nil *Ring in a Sink slot would be a non-nil interface.
	var ring *trace.Ring
	var ringSink trace.Sink
	if *traceN > 0 {
		ring = trace.NewRing(*traceN)
		ringSink = ring
	}
	sink := obs.Multi(ringSink, observer.Sink())
	if sink != nil {
		live.Setup.LM.SetTracer(sink)
	}
	// Arm the fault plan only when the configuration asks for one; a run
	// with no (or an all-zero) faults section is byte-identical to a build
	// without the fault package.
	var plan *fault.Plan
	if cfg.Faults != nil {
		if fc := cfg.Faults.ToFault(); fc.Active() {
			plan, err = fault.Attach(live.Setup, fc)
			if err != nil {
				fatal(err)
			}
			if sink != nil {
				plan.SetTracer(sink)
			}
			fmt.Printf("fault plan armed: seed %d, write-fail %.3f, corrupt %.3f, slow %.3f, stall %.3f\n",
				fc.Seed, fc.WriteFailProb, fc.CorruptProb, fc.SlowProb, fc.StallProb)
		}
	}
	live.Setup.Eng.Run(hcfg.Workload.Runtime)
	res := harness.Result{LM: live.Setup.LM.Stats(), Workload: live.Gen.Stats()}
	fmt.Print(res.LM)
	if plan != nil {
		ps := plan.Stats()
		fmt.Printf("faults injected: %d write failures, %d corruptions, %d slowdowns, %d stalls\n",
			ps.WriteFails, ps.Corruptions, ps.Slowdowns, ps.Stalls)
	}
	if *verbose {
		ws := res.Workload
		fmt.Printf("workload: %d started, %d committed, %d killed; end-to-end mean %.3fs p99 %.3fs\n",
			ws.Started, ws.Committed, ws.Killed, ws.EndToEndMean, ws.EndToEndP99)
		names := make([]string, 0, len(ws.PerType))
		for name := range ws.PerType {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-12s %d\n", name, ws.PerType[name])
		}
	}
	if ring != nil {
		fmt.Printf("--- last %d trace events ---\n%s", *traceN, ring.Dump(*traceN))
	}
	if s := observer.Sampler(); s != nil {
		fmt.Printf("probes: %d series, %d ticks at %v cadence -> %s\n",
			len(s.Series()), s.Ticks(), s.Interval(), ocfg.ProbesPath)
		if *plot != "" {
			if sr, ok := s.Find(*plot); ok {
				pts := metrics.Series{Name: sr.Name}
				for _, p := range sr.Points {
					pts.Add(p.At.Seconds(), p.Mean)
				}
				fmt.Print(metrics.AsciiPlot(sr.Name, 72, 14, pts))
			} else {
				fmt.Printf("no sampled series matches %q\n", *plot)
			}
		}
	}
	if err := observer.Close(); err != nil {
		fatal(err)
	}
	if ocfg.TracePath != "" {
		fmt.Printf("trace streamed to %s (inspect with: go run ./cmd/eltrace -in %s)\n",
			ocfg.TracePath, ocfg.TracePath)
	}
	if res.Insufficient() {
		fmt.Println("verdict: INSUFFICIENT disk space for this workload")
		os.Exit(2)
	}
	fmt.Println("verdict: disk space sufficient (no transactions killed)")
}

// runPDES executes the configuration as a parallel discrete-event
// simulation: shards become logical processes under conservative
// synchronization. The worker count is pure scheduling and is printed to
// stderr only — stdout (and the per-LP trace files) are a fixed function
// of (seed, config), which is exactly what the CI determinism matrix
// diffs across worker counts.
func runPDES(cfg config.SimConfig, workers int, traceOut, traceFmt, probesOut string, probeMS int64, verbose bool) {
	pcfg, err := cfg.ToPDES(workers)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pdes: %d workers\n", workers)
	fmt.Printf("running %s x %d LPs (cross frac %.2f), generations %v (recirculation %v), %s, seed %d\n",
		strings.ToUpper(cfg.Mode), pcfg.Shards, pcfg.CrossFrac, cfg.Generations, cfg.Recirculate,
		sim.Time(cfg.RuntimeS*float64(sim.Second)), cfg.Seed)
	live, err := multilog.BuildPDES(pcfg)
	if err != nil {
		fatal(err)
	}
	// Tracing stays LP-local: each shard streams to its own file, so the
	// union of files is worker-invariant even though no global event order
	// exists during a window.
	var observers []*obs.Observer
	if traceOut != "" {
		for i, s := range live.Shards {
			ocfg := obs.Config{TracePath: fmt.Sprintf("%s.lp%d", traceOut, i), TraceFormat: traceFmt}
			o, err := obs.New(s.Setup, ocfg)
			if err != nil {
				fatal(err)
			}
			s.Setup.LM.SetTracer(o.Sink())
			observers = append(observers, o)
		}
	}
	// Probe sampling is LP-local too: each shard gets its own sampler
	// ticking on its own engine and reading only that shard's state, so
	// the ticks never cross an LP boundary. Series names carry an lp=
	// label on top of the canonical schema, and the merged dump
	// concatenates per-LP snapshots in LP-index order — a fixed function
	// of (seed, config) for any worker count, which is what the CI
	// determinism matrix diffs.
	var samplers []*obs.Sampler
	if probesOut != "" {
		interval := sim.Time(probeMS) * sim.Millisecond
		for i, s := range live.Shards {
			smp := obs.NewSampler(s.LP.Engine, interval, 0)
			lp := strconv.Itoa(i)
			targets := obs.ProbeTargets{LM: s.Setup.LM, Dev: s.Setup.Dev, Flush: s.Setup.Flush}
			for _, p := range obs.StandardProbes(targets) {
				smp.Register(obs.WithLabel(p.Name, "lp", lp), p.Fn)
			}
			smp.Start()
			samplers = append(samplers, smp)
		}
	}
	live.Run()
	st := live.Stats()
	fmt.Print(st)
	if verbose {
		for i, ps := range st.PerShard {
			fmt.Printf("--- shard %d ---\n%s", i, ps)
		}
	}
	for _, o := range observers {
		if err := o.Close(); err != nil {
			fatal(err)
		}
	}
	if traceOut != "" {
		fmt.Printf("traces streamed to %s.lp0 .. %s.lp%d\n", traceOut, traceOut, len(live.Shards)-1)
	}
	if probesOut != "" {
		var series []obs.Series
		for _, smp := range samplers {
			series = append(series, smp.Series()...)
		}
		f, err := os.Create(probesOut)
		if err != nil {
			fatal(err)
		}
		err = obs.WriteSeriesJSON(f, samplers[0].Interval(), series)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		// Every LP ticks to the same horizon at the same cadence, so any
		// sampler's tick count describes them all.
		fmt.Printf("probes: %d series across %d LPs, %d ticks at %v cadence -> %s\n",
			len(series), len(samplers), samplers[0].Ticks(), samplers[0].Interval(), probesOut)
	}
	if live.Insufficient() {
		fmt.Println("verdict: INSUFFICIENT disk space for this workload")
		os.Exit(2)
	}
	fmt.Println("verdict: disk space sufficient (no transactions killed)")
}

// runSharded executes the configuration as a shared-nothing sharded
// system behind the multilog router, prints aggregate and 2PC statistics,
// and verifies that whole-machine crash recovery at end of run would
// reproduce exactly the acknowledged commits.
func runSharded(cfg config.SimConfig, verbose bool) {
	scfg, err := cfg.ToSharded()
	if err != nil {
		fatal(err)
	}
	routing := fmt.Sprintf("cross-shard frac %.2f", cfg.CrossShardFrac)
	if cfg.PartitionHash {
		routing = "hash declustering"
	}
	fmt.Printf("running %s x %d shards (%s), generations %v (recirculation %v), %s, seed %d\n",
		strings.ToUpper(cfg.Mode), cfg.Shards, routing, cfg.Generations, cfg.Recirculate,
		sim.Time(cfg.RuntimeS*float64(sim.Second)), cfg.Seed)
	live, err := multilog.RunSharded(scfg)
	if err != nil {
		fatal(err)
	}
	st := live.Sys.Stats()
	ws := live.Gen.Stats()
	rs := live.Router.Stats()
	fmt.Printf("aggregate: %d blocks across %d logs, %.2f writes/s, %d killed, mem peak %.0f B\n",
		st.TotalBlocks, live.Sys.Partitions(), st.Bandwidth, st.Killed, st.MemPeak)
	fmt.Printf("workload: %d started, %d committed (%d cross-shard of %d started), %d killed\n",
		ws.Started, ws.Committed, ws.CrossCommitted, ws.CrossStarted, ws.Killed)
	fmt.Printf("commit e2e: local mean %.3fs p99 %.3fs; cross-shard mean %.3fs p99 %.3fs\n",
		ws.LocalEndToEndMean, ws.LocalEndToEndP99, ws.CrossEndToEndMean, ws.CrossEndToEndP99)
	fmt.Printf("router: %d local commits, %d distributed (2PC) commits, %d cross-shard aborts\n",
		rs.LocalCommits, rs.DistCommits, rs.Aborted)
	if verbose {
		for i, ps := range st.PerPartition {
			fmt.Printf("--- shard %d ---\n%s", i, ps)
		}
	}
	merged, report, err := live.Sys.RecoverAll(0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recovery: parallel %v (serial %v), %d in-doubt branches (%d resolved commit, %d presumed abort)\n",
		report.ParallelTime, report.SerialTime, report.InDoubt, report.ResolvedCommit, report.ResolvedAbort)
	if err := recovery.VerifyOracle(merged, live.Gen.Oracle()); err != nil {
		fmt.Printf("recovery verification FAILED: %v\n", err)
		os.Exit(2)
	}
	fmt.Println("recovery verified: recovered state matches every acknowledged commit")
	if live.Sys.Insufficient() {
		fmt.Println("verdict: INSUFFICIENT disk space for this workload")
		os.Exit(2)
	}
	fmt.Println("verdict: disk space sufficient (no transactions killed)")
}

// runSeeds fans one configuration across n consecutive seeds through a
// worker pool and prints a per-seed summary line in seed order. Each
// simulation stays single-threaded and deterministic; only whole runs fan
// out, so every line is the same one a sequential loop would print.
func runSeeds(cfg config.SimConfig, base harness.Config, n, parallel int, verbose bool) {
	fmt.Printf("running %s, generations %v (recirculation %v), %s, seeds %d..%d\n",
		strings.ToUpper(cfg.Mode), cfg.Generations, cfg.Recirculate,
		sim.Time(cfg.RuntimeS*float64(sim.Second)), base.Seed, base.Seed+uint64(n)-1)
	cfgs := make([]harness.Config, n)
	for i := range cfgs {
		cfgs[i] = base
		cfgs[i].Seed = base.Seed + uint64(i)
	}
	pool := runner.New(parallel)
	start := time.Now() //ellint:allow wallclock operator feedback on run cost
	results, err := pool.RunAll(cfgs)
	if err != nil {
		fatal(err)
	}
	insufficient := 0
	for i, res := range results {
		verdict := "sufficient"
		if res.Insufficient() {
			verdict = "INSUFFICIENT"
			insufficient++
		}
		fmt.Printf("seed %-4d %-12s killed=%d emergency=%d stalls=%d writes/s=%.3f\n",
			cfgs[i].Seed, verdict, res.Workload.Killed,
			res.LM.EmergencyBlocks, res.LM.RefugeeStalls, res.LM.TotalBandwidth)
		if verbose {
			ws := res.Workload
			fmt.Printf("  %d started, %d committed; end-to-end mean %.3fs p99 %.3fs\n",
				ws.Started, ws.Committed, ws.EndToEndMean, ws.EndToEndP99)
		}
	}
	fmt.Printf("(%d runs on %d workers in %v wall clock)\n",
		n, pool.Workers(), time.Since(start).Round(time.Millisecond)) //ellint:allow wallclock operator feedback, not a simulation result
	if insufficient > 0 {
		fmt.Printf("verdict: INSUFFICIENT disk space for %d of %d seeds\n", insufficient, n)
		os.Exit(2)
	}
	fmt.Println("verdict: disk space sufficient for every seed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elsim:", err)
	os.Exit(1)
}
