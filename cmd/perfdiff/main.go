// Command perfdiff compares two machine-readable benchmark reports
// (written by `elbench -json`, internal/perf schema) and exits nonzero if
// any gated metric moved past the tolerance — the benchmark-regression
// gate CI runs against the committed baseline.
//
// Usage:
//
//	perfdiff -base results/BENCH_2.json -new BENCH_new.json [-tol 0.15] [-v]
//
// Exit status: 0 all gated metrics within tolerance, 1 regression (or a
// gated metric vanished), 2 usage or frame mismatch. Metrics listed in the
// reports' "informational" set (wall-clock timings, events/s) are printed
// but never gate. A change past tolerance fails in either direction: the
// gated values are deterministic simulation outputs, so a surprise
// improvement also means the baseline no longer describes the code —
// refresh it (see README.md) with the change that explains the move.
package main

import (
	"flag"
	"fmt"
	"os"

	"ellog/internal/perf"
)

func main() {
	var (
		basePath = flag.String("base", "", "baseline report (committed BENCH_*.json)")
		newPath  = flag.String("new", "", "freshly measured report to compare")
		tol      = flag.Float64("tol", 0.15, "relative tolerance per gated metric (0.15 = ±15%)")
		verbose  = flag.Bool("v", false, "list within-tolerance metrics too")
	)
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "perfdiff: -base and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	if *tol < 0 {
		fmt.Fprintln(os.Stderr, "perfdiff: negative -tol")
		os.Exit(2)
	}
	base, err := perf.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := perf.ReadFile(*newPath)
	if err != nil {
		fatal(err)
	}
	if !perf.SameFrame(base, cur) {
		fmt.Fprintf(os.Stderr, "perfdiff: frame mismatch — base seed=%d frame=%+v, new seed=%d frame=%+v\n"+
			"reports are only comparable at one seed and frame; re-measure with the baseline's flags\n",
			base.Seed, base.Frame, cur.Seed, cur.Frame)
		os.Exit(2)
	}
	deltas, regressed := perf.Diff(base, cur, *tol)
	fmt.Print(perf.FormatDeltas(deltas, *tol, *verbose))
	if regressed {
		fmt.Println(perf.FailureSummary(deltas))
		os.Exit(1)
	}
	fmt.Println("OK: all gated metrics within tolerance")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfdiff:", err)
	os.Exit(2)
}
