// Command elchaos exercises the fault-injection and crash-campaign
// subsystem (internal/fault) against the paper's logging model.
//
// Two modes:
//
//	elchaos                         chaos: run the small default workload
//	                                under seeded I/O faults and verify that
//	                                every acknowledged commit survives
//	                                recovery once the run drains
//	elchaos -campaign               campaign: sweep deterministic crash
//	                                points — after every block-write
//	                                completion and mid-write at torn
//	                                boundaries — recovering and verifying
//	                                at each point
//	elchaos -campaign -shards 3     cross-shard campaign: run the workload
//	                                sharded with 2PC-in-the-log and sweep
//	                                whole-machine and single-shard crashes
//	                                through every two-phase commit window,
//	                                verifying atomicity at each point
//
// Examples:
//
//	elchaos -write-fail 0.25 -corrupt 0 -runtime 10
//	elchaos -campaign -max-points 60 -workers 4
//	elchaos -campaign -config cfg.json -torn-fracs 0.25,0.75
//	elchaos -campaign -shards 3 -cross-frac 0.3 -max-points 200
//
// Both modes are deterministic for a fixed (seed, fault-seed) pair; a
// parallel campaign (-workers > 1) is byte-identical to a sequential one.
// Exit status 1 means the recovery property was violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ellog/internal/config"
	"ellog/internal/fault"
	"ellog/internal/harness"
	"ellog/internal/multilog"
	"ellog/internal/obs"
	"ellog/internal/recovery"
	"ellog/internal/runner"
	"ellog/internal/sim"
	"ellog/internal/trace"
)

func main() {
	var (
		configPath = flag.String("config", "", "configuration JSON (default: a small built-in chaos workload)")
		seed       = flag.Uint64("seed", 0, "override: workload random seed")
		runtimeS   = flag.Float64("runtime", 0, "override: simulated seconds of transaction initiation")

		campaign  = flag.Bool("campaign", false, "sweep crash points instead of running chaos")
		maxPoints = flag.Int("max-points", 0, "campaign: bound the sweep to ~N points spanning the run (0 = all)")
		tornFracs = flag.String("torn-fracs", "", "campaign: comma-separated torn prefix fractions (default 0.3,0.7)")
		workers   = flag.Int("workers", 0, "campaign: parallel crash-point runs (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "campaign: run sharded with this many shards and sweep cross-shard atomicity (>= 2)")
		crossFrac = flag.Float64("cross-frac", 0.3, "campaign: fraction of transactions spanning two shards (with -shards)")

		faultSeed = flag.Uint64("fault-seed", 1, "chaos: fault plan seed")
		writeFail = flag.Float64("write-fail", 0.1, "chaos: transient write-error probability per block write")
		corrupt   = flag.Float64("corrupt", 0.05, "chaos: silent single-bit corruption probability per block write")
		slow      = flag.Float64("slow", 0.1, "chaos: latency-inflation probability per block write")
		stall     = flag.Float64("stall", 0.05, "chaos: stall probability per flush-drive service")
		verbose   = flag.Bool("v", false, "also print workload statistics")
	)
	flag.Parse()

	cfg := smallConfig()
	if *configPath != "" {
		var err error
		cfg, err = config.Load(*configPath)
		if err != nil {
			fatal(err)
		}
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *runtimeS > 0 {
		cfg.RuntimeS = *runtimeS
	}
	hcfg, err := cfg.ToHarness()
	if err != nil {
		fatal(err)
	}

	if *campaign {
		if cfg.Faults != nil && cfg.Faults.ToFault().Active() {
			fatal(fmt.Errorf("campaign bases must be fault-free: drop the faults section (crashes are the campaign's fault model)"))
		}
		if *shards > 0 {
			cfg.Shards = *shards
			cfg.CrossShardFrac = *crossFrac
		}
		if cfg.Shards > 1 {
			runCrossCampaign(cfg, *maxPoints, *workers)
			return
		}
		runCampaign(hcfg, *tornFracs, *maxPoints, *workers)
		return
	}
	if *shards > 0 {
		fatal(fmt.Errorf("-shards is a campaign mode; add -campaign (chaos I/O faults are single-log only)"))
	}
	runChaos(cfg, hcfg, chaosConfig(cfg, *faultSeed, *writeFail, *corrupt, *slow, *stall), *verbose)
}

// smallConfig is a deliberately small run — a couple of simulated seconds,
// a thousand objects, two flush drives — so chaos runs finish instantly
// and exhaustive campaign sweeps stay within CI budgets.
func smallConfig() config.SimConfig {
	cfg := config.Default()
	cfg.Generations = []int{10, 10}
	cfg.Recirculate = false
	cfg.Mix = []config.TxTypeJSON{
		{Name: "short", Prob: 1, LifetimeMS: 300, NumRecords: 2, RecordSize: 100},
	}
	cfg.ArrivalRate = 40
	cfg.RuntimeS = 2
	cfg.NumObjects = 1000
	cfg.FlushDrives = 2
	cfg.FlushTransferMS = 5
	return cfg
}

// chaosConfig merges the configuration file's faults section (if any) with
// explicitly set command-line flags, flags winning.
func chaosConfig(cfg config.SimConfig, faultSeed uint64, writeFail, corrupt, slow, stall float64) fault.Config {
	fc := fault.Config{
		Seed:          faultSeed,
		WriteFailProb: writeFail,
		CorruptProb:   corrupt,
		SlowProb:      slow,
		StallProb:     stall,
	}
	if cfg.Faults == nil {
		return fc
	}
	base := cfg.Faults.ToFault()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fault-seed":
			base.Seed = faultSeed
		case "write-fail":
			base.WriteFailProb = writeFail
		case "corrupt":
			base.CorruptProb = corrupt
		case "slow":
			base.SlowProb = slow
		case "stall":
			base.StallProb = stall
		}
	})
	return base
}

// runChaos runs the workload under fire, drains it, and verifies that the
// crash image still recovers every acknowledged commit.
func runChaos(cfg config.SimConfig, hcfg harness.Config, fc fault.Config, verbose bool) {
	live, err := harness.Build(hcfg)
	if err != nil {
		fatal(err)
	}
	plan, err := fault.Attach(live.Setup, fc)
	if err != nil {
		fatal(err)
	}
	// Chaos runs are deliberately small, so recording the complete event
	// stream is cheap; a failing run can then be dumped byte-for-byte and
	// triaged offline with eltrace, instead of rerunning under a debugger.
	ring := trace.NewRing(2048)
	capture := &obs.Capture{}
	sink := obs.Multi(ring, capture)
	live.Setup.LM.SetTracer(sink)
	plan.SetTracer(sink)
	fail := func(format string, args ...any) {
		fmt.Printf(format, args...)
		fmt.Printf("--- last 40 trace events ---\n%s", ring.Dump(40))
		path := fmt.Sprintf("elchaos-chaos-seed%d.jsonl", hcfg.Seed)
		if werr := obs.WriteJSONLFile(path, capture.Events); werr != nil {
			fmt.Fprintln(os.Stderr, "elchaos: writing trace dump:", werr)
		} else {
			fmt.Printf("full trace (%d events) written to %s (inspect with: go run ./cmd/eltrace -in %s)\n",
				len(capture.Events), path, path)
		}
		os.Exit(1)
	}
	fmt.Printf("chaos: %s, generations %v, %s, seed %d; fault seed %d (write-fail %.3f, corrupt %.3f, slow %.3f, stall %.3f)\n",
		strings.ToUpper(cfg.Mode), cfg.Generations,
		sim.Time(cfg.RuntimeS*float64(sim.Second)), hcfg.Seed,
		fc.Seed, fc.WriteFailProb, fc.CorruptProb, fc.SlowProb, fc.StallProb)

	// Run past the workload runtime so retry windows close and abandoned
	// blocks' committed updates reach the flush disks.
	live.Setup.Eng.Run(hcfg.Workload.Runtime + 30*sim.Second)

	ps := plan.Stats()
	ls := live.Setup.LM.Stats()
	ws := live.Gen.Stats()
	fmt.Printf("faults injected: %d write failures, %d corruptions, %d slowdowns, %d stalls\n",
		ps.WriteFails, ps.Corruptions, ps.Slowdowns, ps.Stalls)
	fmt.Printf("manager: %d write errors seen, %d retries, %d writes abandoned, %d transactions killed\n",
		ls.WriteErrors, ls.WriteRetries, ls.AbandonedWrites, ws.Killed)
	if verbose {
		fmt.Print(ls)
		fmt.Printf("workload: %d started, %d committed, %d killed; end-to-end mean %.3fs p99 %.3fs\n",
			ws.Started, ws.Committed, ws.Killed, ws.EndToEndMean, ws.EndToEndP99)
	}
	if err := live.Setup.LM.CheckInvariants(); err != nil {
		fail("verdict: FAIL — manager invariants violated after chaos: %v\n", err)
	}
	recovered, rres, err := recovery.Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		fail("verdict: FAIL — recovery died on the chaos image: %v\n", err)
	}
	fmt.Printf("recovery: %d blocks read, %d torn/corrupt blocks detected, %d records salvaged, %d winners\n",
		rres.BlocksRead, rres.TornBlocks, rres.SalvagedRecs, rres.Winners)
	if fc.CorruptProb > 0 {
		// Silent corruption may legitimately discard durable suffixes, so the
		// strict oracle does not apply; surviving recovery is the contract.
		fmt.Println("verdict: PASS — recovery survived the corrupt image (oracle check skipped: corruption armed)")
		return
	}
	if err := recovery.VerifyOracle(recovered, live.Gen.Oracle()); err != nil {
		fail("verdict: FAIL — acknowledged commit lost under chaos: %v\n", err)
	}
	fmt.Printf("verdict: PASS — all %d acknowledged commits recovered exactly\n", ws.Committed)
}

// runCampaign sweeps crash points over the fault-free base configuration.
func runCampaign(hcfg harness.Config, tornFracs string, maxPoints, workers int) {
	ccfg := fault.CampaignConfig{Base: hcfg, MaxPoints: maxPoints}
	if tornFracs != "" {
		for _, part := range strings.Split(tornFracs, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -torn-fracs %q: %w", tornFracs, err))
			}
			ccfg.TornFracs = append(ccfg.TornFracs, f)
		}
	}
	pool := runner.New(workers)
	fmt.Printf("campaign: seed %d, generations %v, %v runtime, %d workers\n",
		hcfg.Seed, hcfg.LM.GenSizes, hcfg.Workload.Runtime, pool.Workers())
	start := time.Now() //ellint:allow wallclock operator feedback on campaign cost
	res, err := fault.RunCampaign(ccfg, pool)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res)
	fmt.Printf("(%v wall clock)\n", time.Since(start).Round(time.Millisecond)) //ellint:allow wallclock operator feedback, not a simulation result
	if !res.Passed() {
		// A sweep keeps no traces — points are too numerous — so rerun the
		// first failing point alone with a capture sink and dump its full
		// event stream for eltrace.
		f := res.Failures[0]
		capture := &obs.Capture{}
		path := fmt.Sprintf("elchaos-point%d.jsonl", f.Point.Index)
		if _, _, rerr := fault.TracePoint(ccfg, f.Point, capture); rerr != nil {
			fmt.Fprintln(os.Stderr, "elchaos: replaying failing point:", rerr)
		} else if werr := obs.WriteJSONLFile(path, capture.Events); werr != nil {
			fmt.Fprintln(os.Stderr, "elchaos: writing trace dump:", werr)
		} else {
			fmt.Printf("first failure (%v) replayed: %d events written to %s (inspect with: go run ./cmd/eltrace -in %s)\n",
				f.Point, len(capture.Events), path, path)
		}
		os.Exit(1)
	}
}

// runCrossCampaign sweeps whole-machine and single-shard crash points over
// a sharded run with distributed transactions, verifying cross-shard
// atomicity at every point.
func runCrossCampaign(cfg config.SimConfig, maxPoints, workers int) {
	if cfg.GroupCommitTimeoutMS == 0 {
		// Pure group commit splits the traffic across shards and leaves most
		// of the run in unsealed blocks — almost no durable events to crash
		// at. Bound the seal delay so the sweep is dense.
		cfg.GroupCommitTimeoutMS = 20
	}
	// Each shard's object range must split evenly over its flush drives;
	// round the total down so the division works out.
	if q := uint64(cfg.Shards * cfg.FlushDrives); q > 0 && cfg.NumObjects%q != 0 {
		cfg.NumObjects -= cfg.NumObjects % q
	}
	scfg, err := cfg.ToSharded()
	if err != nil {
		fatal(err)
	}
	pool := runner.New(workers)
	fmt.Printf("cross-shard campaign: seed %d, %d shards (cross frac %.2f), generations %v, %v runtime, %d workers\n",
		scfg.Seed, scfg.Shards, scfg.Workload.CrossShardFrac, scfg.LM.GenSizes, scfg.Workload.Runtime, pool.Workers())
	start := time.Now() //ellint:allow wallclock operator feedback on campaign cost
	res, err := multilog.RunCrossCampaign(multilog.CrossCampaignConfig{Base: scfg, MaxPoints: maxPoints}, pool)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res)
	fmt.Printf("(%v wall clock)\n", time.Since(start).Round(time.Millisecond)) //ellint:allow wallclock operator feedback, not a simulation result
	if !res.Passed() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elchaos:", err)
	os.Exit(1)
}
