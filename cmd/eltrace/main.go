// Command eltrace inspects and converts trace files recorded by elsim
// (-trace-out) or elchaos: per-kind summaries, transaction and object
// lifecycle reconstruction with the paper's t1…t5 epoch latencies,
// schema validation, and export to Chrome trace-event JSON for
// ui.perfetto.dev.
//
// Usage:
//
//	eltrace -in trace.jsonl                  # summary
//	eltrace -in trace.jsonl -tail 40         # last 40 events
//	eltrace -in trace.jsonl -tx 17           # one transaction's lifecycle
//	eltrace -in trace.jsonl -obj 123456      # one object's version history
//	eltrace -in trace.jsonl -validate        # strict schema check (exit 1 on error)
//	eltrace -in trace.jsonl -counters probes.json -perfetto out.json
//	eltrace -promcheck metrics.txt           # Prometheus exposition conformance check
package main

import (
	"flag"
	"fmt"
	"os"

	"ellog/internal/logrec"
	"ellog/internal/obs"
	"ellog/internal/obs/live"
	"ellog/internal/sim"
)

func main() {
	var (
		in        = flag.String("in", "", "input trace file (JSONL or binary, auto-detected)")
		tail      = flag.Int("tail", 0, "print the last N events")
		txQ       = flag.Uint64("tx", 0, "reconstruct this transaction's lifecycle (t1…t5)")
		objQ      = flag.Int64("obj", -1, "reconstruct this object's version history")
		perfetto  = flag.String("perfetto", "", "write Chrome trace-event JSON to this file")
		counters  = flag.String("counters", "", "probes JSON (elsim -probes-out) rendered as counter tracks in the Perfetto export")
		validate  = flag.Bool("validate", false, "strict schema validation; exit non-zero on any malformed line")
		maxTx     = flag.Int("max-tx", 0, "cap transaction spans in the Perfetto export (default 300)")
		promcheck = flag.String("promcheck", "", "validate this file as Prometheus text exposition (a scraped elreal /metrics body) and exit")
	)
	flag.Parse()
	if *promcheck != "" {
		f, err := os.Open(*promcheck)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eltrace: %v\n", err)
			os.Exit(1)
		}
		err = live.ValidateExposition(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "eltrace: %s: %v\n", *promcheck, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid Prometheus text exposition\n", *promcheck)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "eltrace: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	events, err := obs.ReadTraceFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eltrace: %s: %v\n", *in, err)
		os.Exit(1)
	}
	if *validate {
		// ReadTraceFile is strict: reaching here means every line parsed
		// and every kind was known.
		fmt.Printf("%s: valid (%d events)\n", *in, len(events))
	}

	ran := *validate
	if *tail > 0 {
		ran = true
		start := len(events) - *tail
		if start < 0 {
			start = 0
		}
		for _, e := range events[start:] {
			fmt.Println(e)
		}
	}
	if *txQ != 0 {
		ran = true
		ix := obs.BuildIndex(events)
		out, ok := ix.FormatTx(logrec.TxID(*txQ))
		if !ok {
			fmt.Fprintf(os.Stderr, "eltrace: tx %d not in trace (%d transactions recorded)\n", *txQ, ix.NumTx())
			os.Exit(1)
		}
		fmt.Print(out)
	}
	if *objQ >= 0 {
		ran = true
		ix := obs.BuildIndex(events)
		out, ok := ix.FormatObj(logrec.OID(*objQ))
		if !ok {
			fmt.Fprintf(os.Stderr, "eltrace: obj %d not in trace\n", *objQ)
			os.Exit(1)
		}
		fmt.Print(out)
	}
	if *perfetto != "" {
		ran = true
		var series []obs.Series
		if *counters != "" {
			var interval sim.Time
			interval, series, err = obs.ReadProbesFile(*counters)
			if err != nil {
				fmt.Fprintf(os.Stderr, "eltrace: %v\n", err)
				os.Exit(1)
			}
			_ = interval
		}
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eltrace: %v\n", err)
			os.Exit(1)
		}
		st, err := obs.WritePerfetto(f, events, series, obs.PerfettoOptions{MaxTx: *maxTx})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "eltrace: writing %s: %v\n", *perfetto, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %s\n", *perfetto, st)
	}
	if !ran {
		fmt.Print(obs.FormatSummary(events))
	}
}
