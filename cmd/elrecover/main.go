// Command elrecover demonstrates crash recovery on an ephemeral log: it
// runs the paper's workload, crashes the system at a chosen instant, takes
// the crash image (whatever block writes had completed), performs
// single-pass redo recovery, and verifies the result against the ground
// truth of durably committed updates.
//
// Usage:
//
//	elrecover                      crash the 5%-mix EL run at t=60s
//	elrecover -crash 200 -recirc   crash later, with recirculation on
//	elrecover -gens 18,10 -recirc  the paper's tightest recirculating log
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/recovery"
	"ellog/internal/sim"
)

func main() {
	var (
		gens     = flag.String("gens", "18,16", "generation sizes in blocks")
		recirc   = flag.Bool("recirc", false, "enable recirculation in the last generation")
		crashS   = flag.Float64("crash", 60, "crash time in simulated seconds")
		fracLong = flag.Float64("long", 0.05, "fraction of 10s transactions")
		seed     = flag.Uint64("seed", 1, "random seed")
		objects  = flag.Uint64("objects", 1_000_000, "database object count")
	)
	flag.Parse()

	var sizes []int
	for _, part := range strings.Split(*gens, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad -gens: %w", err))
		}
		sizes = append(sizes, n)
	}
	crashAt := sim.Time(*crashS * float64(sim.Second))

	cfg := harness.PaperDefaults(*fracLong)
	cfg.Seed = *seed
	cfg.LM = core.Params{Mode: core.ModeEphemeral, GenSizes: sizes, Recirculate: *recirc}
	cfg.Workload.Runtime = crashAt + sim.Second
	cfg.Workload.NumObjects = *objects
	cfg.Flush.NumObjects = *objects

	live, err := harness.Build(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("running EL %v (recirculation %v) at the paper workload, %.0f%% long transactions...\n",
		sizes, *recirc, *fracLong*100)
	live.Setup.Eng.Run(crashAt)

	lm := live.Setup.LM.Stats()
	ws := live.Gen.Stats()
	fmt.Printf("CRASH at %v: %d transactions committed, %d in flight, %d log writes done\n",
		crashAt, ws.Committed, ws.Started-ws.Committed-ws.Killed, lm.TotalWrites)
	fmt.Printf("stable database holds %d objects; log occupies %d blocks\n\n",
		live.Setup.DB.Len(), lm.TotalBlocks)

	recovered, res, err := recovery.Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Println("single-pass recovery (read the whole log into memory, redo winners):")
	fmt.Printf("  blocks read:        %d (%d bytes, %d records)\n", res.BlocksRead, res.BytesRead, res.RecordsRead)
	fmt.Printf("  winners / losers:   %d / %d\n", res.Winners, res.Losers)
	fmt.Printf("  updates applied:    %d (%d already covered by the stable DB)\n", res.Applied, res.Stale)
	fmt.Printf("  modeled time:       %v at %v per block\n\n", res.EstimatedTime, recovery.DefaultBlockRead)

	if err := recovery.VerifyOracle(recovered, live.Gen.Oracle()); err != nil {
		fmt.Println("VERIFICATION FAILED:", err)
		os.Exit(2)
	}
	fmt.Printf("verified: recovered state equals the durably committed state (%d objects)\n", len(live.Gen.Oracle()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elrecover:", err)
	os.Exit(1)
}
