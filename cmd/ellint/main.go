// Command ellint enforces the repository's determinism contract (see
// DESIGN.md, "Determinism contract") with the analyzers in internal/lint.
//
// Standalone:
//
//	go run ./cmd/ellint ./...          # report violations, exit 1 if any
//	go run ./cmd/ellint -fix ./...     # apply mechanical fixes (maporder)
//	go run ./cmd/ellint -doc           # print each rule's documentation
//	go run ./cmd/ellint -json out.json ./...  # also write machine-readable findings
//
// As a vet tool (speaks cmd/go's unitchecker .cfg protocol, so results are
// cached by the build cache):
//
//	go build -o bin/ellint ./cmd/ellint
//	go vet -vettool=$PWD/bin/ellint ./...
//
// Exit status: 0 clean, 1 findings (standalone), 2 findings (vet mode,
// matching x/tools unitchecker), >2 operational error.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ellog/internal/lint"
)

func main() {
	// cmd/go probes vet tools before handing them a unit config.
	for _, arg := range os.Args[1:] {
		switch {
		case strings.HasPrefix(arg, "-V"):
			// cmd/go parses this exact shape ("name version devel ...
			// buildID=xxx") and keys the build cache on it, so hash the
			// binary: a rebuilt ellint must invalidate cached vet results.
			name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
			exe, err := os.Executable()
			if err != nil {
				fatal(err)
			}
			data, err := os.ReadFile(exe)
			if err != nil {
				fatal(err)
			}
			h := sha256.Sum256(data)
			fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, h[:16])
			return
		case arg == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(arg, ".cfg"):
			os.Exit(unitcheck(arg))
		}
	}

	fix := flag.Bool("fix", false, "apply suggested fixes (maporder sorted-keys rewrite) to the source tree")
	doc := flag.Bool("doc", false, "print each rule's documentation and scope, then exit")
	jsonOut := flag.String("json", "", "write machine-readable findings (ellint-findings/1 schema) to this `file`; written even when clean")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: ellint [-fix] [-json file] [package pattern ...]\n\nRules enforced (suppress a site with //ellint:allow <rule> <reason>):\n")
		for _, rule := range lint.Ruleset {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", rule.Name, firstSentence(rule.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *doc {
		for _, rule := range lint.Ruleset {
			fmt.Printf("%s\n%s\n%s\n\n", rule.Name, strings.Repeat("-", len(rule.Name)), rule.Doc)
			if len(rule.Scope.Only) > 0 {
				fmt.Printf("  applies only under: %s\n\n", strings.Join(rule.Scope.Only, ", "))
			}
			if len(rule.Scope.Skip) > 0 {
				fmt.Printf("  exempt packages: %s\n\n", strings.Join(rule.Scope.Skip, ", "))
			}
		}
		return
	}

	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	findings, err := lint.Run(dir, flag.Args())
	if err != nil {
		fatal(err)
	}
	if *fix {
		fixed, err := lint.ApplyFixes(findings)
		if err != nil {
			fatal(err)
		}
		for _, name := range fixed {
			fmt.Printf("fixed %s\n", name)
		}
		// Re-run: fixes may leave (or reveal) findings that need a human.
		findings, err = lint.Run(dir, flag.Args())
		if err != nil {
			fatal(err)
		}
	}
	// The report is written before the exit decision so CI archives it
	// on both clean and failing runs; exit codes are unchanged by -json.
	if *jsonOut != "" {
		if err := lint.WriteJSONReport(*jsonOut, findings, dir); err != nil {
			fatal(err)
		}
	}
	if len(findings) > 0 {
		fmt.Fprint(os.Stderr, lint.FormatFindings(findings, dir))
		byRule := make(map[string]int)
		for _, f := range findings {
			byRule[f.Analyzer]++
		}
		rules := make([]string, 0, len(byRule))
		for r := range byRule {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		var parts []string
		for _, r := range rules {
			parts = append(parts, fmt.Sprintf("%s %d", r, byRule[r]))
		}
		fmt.Fprintf(os.Stderr, "ellint: %d determinism-contract violation(s): %s\n",
			len(findings), strings.Join(parts, ", "))
		os.Exit(1)
	}
}

func firstSentence(s string) string {
	if i := strings.Index(s, ";"); i > 0 {
		return s[:i]
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ellint:", err)
	os.Exit(3)
}
