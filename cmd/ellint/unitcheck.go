package main

// The vet-tool half of ellint: cmd/go's `go vet -vettool=ellint` drives the
// tool once per package unit, handing it a JSON config file (the same
// protocol golang.org/x/tools/go/analysis/unitchecker speaks). The driver
// has already compiled every dependency, so type information comes from gc
// export data files listed in the config — no module loading needed here,
// and results are cached by the build cache.
//
// The interprocedural analyzers need per-function summaries to cross
// package boundaries, and under vet the only channel between units is the
// facts file (.vetx): each unit writes its summaries to VetxOutput, and
// reads its dependencies' from PackageVetx — exactly how x/tools analysis
// facts travel. Module dependency units are therefore parsed and
// summarized even when VetxOnly; standard-library units just get an empty
// facts file, since taint roots (time.Now, math/rand) are recognized by
// identity, not by summary.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"ellog/internal/lint"
)

// vetConfig mirrors the fields of cmd/go's vet config that ellint uses.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

const module = "ellog"

// writeFacts serializes pf to the unit's facts file. cmd/go always
// expects one, even when empty.
func writeFacts(cfg *vetConfig, pf lint.PkgFacts) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	data, err := json.Marshal(pf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ellint:", err)
		return 3
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "ellint:", err)
		return 3
	}
	return 0
}

// readFacts merges the module dependencies' facts files. Unreadable or
// undecodable files are skipped rather than fatal: the worst outcome is
// weaker (not wrong) taint propagation, and the -V buildID hash already
// invalidates caches written by a different ellint binary.
func readFacts(cfg *vetConfig) *lint.Facts {
	facts := lint.NewFacts()
	for path, file := range cfg.PackageVetx {
		if path != module && !strings.HasPrefix(path, module+"/") {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		var pf lint.PkgFacts
		if err := json.Unmarshal(data, &pf); err != nil {
			continue
		}
		facts.Add(pf)
	}
	return facts
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ellint:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ellint: %s: %v\n", cfgPath, err)
		return 3
	}

	// ImportPath for test variants looks like "pkg [pkg.test]" or
	// "pkg_test [pkg.test]"; scope rules by the base package path.
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}

	// Non-module units (standard library) carry no summaries worth
	// computing: taint roots are recognized by package identity.
	if importPath != module && !strings.HasPrefix(importPath, module+"/") {
		if code := writeFacts(&cfg, lint.PkgFacts{}); code != 0 || cfg.VetxOnly {
			return code
		}
	}

	// The determinism contract covers shipped code; test files are
	// exercised by the dynamic determinism suites instead. Dropping them
	// here keeps vet's test-variant units ("pkg [pkg.test]") byte-for-byte
	// consistent with the standalone driver — including which fields the
	// nilgate rule infers as nullable.
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeFacts(&cfg, lint.PkgFacts{})
			}
			fmt.Fprintln(os.Stderr, "ellint:", err)
			return 3
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// External test unit (pkg_test): nothing in contract scope.
		return writeFacts(&cfg, lint.PkgFacts{})
	}

	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	if v := cfg.GoVersion; v != "" {
		conf.GoVersion = v
	}
	info := lint.NewInfo()
	pkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return writeFacts(&cfg, lint.PkgFacts{})
		}
		fmt.Fprintf(os.Stderr, "ellint: %s: type error: %v\n", importPath, typeErrs[0])
		return 3
	}

	rel := moduleRel(importPath)
	interp := lint.NewInterp(fset, files, pkg, info, readFacts(&cfg))
	if code := writeFacts(&cfg, interp.Export(lint.SealsRng(rel))); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}

	ctx := &lint.Context{Rel: rel, Interp: interp}
	exit := 0
	for _, rule := range lint.Ruleset {
		if !rule.Scope.Applies(rel) {
			continue
		}
		diags, err := lint.Check(rule.Analyzer, fset, files, pkg, info, ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ellint:", err)
			return 3
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Category, d.Message)
			exit = 2
		}
	}
	return exit
}

// moduleRel strips the module prefix from an import path so ruleset
// scoping sees the same module-relative paths as the standalone driver.
func moduleRel(importPath string) string {
	if importPath == module {
		return ""
	}
	if rest, ok := strings.CutPrefix(importPath, module+"/"); ok {
		return rest
	}
	return importPath
}
