package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"ellog/internal/lint"
)

// buildEllint compiles the binary once per test run.
func buildEllint(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds the binary and type-checks modules; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "ellint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const goMod = "module example.test/exit\n\ngo 1.22\n"

// TestExitCodes pins the documented contract: 0 clean, 1 findings
// (standalone), 3 operational error — with the -json report written in
// the clean and failing cases alike.
func TestExitCodes(t *testing.T) {
	bin := buildEllint(t)

	run := func(dir string, args ...string) int {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0
		}
		exit, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("ellint %v: %v\n%s", args, err, out)
		}
		return exit.ExitCode()
	}

	readReport := func(path string) lint.JSONReport {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var r lint.JSONReport
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatalf("report at %s does not parse: %v", path, err)
		}
		if r.Schema != lint.JSONSchema {
			t.Fatalf("report schema = %q, want %q", r.Schema, lint.JSONSchema)
		}
		return r
	}

	clean := writeModule(t, map[string]string{
		"go.mod": goMod,
		"p.go":   "package p\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	cleanJSON := filepath.Join(t.TempDir(), "clean.json")
	if code := run(clean, "-json", cleanJSON, "./..."); code != 0 {
		t.Errorf("clean module: exit %d, want 0", code)
	}
	if r := readReport(cleanJSON); r.Count != 0 || len(r.Findings) != 0 {
		t.Errorf("clean report has %d findings", r.Count)
	}

	dirty := writeModule(t, map[string]string{
		"go.mod": goMod,
		"p.go": `package p

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	dirtyJSON := filepath.Join(t.TempDir(), "dirty.json")
	if code := run(dirty, "-json", dirtyJSON, "./..."); code != 1 {
		t.Errorf("dirty module: exit %d, want 1", code)
	}
	if r := readReport(dirtyJSON); r.Count == 0 {
		t.Error("dirty report is empty")
	} else if r.Findings[0].Rule != "wallclock" {
		t.Errorf("dirty report rule = %q, want wallclock", r.Findings[0].Rule)
	}

	// Outside any module: operational error.
	if code := run(t.TempDir(), "./..."); code != 3 {
		t.Errorf("no module: exit %d, want 3", code)
	}
}
