module ellog

go 1.22
