package logrec

import (
	"bytes"
	"testing"
)

// FuzzDecodeBlock throws arbitrary bytes at the strict and salvaging block
// decoders. Neither may panic or over-allocate, whatever the input claims
// about itself; and on inputs that do verify, the two decoders must agree.
func FuzzDecodeBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(EncodeBlock(nil))
	f.Add(EncodeBlock([]*Record{NewDataRecord(1, 2, 3, 4, 100)}))
	f.Add(EncodeBlock([]*Record{
		NewTxRecord(1, 10, KindBegin, 7, 8),
		NewDataRecord(2, 11, 7, 42, 100),
		NewTxRecord(3, 12, KindCommit, 7, 8),
	}))
	torn := EncodeBlock([]*Record{NewDataRecord(9, 9, 9, 9, 100), NewDataRecord(10, 10, 9, 10, 100)})
	f.Add(torn[:len(torn)-20])

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeBlock(data)
		salvaged, intact := SalvageBlock(data)
		if err == nil {
			// A strictly valid block must salvage as intact with the same
			// records, byte for byte.
			if !intact || len(salvaged) != len(recs) {
				t.Fatalf("valid block: salvage intact=%v got %d records, strict got %d", intact, len(salvaged), len(recs))
			}
			reenc := EncodeBlock(recs)
			if !bytes.Equal(reenc, data) {
				t.Fatalf("re-encode of decoded block differs from input")
			}
		} else if intact {
			t.Fatalf("SalvageBlock reports intact but DecodeBlock rejected: %v", err)
		}
		// The salvaged records must themselves be well formed.
		for i, r := range salvaged {
			if r.Kind < KindBegin || r.Kind > KindData {
				t.Fatalf("salvaged record %d has invalid kind %d", i, r.Kind)
			}
		}
	})
}
