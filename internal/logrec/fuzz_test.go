// The fuzz target lives in the external test package so it can seed the
// corpus with block images produced by the real-file backend
// (internal/realdev imports logrec, so an internal test here would cycle).
package logrec_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ellog/internal/blockdev"
	"ellog/internal/logrec"
	"ellog/internal/realdev"
	"ellog/internal/realtime"
	"ellog/internal/sim"
)

// realdevCorpus writes a few encoded blocks through the real-file device,
// then reads the on-disk image back and returns the durable payloads —
// the exact byte strings recovery will hand to the decoders. The last
// returned payload comes from a block torn at an unaligned offset: the
// log file is cut mid-payload, so the frame clamps it to a valid-prefix
// candidate just like a real torn write.
func realdevCorpus(f *testing.F) [][]byte {
	f.Helper()
	dir := f.TempDir()
	loop := realtime.New(1)
	dev, err := realdev.Open(loop, dir, realdev.Options{SlotBytes: 8192, Direct: realdev.DirectOff})
	if err != nil {
		f.Fatal(err)
	}
	blocks := [][]byte{
		logrec.EncodeBlock([]*logrec.Record{
			logrec.NewTxRecord(1, 10, logrec.KindBegin, 7, 8),
			logrec.NewDataRecord(2, 11, 7, 42, 100),
			logrec.NewTxRecord(3, 12, logrec.KindCommit, 7, 8),
		}),
		logrec.EncodeBlock([]*logrec.Record{
			logrec.NewTxRecord(4, 13, logrec.KindPrepare, 9, 8),
			logrec.NewTxRecord(5, 14, logrec.KindDecide, 9, 8),
		}),
		logrec.EncodeBlock([]*logrec.Record{
			logrec.NewDataRecord(6, 15, 1, 1, 200),
			logrec.NewDataRecord(7, 16, 2, 2, 200),
			logrec.NewDataRecord(8, 17, 3, 3, 200),
		}),
	}
	for _, b := range blocks {
		id := dev.Alloc(0)
		dev.Write(id, b, func(error) {})
	}
	dev.Seal()
	deadline := loop.Now() + 2*sim.Second
	for dev.InFlight() > 0 && loop.Now() < deadline {
		loop.Run(loop.Now() + sim.Millisecond)
	}
	if err := dev.Close(); err != nil {
		f.Fatal(err)
	}

	// Tear the last slot at an unaligned offset: 16 bytes of frame header
	// survive, the payload is cut 77 bytes in.
	const slot, frameHdr = 8192, 16
	logPath := filepath.Join(dir, "log.dat")
	if err := os.Truncate(logPath, 2*slot+frameHdr+77); err != nil {
		f.Fatal(err)
	}

	im, err := realdev.ReadImage(dir)
	if err != nil {
		f.Fatal(err)
	}
	var out [][]byte
	im.RangeDurable(func(_ blockdev.BlockID, _ int, data []byte) bool {
		out = append(out, data)
		return true
	})
	if len(out) != len(blocks) {
		f.Fatalf("image returned %d payloads, want %d (the torn block must still surface)", len(out), len(blocks))
	}
	if bytes.Equal(out[len(out)-1], blocks[len(blocks)-1]) {
		f.Fatal("torn payload round-tripped intact; the truncation missed")
	}
	return out
}

// FuzzDecodeBlock throws arbitrary bytes at the strict and salvaging block
// decoders. Neither may panic or over-allocate, whatever the input claims
// about itself; and on inputs that do verify, the two decoders must agree.
// The corpus is seeded with real on-disk images from the file backend,
// including a block torn at an unaligned offset, alongside hand-built
// encodings.
func FuzzDecodeBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(logrec.EncodeBlock(nil))
	f.Add(logrec.EncodeBlock([]*logrec.Record{logrec.NewDataRecord(1, 2, 3, 4, 100)}))
	torn := logrec.EncodeBlock([]*logrec.Record{
		logrec.NewDataRecord(9, 9, 9, 9, 100),
		logrec.NewDataRecord(10, 10, 9, 10, 100),
	})
	f.Add(torn[:len(torn)-20])
	for _, payload := range realdevCorpus(f) {
		f.Add(payload)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := logrec.DecodeBlock(data)
		salvaged, intact := logrec.SalvageBlock(data)
		if err == nil {
			// A strictly valid block must salvage as intact with the same
			// records, byte for byte.
			if !intact || len(salvaged) != len(recs) {
				t.Fatalf("valid block: salvage intact=%v got %d records, strict got %d", intact, len(salvaged), len(recs))
			}
			reenc := logrec.EncodeBlock(recs)
			if !bytes.Equal(reenc, data) {
				t.Fatalf("re-encode of decoded block differs from input")
			}
		} else if intact {
			t.Fatalf("SalvageBlock reports intact but DecodeBlock rejected: %v", err)
		}
		// The salvaged records must themselves be well formed.
		for i, r := range salvaged {
			if r.Kind < logrec.KindBegin || r.Kind > logrec.KindDecide {
				t.Fatalf("salvaged record %d has invalid kind %d", i, r.Kind)
			}
		}
	})
}
