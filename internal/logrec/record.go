// Package logrec defines the log record model of the paper (section 2.1):
// two record classes — transaction (tx) log records marking milestones in a
// transaction's life (BEGIN, COMMIT, ABORT) and data log records
// chronicling updates to database objects — plus a binary wire encoding so
// that the simulated disk holds real bytes and the recovery manager decodes
// what a crash would actually leave behind.
//
// The paper assumes REDO-only physical state logging: a data record carries
// only the new value of the object, written by a transaction that never
// propagates uncommitted updates to the disk version of the database. All
// records are timestamped (section 2.1) so the recovery manager can
// re-establish temporal order even after recirculation scrambles physical
// order; this implementation uses a global log sequence number (LSN) as
// that timestamp.
package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ellog/internal/sim"
)

// LSN is a log sequence number: a strictly increasing timestamp assigned
// when a record is created. Recirculation in the last generation destroys
// the correspondence between physical order and temporal order, so the LSN
// is the authoritative ordering during recovery.
type LSN uint64

// TxID identifies a transaction.
type TxID uint64

// OID identifies a database object — "any distinct item of data in a
// database" in the paper's broad sense.
type OID uint64

// Kind distinguishes record types.
type Kind uint8

const (
	// KindBegin is the tx record written when a transaction starts.
	KindBegin Kind = iota + 1
	// KindCommit is the tx record written when a transaction requests
	// commit; the transaction is committed once the record is durable.
	KindCommit
	// KindAbort is the tx record written when a transaction aborts or is
	// killed by the logging manager for want of log space.
	KindAbort
	// KindData is a data log record carrying an object's new value.
	KindData
	// KindPrepare is the tx record a participant shard writes for a
	// cross-shard transaction (2PC-in-the-log): once durable, the shard is
	// prepared — it can neither commit nor abort the transaction on its own
	// until the coordinator's decision is known.
	KindPrepare
	// KindDecide is the tx record the coordinator shard writes to commit a
	// cross-shard transaction; it doubles as the coordinator's own local
	// COMMIT. Abort decisions are never logged (presumed abort): an
	// in-doubt participant that finds no durable DECIDE presumes abort.
	KindDecide
)

// String returns the record kind name.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "BEGIN"
	case KindCommit:
		return "COMMIT"
	case KindAbort:
		return "ABORT"
	case KindData:
		return "DATA"
	case KindPrepare:
		return "PREPARE"
	case KindDecide:
		return "DECIDE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsTx reports whether the record kind is a transaction milestone record.
func (k Kind) IsTx() bool {
	switch k {
	case KindBegin, KindCommit, KindAbort, KindPrepare, KindDecide:
		return true
	}
	return false
}

// Record is a single log record. Size is the record's logical footprint in
// the log (the paper charges 8 bytes per tx record and the workload's
// configured size, 100 bytes in the experiments, per data record); block
// packing and disk-space accounting use Size, while Encode produces the
// simulated on-disk bytes.
type Record struct {
	LSN  LSN
	Time sim.Time // creation time (the paper's timestamp)
	Kind Kind
	Tx   TxID
	Obj  OID    // data records only
	Size int    // logical bytes charged against the 2000-byte block payload
	Val  uint64 // synthetic object value; echoes the LSN for verification

	// Before-image for the UNDO/REDO extension (the paper's section 1:
	// "the techniques proposed in this paper can be extended to the more
	// general situation of UNDO/REDO logging with little difficulty").
	// PrevLSN/PrevVal identify the latest committed version of the object
	// before this transaction touched it; under a steal policy they are
	// what recovery (or an abort) restores. Zero under pure REDO logging.
	PrevLSN LSN
	PrevVal uint64
}

// NewTxRecord builds a BEGIN/COMMIT/ABORT record of the given logical size.
func NewTxRecord(lsn LSN, now sim.Time, kind Kind, tx TxID, size int) *Record {
	if !kind.IsTx() {
		panic("logrec: NewTxRecord with non-tx kind " + kind.String())
	}
	return &Record{LSN: lsn, Time: now, Kind: kind, Tx: tx, Size: size}
}

// NewDataRecord builds a data record. The synthetic value is derived from
// the LSN so that recovery results can be verified exactly.
func NewDataRecord(lsn LSN, now sim.Time, tx TxID, obj OID, size int) *Record {
	return &Record{LSN: lsn, Time: now, Kind: KindData, Tx: tx, Obj: obj, Size: size, Val: uint64(lsn)}
}

// String formats the record for traces and test failures.
func (r *Record) String() string {
	if r.Kind == KindData {
		return fmt.Sprintf("{%d @%v DATA tx=%d obj=%d %dB}", r.LSN, r.Time, r.Tx, r.Obj, r.Size)
	}
	return fmt.Sprintf("{%d @%v %s tx=%d %dB}", r.LSN, r.Time, r.Kind, r.Tx, r.Size)
}

// encodedLen is the fixed wire size of one record header. Data payload
// beyond the header is not materialized — the simulated disk does not need
// the actual 100 bytes of application data, only its accounting — so the
// wire form is header-only and Size records the logical length.
const encodedLen = 8 + 8 + 1 + 8 + 8 + 4 + 8 + 8 + 8 // LSN, Time, Kind, Tx, Obj, Size, Val, PrevLSN, PrevVal

// wireRecLen is encodedLen plus the per-record CRC32-C trailer. The
// per-record checksum is what lets a torn block be salvaged record by
// record: a write that only partially reached disk leaves a prefix of
// intact records followed by a record whose trailer no longer matches.
const wireRecLen = encodedLen + 4

// blockHdrLen is the block header: record count plus a whole-block CRC32-C
// over the record region — the fast-path integrity check.
const blockHdrLen = 4 + 4

// castagnoli is the CRC32-C polynomial table (iSCSI/ext4/LevelDB family),
// the conventional choice for storage checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Append encodes the record onto buf — fixed header followed by a CRC32-C
// of that header — and returns the extended slice. The record is encoded
// in place (no stack temporary) so the append hot path stays
// allocation-free when the destination has capacity.
func (r *Record) Append(buf []byte) []byte {
	base := len(buf)
	buf = append(buf, make([]byte, wireRecLen)...)
	w := buf[base:]
	binary.LittleEndian.PutUint64(w[0:], uint64(r.LSN))
	binary.LittleEndian.PutUint64(w[8:], uint64(r.Time))
	w[16] = byte(r.Kind)
	binary.LittleEndian.PutUint64(w[17:], uint64(r.Tx))
	binary.LittleEndian.PutUint64(w[25:], uint64(r.Obj))
	binary.LittleEndian.PutUint32(w[33:], uint32(r.Size))
	binary.LittleEndian.PutUint64(w[37:], r.Val)
	binary.LittleEndian.PutUint64(w[45:], uint64(r.PrevLSN))
	binary.LittleEndian.PutUint64(w[53:], r.PrevVal)
	binary.LittleEndian.PutUint32(w[encodedLen:], crc32.Checksum(w[:encodedLen], castagnoli))
	return buf
}

// ErrCorrupt is returned when decoding malformed bytes.
var ErrCorrupt = errors.New("logrec: corrupt record encoding")

// Decode parses one record from the front of buf, verifying its CRC, and
// returns it along with the remaining bytes.
func Decode(buf []byte) (*Record, []byte, error) {
	if len(buf) < wireRecLen {
		return nil, buf, fmt.Errorf("%w: %d bytes remaining, need %d", ErrCorrupt, len(buf), wireRecLen)
	}
	if got, want := crc32.Checksum(buf[:encodedLen], castagnoli), binary.LittleEndian.Uint32(buf[encodedLen:]); got != want {
		return nil, buf, fmt.Errorf("%w: record CRC %08x, trailer %08x", ErrCorrupt, got, want)
	}
	r := &Record{
		LSN:     LSN(binary.LittleEndian.Uint64(buf[0:])),
		Time:    sim.Time(binary.LittleEndian.Uint64(buf[8:])),
		Kind:    Kind(buf[16]),
		Tx:      TxID(binary.LittleEndian.Uint64(buf[17:])),
		Obj:     OID(binary.LittleEndian.Uint64(buf[25:])),
		Size:    int(binary.LittleEndian.Uint32(buf[33:])),
		Val:     binary.LittleEndian.Uint64(buf[37:]),
		PrevLSN: LSN(binary.LittleEndian.Uint64(buf[45:])),
		PrevVal: binary.LittleEndian.Uint64(buf[53:]),
	}
	if r.Kind < KindBegin || r.Kind > KindDecide {
		return nil, buf, fmt.Errorf("%w: kind %d", ErrCorrupt, r.Kind)
	}
	return r, buf[wireRecLen:], nil
}

// AppendBlock appends a block's wire encoding — a count header and
// whole-block CRC32-C, followed by the checksummed records back to back —
// onto dst and returns the extended slice. It is the allocation-free
// sibling of EncodeBlock: callers on the append hot path pass a scratch
// buffer (typically reset with dst[:0]) that is reused write after write,
// so steady-state block encoding allocates nothing.
func AppendBlock(dst []byte, recs []*Record) []byte {
	var hdr [blockHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(recs)))
	dst = append(dst, hdr[:]...)
	base := len(dst)
	for _, r := range recs {
		dst = r.Append(dst)
	}
	binary.LittleEndian.PutUint32(dst[base-4:base], crc32.Checksum(dst[base:], castagnoli))
	return dst
}

// MaxBlockWire returns the largest wire-encoded block size possible for a
// block of the given logical payload when no record is charged fewer than
// minRecSize logical bytes. The wire form is header-only (payload bytes are
// accounted, not materialized), so a block packed with minimum-size records
// — 8-byte tx records against a 2000-byte payload — encodes to far more
// wire bytes than its logical size. Real-file backends size their on-disk
// slots from this bound, not from the logical block size.
func MaxBlockWire(payload, minRecSize int) int {
	if minRecSize <= 0 {
		minRecSize = 1
	}
	return blockHdrLen + (payload/minRecSize)*wireRecLen
}

// EncodeBlock serializes a block's records: a checksummed header followed
// by the checksummed records back to back.
func EncodeBlock(recs []*Record) []byte {
	return AppendBlock(make([]byte, 0, blockHdrLen+len(recs)*wireRecLen), recs)
}

// DecodeBlock parses the output of EncodeBlock strictly: the block CRC, the
// record count and every record CRC must check out, with no trailing bytes.
// Recovery uses SalvageBlock instead, which degrades gracefully on torn or
// corrupted blocks.
func DecodeBlock(buf []byte) ([]*Record, error) {
	if len(buf) < blockHdrLen {
		return nil, fmt.Errorf("%w: block shorter than header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(buf)
	if got, want := crc32.Checksum(buf[blockHdrLen:], castagnoli), binary.LittleEndian.Uint32(buf[4:]); got != want {
		return nil, fmt.Errorf("%w: block CRC %08x, header %08x", ErrCorrupt, got, want)
	}
	buf = buf[blockHdrLen:]
	// Cap the preallocation by what the buffer could physically hold so a
	// corrupted count header cannot force an unbounded allocation.
	prealloc := int(n)
	if max := len(buf) / wireRecLen; prealloc > max {
		prealloc = max
	}
	recs := make([]*Record, 0, prealloc)
	for i := uint32(0); i < n; i++ {
		r, rest, err := Decode(buf)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
		buf = rest
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	return recs, nil
}

// SalvageBlock decodes as much of a block as its checksums vouch for. An
// intact block (block CRC matches) decodes fully, exactly like DecodeBlock.
// Otherwise the block was torn mid-write or silently corrupted, and the
// per-record CRCs take over: records are decoded front to back, stopping at
// the first one whose trailer fails — the salvaged prefix is precisely the
// part of the write that reached disk intact, so a torn write loses only
// its suffix. SalvageBlock never fails; a hopeless block yields no records.
// intact reports whether the whole block verified.
func SalvageBlock(buf []byte) (recs []*Record, intact bool) {
	if len(buf) < blockHdrLen {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(buf)
	intact = crc32.Checksum(buf[blockHdrLen:], castagnoli) == binary.LittleEndian.Uint32(buf[4:])
	body := buf[blockHdrLen:]
	prealloc := int(n)
	if max := len(body) / wireRecLen; prealloc > max {
		prealloc = max
	}
	recs = make([]*Record, 0, prealloc)
	for i := uint32(0); i < n; i++ {
		r, rest, err := Decode(body)
		if err != nil {
			return recs, false
		}
		recs = append(recs, r)
		body = rest
	}
	if intact && len(body) != 0 {
		intact = false // count header inconsistent with the byte count
	}
	return recs, intact
}
