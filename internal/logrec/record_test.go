package logrec

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"ellog/internal/sim"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindBegin:  "BEGIN",
		KindCommit: "COMMIT",
		KindAbort:  "ABORT",
		KindData:   "DATA",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindIsTx(t *testing.T) {
	if !KindBegin.IsTx() || !KindCommit.IsTx() || !KindAbort.IsTx() {
		t.Fatal("tx kinds not recognized as tx")
	}
	if KindData.IsTx() {
		t.Fatal("DATA recognized as tx kind")
	}
}

func TestNewTxRecordPanicsOnDataKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTxRecord(KindData) did not panic")
		}
	}()
	NewTxRecord(1, 0, KindData, 1, 8)
}

func TestNewDataRecordValue(t *testing.T) {
	r := NewDataRecord(77, 5*sim.Second, 3, 12345, 100)
	if r.Val != 77 {
		t.Fatalf("synthetic value = %d, want LSN 77", r.Val)
	}
	if r.Kind != KindData || r.Obj != 12345 || r.Size != 100 {
		t.Fatalf("unexpected record %v", r)
	}
}

func TestRecordString(t *testing.T) {
	d := NewDataRecord(1, 2, 3, 4, 100)
	if !strings.Contains(d.String(), "DATA") || !strings.Contains(d.String(), "obj=4") {
		t.Fatalf("data record String: %q", d.String())
	}
	c := NewTxRecord(2, 9, KindCommit, 3, 8)
	if !strings.Contains(c.String(), "COMMIT") {
		t.Fatalf("tx record String: %q", c.String())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := &Record{LSN: 42, Time: 1234567, Kind: KindData, Tx: 9, Obj: 9999999, Size: 100, Val: 42}
	buf := r.Append(nil)
	got, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after decode", len(rest))
	}
	if *got != *r {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, _, err := Decode(make([]byte, 10)); err == nil {
		t.Fatal("Decode of short buffer succeeded")
	}
}

func TestDecodeBadKind(t *testing.T) {
	r := NewDataRecord(1, 2, 3, 4, 100)
	buf := r.Append(nil)
	buf[16] = 200 // corrupt the kind byte
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("Decode of corrupt kind succeeded")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	var recs []*Record
	for i := 0; i < 19; i++ {
		if i%5 == 0 {
			recs = append(recs, NewTxRecord(LSN(i), sim.Time(i*10), KindBegin, TxID(i), 8))
		} else {
			recs = append(recs, NewDataRecord(LSN(i), sim.Time(i*10), TxID(i/5), OID(i*31), 100))
		}
	}
	buf := EncodeBlock(recs)
	got, err := DecodeBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if *got[i] != *recs[i] {
			t.Fatalf("record %d mismatch: %v vs %v", i, got[i], recs[i])
		}
	}
}

func TestDecodeBlockEmpty(t *testing.T) {
	got, err := DecodeBlock(EncodeBlock(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty block round trip: %v, %v", got, err)
	}
}

func TestDecodeBlockTrailingGarbage(t *testing.T) {
	buf := EncodeBlock([]*Record{NewDataRecord(1, 2, 3, 4, 100)})
	buf = append(buf, 0xFF)
	if _, err := DecodeBlock(buf); err == nil {
		t.Fatal("trailing garbage not detected")
	}
}

func TestDecodeBlockTruncated(t *testing.T) {
	buf := EncodeBlock([]*Record{NewDataRecord(1, 2, 3, 4, 100), NewDataRecord(2, 3, 4, 5, 100)})
	if _, err := DecodeBlock(buf[:len(buf)-8]); err == nil {
		t.Fatal("truncated block not detected")
	}
}

// TestBlockRoundTripProperty fuzzes whole blocks of random records.
func TestBlockRoundTripProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := rng.IntN(40)
		recs := make([]*Record, 0, n)
		for i := 0; i < n; i++ {
			r := &Record{
				LSN:  LSN(rng.Uint64()),
				Time: sim.Time(rng.Int64N(1 << 40)),
				Kind: Kind(1 + rng.IntN(4)),
				Tx:   TxID(rng.Uint64()),
				Obj:  OID(rng.Uint64()),
				Size: rng.IntN(2000),
				Val:  rng.Uint64(),
			}
			recs = append(recs, r)
		}
		got, err := DecodeBlock(EncodeBlock(recs))
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if *got[i] != *recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRecordCRCDetectsFlip(t *testing.T) {
	r := NewDataRecord(9, 3, 5, 77, 100)
	buf := r.Append(nil)
	for bit := 0; bit < 8; bit++ {
		mut := append([]byte(nil), buf...)
		mut[20] ^= 1 << bit
		if _, _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip %d in record body not detected", bit)
		}
	}
}

func TestDecodeBlockCRCDetectsFlip(t *testing.T) {
	buf := EncodeBlock([]*Record{NewDataRecord(1, 2, 3, 4, 100), NewTxRecord(2, 3, KindCommit, 3, 8)})
	mut := append([]byte(nil), buf...)
	mut[len(mut)-1] ^= 0x80
	if _, err := DecodeBlock(mut); err == nil {
		t.Fatal("flipped bit in block body not detected")
	}
}

func TestDecodeBlockHugeCountNoHugeAlloc(t *testing.T) {
	// A corrupted count header must not drive the preallocation; the decode
	// should fail cleanly (CRC or short buffer) without a giant make().
	buf := EncodeBlock([]*Record{NewDataRecord(1, 2, 3, 4, 100)})
	for i := 0; i < 4; i++ {
		buf[i] = 0xFF
	}
	if _, err := DecodeBlock(buf); err == nil {
		t.Fatal("corrupt count header not detected")
	}
	if recs, intact := SalvageBlock(buf); intact {
		t.Fatalf("corrupt count header salvaged as intact (%d records)", len(recs))
	}
}

func TestSalvageBlockIntact(t *testing.T) {
	recs := []*Record{
		NewTxRecord(1, 10, KindBegin, 7, 8),
		NewDataRecord(2, 11, 7, 42, 100),
		NewTxRecord(3, 12, KindCommit, 7, 8),
	}
	got, intact := SalvageBlock(EncodeBlock(recs))
	if !intact || len(got) != len(recs) {
		t.Fatalf("intact block salvage: intact=%v, %d records (want %d)", intact, len(got), len(recs))
	}
	for i := range recs {
		if *got[i] != *recs[i] {
			t.Fatalf("record %d mismatch: %v vs %v", i, got[i], recs[i])
		}
	}
}

// TestSalvageBlockTornPrefix models a torn write: only a prefix of the new
// block reached disk, the rest is whatever the block held before. The
// salvage must return exactly the records whose bytes are fully in the
// prefix, and report the block as not intact.
func TestSalvageBlockTornPrefix(t *testing.T) {
	var recs []*Record
	for i := 1; i <= 10; i++ {
		recs = append(recs, NewDataRecord(LSN(i), sim.Time(i), 1, OID(i*7), 100))
	}
	full := EncodeBlock(recs)
	old := make([]byte, len(full)+40)
	for i := range old {
		old[i] = 0xA5 // stale bytes from the block's previous life
	}
	for cut := 0; cut <= len(full); cut += 13 {
		torn := append(append([]byte(nil), full[:cut]...), old[cut:]...)
		got, intact := SalvageBlock(torn)
		if intact {
			t.Fatalf("cut=%d: torn block reported intact", cut)
		}
		wantRecs := 0
		if cut >= blockHdrLen {
			wantRecs = (cut - blockHdrLen) / wireRecLen
		}
		if len(got) != wantRecs {
			t.Fatalf("cut=%d: salvaged %d records, want %d", cut, len(got), wantRecs)
		}
		for i, r := range got {
			if *r != *recs[i] {
				t.Fatalf("cut=%d: salvaged record %d mismatch: %v vs %v", cut, i, r, recs[i])
			}
		}
	}
}

func TestSalvageBlockGarbage(t *testing.T) {
	if recs, intact := SalvageBlock(nil); intact || len(recs) != 0 {
		t.Fatalf("nil buffer salvage: %v, %v", recs, intact)
	}
	junk := make([]byte, 300)
	for i := range junk {
		junk[i] = byte(i * 37)
	}
	if _, intact := SalvageBlock(junk); intact {
		t.Fatal("garbage buffer reported intact")
	}
}

func BenchmarkEncodeBlock(b *testing.B) {
	recs := make([]*Record, 20)
	for i := range recs {
		recs[i] = NewDataRecord(LSN(i), sim.Time(i), 1, OID(i), 100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeBlock(recs)
	}
}

// TestAppendBlockMatchesEncodeBlock pins the scratch-buffer encoder to the
// allocating one, including buffer reuse across calls.
func TestAppendBlockMatchesEncodeBlock(t *testing.T) {
	recs := []*Record{
		NewTxRecord(1, 10, KindBegin, 7, 8),
		NewDataRecord(2, 11, 7, 42, 100),
		NewTxRecord(3, 12, KindCommit, 7, 8),
	}
	want := EncodeBlock(recs)
	var buf []byte
	for i := 0; i < 3; i++ { // reuse the same scratch repeatedly
		buf = AppendBlock(buf[:0], recs)
		if string(buf) != string(want) {
			t.Fatalf("AppendBlock pass %d diverges from EncodeBlock", i)
		}
	}
	got, err := DecodeBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
}

// TestAppendBlockZeroAllocsOnReuse is the allocation regression gate for
// the block encode path.
func TestAppendBlockZeroAllocsOnReuse(t *testing.T) {
	recs := make([]*Record, 20)
	for i := range recs {
		recs[i] = NewDataRecord(LSN(i+1), 5, 1, OID(i), 100)
	}
	buf := AppendBlock(nil, recs) // grow once
	avg := testing.AllocsPerRun(200, func() {
		buf = AppendBlock(buf[:0], recs)
	})
	if avg != 0 {
		t.Fatalf("AppendBlock reuse allocates %v allocs/run, want 0", avg)
	}
}
