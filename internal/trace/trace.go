// Package trace provides structured event tracing for the logging
// manager: every significant action (records entering the log, buffers
// sealing and becoming durable, forwarding batches, recirculation, kills,
// flushes) can be captured as a typed event. The default sink is a bounded
// ring buffer, cheap enough to leave attached, whose tail can be dumped
// when something needs explaining — the log-manager equivalent of a flight
// recorder.
package trace

import (
	"fmt"
	"strings"

	"ellog/internal/logrec"
	"ellog/internal/sim"
)

// Kind classifies trace events.
type Kind uint8

const (
	// EvAppend: a fresh record entered a generation's tail buffer.
	EvAppend Kind = iota + 1
	// EvSeal: a buffer was written out to a block.
	EvSeal
	// EvDurable: a block write completed.
	EvDurable
	// EvForward: a record moved from one generation to the next.
	EvForward
	// EvRecirculate: a record recirculated in the last generation.
	EvRecirculate
	// EvDiscard: a head block containing only garbage was reclaimed.
	EvDiscard
	// EvFlush: a committed update reached the stable database.
	EvFlush
	// EvForceFlush: an update was flushed out of band (random I/O).
	EvForceFlush
	// EvCommit: a transaction's COMMIT became durable (t4).
	EvCommit
	// EvKill: the manager killed a transaction for want of space.
	EvKill
	// EvResize: a generation grew or shrank (adaptive or emergency).
	EvResize
	// EvFault: the fault plan injected a fault (N encodes the fault kind
	// as internal/fault.FaultKind).
	EvFault
	// EvRetry: a failed block write is being retried (N is the attempt
	// number that failed).
	EvRetry
	// EvMove: one record moved generations — forwarded when Gen < N,
	// recirculated when Gen == N. Gen is the source generation and N the
	// destination; Tx/Obj/LSN identify the record. EvForward/EvRecirculate
	// remain the batch-level events; EvMove is the record-level trail that
	// lets an exported trace reconstruct a single record's journey.
	EvMove

	// numKinds bounds per-kind count arrays; keep it one past the last kind.
	numKinds = int(EvMove) + 1
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case EvAppend:
		return "append"
	case EvSeal:
		return "seal"
	case EvDurable:
		return "durable"
	case EvForward:
		return "forward"
	case EvRecirculate:
		return "recirc"
	case EvDiscard:
		return "discard"
	case EvFlush:
		return "flush"
	case EvForceFlush:
		return "force-flush"
	case EvCommit:
		return "commit"
	case EvKill:
		return "kill"
	case EvResize:
		return "resize"
	case EvFault:
		return "fault"
	case EvRetry:
		return "retry"
	case EvMove:
		return "move"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	At   sim.Time
	Kind Kind
	Gen  int // generation involved (-1 if not applicable)
	Tx   logrec.TxID
	Obj  logrec.OID
	LSN  logrec.LSN
	N    int // records in batch / bytes / resize delta, per kind
}

// String formats an event for dumps.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10v %-11s gen=%d", e.At, e.Kind, e.Gen)
	if e.Tx != 0 {
		fmt.Fprintf(&b, " tx=%d", e.Tx)
	}
	if e.Obj != 0 {
		fmt.Fprintf(&b, " obj=%d", e.Obj)
	}
	if e.LSN != 0 {
		fmt.Fprintf(&b, " lsn=%d", e.LSN)
	}
	if e.N != 0 {
		fmt.Fprintf(&b, " n=%d", e.N)
	}
	return b.String()
}

// Sink receives events. Implementations must be cheap; the manager calls
// Emit on hot paths.
type Sink interface {
	Emit(Event)
}

// Ring is a bounded in-memory sink retaining the most recent events.
type Ring struct {
	buf   []Event
	next  int
	total uint64
	// counts tallies events by kind for assertions and summaries.
	counts [numKinds]uint64
}

// NewRing returns a sink retaining up to n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1024
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	if int(e.Kind) < len(r.counts) {
		r.counts[e.Kind]++
	}
}

// Total reports how many events were emitted (including evicted ones).
func (r *Ring) Total() uint64 { return r.total }

// Count reports how many events of a kind were emitted.
func (r *Ring) Count(k Kind) uint64 {
	if int(k) >= len(r.counts) {
		return 0
	}
	return r.counts[k]
}

// Tail returns up to n of the most recent events, oldest first.
func (r *Ring) Tail(n int) []Event {
	size := len(r.buf)
	if n > size {
		n = size
	}
	out := make([]Event, 0, n)
	// Events are ordered starting at r.next when the ring has wrapped.
	start := 0
	if size == cap(r.buf) {
		start = r.next
	}
	for i := size - n; i < size; i++ {
		out = append(out, r.buf[(start+i)%size])
	}
	return out
}

// Dump renders the most recent n events, one per line.
func (r *Ring) Dump(n int) string {
	var b strings.Builder
	for _, e := range r.Tail(n) {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Filter is a sink decorator that forwards only selected kinds. A nil
// Kinds map means "pass everything" — a zero-value Filter is a
// transparent pass-through, not a black hole.
type Filter struct {
	Next  Sink
	Kinds map[Kind]bool
}

// NewFilter builds a Filter forwarding only the listed kinds to next.
// With no kinds listed the filter passes every event.
func NewFilter(next Sink, kinds ...Kind) *Filter {
	f := &Filter{Next: next}
	if len(kinds) > 0 {
		f.Kinds = make(map[Kind]bool, len(kinds))
		for _, k := range kinds {
			f.Kinds[k] = true
		}
	}
	return f
}

// Emit implements Sink.
func (f *Filter) Emit(e Event) {
	if f.Kinds == nil || f.Kinds[e.Kind] {
		f.Next.Emit(e)
	}
}

// Func adapts a function to the Sink interface.
type Func func(Event)

// Emit implements Sink.
func (f Func) Emit(e Event) { f(e) }
