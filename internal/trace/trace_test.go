package trace

import (
	"strings"
	"testing"

	"ellog/internal/sim"
)

func TestKindString(t *testing.T) {
	kinds := []Kind{EvAppend, EvSeal, EvDurable, EvForward, EvRecirculate,
		EvDiscard, EvFlush, EvForceFlush, EvCommit, EvKill, EvResize,
		EvFault, EvRetry, EvMove}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Fatal("unknown kind not reported as such")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Second, Kind: EvForward, Gen: 0, Tx: 7, N: 3}
	s := e.String()
	for _, want := range []string{"forward", "gen=0", "tx=7", "n=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}

func TestRingRetainsTail(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: EvAppend, N: i})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d", r.Total())
	}
	tail := r.Tail(4)
	if len(tail) != 4 {
		t.Fatalf("Tail returned %d events", len(tail))
	}
	for i, e := range tail {
		if e.N != 6+i {
			t.Fatalf("tail = %v, want events 6..9 oldest first", tail)
		}
	}
	// Requesting more than retained caps at the buffer size.
	if got := r.Tail(100); len(got) != 4 {
		t.Fatalf("Tail(100) returned %d", len(got))
	}
}

func TestRingBeforeWrap(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Emit(Event{Kind: EvSeal, N: i})
	}
	tail := r.Tail(2)
	if len(tail) != 2 || tail[0].N != 1 || tail[1].N != 2 {
		t.Fatalf("tail before wrap = %v", tail)
	}
}

func TestRingCounts(t *testing.T) {
	r := NewRing(2)
	r.Emit(Event{Kind: EvKill})
	r.Emit(Event{Kind: EvKill})
	r.Emit(Event{Kind: EvFlush})
	if r.Count(EvKill) != 2 || r.Count(EvFlush) != 1 || r.Count(EvSeal) != 0 {
		t.Fatal("counts wrong")
	}
	if r.Count(Kind(200)) != 0 {
		t.Fatal("out-of-range kind count not zero")
	}
}

func TestDump(t *testing.T) {
	r := NewRing(4)
	r.Emit(Event{At: 5, Kind: EvCommit, Gen: -1, Tx: 42})
	out := r.Dump(10)
	if !strings.Contains(out, "commit") || !strings.Contains(out, "tx=42") {
		t.Fatalf("dump %q", out)
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(8)
	f := &Filter{Next: r, Kinds: map[Kind]bool{EvKill: true}}
	f.Emit(Event{Kind: EvAppend})
	f.Emit(Event{Kind: EvKill})
	if r.Total() != 1 || r.Count(EvKill) != 1 {
		t.Fatalf("filter passed %d events", r.Total())
	}
}

// A Filter with no Kinds map is a transparent pass-through, not a drop-all.
func TestFilterNilKindsPassesAll(t *testing.T) {
	r := NewRing(8)
	f := &Filter{Next: r}
	f.Emit(Event{Kind: EvAppend})
	f.Emit(Event{Kind: EvKill})
	f.Emit(Event{Kind: EvMove})
	if r.Total() != 3 {
		t.Fatalf("nil-Kinds filter passed %d events, want all 3", r.Total())
	}
}

func TestNewFilter(t *testing.T) {
	r := NewRing(8)
	f := NewFilter(r, EvSeal, EvDurable)
	f.Emit(Event{Kind: EvAppend})
	f.Emit(Event{Kind: EvSeal})
	f.Emit(Event{Kind: EvDurable})
	if r.Total() != 2 || r.Count(EvSeal) != 1 || r.Count(EvDurable) != 1 {
		t.Fatalf("NewFilter passed %d events", r.Total())
	}
	// No kinds listed → pass-all.
	r2 := NewRing(8)
	all := NewFilter(r2)
	all.Emit(Event{Kind: EvAppend})
	all.Emit(Event{Kind: EvRetry})
	if r2.Total() != 2 {
		t.Fatalf("NewFilter() passed %d events, want 2", r2.Total())
	}
}

func TestRingTailBoundaries(t *testing.T) {
	// n=0 on any ring returns an empty slice.
	r := NewRing(4)
	r.Emit(Event{Kind: EvAppend, N: 0})
	if got := r.Tail(0); len(got) != 0 {
		t.Fatalf("Tail(0) returned %d events", len(got))
	}
	// Empty ring: any n returns nothing.
	empty := NewRing(4)
	if got := empty.Tail(3); len(got) != 0 {
		t.Fatalf("Tail on empty ring returned %d events", len(got))
	}
	// n>len before the ring has filled returns just what is retained.
	r2 := NewRing(8)
	for i := 0; i < 3; i++ {
		r2.Emit(Event{Kind: EvSeal, N: i})
	}
	got := r2.Tail(100)
	if len(got) != 3 || got[0].N != 0 || got[2].N != 2 {
		t.Fatalf("Tail(100) on part-filled ring = %v", got)
	}
	// Exactly-wrapped: emit exactly 2*cap so next lands back at index 0.
	r3 := NewRing(4)
	for i := 0; i < 8; i++ {
		r3.Emit(Event{Kind: EvFlush, N: i})
	}
	tail := r3.Tail(4)
	if len(tail) != 4 {
		t.Fatalf("Tail on exactly-wrapped ring returned %d", len(tail))
	}
	for i, e := range tail {
		if e.N != 4+i {
			t.Fatalf("exactly-wrapped tail = %v, want 4..7", tail)
		}
	}
}

func TestFuncSink(t *testing.T) {
	var got []Event
	s := Func(func(e Event) { got = append(got, e) })
	s.Emit(Event{Kind: EvSeal})
	if len(got) != 1 || got[0].Kind != EvSeal {
		t.Fatal("func sink did not receive the event")
	}
}

// Interleaved fault and ordinary events across several wraparounds come
// back from Tail in exact emission order, and the per-kind counts include
// evicted events.
func TestRingWraparoundPreservesOrderWithFaultEvents(t *testing.T) {
	const capN = 5
	r := NewRing(capN)
	kinds := []Kind{EvSeal, EvFault, EvDurable, EvRetry, EvKill, EvFault, EvAppend}
	total := 3*capN + 2 // several wraps, landing mid-buffer
	for i := 0; i < total; i++ {
		r.Emit(Event{Kind: kinds[i%len(kinds)], N: i})
	}
	if r.Total() != uint64(total) {
		t.Fatalf("Total = %d, want %d", r.Total(), total)
	}
	tail := r.Tail(capN)
	if len(tail) != capN {
		t.Fatalf("Tail returned %d events", len(tail))
	}
	for i, e := range tail {
		wantN := total - capN + i
		if e.N != wantN || e.Kind != kinds[wantN%len(kinds)] {
			t.Fatalf("tail[%d] = {kind %v, n %d}, want {kind %v, n %d}",
				i, e.Kind, e.N, kinds[wantN%len(kinds)], wantN)
		}
	}
	// Counts survive eviction: every emitted EvFault/EvRetry is tallied even
	// though the ring retains only the last capN events.
	var wantFault, wantRetry uint64
	for i := 0; i < total; i++ {
		switch kinds[i%len(kinds)] {
		case EvFault:
			wantFault++
		case EvRetry:
			wantRetry++
		}
	}
	if r.Count(EvFault) != wantFault || r.Count(EvRetry) != wantRetry {
		t.Fatalf("fault/retry counts = %d/%d, want %d/%d",
			r.Count(EvFault), r.Count(EvRetry), wantFault, wantRetry)
	}
}

func TestNewRingDefaultsSize(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 2000; i++ {
		r.Emit(Event{Kind: EvAppend})
	}
	if len(r.Tail(2000)) != 1024 {
		t.Fatalf("default ring retained %d", len(r.Tail(2000)))
	}
}
