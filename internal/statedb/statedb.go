// Package statedb models the stable ("disk") version of the database that
// resides elsewhere on disk (paper, Figure 1). It does not necessarily
// incorporate the most recent committed changes — the log holds whatever is
// still missing — but together log and stable version always suffice to
// restore the most recent consistent state.
//
// The paper assumes a no-steal buffer policy: uncommitted updates are never
// propagated here, so records are REDO-only. Versions carry the LSN of the
// data log record that produced them; an update is applied only if its LSN
// exceeds the stored version's, which makes replay (flushes arriving out of
// order, recovery re-applying stale physical copies) idempotent and safe.
package statedb

import (
	"ellog/internal/logrec"
)

// Version is one object's durable state. Tx records which transaction
// wrote it, and Stolen marks a version written before its transaction
// committed (the UNDO/REDO extension's steal policy): recovery must roll a
// stolen version back to its before-image unless the writer's COMMIT is in
// the log. A committing transaction cleans its stolen versions (a second
// disk write per stolen object — the classic price of steal) so that the
// marker never outlives the commit record's readability. Tx is 0 for
// versions installed by recovery itself (restored before-images).
type Version struct {
	LSN    logrec.LSN
	Val    uint64
	Tx     logrec.TxID
	Stolen bool
}

// DB is the stable version of the database. Only objects that have ever
// been written are materialized; the remaining NUM_OBJECTS (10^7 in the
// paper) are implicitly at their initial (zero) version.
type DB struct {
	versions map[logrec.OID]Version
	applies  uint64
	stale    uint64
}

// New returns an empty stable database.
func New() *DB {
	return &DB{versions: make(map[logrec.OID]Version)}
}

// Apply installs a version if it is newer than what is stored. It reports
// whether the write took effect (false = stale, ignored).
func (db *DB) Apply(obj logrec.OID, lsn logrec.LSN, val uint64, tx logrec.TxID) bool {
	return db.ApplyVersion(obj, Version{LSN: lsn, Val: val, Tx: tx})
}

// ApplyVersion is Apply with full version control (the steal flag).
func (db *DB) ApplyVersion(obj logrec.OID, v Version) bool {
	if cur, ok := db.versions[obj]; ok && cur.LSN >= v.LSN {
		db.stale++
		return false
	}
	db.versions[obj] = v
	db.applies++
	return true
}

// Clean clears the stolen marker on a version, if it is still the one the
// caller flushed. It reports whether the marker was cleared.
func (db *DB) Clean(obj logrec.OID, lsn logrec.LSN) bool {
	v, ok := db.versions[obj]
	if !ok || v.LSN != lsn || !v.Stolen {
		return false
	}
	v.Stolen = false
	db.versions[obj] = v
	return true
}

// ForceSet installs a version unconditionally, bypassing the LSN monotone
// rule. Only the UNDO paths use it: rolling an aborted transaction's
// stolen (flushed-while-uncommitted) update back to the before-image, and
// recovery undoing a loser's version. A zero-LSN version deletes the
// object (it had no committed state at all).
func (db *DB) ForceSet(obj logrec.OID, v Version) {
	if v.LSN == 0 {
		delete(db.versions, obj)
		return
	}
	db.versions[obj] = v
}

// Get returns the stored version of an object.
func (db *DB) Get(obj logrec.OID) (Version, bool) {
	v, ok := db.versions[obj]
	return v, ok
}

// Len reports how many objects have materialized versions.
func (db *DB) Len() int { return len(db.versions) }

// Applies reports how many writes took effect; Stale how many were ignored
// as out of date.
func (db *DB) Applies() uint64 { return db.applies }

// Stale reports how many Apply calls were ignored as stale.
func (db *DB) Stale() uint64 { return db.stale }

// Clone returns a deep copy, used to snapshot the pre-crash state for
// recovery experiments.
func (db *DB) Clone() *DB {
	out := New()
	for k, v := range db.versions {
		out.versions[k] = v
	}
	return out
}

// Equal reports whether two databases hold identical versions, and if not,
// returns one differing oid for diagnostics.
func (db *DB) Equal(other *DB) (bool, logrec.OID) {
	if len(db.versions) != len(other.versions) {
		for k := range db.versions {
			if _, ok := other.versions[k]; !ok {
				return false, k
			}
		}
		for k := range other.versions {
			if _, ok := db.versions[k]; !ok {
				return false, k
			}
		}
	}
	for k, v := range db.versions {
		if ov, ok := other.versions[k]; !ok || ov != v {
			return false, k
		}
	}
	return true, 0
}

// Range visits every materialized version until fn returns false.
func (db *DB) Range(fn func(obj logrec.OID, v Version) bool) {
	for k, v := range db.versions {
		if !fn(k, v) {
			return
		}
	}
}
