package statedb

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"ellog/internal/logrec"
)

func TestApplyAndGet(t *testing.T) {
	db := New()
	if _, ok := db.Get(1); ok {
		t.Fatal("empty DB returned a version")
	}
	if !db.Apply(1, 10, 100, 1) {
		t.Fatal("first Apply rejected")
	}
	v, ok := db.Get(1)
	if !ok || v.LSN != 10 || v.Val != 100 {
		t.Fatalf("Get = %+v,%v", v, ok)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestStaleApplyIgnored(t *testing.T) {
	db := New()
	db.Apply(1, 10, 100, 1)
	if db.Apply(1, 5, 50, 1) {
		t.Fatal("stale Apply took effect")
	}
	if db.Apply(1, 10, 999, 1) {
		t.Fatal("equal-LSN Apply took effect")
	}
	v, _ := db.Get(1)
	if v.LSN != 10 || v.Val != 100 {
		t.Fatalf("stale write corrupted version: %+v", v)
	}
	if db.Stale() != 2 || db.Applies() != 1 {
		t.Fatalf("counters: stale=%d applies=%d", db.Stale(), db.Applies())
	}
}

func TestNewerApplyWins(t *testing.T) {
	db := New()
	db.Apply(1, 10, 100, 1)
	if !db.Apply(1, 20, 200, 1) {
		t.Fatal("newer Apply rejected")
	}
	v, _ := db.Get(1)
	if v.LSN != 20 || v.Val != 200 {
		t.Fatalf("version after newer apply: %+v", v)
	}
}

func TestCloneIsDeep(t *testing.T) {
	db := New()
	db.Apply(1, 10, 100, 1)
	c := db.Clone()
	db.Apply(1, 20, 200, 1)
	v, _ := c.Get(1)
	if v.LSN != 10 {
		t.Fatalf("clone mutated: %+v", v)
	}
	if eq, _ := db.Equal(c); eq {
		t.Fatal("diverged clone still Equal")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	if eq, _ := a.Equal(b); !eq {
		t.Fatal("empty DBs not equal")
	}
	a.Apply(1, 10, 100, 1)
	if eq, bad := a.Equal(b); eq || bad != 1 {
		t.Fatalf("missing key not detected: eq=%v bad=%d", eq, bad)
	}
	b.Apply(1, 10, 100, 1)
	if eq, _ := a.Equal(b); !eq {
		t.Fatal("identical DBs not equal")
	}
	b.Apply(2, 5, 5, 1)
	if eq, _ := a.Equal(b); eq {
		t.Fatal("extra key not detected")
	}
}

func TestRange(t *testing.T) {
	db := New()
	for i := logrec.OID(0); i < 10; i++ {
		db.Apply(i, logrec.LSN(i+1), uint64(i), 1)
	}
	n := 0
	db.Range(func(logrec.OID, Version) bool { n++; return true })
	if n != 10 {
		t.Fatalf("Range visited %d, want 10", n)
	}
	n = 0
	db.Range(func(logrec.OID, Version) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range early stop visited %d", n)
	}
}

// TestApplyOrderIndependence: applying any permutation of a set of versions
// yields the same final state — the idempotence/monotonicity property that
// makes single-pass recovery correct even over stale physical copies.
func TestApplyOrderIndependence(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		type upd struct {
			obj logrec.OID
			lsn logrec.LSN
			val uint64
		}
		var updates []upd
		for i := 0; i < 100; i++ {
			updates = append(updates, upd{
				obj: logrec.OID(rng.IntN(10)),
				lsn: logrec.LSN(rng.IntN(50)),
				val: rng.Uint64(),
			})
		}
		apply := func(perm []int) *DB {
			db := New()
			for _, i := range perm {
				u := updates[i]
				db.Apply(u.obj, u.lsn, u.val, 1)
			}
			return db
		}
		base := make([]int, len(updates))
		for i := range base {
			base[i] = i
		}
		a := apply(base)
		rng.Shuffle(len(base), func(i, j int) { base[i], base[j] = base[j], base[i] })
		b := apply(base)
		// Ties on (obj,lsn) with different vals are resolved by arrival
		// order, so regenerate without val collisions: val = f(lsn).
		for i := range updates {
			updates[i].val = uint64(updates[i].lsn) * 7
		}
		a = apply(base)
		rng.Shuffle(len(base), func(i, j int) { base[i], base[j] = base[j], base[i] })
		b = apply(base)
		eq, _ := a.Equal(b)
		return eq
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
