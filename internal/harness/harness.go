// Package harness assembles complete simulation runs: engine, log device,
// flush array, stable database, logging manager and workload generator,
// configured the way the paper's experiments are (section 3/4), executed
// for the configured runtime, and summarized.
package harness

import (
	"ellog/internal/core"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// Config is one full simulation configuration, mirroring the inputs of the
// paper's simulator: the statistical mix of transactions, the rate of
// transaction initiation, the flush rate (drives x transfer time), the
// number and size of generations, the recirculation flag and the runtime.
type Config struct {
	Seed     uint64
	LM       core.Params
	Flush    core.FlushConfig
	Workload workload.Config
}

// PaperDefaults returns the fixed experimental frame of section 4: 100 TPS
// for 500 simulated seconds over 10^7 objects, flushing through 10 drives
// at 25 ms per object write (400 flushes/s).
func PaperDefaults(fracLong float64) Config {
	return Config{
		Seed: 1,
		Flush: core.FlushConfig{
			Drives:     10,
			Transfer:   25 * sim.Millisecond,
			NumObjects: 10_000_000,
		},
		Workload: workload.Config{
			Mix:         workload.PaperMix(fracLong),
			ArrivalRate: 100,
			Runtime:     500 * sim.Second,
			NumObjects:  10_000_000,
		},
	}
}

// Result summarizes a run.
type Result struct {
	LM       core.Stats
	Workload workload.Stats
}

// Insufficient reports whether the disk budget failed to sustain the
// workload (a transaction was killed or emergency space was needed).
func (r Result) Insufficient() bool {
	return r.LM.Insufficient() || r.Workload.Killed > 0
}

// Run executes the configuration to its workload runtime and returns the
// summary.
func Run(cfg Config) (Result, error) {
	_, res, err := RunLive(cfg)
	return res, err
}

// Live exposes the assembled components of a run for callers that need to
// crash it mid-flight (recovery experiments) or inspect state.
type Live struct {
	Setup *core.Setup
	Gen   *workload.Generator
}

// RunLive executes the configuration and also returns the live components.
func RunLive(cfg Config) (*Live, Result, error) {
	live, err := Build(cfg)
	if err != nil {
		return nil, Result{}, err
	}
	live.Setup.Eng.Run(cfg.Workload.Runtime)
	return live, Result{LM: live.Setup.LM.Stats(), Workload: live.Gen.Stats()}, nil
}

// Build assembles a run without executing it; callers drive the engine
// themselves (e.g. to crash it at a chosen instant).
func Build(cfg Config) (*Live, error) {
	eng := sim.NewEngine(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)
	setup, err := core.NewSetup(eng, cfg.LM, cfg.Flush)
	if err != nil {
		return nil, err
	}
	gen, err := workload.New(eng, setup.LM, cfg.Workload)
	if err != nil {
		return nil, err
	}
	gen.Start()
	return &Live{Setup: setup, Gen: gen}, nil
}
