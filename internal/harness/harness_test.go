package harness

import (
	"testing"

	"ellog/internal/core"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// shortPaperConfig shrinks the paper frame to a fast test (50 s, smaller
// object space).
func shortPaperConfig(fracLong float64, mode core.Mode, sizes []int, recirc bool) Config {
	cfg := PaperDefaults(fracLong)
	cfg.LM = core.Params{Mode: mode, GenSizes: sizes, Recirculate: recirc}
	cfg.Workload.Runtime = 50 * sim.Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000
	return cfg
}

func TestPaperScaleELRun(t *testing.T) {
	cfg := shortPaperConfig(0.05, core.ModeEphemeral, []int{24, 40}, false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insufficient() {
		t.Fatalf("generous EL budget insufficient:\n%s", res.LM)
	}
	ws := res.Workload
	if ws.Started != 5000 {
		t.Fatalf("started %d txs, want 5000 (100 TPS for 50 s)", ws.Started)
	}
	// Expected log payload 22.6 kB/s = ~11.3 blocks/s.
	if res.LM.TotalBandwidth < 10 || res.LM.TotalBandwidth > 16 {
		t.Fatalf("EL bandwidth %.2f writes/s outside plausible range:\n%s", res.LM.TotalBandwidth, res.LM)
	}
	if res.LM.Forwarded == 0 {
		t.Fatal("no forwarding despite 10s transactions and a 24-block gen 0")
	}
}

func TestPaperScaleFWRun(t *testing.T) {
	cfg := shortPaperConfig(0.05, core.ModeFirewall, []int{200}, false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insufficient() {
		t.Fatalf("generous FW budget insufficient:\n%s", res.LM)
	}
	if res.LM.TotalBandwidth < 10 || res.LM.TotalBandwidth > 13 {
		t.Fatalf("FW bandwidth %.2f writes/s outside plausible range", res.LM.TotalBandwidth)
	}
	// FW memory: ~145 active transactions x 22 bytes.
	if res.LM.MemPeakBytes < 100*22 || res.LM.MemPeakBytes > 400*22 {
		t.Fatalf("FW peak memory %.0f implausible", res.LM.MemPeakBytes)
	}
}

func TestELBeatsFWOnSpace(t *testing.T) {
	// The headline qualitative result: at a 5% long mix, a small EL budget
	// sustains the workload while the same FW budget kills transactions.
	elCfg := shortPaperConfig(0.05, core.ModeEphemeral, []int{20, 20}, false)
	el, err := Run(elCfg)
	if err != nil {
		t.Fatal(err)
	}
	if el.Insufficient() {
		t.Fatalf("EL with 40 blocks insufficient:\n%s", el.LM)
	}
	fwCfg := shortPaperConfig(0.05, core.ModeFirewall, []int{40}, false)
	fw, err := Run(fwCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !fw.Insufficient() {
		t.Fatalf("FW with 40 blocks unexpectedly sufficient:\n%s", fw.LM)
	}
}

func TestRecirculationShrinksLastGeneration(t *testing.T) {
	// With recirculation the last generation can be smaller than the
	// residence time of a 10 s transaction would otherwise require.
	cfg := shortPaperConfig(0.05, core.ModeEphemeral, []int{20, 10}, true)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insufficient() {
		t.Fatalf("recirculating EL insufficient:\n%s", res.LM)
	}
	if res.LM.Recirculated == 0 {
		t.Fatalf("nothing recirculated in a tight last generation:\n%s", res.LM)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := shortPaperConfig(0.2, core.ModeEphemeral, []int{24, 60}, true)
	cfg.Workload.Runtime = 20 * sim.Second
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.LM.TotalWrites != b.LM.TotalWrites || a.LM.Garbage != b.LM.Garbage ||
		a.Workload.Committed != b.Workload.Committed {
		t.Fatalf("same seed diverged: %+v vs %+v", a.LM, b.LM)
	}
}

func TestInvariantsAfterPaperRun(t *testing.T) {
	cfg := shortPaperConfig(0.1, core.ModeEphemeral, []int{20, 30}, true)
	cfg.Workload.Runtime = 20 * sim.Second
	live, _, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Setup.LM.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := shortPaperConfig(0.05, core.ModeFirewall, []int{10, 10}, false)
	if _, err := Run(cfg); err == nil {
		t.Fatal("FW with two generations accepted")
	}
	cfg = shortPaperConfig(0.05, core.ModeEphemeral, []int{10, 10}, false)
	cfg.Workload.Mix = workload.Mix{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("empty mix accepted")
	}
}

// TestRecordConservation: every record appended to the log is eventually
// accounted for as garbage or as a live (non-garbage) record — across
// forwarding, recirculation, kills and flushes.
func TestRecordConservation(t *testing.T) {
	configs := []struct {
		mode   core.Mode
		sizes  []int
		recirc bool
	}{
		{core.ModeEphemeral, []int{18, 16}, false},
		{core.ModeEphemeral, []int{18, 10}, true},
		{core.ModeEphemeral, []int{8, 6}, true}, // kill pressure
		{core.ModeFirewall, []int{123}, false},
	}
	for _, c := range configs {
		cfg := shortPaperConfig(0.05, c.mode, c.sizes, c.recirc)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		live := uint64(0)
		for _, g := range res.LM.Gens {
			live += uint64(g.Cells)
		}
		if res.LM.AppendedRecs != res.LM.Garbage+live {
			t.Fatalf("%v %v: %d appended != %d garbage + %d live",
				c.mode, c.sizes, res.LM.AppendedRecs, res.LM.Garbage, live)
		}
	}
}

// TestDrainedRunLeavesNoResidue: after the workload ends and flushes
// drain, everything appended is garbage and the tables are empty.
func TestDrainedRunLeavesNoResidue(t *testing.T) {
	cfg := shortPaperConfig(0.05, core.ModeEphemeral, []int{18, 12}, true)
	cfg.Workload.Runtime = 20 * sim.Second
	live, _, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Let in-flight transactions finish (longest lifetime 10s), then
	// quiesce buffers and drain flushes.
	live.Setup.Eng.Run(45 * sim.Second)
	live.Setup.LM.Quiesce()
	live.Setup.Eng.Run(60 * sim.Second)
	live.Setup.LM.Quiesce()
	live.Setup.Eng.Run(75 * sim.Second)
	st := live.Setup.LM.Stats()
	if st.LOTEntries != 0 || st.LTTEntries != 0 {
		t.Fatalf("residue: LOT=%d LTT=%d\n%s", st.LOTEntries, st.LTTEntries, st)
	}
	if st.AppendedRecs != st.Garbage {
		t.Fatalf("%d appended, only %d garbage after drain", st.AppendedRecs, st.Garbage)
	}
	if err := live.Setup.LM.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
