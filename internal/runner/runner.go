// Package runner fans independent simulation probes across a bounded pool
// of goroutines. Each probe is one complete harness.Run — a single-threaded
// discrete-event simulation whose outcome depends only on its Config
// (including the seed) — so whole runs parallelize freely while every
// individual simulation stays deterministic. The pool additionally
// memoizes results by canonical config so overlapping searches (the
// experiments share many probe points) pay for each simulation once.
//
// A nil *Pool is valid everywhere and means "strictly sequential,
// uncached": call sites thread an optional pool without branching, and
// sequential output is byte-identical to parallel output by construction —
// the pool never reorders, samples, or perturbs results, it only
// schedules.
//
// Across-runs vs. within-run parallelism. This pool parallelizes ACROSS
// runs: every probe it schedules must be a single-threaded simulation.
// multilog.BuildPDES offers the complementary shape — one simulation
// spread over several workers (within-run). The two are alternatives, not
// layers: a Workers>1 PDES run inside a pool fan-out (or inside a crash
// campaign's worker sweep, which makes the same one-engine-per-goroutine
// assumption) would oversubscribe the machine, and the PDES layer guards
// against it with a process-wide slot — the second concurrent Workers>1
// run panics with multilog.ErrNestedParallelism. Fanning Workers=1 PDES
// runs across pool goroutines is fine and unguarded: a sequential PDES
// run is just another single-threaded simulation.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ellog/internal/harness"
)

// Pool is a bounded worker pool with a probe cache. The semaphore gates
// only the simulations themselves (Run and Do); orchestration helpers
// (ForEach, RunAll) run unthrottled so nested fan-out — an experiment
// point that itself runs a search that itself probes — cannot deadlock on
// pool slots.
type Pool struct {
	sem  chan struct{}
	mu   sync.Mutex
	memo map[string]*probe
	runs atomic.Uint64 // simulations actually executed
	hits atomic.Uint64 // probes answered from the cache (or an in-flight run)
}

// probe is one memoized simulation: started exactly once, joined by any
// number of waiters.
type probe struct {
	done chan struct{}
	res  harness.Result
	err  error
}

// New builds a pool running at most workers simulations at once.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		sem:  make(chan struct{}, workers),
		memo: make(map[string]*probe),
	}
}

// Workers reports the concurrency bound; a nil pool runs one probe at a
// time.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return cap(p.sem)
}

// Key canonicalizes a config for memoization. harness.Config is plain
// data — value fields and slices, no maps or pointers — so the %#v
// rendering is a faithful, deterministic identity.
func Key(cfg harness.Config) string { return fmt.Sprintf("%#v", cfg) }

// Run executes one probe, deduplicating against the cache: if an
// identical config already ran (or is running), its result is shared
// instead of re-simulated. On a nil pool it degenerates to harness.Run.
func (p *Pool) Run(cfg harness.Config) (harness.Result, error) {
	if p == nil {
		return harness.Run(cfg)
	}
	key := Key(cfg)
	p.mu.Lock()
	if pr, ok := p.memo[key]; ok {
		p.mu.Unlock()
		p.hits.Add(1)
		<-pr.done
		return pr.res, pr.err
	}
	pr := &probe{done: make(chan struct{})}
	p.memo[key] = pr
	p.mu.Unlock()

	p.sem <- struct{}{}
	pr.res, pr.err = harness.Run(cfg)
	<-p.sem
	p.runs.Add(1)
	close(pr.done)
	return pr.res, pr.err
}

// RunAll probes every config and returns results in input order. All
// probes run to completion even when some fail; the error (if any) is the
// one from the lowest-index failing config, so parallel and sequential
// callers observe the same error.
func (p *Pool) RunAll(cfgs []harness.Config) ([]harness.Result, error) {
	out := make([]harness.Result, len(cfgs))
	err := p.ForEach(len(cfgs), func(i int) error {
		r, e := p.Run(cfgs[i])
		out[i] = r
		return e
	})
	return out, err
}

// ForEach invokes fn(0) … fn(n-1), concurrently on a real pool and
// in index order on a nil one, and waits for all of them. Every task runs
// regardless of other tasks' failures — results land in caller-indexed
// slots, so partial completion would leave silent zero values — and the
// lowest-index error is returned, making the reported failure independent
// of goroutine scheduling.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p == nil || n == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn(i)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Do runs fn under the pool's concurrency bound without caching — for
// live runs (recovery drills, trace captures) that mutate state beyond a
// Result and therefore must execute every time. On a nil pool fn runs
// directly.
func (p *Pool) Do(fn func() error) error {
	if p == nil {
		return fn()
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	return fn()
}

// Stats reports how many simulations actually executed and how many
// probes were answered by the cache.
func (p *Pool) Stats() (runs, hits uint64) {
	if p == nil {
		return 0, 0
	}
	return p.runs.Load(), p.hits.Load()
}
