package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/sim"
)

// tinyConfig is a fast complete run: a couple of simulated seconds over a
// small object space.
func tinyConfig(seed uint64, genBlocks int) harness.Config {
	cfg := harness.PaperDefaults(0.05)
	cfg.Seed = seed
	cfg.LM = core.Params{Mode: core.ModeFirewall, GenSizes: []int{genBlocks}}
	cfg.Workload.Runtime = 2 * sim.Second
	cfg.Workload.NumObjects = 10_000
	cfg.Flush.NumObjects = 10_000
	return cfg
}

func TestKeyIdentity(t *testing.T) {
	a, b := tinyConfig(1, 200), tinyConfig(1, 200)
	if Key(a) != Key(b) {
		t.Fatal("identical configs produced different keys")
	}
	for _, other := range []harness.Config{
		tinyConfig(2, 200), // seed differs
		tinyConfig(1, 201), // generation size differs
	} {
		if Key(a) == Key(other) {
			t.Fatalf("distinct configs share a key: %s", Key(other))
		}
	}
	// Mutating a slice element must change the key (no aliasing traps).
	c := tinyConfig(1, 200)
	c.LM.GenSizes = []int{150, 50}
	if Key(a) == Key(c) {
		t.Fatal("gen-size split not reflected in key")
	}
}

func TestRunMatchesSequential(t *testing.T) {
	cfg := tinyConfig(3, 150)
	want, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(4).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", want) {
		t.Fatalf("pooled result diverged:\n got %#v\nwant %#v", got, want)
	}
}

func TestMemoization(t *testing.T) {
	p := New(2)
	cfg := tinyConfig(4, 150)
	first, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", first) != fmt.Sprintf("%#v", second) {
		t.Fatal("cached result differs from original")
	}
	if runs, hits := p.Stats(); runs != 1 || hits != 1 {
		t.Fatalf("runs=%d hits=%d, want 1/1", runs, hits)
	}
}

func TestRunAllOrderedAndDeterministic(t *testing.T) {
	cfgs := []harness.Config{
		tinyConfig(1, 150), tinyConfig(2, 150), tinyConfig(3, 150),
		tinyConfig(1, 150), // duplicate: must be served by the cache
	}
	var want []harness.Result
	for _, cfg := range cfgs {
		r, err := harness.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	p := New(4)
	got, err := p.RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if fmt.Sprintf("%#v", got[i]) != fmt.Sprintf("%#v", want[i]) {
			t.Fatalf("result %d diverged from sequential run", i)
		}
	}
	if runs, hits := p.Stats(); runs != 3 || hits != 1 {
		t.Fatalf("runs=%d hits=%d, want 3 runs and 1 cache hit", runs, hits)
	}
}

func TestRunAllReportsLowestIndexError(t *testing.T) {
	bad := tinyConfig(1, 150)
	bad.LM.GenSizes = nil // invalid: no generations
	bad2 := tinyConfig(2, 150)
	bad2.LM.GenSizes = []int{-5}
	cfgs := []harness.Config{tinyConfig(3, 150), bad, bad2}

	p := New(4)
	_, perr := p.RunAll(cfgs)
	if perr == nil {
		t.Fatal("invalid configs produced no error")
	}
	_, serr := (*Pool)(nil).RunAll(cfgs)
	if serr == nil || perr.Error() != serr.Error() {
		t.Fatalf("parallel error %q != sequential error %q", perr, serr)
	}
}

func TestForEachRunsEveryTask(t *testing.T) {
	const n = 17
	var ran [n]atomic.Bool
	sentinel := errors.New("task 3 failed")
	err := New(4).ForEach(n, func(i int) error {
		ran[i].Store(true)
		switch i {
		case 3:
			return sentinel
		case 9:
			return errors.New("task 9 failed")
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("task %d never ran despite earlier failure", i)
		}
	}
}

func TestNilPoolFallsBackToSequential(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	cfg := tinyConfig(5, 150)
	want, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", want) {
		t.Fatal("nil-pool Run diverged from harness.Run")
	}
	order := []int{}
	if err := p.ForEach(4, func(i int) error { order = append(order, i); return nil }); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[0 1 2 3]" {
		t.Fatalf("nil-pool ForEach order %v, want strictly sequential", order)
	}
	ran := false
	if err := p.Do(func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatal("nil-pool Do did not run the function")
	}
	if runs, hits := p.Stats(); runs != 0 || hits != 0 {
		t.Fatal("nil pool reported stats")
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	p := New(2)
	var cur, peak atomic.Int64
	err := p.ForEach(8, func(int) error {
		return p.Do(func() error {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			cur.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d exceeds pool bound 2", got)
	}
}

// TestConcurrentJoinersShareOneRun exercises the in-flight dedup: many
// goroutines requesting the same config must trigger exactly one
// simulation.
func TestConcurrentJoinersShareOneRun(t *testing.T) {
	p := New(4)
	cfg := tinyConfig(6, 150)
	if err := p.ForEach(12, func(int) error {
		_, err := p.Run(cfg)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if runs, hits := p.Stats(); runs != 1 || hits != 11 {
		t.Fatalf("runs=%d hits=%d, want exactly one simulation", runs, hits)
	}
}
