package realdev

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ellog/internal/blockdev"
	"ellog/internal/metrics"
	"ellog/internal/obs"
	"ellog/internal/obs/live"
	"ellog/internal/realtime"
	"ellog/internal/sim"
)

// DirectMode selects how the log file is opened.
type DirectMode string

const (
	// DirectAuto tries O_DIRECT and falls back to buffered I/O where the
	// filesystem refuses it (tmpfs returns EINVAL at open time) or the
	// platform has no such flag. The default.
	DirectAuto DirectMode = "auto"
	// DirectOn requires O_DIRECT; Open fails if it is unavailable.
	DirectOn DirectMode = "on"
	// DirectOff always uses buffered I/O (durability still comes from the
	// per-batch fsync). CI runs on tmpfs use this to make the fallback path
	// explicit rather than incidental.
	DirectOff DirectMode = "off"
)

// Options configures a real-file log device.
type Options struct {
	// SlotBytes is the on-disk slot size; it must be a positive multiple of
	// 4096 large enough for frameHdrLen plus the worst-case wire block
	// (SlotFor computes it). Required.
	SlotBytes int
	// Direct selects O_DIRECT handling; empty means DirectAuto.
	Direct DirectMode
	// GroupBytes dispatches the pending batch once this many payload bytes
	// accumulate; <=0 means 256 KiB.
	GroupBytes int
	// GroupDelay dispatches a non-empty pending batch after this much loop
	// time even if GroupBytes was not reached — the device-level group
	// commit timeout; <=0 means 2 ms.
	GroupDelay sim.Time
	// Pipeline is the number of dispatched batches that may be in flight to
	// the fsync worker before dispatch blocks (commit pipelining depth à la
	// BtrLog: batch N+1 fills and ships while batch N's fsync runs); <=0
	// means 2.
	Pipeline int
}

func (o Options) withDefaults() (Options, error) {
	if o.SlotBytes <= 0 || o.SlotBytes%diskAlign != 0 {
		return o, fmt.Errorf("realdev: SlotBytes must be a positive multiple of %d, got %d", diskAlign, o.SlotBytes)
	}
	if o.Direct == "" {
		o.Direct = DirectAuto
	}
	if o.Direct != DirectAuto && o.Direct != DirectOn && o.Direct != DirectOff {
		return o, fmt.Errorf("realdev: unknown direct mode %q", o.Direct)
	}
	if o.GroupBytes <= 0 {
		o.GroupBytes = 256 << 10
	}
	if o.GroupDelay <= 0 {
		o.GroupDelay = 2 * sim.Millisecond
	}
	if o.Pipeline <= 0 {
		o.Pipeline = 2
	}
	return o, nil
}

// RealStats reports what the simulated device cannot: measured I/O-path
// behavior of a real run.
type RealStats struct {
	Direct         bool    `json:"direct"`           // O_DIRECT actually in effect
	SlotBytes      int     `json:"slot_bytes"`       //
	Batches        uint64  `json:"batches"`          // fsync groups shipped
	Fsyncs         uint64  `json:"fsyncs"`           // == Batches (one fsync per group)
	PipelineStalls uint64  `json:"pipeline_stalls"`  // dispatches that blocked on a full pipeline
	MaxBatchBlocks int     `json:"max_batch_blocks"` // largest group shipped
	BatchMeanMS    float64 `json:"batch_mean_ms"`    // wall time per group, write+fsync
	BatchP50MS     float64 `json:"batch_p50_ms"`     //
	BatchP95MS     float64 `json:"batch_p95_ms"`     //
	BatchP99MS     float64 `json:"batch_p99_ms"`     //
	BatchP999MS    float64 `json:"batch_p999_ms"`    //
	FileBytes      int64   `json:"file_bytes"`       // log.dat size (slots allocated)

	// Group-commit batch-size distribution, from the per-batch histograms.
	BatchBlocksMean float64 `json:"batch_blocks_mean"`
	BatchBlocksP99  float64 `json:"batch_blocks_p99"`
	BatchBytesMean  float64 `json:"batch_bytes_mean"`
	BatchBytesP99   float64 `json:"batch_bytes_p99"`

	// FsyncHistMS is the fsync latency distribution bucketized on the
	// canonical obs.FsyncLatencyBucketsMS bounds — the same shape the
	// /metrics endpoint exposes.
	FsyncHistMS metrics.BucketSnapshot `json:"fsync_hist_ms"`
}

type slotWrite struct {
	id   blockdev.BlockID
	off  int64
	buf  []byte
	gen  int
	plen int
	done func(err error)
}

type batch struct {
	writes []slotWrite
	bytes  int
}

// Device is a real-file core.LogDevice. Alloc and Write run on the loop
// goroutine; completions are delivered back to it via realtime.Loop.Post, so
// the manager keeps the single-threaded discipline it has under simulation.
// One background goroutine — the syncer — performs the pwrite+fsync work.
type Device struct {
	loop *realtime.Loop
	opt  Options
	dir  string
	f    *os.File

	direct bool

	// Loop-goroutine state.
	nextID     blockdev.BlockID
	gens       []int             // generation of each allocated slot, by id-1
	sized      int64             // file length already reserved via grow
	grow       func(int64) error // extends the file; d.f.Truncate outside tests
	growErr    error             // last failed extension; cleared when a retry succeeds
	cur        *batch
	batchEpoch uint64 // invalidates the pending GroupDelay timer on dispatch
	inflight   int    // batches dispatched but not yet completed
	pending    map[blockdev.BlockID]struct{}
	pool       [][]byte
	closed     bool

	stats       blockdev.Stats
	rs          RealStats
	batchLat    *metrics.Histogram // milliseconds per batch
	batchBlocks *metrics.Histogram // slots per dispatched batch
	batchBytes  *metrics.Histogram // payload bytes per dispatched batch

	// Live instruments (nil unless SetMetrics armed them); dispatch and
	// complete update them on the loop goroutine, HTTP readers load them
	// atomically.
	met *devMetrics

	// Syncer plumbing.
	ch chan *batch
	wg sync.WaitGroup
}

// devMetrics bundles the device's live registry instruments.
type devMetrics struct {
	batches, fsyncs, stalls   *live.Value
	inflight                  *live.Value
	fsyncLat, blocksH, bytesH *live.Histogram
}

// SetMetrics registers the device's metrics on a live registry. Call
// before the run starts (registration is not what the hot path does).
func (d *Device) SetMetrics(reg *live.Registry) {
	if reg == nil {
		return
	}
	d.met = &devMetrics{
		batches:  reg.Counter(obs.MetricBatches, ""),
		fsyncs:   reg.Counter(obs.MetricFsyncs, ""),
		stalls:   reg.Counter(obs.MetricPipelineStalls, ""),
		inflight: reg.Gauge(obs.MetricInflightBatches, ""),
		fsyncLat: reg.Histogram(obs.MetricFsyncLatencyMS, "", obs.FsyncLatencyBucketsMS),
		blocksH:  reg.Histogram(obs.MetricBatchBlocks, "", obs.BatchBlocksBuckets),
		bytesH:   reg.Histogram(obs.MetricBatchBytes, "", obs.BatchBytesBuckets),
	}
}

// Open creates (or truncates) a log directory and returns a device bound to
// the loop. The directory gains meta.json — recording the slot size for the
// image reader — and an empty log.dat.
func Open(loop *realtime.Loop, dir string, opt Options) (*Device, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta, _ := json.Marshal(metaFile{Version: 1, SlotBytes: opt.SlotBytes})
	if err := os.WriteFile(filepath.Join(dir, metaName), append(meta, '\n'), 0o644); err != nil {
		return nil, err
	}
	f, direct, err := openLog(filepath.Join(dir, logName), opt.Direct)
	if err != nil {
		return nil, err
	}
	d := &Device{
		loop:        loop,
		opt:         opt,
		dir:         dir,
		f:           f,
		direct:      direct,
		batchLat:    &metrics.Histogram{},
		batchBlocks: &metrics.Histogram{},
		batchBytes:  &metrics.Histogram{},
		ch:          make(chan *batch, opt.Pipeline),
	}
	d.grow = f.Truncate
	d.stats.WritesPerGen = make(map[int]uint64)
	d.pending = make(map[blockdev.BlockID]struct{})
	d.rs.Direct = direct
	d.rs.SlotBytes = opt.SlotBytes
	d.wg.Add(1)
	go d.syncer()
	return d, nil
}

func openLog(path string, mode DirectMode) (*os.File, bool, error) {
	flags := os.O_RDWR | os.O_CREATE | os.O_TRUNC
	if mode != DirectOff && oDirectFlag != 0 {
		f, err := os.OpenFile(path, flags|oDirectFlag, 0o644)
		if err == nil {
			return f, true, nil
		}
		if mode == DirectOn {
			return nil, false, fmt.Errorf("realdev: direct I/O required but unavailable: %w", err)
		}
	} else if mode == DirectOn {
		return nil, false, fmt.Errorf("realdev: direct I/O required but not supported on this platform")
	}
	f, err := os.OpenFile(path, flags, 0o644)
	return f, false, err
}

// Alloc reserves the next slot for a block of the given generation and
// grows the file to cover it, so direct writes never land past EOF.
//
// Alloc has no error return (the simulated device never fails), so a
// failed extension — ENOSPC, quota — is remembered in d.growErr and
// surfaces on the affected slot's Write completion instead of being
// swallowed: the manager already treats completion errors as failed
// writes. A later Alloc that extends successfully clears the condition.
func (d *Device) Alloc(gen int) blockdev.BlockID {
	d.nextID++
	d.gens = append(d.gens, gen)
	if need := int64(d.nextID) * int64(d.opt.SlotBytes); need > d.sized {
		// Extend in whole-slot steps; growing a file under concurrent
		// WriteAt from the syncer is safe.
		if err := d.grow(need); err != nil {
			d.growErr = fmt.Errorf("realdev: growing log to %d bytes: %w", need, err)
		} else {
			d.sized = need
			d.growErr = nil
		}
	}
	return d.nextID
}

// Write frames the block image into a slot buffer and adds it to the
// pending batch; done fires on the loop goroutine once the covering fsync
// has returned. The data slice is copied before Write returns (the manager
// reuses its encode buffer).
func (d *Device) Write(id blockdev.BlockID, data []byte, done func(err error)) {
	if d.closed {
		panic("realdev: Write after Close")
	}
	if id == 0 || id > d.nextID {
		panic(fmt.Sprintf("realdev: write to unallocated block %d", id))
	}
	if frameHdrLen+len(data) > d.opt.SlotBytes {
		panic(fmt.Sprintf("realdev: block image %d B overflows %d B slot (size slots with SlotFor)", len(data), d.opt.SlotBytes))
	}
	gen := d.gens[id-1]
	off := int64(id-1) * int64(d.opt.SlotBytes)
	if off+int64(d.opt.SlotBytes) > d.sized && d.growErr != nil {
		// The file never grew to cover this slot: fail the write now
		// rather than let a direct pwrite land past EOF or quietly rely
		// on the filesystem extending the file without the space check.
		// Completion stays asynchronous — done must not fire inside
		// Write — and the stats mirror a syncer-reported failure.
		err := d.growErr
		d.stats.Writes++
		d.stats.WritesPerGen[gen]++
		d.stats.Failed++
		d.loop.Post(func() { done(err) })
		return
	}
	buf := d.takeBuf()
	n := putFrame(buf, gen, data)
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	d.pending[id] = struct{}{}
	w := slotWrite{
		id:   id,
		off:  off,
		buf:  buf,
		gen:  gen,
		plen: len(data),
		done: done,
	}
	if d.cur == nil {
		d.cur = &batch{}
		epoch := d.batchEpoch
		d.loop.After(d.opt.GroupDelay, func() {
			if d.batchEpoch == epoch {
				d.dispatch()
			}
		})
	}
	d.cur.writes = append(d.cur.writes, w)
	d.cur.bytes += len(data)
	if d.cur.bytes >= d.opt.GroupBytes {
		d.dispatch()
	}
}

func (d *Device) dispatch() {
	b := d.cur
	if b == nil {
		return
	}
	d.cur = nil
	d.batchEpoch++
	stalled := len(d.ch) == cap(d.ch)
	if stalled {
		d.rs.PipelineStalls++
	}
	d.inflight++
	d.rs.Batches++
	d.rs.Fsyncs++
	if len(b.writes) > d.rs.MaxBatchBlocks {
		d.rs.MaxBatchBlocks = len(b.writes)
	}
	d.batchBlocks.Observe(float64(len(b.writes)))
	d.batchBytes.Observe(float64(b.bytes))
	if d.met != nil {
		if stalled {
			d.met.stalls.Inc()
		}
		d.met.batches.Inc()
		d.met.fsyncs.Inc()
		d.met.inflight.Set(float64(d.inflight))
		d.met.blocksH.Observe(float64(len(b.writes)))
		d.met.bytesH.Observe(float64(b.bytes))
	}
	d.ch <- b
}

// Seal dispatches the pending partial batch, if any, without waiting for
// the group timeout. The run harness calls it at the horizon before
// draining in-flight completions.
func (d *Device) Seal() { d.dispatch() }

// InFlight reports dispatched-but-uncompleted batches plus the pending
// partial batch. Loop-goroutine only.
func (d *Device) InFlight() int {
	n := d.inflight
	if d.cur != nil {
		n++
	}
	return n
}

func (d *Device) syncer() {
	defer d.wg.Done()
	for b := range d.ch {
		t0 := time.Now()
		var err error
		for _, w := range b.writes {
			if _, e := d.f.WriteAt(w.buf, w.off); e != nil {
				err = e
				break
			}
		}
		if err == nil {
			err = d.f.Sync()
		}
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		b := b
		d.loop.Post(func() { d.complete(b, err, ms) })
	}
}

// complete runs on the loop goroutine: all stats mutation and completion
// callbacks happen here, never on the syncer.
func (d *Device) complete(b *batch, err error, ms float64) {
	d.inflight--
	d.batchLat.Observe(ms)
	if d.met != nil {
		d.met.fsyncLat.Observe(ms)
		d.met.inflight.Set(float64(d.inflight))
	}
	for _, w := range b.writes {
		delete(d.pending, w.id)
		d.stats.Writes++
		d.stats.WritesPerGen[w.gen]++
		if err != nil {
			d.stats.Failed++
		} else {
			d.stats.Bytes += uint64(w.plen)
		}
		d.putBuf(w.buf)
	}
	for _, w := range b.writes {
		w.done(err)
	}
}

// Stats returns cumulative write statistics in the simulated device's
// shape, so core.Manager reporting works unchanged against a real file.
func (d *Device) Stats() blockdev.Stats {
	s := d.stats
	s.WritesPerGen = make(map[int]uint64, len(d.stats.WritesPerGen))
	for g, n := range d.stats.WritesPerGen {
		s.WritesPerGen[g] = n
	}
	return s
}

// RealStats returns measured I/O-path statistics.
func (d *Device) RealStats() RealStats {
	rs := d.rs
	rs.BatchMeanMS = d.batchLat.Mean()
	rs.BatchP50MS = d.batchLat.Quantile(0.50)
	rs.BatchP95MS = d.batchLat.Quantile(0.95)
	rs.BatchP99MS = d.batchLat.Quantile(0.99)
	rs.BatchP999MS = d.batchLat.Quantile(0.999)
	rs.BatchBlocksMean = d.batchBlocks.Mean()
	rs.BatchBlocksP99 = d.batchBlocks.Quantile(0.99)
	rs.BatchBytesMean = d.batchBytes.Mean()
	rs.BatchBytesP99 = d.batchBytes.Quantile(0.99)
	rs.FsyncHistMS = d.batchLat.Snapshot(obs.FsyncLatencyBucketsMS)
	rs.FileBytes = d.sized
	return rs
}

// Writes reports completed slot writes so far — the schema's log-writes
// probe, matching the simulated device's accessor.
func (d *Device) Writes() uint64 { return d.stats.Writes }

// PendingSlots returns the ids of slots with an issued but uncompleted
// write, in ascending order. After Seal followed by Abandon, these are
// exactly the slots whose contents reached the file (the syncer finishes
// dispatched batches) but whose durability was never acknowledged to the
// manager — the slots a crash is allowed to tear. Loop-goroutine only.
func (d *Device) PendingSlots() []blockdev.BlockID {
	ids := make([]blockdev.BlockID, 0, len(d.pending))
	for id := range d.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Dir returns the device's log directory.
func (d *Device) Dir() string { return d.dir }

// NumSlots reports how many slots have been allocated.
func (d *Device) NumSlots() int { return int(d.nextID) }

// Close dispatches any pending batch, waits for the syncer to drain, runs
// the remaining completions, and closes the file. Must be called on the
// loop goroutine with the loop not inside Run.
func (d *Device) Close() error {
	if d.closed {
		return nil
	}
	d.dispatch()
	d.closed = true
	close(d.ch)
	d.wg.Wait()
	for d.loop.Step() {
	}
	return d.f.Close()
}

// Abandon models a crash: the pending batch — writes the manager issued but
// the device never shipped — is dropped on the floor, batches already
// handed to the syncer finish their writes, and the file is closed without
// running any completion callbacks. The on-disk state afterwards is a
// legitimate crash image; tests typically truncate the tail further to
// manufacture a torn final block.
func (d *Device) Abandon() error {
	if d.closed {
		return nil
	}
	d.cur = nil
	d.batchEpoch++
	d.closed = true
	close(d.ch)
	d.wg.Wait()
	return d.f.Close()
}

func (d *Device) takeBuf() []byte {
	if n := len(d.pool); n > 0 {
		b := d.pool[n-1]
		d.pool = d.pool[:n-1]
		return b
	}
	return allocAligned(d.opt.SlotBytes, d.direct)
}

func (d *Device) putBuf(b []byte) {
	if len(d.pool) < 64 {
		d.pool = append(d.pool, b)
	}
}
