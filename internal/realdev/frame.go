// Package realdev binds the logging-manager core to a real file: the
// second implementation of core.LogDevice, writing the exact logrec block
// images the simulated device holds — but to fixed-size, alignment-friendly
// slots of an ordinary file, batched BtrLog-style (size- and timeout-based
// group commit with pipelined fsyncs) and made durable by fsync.
//
// Like internal/realtime, this package lives outside the determinism
// contract: it reads the wall clock and its timings are not reproducible
// (the ellint ruleset exempts it by scope). Its on-disk state, however, is
// governed by the same CRC32-C record and block checksums as the simulated
// crash image, so internal/recovery's scan/salvage pass recovers a real
// file exactly as it recovers a simulated device.
//
// On-disk layout: a directory holding meta.json ({"version":1,
// "slot_bytes":N}) and log.dat, an array of N-byte slots, one per
// allocated BlockID in allocation order. Each written slot starts with a
// 16-byte frame header — magic, generation, payload length, and a CRC32-C
// over those twelve bytes — followed by the logrec block image and zero or
// stale padding out to the slot size. Slots are sized for the WORST-CASE
// wire encoding of a block (logrec.MaxBlockWire): the wire form is
// header-only, so a block packed with 8-byte tx records encodes to ~16 KiB
// against its 2000-byte logical payload, and sizing slots from the logical
// block size would overflow.
package realdev

import (
	"encoding/binary"
	"hash/crc32"

	"ellog/internal/logrec"
)

const (
	// frameHdrLen is the per-slot header: magic (4), generation (4),
	// payload length (4), CRC32-C of the preceding twelve bytes (4).
	frameHdrLen = 16
	// diskAlign is the alignment unit for slot sizes, file offsets and
	// direct-I/O buffers: 4096 covers every contemporary logical block
	// size.
	diskAlign = 4096
)

// frameMagic marks a slot that has been written at least once. A slot of
// zeros (never written) or a partially written header fails the magic or
// header-CRC check and is skipped by the image reader — the real-file
// equivalent of a simulated block with nil durable contents.
var frameMagic = [4]byte{'E', 'L', 'R', 'D'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// putFrame writes a frame header plus payload into buf, which must hold at
// least frameHdrLen+len(payload) bytes, and returns the frame length.
func putFrame(buf []byte, gen int, payload []byte) int {
	copy(buf[0:4], frameMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(gen))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.Checksum(buf[0:12], castagnoli))
	copy(buf[frameHdrLen:], payload)
	return frameHdrLen + len(payload)
}

// parseFrame validates a slot's frame header and returns the generation
// and payload. A payload length pointing past the available bytes — the
// signature of a write torn at the end of the file — is clamped, not
// rejected: the payload's own block and record checksums decide how much
// of it survives (logrec.SalvageBlock), exactly as for a torn simulated
// block.
func parseFrame(slot []byte) (gen int, payload []byte, ok bool) {
	if len(slot) < frameHdrLen {
		return 0, nil, false
	}
	if [4]byte(slot[0:4]) != frameMagic {
		return 0, nil, false
	}
	if crc32.Checksum(slot[0:12], castagnoli) != binary.LittleEndian.Uint32(slot[12:16]) {
		return 0, nil, false
	}
	gen = int(binary.LittleEndian.Uint32(slot[4:8]))
	plen := int(binary.LittleEndian.Uint32(slot[8:12]))
	if plen > len(slot)-frameHdrLen {
		plen = len(slot) - frameHdrLen
	}
	return gen, slot[frameHdrLen : frameHdrLen+plen], true
}

// SlotFor returns the slot size (a multiple of the 4096-byte alignment
// unit) needed to hold any block a manager with the given logical payload
// can produce, when no record is charged fewer than minRecSize logical
// bytes.
func SlotFor(blockPayload, minRecSize int) int {
	need := frameHdrLen + logrec.MaxBlockWire(blockPayload, minRecSize)
	return (need + diskAlign - 1) &^ (diskAlign - 1)
}
