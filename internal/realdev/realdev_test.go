package realdev

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ellog/internal/blockdev"
	"ellog/internal/core"
	"ellog/internal/logrec"
	"ellog/internal/realtime"
	"ellog/internal/recovery"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	buf := make([]byte, frameHdrLen+len(payload)+7)
	n := putFrame(buf, 2, payload)
	if n != frameHdrLen+len(payload) {
		t.Fatalf("putFrame length %d, want %d", n, frameHdrLen+len(payload))
	}
	gen, got, ok := parseFrame(buf)
	if !ok || gen != 2 || string(got) != string(payload) {
		t.Fatalf("parseFrame = (%d, %q, %v), want (2, %q, true)", gen, got, ok, payload)
	}

	// Torn tail: fewer bytes available than the header's payload length.
	cut := buf[:frameHdrLen+5]
	gen, got, ok = parseFrame(cut)
	if !ok || gen != 2 || string(got) != string(payload[:5]) {
		t.Fatalf("clamped parseFrame = (%d, %q, %v), want (2, %q, true)", gen, got, ok, payload[:5])
	}

	// Slots of zeros (never written) and corrupt headers are rejected.
	if _, _, ok := parseFrame(make([]byte, 64)); ok {
		t.Fatal("parseFrame accepted a zero slot")
	}
	bad := make([]byte, frameHdrLen+len(payload))
	putFrame(bad, 2, payload)
	bad[6] ^= 1 // flip a generation bit: header CRC must catch it
	if _, _, ok := parseFrame(bad); ok {
		t.Fatal("parseFrame accepted a corrupt header")
	}
	if _, _, ok := parseFrame(bad[:frameHdrLen-1]); ok {
		t.Fatal("parseFrame accepted a truncated header")
	}
}

func TestSlotForBounds(t *testing.T) {
	for _, tc := range []struct{ payload, minRec int }{
		{2000, 8}, {2000, 100}, {500, 1}, {1, 1},
	} {
		s := SlotFor(tc.payload, tc.minRec)
		if s%diskAlign != 0 {
			t.Errorf("SlotFor(%d,%d) = %d, not a multiple of %d", tc.payload, tc.minRec, s, diskAlign)
		}
		if s < frameHdrLen+logrec.MaxBlockWire(tc.payload, tc.minRec) {
			t.Errorf("SlotFor(%d,%d) = %d too small for worst-case wire block", tc.payload, tc.minRec, s)
		}
	}
}

// drainDevice runs the loop until the device has no in-flight work.
func drainDevice(t *testing.T, loop *realtime.Loop, dev *Device) {
	t.Helper()
	dev.Seal()
	deadline := loop.Now() + 5*sim.Second
	for dev.InFlight() > 0 && loop.Now() < deadline {
		loop.Run(loop.Now() + sim.Millisecond)
	}
	if dev.InFlight() > 0 {
		t.Fatal("device failed to drain within 5 s")
	}
}

// writeTestBlocks drives a bare device through a few block writes and
// returns the records written per block id.
func writeTestBlocks(t *testing.T, loop *realtime.Loop, dev *Device) map[blockdev.BlockID][]*logrec.Record {
	t.Helper()
	blocks := make(map[blockdev.BlockID][]*logrec.Record)
	lsn := logrec.LSN(0)
	for i, gen := range []int{0, 0, 1} {
		id := dev.Alloc(gen)
		lsn++
		begin := logrec.NewTxRecord(lsn, loop.Now(), logrec.KindBegin, logrec.TxID(i+1), 8)
		lsn++
		data := logrec.NewDataRecord(lsn, loop.Now(), logrec.TxID(i+1), logrec.OID(42+i), 100)
		lsn++
		commit := logrec.NewTxRecord(lsn, loop.Now(), logrec.KindCommit, logrec.TxID(i+1), 8)
		recs := []*logrec.Record{begin, data, commit}
		blocks[id] = recs
		completed := false
		dev.Write(id, logrec.EncodeBlock(recs), func(err error) {
			if err != nil {
				t.Errorf("write %d failed: %v", id, err)
			}
			completed = true
		})
		_ = completed
	}
	return blocks
}

func TestDeviceWriteAndReadImage(t *testing.T) {
	dir := t.TempDir()
	loop := realtime.New(1)
	dev, err := Open(loop, dir, Options{SlotBytes: 8192, Direct: DirectOff})
	if err != nil {
		t.Fatal(err)
	}
	blocks := writeTestBlocks(t, loop, dev)
	dev.Alloc(1) // allocated but never written: must read back as skipped
	drainDevice(t, loop, dev)
	rs := dev.RealStats()
	if rs.Batches == 0 || rs.Fsyncs != rs.Batches {
		t.Fatalf("RealStats batches/fsyncs = %d/%d", rs.Batches, rs.Fsyncs)
	}
	st := dev.Stats()
	if st.Writes != 3 || st.Failed != 0 {
		t.Fatalf("Stats = %+v, want 3 writes, 0 failed", st)
	}
	if st.WritesPerGen[0] != 2 || st.WritesPerGen[1] != 1 {
		t.Fatalf("WritesPerGen = %v", st.WritesPerGen)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	im, err := ReadImage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if im.NumBlocks() != 3 || im.Skipped() != 1 {
		t.Fatalf("image: %d blocks, %d skipped; want 3 and 1", im.NumBlocks(), im.Skipped())
	}
	seen := 0
	im.RangeDurable(func(id blockdev.BlockID, gen int, data []byte) bool {
		want, ok := blocks[id]
		if !ok {
			t.Fatalf("image block %d never written", id)
		}
		recs, err := logrec.DecodeBlock(data)
		if err != nil {
			t.Fatalf("block %d does not decode: %v", id, err)
		}
		if len(recs) != len(want) {
			t.Fatalf("block %d has %d records, want %d", id, len(recs), len(want))
		}
		for i, r := range recs {
			if r.LSN != want[i].LSN || r.Kind != want[i].Kind {
				t.Fatalf("block %d record %d = %+v, want %+v", id, i, r, want[i])
			}
		}
		seen++
		return true
	})
	if seen != 3 {
		t.Fatalf("RangeDurable visited %d blocks, want 3", seen)
	}
}

func TestReadImageTornTail(t *testing.T) {
	dir := t.TempDir()
	loop := realtime.New(1)
	dev, err := Open(loop, dir, Options{SlotBytes: 8192, Direct: DirectOff})
	if err != nil {
		t.Fatal(err)
	}
	writeTestBlocks(t, loop, dev)
	drainDevice(t, loop, dev)
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash model: the final slot's write was cut mid-payload at an
	// unaligned offset — the file ends inside the third block's second
	// record.
	logPath := filepath.Join(dir, logName)
	cut := int64(2*8192) + frameHdrLen + 8 + 65 + 13
	if err := os.Truncate(logPath, cut); err != nil {
		t.Fatal(err)
	}
	im, err := ReadImage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if im.NumBlocks() != 3 {
		t.Fatalf("torn image has %d blocks, want 3 (torn block salvaged, not dropped)", im.NumBlocks())
	}
	var last []byte
	im.RangeDurable(func(id blockdev.BlockID, gen int, data []byte) bool {
		if id == 3 {
			last = data
		}
		return true
	})
	recs, intact := logrec.SalvageBlock(last)
	if intact {
		t.Fatal("torn block reported intact")
	}
	if len(recs) != 1 {
		t.Fatalf("salvaged %d records from torn block, want exactly the 1 complete one", len(recs))
	}
	if recs[0].Kind != logrec.KindBegin {
		t.Fatalf("salvaged record kind = %v, want BEGIN", recs[0].Kind)
	}
}

func TestOpenRejectsBadOptions(t *testing.T) {
	loop := realtime.New(1)
	if _, err := Open(loop, t.TempDir(), Options{SlotBytes: 1000}); err == nil {
		t.Fatal("Open accepted unaligned SlotBytes")
	}
	if _, err := Open(loop, t.TempDir(), Options{SlotBytes: 4096, Direct: "sideways"}); err == nil {
		t.Fatal("Open accepted unknown direct mode")
	}
}

// realTestConfig is a small real-backend configuration: a fast workload
// (10 ms / 50 ms transactions at 400 TPS) against small generations, sized
// to finish in well under a second of wall time.
func realTestConfig(dir string, runtime sim.Time) RunConfig {
	return RunConfig{
		Seed: 7,
		Dir:  dir,
		LM: core.Params{
			Mode:               core.ModeEphemeral,
			GenSizes:           []int{16, 12, 10},
			Recirculate:        true,
			GroupCommitTimeout: 5 * sim.Millisecond,
		},
		Flush: core.FlushConfig{
			Drives:     4,
			Transfer:   2 * sim.Millisecond,
			NumObjects: 10_000,
		},
		Workload: workload.Config{
			Mix: workload.Mix{
				{Name: "short", Prob: 0.8, Lifetime: 10 * sim.Millisecond, NumRecords: 2, RecordSize: 100},
				{Name: "long", Prob: 0.2, Lifetime: 50 * sim.Millisecond, NumRecords: 4, RecordSize: 100},
			},
			ArrivalRate: 400,
			Runtime:     runtime,
			NumObjects:  10_000,
		},
		SampleEvery: 20 * sim.Millisecond,
	}
}

// checkRecovery runs the single-pass recovery against the crashed run's
// log directory and stable database, and checks it against the workload's
// ground truth:
//
//   - every object the oracle says was durably committed recovers at that
//     LSN or newer (a newer unacknowledged winner is legitimate: its COMMIT
//     was durable even though the crash beat the acknowledgement);
//   - every recovery winner is a transaction the workload actually issued a
//     COMMIT for, and never a killed one.
func checkRecovery(t *testing.T, live *Live, dir string) recovery.Result {
	t.Helper()
	im, err := ReadImage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if im.NumBlocks() == 0 {
		t.Fatal("image is empty")
	}
	recovered, rres, err := recovery.Recover(im, live.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	for oid, lsn := range live.Gen.Oracle() {
		v, ok := recovered.Get(oid)
		if !ok {
			t.Fatalf("acknowledged update lost: object %d, want LSN >= %d", oid, lsn)
		}
		if v.LSN < lsn {
			t.Fatalf("object %d recovered at LSN %d, acknowledged LSN %d", oid, v.LSN, lsn)
		}
	}
	started := live.Gen.Stats().Started
	for _, tid := range rres.WinnerTxs {
		info := live.Gen.TxInfo(tid)
		if !info.Known || uint64(tid) > started {
			t.Fatalf("recovery winner %d was never started", tid)
		}
		if !info.CommitIssued {
			t.Fatalf("recovery winner %d never issued a COMMIT", tid)
		}
		if info.Killed {
			t.Fatalf("recovery winner %d was killed", tid)
		}
	}
	return rres
}

func TestRunRealWorkloadAndRecover(t *testing.T) {
	dir := t.TempDir()
	cfg := realTestConfig(dir, 400*sim.Millisecond)
	live, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Loop.Run(cfg.Workload.Runtime)
	live.Drain(0)
	st := live.Gen.Stats()
	if st.Committed == 0 {
		t.Fatal("real run committed no transactions")
	}
	if st.Killed > 0 {
		t.Fatalf("real run killed %d transactions; generations undersized for the test workload", st.Killed)
	}
	rs := live.Dev.RealStats()
	if rs.Batches == 0 {
		t.Fatal("real run shipped no fsync batches")
	}
	if err := live.Dev.Close(); err != nil {
		t.Fatal(err)
	}
	rres := checkRecovery(t, live, dir)
	if rres.Winners == 0 {
		t.Fatal("recovery found no winners after a committing run")
	}
}

// TestTornBlockRecovery crashes a real-file run mid-write and recovers it:
// the run is abandoned with writes synced to disk but never acknowledged,
// one of those unacknowledged slots is torn in place at an unaligned
// offset (its payload suffix scribbled, as a power failure tears a sector
// run), and the recovery pass must still reconstruct every acknowledged
// commit from what the file holds.
func TestTornBlockRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := realTestConfig(dir, 350*sim.Millisecond)
	// Batch rarely, so the crash reliably catches synced-but-unacked
	// writes: the final partial batch is sealed to disk by the abandon
	// path with its completions never delivered.
	cfg.Device.GroupDelay = 100 * sim.Millisecond
	live, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Loop.Run(cfg.Workload.Runtime)
	live.Dev.Seal()
	pending := live.Dev.PendingSlots()
	if err := live.Dev.Abandon(); err != nil {
		t.Fatal(err)
	}
	if len(pending) == 0 {
		t.Fatal("no unacknowledged writes at crash; the torn-block scenario needs at least one")
	}
	if len(live.Gen.Oracle()) == 0 {
		t.Fatal("no acknowledged commits before the crash; nothing for the oracle to check")
	}

	// Tear the last unacknowledged slot: keep the frame header, the block
	// header and one whole record, then scribble the rest of the payload —
	// a torn write cut at an unaligned offset inside the second record.
	slotBytes := cfg.Device.SlotBytes
	if slotBytes == 0 {
		slotBytes = SlotFor(cfg.LM.WithDefaults().BlockPayload, minRecSize(cfg.LM.WithDefaults(), cfg.Workload.Mix))
	}
	tearID := pending[len(pending)-1]
	off := int64(tearID-1) * int64(slotBytes)
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	slot := make([]byte, slotBytes)
	if _, err := f.ReadAt(slot, off); err != nil {
		t.Fatal(err)
	}
	_, payload, ok := parseFrame(slot)
	if !ok {
		t.Fatalf("pending slot %d has no frame on disk", tearID)
	}
	cut := 8 + 65 + 13 // block header + first record + part of the second
	if len(payload) <= cut {
		cut = len(payload) / 2
	}
	scribble := make([]byte, len(payload)-cut)
	for i := range scribble {
		scribble[i] = 0xFF
	}
	if _, err := f.WriteAt(scribble, off+frameHdrLen+int64(cut)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rres := checkRecovery(t, live, dir)
	if rres.TornBlocks == 0 {
		t.Fatal("recovery saw no torn block after the tear")
	}
	if rres.Winners == 0 {
		t.Fatal("recovery found no winners")
	}
}

// TestAllocGrowFailureSurfacesOnWrite pins the ENOSPC contract: when the
// file cannot be extended to cover a new slot, the error must surface on
// that slot's Write completion (asynchronously, like any other failure)
// instead of being swallowed, and a later successful extension must
// clear the condition.
func TestAllocGrowFailureSurfacesOnWrite(t *testing.T) {
	dir := t.TempDir()
	loop := realtime.New(1)
	dev, err := Open(loop, dir, Options{SlotBytes: 8192, Direct: DirectOff})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	realGrow := dev.grow
	full := errors.New("injected: no space left on device")
	dev.grow = func(int64) error { return full }

	id := dev.Alloc(0)
	var got error
	completed := false
	inWrite := true
	dev.Write(id, []byte("doomed"), func(err error) {
		if inWrite {
			t.Error("completion fired synchronously inside Write")
		}
		got, completed = err, true
	})
	inWrite = false
	for loop.Step() {
	}
	if !completed {
		t.Fatal("write against an ungrown slot never completed")
	}
	if got == nil || !errors.Is(got, full) {
		t.Fatalf("completion error = %v, want wrapped %v", got, full)
	}
	if st := dev.Stats(); st.Failed != 1 || st.Writes != 1 {
		t.Fatalf("Stats = %+v, want 1 write, 1 failed", st)
	}

	// Space comes back: the next Alloc extends the file, clears the
	// error, and writes succeed again.
	dev.grow = realGrow
	id2 := dev.Alloc(0)
	completed = false
	dev.Write(id2, []byte("fine"), func(err error) {
		if err != nil {
			t.Errorf("post-recovery write failed: %v", err)
		}
		completed = true
	})
	drainDevice(t, loop, dev)
	if !completed {
		t.Fatal("post-recovery write never completed")
	}
	if st := dev.Stats(); st.Failed != 1 || st.Writes != 2 {
		t.Fatalf("Stats after recovery = %+v, want 2 writes, 1 failed", st)
	}
}
