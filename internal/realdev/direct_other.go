//go:build !linux

package realdev

// oDirectFlag is zero where the platform has no O_DIRECT: DirectAuto falls
// back to buffered I/O and DirectOn fails at Open.
const oDirectFlag = 0

// allocAligned returns a zeroed n-byte buffer; without direct I/O there is
// no alignment requirement.
func allocAligned(n int, direct bool) []byte {
	return make([]byte, n)
}
