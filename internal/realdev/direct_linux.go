//go:build linux

package realdev

import (
	"syscall"
	"unsafe"
)

// oDirectFlag is OR-ed into the open flags when direct I/O is requested.
// Filesystems that cannot honor it (tmpfs) fail the open with EINVAL, which
// DirectAuto treats as the signal to fall back to buffered I/O.
const oDirectFlag = syscall.O_DIRECT

// allocAligned returns a zeroed n-byte buffer. Direct I/O requires the
// buffer start to be aligned to the logical block size; Go's allocator
// gives no such guarantee, so carve an aligned window out of an
// over-allocated slab.
func allocAligned(n int, direct bool) []byte {
	if !direct {
		return make([]byte, n)
	}
	slab := make([]byte, n+diskAlign)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(&slab[0])) & (diskAlign - 1)); rem != 0 {
		off = diskAlign - rem
	}
	return slab[off : off+n : off+n]
}
