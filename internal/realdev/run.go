package realdev

import (
	"ellog/internal/core"
	"ellog/internal/flushdisk"
	"ellog/internal/obs"
	"ellog/internal/obs/live"
	"ellog/internal/realtime"
	"ellog/internal/sim"
	"ellog/internal/statedb"
	"ellog/internal/trace"
	"ellog/internal/workload"
)

// RunConfig describes a real-backend run: the same logging-manager, flush
// and workload parameters a simulated run takes, bound to a log directory
// on a real filesystem instead of a simulated device.
type RunConfig struct {
	Seed     uint64
	Dir      string
	LM       core.Params
	Flush    core.FlushConfig
	Workload workload.Config
	// Device tunes the file device; a zero SlotBytes is computed with
	// SlotFor from the effective block payload and the smallest record the
	// workload can log.
	Device Options
	// SampleEvery, when positive, samples the cumulative committed-
	// transaction count at this cadence — the commit curve the sim-vs-real
	// comparison is shape-gated on.
	SampleEvery sim.Time
	// DrainGrace bounds the post-horizon wait for in-flight batches to
	// complete (default 2 s of wall time).
	DrainGrace sim.Time
	// Tracer, when non-nil, receives every manager trace event. The trace
	// clock is the loop's monotonic sim.Time (µs since start), so the
	// streams eltrace and the Perfetto exporter consume are shaped exactly
	// like simulated ones.
	Tracer trace.Sink
	// Metrics, when non-nil, arms the live registry: the device registers
	// its fsync/batch instruments and a poller copies the canonical schema
	// probes into it every MetricsEvery.
	Metrics *live.Registry
	// MetricsEvery is the probe poll cadence for Metrics (default 250 ms).
	MetricsEvery sim.Time
	// ProbeEvery, when positive, attaches the simulated-time probe sampler
	// to the loop at this cadence; Result.Probes then carries the same
	// downsampled ellog_* series an elsim -probes-out run produces.
	ProbeEvery sim.Time
	// OnLive, when non-nil, runs with the assembled components after Build
	// and before the loop is driven — the hook elreal uses to start the
	// metrics server and watch ticker with access to the loop clock.
	OnLive func(*Live)
}

// CurvePoint is one sample of the cumulative commit count.
type CurvePoint struct {
	At        sim.Time `json:"at_us"`
	Committed uint64   `json:"committed"`
}

// Result summarizes a real-backend run: the simulated backend's own stats
// shapes plus the measured I/O-path statistics only a real device has.
type Result struct {
	LM       core.Stats
	Workload workload.Stats
	Real     RealStats
	Curve    []CurvePoint
	// Probes holds the sampled ellog_* series when RunConfig.ProbeEvery
	// was set — name-compatible with elsim probe output.
	Probes []obs.Series
}

// Insufficient mirrors harness.Result: the disk budget failed to sustain
// the workload.
func (r Result) Insufficient() bool {
	return r.LM.Insufficient() || r.Workload.Killed > 0
}

// Live exposes the assembled components of a real-backend run, for callers
// that crash it mid-flight (torn-block recovery tests) or inspect state.
type Live struct {
	Loop  *realtime.Loop
	Dev   *Device
	Flush *flushdisk.Array
	DB    *statedb.DB
	LM    *core.Manager
	Gen   *workload.Generator
	// Sampler is the probe sampler when ProbeEvery armed one.
	Sampler *obs.Sampler
	// Poller feeds the live registry when Metrics armed it; ticks run on
	// the loop goroutine until the workload horizon.
	Poller *live.Poller
}

// minRecSize returns the smallest logical record size the configuration
// can log — the denominator of the worst-case records-per-block bound that
// sizes slots.
func minRecSize(p core.Params, mix workload.Mix) int {
	m := p.TxRecSize
	for _, t := range mix {
		if t.RecordSize < m {
			m = t.RecordSize
		}
	}
	if m <= 0 {
		m = 1
	}
	return m
}

// Build assembles a real-backend run, mirroring core.NewSetup plus the
// workload generator: a wall-clock loop in place of the simulation engine,
// a file device in place of the simulated one, and the identical manager,
// flush-array and generator code in between. The generator is started; the
// caller drives the loop.
func Build(cfg RunConfig) (*Live, error) {
	p := cfg.LM.WithDefaults()
	opt := cfg.Device
	if opt.SlotBytes == 0 {
		opt.SlotBytes = SlotFor(p.BlockPayload, minRecSize(p, cfg.Workload.Mix))
	}
	loop := realtime.New(cfg.Seed)
	dev, err := Open(loop, cfg.Dir, opt)
	if err != nil {
		return nil, err
	}
	db := statedb.New()
	var m *core.Manager
	flush := flushdisk.New(loop, cfg.Flush.Drives, cfg.Flush.Transfer, cfg.Flush.NumObjects, func(req flushdisk.Request) {
		m.Flushed(req)
	})
	m, err = core.New(loop, p, dev, flush, db)
	if err != nil {
		dev.Abandon()
		return nil, err
	}
	gen, err := workload.New(loop, m, cfg.Workload)
	if err != nil {
		dev.Abandon()
		return nil, err
	}
	if cfg.Tracer != nil {
		m.SetTracer(cfg.Tracer)
	}
	l := &Live{Loop: loop, Dev: dev, Flush: flush, DB: db, LM: m, Gen: gen}
	if cfg.Metrics != nil {
		dev.SetMetrics(cfg.Metrics)
		l.Poller = live.NewPoller(cfg.Metrics,
			obs.StandardProbes(obs.ProbeTargets{LM: m, Dev: dev, Flush: flush}))
		up := cfg.Metrics.Gauge(obs.MetricUptimeSeconds, "")
		every := cfg.MetricsEvery
		if every <= 0 {
			every = 250 * sim.Millisecond
		}
		var tick func()
		tick = func() {
			l.Poller.Collect()
			up.Set(loop.Now().Seconds())
			if loop.Now() < cfg.Workload.Runtime {
				loop.After(every, tick)
			}
		}
		loop.After(every, tick)
	}
	if cfg.ProbeEvery > 0 {
		l.Sampler = obs.NewSampler(loop, cfg.ProbeEvery, 0)
		obs.RegisterProbes(l.Sampler,
			obs.StandardProbes(obs.ProbeTargets{LM: m, Dev: dev, Flush: flush}))
		l.Sampler.Start()
	}
	gen.Start()
	return l, nil
}

// Run executes the configuration against the real backend: drive the loop
// to the workload horizon in wall time, seal and drain the device, and
// close it cleanly.
func Run(cfg RunConfig) (Result, error) {
	live, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	if cfg.OnLive != nil {
		cfg.OnLive(live)
	}
	var curve []CurvePoint
	if cfg.SampleEvery > 0 {
		var sample func()
		sample = func() {
			curve = append(curve, CurvePoint{
				At:        live.Loop.Now(),
				Committed: live.Gen.Stats().Committed,
			})
			if live.Loop.Now() < cfg.Workload.Runtime {
				live.Loop.After(cfg.SampleEvery, sample)
			}
		}
		live.Loop.After(cfg.SampleEvery, sample)
	}
	live.Loop.Run(cfg.Workload.Runtime)
	live.Drain(cfg.DrainGrace)
	if live.Poller != nil {
		// One final collection so the registry's last reading covers the
		// drained end state, not the last cadence tick.
		live.Poller.Collect()
	}
	res := Result{
		LM:       live.LM.Stats(),
		Workload: live.Gen.Stats(),
		Real:     live.Dev.RealStats(),
		Curve:    curve,
	}
	if live.Sampler != nil {
		res.Probes = live.Sampler.Series()
	}
	if err := live.Dev.Close(); err != nil {
		return res, err
	}
	return res, nil
}

// Drain seals the device's pending batch and runs the loop until every
// dispatched batch has completed or grace (default 2 s) expires.
func (l *Live) Drain(grace sim.Time) {
	if grace <= 0 {
		grace = 2 * sim.Second
	}
	l.Dev.Seal()
	deadline := l.Loop.Now() + grace
	for l.Dev.InFlight() > 0 && l.Loop.Now() < deadline {
		l.Loop.Run(l.Loop.Now() + sim.Millisecond)
	}
}
