package realdev

import (
	"ellog/internal/core"
	"ellog/internal/flushdisk"
	"ellog/internal/realtime"
	"ellog/internal/sim"
	"ellog/internal/statedb"
	"ellog/internal/workload"
)

// RunConfig describes a real-backend run: the same logging-manager, flush
// and workload parameters a simulated run takes, bound to a log directory
// on a real filesystem instead of a simulated device.
type RunConfig struct {
	Seed     uint64
	Dir      string
	LM       core.Params
	Flush    core.FlushConfig
	Workload workload.Config
	// Device tunes the file device; a zero SlotBytes is computed with
	// SlotFor from the effective block payload and the smallest record the
	// workload can log.
	Device Options
	// SampleEvery, when positive, samples the cumulative committed-
	// transaction count at this cadence — the commit curve the sim-vs-real
	// comparison is shape-gated on.
	SampleEvery sim.Time
	// DrainGrace bounds the post-horizon wait for in-flight batches to
	// complete (default 2 s of wall time).
	DrainGrace sim.Time
}

// CurvePoint is one sample of the cumulative commit count.
type CurvePoint struct {
	At        sim.Time `json:"at_us"`
	Committed uint64   `json:"committed"`
}

// Result summarizes a real-backend run: the simulated backend's own stats
// shapes plus the measured I/O-path statistics only a real device has.
type Result struct {
	LM       core.Stats
	Workload workload.Stats
	Real     RealStats
	Curve    []CurvePoint
}

// Insufficient mirrors harness.Result: the disk budget failed to sustain
// the workload.
func (r Result) Insufficient() bool {
	return r.LM.Insufficient() || r.Workload.Killed > 0
}

// Live exposes the assembled components of a real-backend run, for callers
// that crash it mid-flight (torn-block recovery tests) or inspect state.
type Live struct {
	Loop  *realtime.Loop
	Dev   *Device
	Flush *flushdisk.Array
	DB    *statedb.DB
	LM    *core.Manager
	Gen   *workload.Generator
}

// minRecSize returns the smallest logical record size the configuration
// can log — the denominator of the worst-case records-per-block bound that
// sizes slots.
func minRecSize(p core.Params, mix workload.Mix) int {
	m := p.TxRecSize
	for _, t := range mix {
		if t.RecordSize < m {
			m = t.RecordSize
		}
	}
	if m <= 0 {
		m = 1
	}
	return m
}

// Build assembles a real-backend run, mirroring core.NewSetup plus the
// workload generator: a wall-clock loop in place of the simulation engine,
// a file device in place of the simulated one, and the identical manager,
// flush-array and generator code in between. The generator is started; the
// caller drives the loop.
func Build(cfg RunConfig) (*Live, error) {
	p := cfg.LM.WithDefaults()
	opt := cfg.Device
	if opt.SlotBytes == 0 {
		opt.SlotBytes = SlotFor(p.BlockPayload, minRecSize(p, cfg.Workload.Mix))
	}
	loop := realtime.New(cfg.Seed)
	dev, err := Open(loop, cfg.Dir, opt)
	if err != nil {
		return nil, err
	}
	db := statedb.New()
	var m *core.Manager
	flush := flushdisk.New(loop, cfg.Flush.Drives, cfg.Flush.Transfer, cfg.Flush.NumObjects, func(req flushdisk.Request) {
		m.Flushed(req)
	})
	m, err = core.New(loop, p, dev, flush, db)
	if err != nil {
		dev.Abandon()
		return nil, err
	}
	gen, err := workload.New(loop, m, cfg.Workload)
	if err != nil {
		dev.Abandon()
		return nil, err
	}
	gen.Start()
	return &Live{Loop: loop, Dev: dev, Flush: flush, DB: db, LM: m, Gen: gen}, nil
}

// Run executes the configuration against the real backend: drive the loop
// to the workload horizon in wall time, seal and drain the device, and
// close it cleanly.
func Run(cfg RunConfig) (Result, error) {
	live, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	var curve []CurvePoint
	if cfg.SampleEvery > 0 {
		var sample func()
		sample = func() {
			curve = append(curve, CurvePoint{
				At:        live.Loop.Now(),
				Committed: live.Gen.Stats().Committed,
			})
			if live.Loop.Now() < cfg.Workload.Runtime {
				live.Loop.After(cfg.SampleEvery, sample)
			}
		}
		live.Loop.After(cfg.SampleEvery, sample)
	}
	live.Loop.Run(cfg.Workload.Runtime)
	live.Drain(cfg.DrainGrace)
	res := Result{
		LM:       live.LM.Stats(),
		Workload: live.Gen.Stats(),
		Real:     live.Dev.RealStats(),
		Curve:    curve,
	}
	if err := live.Dev.Close(); err != nil {
		return res, err
	}
	return res, nil
}

// Drain seals the device's pending batch and runs the loop until every
// dispatched batch has completed or grace (default 2 s) expires.
func (l *Live) Drain(grace sim.Time) {
	if grace <= 0 {
		grace = 2 * sim.Second
	}
	l.Dev.Seal()
	deadline := l.Loop.Now() + grace
	for l.Dev.InFlight() > 0 && l.Loop.Now() < deadline {
		l.Loop.Run(l.Loop.Now() + sim.Millisecond)
	}
}
