package realdev

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ellog/internal/blockdev"
	"ellog/internal/recovery"
)

const (
	logName  = "log.dat"
	metaName = "meta.json"
)

type metaFile struct {
	Version   int `json:"version"`
	SlotBytes int `json:"slot_bytes"`
}

// FileImage is the crash image of a real-file log: every slot whose frame
// header validates, in allocation order. It satisfies recovery.Image, so
// the same single-pass scan/salvage recovery that runs against a simulated
// device runs against actual on-disk state.
type FileImage struct {
	slotBytes int
	fileBytes int64
	skipped   int
	blocks    []imageBlock
}

type imageBlock struct {
	id   blockdev.BlockID
	gen  int
	data []byte
}

// ReadImage loads a log directory written by Open into memory — the
// paper's single disk pass; ephemeral logs are small by construction. A
// final slot cut short by a crash (file ends mid-slot) is kept with its
// payload clamped to the bytes present; slots that were allocated but
// never written, or whose frame header fails its checksum, are skipped,
// like simulated blocks with no durable contents.
func ReadImage(dir string) (*FileImage, error) {
	metaRaw, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		return nil, fmt.Errorf("realdev: reading log metadata: %w", err)
	}
	var meta metaFile
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, fmt.Errorf("realdev: parsing %s: %w", metaName, err)
	}
	if meta.Version != 1 {
		return nil, fmt.Errorf("realdev: unsupported log version %d", meta.Version)
	}
	if meta.SlotBytes <= 0 {
		return nil, fmt.Errorf("realdev: invalid slot size %d in %s", meta.SlotBytes, metaName)
	}
	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		return nil, fmt.Errorf("realdev: reading log file: %w", err)
	}
	im := &FileImage{slotBytes: meta.SlotBytes, fileBytes: int64(len(raw))}
	for off := 0; off < len(raw); off += meta.SlotBytes {
		end := off + meta.SlotBytes
		if end > len(raw) {
			end = len(raw)
		}
		gen, payload, ok := parseFrame(raw[off:end])
		if !ok {
			im.skipped++
			continue
		}
		im.blocks = append(im.blocks, imageBlock{
			id:   blockdev.BlockID(off/meta.SlotBytes) + 1,
			gen:  gen,
			data: payload,
		})
	}
	return im, nil
}

// RangeDurable visits every readable block in allocation order, the
// contract recovery.Recover scans by.
func (im *FileImage) RangeDurable(fn func(id blockdev.BlockID, gen int, data []byte) bool) {
	for _, b := range im.blocks {
		if !fn(b.id, b.gen, b.data) {
			return
		}
	}
}

// NumBlocks reports how many slots held a readable frame.
func (im *FileImage) NumBlocks() int { return len(im.blocks) }

// Skipped reports how many slots were unreadable: never written, torn
// inside the frame header, or corrupt.
func (im *FileImage) Skipped() int { return im.skipped }

// FileBytes reports the log file's size at read time.
func (im *FileImage) FileBytes() int64 { return im.fileBytes }

// SlotBytes reports the slot size recorded in the log's metadata.
func (im *FileImage) SlotBytes() int { return im.slotBytes }

var _ recovery.Image = (*FileImage)(nil)
