package core

import (
	"testing"

	"ellog/internal/blockdev"
	"ellog/internal/logrec"
	"ellog/internal/sim"
	"ellog/internal/trace"
)

// scriptInjector fails the first Fails block writes it sees, then lets
// everything through clean.
type scriptInjector struct {
	Fails int
	seen  int
}

func (s *scriptInjector) BlockWriteFault(gen, size int) blockdev.WriteFault {
	s.seen++
	if s.seen <= s.Fails {
		return blockdev.WriteFault{Fail: true}
	}
	return blockdev.WriteFault{}
}

func faultyParams() Params {
	return Params{Mode: ModeEphemeral, GenSizes: []int{8}, Recirculate: true}.WithDefaults()
}

// A transient write failure within the retry budget delays the commit but
// does not lose it, and the failed attempt re-counts in the bandwidth stats.
func TestWriteRetryRecovers(t *testing.T) {
	s := testSetup(t, faultyParams())
	m := s.LM
	m.EnableFaultRetries(3, sim.Millisecond)
	ring := trace.NewRing(256)
	m.SetTracer(ring)
	s.Dev.SetInjector(&scriptInjector{Fails: 1})

	committed := false
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Commit(1, func() { committed = true })
	m.Quiesce()
	s.Eng.Run(sim.Second)

	if !committed {
		t.Fatal("commit lost across a retried write")
	}
	st := m.Stats()
	if st.WriteErrors != 1 || st.WriteRetries != 1 || st.AbandonedWrites != 0 {
		t.Fatalf("errors=%d retries=%d abandoned=%d, want 1/1/0",
			st.WriteErrors, st.WriteRetries, st.AbandonedWrites)
	}
	if ring.Count(trace.EvRetry) != 1 {
		t.Fatalf("EvRetry count = %d, want 1", ring.Count(trace.EvRetry))
	}
	// The failed attempt still cost a disk write: attempts = durable + failed.
	dst := s.Dev.Stats()
	if dst.Failed != 1 || dst.Writes != ring.Count(trace.EvDurable)+1 {
		t.Fatalf("device writes=%d failed=%d durable=%d: failed attempt not re-counted",
			dst.Writes, dst.Failed, ring.Count(trace.EvDurable))
	}
	assertInv(t, m)
}

// Exhausting the retry budget abandons the block and kills the committing
// transaction aboard — the same contract as the kill-on-overflow path: an
// unacknowledged commit may die, an acknowledged one may not.
func TestExhaustedRetriesKillTransaction(t *testing.T) {
	s := testSetup(t, faultyParams())
	m := s.LM
	m.EnableFaultRetries(2, sim.Millisecond)
	var killed []logrec.TxID
	m.SetKillHandler(func(tid logrec.TxID) { killed = append(killed, tid) })
	s.Dev.SetInjector(&scriptInjector{Fails: 100}) // every attempt fails

	committed := false
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Commit(1, func() { committed = true })
	m.Quiesce()
	s.Eng.Run(sim.Second)

	if committed {
		t.Fatal("commit acknowledged although its block never reached disk")
	}
	st := m.Stats()
	if st.Killed != 1 || len(killed) != 1 || killed[0] != 1 {
		t.Fatalf("killed=%d handler=%v, want tx 1 killed once", st.Killed, killed)
	}
	if st.WriteErrors != 3 || st.WriteRetries != 2 || st.AbandonedWrites != 1 {
		t.Fatalf("errors=%d retries=%d abandoned=%d, want 3/2/1",
			st.WriteErrors, st.WriteRetries, st.AbandonedWrites)
	}
	assertInv(t, m)
}

// A committed transaction whose already-acknowledged updates ride in an
// abandoned block (via forwarding) is not killed: its updates are force
// flushed so nothing depends on the dead block.
func TestAbandonForceFlushesCommitted(t *testing.T) {
	p := Params{Mode: ModeEphemeral, GenSizes: []int{4, 8}, Recirculate: true}.WithDefaults()
	s := testSetup(t, p)
	m := s.LM
	m.EnableFaultRetries(1, sim.Millisecond)

	// Commit a batch of transactions cleanly, then make every later block
	// write fail so forwarding into generation 1 abandons its blocks.
	// Abandons kill active transactions, so each commit is guarded: the
	// space-making cascade may kill the very transaction mid-script.
	killed := make(map[logrec.TxID]bool)
	m.SetKillHandler(func(tid logrec.TxID) { killed[tid] = true })
	acked := 0
	step := sim.Time(0)
	for i := 1; i <= 40; i++ {
		tid := logrec.TxID(i)
		s.Eng.At(step, func() {
			m.Begin(tid)
			if killed[tid] {
				return
			}
			m.WriteData(tid, logrec.OID(100+i%7), 400)
			if killed[tid] {
				return
			}
			m.Commit(tid, func() { acked++ })
		})
		step += 2 * sim.Millisecond
	}
	// Fail everything from 30 ms on: by then the earliest commits are
	// durable and acknowledged, and the workload keeps running for another
	// 50 ms, so head advancement forwards records into failing writes.
	s.Eng.At(30*sim.Millisecond, func() {
		s.Dev.SetInjector(&scriptInjector{Fails: 1 << 30})
	})
	s.Eng.Run(5 * sim.Second)

	st := m.Stats()
	if st.AbandonedWrites == 0 {
		t.Skip("no write was abandoned; scenario did not trigger forwarding under failure")
	}
	// No acknowledged commit may be lost: every commit acknowledged before
	// the failures is either flushed or still tracked — invariants verify
	// the bookkeeping; here we check no committed tx was killed.
	if st.Killed > st.Begins-st.Commits {
		t.Fatalf("killed=%d exceeds unacknowledged transactions %d",
			st.Killed, st.Begins-st.Commits)
	}
	if st.Flush.Forced == 0 {
		t.Fatal("abandoned blocks carried committed updates but nothing was force flushed")
	}
	assertInv(t, m)
}

// With retries enabled but no injector attached, the manager's observable
// behaviour is identical to the fault-free model: same stats, same trace.
func TestFaultsArmedButIdleIsIdentical(t *testing.T) {
	run := func(arm bool) (Stats, uint64) {
		s := testSetup(t, faultyParams())
		m := s.LM
		if arm {
			m.EnableFaultRetries(3, sim.Millisecond)
		}
		ring := trace.NewRing(64)
		m.SetTracer(ring)
		step := sim.Time(0)
		for i := 1; i <= 30; i++ {
			tid := logrec.TxID(i)
			s.Eng.At(step, func() {
				m.Begin(tid)
				m.WriteData(tid, logrec.OID(i%11), 300)
				m.Commit(tid, nil)
			})
			step += 3 * sim.Millisecond
		}
		s.Eng.Run(2 * sim.Second)
		return m.Stats(), ring.Total()
	}
	a, at := run(false)
	b, bt := run(true)
	if at != bt {
		t.Fatalf("trace totals differ: %d vs %d", at, bt)
	}
	if a.Commits != b.Commits || a.TotalWrites != b.TotalWrites ||
		a.Garbage != b.Garbage || a.Flush.Flushes != b.Flush.Flushes {
		t.Fatalf("armed-but-idle run diverged:\n%v\nvs\n%v", a, b)
	}
}
