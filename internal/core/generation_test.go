package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"ellog/internal/blockdev"
	"ellog/internal/sim"
)

func newTestGen(t *testing.T, size int) (*generation, *blockdev.Device) {
	t.Helper()
	eng := sim.NewEngine(1, 2)
	dev := blockdev.New(eng, sim.Millisecond)
	return newGeneration(0, size, dev, 4), dev
}

// claimN claims n slots, marking them durable immediately (the tests here
// exercise ring arithmetic, not the write path).
func claimN(g *generation, n int) []*slot {
	var out []*slot
	for i := 0; i < n; i++ {
		s := g.claimSlot()
		s.state = slotDurable
		out = append(out, s)
	}
	return out
}

func TestRingClaimFree(t *testing.T) {
	g, _ := newTestGen(t, 6)
	if g.freeSlots() != 6 || g.headSlot() != nil {
		t.Fatal("fresh generation not empty")
	}
	claimN(g, 4)
	if g.used != 4 || g.freeSlots() != 2 {
		t.Fatalf("used=%d free=%d", g.used, g.freeSlots())
	}
	g.freeHeadSlot()
	g.freeHeadSlot()
	if g.used != 2 || g.head != 2 {
		t.Fatalf("after frees: used=%d head=%d", g.used, g.head)
	}
	// Wrap: claim past the end of the ring.
	claimN(g, 3)
	if g.used != 5 || g.tail != 1 {
		t.Fatalf("after wrap: used=%d tail=%d", g.used, g.tail)
	}
}

func TestClaimOccupiedPanics(t *testing.T) {
	g, _ := newTestGen(t, 4)
	claimN(g, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("claim of occupied slot did not panic")
		}
	}()
	g.claimSlot()
}

func TestFreeNonDurablePanics(t *testing.T) {
	g, _ := newTestGen(t, 4)
	g.claimSlot() // stays slotFree->claimed without durable state
	defer func() {
		if recover() == nil {
			t.Fatal("freeing non-durable head did not panic")
		}
	}()
	g.freeHeadSlot()
}

func TestGrowPreservesOccupiedRegion(t *testing.T) {
	g, dev := newTestGen(t, 5)
	claimed := claimN(g, 3)
	g.freeHeadSlot() // head=1, used=2 (slots 1,2 occupied)
	g.grow(dev, 2)
	if g.size() != 7 {
		t.Fatalf("size=%d after grow", g.size())
	}
	// The occupied region must still be exactly the claimed slots 1,2.
	if g.headSlot() != claimed[1] {
		t.Fatal("grow disturbed the head slot")
	}
	occupied := 0
	for _, s := range g.ring {
		if s.state != slotFree {
			occupied++
		}
	}
	if occupied != g.used {
		t.Fatalf("occupied=%d used=%d after grow", occupied, g.used)
	}
	// New claims use the inserted free slots.
	s := g.claimSlot()
	if s == claimed[0] {
		t.Fatal("grow did not insert at the claim point")
	}
}

func TestGrowWhenWrapped(t *testing.T) {
	g, dev := newTestGen(t, 4)
	claimN(g, 4)
	g.freeHeadSlot()
	g.freeHeadSlot() // head=2, tail=0: occupied region wraps [2,3]
	claimN(g, 1)     // tail=1
	hs := g.headSlot()
	g.grow(dev, 3)
	if g.headSlot() != hs {
		t.Fatal("grow with wrapped region moved the head")
	}
	if g.size() != 7 || g.freeSlots() != 4 {
		t.Fatalf("size=%d free=%d", g.size(), g.freeSlots())
	}
}

func TestShrinkRemovesFreeSlots(t *testing.T) {
	g, _ := newTestGen(t, 10)
	claimN(g, 3)
	// free=7, k=2: shrinkable = 7-2-1 = 4.
	if got := g.shrinkable(2); got != 4 {
		t.Fatalf("shrinkable=%d, want 4", got)
	}
	if got := g.shrink(10, 2); got != 4 {
		t.Fatalf("shrink removed %d, want 4", got)
	}
	if g.size() != 6 || g.used != 3 {
		t.Fatalf("size=%d used=%d after shrink", g.size(), g.used)
	}
	// Ring still consistent: can keep claiming and freeing.
	s := g.headSlot()
	if s == nil || s.state != slotDurable {
		t.Fatal("head lost after shrink")
	}
	g.freeHeadSlot()
	claimN(g, 2)
}

func TestShrinkRespectsRefugees(t *testing.T) {
	g, _ := newTestGen(t, 8)
	claimN(g, 2)
	// Mark the slot just before the head (the shrink target) as holding
	// refugees.
	idx := g.head - 1
	if idx < 0 {
		idx += len(g.ring)
	}
	g.ring[idx].refugees = 1
	if got := g.shrink(2, 2); got != 0 {
		t.Fatalf("shrink removed %d slots protected by refugees", got)
	}
}

// TestRingRandomOps exercises claim/free/grow/shrink sequences and checks
// ring invariants after every operation.
func TestRingRandomOps(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		eng := sim.NewEngine(seed, 2)
		dev := blockdev.New(eng, sim.Millisecond)
		g := newGeneration(0, 4+rng.IntN(8), dev, 4)
		const k = 2
		for op := 0; op < 300; op++ {
			switch rng.IntN(10) {
			case 0, 1, 2, 3:
				if g.freeSlots() > k {
					s := g.claimSlot()
					s.state = slotDurable
				}
			case 4, 5, 6:
				if g.used > 0 && g.headSlot().state == slotDurable {
					g.freeHeadSlot()
				}
			case 7:
				g.grow(dev, 1+rng.IntN(2))
			case 8, 9:
				g.shrink(1+rng.IntN(2), k)
			}
			// Invariants: occupancy count matches states; occupied region
			// is exactly [head, tail) circularly.
			occupied := 0
			for _, s := range g.ring {
				if s.state != slotFree {
					occupied++
				}
			}
			if occupied != g.used {
				return false
			}
			if g.used > 0 {
				idx := g.head
				for i := 0; i < g.used; i++ {
					if g.ring[idx].state == slotFree {
						return false
					}
					idx = (idx + 1) % len(g.ring)
				}
				if idx != g.tail {
					return false
				}
			}
			if g.head < 0 || g.head >= len(g.ring) || g.tail < 0 || g.tail >= len(g.ring) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveSpan(t *testing.T) {
	g, _ := newTestGen(t, 8)
	if g.liveSpan() != 0 {
		t.Fatal("empty generation has nonzero span")
	}
	slots := claimN(g, 5)
	// All garbage (no cells): span counts only non-durable blocks — none.
	if got := g.liveSpan(); got != 0 {
		t.Fatalf("all-garbage span = %d, want 0", got)
	}
	// A live cell in the third block anchors the span from there to tail.
	c := mkCell(1)
	c.slot = slots[2]
	g.list.pushNewest(c)
	if got := g.liveSpan(); got != 3 {
		t.Fatalf("span = %d, want 3 (blocks 2,3,4)", got)
	}
	// A cell pending in a slotless buffer keeps every durable leading
	// block reclaimable.
	g.list.remove(c)
	c2 := mkCell(2)
	c2.slot = nil
	g.list.pushNewest(c2)
	if got := g.liveSpan(); got != 0 {
		t.Fatalf("span with only pending cell = %d, want 0", got)
	}
}

func TestAgeQuantiles(t *testing.T) {
	g, _ := newTestGen(t, 4)
	if q, n := g.ageQuantile(0.9); q != 0 || n != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 0; i < 90; i++ {
		g.noteAge(100 * sim.Millisecond) // bucket 0
	}
	for i := 0; i < 10; i++ {
		g.noteAge(5 * sim.Second)
	}
	q90, n := g.ageQuantile(0.90)
	if n != 100 {
		t.Fatalf("samples = %d", n)
	}
	if q90 != ageBucket {
		t.Fatalf("q90 = %v, want one bucket (%v)", q90, ageBucket)
	}
	q99, _ := g.ageQuantile(0.99)
	if q99 < 5*sim.Second {
		t.Fatalf("q99 = %v, want >= 5s", q99)
	}
	// Overflow bucket.
	g.noteAge(100 * sim.Second)
	if q, _ := g.ageQuantile(1.0); q != sim.Time(ageBuckets)*ageBucket && q != sim.Time(ageBuckets-1+1)*ageBucket {
		t.Fatalf("overflow quantile = %v", q)
	}
}
