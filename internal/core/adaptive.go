package core

import (
	"fmt"

	"ellog/internal/sim"
	"ellog/internal/trace"
)

// This file provides the control surface for the adaptive-sizing extension
// (internal/adaptive): per-epoch pressure observations and online resizing
// of generations. The paper wishes for "an adaptable version of EL that
// dynamically chooses the number and sizes of generations itself"
// (section 6); these hooks let a controller do exactly that while the
// simulation runs.

// EpochGenStats is one generation's pressure record since the last call to
// EpochStats.
type EpochGenStats struct {
	Size      int // current capacity in blocks
	PeakUsed  int // highest occupancy during the epoch
	PeakSpan  int // highest truly-live extent (occupancy minus leading garbage)
	Kills     uint64
	Emergency uint64
	In        uint64 // records that entered the generation
	Out       uint64 // records forwarded out to the next generation
	Claims    uint64 // blocks claimed (fill activity)
	// AgeQ90 and AgeQ99 are high quantiles of the residence time at which
	// records became garbage in this generation; AgeSamples counts the
	// deaths observed. Residence x fill rate estimates the space the
	// generation truly needs.
	AgeQ90     sim.Time
	AgeQ99     sim.Time
	AgeSamples uint64
}

// EpochStats returns per-generation pressure since the previous call and
// resets the epoch counters. The adaptive controller polls it once per
// epoch.
func (m *Manager) EpochStats() []EpochGenStats {
	out := make([]EpochGenStats, len(m.gens))
	for i, g := range m.gens {
		g.noteSpan()
		q90, n := g.ageQuantile(0.90)
		q99, _ := g.ageQuantile(0.99)
		out[i] = EpochGenStats{
			Size:       g.size(),
			PeakUsed:   g.epochPeakUsed,
			PeakSpan:   g.epochPeakSpan,
			Kills:      g.epochKills,
			Emergency:  g.epochEmerg,
			In:         g.epochIn,
			Out:        g.epochOut,
			Claims:     g.epochClaims,
			AgeQ90:     q90,
			AgeQ99:     q99,
			AgeSamples: n,
		}
		g.epochPeakUsed = g.used
		g.epochPeakSpan = g.liveSpan()
		g.epochKills = 0
		g.epochEmerg = 0
		g.epochIn = 0
		g.epochOut = 0
		g.epochClaims = 0
		g.epochAges = [ageBuckets]uint32{}
	}
	return out
}

// GrowGeneration adds n free blocks to generation i, effective
// immediately. Unlike the emergency path this is a deliberate resize and
// does not mark the run as insufficient.
func (m *Manager) GrowGeneration(i, n int) {
	if i < 0 || i >= len(m.gens) || n <= 0 {
		panic(fmt.Sprintf("core: GrowGeneration(%d, %d) out of range", i, n))
	}
	m.gens[i].grow(m.dev, n)
	m.emit(trace.Event{Kind: trace.EvResize, Gen: i, N: n})
}

// ShrinkGeneration removes up to n free blocks from generation i, never
// cutting into the threshold gap, occupied blocks, or blocks whose stale
// contents still protect unwritten buffers. It returns how many blocks
// were actually removed.
func (m *Manager) ShrinkGeneration(i, n int) int {
	if i < 0 || i >= len(m.gens) || n <= 0 {
		panic(fmt.Sprintf("core: ShrinkGeneration(%d, %d) out of range", i, n))
	}
	got := m.gens[i].shrink(n, m.p.ThresholdK)
	if got > 0 {
		m.emit(trace.Event{Kind: trace.EvResize, Gen: i, N: -got})
	}
	return got
}

// GenSize reports generation i's current capacity in blocks.
func (m *Manager) GenSize(i int) int { return m.gens[i].size() }

// NumGenerations reports how many generations the log chain has.
func (m *Manager) NumGenerations() int { return len(m.gens) }

// MinBlocksAdaptive is the smallest size the adaptive controller will
// shrink a generation to: the threshold gap, one filling block and slack.
const MinBlocksAdaptive = 5
