package core

import (
	"fmt"

	"ellog/internal/flushdisk"
	"ellog/internal/logrec"
	"ellog/internal/trace"
)

// advanceHead frees the block at generation g's head, dealing with every
// log record in it: garbage records are passed over, non-garbage records
// are forwarded to the next generation or — in the last generation —
// recirculated (or, with recirculation off, resolved by killing or force
// flushing). It reports whether the head moved; false means the head slot
// is not yet durable (the tail has caught up with in-flight writes) or the
// generation is empty, and the caller must make space some other way.
func (m *Manager) advanceHead(g *generation) bool {
	s := g.headSlot()
	if s == nil || s.state != slotDurable {
		return false
	}
	cells := g.list.oldestInSlot(s, m.takeCells())
	defer m.putCells(cells)
	if len(cells) == 0 {
		// Every record in the head block is garbage: conceptually thrown
		// in the garbage pail, physically just passed over.
		g.freeHeadSlot()
		m.usedGauges[g.idx].Set(m.now(), float64(g.used))
		m.emit(trace.Event{Kind: trace.EvDiscard, Gen: g.idx})
		return true
	}
	if g.idx < m.lastGen() {
		m.forwardBatch(g, s, cells)
		return true
	}
	if m.p.Mode == ModeFirewall || !m.p.Recirculate {
		return m.clearLastHead(g)
	}
	m.recirculateHead(g, s, cells)
	return true
}

// forwardBatch moves the head block's non-garbage records to the next
// generation's tail and then "works backward from the head to gather
// enough other non-garbage log records to fill the buffer" destined for
// generation i+1, which is then written immediately (section 2.2).
func (m *Manager) forwardBatch(g *generation, s *slot, cells []*cell) {
	for _, c := range cells {
		g.list.remove(c)
	}
	g.freeHeadSlot()
	m.usedGauges[g.idx].Set(m.now(), float64(g.used))
	target := g.idx + 1
	for _, c := range cells {
		m.appendTail(target, c, s)
		m.forwardedRecs.Inc()
		g.epochOut++
	}
	// Top off the outgoing buffer from the blocks now at the head, freeing
	// any block drained completely.
	tg := m.gens[target]
	buf := m.takeCells()
	defer func() { m.putCells(buf) }()
	for m.tailFree(tg) > 0 && g.used > 0 {
		s2 := g.headSlot()
		if s2.state != slotDurable {
			break
		}
		cs := g.list.oldestInSlot(s2, buf)
		buf = cs
		moved := 0
		for _, c := range cs {
			if c.rec.Size > m.tailFree(tg) {
				break
			}
			g.list.remove(c)
			m.appendTail(target, c, s2)
			m.forwardedRecs.Inc()
			g.epochOut++
			moved++
		}
		if moved < len(cs) {
			break // buffer cannot take the block's next record
		}
		g.freeHeadSlot()
		m.usedGauges[g.idx].Set(m.now(), float64(g.used))
	}
	m.emit(trace.Event{Kind: trace.EvForward, Gen: g.idx, N: len(cells)})
	// Forwarded records must be immediately written to disk.
	m.sealTail(tg)
}

// recirculateHead drains the last generation's head block into the pending
// recirculation buffer and frees the block. The drained records' stale
// copies keep them durable until the buffer is written at the tail.
func (m *Manager) recirculateHead(g *generation, s *slot, cells []*cell) {
	for _, c := range cells {
		g.list.remove(c)
	}
	g.freeHeadSlot()
	m.usedGauges[g.idx].Set(m.now(), float64(g.used))
	for _, c := range cells {
		m.appendTail(g.idx, c, s)
		m.recircRecs.Inc()
	}
	m.emit(trace.Event{Kind: trace.EvRecirculate, Gen: g.idx, N: len(cells)})
}

// clearLastHead handles a non-garbage record reaching the head of the last
// generation with recirculation off: an active transaction is killed (the
// FW discipline and the paper's recirculation-off EL experiments), a
// committed-but-unflushed update is force flushed (random I/O), and a
// committed transaction's tx record is resolved by flushing its remaining
// updates. Records of committing (not yet durable) transactions cannot be
// resolved synchronously, in which case the head stays put and the caller
// falls back to other victims.
func (m *Manager) clearLastHead(g *generation) bool {
	s := g.headSlot()
	buf := m.takeCells()
	defer func() { m.putCells(buf) }()
	for {
		cs := g.list.oldestInSlot(s, buf)
		buf = cs
		if len(cs) == 0 {
			g.freeHeadSlot()
			m.usedGauges[g.idx].Set(m.now(), float64(g.used))
			return true
		}
		c := cs[0]
		switch {
		case c.rec.Kind == logrec.KindData && c.committed:
			m.forceFlushCell(c)
		case c.rec.Kind == logrec.KindData || c.rec.Kind == logrec.KindBegin:
			if c.tx.state != txActive {
				return false // committing; resolves within a block write
			}
			g.epochKills++
			m.dropTx(c.tx, true)
		case (c.rec.Kind == logrec.KindCommit || c.rec.Kind == logrec.KindDecide) && c.tx.state == txCommitted:
			// Tx record of a committed transaction with unflushed updates:
			// flush them all so the entry retires and the record becomes
			// garbage.
			m.forceFlushTx(c.tx)
			if c.inList {
				// A pinned DECIDE record (remote branches still in doubt)
				// survives the flush and cannot leave the log yet.
				return false
			}
		default:
			// Commit or prepare still in flight, or an in-doubt branch's
			// record: none can be resolved synchronously.
			return false
		}
	}
}

// killVictim sacrifices work to make space in generation g when its head
// cannot advance: the oldest active transaction with a record in g is
// killed ("System R's solution is to simply kill off excessively lengthy
// transactions"); failing that, the oldest committed-but-unflushed update
// is force flushed. It reports whether anything was freed.
func (m *Manager) killVictim(g *generation) bool {
	var victim *cell
	g.list.walkOldestFirst(func(c *cell) bool {
		switch {
		case c.tx.state == txActive:
			victim = c
			return false
		case c.rec.Kind == logrec.KindData && c.committed:
			victim = c
			return false
		case (c.rec.Kind == logrec.KindCommit || c.rec.Kind == logrec.KindDecide) && c.tx.state == txCommitted:
			// Only worth sacrificing if a flush can free something: a
			// pinned DECIDE with no unflushed updates stays until unpinned.
			if len(c.tx.oids) > 0 {
				victim = c
				return false
			}
		}
		return true
	})
	if victim == nil {
		return false
	}
	switch {
	case victim.tx.state == txActive:
		g.epochKills++
		m.dropTx(victim.tx, true)
	case victim.rec.Kind == logrec.KindData:
		m.forceFlushCell(victim)
	default:
		m.forceFlushTx(victim.tx)
	}
	return true
}

// forceFlushCell flushes one committed update out of band (random I/O).
// Under BroadNonGarbage the cell may be a superseded older version; only
// flushing the object's newest committed version clears the whole chain,
// so the force flush targets that.
func (m *Manager) forceFlushCell(c *cell) {
	if !c.committed || c.rec.Kind != logrec.KindData {
		panic(fmt.Sprintf("core: force flush of non-committed record %v", c.rec))
	}
	target := c
	if le, ok := m.lot.Get(uint64(c.rec.Obj)); ok && le.committed != nil && le.committed != c {
		target = le.committed
	}
	// ForceFlush synchronously invokes the manager's Flushed callback,
	// which disposes the cell (and any superseded chain behind it).
	m.emit(trace.Event{Kind: trace.EvForceFlush, Gen: target.gen, Obj: target.rec.Obj, LSN: target.rec.LSN})
	m.flush.ForceFlush(flushdisk.Request{Obj: target.rec.Obj, LSN: target.rec.LSN, Val: target.rec.Val, Tx: target.rec.Tx})
}

// forceFlushTx flushes every remaining update of a committed transaction,
// retiring its LTT entry.
func (m *Manager) forceFlushTx(e *lttEntry) {
	oids := m.sortedOids(e.oids)
	for _, oid := range oids {
		le, ok := m.lot.Get(uint64(oid))
		if !ok || le.committed == nil || le.committed.tx != e {
			// The version tracked for this oid is not e's; e's update was
			// superseded and its oid set is stale only transiently.
			delete(e.oids, oid)
			continue
		}
		m.forceFlushCell(le.committed)
	}
	m.releaseOids(oids)
	m.maybeRetire(e)
}
