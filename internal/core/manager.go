package core

import (
	"fmt"

	"ellog/internal/blockdev"
	"ellog/internal/container"
	"ellog/internal/flushdisk"
	"ellog/internal/logrec"
	"ellog/internal/metrics"
	"ellog/internal/sim"
	"ellog/internal/statedb"
	"ellog/internal/trace"
)

// Manager is the logging manager (LM): the DBMS component responsible for
// managing the log of database activity. One Manager instance implements
// either ephemeral logging or the firewall baseline, per its Params.
//
// The Manager is driven by the transaction stream (Begin, WriteData,
// Commit, Abort) and by its own simulated-time machinery: block writes
// completing, flush drives finishing, head pointers advancing to keep the
// threshold gap free.
type Manager struct {
	clk   sim.Clock
	p     Params
	dev   LogDevice
	flush *flushdisk.Array
	db    *statedb.DB

	gens []*generation
	lot  *container.Table[*lotEntry]
	ltt  *container.Table[*lttEntry]

	nextLSN logrec.LSN
	onKill  func(logrec.TxID)
	onMem   func() // nil-gated; multilog's combined-memory-gauge hook
	tracer  trace.Sink

	// Fault-retry policy (EnableFaultRetries). faulty gates every hot-path
	// divergence from the fault-free model: with it false the manager is
	// byte-identical to a build without the fault subsystem.
	faulty       bool
	maxRetries   int
	retryBackoff sim.Time

	// pendingReverts tracks stolen flushes that were in service when their
	// transaction died; the completion is rolled back on arrival.
	pendingReverts map[logrec.OID]pendingRevert

	// Hot-path scratch, reused call after call (the engine is
	// single-threaded, so reuse needs no locking — only care about
	// re-entrancy, which each helper below handles):
	encBuf     []byte       // block wire-encoding buffer (writeOut)
	oidScratch []logrec.OID // sortedOids snapshot; nil while one is in use
	cellBufs   [][]*cell    // pool of head-cell snapshots (advanceHead recurses)
	bufPool    []*buffer    // retired block buffers, reused LIFO

	// counters and gauges (see Stats)
	begins, commits, aborts, killedTxs  metrics.Counter
	appendedRecs, appendedBytes         metrics.Counter
	forwardedRecs, recircRecs, garbaged metrics.Counter
	emergencyBlocks, bufferStalls       metrics.Counter
	refugeeStalls                       metrics.Counter
	writeErrors, writeRetries           metrics.Counter
	abandonedWrites                     metrics.Counter
	lotGauge, lttGauge, memGauge        metrics.Gauge
	usedGauges                          []metrics.Gauge
	commitDelay                         metrics.Histogram
}

// New builds a Manager. The flush array's completion callback must be
// wired to the returned manager via its Flushed method; NewSetup does the
// whole assembly and is what most callers want. clk and dev decide the
// binding: a *sim.Engine and *blockdev.Device give the paper's simulation,
// a realtime.Loop and realdev.Device the real-file backend — the manager
// itself is identical code either way.
func New(clk sim.Clock, p Params, dev LogDevice, flush *flushdisk.Array, db *statedb.DB) (*Manager, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		clk:            clk,
		p:              p,
		dev:            dev,
		flush:          flush,
		db:             db,
		lot:            container.NewTable[*lotEntry](),
		ltt:            container.NewTable[*lttEntry](),
		pendingReverts: make(map[logrec.OID]pendingRevert),
	}
	for i, size := range p.GenSizes {
		m.gens = append(m.gens, newGeneration(i, size, dev, p.BuffersPerGen))
	}
	m.usedGauges = make([]metrics.Gauge, len(m.gens))
	m.touchMem()
	return m, nil
}

// Setup bundles the substrate a Manager runs on.
type Setup struct {
	Eng   *sim.Engine
	Dev   *blockdev.Device
	Flush *flushdisk.Array
	DB    *statedb.DB
	LM    *Manager
}

// FlushConfig parameterizes the flush disk array (paper section 3: number
// of drives, per-object transfer time, total object count).
type FlushConfig struct {
	Drives     int
	Transfer   sim.Time
	NumObjects uint64
}

// NewSetup assembles engine-attached substrate and a Manager wired to it:
// the log device at the manager's write latency and a flush array whose
// completions feed back into the manager.
func NewSetup(eng *sim.Engine, p Params, fc FlushConfig) (*Setup, error) {
	p = p.WithDefaults()
	dev := blockdev.New(eng, p.WriteLatency)
	db := statedb.New()
	var m *Manager
	flush := flushdisk.New(eng, fc.Drives, fc.Transfer, fc.NumObjects, func(req flushdisk.Request) {
		m.Flushed(req)
	})
	var err error
	m, err = New(eng, p, dev, flush, db)
	if err != nil {
		return nil, err
	}
	return &Setup{Eng: eng, Dev: dev, Flush: flush, DB: db, LM: m}, nil
}

// SetKillHandler registers a callback invoked whenever the manager kills a
// transaction for want of log space. The workload generator uses it to
// stop issuing the victim's remaining records.
func (m *Manager) SetKillHandler(fn func(logrec.TxID)) { m.onKill = fn }

// SetMemHook registers a callback invoked whenever the manager's
// main-memory footprint changes. The sharded system uses it to maintain a
// combined gauge whose peak is the true system peak (per-partition peaks
// occur at different simulated times, so their sum overstates it).
func (m *Manager) SetMemHook(fn func()) { m.onMem = fn }

// EnableFaultRetries arms the bounded retry-with-backoff path for transient
// block-write errors (fault injection): a failed write is reissued up to
// maxRetries times, the k-th retry backoff<<(k-1) after the failure.
// Exhausted retries abandon the block: active and committing transactions
// with records aboard are killed like the overflow path, and committed
// updates are force flushed so no acknowledged state depends on the dead
// block. Never enabled in the fault-free model — fault.Attach calls it —
// so ordinary runs take the historical code path bit for bit.
func (m *Manager) EnableFaultRetries(maxRetries int, backoff sim.Time) {
	if maxRetries < 0 || backoff < 0 {
		panic("core: negative fault-retry policy")
	}
	m.faulty = true
	m.maxRetries = maxRetries
	m.retryBackoff = backoff
}

// SetTracer attaches a trace sink; nil detaches it. Tracing is off the
// paper's measurement path and exists for observability and debugging.
func (m *Manager) SetTracer(s trace.Sink) { m.tracer = s }

// emit sends a trace event if a sink is attached, stamping the time.
func (m *Manager) emit(e trace.Event) {
	if m.tracer == nil {
		return
	}
	e.At = m.now()
	m.tracer.Emit(e)
}

// Params returns the manager's effective (defaulted) parameters.
func (m *Manager) Params() Params { return m.p }

// DB returns the stable database the manager flushes into.
func (m *Manager) DB() *statedb.DB { return m.db }

// Device returns the log device the manager appends to.
func (m *Manager) Device() LogDevice { return m.dev }

func (m *Manager) now() sim.Time { return m.clk.Now() }

func (m *Manager) lsn() logrec.LSN {
	m.nextLSN++
	return m.nextLSN
}

func (m *Manager) lastGen() int { return len(m.gens) - 1 }

// --- transaction-facing API -------------------------------------------

// Begin starts a transaction: a BEGIN tx record enters the log and an LTT
// entry is created (section 2.3).
func (m *Manager) Begin(tid logrec.TxID) { m.BeginHinted(tid, 0) }

// BeginHinted starts a transaction whose expected lifetime is known, so
// the section 6 placement extension (when configured) can start its
// records directly in an older generation.
func (m *Manager) BeginHinted(tid logrec.TxID, expected sim.Time) {
	if _, ok := m.ltt.Get(uint64(tid)); ok {
		panic(fmt.Sprintf("core: Begin of existing transaction %d", tid))
	}
	e := &lttEntry{
		tid:      tid,
		state:    txActive,
		oids:     make(map[logrec.OID]struct{}),
		beginAt:  m.now(),
		startGen: m.p.startGen(expected),
	}
	rec := logrec.NewTxRecord(m.lsn(), m.now(), logrec.KindBegin, tid, m.p.TxRecSize)
	c := &cell{rec: rec, tx: e}
	e.txCell = c
	m.ltt.Put(uint64(tid), e)
	m.appendTail(e.startGen, c, nil)
	m.begins.Inc()
	m.touchMem()
}

// WriteData logs an update of size bytes to object oid by transaction tid
// and returns the record's LSN (the synthetic new value of the object,
// which lets test oracles verify recovery exactly).
func (m *Manager) WriteData(tid logrec.TxID, oid logrec.OID, size int) logrec.LSN {
	e := m.mustTx(tid)
	if e.state != txActive {
		panic(fmt.Sprintf("core: WriteData on %v transaction %d", e.state, tid))
	}
	if size > m.p.BlockPayload {
		panic(fmt.Sprintf("core: record of %d bytes exceeds block payload %d", size, m.p.BlockPayload))
	}
	rec := logrec.NewDataRecord(m.lsn(), m.now(), tid, oid, size)
	le := m.lotFor(oid)
	// Record the before-image: the latest committed version of the object
	// before this transaction touched it (the UNDO information of the
	// steal extension; harmless bookkeeping under pure REDO).
	if old := le.uncommitted[tid]; old != nil {
		rec.PrevLSN, rec.PrevVal = old.rec.PrevLSN, old.rec.PrevVal
	} else if le.committed != nil {
		rec.PrevLSN, rec.PrevVal = le.committed.rec.LSN, le.committed.rec.Val
	} else if v, ok := m.db.Get(oid); ok {
		rec.PrevLSN, rec.PrevVal = v.LSN, v.Val
	}
	if old := le.uncommitted[tid]; old != nil {
		// The transaction overwrote its own earlier update: only the last
		// value matters under REDO logging, so the old record is garbage.
		m.unlink(old)
	}
	c := &cell{rec: rec, tx: e, obj: le}
	le.uncommitted[tid] = c
	e.oids[oid] = struct{}{}
	m.appendTail(e.startGen, c, nil)
	m.touchMem()
	return rec.LSN
}

// Commit appends the COMMIT tx record. The transaction commits once that
// record is durable (group commit); onDurable, if non-nil, is invoked at
// that moment — the paper's acknowledgement at time t4.
func (m *Manager) Commit(tid logrec.TxID, onDurable func()) {
	e := m.mustTx(tid)
	if e.state != txActive {
		panic(fmt.Sprintf("core: Commit on %v transaction %d", e.state, tid))
	}
	e.state = txCommitting
	e.onDurable = onDurable
	e.commitAppAt = m.now()
	m.replaceTxRecord(e, logrec.KindCommit)
}

// replaceTxRecord points the transaction's single tx cell at a fresh tx
// record of the given kind and re-appends it at the tail: the cell is
// updated to the newest tx record and moved to the tail end of the cell
// list (section 2.3 footnote 4); the earlier record becomes garbage in
// place.
func (m *Manager) replaceTxRecord(e *lttEntry, kind logrec.Kind) {
	rec := logrec.NewTxRecord(m.lsn(), m.now(), kind, e.tid, m.p.TxRecSize)
	c := e.txCell
	if c.inList {
		g := m.gens[c.gen]
		g.list.remove(c)
		g.noteAge(m.now() - c.arrived)
	}
	// The superseded record is garbage whether its cell is listed or
	// still riding detached in an unwritten buffer; counting only the
	// listed case would leave appended != garbaged + live.
	m.garbaged.Inc()
	c.rec = rec
	c.slot = nil
	m.appendTail(e.startGen, c, nil)
}

// Prepare appends the PREPARE tx record for a cross-shard participant
// branch (2PC-in-the-log). Once the record is durable the branch is
// prepared — in doubt — and onPrepared fires; from then on the branch can
// only be resolved by ResolveCommit or ResolveAbort, never killed, so it
// pins its generation's retirement eligibility until resolved.
func (m *Manager) Prepare(tid logrec.TxID, onPrepared func()) {
	e := m.mustTx(tid)
	if e.state != txActive {
		panic(fmt.Sprintf("core: Prepare on %v transaction %d", e.state, tid))
	}
	e.state = txPreparing
	e.onPrepared = onPrepared
	e.commitAppAt = m.now()
	m.replaceTxRecord(e, logrec.KindPrepare)
}

// DecideCommit appends the DECIDE tx record on the coordinator shard of a
// cross-shard transaction: it is at once the coordinator's own COMMIT and
// the global commit decision. pins counts the remote participant branches;
// the entry — and with it the DECIDE record — stays in the log until every
// one of them has retired (Unpin), so a crashed participant replaying a
// durable PREPARE can always find the decision in the coordinator's log.
func (m *Manager) DecideCommit(tid logrec.TxID, pins int, onDurable func()) {
	e := m.mustTx(tid)
	if e.state != txActive {
		panic(fmt.Sprintf("core: DecideCommit on %v transaction %d", e.state, tid))
	}
	if pins < 0 {
		panic("core: DecideCommit with negative pin count")
	}
	e.state = txCommitting
	e.onDurable = onDurable
	e.pins = pins
	e.commitAppAt = m.now()
	m.replaceTxRecord(e, logrec.KindDecide)
}

// ResolveCommit applies the coordinator's commit decision to a prepared
// participant branch: the branch commits exactly as if its own COMMIT had
// just become durable, except that no new record enters the log — the
// branch's durable PREPARE plus the coordinator's durable DECIDE are the
// commit evidence. onRetired, if non-nil, fires when the branch's LTT
// entry retires (every update flushed); the router uses it to unpin the
// coordinator's DECIDE record.
func (m *Manager) ResolveCommit(tid logrec.TxID, onRetired func()) {
	e := m.mustTx(tid)
	if e.state != txPrepared {
		panic(fmt.Sprintf("core: ResolveCommit on %v transaction %d", e.state, tid))
	}
	e.onRetired = onRetired
	e.state = txCommitting
	m.commitDurable(e)
}

// ResolveAbort applies an abort decision — explicit or presumed — to a
// cross-shard participant branch: every record of the branch becomes
// garbage and its LTT entry disappears, exactly like Abort. It accepts an
// active, preparing or prepared branch (a sibling-shard kill aborts
// branches that have not prepared yet; presumed abort resolves prepared
// ones). No decision record is ever logged for an abort.
func (m *Manager) ResolveAbort(tid logrec.TxID) {
	e := m.mustTx(tid)
	switch e.state {
	case txActive, txPreparing, txPrepared:
	default:
		panic(fmt.Sprintf("core: ResolveAbort on %v transaction %d", e.state, tid))
	}
	m.dropTx(e, false)
	m.aborts.Inc()
}

// Unpin releases one participant pin on a coordinator entry; once the pin
// count reaches zero and every local update has flushed, the entry — and
// its DECIDE record — finally retires.
func (m *Manager) Unpin(tid logrec.TxID) {
	e := m.mustTx(tid)
	if e.pins <= 0 {
		panic(fmt.Sprintf("core: Unpin of unpinned transaction %d", tid))
	}
	e.pins--
	m.maybeRetire(e)
}

// Abort voluntarily aborts an active transaction: all its records become
// garbage immediately and its LTT entry is deleted (section 2.3).
func (m *Manager) Abort(tid logrec.TxID) {
	e := m.mustTx(tid)
	if e.state != txActive {
		panic(fmt.Sprintf("core: Abort on %v transaction %d", e.state, tid))
	}
	m.dropTx(e, false)
	m.aborts.Inc()
}

func (m *Manager) mustTx(tid logrec.TxID) *lttEntry {
	e, ok := m.ltt.Get(uint64(tid))
	if !ok {
		panic(fmt.Sprintf("core: unknown transaction %d", tid))
	}
	return e
}

func (m *Manager) lotFor(oid logrec.OID) *lotEntry {
	if le, ok := m.lot.Get(uint64(oid)); ok {
		return le
	}
	le := &lotEntry{oid: oid, uncommitted: make(map[logrec.TxID]*cell)}
	m.lot.Put(uint64(oid), le)
	return le
}

// takeCells borrows a cell-snapshot buffer from the pool (empty, capacity
// preserved). advanceHead can re-enter itself through appendTail's
// space-making cascade, so a single scratch slice would be clobbered
// mid-iteration; the pool gives every nesting level its own buffer.
func (m *Manager) takeCells() []*cell {
	if n := len(m.cellBufs); n > 0 {
		s := m.cellBufs[n-1]
		m.cellBufs = m.cellBufs[:n-1]
		return s[:0]
	}
	return nil
}

// putCells returns a snapshot buffer to the pool once its caller is done
// iterating it.
func (m *Manager) putCells(s []*cell) { m.cellBufs = append(m.cellBufs, s) }

// newBuffer takes a block buffer off the pool (or builds one) with the full
// payload free and the given slot.
func (m *Manager) newBuffer(s *slot) *buffer {
	if n := len(m.bufPool); n > 0 {
		b := m.bufPool[n-1]
		m.bufPool = m.bufPool[:n-1]
		b.slot = s
		b.free = m.p.BlockPayload
		b.sealed = false
		return b
	}
	return &buffer{slot: s, free: m.p.BlockPayload, epoch: 1}
}

// recycleBuffer retires a buffer whose write completed. The epoch bump
// invalidates any group-commit timeout still holding the pointer; clearing
// the slices keeps the pool from pinning dead records and cells.
func (m *Manager) recycleBuffer(b *buffer) {
	b.epoch++
	b.slot = nil
	clear(b.recs)
	clear(b.cells)
	clear(b.origins)
	clear(b.commits)
	b.recs, b.cells, b.origins, b.commits = b.recs[:0], b.cells[:0], b.origins[:0], b.commits[:0]
	m.bufPool = append(m.bufPool, b)
}

// unlink disposes a cell: its record is now garbage.
func (m *Manager) unlink(c *cell) {
	if c.inList {
		g := m.gens[c.gen]
		g.list.remove(c)
		g.noteAge(m.now() - c.arrived)
	}
	c.slot = nil
	m.garbaged.Inc()
}

// dropTx implements abort and kill: every record of the transaction
// becomes garbage and the LTT entry disappears.
func (m *Manager) dropTx(e *lttEntry, killed bool) {
	e.state = txAborted
	e.killed = killed
	for oid := range e.oids {
		le, ok := m.lot.Get(uint64(oid))
		if !ok {
			continue
		}
		if c := le.uncommitted[e.tid]; c != nil {
			m.undoStolen(oid, c, e.tid)
			m.unlink(c)
			delete(le.uncommitted, e.tid)
		}
		if le.empty() {
			m.lot.Delete(uint64(oid))
		}
	}
	clear(e.oids)
	// The tx record is garbage even when its cell is detached (killed by
	// the space-making cascade of its own append, or mid-move).
	m.unlink(e.txCell)
	m.ltt.Delete(uint64(e.tid))
	if killed {
		m.killedTxs.Inc()
		m.emit(trace.Event{Kind: trace.EvKill, Gen: -1, Tx: e.tid})
		if m.onKill != nil {
			m.onKill(e.tid)
		}
	}
	m.touchMem()
}

// pendingRevert remembers the before-image for a stolen flush whose
// transaction died while the flush was in service.
type pendingRevert struct {
	tx   logrec.TxID
	lsn  logrec.LSN
	prev statedb.Version
}

// undoStolen rolls back a dying transaction's stolen update: if the flush
// completed, the stable database reverts to the before-image now; if it is
// still in service, the revert is registered for the completion; a merely
// queued request is withdrawn.
func (m *Manager) undoStolen(oid logrec.OID, c *cell, tid logrec.TxID) {
	if !m.p.Steal || c.rec.Kind != logrec.KindData {
		return
	}
	prev := statedb.Version{LSN: c.rec.PrevLSN, Val: c.rec.PrevVal}
	switch {
	case c.flushed:
		m.db.ForceSet(oid, prev)
	case c.stolenQueued && !m.flush.Remove(oid):
		m.pendingReverts[oid] = pendingRevert{tx: tid, lsn: c.rec.LSN, prev: prev}
	}
}

// touchMem refreshes the main-memory gauges using the paper's accounting:
// MemPerTx bytes per LTT entry plus MemPerObj bytes per LOT entry.
func (m *Manager) touchMem() {
	now := m.now()
	m.lotGauge.Set(now, float64(m.lot.Len()))
	m.lttGauge.Set(now, float64(m.ltt.Len()))
	m.memGauge.Set(now, float64(m.p.MemPerTx*m.ltt.Len()+m.p.MemPerObj*m.lot.Len()))
	if m.onMem != nil {
		m.onMem()
	}
}
