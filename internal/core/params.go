// Package core implements the paper's primary contribution: the ephemeral
// logging (EL) disk-management technique for a database log (section 2),
// plus the traditional firewall (FW) technique it is evaluated against
// (section 4 simulates FW "by using a single log with no recirculation").
//
// EL manages the log as a chain of fixed-size queues called generations,
// each a circular array of disk blocks. New records enter the tail of
// generation 0. Non-garbage records reaching the head of generation i are
// forwarded to the tail of generation i+1; in the last generation they are
// recirculated back to its own tail. Garbage records are simply passed
// over (their space is reclaimed when the head moves past their block).
// Committed updates are continuously flushed to the stable database so
// their log records become garbage, ideally before ever reaching a head.
//
// All non-garbage records are tracked in main memory by cells joined in a
// circular doubly linked list per generation, reachable from the logged
// object table (LOT) and logged transaction table (LTT) — see section 2.3.
package core

import (
	"fmt"

	"ellog/internal/sim"
)

// Mode selects the disk-management technique.
type Mode int

const (
	// ModeEphemeral is the paper's technique: N generations, forwarding,
	// optional recirculation in the last generation, continuous flushing.
	ModeEphemeral Mode = iota
	// ModeFirewall is the System R baseline: a single queue whose head
	// (the firewall) cannot pass the oldest log record of the oldest
	// active transaction; lengthy transactions are killed when the log
	// fills. Per section 4 the simulated FW carries no checkpointing
	// overhead — a committed transaction's records become garbage as soon
	// as the commit is durable — which favours FW.
	ModeFirewall
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeEphemeral:
		return "EL"
	case ModeFirewall:
		return "FW"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Defaults fixed by the paper's simulator (section 3).
const (
	// DefaultBlockPayload is the usable bytes per 2048-byte disk block
	// (48 bytes are reserved for bookkeeping).
	DefaultBlockPayload = 2000
	// DefaultBuffersPerGen is the number of block buffers per generation.
	DefaultBuffersPerGen = 4
	// DefaultThresholdK is the minimum number of blocks that must remain
	// available to hold new log records.
	DefaultThresholdK = 2
	// DefaultTxRecSize is the size of BEGIN and COMMIT records in bytes.
	DefaultTxRecSize = 8
	// DefaultWriteLatency is tau_DiskWrite, the conservative fixed delay to
	// transfer a buffer's contents to disk.
	DefaultWriteLatency = 15 * sim.Millisecond
	// MemPerTxFW is the paper's estimate of FW main memory per in-system
	// transaction (including the pointer to its oldest record's position).
	MemPerTxFW = 22
	// MemPerTxEL is the paper's estimate of EL main memory per transaction
	// with an LTT entry.
	MemPerTxEL = 40
	// MemPerObjEL is the paper's estimate of EL main memory per updated
	// but unflushed object (LOT entry).
	MemPerObjEL = 40
)

// Params configures a Manager.
type Params struct {
	// Mode selects EL or FW.
	Mode Mode
	// GenSizes gives each generation's capacity in blocks, youngest first.
	// FW uses exactly one generation.
	GenSizes []int
	// Recirculate enables recirculation in the last generation (EL only).
	// When off, a still-needed record reaching the last head kills its
	// transaction (if active) or forces a random flush (if committed).
	Recirculate bool
	// BlockPayload is the usable bytes per block (default 2000).
	BlockPayload int
	// BuffersPerGen bounds concurrently held block buffers per generation
	// (default 4). Exhaustion is counted, not blocked on — the paper's
	// workload model has no feedback into transaction pacing.
	BuffersPerGen int
	// ThresholdK is the minimum free-block gap per generation (default 2).
	ThresholdK int
	// TxRecSize is the logical size of BEGIN/COMMIT records (default 8).
	TxRecSize int
	// WriteLatency is the block write transfer time (default 15 ms).
	WriteLatency sim.Time
	// MemPerTx and MemPerObj set the main-memory accounting model
	// (EL: 40/40; FW: 22/0).
	MemPerTx  int
	MemPerObj int
	// GroupCommitTimeout, when positive, bounds how long a buffer holding
	// a COMMIT record may wait to fill before being written anyway. The
	// paper's experiments use pure group commit (0 = wait until full);
	// the lifetime-hint extension needs a timeout because old generations
	// see little traffic.
	GroupCommitTimeout sim.Time
	// Steal enables the UNDO/REDO extension (paper section 1: the
	// techniques "can be extended to the more general situation of
	// UNDO/REDO logging with little difficulty"): uncommitted updates may
	// be flushed to the stable database once their log records are durable
	// (write-ahead rule). Data records then carry before-images; an abort
	// rolls stolen versions back, and commit pays one extra stable-database
	// write per stolen object to clear its stolen marker. EL mode only.
	Steal bool
	// BroadNonGarbage models the paper's closing remark: "We originally
	// formulated EL for a database which retains a version number
	// timestamp with each object. For the more general case of no
	// timestamps in the database, a broader definition of non-garbage
	// records is required to ensure correct recovery; some log records may
	// need to wait longer before becoming garbage." With this set, a
	// committed update superseded by a newer committed update stays
	// non-garbage until the newer version reaches the stable database
	// (without per-object version numbers, recovery could not otherwise
	// order the two). Costs extra log space and bandwidth on hot objects.
	BroadNonGarbage bool
	// HintBoundaries enables the paper's section 6 placement extension:
	// a transaction beginning with expected lifetime L starts in the
	// oldest generation i such that L > HintBoundaries[i-1] (so
	// len(HintBoundaries) == len(GenSizes)-1). Nil disables hints.
	HintBoundaries []sim.Time
}

// WithDefaults fills unset fields with the paper's fixed parameters.
func (p Params) WithDefaults() Params {
	if p.BlockPayload == 0 {
		p.BlockPayload = DefaultBlockPayload
	}
	if p.BuffersPerGen == 0 {
		p.BuffersPerGen = DefaultBuffersPerGen
	}
	if p.ThresholdK == 0 {
		p.ThresholdK = DefaultThresholdK
	}
	if p.TxRecSize == 0 {
		p.TxRecSize = DefaultTxRecSize
	}
	if p.WriteLatency == 0 {
		p.WriteLatency = DefaultWriteLatency
	}
	if p.MemPerTx == 0 {
		if p.Mode == ModeFirewall {
			p.MemPerTx = MemPerTxFW
		} else {
			p.MemPerTx = MemPerTxEL
		}
	}
	if p.MemPerObj == 0 && p.Mode == ModeEphemeral {
		p.MemPerObj = MemPerObjEL
	}
	return p
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if len(p.GenSizes) == 0 {
		return fmt.Errorf("core: no generations configured")
	}
	if p.Mode == ModeFirewall {
		if len(p.GenSizes) != 1 {
			return fmt.Errorf("core: firewall mode requires exactly one generation, got %d", len(p.GenSizes))
		}
		if p.Recirculate {
			return fmt.Errorf("core: firewall mode cannot recirculate")
		}
	}
	for i, s := range p.GenSizes {
		if s < p.ThresholdK+2 {
			return fmt.Errorf("core: generation %d size %d below minimum %d (threshold k=%d plus fill and one data block)",
				i, s, p.ThresholdK+2, p.ThresholdK)
		}
	}
	if p.Steal && p.Mode != ModeEphemeral {
		return fmt.Errorf("core: the steal (UNDO/REDO) extension requires ephemeral-logging mode")
	}
	if p.HintBoundaries != nil && len(p.HintBoundaries) != len(p.GenSizes)-1 {
		return fmt.Errorf("core: %d hint boundaries for %d generations, want %d",
			len(p.HintBoundaries), len(p.GenSizes), len(p.GenSizes)-1)
	}
	if p.BlockPayload < p.TxRecSize {
		return fmt.Errorf("core: block payload %d cannot hold a tx record of %d bytes", p.BlockPayload, p.TxRecSize)
	}
	return nil
}

// startGen returns the generation a new transaction's records should enter,
// honouring lifetime hints when configured.
func (p Params) startGen(expected sim.Time) int {
	if p.HintBoundaries == nil || expected <= 0 {
		return 0
	}
	g := 0
	for g < len(p.HintBoundaries) && expected > p.HintBoundaries[g] {
		g++
	}
	return g
}
