package core

import (
	"ellog/internal/logrec"
	"ellog/internal/sim"
)

// cell is the in-memory handle for one non-garbage log record (section
// 2.1). It points to the record's block in the log (via the slot) and is
// linked into its generation's circular doubly linked list. A cell is
// disposed the moment its record becomes garbage; "after becoming a garbage
// record, a log record cannot switch back to become non-garbage again".
//
// Pointer resolution is deliberately coarse: "a cell indicates merely the
// block to which its record belongs" (section 2.2). While a record sits in
// an unwritten recirculation buffer its slot is nil — conceptually it
// belongs to whichever block is eventually written at the tail.
type cell struct {
	left, right *cell
	gen         int
	slot        *slot // block holding the record; nil while pending in a slotless buffer
	rec         *logrec.Record

	obj       *lotEntry // owning LOT entry (data records only)
	tx        *lttEntry // owning transaction
	committed bool      // data record of a committed transaction, awaiting flush
	inList    bool
	arrived   sim.Time // when the cell entered its current generation

	// Steal-extension flags: the uncommitted update was queued for / has
	// completed a stolen flush; cleanQueued marks the pending commit-time
	// write that clears the stolen marker.
	flushed      bool
	stolenQueued bool
	cleanQueued  bool
}

// cellList is one generation's circular doubly linked list of cells. h
// points to the cell for the non-garbage record nearest the head (the
// oldest). Following h.right reaches the cell nearest the tail (the
// newest) — the paper's substitute for a tail pointer. Moving left from h
// walks from oldest towards newest.
type cellList struct {
	h *cell
	n int
}

// pushNewest links c in as the newest cell (nearest the tail).
func (l *cellList) pushNewest(c *cell) {
	if c.inList {
		panic("core: cell already in a list")
	}
	c.inList = true
	l.n++
	if l.h == nil {
		l.h = c
		c.left = c
		c.right = c
		return
	}
	newest := l.h.right
	c.right = newest
	c.left = l.h
	newest.left = c
	l.h.right = c
}

// remove unlinks c. If c was the head cell, h moves to the next oldest.
func (l *cellList) remove(c *cell) {
	if !c.inList {
		panic("core: removing cell not in a list")
	}
	c.inList = false
	l.n--
	if l.n == 0 {
		l.h = nil
		c.left, c.right = nil, nil
		return
	}
	if l.h == c {
		l.h = c.left // next oldest
	}
	c.left.right = c.right
	c.right.left = c.left
	c.left, c.right = nil, nil
}

// oldest returns the head-most cell, or nil when the list is empty.
func (l *cellList) oldest() *cell { return l.h }

// len reports the number of cells.
func (l *cellList) len() int { return l.n }

// oldestInSlot collects, oldest first, the consecutive head-side cells
// residing in the given slot, appending onto dst (pass a pooled scratch —
// see Manager.takeCells — to keep the advance path allocation-free).
// Records enter a generation in block order, so a block's cells are
// contiguous at the old end of the list.
func (l *cellList) oldestInSlot(s *slot, dst []*cell) []*cell {
	out := dst[:0]
	c := l.h
	for i := 0; i < l.n; i++ {
		if c.slot != s {
			break
		}
		out = append(out, c)
		c = c.left
	}
	return out
}

// walkOldestFirst visits every cell from oldest to newest until fn returns
// false. The list must not be mutated during the walk.
func (l *cellList) walkOldestFirst(fn func(*cell) bool) {
	c := l.h
	for i := 0; i < l.n; i++ {
		if !fn(c) {
			return
		}
		c = c.left
	}
}
