package core

import (
	"fmt"

	"ellog/internal/logrec"
)

// CheckInvariants walks the manager's entire bookkeeping and verifies the
// structural invariants of section 2: cells, generation lists, LOT and LTT
// cross-references, slot accounting and refugee counts. It returns the
// first violation found, or nil. Tests call it at checkpoints throughout
// simulations; it is not part of the hot path.
func (m *Manager) CheckInvariants() error {
	// 1. Generation ring accounting.
	for _, g := range m.gens {
		occupied := 0
		for _, s := range g.ring {
			if s.state != slotFree {
				occupied++
			}
			if s.refugees < 0 {
				return fmt.Errorf("gen %d: negative refugees on slot %d", g.idx, s.id)
			}
		}
		if occupied != g.used {
			return fmt.Errorf("gen %d: used=%d but %d slots occupied", g.idx, g.used, occupied)
		}
		if g.used > 0 {
			// Occupied slots must be exactly the circular range [head, tail).
			for i := 0; i < len(g.ring); i++ {
				inRange := false
				for j, idx := 0, g.head; j < g.used; j++ {
					if i == idx {
						inRange = true
						break
					}
					idx = (idx + 1) % len(g.ring)
				}
				if inRange != (g.ring[i].state != slotFree) {
					return fmt.Errorf("gen %d: slot index %d state %v disagrees with [head,tail) occupancy",
						g.idx, i, g.ring[i].state)
				}
			}
		}
	}

	// 2. Cell lists: circular integrity, h is oldest, cells carry the
	// generation they are listed in.
	cellsSeen := make(map[*cell]int)
	for _, g := range m.gens {
		if g.list.n == 0 {
			if g.list.h != nil {
				return fmt.Errorf("gen %d: empty list with non-nil head", g.idx)
			}
			continue
		}
		c := g.list.h
		for i := 0; i < g.list.n; i++ {
			if !c.inList {
				return fmt.Errorf("gen %d: listed cell %v not marked inList", g.idx, c.rec)
			}
			if c.gen != g.idx {
				return fmt.Errorf("gen %d: listed cell %v claims gen %d", g.idx, c.rec, c.gen)
			}
			if c.left.right != c || c.right.left != c {
				return fmt.Errorf("gen %d: broken links at cell %v", g.idx, c.rec)
			}
			if _, dup := cellsSeen[c]; dup {
				return fmt.Errorf("cell %v appears in two lists", c.rec)
			}
			cellsSeen[c] = g.idx
			if c.slot != nil && c.slot.state == slotFree {
				return fmt.Errorf("gen %d: live cell %v points at a free slot", g.idx, c.rec)
			}
			c = c.left
		}
		if c != g.list.h {
			return fmt.Errorf("gen %d: list does not close after %d cells", g.idx, g.list.n)
		}
	}

	// 3. LOT entries: every referenced cell is live and cross-linked.
	lotCells := 0
	var lotErr error
	m.lot.Range(func(key uint64, le *lotEntry) bool {
		oid := logrec.OID(key)
		if le.empty() {
			lotErr = fmt.Errorf("LOT entry %d is empty but present", oid)
			return false
		}
		check := func(c *cell, committed bool, tid logrec.TxID) error {
			if !c.inList {
				return fmt.Errorf("LOT %d: cell %v not in any list", oid, c.rec)
			}
			if c.rec.Kind != logrec.KindData || c.rec.Obj != oid {
				return fmt.Errorf("LOT %d: cell holds foreign record %v", oid, c.rec)
			}
			if c.committed != committed {
				return fmt.Errorf("LOT %d: cell %v committed flag %v, want %v", oid, c.rec, c.committed, committed)
			}
			if c.obj != le {
				return fmt.Errorf("LOT %d: cell %v has wrong owner", oid, c.rec)
			}
			if _, ok := c.tx.oids[oid]; !ok {
				return fmt.Errorf("LOT %d: owner tx %d does not list the oid", oid, c.tx.tid)
			}
			if tid != 0 && c.rec.Tx != tid {
				return fmt.Errorf("LOT %d: uncommitted cell under tx %d written by %d", oid, tid, c.rec.Tx)
			}
			return nil
		}
		if le.committed != nil {
			lotCells++
			if err := check(le.committed, true, 0); err != nil {
				lotErr = err
				return false
			}
			if le.committed.tx.state != txCommitted {
				lotErr = fmt.Errorf("LOT %d: committed cell from %v tx", oid, le.committed.tx.state)
				return false
			}
		}
		for tid, c := range le.uncommitted {
			lotCells++
			if err := check(c, false, tid); err != nil {
				lotErr = err
				return false
			}
		}
		for _, c := range le.superseded {
			lotCells++
			if err := check(c, true, 0); err != nil {
				lotErr = err
				return false
			}
			if le.committed == nil {
				lotErr = fmt.Errorf("LOT %d: superseded chain with no committed successor", oid)
				return false
			}
		}
		return true
	})
	if lotErr != nil {
		return lotErr
	}

	// 4. LTT entries: tx cells live (unless riding in an unsealed buffer),
	// oid sets backed by LOT.
	lttCells := 0
	var lttErr error
	m.ltt.Range(func(key uint64, e *lttEntry) bool {
		if e.txCell == nil {
			lttErr = fmt.Errorf("LTT %d: no tx cell", e.tid)
			return false
		}
		if e.txCell.inList {
			lttCells++
		}
		if e.txCell.tx != e {
			lttErr = fmt.Errorf("LTT %d: tx cell owner mismatch", e.tid)
			return false
		}
		for oid := range e.oids {
			le, ok := m.lot.Get(uint64(oid))
			if !ok {
				lttErr = fmt.Errorf("LTT %d: oid %d has no LOT entry", e.tid, oid)
				return false
			}
			found := false
			if le.committed != nil && le.committed.tx == e {
				found = true
			}
			if c := le.uncommitted[e.tid]; c != nil {
				found = true
			}
			for _, c := range le.superseded {
				if c.tx == e {
					found = true
					break
				}
			}
			if !found {
				lttErr = fmt.Errorf("LTT %d: oid %d has no cell owned by the tx", e.tid, oid)
				return false
			}
		}
		return true
	})
	if lttErr != nil {
		return lttErr
	}

	// 5. Every listed cell is reachable from LOT or LTT — "at any given
	// time, the cells associated with the LOT and LTT entries point to all
	// non-garbage records in the log" (section 2.3).
	reachable := make(map[*cell]bool)
	m.lot.Range(func(_ uint64, le *lotEntry) bool {
		if le.committed != nil {
			reachable[le.committed] = true
		}
		for _, c := range le.uncommitted {
			reachable[c] = true
		}
		for _, c := range le.superseded {
			reachable[c] = true
		}
		return true
	})
	m.ltt.Range(func(_ uint64, e *lttEntry) bool {
		reachable[e.txCell] = true
		return true
	})
	var orphan error
	total := 0
	for _, g := range m.gens {
		total += g.list.len()
		g.list.walkOldestFirst(func(c *cell) bool {
			if !reachable[c] {
				orphan = fmt.Errorf("gen %d: listed cell %v (tx state %d, committed=%v) unreachable from LOT/LTT",
					g.idx, c.rec, c.tx.state, c.committed)
				return false
			}
			return true
		})
	}
	if orphan != nil {
		return orphan
	}
	if total != lotCells+lttCells {
		return fmt.Errorf("%d cells listed but %d reachable from LOT (%d) + LTT (%d)",
			total, lotCells+lttCells, lotCells, lttCells)
	}

	// 6. Record conservation: every record that ever entered the log is
	// either live (a cell reachable from LOT/LTT, listed or momentarily
	// detached in an unwritten buffer) or was counted as garbage — the
	// balance behind the Garbage/AppendedRecs bandwidth accounting.
	live := uint64(len(reachable))
	if m.appendedRecs.Count() != m.garbaged.Count()+live {
		return fmt.Errorf("record accounting drifted: %d appended != %d garbage + %d live",
			m.appendedRecs.Count(), m.garbaged.Count(), live)
	}
	return nil
}
