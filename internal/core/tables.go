package core

import (
	"ellog/internal/logrec"
	"ellog/internal/sim"
)

// txState tracks a transaction through its life in the LTT.
type txState uint8

const (
	// txActive: BEGIN written, still executing.
	txActive txState = iota
	// txCommitting: COMMIT record appended to a buffer, not yet durable.
	txCommitting
	// txCommitted: COMMIT durable; entry lives on until every update is
	// flushed (its oid set drains to empty).
	txCommitted
	// txAborted: aborted or killed; the entry is removed immediately, so
	// this state is only ever observed transiently.
	txAborted
	// txPreparing: PREPARE record appended to a buffer, not yet durable
	// (cross-shard participant branch).
	txPreparing
	// txPrepared: PREPARE durable; the branch is in doubt — it cannot be
	// killed, flushed or retired until the coordinator's decision arrives
	// via ResolveCommit or ResolveAbort, so it pins its generation.
	txPrepared
)

// lttEntry is one logged transaction table entry (section 2.3): the cell
// for the transaction's most recent tx log record plus the set of oids it
// has updated and that still have non-garbage data records. Entries are
// keyed by tid in a chained hash table.
type lttEntry struct {
	tid    logrec.TxID
	state  txState
	txCell *cell
	// oids tracks which objects this transaction updated; an oid leaves
	// the set when the corresponding data record becomes garbage.
	oids map[logrec.OID]struct{}

	beginAt     sim.Time
	commitAppAt sim.Time // when the COMMIT record was appended (t3)
	onDurable   func()   // generator callback at t4
	onPrepared  func()   // 2PC router callback when the PREPARE is durable
	onRetired   func()   // 2PC router callback when the entry retires
	// pins counts remote participant branches that must retire before this
	// (coordinator) entry may: the DECIDE record has to stay readable in
	// the log until no crash can leave a participant in doubt about it.
	pins     int
	startGen int // generation receiving this tx's records (hints)
	killed   bool
}

// lotEntry is one logged object table entry (section 2.3): the cells for
// the object's non-garbage data log records — at most one for the most
// recently committed (but unflushed) update, and possibly several for
// uncommitted updates. Entries are keyed by oid in a chained hash table.
type lotEntry struct {
	oid logrec.OID
	// committed is the cell of the most recently committed, not yet
	// flushed update, if any.
	committed *cell
	// uncommitted maps an active transaction to its latest update's cell.
	// The paper's workload gives each object at most one active writer,
	// but the structure supports several (e.g. under optimistic CC).
	uncommitted map[logrec.TxID]*cell
	// superseded holds older committed records that must outlive their
	// successors until the newest version is flushed — only under
	// Params.BroadNonGarbage (no per-object version timestamps).
	superseded []*cell
}

func (e *lotEntry) empty() bool {
	return e.committed == nil && len(e.uncommitted) == 0 && len(e.superseded) == 0
}
