package core

import (
	"testing"

	"ellog/internal/logrec"
	"ellog/internal/sim"
)

// liveRecords counts the cells reachable from the LOT and LTT — the live
// (non-garbage) records the accounting identity is balanced against.
func liveRecords(m *Manager) uint64 {
	reachable := make(map[*cell]bool)
	m.lot.Range(func(_ uint64, le *lotEntry) bool {
		if le.committed != nil {
			reachable[le.committed] = true
		}
		for _, c := range le.uncommitted {
			reachable[c] = true
		}
		for _, c := range le.superseded {
			reachable[c] = true
		}
		return true
	})
	m.ltt.Range(func(_ uint64, e *lttEntry) bool {
		reachable[e.txCell] = true
		return true
	})
	return uint64(len(reachable))
}

func assertBalance(t *testing.T, m *Manager, when string) {
	t.Helper()
	st := m.Stats()
	if live := liveRecords(m); st.AppendedRecs != st.Garbage+live {
		t.Fatalf("%s: %d appended != %d garbage + %d live", when, st.AppendedRecs, st.Garbage, live)
	}
}

// TestCommitCountsSupersededBegin: the BEGIN record superseded by the
// COMMIT record is garbage from the moment Commit runs — regardless of
// whether its cell is listed or detached — and must be counted so the
// Garbage/AppendedRecs bandwidth stats balance.
func TestCommitCountsSupersededBegin(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	m := s.LM
	m.Begin(1)
	m.WriteData(1, 7, 100)
	if got := m.Stats().Garbage; got != 0 {
		t.Fatalf("garbage before commit = %d, want 0", got)
	}
	m.Commit(1, nil)
	if got := m.Stats().Garbage; got != 1 {
		t.Fatalf("garbage after commit = %d, want 1 (the superseded BEGIN)", got)
	}
	assertBalance(t, m, "after commit")
	m.Quiesce()
	s.Eng.Run(sim.Second)
	st := m.Stats()
	// Fully drained: BEGIN+data+COMMIT all appended, all garbage.
	if st.AppendedRecs != 3 || st.Garbage != 3 {
		t.Fatalf("after drain: appended=%d garbage=%d, want 3/3", st.AppendedRecs, st.Garbage)
	}
	assertInv(t, m)
}

// TestRecordAccountingUnderKillPressure: transactions killed by the
// space-making cascade — possibly mid-append of their own records — must
// keep appended == garbage + live at every step. Before the accounting
// audit, records killed during their own append were counted as garbage
// but never as appended.
func TestRecordAccountingUnderKillPressure(t *testing.T) {
	s := testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{4, 4},
		BlockPayload: 150,
	})
	m := s.LM
	m.SetKillHandler(func(logrec.TxID) {})
	// A horde of long-lived writers against a tiny log forces kills.
	tid := logrec.TxID(1)
	for round := 0; round < 60; round++ {
		m.Begin(tid)
		for w := 0; w < 4; w++ {
			if e, ok := m.ltt.Get(uint64(tid)); !ok || e.state != txActive {
				break // killed mid-round by its own append's cascade
			}
			m.WriteData(tid, logrec.OID(int(tid)*10+w), 60)
		}
		if e, ok := m.ltt.Get(uint64(tid)); ok && e.state == txActive && round%3 == 2 {
			m.Commit(tid, nil)
		}
		tid++
		s.Eng.Run(s.Eng.Now() + 2*sim.Millisecond)
		assertBalance(t, m, "mid-run")
		assertInv(t, m)
	}
	if m.Stats().Killed == 0 {
		t.Fatal("pressure run killed nothing; the scenario lost its teeth")
	}
	m.Quiesce()
	s.Eng.Run(s.Eng.Now() + 10*sim.Second)
	assertBalance(t, m, "after drain")
	assertInv(t, m)
}
