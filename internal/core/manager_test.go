package core

import (
	"testing"

	"ellog/internal/logrec"
	"ellog/internal/sim"
	"ellog/internal/trace"
)

// testSetup builds a Manager on fresh substrate with a small object space
// and fast flush drive unless overridden.
func testSetup(t *testing.T, p Params, fc ...FlushConfig) *Setup {
	t.Helper()
	cfg := FlushConfig{Drives: 1, Transfer: 5 * sim.Millisecond, NumObjects: 1000}
	if len(fc) > 0 {
		cfg = fc[0]
	}
	s, err := NewSetup(sim.NewEngine(11, 13), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func assertInv(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	base := Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}}.WithDefaults()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Mode: ModeEphemeral},                                                             // no generations
		{Mode: ModeFirewall, GenSizes: []int{8, 8}},                                       // FW multi-gen
		{Mode: ModeFirewall, GenSizes: []int{8}, Recirculate: true},                       // FW recirc
		{Mode: ModeEphemeral, GenSizes: []int{2}},                                         // too small
		{Mode: ModeEphemeral, GenSizes: []int{8, 8}, HintBoundaries: make([]sim.Time, 3)}, // hint mismatch
	}
	for i, p := range bad {
		if err := p.WithDefaults().Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{Mode: ModeEphemeral, GenSizes: []int{8}}.WithDefaults()
	if p.BlockPayload != 2000 || p.BuffersPerGen != 4 || p.ThresholdK != 2 ||
		p.TxRecSize != 8 || p.WriteLatency != 15*sim.Millisecond {
		t.Fatalf("EL defaults wrong: %+v", p)
	}
	if p.MemPerTx != 40 || p.MemPerObj != 40 {
		t.Fatalf("EL memory model wrong: %d/%d", p.MemPerTx, p.MemPerObj)
	}
	f := Params{Mode: ModeFirewall, GenSizes: []int{8}}.WithDefaults()
	if f.MemPerTx != 22 || f.MemPerObj != 0 {
		t.Fatalf("FW memory model wrong: %d/%d", f.MemPerTx, f.MemPerObj)
	}
}

func TestModeString(t *testing.T) {
	if ModeEphemeral.String() != "EL" || ModeFirewall.String() != "FW" {
		t.Fatal("mode names wrong")
	}
}

func TestStartGenHints(t *testing.T) {
	p := Params{
		Mode:           ModeEphemeral,
		GenSizes:       []int{8, 8, 8},
		HintBoundaries: []sim.Time{2 * sim.Second, 20 * sim.Second},
	}
	cases := []struct {
		life sim.Time
		want int
	}{
		{0, 0}, {sim.Second, 0}, {2 * sim.Second, 0},
		{3 * sim.Second, 1}, {20 * sim.Second, 1}, {21 * sim.Second, 2},
	}
	for _, c := range cases {
		if got := p.startGen(c.life); got != c.want {
			t.Errorf("startGen(%v) = %d, want %d", c.life, got, c.want)
		}
	}
}

func TestCommitDurableViaGroupCommit(t *testing.T) {
	// Block payload 100: begin(8)+data(84)+commit(8) fills a buffer
	// exactly, but group commit writes only when the NEXT record fails to
	// fit, so durability waits for more traffic.
	s := testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{8, 8},
		BlockPayload: 100,
	})
	m := s.LM
	durableAt := sim.Time(-1)
	m.Begin(1)
	m.WriteData(1, 42, 84)
	m.Commit(1, func() { durableAt = s.Eng.Now() })
	s.Eng.Run(sim.Second)
	if durableAt != -1 {
		t.Fatalf("commit durable at %v with group commit and no further traffic", durableAt)
	}
	// The next record does not fit (84 > 0 free), sealing the buffer.
	m.Begin(2)
	m.WriteData(2, 43, 84)
	start := s.Eng.Now()
	s.Eng.Run(start + 14*sim.Millisecond)
	if durableAt != -1 {
		t.Fatal("commit durable before tau_DiskWrite")
	}
	s.Eng.Run(start + 15*sim.Millisecond)
	if durableAt != start+15*sim.Millisecond {
		t.Fatalf("commit durable at %v, want %v", durableAt, start+15*sim.Millisecond)
	}
	assertInv(t, m)
}

func TestQuiesceMakesCommitDurable(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	m := s.LM
	done := false
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Commit(1, func() { done = true })
	m.Quiesce()
	s.Eng.Run(sim.Second)
	if !done {
		t.Fatal("commit not durable after Quiesce")
	}
	assertInv(t, m)
}

func TestGroupCommitTimeout(t *testing.T) {
	s := testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{8, 8},
		GroupCommitTimeout: 50 * sim.Millisecond,
	})
	m := s.LM
	durableAt := sim.Time(-1)
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Commit(1, func() { durableAt = s.Eng.Now() })
	s.Eng.Run(sim.Second)
	want := 50*sim.Millisecond + 15*sim.Millisecond
	if durableAt != want {
		t.Fatalf("timeout commit durable at %v, want %v", durableAt, want)
	}
}

func TestFlushMakesRecordsGarbageAndRetiresTables(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	m := s.LM
	lsn := logrec.LSN(0)
	m.Begin(1)
	lsn = m.WriteData(1, 7, 100)
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(sim.Second) // commit durable at 15ms, flush 5ms later
	if v, ok := m.DB().Get(7); !ok || v.LSN != lsn {
		t.Fatalf("stable DB missing flushed update: %+v %v", v, ok)
	}
	st := m.Stats()
	if st.LOTEntries != 0 || st.LTTEntries != 0 {
		t.Fatalf("tables not empty after flush: LOT=%d LTT=%d", st.LOTEntries, st.LTTEntries)
	}
	for i, g := range st.Gens {
		if g.Cells != 0 {
			t.Fatalf("gen %d still tracks %d cells", i, g.Cells)
		}
	}
	assertInv(t, m)
}

func TestReadOnlyTransactionRetiresAtCommit(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	m := s.LM
	m.Begin(1)
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(sim.Second)
	if m.Stats().LTTEntries != 0 {
		t.Fatal("read-only transaction left an LTT entry")
	}
	assertInv(t, m)
}

func TestAbortDiscardsEverything(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	m := s.LM
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.WriteData(1, 8, 100)
	m.Abort(1)
	st := m.Stats()
	if st.LOTEntries != 0 || st.LTTEntries != 0 || st.Aborts != 1 {
		t.Fatalf("abort left state: %+v", st)
	}
	s.Eng.Run(sim.Second)
	if _, ok := m.DB().Get(7); ok {
		t.Fatal("aborted update reached the stable database")
	}
	assertInv(t, m)
}

func TestSameTxOverwriteSupersedes(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	m := s.LM
	m.Begin(1)
	first := m.WriteData(1, 7, 100)
	second := m.WriteData(1, 7, 100)
	if first == second {
		t.Fatal("LSNs not distinct")
	}
	assertInv(t, m)
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(sim.Second)
	if v, _ := m.DB().Get(7); v.LSN != second {
		t.Fatalf("stable version %d, want the later update %d", v.LSN, second)
	}
	assertInv(t, m)
}

func TestCrossTxSupersession(t *testing.T) {
	// Slow flushing (10 s) so tx1's committed update is still unflushed
	// when tx2 commits a newer version of the same object.
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}},
		FlushConfig{Drives: 1, Transfer: 10 * sim.Second, NumObjects: 1000})
	m := s.LM
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(100 * sim.Millisecond) // tx1 durable; flush still running
	assertInv(t, m)
	if m.Stats().LTTEntries != 1 {
		t.Fatal("tx1 should still have an LTT entry (unflushed update)")
	}
	m.Begin(2)
	lsn2 := m.WriteData(2, 7, 100)
	m.Commit(2, nil)
	m.Quiesce()
	s.Eng.Run(200 * sim.Millisecond)
	assertInv(t, m)
	// tx1's update was superseded: its record is garbage and its LTT entry
	// retired; only tx2 remains.
	st := m.Stats()
	if st.LTTEntries != 1 || st.LOTEntries != 1 {
		t.Fatalf("after supersession: LOT=%d LTT=%d, want 1/1", st.LOTEntries, st.LTTEntries)
	}
	s.Eng.Run(25 * sim.Second) // let the flush finish
	if v, _ := m.DB().Get(7); v.LSN != lsn2 {
		t.Fatalf("stable version %d, want superseding update %d", v.LSN, lsn2)
	}
	if st := m.Stats(); st.LTTEntries != 0 || st.LOTEntries != 0 {
		t.Fatalf("tables not empty at the end: %+v", st)
	}
	assertInv(t, m)
}

func TestForwardingToSecondGeneration(t *testing.T) {
	// Tiny generation 0 with one-record blocks: a long-lived transaction's
	// records must be forwarded rather than lost or killed.
	s := testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{4, 8},
		BlockPayload: 100,
	})
	m := s.LM
	m.Begin(1)
	for i := 0; i < 8; i++ {
		m.WriteData(1, logrec.OID(10+i), 84)
		s.Eng.Run(s.Eng.Now() + 20*sim.Millisecond)
		assertInv(t, m)
	}
	st := m.Stats()
	if st.Forwarded == 0 {
		t.Fatalf("no records forwarded: %+v", st)
	}
	if st.Killed != 0 {
		t.Fatalf("long transaction killed with ample gen-1 space: %+v", st)
	}
	if st.Gens[1].Cells == 0 {
		t.Fatal("generation 1 tracks no cells after forwarding")
	}
	if st.Gens[1].BlockWrites == 0 {
		t.Fatal("no block writes to generation 1")
	}
	// The transaction can still commit and flush out cleanly.
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(s.Eng.Now() + 5*sim.Second)
	if st := m.Stats(); st.LOTEntries != 0 || st.LTTEntries != 0 {
		t.Fatalf("tables not empty after commit+flush: %+v", st)
	}
	assertInv(t, m)
}

// churn issues n short transactions, each writing one distinct object then
// committing, advancing time dt between them.
func churn(s *Setup, startTid logrec.TxID, n int, size int, dt sim.Time) {
	for i := 0; i < n; i++ {
		tid := startTid + logrec.TxID(i)
		s.LM.Begin(tid)
		s.LM.WriteData(tid, logrec.OID(100+i), size)
		s.LM.Commit(tid, nil)
		s.Eng.Run(s.Eng.Now() + dt)
	}
}

func TestRecirculationKeepsLongTransactionAlive(t *testing.T) {
	// The flush drive (25 ms) is slower than the commit rate (one per
	// 20 ms), so committed-but-unflushed records back up, get forwarded
	// into generation 1 and drive its head around the ring — recirculating
	// the long transaction's records instead of killing it.
	s := testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{4, 5},
		BlockPayload: 100, Recirculate: true,
	}, FlushConfig{Drives: 1, Transfer: 25 * sim.Millisecond, NumObjects: 1000})
	m := s.LM
	killed := false
	m.SetKillHandler(func(logrec.TxID) { killed = true })
	m.Begin(1)
	m.WriteData(1, 7, 84)
	// Push plenty of short-lived traffic through both generations; the
	// long transaction's record must recirculate in generation 1.
	churn(s, 100, 120, 84, 20*sim.Millisecond)
	st := m.Stats()
	if st.Recirculated == 0 {
		t.Fatalf("nothing recirculated: %+v", st)
	}
	if killed || st.Killed != 0 {
		t.Fatalf("long transaction killed despite recirculation: %+v", st)
	}
	assertInv(t, m)
	committed := false
	m.Commit(1, func() { committed = true })
	m.Quiesce()
	s.Eng.Run(s.Eng.Now() + 5*sim.Second)
	if !committed {
		t.Fatal("long transaction failed to commit")
	}
	if v, ok := m.DB().Get(7); !ok || v.Val == 0 {
		t.Fatalf("long transaction's update missing from DB: %+v %v", v, ok)
	}
	assertInv(t, m)
}

func TestRecirculationOffKillsLongTransaction(t *testing.T) {
	s := testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{4, 4},
		BlockPayload: 100, Recirculate: false,
	}, FlushConfig{Drives: 1, Transfer: 25 * sim.Millisecond, NumObjects: 1000})
	m := s.LM
	var killedTid logrec.TxID
	m.SetKillHandler(func(tid logrec.TxID) { killedTid = tid })
	m.Begin(1)
	m.WriteData(1, 7, 84)
	churn(s, 100, 120, 84, 20*sim.Millisecond)
	if killedTid != 1 {
		t.Fatalf("long transaction not killed (killed=%d); stats: %+v", killedTid, m.Stats())
	}
	if m.Stats().Killed != 1 {
		t.Fatalf("kill count %d, want 1", m.Stats().Killed)
	}
	assertInv(t, m)
}

func TestFirewallKillsLongTransaction(t *testing.T) {
	s := testSetup(t, Params{
		Mode: ModeFirewall, GenSizes: []int{6},
		BlockPayload: 100,
	}, FlushConfig{Drives: 1, Transfer: sim.Millisecond, NumObjects: 1000})
	m := s.LM
	var killedTid logrec.TxID
	m.SetKillHandler(func(tid logrec.TxID) { killedTid = tid })
	m.Begin(1)
	m.WriteData(1, 7, 84)
	churn(s, 100, 60, 84, 20*sim.Millisecond)
	if killedTid != 1 {
		t.Fatalf("firewall did not kill the oldest active transaction: %+v", m.Stats())
	}
	assertInv(t, m)
}

func TestFirewallShortTransactionsNeverKilled(t *testing.T) {
	s := testSetup(t, Params{
		Mode: ModeFirewall, GenSizes: []int{6},
		BlockPayload: 100,
	}, FlushConfig{Drives: 1, Transfer: sim.Millisecond, NumObjects: 1000})
	m := s.LM
	churn(s, 100, 200, 84, 20*sim.Millisecond)
	st := m.Stats()
	if st.Killed != 0 {
		t.Fatalf("short transactions killed in FW: %+v", st)
	}
	if st.Commits == 0 {
		t.Fatal("nothing committed")
	}
	if st.Gens[0].BlockWrites == 0 {
		t.Fatal("no log writes")
	}
	assertInv(t, m)
}

func TestFirewallMemoryModel(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeFirewall, GenSizes: []int{16}})
	m := s.LM
	for tid := logrec.TxID(1); tid <= 5; tid++ {
		m.Begin(tid)
		m.WriteData(tid, logrec.OID(tid), 100)
	}
	st := m.Stats()
	if st.MemBytes != float64(5*MemPerTxFW) {
		t.Fatalf("FW memory %v, want %d", st.MemBytes, 5*MemPerTxFW)
	}
	// Commit durable => entries vanish in FW.
	for tid := logrec.TxID(1); tid <= 5; tid++ {
		m.Commit(tid, nil)
	}
	m.Quiesce()
	s.Eng.Run(sim.Second)
	if st := m.Stats(); st.MemBytes != 0 {
		t.Fatalf("FW memory %v after commits, want 0", st.MemBytes)
	}
	assertInv(t, m)
}

func TestEphemeralMemoryModel(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}},
		FlushConfig{Drives: 1, Transfer: 10 * sim.Second, NumObjects: 1000})
	m := s.LM
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.WriteData(1, 8, 100)
	// 1 LTT entry + 2 LOT entries.
	if got := m.Stats().MemBytes; got != float64(MemPerTxEL+2*MemPerObjEL) {
		t.Fatalf("EL memory %v, want %d", got, MemPerTxEL+2*MemPerObjEL)
	}
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(100 * sim.Millisecond)
	// Still unflushed: entries persist after commit in EL.
	if got := m.Stats().MemBytes; got != float64(MemPerTxEL+2*MemPerObjEL) {
		t.Fatalf("EL memory %v after commit (unflushed), want %d", got, MemPerTxEL+2*MemPerObjEL)
	}
	assertInv(t, m)
}

func TestBeginOfDuplicateTidPanics(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	s.LM.Begin(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Begin did not panic")
		}
	}()
	s.LM.Begin(1)
}

func TestWriteAfterCommitPanics(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	s.LM.Begin(1)
	s.LM.Commit(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("WriteData after Commit did not panic")
		}
	}()
	s.LM.WriteData(1, 7, 100)
}

func TestOversizeRecordPanics(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	s.LM.Begin(1)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize record did not panic")
		}
	}()
	s.LM.WriteData(1, 7, 4000)
}

func TestLifetimeHintPlacement(t *testing.T) {
	s := testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{8, 8},
		Recirculate:        true,
		HintBoundaries:     []sim.Time{2 * sim.Second},
		GroupCommitTimeout: 50 * sim.Millisecond,
	})
	m := s.LM
	m.BeginHinted(1, 10*sim.Second) // long: starts in generation 1
	m.WriteData(1, 7, 100)
	m.BeginHinted(2, sim.Second) // short: generation 0
	m.WriteData(2, 8, 100)
	st := m.Stats()
	if st.Gens[1].Cells != 2 { // BEGIN + data of tx 1
		t.Fatalf("gen 1 cells = %d, want 2 (hinted tx records)", st.Gens[1].Cells)
	}
	if st.Gens[0].Cells != 2 {
		t.Fatalf("gen 0 cells = %d, want 2", st.Gens[0].Cells)
	}
	done := 0
	m.Commit(1, func() { done++ })
	m.Commit(2, func() { done++ })
	s.Eng.Run(sim.Second)
	if done != 2 {
		t.Fatalf("hinted transactions durable: %d, want 2 (group-commit timeout)", done)
	}
	assertInv(t, m)
}

func TestStatsString(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{8, 8}})
	s.LM.Begin(1)
	s.LM.WriteData(1, 7, 100)
	s.LM.Commit(1, nil)
	s.LM.Quiesce()
	s.Eng.Run(sim.Second)
	out := s.LM.Stats().String()
	if len(out) == 0 {
		t.Fatal("empty stats report")
	}
	st := s.LM.Stats()
	if st.Insufficient() {
		t.Fatalf("healthy run reported insufficient: %s", out)
	}
}

func TestTracerCapturesLifecycle(t *testing.T) {
	s := testSetup(t, Params{Mode: ModeEphemeral, GenSizes: []int{4, 8}, BlockPayload: 100})
	ring := trace.NewRing(256)
	s.LM.SetTracer(ring)
	m := s.LM
	m.Begin(1)
	for i := 0; i < 6; i++ {
		m.WriteData(1, logrec.OID(10+i), 84)
		s.Eng.Run(s.Eng.Now() + 20*sim.Millisecond)
	}
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(s.Eng.Now() + 5*sim.Second)
	for _, k := range []trace.Kind{trace.EvAppend, trace.EvSeal, trace.EvDurable,
		trace.EvForward, trace.EvCommit, trace.EvFlush} {
		if ring.Count(k) == 0 {
			t.Fatalf("no %v events traced; dump:\n%s", k, ring.Dump(40))
		}
	}
	if ring.Count(trace.EvAppend) != 8 { // BEGIN + 6 data + COMMIT
		t.Fatalf("append events = %d, want 8", ring.Count(trace.EvAppend))
	}
	if ring.Dump(5) == "" {
		t.Fatal("empty dump")
	}
	m.SetTracer(nil) // detaching must be safe
	m.Begin(2)
	m.Abort(2)
}
