package core

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"ellog/internal/logrec"
	"ellog/internal/sim"
	"ellog/internal/statedb"
)

// soakConfig shapes one randomized run.
type soakConfig struct {
	seed       uint64
	mode       Mode
	genSizes   []int
	recirc     bool
	steal      bool
	broad      bool
	payload    int
	txCount    int
	maxWrites  int
	abortEvery int // 0 = never abort voluntarily
	transfer   sim.Time
}

// runSoak drives a manager with randomized begin/write/commit/abort
// traffic, checking invariants as it goes, then drains everything and
// verifies that the stable database exactly matches the oracle of durably
// committed updates. Killed transactions are excluded from the oracle.
func runSoak(t *testing.T, cfg soakConfig) Stats {
	t.Helper()
	eng := sim.NewEngine(cfg.seed, cfg.seed^0xdead)
	rng := rand.New(rand.NewPCG(cfg.seed, 77))
	s, err := NewSetup(eng, Params{
		Mode:            cfg.mode,
		GenSizes:        cfg.genSizes,
		Recirculate:     cfg.recirc,
		Steal:           cfg.steal,
		BroadNonGarbage: cfg.broad,
		BlockPayload: func() int {
			if cfg.payload == 0 {
				return 2000
			}
			return cfg.payload
		}(),
	}, FlushConfig{Drives: 2, Transfer: cfg.transfer, NumObjects: 1000})
	if err != nil {
		t.Fatal(err)
	}
	m := s.LM

	type txInfo struct {
		writes map[logrec.OID]logrec.LSN
		alive  bool
		done   bool
	}
	txs := map[logrec.TxID]*txInfo{}
	oracle := map[logrec.OID]logrec.LSN{} // latest durably committed LSN per oid
	heldOids := map[logrec.OID]logrec.TxID{}

	m.SetKillHandler(func(tid logrec.TxID) {
		info := txs[tid]
		info.alive = false
		for oid := range info.writes {
			if heldOids[oid] == tid {
				delete(heldOids, oid)
			}
		}
	})

	var live []logrec.TxID
	nextTid := logrec.TxID(1)
	for i := 0; i < cfg.txCount; i++ {
		// Maybe begin a new transaction.
		if len(live) < 6 || rng.IntN(2) == 0 {
			tid := nextTid
			nextTid++
			txs[tid] = &txInfo{writes: map[logrec.OID]logrec.LSN{}, alive: true}
			m.Begin(tid)
			live = append(live, tid)
		}
		// Random writes by random live transactions.
		for w := 0; w < rng.IntN(cfg.maxWrites+1); w++ {
			if len(live) == 0 {
				break
			}
			tid := live[rng.IntN(len(live))]
			info := txs[tid]
			if !info.alive {
				continue
			}
			oid := logrec.OID(rng.IntN(200))
			if holder, held := heldOids[oid]; held && holder != tid {
				continue // the paper's oid draw: unique among active txs
			}
			size := 20 + rng.IntN(60)
			lsn := m.WriteData(tid, oid, size)
			info.writes[oid] = lsn
			heldOids[oid] = tid
		}
		// Maybe finish the oldest live transaction.
		if len(live) > 0 && rng.IntN(3) == 0 {
			tid := live[0]
			live = live[1:]
			info := txs[tid]
			if info.alive {
				if cfg.abortEvery > 0 && rng.IntN(cfg.abortEvery) == 0 {
					m.Abort(tid)
					info.alive = false
					for oid := range info.writes {
						if heldOids[oid] == tid {
							delete(heldOids, oid)
						}
					}
				} else {
					writes := info.writes
					localTid := tid
					m.Commit(tid, func() {
						txs[localTid].done = true
						for oid, lsn := range writes {
							if oracle[oid] < lsn {
								oracle[oid] = lsn
							}
							if heldOids[oid] == localTid {
								delete(heldOids, oid)
							}
						}
					})
				}
			}
		}
		eng.Run(eng.Now() + sim.Time(rng.IntN(30))*sim.Millisecond)
		if i%25 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", cfg.seed, i, err)
			}
		}
	}
	// Finish every remaining live transaction, drain all buffers and
	// flushes.
	for _, tid := range live {
		info := txs[tid]
		if !info.alive {
			continue
		}
		writes := info.writes
		localTid := tid
		m.Commit(tid, func() {
			txs[localTid].done = true
			for oid, lsn := range writes {
				if oracle[oid] < lsn {
					oracle[oid] = lsn
				}
			}
		})
	}
	m.Quiesce()
	eng.Run(eng.Now() + 30*sim.Second)
	m.Quiesce() // anything recirculated meanwhile
	eng.Run(eng.Now() + 30*sim.Second)

	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("seed %d final: %v", cfg.seed, err)
	}
	st := m.Stats()
	// After draining, no non-garbage records may remain.
	if st.LOTEntries != 0 || st.LTTEntries != 0 {
		t.Fatalf("seed %d: tables not drained: LOT=%d LTT=%d\n%s", cfg.seed, st.LOTEntries, st.LTTEntries, st)
	}
	for i, g := range st.Gens {
		if g.Cells != 0 {
			t.Fatalf("seed %d: gen %d still has %d cells", cfg.seed, i, g.Cells)
		}
	}
	// The stable database must now hold exactly the oracle state.
	for oid, lsn := range oracle {
		v, ok := m.DB().Get(oid)
		if !ok || v.LSN < lsn {
			t.Fatalf("seed %d: oid %d stable LSN %d, oracle %d (ok=%v)", cfg.seed, oid, v.LSN, lsn, ok)
		}
	}
	// And nothing beyond it (killed/aborted updates must not leak).
	var leak error
	m.DB().Range(func(oid logrec.OID, v statedb.Version) bool {
		if oracle[oid] != v.LSN {
			leak = fmt.Errorf("oid %d stable LSN %d, oracle %d", oid, v.LSN, oracle[oid])
			return false
		}
		return true
	})
	if leak != nil {
		t.Fatalf("seed %d: uncommitted state leaked: %v", cfg.seed, leak)
	}
	return st
}

func TestSoakEphemeralRecirc(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		st := runSoak(t, soakConfig{
			seed: seed, mode: ModeEphemeral,
			genSizes: []int{6, 6}, recirc: true,
			payload: 300, txCount: 300, maxWrites: 3,
			abortEvery: 8, transfer: 10 * sim.Millisecond,
		})
		if st.Killed > 0 {
			// Kills are legal under pressure, but the oracle already
			// excludes them; nothing more to assert.
			t.Logf("seed %d: %d kills under pressure", seed, st.Killed)
		}
	}
}

func TestSoakEphemeralNoRecirc(t *testing.T) {
	for seed := uint64(10); seed <= 14; seed++ {
		runSoak(t, soakConfig{
			seed: seed, mode: ModeEphemeral,
			genSizes: []int{6, 8}, recirc: false,
			payload: 300, txCount: 250, maxWrites: 3,
			abortEvery: 10, transfer: 8 * sim.Millisecond,
		})
	}
}

func TestSoakEphemeralThreeGenerations(t *testing.T) {
	for seed := uint64(20); seed <= 23; seed++ {
		runSoak(t, soakConfig{
			seed: seed, mode: ModeEphemeral,
			genSizes: []int{5, 5, 6}, recirc: true,
			payload: 250, txCount: 250, maxWrites: 2,
			abortEvery: 12, transfer: 10 * sim.Millisecond,
		})
	}
}

func TestSoakTinyGenerationsUnderPressure(t *testing.T) {
	// Deliberately undersized: kills and emergency growth are expected;
	// the point is that invariants and oracle equality hold regardless.
	for seed := uint64(30); seed <= 34; seed++ {
		runSoak(t, soakConfig{
			seed: seed, mode: ModeEphemeral,
			genSizes: []int{4, 4}, recirc: true,
			payload: 150, txCount: 200, maxWrites: 4,
			abortEvery: 0, transfer: 40 * sim.Millisecond,
		})
	}
}
