package core

import "ellog/internal/blockdev"

// LogDevice is the write-only block store the logging manager appends to —
// exactly the slice of the device surface the paper's model needs: allocate
// a block for a generation, issue an asynchronous whole-block write whose
// completion callback delivers durability (or a transient error for the
// retry path), and report aggregate write counters.
//
// *blockdev.Device is the simulated implementation (15 ms fixed-latency
// writes on the simulation clock); internal/realdev.Device binds the same
// manager to a real file with group-committed, fsync-backed writes. The
// completion contract is shared: done fires once, on the manager's loop,
// after the bytes are durable (or have failed), and writes to one block
// never overlap.
type LogDevice interface {
	Alloc(gen int) blockdev.BlockID
	Write(id blockdev.BlockID, data []byte, done func(err error))
	Stats() blockdev.Stats
}

var _ LogDevice = (*blockdev.Device)(nil)
