package core

import (
	"testing"

	"ellog/internal/logrec"
	"ellog/internal/sim"
)

func stealSetup(t *testing.T) *Setup {
	t.Helper()
	return testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{8, 8}, Steal: true,
	}, FlushConfig{Drives: 1, Transfer: 5 * sim.Millisecond, NumObjects: 1000})
}

func TestStealRequiresEL(t *testing.T) {
	p := Params{Mode: ModeFirewall, GenSizes: []int{8}, Steal: true}.WithDefaults()
	if err := p.Validate(); err == nil {
		t.Fatal("steal accepted in FW mode")
	}
}

func TestStealFlushesUncommittedAfterDurability(t *testing.T) {
	s := stealSetup(t)
	m := s.LM
	m.Begin(1)
	lsn := m.WriteData(1, 7, 100)
	// The record sits in an unsealed buffer: the write-ahead rule forbids
	// stealing it yet.
	s.Eng.Run(sim.Second)
	if _, ok := m.DB().Get(7); ok {
		t.Fatal("uncommitted update reached the DB before its record was durable")
	}
	// Seal, let the write and the stolen flush land.
	m.Quiesce()
	s.Eng.Run(2 * sim.Second)
	v, ok := m.DB().Get(7)
	if !ok || v.LSN != lsn {
		t.Fatalf("stolen flush missing: %+v %v", v, ok)
	}
	if !v.Stolen || v.Tx != 1 {
		t.Fatalf("stolen version not marked: %+v", v)
	}
	// The record must still be non-garbage (it carries the undo info).
	if m.Stats().LOTEntries != 1 {
		t.Fatal("stolen record's LOT entry vanished before commit")
	}
	assertInv(t, m)
}

func TestStealAbortRevertsFlushedUpdate(t *testing.T) {
	s := stealSetup(t)
	m := s.LM
	// Establish a committed base version first.
	m.Begin(1)
	base := m.WriteData(1, 7, 100)
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(sim.Second)

	m.Begin(2)
	m.WriteData(2, 7, 100)
	m.Quiesce()
	s.Eng.Run(2 * sim.Second) // stolen flush lands
	if v, _ := m.DB().Get(7); !v.Stolen {
		t.Fatalf("precondition: version not stolen: %+v", v)
	}
	m.Abort(2)
	v, ok := m.DB().Get(7)
	if !ok || v.LSN != base || v.Stolen {
		t.Fatalf("abort did not revert to base version %d: %+v", base, v)
	}
	s.Eng.Run(s.Eng.Now() + sim.Second)
	if st := m.Stats(); st.LOTEntries != 0 || st.LTTEntries != 0 {
		t.Fatalf("residue after abort: %+v", st)
	}
	assertInv(t, m)
}

func TestStealAbortRevertsToNothingWhenNoBase(t *testing.T) {
	s := stealSetup(t)
	m := s.LM
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Quiesce()
	s.Eng.Run(2 * sim.Second)
	if _, ok := m.DB().Get(7); !ok {
		t.Fatal("precondition: stolen flush missing")
	}
	m.Abort(1)
	if _, ok := m.DB().Get(7); ok {
		t.Fatal("object with no committed history still present after abort")
	}
	assertInv(t, m)
}

func TestStealCommitCleansMarker(t *testing.T) {
	s := stealSetup(t)
	m := s.LM
	m.Begin(1)
	lsn := m.WriteData(1, 7, 100)
	m.Quiesce()
	s.Eng.Run(2 * sim.Second) // stolen flush lands
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(s.Eng.Now() + 2*sim.Second)
	v, ok := m.DB().Get(7)
	if !ok || v.LSN != lsn {
		t.Fatalf("committed version missing: %+v %v", v, ok)
	}
	if v.Stolen {
		t.Fatalf("stolen marker not cleaned after commit: %+v", v)
	}
	if st := m.Stats(); st.LOTEntries != 0 || st.LTTEntries != 0 {
		t.Fatalf("record not retired after clean: %+v", st)
	}
	assertInv(t, m)
}

func TestStealAbortWithFlushInService(t *testing.T) {
	// Slow drive: abort lands while the stolen flush is in service; the
	// completion must be rolled back on arrival.
	s := testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{8, 8}, Steal: true,
	}, FlushConfig{Drives: 1, Transfer: 500 * sim.Millisecond, NumObjects: 1000})
	m := s.LM
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Quiesce()
	s.Eng.Run(100 * sim.Millisecond) // record durable; flush in service
	m.Abort(1)
	if _, ok := m.DB().Get(7); ok {
		t.Fatal("DB already has the in-service value")
	}
	s.Eng.Run(2 * sim.Second) // flush completes, revert fires
	if _, ok := m.DB().Get(7); ok {
		t.Fatalf("in-service stolen flush not rolled back: %+v", mustGet(t, m, 7))
	}
	assertInv(t, m)
}

func mustGet(t *testing.T, m *Manager, oid logrec.OID) any {
	t.Helper()
	v, _ := m.DB().Get(oid)
	return v
}

func TestStealSameTxOverwrite(t *testing.T) {
	s := stealSetup(t)
	m := s.LM
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Quiesce()
	s.Eng.Run(2 * sim.Second) // first update stolen
	second := m.WriteData(1, 7, 100)
	m.Quiesce()
	s.Eng.Run(s.Eng.Now() + 2*sim.Second)
	m.Abort(1)
	// Both updates must vanish: the before-image chain points to "no
	// committed state".
	if _, ok := m.DB().Get(7); ok {
		t.Fatalf("overwritten stolen update survived abort: %+v", mustGet(t, m, 7))
	}
	_ = second
	assertInv(t, m)
}

// TestStealSoak runs randomized traffic with steal on, including aborts,
// and requires the drained database to match the committed oracle exactly.
func TestStealSoak(t *testing.T) {
	for seed := uint64(40); seed <= 45; seed++ {
		runSoak(t, soakConfig{
			seed: seed, mode: ModeEphemeral,
			genSizes: []int{6, 8}, recirc: true, steal: true,
			payload: 300, txCount: 300, maxWrites: 3,
			abortEvery: 5, transfer: 15 * sim.Millisecond,
		})
	}
}

// --- BroadNonGarbage (no per-object version timestamps, paper section 6) ---

func TestBroadNonGarbageRetainsSupersededUntilFlush(t *testing.T) {
	// Slow flush so the first committed version is still unflushed when
	// the second commits.
	s := testSetup(t, Params{
		Mode: ModeEphemeral, GenSizes: []int{8, 8}, BroadNonGarbage: true,
	}, FlushConfig{Drives: 1, Transfer: 2 * sim.Second, NumObjects: 1000})
	m := s.LM
	m.Begin(1)
	m.WriteData(1, 7, 100)
	m.Commit(1, nil)
	m.Quiesce()
	s.Eng.Run(100 * sim.Millisecond)
	m.Begin(2)
	lsn2 := m.WriteData(2, 7, 100)
	m.Commit(2, nil)
	m.Quiesce()
	s.Eng.Run(200 * sim.Millisecond)
	assertInv(t, m)
	// Both transactions' entries and both records must still be live: the
	// superseded version cannot become garbage before the new one flushes.
	st := m.Stats()
	if st.LTTEntries != 2 {
		t.Fatalf("LTT entries = %d, want 2 (superseded version retained)", st.LTTEntries)
	}
	live := 0
	for _, g := range st.Gens {
		live += g.Cells
	}
	if live < 4 { // 2 data records + 2 commit records
		t.Fatalf("only %d live cells; superseded record was dropped", live)
	}
	// Once the newest version flushes, the whole chain clears.
	s.Eng.Run(10 * sim.Second)
	if st := m.Stats(); st.LOTEntries != 0 || st.LTTEntries != 0 {
		t.Fatalf("chain did not clear after flush: %+v", st)
	}
	if v, _ := m.DB().Get(7); v.LSN != lsn2 {
		t.Fatalf("DB has %d, want newest %d", v.LSN, lsn2)
	}
	assertInv(t, m)
}

func TestBroadNonGarbageVsDefault(t *testing.T) {
	// A hot-object workload: without version timestamps the log must carry
	// superseded chains, so more records stay live.
	run := func(broad bool) (liveAvg uint64, st Stats) {
		s := testSetup(t, Params{
			Mode: ModeEphemeral, GenSizes: []int{12, 12}, BroadNonGarbage: broad,
		}, FlushConfig{Drives: 1, Transfer: 100 * sim.Millisecond, NumObjects: 1000})
		m := s.LM
		for i := 0; i < 200; i++ {
			tid := logrec.TxID(1 + i)
			m.Begin(tid)
			m.WriteData(tid, logrec.OID(i%5), 100) // 5 hot objects
			m.Commit(tid, nil)
			s.Eng.Run(s.Eng.Now() + 30*sim.Millisecond)
			if i%50 == 0 {
				assertInv(t, m)
			}
		}
		st = m.Stats()
		live := uint64(0)
		for _, g := range st.Gens {
			live += uint64(g.Cells)
		}
		return live, st
	}
	liveDefault, _ := run(false)
	liveBroad, stB := run(true)
	if liveBroad <= liveDefault {
		t.Fatalf("broad non-garbage retained no extra records: %d vs %d", liveBroad, liveDefault)
	}
	if stB.Killed > 0 {
		t.Fatalf("broad mode killed transactions at generous sizes: %+v", stB)
	}
}

func TestBroadNonGarbageSoak(t *testing.T) {
	for seed := uint64(50); seed <= 53; seed++ {
		runSoak(t, soakConfig{
			seed: seed, mode: ModeEphemeral,
			genSizes: []int{6, 8}, recirc: true, broad: true,
			payload: 300, txCount: 250, maxWrites: 3,
			abortEvery: 8, transfer: 25 * sim.Millisecond,
		})
	}
}
