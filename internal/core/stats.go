package core

import (
	"fmt"
	"strings"

	"ellog/internal/flushdisk"
	"ellog/internal/sim"
)

// GenStats describes one generation at reporting time.
type GenStats struct {
	Size        int     // configured capacity in blocks
	Used        int     // blocks occupied right now
	UsedPeak    float64 // peak occupancy
	BlockWrites uint64  // completed block writes to this generation
	Bandwidth   float64 // block writes per second
	Cells       int     // non-garbage records tracked
}

// Stats is a snapshot of everything the paper measures: disk space, disk
// bandwidth to the log (block writes per second), main memory for the LOT
// and LTT, flush behaviour, and the kill count that defines whether a disk
// budget was sufficient.
type Stats struct {
	Mode    Mode
	Elapsed sim.Time

	Begins, Commits, Aborts, Killed uint64

	AppendedRecs  uint64 // records entering the log (excluding moves)
	AppendedBytes uint64
	Forwarded     uint64 // records moved to an older generation
	Recirculated  uint64 // records recirculated in the last generation
	Garbage       uint64 // records that became garbage

	Gens           []GenStats
	TotalBlocks    int     // configured disk space for the log
	TotalWrites    uint64  // block writes across all generations
	TotalBandwidth float64 // block writes per second, whole log

	LOTEntries, LTTEntries int
	MemBytes               float64 // current LOT+LTT memory (paper's model)
	MemPeakBytes           float64
	MemAvgBytes            float64
	LOTPeak, LTTPeak       float64

	CommitDelayMean float64 // seconds from COMMIT append to durability
	CommitDelayP99  float64

	Flush flushdisk.Stats

	DBApplies uint64

	// Health: non-zero values mean the configuration could not sustain the
	// workload within its disk budget.
	EmergencyBlocks uint64
	BufferStalls    uint64
	RefugeeStalls   uint64

	// Fault injection (always zero in the fault-free model).
	WriteErrors     uint64 // block-write attempts that returned a transient error
	WriteRetries    uint64 // reissues of failed block writes
	AbandonedWrites uint64 // blocks given up on after exhausting the retry budget
}

// Insufficient reports whether this run exceeded its disk budget: some
// transaction was killed or the manager had to conjure emergency blocks.
// The paper's minimum-space experiments "continued to run simulations and
// reduce the disk space until we observed transactions being killed".
func (s Stats) Insufficient() bool {
	return s.Killed > 0 || s.EmergencyBlocks > 0 || s.RefugeeStalls > 0
}

// Stats captures a snapshot at the current simulated time.
func (m *Manager) Stats() Stats {
	now := m.now()
	devStats := m.dev.Stats()
	s := Stats{
		Mode:    m.p.Mode,
		Elapsed: now,

		Begins:  m.begins.Count(),
		Commits: m.commits.Count(),
		Aborts:  m.aborts.Count(),
		Killed:  m.killedTxs.Count(),

		AppendedRecs:  m.appendedRecs.Count(),
		AppendedBytes: m.appendedBytes.Count(),
		Forwarded:     m.forwardedRecs.Count(),
		Recirculated:  m.recircRecs.Count(),
		Garbage:       m.garbaged.Count(),

		TotalWrites: devStats.Writes,

		LOTEntries:   m.lot.Len(),
		LTTEntries:   m.ltt.Len(),
		MemBytes:     m.memGauge.Value(),
		MemPeakBytes: m.memGauge.Peak(),
		MemAvgBytes:  m.memGauge.TimeAvg(now),
		LOTPeak:      m.lotGauge.Peak(),
		LTTPeak:      m.lttGauge.Peak(),

		CommitDelayMean: m.commitDelay.Mean(),
		CommitDelayP99:  m.commitDelay.Quantile(0.99),

		Flush:     m.flush.Stats(now),
		DBApplies: m.db.Applies(),

		EmergencyBlocks: m.emergencyBlocks.Count(),
		BufferStalls:    m.bufferStalls.Count(),
		RefugeeStalls:   m.refugeeStalls.Count(),

		WriteErrors:     m.writeErrors.Count(),
		WriteRetries:    m.writeRetries.Count(),
		AbandonedWrites: m.abandonedWrites.Count(),
	}
	for i, g := range m.gens {
		gs := GenStats{
			Size:        g.size(),
			Used:        g.used,
			UsedPeak:    m.usedGauges[i].Peak(),
			BlockWrites: devStats.WritesPerGen[i],
			Cells:       g.list.len(),
		}
		if now > 0 {
			gs.Bandwidth = float64(gs.BlockWrites) / now.Seconds()
		}
		s.Gens = append(s.Gens, gs)
		s.TotalBlocks += gs.Size
	}
	if now > 0 {
		s.TotalBandwidth = float64(s.TotalWrites) / now.Seconds()
	}
	return s
}

// --- probe accessors ---------------------------------------------------
//
// Cheap O(1) reads for the observability sampler. Stats() allocates (it
// copies device maps and builds slices), which is too heavy to call once
// per sample tick; these read single fields instead.

// GenUsed reports the blocks currently occupied in generation i.
func (m *Manager) GenUsed(i int) int { return m.gens[i].used }

// GenLiveCells reports the non-garbage records tracked in generation i.
func (m *Manager) GenLiveCells(i int) int { return m.gens[i].list.len() }

// LOTLen reports the current log object table occupancy.
func (m *Manager) LOTLen() int { return m.lot.Len() }

// LTTLen reports the current log transaction table occupancy.
func (m *Manager) LTTLen() int { return m.ltt.Len() }

// MemBytes reports the paper-model main memory in use right now
// (MemPerTx per LTT entry plus MemPerObj per LOT entry).
func (m *Manager) MemBytes() float64 { return m.memGauge.Value() }

// Insufficient reports whether the run has exceeded its disk budget so
// far, reading the three health counters directly — the cheap form of
// Stats().Insufficient() for callers that need only the bool.
func (m *Manager) Insufficient() bool {
	return m.killedTxs.Count() > 0 || m.emergencyBlocks.Count() > 0 || m.refugeeStalls.Count() > 0
}

// CommitCount reports committed transactions so far.
func (m *Manager) CommitCount() uint64 { return m.commits.Count() }

// AppendedByteCount reports logical bytes appended to the log so far.
func (m *Manager) AppendedByteCount() uint64 { return m.appendedBytes.Count() }

// WriteRetryCount reports reissued block writes so far.
func (m *Manager) WriteRetryCount() uint64 { return m.writeRetries.Count() }

// KilledCount reports transactions killed for log space so far.
func (m *Manager) KilledCount() uint64 { return m.killedTxs.Count() }

// TotalBlocks reports the configured disk space for the whole log right
// now (generation sizes move under the adaptive controller).
func (m *Manager) TotalBlocks() int {
	total := 0
	for i := range m.gens {
		total += m.gens[i].size()
	}
	return total
}

// String renders a compact human-readable report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s after %v: %d begun, %d committed, %d aborted, %d killed\n",
		s.Mode, s.Elapsed, s.Begins, s.Commits, s.Aborts, s.Killed)
	fmt.Fprintf(&b, "  log: %d blocks total, %.2f writes/s (%d writes), %d recs in, %d forwarded, %d recirculated\n",
		s.TotalBlocks, s.TotalBandwidth, s.TotalWrites, s.AppendedRecs, s.Forwarded, s.Recirculated)
	for i, g := range s.Gens {
		fmt.Fprintf(&b, "  gen %d: %d blocks (peak used %.0f), %.2f writes/s, %d live records\n",
			i, g.Size, g.UsedPeak, g.Bandwidth, g.Cells)
	}
	fmt.Fprintf(&b, "  memory: %.0f B now, %.0f B peak (LOT peak %.0f, LTT peak %.0f)\n",
		s.MemBytes, s.MemPeakBytes, s.LOTPeak, s.LTTPeak)
	fmt.Fprintf(&b, "  commit delay: mean %.1f ms, p99 %.1f ms\n", s.CommitDelayMean*1e3, s.CommitDelayP99*1e3)
	fmt.Fprintf(&b, "  flush: %d done (%d forced), avg oid distance %.0f, busy %.0f%%, backlog peak %d\n",
		s.Flush.Flushes, s.Flush.Forced, s.Flush.AvgDistance, s.Flush.BusyFrac*100, s.Flush.MaxPending)
	if s.WriteErrors > 0 || s.AbandonedWrites > 0 {
		fmt.Fprintf(&b, "  faults: %d write errors, %d retries, %d writes abandoned\n",
			s.WriteErrors, s.WriteRetries, s.AbandonedWrites)
	}
	if s.Insufficient() {
		fmt.Fprintf(&b, "  INSUFFICIENT SPACE: killed=%d emergency=%d refugeeStalls=%d\n",
			s.Killed, s.EmergencyBlocks, s.RefugeeStalls)
	}
	return b.String()
}
