package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"ellog/internal/logrec"
)

func mkCell(lsn logrec.LSN) *cell {
	return &cell{rec: logrec.NewDataRecord(lsn, 0, 1, logrec.OID(lsn), 10), tx: &lttEntry{}}
}

func TestCellListPushAndOrder(t *testing.T) {
	var l cellList
	if l.oldest() != nil || l.len() != 0 {
		t.Fatal("empty list not empty")
	}
	a, b, c := mkCell(1), mkCell(2), mkCell(3)
	l.pushNewest(a)
	if l.oldest() != a || a.left != a || a.right != a {
		t.Fatal("single-cell list not self-linked")
	}
	l.pushNewest(b)
	l.pushNewest(c)
	if l.len() != 3 || l.oldest() != a {
		t.Fatalf("len=%d oldest=%v", l.len(), l.oldest())
	}
	// The paper's tail access: the newest cell is h.right.
	if l.oldest().right != c {
		t.Fatal("h.right is not the newest cell")
	}
	// Oldest-first walk sees insertion order.
	var seen []logrec.LSN
	l.walkOldestFirst(func(x *cell) bool { seen = append(seen, x.rec.LSN); return true })
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 2 || seen[2] != 3 {
		t.Fatalf("walk order %v", seen)
	}
}

func TestCellListRemoveHeadAdvances(t *testing.T) {
	var l cellList
	a, b, c := mkCell(1), mkCell(2), mkCell(3)
	l.pushNewest(a)
	l.pushNewest(b)
	l.pushNewest(c)
	l.remove(a)
	if l.oldest() != b || l.len() != 2 {
		t.Fatalf("after removing oldest: h=%v len=%d", l.oldest().rec, l.len())
	}
	l.remove(c)
	if l.oldest() != b || b.left != b || b.right != b {
		t.Fatal("single survivor not self-linked")
	}
	l.remove(b)
	if l.oldest() != nil || l.len() != 0 {
		t.Fatal("list not empty after removing all")
	}
}

func TestCellListRemoveMiddle(t *testing.T) {
	var l cellList
	cells := make([]*cell, 5)
	for i := range cells {
		cells[i] = mkCell(logrec.LSN(i + 1))
		l.pushNewest(cells[i])
	}
	l.remove(cells[2])
	var seen []logrec.LSN
	l.walkOldestFirst(func(x *cell) bool { seen = append(seen, x.rec.LSN); return true })
	want := []logrec.LSN{1, 2, 4, 5}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("walk after middle removal: %v", seen)
		}
	}
}

func TestCellListDoublePushPanics(t *testing.T) {
	var l cellList
	a := mkCell(1)
	l.pushNewest(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double push did not panic")
		}
	}()
	l.pushNewest(a)
}

func TestCellListRemoveUnlinkedPanics(t *testing.T) {
	var l cellList
	defer func() {
		if recover() == nil {
			t.Fatal("removing unlinked cell did not panic")
		}
	}()
	l.remove(mkCell(1))
}

func TestOldestInSlot(t *testing.T) {
	var l cellList
	s1, s2 := &slot{}, &slot{}
	a, b, c, d := mkCell(1), mkCell(2), mkCell(3), mkCell(4)
	a.slot, b.slot, c.slot, d.slot = s1, s1, s2, s2
	for _, x := range []*cell{a, b, c, d} {
		l.pushNewest(x)
	}
	got := l.oldestInSlot(s1, nil)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("oldestInSlot(s1) = %v", got)
	}
	// s2's cells are not at the old end, so the head-side scan sees none.
	if got := l.oldestInSlot(s2, nil); len(got) != 0 {
		t.Fatalf("oldestInSlot(s2) = %d cells, want 0 (not at head)", len(got))
	}
	l.remove(a)
	l.remove(b)
	if got := l.oldestInSlot(s2, nil); len(got) != 2 {
		t.Fatalf("oldestInSlot(s2) after s1 drained = %d cells, want 2", len(got))
	}
}

// TestCellListRandomOps cross-checks the circular list against a slice
// model under random push/remove traffic.
func TestCellListRandomOps(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		var l cellList
		var model []*cell
		next := logrec.LSN(1)
		for op := 0; op < 400; op++ {
			if len(model) == 0 || rng.IntN(2) == 0 {
				c := mkCell(next)
				next++
				l.pushNewest(c)
				model = append(model, c)
			} else {
				i := rng.IntN(len(model))
				l.remove(model[i])
				model = append(model[:i], model[i+1:]...)
			}
			if l.len() != len(model) {
				return false
			}
			if len(model) > 0 && l.oldest() != model[0] {
				return false
			}
			// Full walk matches the model.
			j := 0
			ok := true
			l.walkOldestFirst(func(x *cell) bool {
				if j >= len(model) || model[j] != x {
					ok = false
					return false
				}
				j++
				return true
			})
			if !ok || j != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
