package core

import (
	"fmt"

	"ellog/internal/blockdev"
	"ellog/internal/logrec"
	"ellog/internal/sim"
)

// slotState tracks one block position in a generation's circular array.
type slotState uint8

const (
	slotFree slotState = iota
	slotFilling
	slotInFlight
	slotDurable
)

func (s slotState) String() string {
	switch s {
	case slotFree:
		return "free"
	case slotFilling:
		return "filling"
	case slotInFlight:
		return "in-flight"
	case slotDurable:
		return "durable"
	default:
		return fmt.Sprintf("slotState(%d)", uint8(s))
	}
}

// slot is one block position in a generation. Slots are reused cyclically;
// the underlying device block keeps its stale bytes until physically
// rewritten, which is what makes lazy recirculation buffers safe.
type slot struct {
	id    blockdev.BlockID
	state slotState
	// refugees counts records drained out of this slot into a buffer that
	// is not yet durable. While positive, the slot's old contents are the
	// only durable copy and the slot must not be rewritten (section 2.2:
	// "the existing copies of these records will not be overwritten until
	// after the tail has advanced").
	refugees int
}

// buffer assembles records destined for one block write. Generation 0's
// current buffer receives new log records; forwarding and recirculation
// fill buffers destined for an older generation's tail. A recirculation
// buffer may be slotless (slot == nil) until it is about to be written —
// the paper's lazy recirculation (section 2.2).
type buffer struct {
	slot    *slot
	free    int
	recs    []*logrec.Record
	cells   []*cell     // cells for recs that are still non-garbage at seal time
	origins []*slot     // refugee accounting: one entry per drained record
	commits []*lttEntry // transactions whose COMMIT record rides in this buffer
	sealed  bool
	epoch   uint64 // bumped on recycle; guards stale group-commit timeouts
}

// generation is one fixed-size queue of the log chain: a circular array of
// block slots with head and tail pointers that rotate through it, plus the
// circular cell list tracking its non-garbage records.
type generation struct {
	idx  int
	ring []*slot
	head int // ring index of the oldest occupied slot
	tail int // ring index of the next slot to claim
	used int // occupied slots (filling + in-flight + durable)

	list cellList
	fill *buffer // current fill buffer, nil if none (always slotted)

	// epoch pressure counters for the adaptive controller
	epochPeakUsed int
	epochPeakSpan int
	epochKills    uint64
	epochEmerg    uint64
	epochIn       uint64 // records entering this generation
	epochOut      uint64 // records forwarded out to the next generation
	epochClaims   uint64 // blocks claimed (the fill rate signal)
	// epochAges histograms the residence time of records that became
	// garbage in this generation, in ageBucket-wide buckets with the last
	// bucket as overflow. The adaptive controller sizes a generation from
	// a high quantile of this distribution times the fill rate.
	epochAges [ageBuckets]uint32
	// pend is the slotless recirculation buffer of the last generation:
	// records drained from the head waiting to be written at the tail.
	pend *buffer

	tokens int // free block buffers
}

func newGeneration(idx, size int, dev LogDevice, tokens int) *generation {
	g := &generation{idx: idx, tokens: tokens}
	for i := 0; i < size; i++ {
		g.ring = append(g.ring, &slot{id: dev.Alloc(idx)})
	}
	return g
}

// free returns the number of unoccupied slots.
func (g *generation) freeSlots() int { return len(g.ring) - g.used }

// headSlot returns the oldest occupied slot, or nil if empty.
func (g *generation) headSlot() *slot {
	if g.used == 0 {
		return nil
	}
	return g.ring[g.head]
}

// claimSlot takes the slot at the tail. The caller must have ensured space.
func (g *generation) claimSlot() *slot {
	s := g.ring[g.tail]
	if s.state != slotFree {
		panic(fmt.Sprintf("core: gen %d claiming non-free slot (%v)", g.idx, s.state))
	}
	g.tail = (g.tail + 1) % len(g.ring)
	g.used++
	g.epochClaims++
	if g.used > g.epochPeakUsed {
		g.epochPeakUsed = g.used
	}
	return s
}

// freeHeadSlot releases the current head slot and advances the head.
func (g *generation) freeHeadSlot() {
	s := g.ring[g.head]
	if s.state != slotDurable {
		panic(fmt.Sprintf("core: gen %d freeing %v head slot", g.idx, s.state))
	}
	s.state = slotFree
	g.head = (g.head + 1) % len(g.ring)
	g.used--
}

// grow inserts additional free slots at the tail insertion point. Used
// only by the adaptive-sizing extension and the emergency overflow path;
// the paper's experiments run with fixed sizes.
func (g *generation) grow(dev LogDevice, n int) {
	for i := 0; i < n; i++ {
		s := &slot{id: dev.Alloc(g.idx)}
		// Insert at the tail index: the free region starts there, so the
		// occupied region [head, tail) is untouched.
		g.ring = append(g.ring, nil)
		copy(g.ring[g.tail+1:], g.ring[g.tail:])
		g.ring[g.tail] = s
		if g.head >= g.tail && g.used > 0 {
			g.head++ // occupied region wraps; head sat at or past the insertion point
		}
	}
}

// shrinkable reports how many slots could be removed while keeping the
// occupied region plus the threshold gap intact.
func (g *generation) shrinkable(k int) int {
	n := g.freeSlots() - k - 1
	if n < 0 {
		return 0
	}
	return n
}

// shrink removes up to n free slots from the end of the free region (just
// before the head), returning how many were removed.
func (g *generation) shrink(n, k int) int {
	can := g.shrinkable(k)
	if n > can {
		n = can
	}
	for i := 0; i < n; i++ {
		// Remove the free slot immediately preceding the head in ring
		// order; it is the last one that would be claimed.
		idx := g.head - 1
		if idx < 0 {
			idx += len(g.ring)
		}
		s := g.ring[idx]
		if s.state != slotFree || s.refugees > 0 {
			return i
		}
		g.ring = append(g.ring[:idx], g.ring[idx+1:]...)
		if g.head > idx {
			g.head--
		}
		if g.tail > idx {
			g.tail--
		} else if g.tail == len(g.ring) {
			g.tail = 0
		}
		if g.head == len(g.ring) {
			g.head = 0
		}
	}
	return n
}

// size returns the generation's current capacity in blocks.
func (g *generation) size() int { return len(g.ring) }

// liveSpan measures the extent that genuinely cannot be reclaimed: the
// occupied blocks minus the leading run of durable blocks holding only
// garbage (which lazy head advance has simply not freed yet). Because the
// cell list is kept in block order, every block strictly before the oldest
// live cell's block is all garbage.
func (g *generation) liveSpan() int {
	if g.used == 0 {
		return 0
	}
	var target *slot
	if c := g.list.oldest(); c != nil {
		target = c.slot // nil while the oldest record waits in a pending buffer
	}
	lead := 0
	idx := g.head
	for i := 0; i < g.used; i++ {
		s := g.ring[idx]
		if s == target || s.state != slotDurable {
			break
		}
		lead++
		idx = (idx + 1) % len(g.ring)
	}
	return g.used - lead
}

// ageBuckets x ageBucket covers residence times up to 16 s, beyond every
// lifetime in the paper's workloads; older deaths land in the last bucket.
const (
	ageBuckets = 65
	ageBucket  = 250 * sim.Millisecond
)

// noteAge records the residence time of a record that just became garbage.
func (g *generation) noteAge(age sim.Time) {
	b := int(age / ageBucket)
	if b >= ageBuckets {
		b = ageBuckets - 1
	}
	if b < 0 {
		b = 0
	}
	g.epochAges[b]++
}

// ageQuantile returns the q-quantile of this epoch's garbage ages (upper
// bucket edge), and the sample count.
func (g *generation) ageQuantile(q float64) (sim.Time, uint64) {
	var total uint64
	for _, n := range g.epochAges {
		total += uint64(n)
	}
	if total == 0 {
		return 0, 0
	}
	// Nearest-rank: the ceil(q*total)-th smallest sample.
	want := uint64(float64(total) * q)
	if float64(want) < float64(total)*q {
		want++
	}
	if want < 1 {
		want = 1
	}
	if want > total {
		want = total
	}
	var seen uint64
	for b, n := range g.epochAges {
		seen += uint64(n)
		if seen >= want {
			return sim.Time(b+1) * ageBucket, total
		}
	}
	return sim.Time(ageBuckets) * ageBucket, total
}

// noteSpan updates the epoch's peak live span.
func (g *generation) noteSpan() {
	if span := g.liveSpan(); span > g.epochPeakSpan {
		g.epochPeakSpan = span
	}
}
