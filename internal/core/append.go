package core

import (
	"fmt"
	"sort"

	"ellog/internal/flushdisk"
	"ellog/internal/logrec"
	"ellog/internal/statedb"
	"ellog/internal/trace"
)

// usesPend reports whether generation g appends through the lazy, slotless
// pending buffer. That is the recirculating last generation of an EL
// manager: its tail receives recirculated records ("placed in a buffer
// without immediately writing it to disk", section 2.2) interleaved with
// forwarded ones, and sharing a single buffer keeps cell-list order equal
// to block order — the property the h_i head test relies on.
func (m *Manager) usesPend(g *generation) bool {
	return g.idx == m.lastGen() && m.p.Mode == ModeEphemeral && m.p.Recirculate
}

// appendTail adds a record (via its cell) to generation gi's tail. origin
// is non-nil when the record is being moved from another block (forwarding
// or recirculation); it is nil for records newly entering the log, which
// are counted and, for COMMIT records, tracked for the group-commit
// acknowledgement.
func (m *Manager) appendTail(gi int, c *cell, origin *slot) {
	g := m.gens[gi]
	if c.rec.Size > m.p.BlockPayload {
		panic(fmt.Sprintf("core: record of %d bytes exceeds block payload %d", c.rec.Size, m.p.BlockPayload))
	}
	if origin == nil {
		// Count new records on entry, before the space-making below: its
		// cascade can kill the very transaction being appended, whose
		// records are then all counted as garbage — including this one.
		// Counting only survivors would leave appended != garbaged + live.
		m.appendedRecs.Inc()
		m.appendedBytes.Addn(uint64(c.rec.Size))
	}
	var b *buffer
	if m.usesPend(g) {
		if g.pend != nil && c.rec.Size > g.pend.free {
			m.sealPend(g)
		}
		if g.pend == nil {
			m.takeToken(g)
			g.pend = m.newBuffer(nil)
		}
		b = g.pend
	} else {
		if g.fill == nil || c.rec.Size > g.fill.free {
			m.sealFill(g)
			m.openFill(g)
		}
		b = g.fill
	}
	// Making space above can cascade into killing a transaction or force
	// flushing an update — possibly the very record being appended. A cell
	// that died meanwhile is garbage and must not enter the log again.
	if m.cellDead(c) {
		return
	}
	if b == g.pend {
		b.cells = append(b.cells, c)
		c.slot = nil // belongs to whichever block is written at the tail
	} else {
		c.slot = b.slot
		if m.p.Steal || m.faulty {
			// The steal policy flushes uncommitted updates once their
			// records are durable (write-ahead rule), so the buffer must
			// remember its cells until the write completes. Under fault
			// injection the cells are also needed to resolve the buffer's
			// records if the write is abandoned after exhausted retries.
			b.cells = append(b.cells, c)
		}
	}
	b.free -= c.rec.Size
	b.recs = append(b.recs, c.rec)
	src := c.gen
	c.gen = gi
	c.arrived = m.now()
	g.epochIn++
	g.list.pushNewest(c)
	if origin != nil {
		origin.refugees++
		b.origins = append(b.origins, origin)
		// Record-level move trail: Gen is where the record came from, N
		// where it landed (equal for recirculation).
		m.emit(trace.Event{Kind: trace.EvMove, Gen: src, Tx: c.rec.Tx, Obj: c.rec.Obj, LSN: c.rec.LSN, N: gi})
		return
	}
	// N carries the record kind so trace consumers can tell BEGIN/COMMIT
	// appends from data appends without guessing from Obj (0 is a legal OID).
	m.emit(trace.Event{Kind: trace.EvAppend, Gen: gi, Tx: c.rec.Tx, Obj: c.rec.Obj, LSN: c.rec.LSN, N: int(c.rec.Kind)})
	switch c.rec.Kind {
	case logrec.KindCommit, logrec.KindPrepare, logrec.KindDecide:
		// Records whose durability advances a transaction's state: COMMIT
		// and DECIDE acknowledge a commit, PREPARE completes a participant
		// branch's vote.
		b.commits = append(b.commits, c.tx)
		m.armGroupCommitTimeout(g, b)
	}
}

// cellDead reports whether a cell's record became garbage while the cell
// was detached (mid-move or mid-append): its transaction was dropped, or
// its update was superseded or force flushed.
func (m *Manager) cellDead(c *cell) bool {
	if c.tx.state == txAborted {
		return true
	}
	if c.rec.Kind == logrec.KindData {
		le, ok := m.lot.Get(uint64(c.rec.Obj))
		if !ok {
			return true
		}
		if le.committed == c || le.uncommitted[c.rec.Tx] == c {
			return false
		}
		for _, old := range le.superseded {
			if old == c {
				return false
			}
		}
		return true
	}
	e, ok := m.ltt.Get(uint64(c.rec.Tx))
	return !ok || e.txCell != c
}

// armGroupCommitTimeout bounds how long a COMMIT may wait for its buffer
// to fill (disabled, per the paper, unless Params.GroupCommitTimeout > 0).
// The timeout remembers the buffer's epoch: buffers are pooled, so by the
// time it fires, b may already be serving a different block, and sealing
// that one early would change behavior.
func (m *Manager) armGroupCommitTimeout(g *generation, b *buffer) {
	if m.p.GroupCommitTimeout <= 0 {
		return
	}
	epoch := b.epoch
	m.clk.After(m.p.GroupCommitTimeout, func() {
		if b.sealed || b.epoch != epoch {
			return
		}
		if g.fill == b {
			m.sealFill(g)
		} else if g.pend == b {
			m.sealPend(g)
		}
	})
}

// openFill claims the next tail block and prepares a buffer for it.
func (m *Manager) openFill(g *generation) {
	s := m.claimGuarded(g)
	s.state = slotFilling
	m.takeToken(g)
	g.fill = m.newBuffer(s)
}

// sealFill writes out the current fill buffer, if any.
func (m *Manager) sealFill(g *generation) {
	if g.fill == nil {
		return
	}
	b := g.fill
	g.fill = nil
	m.writeOut(g, b)
}

// sealPend claims a tail slot for the pending buffer and writes it.
func (m *Manager) sealPend(g *generation) {
	if g.pend == nil {
		return
	}
	s := m.claimGuarded(g)
	m.writePend(g, s)
}

// sealTail forces whatever buffer is open at g's tail to disk — used when
// a forward batch lands records that must be immediately durable.
func (m *Manager) sealTail(g *generation) {
	if m.usesPend(g) {
		m.sealPend(g)
	} else {
		m.sealFill(g)
	}
}

// tailFree reports the free bytes in g's open tail buffer, or -1 if none
// is open.
func (m *Manager) tailFree(g *generation) int {
	if m.usesPend(g) {
		if g.pend == nil {
			return -1
		}
		return g.pend.free
	}
	if g.fill == nil {
		return -1
	}
	return g.fill.free
}

// writePend assigns the pending buffer to slot s and writes it. Cells
// still live at that point acquire their new block position.
func (m *Manager) writePend(g *generation, s *slot) {
	b := g.pend
	if b == nil {
		panic("core: writePend with no pending buffer")
	}
	g.pend = nil
	b.slot = s
	s.state = slotFilling
	for _, c := range b.cells {
		if c.inList && c.slot == nil {
			c.slot = s
		}
	}
	m.writeOut(g, b)
}

// writeOut issues the block write for a sealed buffer and handles its
// completion: the slot becomes durable, refugee counts drop, and any
// COMMIT records riding in the buffer make their transactions durable —
// the group-commit acknowledgement at the paper's time t4.
func (m *Manager) writeOut(g *generation, b *buffer) {
	s := b.slot
	if s == nil {
		panic("core: writing slotless buffer")
	}
	if s.state != slotFilling {
		panic(fmt.Sprintf("core: writeOut on %v slot", s.state))
	}
	s.state = slotInFlight
	b.sealed = true
	m.emit(trace.Event{Kind: trace.EvSeal, Gen: g.idx, N: len(b.recs)})
	m.issueWrite(g, b, 1)
}

// issueWrite encodes a sealed buffer and issues its block write (attempt 1
// is the original issue; higher attempts are fault retries). The device
// copies the bytes synchronously (it must, to hold the durable crash
// image), so one manager-wide encode buffer can be reused for every block
// write — including retries, which re-encode because other writes borrow
// the buffer during the backoff.
func (m *Manager) issueWrite(g *generation, b *buffer, attempt int) {
	m.encBuf = logrec.AppendBlock(m.encBuf[:0], b.recs)
	m.dev.Write(b.slot.id, m.encBuf, func(err error) {
		if err != nil {
			m.writeFailed(g, b, attempt)
			return
		}
		m.writeDurable(g, b)
	})
}

// writeDurable handles a completed block write: the slot becomes durable,
// refugee counts drop, and any COMMIT records riding in the buffer make
// their transactions durable — the group-commit acknowledgement at the
// paper's time t4.
func (m *Manager) writeDurable(g *generation, b *buffer) {
	b.slot.state = slotDurable
	m.emit(trace.Event{Kind: trace.EvDurable, Gen: g.idx, N: len(b.recs)})
	m.putToken(g)
	for _, o := range b.origins {
		o.refugees--
	}
	if m.p.Steal {
		m.stealFlushDurable(b)
	}
	for _, tx := range b.commits {
		m.commitDurable(tx)
	}
	m.recycleBuffer(b)
}

// writeFailed handles a transient write error (fault injection): the block
// is reissued after an exponential backoff until the retry budget runs out,
// then abandoned. The failed attempt already counted against the disk's
// bandwidth stats — the disk did the work.
func (m *Manager) writeFailed(g *generation, b *buffer, attempt int) {
	m.writeErrors.Inc()
	if attempt <= m.maxRetries {
		m.writeRetries.Inc()
		m.emit(trace.Event{Kind: trace.EvRetry, Gen: g.idx, N: attempt})
		m.clk.After(m.retryBackoff<<(attempt-1), func() {
			m.issueWrite(g, b, attempt+1)
		})
		return
	}
	m.abandonWrite(g, b)
}

// abandonWrite gives up on a block whose write errored past the retry
// budget. Every record riding in the buffer is resolved the way the
// overflow paths resolve records that cannot stay in the log: active and
// committing transactions are killed (a committing transaction's COMMIT
// was in the dead block, so it never becomes durable), committed updates
// are force flushed to the stable database, and committed transactions'
// tx records are retired by flushing their remaining updates. Afterwards
// nothing references the block, so its slot is reclaimable as all-garbage.
func (m *Manager) abandonWrite(g *generation, b *buffer) {
	m.abandonedWrites.Inc()
	for _, c := range b.cells {
		if !c.inList {
			continue
		}
		switch {
		case c.tx.state == txActive || c.tx.state == txCommitting || c.tx.state == txPreparing:
			// A preparing branch's vote was in the dead block, so it never
			// became durable; killing the branch is sound — the coordinator
			// cannot have decided commit without it. (A txPrepared branch
			// cannot appear here: fault retries are never armed on sharded
			// systems, and 2PC states exist only behind the router.)
			m.dropTx(c.tx, true)
		case c.rec.Kind == logrec.KindData && c.committed:
			m.forceFlushCell(c)
		case (c.rec.Kind == logrec.KindCommit || c.rec.Kind == logrec.KindDecide) && c.tx.state == txCommitted:
			m.forceFlushTx(c.tx)
		}
	}
	// The old durable copies of any forwarded records just became garbage
	// along with their cells, so their origin slots no longer shelter
	// refugees.
	for _, o := range b.origins {
		o.refugees--
	}
	// The slot's durable contents are its previous bytes — stale records
	// recovery discards — and no live cell points at it, so for the
	// manager's accounting it is a durable all-garbage block.
	b.slot.state = slotDurable
	m.putToken(g)
	m.recycleBuffer(b)
}

func (m *Manager) takeToken(g *generation) {
	if g.tokens <= 0 {
		// The paper's model has no feedback from the LM into transaction
		// pacing, so buffer exhaustion is recorded rather than blocked on.
		m.bufferStalls.Inc()
	}
	g.tokens--
}

func (m *Manager) putToken(g *generation) { g.tokens++ }

// claimGuarded claims the next tail slot after making space and ensuring
// the slot's previous contents are no longer anyone's only durable copy.
func (m *Manager) claimGuarded(g *generation) *slot {
	for attempts := 0; ; attempts++ {
		if attempts > g.size()+4 {
			m.emergencyGrow(g)
		}
		m.ensureSpace(g)
		s := g.ring[g.tail]
		if s.refugees == 0 {
			claimed := g.claimSlot()
			g.noteSpan()
			m.usedGauges[g.idx].Set(m.now(), float64(g.used))
			return claimed
		}
		// The slot still holds the only durable copies of records sitting
		// in an unwritten buffer. If that buffer is this generation's
		// pending buffer, write it into this very slot: the old bytes stay
		// durable until the (atomic) write completes, and the new copy
		// supersedes them.
		if g.pend != nil && bufferHasOrigin(g.pend, s) {
			claimed := g.claimSlot()
			m.usedGauges[g.idx].Set(m.now(), float64(g.used))
			m.writePend(g, claimed)
			continue
		}
		// Refugees ride in an in-flight buffer; the write completes within
		// tau_DiskWrite but an event-driven claim cannot wait. Insert an
		// emergency block instead and record the stall — any run where
		// this fires is treated as having insufficient space.
		m.refugeeStalls.Inc()
		m.emergencyGrow(g)
	}
}

func bufferHasOrigin(b *buffer, s *slot) bool {
	for _, o := range b.origins {
		if o == s {
			return true
		}
	}
	return false
}

// ensureSpace advances the head of g until at least ThresholdK+1 slots are
// free ("at least k blocks must be available to hold new log records",
// section 3, plus the one about to be claimed).
func (m *Manager) ensureSpace(g *generation) {
	iters := 0
	for g.freeSlots() <= m.p.ThresholdK {
		iters++
		if iters > 4*g.size()+16 {
			// A full revolution without net progress: everything in the
			// generation is still needed. Sacrifice a victim.
			if !m.killVictim(g) {
				m.emergencyGrow(g)
				return
			}
			iters = 0
			continue
		}
		if m.advanceHead(g) {
			continue
		}
		if !m.killVictim(g) {
			m.emergencyGrow(g)
			return
		}
	}
}

// emergencyGrow inserts one extra block so the simulation can proceed when
// a generation is configured too small to make forward progress. Any run
// with emergency blocks is reported as having exceeded its disk budget.
func (m *Manager) emergencyGrow(g *generation) {
	g.grow(m.dev, 1)
	g.epochEmerg++
	m.emergencyBlocks.Inc()
	m.emit(trace.Event{Kind: trace.EvResize, Gen: g.idx, N: 1})
}

// commitDurable is the moment a transaction actually commits: its COMMIT
// record reached disk. Updates become flushable only now (section 2.2:
// "the LM can flush a data log record's update to disk any time after its
// transaction has committed") and, in EL, earlier committed versions of
// the same objects become garbage.
func (m *Manager) commitDurable(e *lttEntry) {
	if e.state == txPreparing {
		// The durable record was a PREPARE, not a COMMIT: the branch is now
		// in doubt, awaiting the coordinator's decision.
		e.state = txPrepared
		if e.onPrepared != nil {
			e.onPrepared()
		}
		return
	}
	if e.state != txCommitting {
		return // killed or aborted while the commit was in flight
	}
	e.state = txCommitted
	m.commits.Inc()
	m.commitDelay.Observe((m.now() - e.commitAppAt).Seconds())
	m.emit(trace.Event{Kind: trace.EvCommit, Gen: -1, Tx: e.tid})

	if m.p.Mode == ModeFirewall {
		// Per the paper's FW simulation, commitment makes all the
		// transaction's records garbage immediately (no checkpoint
		// bookkeeping is charged — an omission the paper notes favours
		// FW). The stable database is still updated via the flush array so
		// the two techniques impose the same flush load.
		oids := m.sortedOids(e.oids)
		for _, oid := range oids {
			le, ok := m.lot.Get(uint64(oid))
			if !ok {
				continue
			}
			if c := le.uncommitted[e.tid]; c != nil {
				m.flush.Enqueue(flushdisk.Request{Obj: oid, LSN: c.rec.LSN, Val: c.rec.Val, Tx: c.rec.Tx})
				m.unlink(c)
				delete(le.uncommitted, e.tid)
			}
			if le.empty() {
				m.lot.Delete(uint64(oid))
			}
		}
		m.releaseOids(oids)
		clear(e.oids)
		m.retire(e)
	} else {
		oids := m.sortedOids(e.oids)
		for _, oid := range oids {
			le, ok := m.lot.Get(uint64(oid))
			if !ok {
				panic(fmt.Sprintf("core: committed oid %d missing from LOT", oid))
			}
			c := le.uncommitted[e.tid]
			if c == nil {
				panic(fmt.Sprintf("core: committed oid %d has no uncommitted cell for tx %d", oid, e.tid))
			}
			delete(le.uncommitted, e.tid)
			if old := le.committed; old != nil {
				if m.p.BroadNonGarbage {
					// Without per-object version timestamps the superseded
					// record must stay in the log until the new version is
					// flushed (paper section 6).
					le.superseded = append(le.superseded, old)
				} else {
					// The earlier committed update is superseded and
					// garbage; its oid leaves its own transaction's LTT set.
					m.unlink(old)
					delete(old.tx.oids, oid)
					m.maybeRetire(old.tx)
				}
			}
			c.committed = true
			le.committed = c
			if c.flushed {
				// Stolen and already on disk: pay the commit-time write
				// that clears the stolen marker; the record stays
				// non-garbage until it lands.
				c.cleanQueued = true
				m.flush.Enqueue(flushdisk.Request{Obj: oid, LSN: c.rec.LSN, Val: c.rec.Val, Tx: c.rec.Tx, Clean: true})
			} else {
				m.flush.Enqueue(flushdisk.Request{Obj: oid, LSN: c.rec.LSN, Val: c.rec.Val, Tx: c.rec.Tx})
			}
		}
		m.releaseOids(oids)
		if len(e.oids) == 0 {
			m.maybeRetire(e) // read-only transaction (unless pinned)
		}
	}
	if e.onDurable != nil {
		e.onDurable()
	}
	m.touchMem()
}

// Flushed is the flush array's completion callback: the update is applied
// to the stable database and, if it is still the object's most recently
// committed version, its log record becomes garbage.
func (m *Manager) Flushed(req flushdisk.Request) {
	m.emit(trace.Event{Kind: trace.EvFlush, Gen: -1, Obj: req.Obj, LSN: req.LSN})
	switch {
	case req.Clean:
		m.db.Clean(req.Obj, req.LSN)
	case req.Stolen:
		m.db.ApplyVersion(req.Obj, statedb.Version{LSN: req.LSN, Val: req.Val, Tx: req.Tx, Stolen: true})
	default:
		m.db.Apply(req.Obj, req.LSN, req.Val, req.Tx)
	}
	if pr, ok := m.pendingReverts[req.Obj]; ok && pr.tx == req.Tx && pr.lsn == req.LSN {
		// The writer died while this stolen flush was in service: roll the
		// version straight back to the before-image.
		delete(m.pendingReverts, req.Obj)
		m.db.ForceSet(req.Obj, pr.prev)
		return
	}
	le, ok := m.lot.Get(uint64(req.Obj))
	if !ok {
		return
	}
	if req.Stolen {
		if c := le.uncommitted[req.Tx]; c != nil && c.rec.LSN == req.LSN {
			c.flushed = true // undo information retained until commit/abort
			return
		}
		if c := le.committed; c != nil && c.rec.LSN == req.LSN && c.rec.Tx == req.Tx && !c.cleanQueued {
			// The transaction committed while the stolen flush was in
			// service; clear the marker it just planted.
			c.cleanQueued = true
			m.flush.Enqueue(flushdisk.Request{Obj: req.Obj, LSN: req.LSN, Val: req.Val, Tx: req.Tx, Clean: true})
		}
		return
	}
	c := le.committed
	if c == nil || c.rec.LSN != req.LSN {
		return // stale completion; a newer version superseded this one
	}
	m.unlink(c)
	le.committed = nil
	delete(c.tx.oids, req.Obj)
	m.maybeRetire(c.tx)
	// The flushed version now anchors recovery even without version
	// timestamps: every retained older version becomes garbage.
	for _, old := range le.superseded {
		// A superseded cell caught detached mid-move still becomes garbage.
		m.unlink(old)
		delete(old.tx.oids, req.Obj)
		m.maybeRetire(old.tx)
	}
	le.superseded = nil
	if le.empty() {
		m.lot.Delete(uint64(req.Obj))
	}
	m.touchMem()
}

// sortedOids returns a set's oids in ascending order. Flush requests are
// enqueued in this order so that runs are bit-for-bit deterministic; Go's
// map iteration order would otherwise leak into the flush schedule.
//
// The returned slice borrows the manager's scratch buffer; callers hand it
// back with releaseOids when done iterating. The scratch is nilled out
// while borrowed, so a nested call (none exists in the current call graph,
// but the flush paths are synchronous and intricate) falls back to a fresh
// allocation instead of corrupting the outer iteration.
func (m *Manager) sortedOids(set map[logrec.OID]struct{}) []logrec.OID {
	out := m.oidScratch[:0]
	m.oidScratch = nil
	for oid := range set {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// releaseOids returns a sortedOids snapshot to the scratch slot.
func (m *Manager) releaseOids(s []logrec.OID) { m.oidScratch = s }

// stealFlushDurable enqueues stolen flushes for the still-uncommitted data
// records of a buffer that just became durable — the write-ahead rule: the
// log record reaches disk before the stable database may be dirtied.
func (m *Manager) stealFlushDurable(b *buffer) {
	for _, c := range b.cells {
		if !c.inList || c.rec.Kind != logrec.KindData || c.committed ||
			c.stolenQueued || c.tx.state != txActive {
			continue
		}
		// The flush queue holds one request per object; stealing while a
		// previous committed version still awaits its flush would clobber
		// that (required) request, so the steal is skipped — this update
		// simply flushes after commit like any other.
		if c.obj != nil && c.obj.committed != nil {
			continue
		}
		c.stolenQueued = true
		m.flush.Enqueue(flushdisk.Request{
			Obj: c.rec.Obj, LSN: c.rec.LSN, Val: c.rec.Val, Tx: c.rec.Tx, Stolen: true,
		})
	}
}

// maybeRetire removes a committed transaction's LTT entry once its last
// non-garbage data record is gone (section 2.3) — and, for a cross-shard
// coordinator, once every remote participant branch has retired (the
// DECIDE record must outlive any PREPARE that could be replayed in doubt).
func (m *Manager) maybeRetire(e *lttEntry) {
	if e.state == txCommitted && len(e.oids) == 0 && e.pins == 0 {
		m.retire(e)
	}
}

func (m *Manager) retire(e *lttEntry) {
	// Force flushing a transaction's updates can retire the entry from
	// inside the (synchronous) flush completion; the caller's own retire
	// then sees a committed entry with no oids left. Guard on LTT
	// membership so the tx record is counted as garbage exactly once.
	if cur, ok := m.ltt.Get(uint64(e.tid)); !ok || cur != e {
		return
	}
	// Unlink unconditionally: the tx record is garbage even if its cell is
	// momentarily detached from the generation lists.
	m.unlink(e.txCell)
	m.ltt.Delete(uint64(e.tid))
	m.touchMem()
	if e.onRetired != nil {
		e.onRetired()
	}
}

// Quiesce seals every open buffer so that all appended records head to
// disk. Recovery drills call it before crashing "cleanly"; the paper's
// steady-state experiments never need it.
func (m *Manager) Quiesce() {
	for _, g := range m.gens {
		m.sealFill(g)
		m.sealPend(g)
	}
}
