package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ellog/internal/sim"
)

func TestGaugePeakAndAvg(t *testing.T) {
	var g Gauge
	g.Set(0, 10)
	g.Set(2*sim.Second, 20) // 10 held for 2s
	g.Set(3*sim.Second, 0)  // 20 held for 1s
	// avg over [0, 4s]: (10*2 + 20*1 + 0*1) / 4 = 10
	if got := g.TimeAvg(4 * sim.Second); got != 10 {
		t.Fatalf("TimeAvg = %v, want 10", got)
	}
	if g.Peak() != 20 {
		t.Fatalf("Peak = %v, want 20", g.Peak())
	}
	if g.Value() != 0 {
		t.Fatalf("Value = %v, want 0", g.Value())
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(0, 5)
	g.Add(sim.Second, 3)
	g.Add(2*sim.Second, -8)
	if g.Value() != 0 || g.Peak() != 8 {
		t.Fatalf("Value=%v Peak=%v", g.Value(), g.Peak())
	}
}

func TestGaugeEmpty(t *testing.T) {
	var g Gauge
	if g.TimeAvg(sim.Second) != 0 || g.Peak() != 0 {
		t.Fatal("empty gauge not zero")
	}
}

// TestGaugeAvgAtLastUpdate: sampling TimeAvg exactly at the time of the
// final Set — how core.Stats reads every gauge at end of run — must return
// the time-weighted average, not the post-update level.
func TestGaugeAvgAtLastUpdate(t *testing.T) {
	var g Gauge
	g.Set(0, 10)
	g.Set(5*sim.Second, 0) // 10 held over [0, 5s), 0 from t=5s
	if got := g.TimeAvg(5 * sim.Second); got != 10 {
		t.Fatalf("TimeAvg(5s) = %v, want 10 (time-weighted average, not current level)", got)
	}
	// A query before the last update clamps to the integrated span rather
	// than inventing negative time.
	if got := g.TimeAvg(2 * sim.Second); got != 10 {
		t.Fatalf("TimeAvg(2s) = %v, want 10 (clamped to [0, lastAt])", got)
	}
}

func TestGaugeAvgBeforeAnyTimePasses(t *testing.T) {
	var g Gauge
	g.Set(0, 7)
	if got := g.TimeAvg(0); got != 7 {
		t.Fatalf("TimeAvg at t=0 = %v, want current value 7", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(9)
	if c.Count() != 10 {
		t.Fatalf("Count = %d", c.Count())
	}
	if r := c.Rate(2 * sim.Second); r != 5 {
		t.Fatalf("Rate = %v, want 5", r)
	}
	if r := c.Rate(0); r != 0 {
		t.Fatalf("Rate(0) = %v, want 0", r)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Mean() != 3 {
		t.Fatalf("Count=%d Mean=%v", h.Count(), h.Mean())
	}
	if h.Quantile(0.5) != 3 {
		t.Fatalf("median = %v", h.Quantile(0.5))
	}
	if h.Max() != 5 {
		t.Fatalf("Max = %v", h.Max())
	}
	if h.Quantile(0) != 1 {
		t.Fatalf("min quantile = %v", h.Quantile(0))
	}
	// Observing after a quantile query must keep order stats correct.
	h.Observe(0)
	if h.Quantile(0) != 0 {
		t.Fatalf("min after new observation = %v", h.Quantile(0))
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.9) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "disk space"}
	s.Add(5, 123)
	s.Add(10, 110)
	if len(s.Points) != 2 || s.Points[1] != (Point{10, 110}) {
		t.Fatalf("points %v", s.Points)
	}
	str := s.String()
	if !strings.Contains(str, "disk space") || !strings.Contains(str, "123") {
		t.Fatalf("String() = %q", str)
	}
}

// TestGaugeIntegralProperty: for any piecewise-constant trajectory, the
// time average times the span equals the sum of value*duration segments.
func TestGaugeIntegralProperty(t *testing.T) {
	prop := func(vals []uint8) bool {
		var g Gauge
		now := sim.Time(0)
		var manual float64
		var prev float64
		for i, v := range vals {
			g.Set(now, float64(v))
			dur := sim.Time(1+i%5) * sim.Second
			if i > 0 {
				_ = prev
			}
			manual += float64(v) * dur.Seconds()
			now += dur
			prev = float64(v)
		}
		if len(vals) == 0 {
			return true
		}
		got := g.TimeAvg(now) * now.Seconds()
		return math.Abs(got-manual) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAsciiPlotBasics(t *testing.T) {
	var fw, el Series
	fw.Name = "FW"
	el.Name = "EL"
	for i, v := range []float64{123, 130, 141, 152, 162} {
		fw.Add(float64(5+i*10), v)
	}
	for i, v := range []float64{34, 40, 54, 70, 85} {
		el.Add(float64(5+i*10), v)
	}
	out := AsciiPlot("Figure 4", 40, 10, fw, el)
	for _, want := range []string{"Figure 4", "* FW", "o EL", "|", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// Both markers must appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestAsciiPlotEmpty(t *testing.T) {
	if out := AsciiPlot("empty", 30, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
}

func TestAsciiPlotDegenerateRanges(t *testing.T) {
	var s Series
	s.Name = "flat"
	s.Add(1, 5)
	s.Add(2, 5) // zero Y range
	out := AsciiPlot("flat", 20, 6, s)
	if !strings.Contains(out, "flat") {
		t.Fatal("flat plot failed")
	}
	var one Series
	one.Name = "point"
	one.Add(3, 7) // zero X and Y range
	if out := AsciiPlot("", 20, 6, one); !strings.Contains(out, "point") {
		t.Fatal("single-point plot failed")
	}
}
