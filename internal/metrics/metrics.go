// Package metrics provides the measurement instruments for the paper's
// evaluation criteria (section 4): disk space, disk bandwidth in block
// writes per second, main-memory requirements for the LOT and LTT, and the
// randomness of flush I/O. Gauges integrate over simulated time so both
// peaks (what must be provisioned) and time-weighted averages (typical
// load) are available.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"ellog/internal/sim"
)

// Gauge tracks a level that moves up and down over simulated time, such as
// the number of LOT entries or the blocks in use in a generation. It
// records the peak and the time-weighted integral.
type Gauge struct {
	cur      float64
	peak     float64
	integral float64 // ∫ value dt, in value·seconds
	lastAt   sim.Time
	started  bool
}

// Set moves the gauge to v at time now.
func (g *Gauge) Set(now sim.Time, v float64) {
	if g.started {
		g.integral += g.cur * (now - g.lastAt).Seconds()
	}
	g.started = true
	g.lastAt = now
	g.cur = v
	if v > g.peak {
		g.peak = v
	}
}

// Add adjusts the gauge by delta at time now.
func (g *Gauge) Add(now sim.Time, delta float64) { g.Set(now, g.cur+delta) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return g.cur }

// Peak returns the highest level ever set.
func (g *Gauge) Peak() float64 { return g.peak }

// TimeAvg returns the time-weighted average level over [0, end]. Gauges in
// this model all start at t=0 with their initial Set, so the average is the
// integral so far divided by end. Sampling exactly at the last update —
// the end-of-run pattern in core.Stats — must use the accumulated
// integral, not the level the gauge happens to sit at after that update.
func (g *Gauge) TimeAvg(end sim.Time) float64 {
	if !g.started {
		return 0
	}
	if end < g.lastAt {
		// The gauge cannot un-integrate; clamp to the span it has seen.
		end = g.lastAt
	}
	if end.Seconds() == 0 {
		return g.cur
	}
	total := g.integral
	if end > g.lastAt {
		total += g.cur * (end - g.lastAt).Seconds()
	}
	return total / end.Seconds()
}

// Counter counts events; Rate converts to per-second.
type Counter struct {
	n uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.n++ }

// Addn adds delta.
func (c *Counter) Addn(delta uint64) { c.n += delta }

// Count returns the total.
func (c *Counter) Count() uint64 { return c.n }

// Rate returns events per second of simulated time.
func (c *Counter) Rate(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n) / elapsed.Seconds()
}

// Histogram collects samples (e.g. group-commit delays) and reports simple
// order statistics. Samples are kept exactly; the simulation produces at
// most a few hundred thousand.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank, or 0 when
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// BucketSnapshot is a fixed-bucket export of a sample distribution: the
// shape the live observability registry serves (Prometheus histograms are
// cumulative fixed-bucket counts) and the exact Histogram can reduce to.
// Bounds are ascending inclusive upper bounds; Counts has one extra slot
// for the implicit +Inf overflow bucket.
type BucketSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot bins the exact samples into the given ascending bucket bounds.
// The bounds slice is referenced, not copied; callers share schema-level
// bound tables.
func (h *Histogram) Snapshot(bounds []float64) BucketSnapshot {
	s := BucketSnapshot{
		Bounds: bounds,
		Counts: make([]uint64, len(bounds)+1),
		Count:  uint64(len(h.samples)),
		Sum:    h.sum,
	}
	for _, v := range h.samples {
		s.Counts[bucketIndex(bounds, v)]++
	}
	return s
}

// bucketIndex returns the index of the first bound >= v, or len(bounds)
// for the overflow bucket.
func bucketIndex(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Quantile returns the q-quantile estimate from the bucketized counts:
// the upper bound of the bucket holding the nearest-rank sample, clamped
// to the largest finite bound when the rank falls in the overflow bucket
// (the Prometheus convention). The error is therefore bounded by the width
// of the bucket containing the exact quantile. Returns 0 when empty.
func (s BucketSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if cum >= rank {
			return b
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the sample mean (0 if empty).
func (s BucketSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Sub returns the bucket-wise difference s minus prev — the distribution
// of samples observed between two cumulative snapshots of the same
// histogram. Both must share the same bounds.
func (s BucketSnapshot) Sub(prev BucketSnapshot) BucketSnapshot {
	d := BucketSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		var p uint64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		d.Counts[i] = s.Counts[i] - p
	}
	return d
}

// Merge folds another histogram's samples into this one, so multi-seed
// sweeps can aggregate per-run delay distributions. Quantiles of the
// merged histogram equal quantiles over the concatenated sample sets.
// The other histogram is left untouched.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	h.samples = append(h.samples, o.samples...)
	h.sorted = false
	h.sum += o.sum
}

// Point is one (x, y) pair of a figure's series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, the unit the experiment harness
// emits for each curve in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// String renders the series as aligned "x y" rows for terminal output.
func (s *Series) String() string {
	out := s.Name + ":\n"
	for _, p := range s.Points {
		out += fmt.Sprintf("  %12.4g %12.4g\n", p.X, p.Y)
	}
	return out
}
