package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBucketSnapshotBasic(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	bounds := []float64{1, 2, 4}
	s := h.Snapshot(bounds)
	if s.Count != 5 || s.Sum != 16.5 {
		t.Fatalf("count/sum = %d/%v", s.Count, s.Sum)
	}
	want := []uint64{1, 2, 1, 1} // (≤1, ≤2, ≤4, overflow)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Mean() != 3.3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Overflow clamps to the highest finite bound, Prometheus-style.
	if q := s.Quantile(1); q != 4 {
		t.Fatalf("Quantile(1) = %v, want clamp to 4", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", q)
	}
}

func TestBucketSnapshotEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot([]float64{1, 2})
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestBucketSnapshotSub(t *testing.T) {
	var h Histogram
	h.Observe(0.5)
	h.Observe(3)
	bounds := []float64{1, 2}
	prev := h.Snapshot(bounds)
	h.Observe(1.5)
	h.Observe(5)
	cur := h.Snapshot(bounds)
	d := cur.Sub(prev)
	if d.Count != 2 || d.Sum != 6.5 {
		t.Fatalf("delta count/sum = %d/%v", d.Count, d.Sum)
	}
	if d.Counts[0] != 0 || d.Counts[1] != 1 || d.Counts[2] != 1 {
		t.Fatalf("delta counts = %v", d.Counts)
	}
}

// Property: for any sample set, the bucketized quantile equals the upper
// bound of the bucket containing the exact sample-sorted quantile
// (clamped to the highest finite bound) — the snapshot's error is never
// worse than one bucket width.
func TestBucketQuantileWithinBucketError(t *testing.T) {
	bounds := []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}
	prop := func(xs []float64) bool {
		var h Histogram
		for _, v := range xs {
			// Fold into the positive range latencies live in.
			h.Observe(math.Abs(math.Mod(v, 2000)))
		}
		s := h.Snapshot(bounds)
		var total uint64
		for _, c := range s.Counts {
			total += c
		}
		if total != s.Count {
			return false
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
			exact := h.Quantile(q)
			est := s.Quantile(q)
			if len(xs) == 0 {
				if est != 0 {
					return false
				}
				continue
			}
			idx := 0
			for idx < len(bounds) && exact > bounds[idx] {
				idx++
			}
			if idx >= len(bounds) {
				idx = len(bounds) - 1 // overflow clamps
			}
			if est != bounds[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
