package metrics

import (
	"fmt"
	"math"
	"strings"
)

// AsciiPlot renders one or more series as a compact terminal chart, so the
// benchmark harness can draw the paper's figures next to their tables.
// Each series gets a marker rune; points are plotted on a width x height
// character grid with linear axes spanning the data.
func AsciiPlot(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			total++
		}
	}
	if total == 0 {
		return title + ": (no data)\n"
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	// Breathing room above and below.
	pad := (maxY - minY) * 0.08
	minY -= pad
	maxY += pad

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	markers := []rune{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				if grid[r][col] != ' ' && grid[r][col] != mark {
					grid[r][col] = '&' // overlapping series
				} else {
					grid[r][col] = mark
				}
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	topLabel := trimFloat(maxY)
	botLabel := trimFloat(minY)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelW, topLabel)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		fmt.Fprintf(&b, "  %s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "  %s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "  %s  %-*s%s\n", strings.Repeat(" ", labelW), width-len(trimFloat(maxX)), trimFloat(minX), trimFloat(maxX))
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "  %s  (%s)\n", strings.Repeat(" ", labelW), strings.Join(legend, ", "))
	return b.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}
