package metrics

import (
	"strings"
	"testing"
)

func TestAsciiPlotPointlessSeries(t *testing.T) {
	var s Series
	s.Name = "nothing"
	out := AsciiPlot("still empty", 40, 10, s)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("plot of pointless series = %q", out)
	}
}

func TestAsciiPlotSingleSeries(t *testing.T) {
	var s Series
	s.Name = "ramp"
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out := AsciiPlot("ramp test", 40, 10, s)
	if !strings.Contains(out, "ramp test") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* ramp") {
		t.Fatalf("legend missing: %q", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data markers plotted")
	}
	// Axis labels span the data: y max is 81, x runs 0..9.
	if !strings.Contains(out, "0") || !strings.Contains(out, "9") {
		t.Fatalf("x-axis labels missing: %q", out)
	}
	// Every grid row is framed by the axis gutter.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	rows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			rows++
		}
	}
	if rows != 10 {
		t.Fatalf("plot has %d grid rows, want 10", rows)
	}
}

func TestAsciiPlotMultiSeriesMarkers(t *testing.T) {
	var a, b Series
	a.Name = "first"
	b.Name = "second"
	for i := 0; i < 5; i++ {
		a.Add(float64(i), 1)
		b.Add(float64(i), 2)
	}
	out := AsciiPlot("", 30, 8, a, b)
	if !strings.Contains(out, "* first") || !strings.Contains(out, "o second") {
		t.Fatalf("legend markers wrong: %q", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("second series marker not plotted")
	}
}

func TestAsciiPlotOverlapMarker(t *testing.T) {
	var a, b Series
	a.Name = "x"
	b.Name = "y"
	a.Add(1, 1)
	b.Add(1, 1)
	out := AsciiPlot("", 20, 6, a, b)
	if !strings.Contains(out, "&") {
		t.Fatalf("overlapping points not marked with &: %q", out)
	}
}

func TestAsciiPlotClampedDimensions(t *testing.T) {
	var s Series
	s.Name = "dot"
	s.Add(3, 7)
	// Tiny dimensions are clamped to the minimums (16x5).
	out := AsciiPlot("tiny", 1, 1, s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	rows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			rows++
		}
	}
	if rows != 5 {
		t.Fatalf("clamped plot has %d rows, want 5", rows)
	}
}

func TestTrimFloat(t *testing.T) {
	if got := trimFloat(3); got != "3" {
		t.Fatalf("trimFloat(3) = %q", got)
	}
	if got := trimFloat(3.14159); got != "3.14" {
		t.Fatalf("trimFloat(3.14159) = %q", got)
	}
	if got := trimFloat(2e12); got != "2e+12" {
		t.Fatalf("trimFloat(2e12) = %q", got)
	}
}
