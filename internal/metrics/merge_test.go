package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramMergeBasic(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(3)
	b.Observe(2)
	b.Observe(4)
	a.Merge(&b)
	if a.Count() != 4 {
		t.Fatalf("Count = %d, want 4", a.Count())
	}
	if a.Mean() != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", a.Mean())
	}
	if a.Max() != 4 {
		t.Fatalf("Max = %v, want 4", a.Max())
	}
	// The source is untouched.
	if b.Count() != 2 || b.Mean() != 3 {
		t.Fatalf("source histogram mutated: count=%d mean=%v", b.Count(), b.Mean())
	}
}

func TestHistogramMergeNilAndEmpty(t *testing.T) {
	var a Histogram
	a.Observe(5)
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatalf("merge of nil/empty changed the histogram: count=%d", a.Count())
	}
	// Merging into an empty histogram copies the source.
	var dst Histogram
	dst.Merge(&a)
	if dst.Count() != 1 || dst.Max() != 5 {
		t.Fatalf("merge into empty: count=%d max=%v", dst.Count(), dst.Max())
	}
}

// Property: for any two sample sets, quantiles of the merged histogram
// equal quantiles of a histogram observing the concatenation directly —
// even when the operands were sorted (queried) before merging.
func TestHistogramMergeQuantilesEqualConcat(t *testing.T) {
	prop := func(xs, ys []float64, seed int64) bool {
		var a, b, concat Histogram
		// Fold generated values into a well-conditioned range: with raw
		// ~1e308 magnitudes the concatenated sum overflows or cancels
		// catastrophically, which tests float addition, not Merge.
		for _, v := range xs {
			v = math.Mod(v, 1e6)
			a.Observe(v)
			concat.Observe(v)
		}
		for _, v := range ys {
			v = math.Mod(v, 1e6)
			b.Observe(v)
			concat.Observe(v)
		}
		// Query before merging so lazily-sorted internals are exercised.
		rng := rand.New(rand.NewSource(seed))
		if rng.Intn(2) == 0 {
			a.Quantile(0.5)
			b.Quantile(0.9)
		}
		a.Merge(&b)
		if a.Count() != concat.Count() {
			return false
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			if a.Quantile(q) != concat.Quantile(q) {
				return false
			}
		}
		// Means can differ by float association order (sum(xs)+sum(ys) vs
		// one interleaved sum); quantiles are exact but the mean is only
		// exact up to rounding.
		am, cm := a.Mean(), concat.Mean()
		if am == cm {
			return true
		}
		diff := math.Abs(am - cm)
		scale := math.Max(math.Abs(am), math.Abs(cm))
		return diff <= 1e-9*scale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
