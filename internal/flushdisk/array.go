// Package flushdisk models the disk drives holding the stable version of
// the database, to which committed updates are continuously flushed
// (paper sections 2.2 and 3).
//
// Following the paper's simulation model:
//   - The user specifies D drives and the time to write one block to any of
//     them; each updated object costs one separate disk write (negligible
//     locality of updates within a block).
//   - Objects are range partitioned evenly over the drives: for N objects
//     and D drives, the first N/D objects reside on drive 0, and so on.
//   - Each drive services pending flush requests in the order that
//     minimizes access time, where the access cost between two objects is
//     the difference of their oids and the range of oids assigned to a
//     drive wraps around (circular distance).
//   - The average oid distance between successively flushed objects is the
//     paper's locality metric: a large backlog makes flushing less random
//     and more sequential ("this negative feedback provides some
//     stability").
package flushdisk

import (
	"fmt"

	"ellog/internal/container"
	"ellog/internal/logrec"
	"ellog/internal/sim"
)

// Request asks for one committed update to be written to the stable
// database. Val is the object's new value; LSN orders versions.
type Request struct {
	Obj logrec.OID
	LSN logrec.LSN
	Val uint64
	Tx  logrec.TxID // writer, recorded into the stable database's version
	// Stolen marks the flush of a not-yet-committed update (steal policy);
	// Clean marks the commit-time write that clears a stolen marker.
	Stolen bool
	Clean  bool
}

// Stats summarizes flush activity.
type Stats struct {
	Flushes     uint64  // scheduled flushes completed
	Forced      uint64  // out-of-band force-flushes (random I/O at a log head)
	AvgDistance float64 // mean circular oid distance between successive flushes on a drive
	MaxPending  int     // peak backlog across the whole array
	PendingNow  int     // backlog at the time Stats was taken
	BusyFrac    float64 // mean drive utilization (busy time / elapsed / drives)
}

type drive struct {
	idx      int
	lo, span uint64
	pending  *container.Treap[Request]
	busy     bool
	debt     sim.Time // extra busy time owed by force-flushes taken out of band
	pos      uint64   // oid of the most recently flushed object
	started  bool     // pos is valid (at least one flush done)
	busySum  sim.Time
}

// Array is the set of flush drives.
type Array struct {
	clk        sim.Clock
	transfer   sim.Time
	numObjects uint64
	perDrive   uint64
	drives     []*drive
	onFlush    func(Request)

	pendingNow int
	maxPending int
	flushes    uint64
	forced     uint64
	distSum    float64
	distN      uint64

	// stall, when set, is consulted at each service start and may return
	// extra time the drive spends stalled before the transfer (fault
	// injection: a drive hiccup). nil means no stalls — the fault-free
	// model, byte for byte.
	stall func(drive int) sim.Time
}

// New builds an array of numDrives drives, each needing transfer time per
// object write. onFlush is invoked (on the clock's loop) when a flush
// completes; the logging manager uses it to apply the update to the stable
// database and garbage-collect the log record. In simulation mode clk is
// the run's *sim.Engine; the real-file backend passes its wall-clock loop,
// under which the modeled drives pay their service times in real time.
func New(clk sim.Clock, numDrives int, transfer sim.Time, numObjects uint64, onFlush func(Request)) *Array {
	if numDrives <= 0 {
		panic("flushdisk: need at least one drive")
	}
	if numObjects == 0 || numObjects%uint64(numDrives) != 0 {
		// The paper ignores the non-multiple case "for simplicity"; we
		// require it so the even range partitioning is exact.
		panic(fmt.Sprintf("flushdisk: numObjects (%d) must be a positive multiple of numDrives (%d)", numObjects, numDrives))
	}
	a := &Array{
		clk:        clk,
		transfer:   transfer,
		numObjects: numObjects,
		perDrive:   numObjects / uint64(numDrives),
		onFlush:    onFlush,
	}
	for i := 0; i < numDrives; i++ {
		a.drives = append(a.drives, &drive{
			idx:     i,
			lo:      uint64(i) * a.perDrive,
			span:    a.perDrive,
			pending: container.NewTreap[Request](uint64(i)*0x9e37 + 1),
		})
	}
	return a
}

// MaxRate returns the array's aggregate service capacity in flushes per
// second (e.g. 10 drives at 25 ms = 400/s; at 45 ms = 222/s, the paper's
// scarce-bandwidth setting).
func (a *Array) MaxRate() float64 {
	return float64(len(a.drives)) / a.transfer.Seconds()
}

func (a *Array) driveFor(obj logrec.OID) *drive {
	idx := uint64(obj) / a.perDrive
	if idx >= uint64(len(a.drives)) {
		panic(fmt.Sprintf("flushdisk: oid %d outside object space %d", obj, a.numObjects))
	}
	return a.drives[idx]
}

// Enqueue adds (or replaces, if the object already has a pending request —
// a newer committed update supersedes an older unflushed one) a flush
// request and wakes the owning drive if it is idle.
func (a *Array) Enqueue(req Request) {
	d := a.driveFor(req.Obj)
	if d.pending.Put(uint64(req.Obj), req) {
		a.pendingNow++
		if a.pendingNow > a.maxPending {
			a.maxPending = a.pendingNow
		}
	}
	a.kick(d)
}

// Remove withdraws a pending request for obj (e.g. the update's record
// became garbage some other way). It reports whether a request was pending.
// A request already being serviced cannot be withdrawn; its completion is
// harmless because the stable database applies versions by LSN.
func (a *Array) Remove(obj logrec.OID) bool {
	d := a.driveFor(obj)
	if d.pending.Delete(uint64(obj)) {
		a.pendingNow--
		return true
	}
	return false
}

// Pending reports whether obj has a queued (not in-service) request.
func (a *Array) Pending(obj logrec.OID) bool {
	d := a.driveFor(obj)
	_, ok := d.pending.Get(uint64(obj))
	return ok
}

// ForceFlush services a request immediately, out of band: the paper's
// "small amount of random I/O" when an unflushed committed update reaches
// the head of a generation and cannot be forwarded or recirculated. The
// update is applied synchronously; the drive pays for the transfer by
// accruing busy-time debt that delays its queued work.
func (a *Array) ForceFlush(req Request) {
	d := a.driveFor(req.Obj)
	if d.pending.Delete(uint64(req.Obj)) {
		a.pendingNow--
	}
	a.forced++
	d.debt += a.transfer
	d.busySum += a.transfer
	a.onFlush(req)
}

// SetStall attaches a per-drive stall injector; nil detaches it. The
// function receives the drive index and returns extra stall time charged at
// the start of the next service on that drive (0 for no stall).
func (a *Array) SetStall(fn func(drive int) sim.Time) { a.stall = fn }

// kick starts service on an idle drive with work pending.
func (a *Array) kick(d *drive) {
	if d.busy || d.pending.Len() == 0 {
		return
	}
	req, ok := a.nearest(d)
	if !ok {
		return
	}
	d.pending.Delete(uint64(req.Obj))
	a.pendingNow--
	d.busy = true
	serviceTime := a.transfer + d.debt
	d.debt = 0
	if a.stall != nil {
		serviceTime += a.stall(d.idx)
	}
	d.busySum += a.transfer
	a.clk.After(serviceTime, func() {
		if d.started {
			a.distSum += float64(circDist(d.pos, uint64(req.Obj), d.lo, d.span))
			a.distN++
		}
		d.pos = uint64(req.Obj)
		d.started = true
		d.busy = false
		a.flushes++
		a.onFlush(req)
		a.kick(d)
	})
}

// nearest picks the pending request whose oid is circularly closest to the
// drive's current head position.
func (a *Array) nearest(d *drive) (Request, bool) {
	if d.pending.Len() == 0 {
		return Request{}, false
	}
	if !d.started {
		// No position yet: take the smallest oid.
		_, req, _ := d.pending.Min()
		return req, true
	}
	var best Request
	bestDist := uint64(1) << 63
	consider := func(k uint64, v Request, ok bool) {
		if !ok {
			return
		}
		if dist := circDist(d.pos, k, d.lo, d.span); dist < bestDist {
			bestDist = dist
			best = v
		}
	}
	// Candidates: the successor and predecessor of pos, wrapping around the
	// drive's range — one of these is always the circular nearest.
	k, v, ok := d.pending.Ceiling(d.pos)
	consider(k, v, ok)
	k, v, ok = d.pending.Floor(d.pos)
	consider(k, v, ok)
	k, v, ok = d.pending.Min()
	consider(k, v, ok)
	k, v, ok = d.pending.Max()
	consider(k, v, ok)
	return best, true
}

// circDist is the circular distance between two oids within a drive's
// range [lo, lo+span): the paper's locality measure, where "the range of
// integers assigned to their disk drive wraps around".
func circDist(a, b, lo, span uint64) uint64 {
	ra, rb := a-lo, b-lo
	var d uint64
	if ra > rb {
		d = ra - rb
	} else {
		d = rb - ra
	}
	if d > span-d {
		d = span - d
	}
	return d
}

// PendingCount reports the current backlog across all drives.
func (a *Array) PendingCount() int { return a.pendingNow }

// Flushes reports scheduled flushes completed so far (cheap probe read).
func (a *Array) Flushes() uint64 { return a.flushes }

// Forced reports out-of-band force-flushes so far (cheap probe read).
func (a *Array) Forced() uint64 { return a.forced }

// Stats returns current aggregate statistics. elapsed must be the current
// simulated time (used for utilization).
func (a *Array) Stats(elapsed sim.Time) Stats {
	s := Stats{
		Flushes:    a.flushes,
		Forced:     a.forced,
		MaxPending: a.maxPending,
		PendingNow: a.pendingNow,
	}
	if a.distN > 0 {
		s.AvgDistance = a.distSum / float64(a.distN)
	}
	if elapsed > 0 {
		var busy sim.Time
		for _, d := range a.drives {
			busy += d.busySum
		}
		s.BusyFrac = busy.Seconds() / (elapsed.Seconds() * float64(len(a.drives)))
	}
	return s
}
