package flushdisk

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"ellog/internal/logrec"
	"ellog/internal/sim"
)

func collectorArray(eng *sim.Engine, drives int, transfer sim.Time, objects uint64) (*Array, *[]Request) {
	var got []Request
	a := New(eng, drives, transfer, objects, func(r Request) { got = append(got, r) })
	return a, &got
}

func TestSingleFlushTiming(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 1, 25*sim.Millisecond, 1000)
	a.Enqueue(Request{Obj: 5, LSN: 1, Val: 11})
	eng.Run(24 * sim.Millisecond)
	if len(*got) != 0 {
		t.Fatal("flush completed before transfer time")
	}
	eng.Run(25 * sim.Millisecond)
	if len(*got) != 1 || (*got)[0].Obj != 5 {
		t.Fatalf("flushes = %v", *got)
	}
}

func TestRangePartitioning(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, _ := collectorArray(eng, 10, 25*sim.Millisecond, 1000)
	// Objects 0..99 -> drive 0, 100..199 -> drive 1, etc.
	if d := a.driveFor(0); d.lo != 0 {
		t.Fatalf("oid 0 on drive starting at %d", d.lo)
	}
	if d := a.driveFor(999); d.lo != 900 {
		t.Fatalf("oid 999 on drive starting at %d", d.lo)
	}
	if d := a.driveFor(100); d.lo != 100 {
		t.Fatalf("oid 100 on drive starting at %d", d.lo)
	}
}

func TestBadPartitionPanics(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("non-multiple object count did not panic")
		}
	}()
	New(eng, 3, sim.Millisecond, 1000, nil) // 1000 % 3 != 0
}

func TestDrivesWorkInParallel(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 2, 25*sim.Millisecond, 1000)
	a.Enqueue(Request{Obj: 10, LSN: 1})  // drive 0
	a.Enqueue(Request{Obj: 600, LSN: 2}) // drive 1
	eng.Run(25 * sim.Millisecond)
	if len(*got) != 2 {
		t.Fatalf("parallel drives: %d flushes after one transfer time, want 2", len(*got))
	}
}

func TestSameDriveSerializes(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 1, 25*sim.Millisecond, 1000)
	a.Enqueue(Request{Obj: 10, LSN: 1})
	a.Enqueue(Request{Obj: 20, LSN: 2})
	eng.Run(25 * sim.Millisecond)
	if len(*got) != 1 {
		t.Fatalf("same drive: %d flushes after one transfer, want 1", len(*got))
	}
	eng.Run(50 * sim.Millisecond)
	if len(*got) != 2 {
		t.Fatalf("same drive: %d flushes after two transfers, want 2", len(*got))
	}
}

func TestShortestSeekOrder(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 1, 10*sim.Millisecond, 1000)
	// First service picks min oid (no position yet): 100. After that the
	// head sits at 100; nearest of {900, 300, 150} circularly is 150 (50),
	// then 300 (150), then 900 (dist min(600, 400)=400).
	a.Enqueue(Request{Obj: 100, LSN: 1})
	eng.Run(5 * sim.Millisecond) // 100 now in service
	a.Enqueue(Request{Obj: 900, LSN: 2})
	a.Enqueue(Request{Obj: 300, LSN: 3})
	a.Enqueue(Request{Obj: 150, LSN: 4})
	eng.Run(sim.Second)
	want := []logrec.OID{100, 150, 300, 900}
	if len(*got) != len(want) {
		t.Fatalf("flushed %d objects, want %d", len(*got), len(want))
	}
	for i, r := range *got {
		if r.Obj != want[i] {
			t.Fatalf("flush order %v, want %v", *got, want)
		}
	}
}

func TestWraparoundSeek(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 1, 10*sim.Millisecond, 1000)
	a.Enqueue(Request{Obj: 990, LSN: 1})
	eng.Run(5 * sim.Millisecond)
	// Head at 990 after first flush. Distance to 10 wraps: min(980, 20)=20,
	// distance to 500 is min(490,510)=490. So 10 flushes before 500.
	a.Enqueue(Request{Obj: 500, LSN: 2})
	a.Enqueue(Request{Obj: 10, LSN: 3})
	eng.Run(sim.Second)
	if (*got)[1].Obj != 10 || (*got)[2].Obj != 500 {
		t.Fatalf("wraparound seek order %v", *got)
	}
}

func TestCircDist(t *testing.T) {
	cases := []struct {
		a, b, lo, span, want uint64
	}{
		{0, 0, 0, 100, 0},
		{10, 30, 0, 100, 20},
		{90, 10, 0, 100, 20}, // wraps
		{110, 130, 100, 100, 20},
		{190, 110, 100, 100, 20}, // wraps within [100,200)
		{0, 50, 0, 100, 50},      // max distance
	}
	for _, c := range cases {
		if got := circDist(c.a, c.b, c.lo, c.span); got != c.want {
			t.Errorf("circDist(%d,%d,lo=%d,span=%d) = %d, want %d", c.a, c.b, c.lo, c.span, got, c.want)
		}
	}
}

func TestSupersedingEnqueueReplaces(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 1, 10*sim.Millisecond, 1000)
	a.Enqueue(Request{Obj: 100, LSN: 1})
	eng.Run(5 * sim.Millisecond) // obj 100 in service with LSN 1
	a.Enqueue(Request{Obj: 200, LSN: 2})
	a.Enqueue(Request{Obj: 200, LSN: 3, Val: 9}) // supersedes while queued
	eng.Run(sim.Second)
	if len(*got) != 2 {
		t.Fatalf("%d flushes, want 2 (replacement, not duplicate)", len(*got))
	}
	if (*got)[1].LSN != 3 || (*got)[1].Val != 9 {
		t.Fatalf("queued request not replaced: %v", (*got)[1])
	}
}

func TestRemove(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 1, 10*sim.Millisecond, 1000)
	a.Enqueue(Request{Obj: 100, LSN: 1})
	eng.Run(5 * sim.Millisecond)
	a.Enqueue(Request{Obj: 300, LSN: 2})
	if !a.Remove(300) {
		t.Fatal("Remove of queued request returned false")
	}
	if a.Remove(300) {
		t.Fatal("Remove of absent request returned true")
	}
	eng.Run(sim.Second)
	if len(*got) != 1 {
		t.Fatalf("removed request still flushed: %v", *got)
	}
}

func TestForceFlushImmediateAndCharged(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 1, 10*sim.Millisecond, 1000)
	a.Enqueue(Request{Obj: 100, LSN: 1})
	eng.Run(5 * sim.Millisecond) // 100 in service, completes at t=10ms
	a.Enqueue(Request{Obj: 400, LSN: 2})
	a.ForceFlush(Request{Obj: 200, LSN: 3})
	if len(*got) != 1 || (*got)[0].Obj != 200 {
		t.Fatalf("force flush not immediate: %v", *got)
	}
	// The queued 400 should now be delayed by the 10ms debt: service starts
	// at 10ms, takes 10+10=20ms, completes at 30ms.
	eng.Run(29 * sim.Millisecond)
	if len(*got) != 2 {
		t.Fatalf("expected only in-service flush by 29ms, got %v", *got)
	}
	eng.Run(30 * sim.Millisecond)
	if len(*got) != 3 || (*got)[2].Obj != 400 {
		t.Fatalf("debt-delayed flush wrong: %v", *got)
	}
	if s := a.Stats(eng.Now()); s.Forced != 1 || s.Flushes != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestThroughputMatchesCapacity(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 10, 25*sim.Millisecond, 10_000_000)
	if rate := a.MaxRate(); rate != 400 {
		t.Fatalf("MaxRate = %v, want 400", rate)
	}
	// Saturate: enqueue 1000 spread over all drives, run 1 second.
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 1000; i++ {
		a.Enqueue(Request{Obj: logrec.OID(rng.Uint64() % 10_000_000), LSN: logrec.LSN(i)})
	}
	eng.Run(sim.Second)
	// 10 drives * 40 per second = 400 expected.
	if n := len(*got); n < 390 || n > 410 {
		t.Fatalf("saturated throughput %d flushes/s, want ~400", n)
	}
	s := a.Stats(eng.Now())
	if s.BusyFrac < 0.95 {
		t.Fatalf("saturated BusyFrac = %v, want ~1", s.BusyFrac)
	}
	if s.MaxPending < 900 {
		t.Fatalf("MaxPending = %d, want near 1000", s.MaxPending)
	}
}

// TestBacklogImprovesLocality reproduces the qualitative claim of section 4:
// as the backlog grows, shortest-seek scheduling finds closer objects, so
// the average inter-flush distance drops.
func TestBacklogImprovesLocality(t *testing.T) {
	run := func(backlog int) float64 {
		eng := sim.NewEngine(7, 8)
		a, _ := collectorArray(eng, 1, 10*sim.Millisecond, 1_000_000)
		rng := rand.New(rand.NewPCG(9, 10))
		// Maintain a steady backlog of the given size for 2000 flushes.
		for i := 0; i < backlog; i++ {
			a.Enqueue(Request{Obj: logrec.OID(rng.Uint64() % 1_000_000)})
		}
		for i := 0; i < 2000; i++ {
			eng.Run(eng.Now() + 10*sim.Millisecond)
			a.Enqueue(Request{Obj: logrec.OID(rng.Uint64() % 1_000_000)})
		}
		return a.Stats(eng.Now()).AvgDistance
	}
	small := run(1)
	large := run(16)
	if large >= small/2 {
		t.Fatalf("locality did not improve with backlog: dist(backlog=1)=%v dist(backlog=16)=%v", small, large)
	}
}

// TestNearestIsTrueMinimum cross-checks the treap-based nearest search
// against brute force over random pending sets.
func TestNearestIsTrueMinimum(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		eng := sim.NewEngine(seed, 2)
		a, _ := collectorArray(eng, 1, sim.Millisecond, 1000)
		d := a.drives[0]
		d.started = true
		d.pos = rng.Uint64() % 1000
		oids := map[uint64]bool{}
		for i := 0; i < 1+rng.IntN(30); i++ {
			o := rng.Uint64() % 1000
			oids[o] = true
			d.pending.Put(o, Request{Obj: logrec.OID(o)})
		}
		got, ok := a.nearest(d)
		if !ok {
			return false
		}
		best := uint64(1) << 62
		for o := range oids {
			if dist := circDist(d.pos, o, 0, 1000); dist < best {
				best = dist
			}
		}
		return circDist(d.pos, uint64(got.Obj), 0, 1000) == best
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStallDelaysService(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, got := collectorArray(eng, 2, 25*sim.Millisecond, 1000)
	// Stall only drive 0, once.
	stalls := 0
	a.SetStall(func(drive int) sim.Time {
		if drive == 0 && stalls == 0 {
			stalls++
			return 40 * sim.Millisecond
		}
		return 0
	})
	a.Enqueue(Request{Obj: 5, LSN: 1})   // drive 0: stalled, lands at 65 ms
	a.Enqueue(Request{Obj: 600, LSN: 2}) // drive 1: clean, lands at 25 ms
	eng.Run(25 * sim.Millisecond)
	if len(*got) != 1 || (*got)[0].Obj != 600 {
		t.Fatalf("at 25ms flushed %v, want only obj 600", *got)
	}
	eng.Run(64 * sim.Millisecond)
	if len(*got) != 1 {
		t.Fatal("stalled flush completed early")
	}
	eng.Run(65 * sim.Millisecond)
	if len(*got) != 2 || (*got)[1].Obj != 5 {
		t.Fatalf("at 65ms flushed %v, want obj 5 second", *got)
	}
	// Detach: subsequent service is clean again.
	a.SetStall(nil)
	a.Enqueue(Request{Obj: 6, LSN: 3})
	eng.Run(90 * sim.Millisecond)
	if len(*got) != 3 {
		t.Fatalf("post-detach flush missing: %v", *got)
	}
}

func TestStatsEmpty(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	a, _ := collectorArray(eng, 2, sim.Millisecond, 1000)
	s := a.Stats(0)
	if s.Flushes != 0 || s.AvgDistance != 0 || s.BusyFrac != 0 {
		t.Fatalf("empty stats %+v", s)
	}
}
