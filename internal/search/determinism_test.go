package search

import (
	"fmt"
	"testing"

	"ellog/internal/core"
	"ellog/internal/runner"
	"ellog/internal/sim"
)

// TestMinTwoGenParallelMatchesSequential is the package's parallelism
// contract: for the same seed, fanning probes across a pool must yield a
// byte-identical result to the strictly sequential nil-pool search — the
// pool may only schedule, never perturb.
func TestMinTwoGenParallelMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		base := shortBase(0.05, 20*sim.Second)
		base.Seed = seed
		seq, err := MinTwoGen(nil, base, false, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		pool := runner.New(4)
		par, err := MinTwoGen(pool, base, false, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%#v", par) != fmt.Sprintf("%#v", seq) {
			t.Fatalf("seed %d: parallel result diverged\n seq %d+%d=%d\n par %d+%d=%d",
				seed, seq.Gen0, seq.Gen1, seq.Total, par.Gen0, par.Gen1, par.Total)
		}
		// Within one search every probe point is distinct (the cache pays
		// off across experiments sharing points), so just pin that the
		// probes actually went through the pool.
		if runs, _ := pool.Stats(); runs == 0 {
			t.Fatalf("seed %d: pool executed no runs", seed)
		}
	}
}

// TestMinLastGenParallelMatchesSequential pins the bracket search the same
// way, FW single-queue flavour.
func TestMinLastGenParallelMatchesSequential(t *testing.T) {
	base := shortBase(0.05, 20*sim.Second)
	seqSize, seqRes, err := MinLastGen(nil, base, core.ModeFirewall, nil, false, 256)
	if err != nil {
		t.Fatal(err)
	}
	parSize, parRes, err := MinLastGen(runner.New(4), base, core.ModeFirewall, nil, false, 256)
	if err != nil {
		t.Fatal(err)
	}
	if parSize != seqSize || fmt.Sprintf("%#v", parRes) != fmt.Sprintf("%#v", seqRes) {
		t.Fatalf("bracket search diverged: sequential %d, parallel %d", seqSize, parSize)
	}
}
