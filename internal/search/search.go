// Package search finds minimum disk-space configurations the way the paper
// does: "for both FW and EL, we continued to run simulations and reduce the
// disk space until we observed transactions being killed. Hence, these
// results reflect the minimum disk space requirements ... in which no
// transaction is killed" (section 4).
//
// A configuration is sufficient when the run completes with no kills and
// no emergency space. Sufficiency is monotone in practice (more blocks
// never hurt), so single dimensions are bracket searched; the
// two-generation EL split is found by scanning generation 0 and bracket
// searching generation 1 for each candidate, keeping the smallest total.
//
// Every function takes an optional *runner.Pool. With a pool, independent
// probes fan out across its workers: the bracket search probes several
// interior points per round, the generation-0 scan advances in waves, and
// repeated probe points are answered from the pool's cache. The fan-out
// widths are fixed constants — never derived from the worker count — and
// probe outcomes are folded in index order, so the result is byte-for-byte
// identical whether the pool has one worker, sixteen, or is nil (strictly
// sequential).
package search

import (
	"fmt"
	"math"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/runner"
)

// MinBlocks is the smallest workable generation: the threshold gap k=2,
// one filling block, and one block of slack.
const MinBlocks = 4

// bracketWidth is how many interior points one bracket round probes
// concurrently, and waveWidth how many generation-0 candidates one
// MinTwoGen wave scans. Constants — not worker-count-derived — so the
// probe schedule (and therefore the result) is independent of parallelism.
const (
	bracketWidth = 4
	waveWidth    = 4
)

// Probe runs one configuration with the given generation sizes and reports
// whether it sustained the workload.
func Probe(p *runner.Pool, base harness.Config, mode core.Mode, sizes []int, recirc bool) (bool, harness.Result, error) {
	cfg := base
	cfg.LM.Mode = mode
	cfg.LM.GenSizes = append([]int(nil), sizes...)
	cfg.LM.Recirculate = recirc
	res, err := p.Run(cfg)
	if err != nil {
		return false, res, err
	}
	return !res.Insufficient(), res, nil
}

// MinFirewall searches the minimum single-queue size for the FW technique,
// returning the size and the run at that size.
func MinFirewall(p *runner.Pool, base harness.Config, hi int) (int, harness.Result, error) {
	return MinLastGen(p, base, core.ModeFirewall, nil, false, hi)
}

// MinLastGen finds the minimum size of the generation after the fixed ones
// (pass fixed=nil for a single-generation log). recirc controls
// recirculation in that last generation.
//
// The search brackets: each round probes up to bracketWidth points of the
// open interval concurrently, then moves hi down to the smallest
// sufficient point and lo up past the largest insufficient one. Once the
// interval is narrow the round enumerates it exhaustively, so the returned
// size is the exact minimum — the same one the one-point-per-round binary
// search finds.
func MinLastGen(p *runner.Pool, base harness.Config, mode core.Mode, fixed []int, recirc bool, hi int) (int, harness.Result, error) {
	if hi < MinBlocks {
		hi = MinBlocks
	}
	sizes := func(last int) []int {
		out := append([]int(nil), fixed...)
		return append(out, last)
	}
	// Grow the upper bound sequentially: each doubling informs the next,
	// and a parallel overshoot would just burn probes.
	ok, res, err := Probe(p, base, mode, sizes(hi), recirc)
	if err != nil {
		return 0, res, err
	}
	for !ok {
		if hi > 1<<16 {
			return 0, res, fmt.Errorf("search: no sufficient size below %d blocks", hi)
		}
		hi *= 2
		ok, res, err = Probe(p, base, mode, sizes(hi), recirc)
		if err != nil {
			return 0, res, err
		}
	}
	lo := MinBlocks // lo-1 known insufficient by construction once loop ends
	best := res
	for lo < hi {
		// Candidate answers are lo..hi (hi known sufficient). Probe either
		// the whole remaining interval or bracketWidth evenly spaced
		// interior points.
		var pts []int
		if n := hi - lo; n <= bracketWidth {
			for v := lo; v < hi; v++ {
				pts = append(pts, v)
			}
		} else {
			for i := 1; i <= bracketWidth; i++ {
				v := lo + i*n/(bracketWidth+1)
				if len(pts) == 0 || v > pts[len(pts)-1] {
					pts = append(pts, v)
				}
			}
		}
		type outcome struct {
			ok  bool
			res harness.Result
		}
		outs := make([]outcome, len(pts))
		errs := make([]error, len(pts))
		_ = p.ForEach(len(pts), func(i int) error {
			outs[i].ok, outs[i].res, errs[i] = Probe(p, base, mode, sizes(pts[i]), recirc)
			return errs[i]
		})
		for _, err := range errs {
			if err != nil {
				return 0, best, err
			}
		}
		// Fold in ascending order: the smallest sufficient point becomes
		// the new hi, the largest insufficient point below it pushes lo.
		for i, o := range outs {
			if o.ok {
				hi = pts[i]
				best = o.res
				break
			}
		}
		for i := len(pts) - 1; i >= 0; i-- {
			if pts[i] < hi && !outs[i].ok {
				lo = pts[i] + 1
				break
			}
		}
	}
	return hi, best, nil
}

// TwoGenResult is one point of the EL minimum-space search.
type TwoGenResult struct {
	Gen0, Gen1 int
	Total      int
	Run        harness.Result
}

// MinTwoGen finds the minimum-total two-generation EL configuration by
// scanning generation 0 from MinBlocks upward — in waves of waveWidth
// candidates, each wave's generation-1 searches running concurrently — and
// bracket searching generation 1 for each candidate. The scan stops once
// the total has been rising for patience consecutive candidates past the
// best. Wave outcomes are folded in generation-0 order, so the chosen
// split does not depend on parallelism.
func MinTwoGen(p *runner.Pool, base harness.Config, recirc bool, g0Max int, g1Hi int) (TwoGenResult, error) {
	if g0Max <= 0 {
		// Generation 0 never usefully exceeds a few seconds of log
		// traffic; derive a bound from the workload's byte rate.
		bytesPerSec := base.Workload.Mix.LogBytesPerSecond(base.Workload.ArrivalRate, core.DefaultTxRecSize)
		g0Max = int(math.Ceil(4*bytesPerSec/core.DefaultBlockPayload)) + MinBlocks
	}
	if g1Hi <= 0 {
		g1Hi = 256
	}
	best := TwoGenResult{Total: math.MaxInt}
	const patience = 4
	rising := 0
	for g0 := MinBlocks; g0 <= g0Max; {
		n := g0Max - g0 + 1
		if n > waveWidth {
			n = waveWidth
		}
		type point struct {
			g1  int
			run harness.Result
			err error
		}
		pts := make([]point, n)
		// Every candidate in the wave warm-starts from the same g1Hi (the
		// previous wave's warm bound): a fixed input, unlike the sequential
		// per-candidate chain, so the searches are independent. The bound
		// only seeds the bracket — it never changes which minimum is found.
		_ = p.ForEach(n, func(i int) error {
			pt := &pts[i]
			pt.g1, pt.run, pt.err = MinLastGen(p, base, core.ModeEphemeral, []int{g0 + i}, recirc, g1Hi)
			return pt.err
		})
		stop := false
		for i := 0; i < n; i++ {
			if pts[i].err != nil {
				return best, pts[i].err
			}
			total := (g0 + i) + pts[i].g1
			if total < best.Total || (total == best.Total && best.Total != math.MaxInt) {
				// On ties prefer the larger generation 0: the records that
				// survive into the older generation are then genuinely long
				// lived, which is the configuration the paper carries into
				// its recirculation experiments (its split is 18+16, not
				// 16+18).
				best = TwoGenResult{Gen0: g0 + i, Gen1: pts[i].g1, Total: total, Run: pts[i].run}
				rising = 0
			} else if total > best.Total {
				rising++
				if rising >= patience {
					stop = true
					break
				}
			}
			// Warm-start the next wave: gen 1 never needs to grow when
			// gen 0 grows.
			g1Hi = pts[i].g1 + 2
		}
		if stop {
			break
		}
		g0 += n
	}
	if best.Total == math.MaxInt {
		return best, fmt.Errorf("search: no sufficient two-generation configuration found")
	}
	return best, nil
}

// MinChain finds a locally minimal configuration for an arbitrary number
// of generations: starting from a feasible point (growing the last
// generation until the workload fits), it repeatedly sweeps the chain,
// removing one block from each generation in turn and keeping the
// removals that stay sufficient, until a full sweep removes nothing. The
// balanced, unit-step descent avoids the degenerate basins that fully
// minimizing one coordinate at a time falls into (shrinking one
// generation to its floor first forces the others to absorb everything).
// Each probe in a sweep starts from the previous accept, so the descent
// is inherently sequential; with a pool, MinChain still benefits from the
// probe cache and from callers running independent searches beside it.
// The paper's two-generation experiments use the exhaustive MinTwoGen;
// MinChain generalizes to the N-generation chains of section 2.1.
func MinChain(p *runner.Pool, base harness.Config, recirc bool, start []int) ([]int, harness.Result, error) {
	sizes := append([]int(nil), start...)
	last := len(sizes) - 1
	ok, res, err := Probe(p, base, core.ModeEphemeral, sizes, recirc)
	if err != nil {
		return sizes, res, err
	}
	for !ok {
		if sizes[last] > 1<<16 {
			return sizes, res, fmt.Errorf("search: no feasible chain below %v", sizes)
		}
		sizes[last] *= 2
		ok, res, err = Probe(p, base, core.ModeEphemeral, sizes, recirc)
		if err != nil {
			return sizes, res, err
		}
	}
	best := res
	for {
		improved := false
		for idx := range sizes {
			if sizes[idx] <= MinBlocks {
				continue
			}
			sizes[idx]--
			ok, res, err := Probe(p, base, core.ModeEphemeral, sizes, recirc)
			if err != nil {
				return sizes, res, err
			}
			if ok {
				best = res
				improved = true
			} else {
				sizes[idx]++
			}
		}
		if !improved {
			return sizes, best, nil
		}
	}
}
