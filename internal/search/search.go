// Package search finds minimum disk-space configurations the way the paper
// does: "for both FW and EL, we continued to run simulations and reduce the
// disk space until we observed transactions being killed. Hence, these
// results reflect the minimum disk space requirements ... in which no
// transaction is killed" (section 4).
//
// A configuration is sufficient when the run completes with no kills and
// no emergency space. Sufficiency is monotone in practice (more blocks
// never hurt), so single dimensions are binary searched; the two-generation
// EL split is found by scanning generation 0 and binary searching
// generation 1 for each candidate, keeping the smallest total.
package search

import (
	"fmt"
	"math"

	"ellog/internal/core"
	"ellog/internal/harness"
)

// MinBlocks is the smallest workable generation: the threshold gap k=2,
// one filling block, and one block of slack.
const MinBlocks = 4

// Probe runs one configuration with the given generation sizes and reports
// whether it sustained the workload.
func Probe(base harness.Config, mode core.Mode, sizes []int, recirc bool) (bool, harness.Result, error) {
	cfg := base
	cfg.LM.Mode = mode
	cfg.LM.GenSizes = sizes
	cfg.LM.Recirculate = recirc
	res, err := harness.Run(cfg)
	if err != nil {
		return false, res, err
	}
	return !res.Insufficient(), res, nil
}

// MinFirewall binary searches the minimum single-queue size for the FW
// technique, returning the size and the run at that size.
func MinFirewall(base harness.Config, hi int) (int, harness.Result, error) {
	return MinLastGen(base, core.ModeFirewall, nil, false, hi)
}

// MinLastGen binary searches the minimum size of the generation after the
// fixed ones (pass fixed=nil for a single-generation log). recirc controls
// recirculation in that last generation.
func MinLastGen(base harness.Config, mode core.Mode, fixed []int, recirc bool, hi int) (int, harness.Result, error) {
	if hi < MinBlocks {
		hi = MinBlocks
	}
	sizes := func(last int) []int {
		out := append([]int(nil), fixed...)
		return append(out, last)
	}
	ok, res, err := Probe(base, mode, sizes(hi), recirc)
	if err != nil {
		return 0, res, err
	}
	for !ok {
		if hi > 1<<16 {
			return 0, res, fmt.Errorf("search: no sufficient size below %d blocks", hi)
		}
		hi *= 2
		ok, res, err = Probe(base, mode, sizes(hi), recirc)
		if err != nil {
			return 0, res, err
		}
	}
	lo := MinBlocks // lo-1 known insufficient by construction once loop ends
	best := res
	for lo < hi {
		mid := (lo + hi) / 2
		ok, res, err := Probe(base, mode, sizes(mid), recirc)
		if err != nil {
			return 0, res, err
		}
		if ok {
			hi = mid
			best = res
		} else {
			lo = mid + 1
		}
	}
	return hi, best, nil
}

// TwoGenResult is one point of the EL minimum-space search.
type TwoGenResult struct {
	Gen0, Gen1 int
	Total      int
	Run        harness.Result
}

// MinTwoGen finds the minimum-total two-generation EL configuration by
// scanning generation 0 from MinBlocks upward and binary searching
// generation 1 for each candidate. The scan stops once the total has
// been rising for patience consecutive candidates past the best.
func MinTwoGen(base harness.Config, recirc bool, g0Max int, g1Hi int) (TwoGenResult, error) {
	if g0Max <= 0 {
		// Generation 0 never usefully exceeds a few seconds of log
		// traffic; derive a bound from the workload's byte rate.
		bytesPerSec := base.Workload.Mix.LogBytesPerSecond(base.Workload.ArrivalRate, core.DefaultTxRecSize)
		g0Max = int(math.Ceil(4*bytesPerSec/core.DefaultBlockPayload)) + MinBlocks
	}
	if g1Hi <= 0 {
		g1Hi = 256
	}
	best := TwoGenResult{Total: math.MaxInt}
	const patience = 4
	rising := 0
	for g0 := MinBlocks; g0 <= g0Max; g0++ {
		g1, run, err := MinLastGen(base, core.ModeEphemeral, []int{g0}, recirc, g1Hi)
		if err != nil {
			return best, err
		}
		total := g0 + g1
		if total < best.Total || (total == best.Total && best.Total != math.MaxInt) {
			// On ties prefer the larger generation 0: the records that
			// survive into the older generation are then genuinely long
			// lived, which is the configuration the paper carries into its
			// recirculation experiments (its split is 18+16, not 16+18).
			best = TwoGenResult{Gen0: g0, Gen1: g1, Total: total, Run: run}
			rising = 0
		} else if total > best.Total {
			rising++
			if rising >= patience {
				break
			}
		}
		// Warm-start the next binary search: gen 1 never needs to grow
		// when gen 0 grows.
		g1Hi = g1 + 2
	}
	if best.Total == math.MaxInt {
		return best, fmt.Errorf("search: no sufficient two-generation configuration found")
	}
	return best, nil
}

// MinChain finds a locally minimal configuration for an arbitrary number
// of generations: starting from a feasible point (growing the last
// generation until the workload fits), it repeatedly tries to remove one
// block from each generation in round-robin order, keeping any removal
// that stays sufficient, until no single-block removal works. The
// balanced, unit-step descent avoids the degenerate basins that fully
// minimizing one coordinate at a time falls into (shrinking the last
// generation to its floor first forces the middle generation to absorb
// everything). The paper's two-generation experiments use the exhaustive
// MinTwoGen; MinChain generalizes to the N-generation chains of
// section 2.1.
func MinChain(base harness.Config, recirc bool, start []int) ([]int, harness.Result, error) {
	sizes := append([]int(nil), start...)
	last := len(sizes) - 1
	ok, res, err := Probe(base, core.ModeEphemeral, sizes, recirc)
	if err != nil {
		return sizes, res, err
	}
	for !ok {
		if sizes[last] > 1<<16 {
			return sizes, res, fmt.Errorf("search: no feasible chain below %v", sizes)
		}
		sizes[last] *= 2
		ok, res, err = Probe(base, core.ModeEphemeral, sizes, recirc)
		if err != nil {
			return sizes, res, err
		}
	}
	best := res
	for {
		improved := false
		for idx := range sizes {
			if sizes[idx] <= MinBlocks {
				continue
			}
			sizes[idx]--
			ok, res, err := Probe(base, core.ModeEphemeral, sizes, recirc)
			if err != nil {
				return sizes, res, err
			}
			if ok {
				best = res
				improved = true
			} else {
				sizes[idx]++
			}
		}
		if !improved {
			return sizes, best, nil
		}
	}
}
