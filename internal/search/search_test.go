package search

import (
	"testing"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/sim"
)

// shortBase shrinks the paper frame for fast searching in tests.
func shortBase(fracLong float64, runtime sim.Time) harness.Config {
	cfg := harness.PaperDefaults(fracLong)
	cfg.Workload.Runtime = runtime
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000
	return cfg
}

func TestProbeSufficientAndNot(t *testing.T) {
	base := shortBase(0.05, 30*sim.Second)
	ok, res, err := Probe(nil, base, core.ModeFirewall, []int{200}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("200-block FW insufficient:\n%s", res.LM)
	}
	ok, res, err = Probe(nil, base, core.ModeFirewall, []int{10}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("10-block FW sufficient?!\n%s", res.LM)
	}
	if res.LM.Killed == 0 {
		t.Fatal("insufficient run reports no kills")
	}
}

func TestMinFirewallFindsBoundary(t *testing.T) {
	base := shortBase(0.05, 30*sim.Second)
	size, res, err := MinFirewall(nil, base, 256)
	if err != nil {
		t.Fatal(err)
	}
	// A 10 s transaction holds ~11.3 blocks/s x 10 s of log: expect a
	// minimum in the rough vicinity of 120 blocks.
	if size < 100 || size > 150 {
		t.Fatalf("FW minimum %d blocks outside plausible range:\n%s", size, res.LM)
	}
	if res.Insufficient() {
		t.Fatal("returned run insufficient")
	}
	// The boundary is real: one block less must fail.
	ok, _, err := Probe(nil, base, core.ModeFirewall, []int{size - 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("size-1 (%d) still sufficient — not a minimum", size-1)
	}
}

func TestMinFirewallGrowsUpperBound(t *testing.T) {
	base := shortBase(0.05, 30*sim.Second)
	// Deliberately low initial hi: the search must expand it.
	size, _, err := MinFirewall(nil, base, 8)
	if err != nil {
		t.Fatal(err)
	}
	if size < 100 || size > 150 {
		t.Fatalf("FW minimum %d with low initial bound", size)
	}
}

func TestMinTwoGenBeatsFirewall(t *testing.T) {
	base := shortBase(0.05, 30*sim.Second)
	two, err := MinTwoGen(nil, base, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fw, _, err := MinFirewall(nil, base, 256)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("EL minimum %d+%d=%d vs FW %d", two.Gen0, two.Gen1, two.Total, fw)
	if two.Total*2 >= fw {
		t.Fatalf("EL (%d blocks) not at least 2x better than FW (%d) at 5%% mix", two.Total, fw)
	}
	if two.Run.Insufficient() {
		t.Fatal("winning configuration insufficient")
	}
}

func TestRecirculationReducesLastGeneration(t *testing.T) {
	base := shortBase(0.05, 30*sim.Second)
	two, err := MinTwoGen(nil, base, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g1NoRecirc := two.Gen1
	g1Recirc, res, err := MinLastGen(nil, base, core.ModeEphemeral, []int{two.Gen0}, true, g1NoRecirc+2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gen1 without recirculation: %d, with: %d", g1NoRecirc, g1Recirc)
	if g1Recirc > g1NoRecirc {
		t.Fatalf("recirculation made the last generation larger (%d > %d)", g1Recirc, g1NoRecirc)
	}
	if g1Recirc == g1NoRecirc {
		t.Fatalf("recirculation gave no space benefit (both %d)", g1Recirc)
	}
	if res.LM.Recirculated == 0 {
		t.Fatal("minimum recirculating config never recirculated")
	}
}

func TestMinChainThreeGenerations(t *testing.T) {
	base := shortBase(0.05, 30*sim.Second)
	sizes, res, err := MinChain(nil, base, true, []int{24, 24, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 {
		t.Fatalf("sizes %v", sizes)
	}
	total := sizes[0] + sizes[1] + sizes[2]
	t.Logf("three-generation minimum: %v (total %d)", sizes, total)
	if res.Insufficient() {
		t.Fatal("final configuration insufficient")
	}
	// Must not be worse than a very loose bound; the two-generation
	// minimum is ~28-33 with recirculation.
	if total > 60 {
		t.Fatalf("coordinate descent stalled: total %d", total)
	}
	// Each coordinate is at a boundary: shrinking any one breaks it.
	for i := range sizes {
		if sizes[i] <= MinBlocks {
			continue
		}
		work := append([]int(nil), sizes...)
		work[i]--
		ok, _, err := Probe(nil, base, core.ModeEphemeral, work, true)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("generation %d not at its boundary: %v still sufficient", i, work)
		}
	}
}
