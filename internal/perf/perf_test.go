package perf

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := NewReport(1, Frame{RuntimeSeconds: 40, Objects: 1_000_000, Mixes: []float64{0.05, 0.4}})
	r.Set("fig456", "fw_blocks_5pct", 123)
	r.Set("fig456", "el_blocks_5pct", 34)
	r.Set("engine", "allocs_per_op", 0)
	r.SetInformational("engine", "ns_per_op", 45.2)
	return r
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !SameFrame(r, got) {
		t.Fatal("frame did not round-trip")
	}
	if v, ok := got.Get("fig456", "fw_blocks_5pct"); !ok || v != 123 {
		t.Fatalf("fw_blocks_5pct = %v,%v", v, ok)
	}
	if !got.IsInformational("engine", "ns_per_op") {
		t.Fatal("informational flag did not round-trip")
	}
	if got.IsInformational("engine", "allocs_per_op") {
		t.Fatal("allocs_per_op wrongly informational")
	}
}

func TestReportEncodeStable(t *testing.T) {
	a, _ := sampleReport().Encode()
	b, _ := sampleReport().Encode()
	if string(a) != string(b) {
		t.Fatal("Encode is not deterministic for identical reports")
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/9","suites":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("ReadFile accepted a foreign schema")
	}
}

func TestDiffWithinTolerance(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Set("fig456", "fw_blocks_5pct", 123*1.10) // +10% < 15%
	deltas, regressed := Diff(base, cur, 0.15)
	if regressed {
		t.Fatal("10% move past a 15% tolerance flagged as regression")
	}
	found := false
	for _, d := range deltas {
		if d.Metric == "fw_blocks_5pct" {
			found = true
			if math.Abs(d.Rel-0.10) > 1e-9 || d.Exceeds {
				t.Fatalf("delta = %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("compared metric missing from deltas")
	}
}

func TestDiffFlagsRegressionPastTolerance(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Set("fig456", "el_blocks_5pct", 34*1.30) // +30% > 15%
	deltas, regressed := Diff(base, cur, 0.15)
	if !regressed {
		t.Fatal("30% move past a 15% tolerance not flagged")
	}
	for _, d := range deltas {
		if d.Metric == "el_blocks_5pct" && !d.Exceeds {
			t.Fatalf("delta not marked exceeding: %+v", d)
		}
	}
	// Large *improvements* fail too: the baseline is stale either way.
	cur2 := sampleReport()
	cur2.Set("fig456", "el_blocks_5pct", 34*0.5)
	if _, regressed := Diff(base, cur2, 0.15); !regressed {
		t.Fatal("-50% move not flagged (baseline must be refreshed)")
	}
}

func TestDiffInformationalNeverGates(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Set("engine", "ns_per_op", 45.2*10) // 10x slower, but informational
	if _, regressed := Diff(base, cur, 0.15); regressed {
		t.Fatal("informational metric gated the diff")
	}
}

func TestDiffMissingGatedMetricRegresses(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	delete(cur.Suites["fig456"], "fw_blocks_5pct")
	deltas, regressed := Diff(base, cur, 0.15)
	if !regressed {
		t.Fatal("vanished gated metric not flagged")
	}
	for _, d := range deltas {
		if d.Metric == "fw_blocks_5pct" && (!d.Missing || !d.Exceeds) {
			t.Fatalf("missing metric delta = %+v", d)
		}
	}
}

func TestDiffAddedMetricDoesNotGate(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Set("fig456", "brand_new_metric", 7)
	deltas, regressed := Diff(base, cur, 0.15)
	if regressed {
		t.Fatal("new metric failed the gate")
	}
	found := false
	for _, d := range deltas {
		if d.Metric == "brand_new_metric" {
			found = d.Added
		}
	}
	if !found {
		t.Fatal("added metric not reported")
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Set("engine", "allocs_per_op", 2) // 0 → 2: the zero-alloc gate
	if _, regressed := Diff(base, cur, 0.15); !regressed {
		t.Fatal("allocation creep from a zero baseline not flagged")
	}
	// 0 → 0 stays clean.
	if _, regressed := Diff(base, sampleReport(), 0.15); regressed {
		t.Fatal("identical reports flagged")
	}
}

func TestFormatDeltas(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Set("fig456", "el_blocks_5pct", 50)
	deltas, _ := Diff(base, cur, 0.15)
	out := FormatDeltas(deltas, 0.15, false)
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "el_blocks_5pct") {
		t.Fatalf("format output missing regression line:\n%s", out)
	}
}

func TestFailureSummaryNamesOffendersWithBothValues(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Set("fig456", "el_blocks_5pct", 50) // 34 -> 50: +47%
	deltas, regressed := Diff(base, cur, 0.15)
	if !regressed {
		t.Fatal("regression not flagged")
	}
	sum := FailureSummary(deltas)
	for _, want := range []string{"FAIL: 1 gated metric(s)", "fig456/el_blocks_5pct", "34", "50", "+47.1%"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
	if strings.Contains(sum, "fw_blocks_5pct") {
		t.Fatalf("summary %q names a within-tolerance metric", sum)
	}

	// A missing gated metric is named with its baseline value.
	cur2 := sampleReport()
	delete(cur2.Suites["fig456"], "el_blocks_5pct")
	deltas2, _ := Diff(base, cur2, 0.15)
	sum2 := FailureSummary(deltas2)
	if !strings.Contains(sum2, "el_blocks_5pct missing (base 34)") {
		t.Fatalf("missing-metric summary wrong: %q", sum2)
	}

	// No failures, no line.
	clean, _ := Diff(base, sampleReport(), 0.15)
	if s := FailureSummary(clean); s != "" {
		t.Fatalf("clean diff produced a failure summary: %q", s)
	}
}

func TestMeasureEngineZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full benchmark; skipped with -short")
	}
	eb := MeasureEngine()
	if eb.AllocsPerOp != 0 || eb.BytesPerOp != 0 {
		t.Fatalf("engine hot path allocates: %v allocs/op, %v B/op", eb.AllocsPerOp, eb.BytesPerOp)
	}
	if eb.NsPerOp <= 0 || eb.EventsPerS <= 0 {
		t.Fatalf("implausible timing: %+v", eb)
	}
	r := NewReport(1, Frame{})
	eb.AddTo(r)
	if !r.IsInformational("engine", "ns_per_op") || r.IsInformational("engine", "allocs_per_op") {
		t.Fatal("AddTo gating flags wrong")
	}
}

func TestCPUProfileHooks(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = i * i
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}
	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}
}
