package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function. Intended for `elbench -cpuprofile`: profile a full experiment
// run, then feed the output to `go tool pprof` to find the next hot-path
// allocation or dispatch cost to eliminate.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("perf: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("perf: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile forces a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes the allocation profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perf: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("perf: heap profile: %w", err)
	}
	return nil
}
