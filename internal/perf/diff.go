package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Delta is one metric's comparison between a baseline and a new report.
type Delta struct {
	Suite, Metric string
	Base, New     float64
	Rel           float64 // (New-Base)/Base; ±Inf when Base is 0 and New is not
	Missing       bool    // metric present in the baseline, absent from the new report
	Added         bool    // metric absent from the baseline, present in the new report
	Informational bool    // excluded from gating (per either report)
	Exceeds       bool    // gated metric moved past the tolerance (or went missing)
}

// Diff compares cur against base with a relative tolerance (0.15 = ±15%).
// It returns every metric's delta, sorted by suite then metric, and whether
// any gated metric regressed past tolerance. Any change past tolerance —
// in either direction — fails the gate: these are deterministic simulation
// metrics, so an unexplained improvement is as suspicious as a loss, and
// either means the committed baseline no longer describes the code.
func Diff(base, cur *Report, tol float64) ([]Delta, bool) {
	var out []Delta
	regressed := false
	info := func(suite, metric string) bool {
		return base.IsInformational(suite, metric) || cur.IsInformational(suite, metric)
	}
	for suite, bs := range base.Suites {
		for metric, bv := range bs {
			d := Delta{Suite: suite, Metric: metric, Base: bv, Informational: info(suite, metric)}
			nv, ok := cur.Get(suite, metric)
			if !ok {
				d.Missing = true
				d.Rel = math.NaN()
				if !d.Informational {
					d.Exceeds = true
					regressed = true
				}
				out = append(out, d)
				continue
			}
			d.New = nv
			switch {
			case bv == nv:
				d.Rel = 0
			case bv == 0:
				d.Rel = math.Inf(sign(nv))
			default:
				d.Rel = (nv - bv) / math.Abs(bv)
			}
			if !d.Informational && math.Abs(d.Rel) > tol {
				d.Exceeds = true
				regressed = true
			}
			out = append(out, d)
		}
	}
	for suite, cs := range cur.Suites {
		for metric := range cs {
			if _, ok := base.Get(suite, metric); ok {
				continue
			}
			v, _ := cur.Get(suite, metric)
			// New metrics never fail the gate; they start gating once the
			// baseline is refreshed.
			out = append(out, Delta{Suite: suite, Metric: metric, New: v, Added: true, Informational: info(suite, metric)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Metric < out[j].Metric
	})
	return out, regressed
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// FormatDeltas renders a comparison as an aligned text table. With verbose
// false, within-tolerance gated metrics are summarized rather than listed.
func FormatDeltas(deltas []Delta, tol float64, verbose bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "perfdiff (tolerance ±%.0f%%)\n", tol*100)
	fmt.Fprintf(&b, "%-44s %14s %14s %9s\n", "suite/metric", "base", "new", "delta")
	quiet := 0
	for _, d := range deltas {
		name := d.Suite + "/" + d.Metric
		switch {
		case d.Missing:
			fmt.Fprintf(&b, "%-44s %14.4g %14s %9s  MISSING%s\n", name, d.Base, "-", "-", gateTag(d))
		case d.Added:
			fmt.Fprintf(&b, "%-44s %14s %14.4g %9s  new metric\n", name, "-", d.New, "-")
		case !verbose && !d.Exceeds && !d.Informational:
			quiet++
		default:
			tag := ""
			if d.Informational {
				tag = "  (informational)"
			} else if d.Exceeds {
				tag = "  REGRESSION"
			}
			fmt.Fprintf(&b, "%-44s %14.4g %14.4g %+8.1f%%%s\n", name, d.Base, d.New, d.Rel*100, tag)
		}
	}
	if quiet > 0 {
		fmt.Fprintf(&b, "(%d gated metrics within tolerance; -v lists them)\n", quiet)
	}
	return b.String()
}

// FailureSummary renders the single actionable line for a failed gate:
// every offending metric by name with both values, so a CI log's last line
// says exactly what moved without scrolling back through the table.
// Returns "" when no gated metric exceeded tolerance.
func FailureSummary(deltas []Delta) string {
	var parts []string
	for _, d := range deltas {
		if !d.Exceeds {
			continue
		}
		name := d.Suite + "/" + d.Metric
		if d.Missing {
			parts = append(parts, fmt.Sprintf("%s missing (base %.4g)", name, d.Base))
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.4g -> %.4g (%+.1f%%)", name, d.Base, d.New, d.Rel*100))
	}
	if len(parts) == 0 {
		return ""
	}
	return fmt.Sprintf("FAIL: %d gated metric(s) past tolerance: %s", len(parts), strings.Join(parts, ", "))
}

func gateTag(d Delta) string {
	if d.Informational {
		return " (informational)"
	}
	return " REGRESSION"
}
