package perf

import (
	"testing"

	"ellog/internal/sim"
)

// EngineBench is the engine hot-path micro-benchmark result: the cost of
// one schedule→fire cycle through the event arena.
type EngineBench struct {
	NsPerOp     float64 // wall time per scheduled+fired event (machine-dependent)
	AllocsPerOp float64 // heap allocations per event (deterministic: must be 0)
	BytesPerOp  float64 // heap bytes per event (deterministic: must be 0)
	EventsPerS  float64 // events dispatched per wall second (machine-dependent)
}

// MeasureEngine benchmarks the arena engine's schedule/fire/cancel loop
// using the testing package's benchmark driver (usable outside tests), so
// elbench can emit the same ns/op + allocs/op numbers `go test -bench`
// reports — but machine-readably.
func MeasureEngine() EngineBench {
	e := sim.NewEngine(1, 2)
	nop := func() {}
	// Warm the arena so the measurement sees steady state, not slab growth.
	for i := 0; i < 1024; i++ {
		e.After(sim.Time(i%97), nop)
	}
	e.Run(e.Now() + 1000)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.After(sim.Time(i%97), nop)
			if i%16 == 15 {
				id := e.After(200, nop)
				e.Cancel(id)
			}
			if i%64 == 63 {
				e.Run(e.Now() + 100)
			}
		}
		e.Run(e.Now() + 1000)
	})
	ns := float64(r.NsPerOp())
	out := EngineBench{
		NsPerOp:     ns,
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
	if ns > 0 {
		out.EventsPerS = 1e9 / ns
	}
	return out
}

// AddTo records the micro-benchmark into a report under the "engine" suite.
// Allocation counts are deterministic and gated; timing is informational.
func (eb EngineBench) AddTo(r *Report) {
	r.Set("engine", "allocs_per_op", eb.AllocsPerOp)
	r.Set("engine", "bytes_per_op", eb.BytesPerOp)
	r.SetInformational("engine", "ns_per_op", eb.NsPerOp)
	r.SetInformational("engine", "events_per_s", eb.EventsPerS)
}
