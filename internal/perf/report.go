// Package perf is the repository's performance-measurement harness: a
// machine-readable benchmark result model (written by `elbench -json` as
// BENCH_*.json), a comparator for gating CI on regressions (`perfdiff`),
// a micro-benchmark of the simulation engine's hot path, and CPU/heap
// profile hooks for finding the next allocation to eliminate.
//
// The paper's evaluation method — "continu[ing] to run simulations and
// reduce the disk space until we observed transactions being killed" — is
// throughput-bound: every data point costs hundreds of complete runs, so
// simulator speed is the experiment budget. This package makes that speed
// (and the allocation discipline behind it) a number that is recorded,
// diffed, and enforced rather than remembered.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// SchemaVersion identifies the report layout. Bump when the JSON shape
// changes incompatibly; perfdiff refuses to compare different schemas.
const SchemaVersion = "ellog-bench/1"

// Suite maps metric name → value. Metric names use unit suffixes by
// convention (_blocks, _per_s, _bytes, _ns, _allocs) so readers do not need
// a side table.
type Suite map[string]float64

// Frame records the experiment frame a report was measured at. Reports are
// only comparable within one frame: halving the simulated runtime halves
// most counters legitimately.
type Frame struct {
	RuntimeSeconds float64   `json:"runtime_seconds"`
	Objects        uint64    `json:"objects"`
	Mixes          []float64 `json:"mixes,omitempty"`
}

// Report is the benchmark result model: suite → metric → value, plus the
// seed and frame needed to reproduce it. Simulation-derived metrics are
// deterministic for a given seed and frame; wall-clock-derived metrics are
// not, and are listed in Informational so the comparator reports them
// without gating on them.
type Report struct {
	Schema    string           `json:"schema"`
	Seed      uint64           `json:"seed"`
	Frame     Frame            `json:"frame"`
	GoVersion string           `json:"go_version"`
	Suites    map[string]Suite `json:"suites"`
	// Informational lists "suite/metric" keys excluded from regression
	// gating (timing-derived, machine-dependent values).
	Informational []string `json:"informational,omitempty"`
}

// NewReport returns an empty report for the given seed and frame.
func NewReport(seed uint64, frame Frame) *Report {
	return &Report{
		Schema:    SchemaVersion,
		Seed:      seed,
		Frame:     frame,
		GoVersion: runtime.Version(),
		Suites:    make(map[string]Suite),
	}
}

// Set records one metric value.
func (r *Report) Set(suite, metric string, value float64) {
	s, ok := r.Suites[suite]
	if !ok {
		s = make(Suite)
		r.Suites[suite] = s
	}
	s[metric] = value
}

// SetInformational records a metric and marks it excluded from gating.
func (r *Report) SetInformational(suite, metric string, value float64) {
	r.Set(suite, metric, value)
	key := suite + "/" + metric
	for _, k := range r.Informational {
		if k == key {
			return
		}
	}
	r.Informational = append(r.Informational, key)
	sort.Strings(r.Informational)
}

// Get looks up a metric value.
func (r *Report) Get(suite, metric string) (float64, bool) {
	s, ok := r.Suites[suite]
	if !ok {
		return 0, false
	}
	v, ok := s[metric]
	return v, ok
}

// IsInformational reports whether suite/metric is excluded from gating.
func (r *Report) IsInformational(suite, metric string) bool {
	key := suite + "/" + metric
	for _, k := range r.Informational {
		if k == key {
			return true
		}
	}
	return false
}

// Encode renders the report as indented, key-sorted JSON (stable for
// committing as a baseline and diffing as text).
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile parses a report from path and validates its schema.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema %q, this binary speaks %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// SameFrame reports whether two reports were measured at a comparable
// frame (seed, runtime, object count, mixes).
func SameFrame(a, b *Report) bool {
	if a.Seed != b.Seed || a.Frame.RuntimeSeconds != b.Frame.RuntimeSeconds || a.Frame.Objects != b.Frame.Objects {
		return false
	}
	if len(a.Frame.Mixes) != len(b.Frame.Mixes) {
		return false
	}
	for i := range a.Frame.Mixes {
		if a.Frame.Mixes[i] != b.Frame.Mixes[i] {
			return false
		}
	}
	return true
}
