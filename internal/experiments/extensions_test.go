package experiments

import (
	"strings"
	"testing"

	"ellog/internal/sim"
)

func TestHintsReduceForwarding(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	o := quick()
	o.Mixes = []float64{0.05}
	r, err := Hints(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.HintForward >= r.BaseForward {
		t.Fatalf("hints did not reduce forwarding: %d vs %d", r.HintForward, r.BaseForward)
	}
	if r.MinGen0Hints >= r.MinGen0NoHints {
		t.Fatalf("hints did not shrink generation 0: %d vs %d", r.MinGen0Hints, r.MinGen0NoHints)
	}
	if !strings.Contains(FormatHints(r), "hint") {
		t.Fatal("format missing title")
	}
}

func TestChainDepthPaysOffOnWideLifetimes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	o := Options{Seed: 1, Runtime: 120 * sim.Second, NumObjects: 1_000_000}
	r, err := Chain(o)
	if err != nil {
		t.Fatal(err)
	}
	three := r.Three[0] + r.Three[1] + r.Three[2]
	t.Logf("FW=%d EL2=%d EL3=%d (%v)", r.FWBlocks, r.Two.Total, three, r.Three)
	if r.Two.Total >= r.FWBlocks {
		t.Fatalf("EL2 (%d) not below FW (%d)", r.Two.Total, r.FWBlocks)
	}
	// With 60 s transactions in the mix, FW needs an enormous log; the
	// segmented log's advantage explodes with the lifetime spread (the
	// paper: "the longer the lifetimes ... the greater is the reduction").
	if r.FWBlocks < 5*r.Two.Total {
		t.Fatalf("wide lifetimes should hurt FW much more: FW=%d EL2=%d", r.FWBlocks, r.Two.Total)
	}
	// A recirculating last generation already packs mixed lifetimes well,
	// so the third generation buys little space here — it must simply not
	// cost much. (Its real payoff is operational: per-lifetime-class
	// isolation and, with hints, bandwidth.)
	if three > r.Two.Total+r.Two.Total/6 {
		t.Fatalf("third generation cost too much space: %d vs %d", three, r.Two.Total)
	}
	if !strings.Contains(FormatChain(r), "Generation depth") {
		t.Fatal("format missing title")
	}
}

func TestHybridCompareShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	o := Options{Seed: 1, Runtime: 50 * sim.Second, NumObjects: 1_000_000, Mixes: []float64{0.05}}
	r, err := HybridCompare(o)
	if err != nil {
		t.Fatal(err)
	}
	fw, el, hyb := 0, 1, 2
	if r.Blocks[el] >= r.Blocks[fw] {
		t.Fatalf("EL blocks %d not below FW %d", r.Blocks[el], r.Blocks[fw])
	}
	if r.MemPeak[hyb] >= r.MemPeak[el] {
		t.Fatalf("hybrid memory %.0f not below EL %.0f", r.MemPeak[hyb], r.MemPeak[el])
	}
	if r.Bandwidth[hyb] <= r.Bandwidth[fw] {
		t.Fatalf("hybrid bandwidth %.2f not above FW's pure appends %.2f", r.Bandwidth[hyb], r.Bandwidth[fw])
	}
	if r.HybridRegens == 0 {
		t.Fatal("hybrid never regenerated")
	}
	if !strings.Contains(FormatHybridCompare(r), "hybrid") {
		t.Fatal("format missing title")
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	o := Options{Seed: 1, Runtime: 200 * sim.Second, NumObjects: 1_000_000, Mixes: []float64{0.05}}
	r, err := Adaptive(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.LateKills != 0 {
		t.Fatalf("%d kills after convergence", r.LateKills)
	}
	total := r.FinalSizes[0] + r.FinalSizes[1]
	if total > 2*r.OfflineMin {
		t.Fatalf("adaptive total %d more than 2x offline minimum %d", total, r.OfflineMin)
	}
	if r.Grown == 0 {
		t.Fatal("controller never grew from an undersized start")
	}
	if !strings.Contains(FormatAdaptive(r), "Adaptive") {
		t.Fatal("format missing title")
	}
}

func TestArrivalSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	o := quick()
	o.Mixes = []float64{0.05}
	points, err := ArrivalSensitivity(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	det, poi, bur := points[0], points[1], points[2]
	// Variability costs space: deterministic <= poisson <= bursty, with
	// bursty clearly above deterministic for both techniques.
	if bur.FWBlocks <= det.FWBlocks {
		t.Fatalf("bursty FW %d not above deterministic %d", bur.FWBlocks, det.FWBlocks)
	}
	if bur.ELBlocks <= det.ELBlocks {
		t.Fatalf("bursty EL %d not above deterministic %d", bur.ELBlocks, det.ELBlocks)
	}
	if poi.FWBlocks < det.FWBlocks {
		t.Fatalf("poisson FW %d below deterministic %d", poi.FWBlocks, det.FWBlocks)
	}
	// EL keeps beating FW under every process.
	for _, p := range points {
		if p.ELBlocks >= p.FWBlocks {
			t.Fatalf("%v: EL %d not below FW %d", p.Process, p.ELBlocks, p.FWBlocks)
		}
	}
	if !strings.Contains(FormatArrivals(points), "Arrival") {
		t.Fatal("format missing title")
	}
}

func TestStealAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	o := quick()
	o.Mixes = []float64{0.05}
	r, err := Steal(o)
	if err != nil {
		t.Fatal(err)
	}
	// Steal pays extra stable-database writes (stolen flush + commit-time
	// clean) for the same workload.
	if r.StealFlush <= r.NoStealFlush {
		t.Fatalf("steal did not increase DB writes: %d vs %d", r.StealFlush, r.NoStealFlush)
	}
	// And the log itself must remain workable: the steal minimum stays in
	// the same ballpark (stolen records live a little longer).
	if r.MinTotalS > r.MinTotalNS*2 {
		t.Fatalf("steal blew up the log: %d vs %d blocks", r.MinTotalS, r.MinTotalNS)
	}
	if !strings.Contains(FormatSteal(r), "steal") {
		t.Fatal("format missing title")
	}
}

func TestScaleLinearThroughputFlatRecovery(t *testing.T) {
	o := Options{Seed: 1, Runtime: 30 * sim.Second, NumObjects: 8_000_000}
	points, err := Scale(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	one, eight := points[0], points[3]
	if one.Insufficient || eight.Insufficient {
		t.Fatalf("budgets insufficient: %+v", points)
	}
	// Linear throughput: 8 partitions sustain ~8x the commits.
	if eight.TPS < one.TPS*7 {
		t.Fatalf("throughput did not scale: %0.1f -> %0.1f commit/s", one.TPS, eight.TPS)
	}
	// Flat parallel recovery: within 1.5x of a single partition's pass,
	// while the serial total grows ~8x.
	if eight.RecoveryPar > one.RecoveryPar*3/2 {
		t.Fatalf("parallel recovery grew: %v -> %v", one.RecoveryPar, eight.RecoveryPar)
	}
	if eight.RecoverySer < one.RecoverySer*6 {
		t.Fatalf("serial recovery should grow with partitions: %v -> %v", one.RecoverySer, eight.RecoverySer)
	}
	if !strings.Contains(FormatScale(points), "Shared-nothing") {
		t.Fatal("format missing title")
	}
}
