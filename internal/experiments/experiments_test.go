package experiments

import (
	"strings"
	"testing"

	"ellog/internal/sim"
)

// quick scales the frame down so every experiment runs in seconds while
// preserving the paper's qualitative shapes.
func quick() Options {
	return Options{
		Seed:       1,
		Runtime:    40 * sim.Second,
		NumObjects: 1_000_000,
		Mixes:      []float64{0.05, 0.20, 0.40},
	}
}

func TestFig456Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	points, err := Fig456(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3", len(points))
	}
	// Figure 4 shape: EL always needs less space; the advantage shrinks as
	// the long fraction grows.
	prevRatio := 1e9
	for _, p := range points {
		if p.ELBlocks >= p.FWBlocks {
			t.Fatalf("mix %.0f%%: EL %d blocks >= FW %d", p.FracLong*100, p.ELBlocks, p.FWBlocks)
		}
		ratio := float64(p.FWBlocks) / float64(p.ELBlocks)
		if ratio >= prevRatio {
			t.Fatalf("space advantage did not shrink with the mix: %.2f then %.2f", prevRatio, ratio)
		}
		prevRatio = ratio
	}
	// At the 5% mix the paper reports a 3.6x reduction; accept 2.5-5x.
	first := points[0]
	r := float64(first.FWBlocks) / float64(first.ELBlocks)
	if r < 2.5 || r > 5.5 {
		t.Fatalf("5%% mix space ratio %.2f outside 2.5-5.5 (FW=%d EL=%d)", r, first.FWBlocks, first.ELBlocks)
	}
	// Figure 5 shape: EL bandwidth exceeds FW, and the gap widens with the
	// mix ("the increase in bandwidth is greater").
	prevGap := -1.0
	for _, p := range points {
		if p.ELBW <= p.FWBW {
			t.Fatalf("mix %.0f%%: EL bandwidth %.2f not above FW %.2f", p.FracLong*100, p.ELBW, p.FWBW)
		}
		gap := p.ELBW - p.FWBW
		if gap <= prevGap {
			t.Fatalf("bandwidth gap did not widen: %.2f then %.2f", prevGap, gap)
		}
		prevGap = gap
	}
	// At 5% the paper reports only ~11% extra bandwidth; accept up to 25%.
	if inc := 100 * (first.ELBW/first.FWBW - 1); inc > 25 {
		t.Fatalf("5%% mix bandwidth increase %.1f%% too large", inc)
	}
	// Figure 6 shape: EL uses more memory than FW everywhere; both grow
	// with the mix.
	for i, p := range points {
		if p.ELMemPeak <= p.FWMemPeak {
			t.Fatalf("mix %.0f%%: EL memory %.0f not above FW %.0f", p.FracLong*100, p.ELMemPeak, p.FWMemPeak)
		}
		if i > 0 && (p.FWMemPeak <= points[i-1].FWMemPeak || p.ELMemPeak <= points[i-1].ELMemPeak) {
			t.Fatalf("memory did not grow with the mix: %+v", points)
		}
	}
	out := FormatFig456(points)
	for _, want := range []string{"Figure 4", "Figure 5", "Figure 6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	o := quick()
	o.Mixes = []float64{0.05}
	r, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.MinRecircG1 >= r.NoRecircG1 {
		t.Fatalf("recirculation did not shrink the last generation: %d -> %d", r.NoRecircG1, r.MinRecircG1)
	}
	if len(r.Points) < 2 {
		t.Fatalf("sweep has only %d points", len(r.Points))
	}
	// Shrinking the last generation must not reduce bandwidth to it, and
	// the smallest size must recirculate more than the largest.
	firstP, lastP := r.Points[0], r.Points[len(r.Points)-1]
	if lastP.Gen1 >= firstP.Gen1 {
		t.Fatalf("sweep not descending: %+v", r.Points)
	}
	if lastP.Recirc <= firstP.Recirc {
		t.Fatalf("smaller last generation recirculated less: %d vs %d", lastP.Recirc, firstP.Recirc)
	}
	if lastP.TotalBW < firstP.TotalBW {
		t.Fatalf("bandwidth fell as space shrank: %.2f -> %.2f", firstP.TotalBW, lastP.TotalBW)
	}
	// EL total even at the no-recirc end stays far below FW.
	if firstP.Total*2 > r.FWBlocks {
		t.Fatalf("EL total %d not well below FW %d", firstP.Total, r.FWBlocks)
	}
	if !strings.Contains(FormatFig7(r), "Figure 7") {
		t.Fatal("formatted output missing title")
	}
}

func TestScarceShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	o := quick()
	o.Mixes = []float64{0.05}
	r, err := Scarce(o)
	if err != nil {
		t.Fatal(err)
	}
	// 10 drives at 45 ms = 222/s against 210 updates/s.
	if r.MaxFlushRate < 220 || r.MaxFlushRate > 224 {
		t.Fatalf("max flush rate %.1f, want ~222", r.MaxFlushRate)
	}
	if r.UpdateRate != 210 {
		t.Fatalf("update rate %.1f, want 210", r.UpdateRate)
	}
	// The headline locality claim: scarcity must *reduce* the average
	// inter-flush oid distance markedly (paper: 235k -> 109k).
	if r.AvgDist >= r.BaselineDist*0.8 {
		t.Fatalf("no locality improvement: %.0f vs baseline %.0f", r.AvgDist, r.BaselineDist)
	}
	// Unflushed updates recirculate until flushed.
	if r.Recirculated == 0 {
		t.Fatal("nothing recirculated under scarce flushing")
	}
	if !strings.Contains(FormatScarce(r), "Scarce") {
		t.Fatal("formatted output missing title")
	}
}

func TestHeadlineRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scaled-down experiments; skipped with -short (the race job)")
	}
	o := quick()
	o.Mixes = []float64{0.05}
	h, err := Headline(o)
	if err != nil {
		t.Fatal(err)
	}
	if h.SpaceFactorNR < 2.5 || h.SpaceFactorNR > 5.5 {
		t.Fatalf("no-recirc space factor %.2f outside 2.5-5.5 (paper: 3.6)", h.SpaceFactorNR)
	}
	if h.SpaceFactorR <= h.SpaceFactorNR {
		t.Fatalf("recirculation did not improve the space factor: %.2f vs %.2f", h.SpaceFactorR, h.SpaceFactorNR)
	}
	if h.BWIncreaseNR <= 0 || h.BWIncreaseNR > 25 {
		t.Fatalf("no-recirc bandwidth increase %.1f%% outside (0, 25] (paper: 11%%)", h.BWIncreaseNR)
	}
	if h.BWIncreaseR < h.BWIncreaseNR {
		t.Fatalf("recirculation reduced bandwidth: %+.1f%% vs %+.1f%%", h.BWIncreaseR, h.BWIncreaseNR)
	}
	if !strings.Contains(FormatHeadline(h), "Headline") {
		t.Fatal("formatted output missing title")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Runtime != 500*sim.Second || o.NumObjects != 10_000_000 ||
		len(o.Mixes) != 5 || o.FlushTransfer != 25*sim.Millisecond {
		t.Fatalf("defaults wrong: %+v", o)
	}
}
