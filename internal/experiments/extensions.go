package experiments

// This file implements ablation and extension experiments beyond the
// paper's evaluation section, covering the design variations its
// concluding remarks propose: lifetime-hint placement, deeper generation
// chains, the EL-FW hybrid, and adaptive sizing. EXPERIMENTS.md labels
// these clearly as extensions rather than reproductions.

import (
	"fmt"
	"strings"

	"ellog/internal/adaptive"
	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/hybrid"
	"ellog/internal/multilog"
	"ellog/internal/runner"
	"ellog/internal/search"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// HintsResult is the lifetime-hint placement ablation (paper section 6:
// starting a transaction's records "in a generation in which the records
// are unlikely to reach the head before the transaction finishes" to
// reduce bandwidth).
type HintsResult struct {
	Sizes       []int
	BaseBW      float64 // writes/s without hints
	HintBW      float64 // writes/s with hints
	BaseForward uint64
	HintForward uint64
	// MinGen0NoHints and MinGen0Hints: the smallest working generation 0
	// with the last generation fixed — hints shed the long transactions'
	// traffic from generation 0 entirely.
	MinGen0NoHints int
	MinGen0Hints   int
}

// Hints runs the lifetime-hint ablation at the 5% mix. The generation
// split follows the paper's method: the no-recirculation minimum fixes
// generation 0, then recirculation shrinks the last generation (a direct
// recirculation-on minimum degenerates to a tiny generation 0 with one
// huge recirculating queue, which is not the configuration of interest).
func Hints(o Options) (HintsResult, error) {
	o = o.WithDefaults()
	p := o.pool()
	base := o.base(o.Mixes[0])

	elNR, err := search.MinTwoGen(p, base, false, 0, 0)
	if err != nil {
		return HintsResult{}, err
	}
	g1, _, err := search.MinLastGen(p, base, core.ModeEphemeral, []int{elNR.Gen0}, true, elNR.Gen1+2)
	if err != nil {
		return HintsResult{}, err
	}
	gen0 := elNR.Gen0
	sizes := []int{gen0, g1}
	r := HintsResult{Sizes: sizes}

	run := func(hints bool, g0 int) (harness.Result, error) {
		cfg := base
		cfg.LM = core.Params{
			Mode:        core.ModeEphemeral,
			GenSizes:    []int{g0, g1},
			Recirculate: true,
		}
		if hints {
			cfg.LM.HintBoundaries = []sim.Time{2 * sim.Second}
			cfg.LM.GroupCommitTimeout = 100 * sim.Millisecond
			cfg.Workload.Hints = true
		}
		return p.Run(cfg)
	}
	var baseRun, hintRun harness.Result
	errs := [2]error{}
	_ = p.ForEach(2, func(j int) error {
		if j == 0 {
			baseRun, errs[0] = run(false, gen0)
			return errs[0]
		}
		hintRun, errs[1] = run(true, gen0)
		return errs[1]
	})
	for _, err := range errs {
		if err != nil {
			return r, err
		}
	}
	r.BaseBW = baseRun.LM.TotalBandwidth
	r.HintBW = hintRun.LM.TotalBandwidth
	r.BaseForward = baseRun.LM.Forwarded
	r.HintForward = hintRun.LM.Forwarded
	r.MinGen0NoHints = gen0

	// How small can generation 0 get when long transactions bypass it?
	lo, hi := search.MinBlocks, gen0
	for lo < hi {
		mid := (lo + hi) / 2
		res, err := run(true, mid)
		if err != nil {
			return r, err
		}
		if res.Insufficient() {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r.MinGen0Hints = hi
	return r, nil
}

// FormatHints renders the hint ablation.
func FormatHints(r HintsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lifetime-hint placement (section 6 extension) at EL %v with recirculation:\n", r.Sizes)
	fmt.Fprintf(&b, "  without hints: %6.2f writes/s, %6d records forwarded\n", r.BaseBW, r.BaseForward)
	fmt.Fprintf(&b, "  with hints:    %6.2f writes/s, %6d records forwarded\n", r.HintBW, r.HintForward)
	fmt.Fprintf(&b, "  minimum generation 0: %d blocks without hints, %d with\n", r.MinGen0NoHints, r.MinGen0Hints)
	return b.String()
}

// ChainResult compares log depth on a wide-lifetime workload: FW vs
// two-generation vs three-generation EL.
type ChainResult struct {
	Mix      workload.Mix
	FWBlocks int
	FWBW     float64
	Two      search.TwoGenResult
	Three    []int
	ThreeBW  float64
}

// Chain runs the generation-depth experiment on a three-lifetime mix
// (1 s / 10 s / 60 s): the wider the lifetime spread, the more a deeper
// chain of generations pays off — the workload the paper's introduction
// motivates ("transactions of widely varying lifetimes").
func Chain(o Options) (ChainResult, error) {
	o = o.WithDefaults()
	p := o.pool()
	mix := workload.Mix{
		{Name: "short-1s", Prob: 0.90, Lifetime: sim.Second, NumRecords: 2, RecordSize: 100},
		{Name: "medium-10s", Prob: 0.08, Lifetime: 10 * sim.Second, NumRecords: 4, RecordSize: 100},
		{Name: "long-60s", Prob: 0.02, Lifetime: 60 * sim.Second, NumRecords: 6, RecordSize: 100},
	}
	base := o.base(0)
	base.Workload.Mix = mix

	r := ChainResult{Mix: mix}
	// The FW reference and the two-generation baseline are independent.
	var (
		fwSize        int
		fwRun         harness.Result
		twoNR         search.TwoGenResult
		fwErr, twoErr error
	)
	_ = p.ForEach(2, func(j int) error {
		if j == 0 {
			fwSize, fwRun, fwErr = search.MinFirewall(p, base, 1024)
			return fwErr
		}
		// The paper's method: fix generation 0 at the no-recirculation
		// minimum, then let recirculation shrink the last generation.
		twoNR, twoErr = search.MinTwoGen(p, base, false, 0, 0)
		return twoErr
	})
	if fwErr != nil {
		return r, fwErr
	}
	if twoErr != nil {
		return r, twoErr
	}
	r.FWBlocks = fwSize
	r.FWBW = fwRun.LM.TotalBandwidth

	g1, twoRun, err := search.MinLastGen(p, base, core.ModeEphemeral, []int{twoNR.Gen0}, true, twoNR.Gen1+2)
	if err != nil {
		return r, err
	}
	r.Two = search.TwoGenResult{Gen0: twoNR.Gen0, Gen1: g1, Total: twoNR.Gen0 + g1, Run: twoRun}

	three, threeRun, err := minChainGuided(p, base, true,
		[]int{twoNR.Gen0, twoNR.Gen1, twoNR.Gen1})
	if err != nil {
		return r, err
	}
	r.Three = three
	r.ThreeBW = threeRun.LM.TotalBandwidth
	return r, nil
}

// minChainGuided sizes an N-generation chain by letting the adaptive
// controller converge on a live run (it allocates space by garbage-age
// economics, avoiding the degenerate basins plain local search falls
// into), then polishing the candidate with search.MinChain's unit-step
// descent. The start must be feasible or near-feasible.
func minChainGuided(p *runner.Pool, base harness.Config, recirc bool, start []int) ([]int, harness.Result, error) {
	var cand []int
	// The adaptive pilot is a live (uncached) run; Do keeps it under the
	// pool's concurrency bound alongside regular probes.
	err := p.Do(func() error {
		cfg := base
		cfg.LM = core.Params{Mode: core.ModeEphemeral, GenSizes: start, Recirculate: recirc}
		live, err := harness.Build(cfg)
		if err != nil {
			return err
		}
		ctl := adaptive.Attach(live.Setup.Eng, live.Setup.LM, adaptive.Config{})
		live.Setup.Eng.Run(cfg.Workload.Runtime)
		cand = ctl.Sizes()
		return nil
	})
	if err != nil {
		return nil, harness.Result{}, err
	}
	// Two blocks of headroom per generation: the controller's converged
	// sizes reflect a run that includes its own convergence turbulence.
	for i := range cand {
		cand[i] += 2
	}
	return search.MinChain(p, base, recirc, cand)
}

// FormatChain renders the generation-depth comparison.
func FormatChain(r ChainResult) string {
	sum := func(s []int) int {
		t := 0
		for _, v := range s {
			t += v
		}
		return t
	}
	var b strings.Builder
	b.WriteString("Generation depth on a 1s/10s/60s mix (90/8/2%):\n")
	fmt.Fprintf(&b, "  FW:       %4d blocks, %6.2f writes/s\n", r.FWBlocks, r.FWBW)
	fmt.Fprintf(&b, "  EL x2:    %4d blocks (%d+%d), %6.2f writes/s\n",
		r.Two.Total, r.Two.Gen0, r.Two.Gen1, r.Two.Run.LM.TotalBandwidth)
	fmt.Fprintf(&b, "  EL x3:    %4d blocks %v, %6.2f writes/s\n", sum(r.Three), r.Three, r.ThreeBW)
	return b.String()
}

// HybridCompareResult positions FW, EL and the EL-FW hybrid on a workload
// with many updates per transaction (section 6: the hybrid's memory win is
// "drastic" when each transaction updates many objects).
type HybridCompareResult struct {
	Blocks       [3]int     // FW, EL, hybrid disk budgets used
	Bandwidth    [3]float64 // writes/s
	MemPeak      [3]float64 // bytes
	HybridRegens uint64
}

// HybridCompare runs the three techniques on an update-heavy mix.
func HybridCompare(o Options) (HybridCompareResult, error) {
	o = o.WithDefaults()
	p := o.pool()
	mix := workload.Mix{
		{Name: "short", Prob: 0.8, Lifetime: sim.Second, NumRecords: 2, RecordSize: 100},
		{Name: "update-heavy", Prob: 0.2, Lifetime: 10 * sim.Second, NumRecords: 10, RecordSize: 100},
	}
	base := o.base(0)
	base.Workload.Mix = mix

	var r HybridCompareResult

	var (
		fwSize       int
		fwRun        harness.Result
		el           search.TwoGenResult
		fwErr, elErr error
	)
	_ = p.ForEach(2, func(j int) error {
		if j == 0 {
			fwSize, fwRun, fwErr = search.MinFirewall(p, base, 512)
			return fwErr
		}
		el, elErr = search.MinTwoGen(p, base, true, 0, 0)
		return elErr
	})
	if fwErr != nil {
		return r, fwErr
	}
	if elErr != nil {
		return r, elErr
	}
	r.Blocks[0] = fwSize
	r.Bandwidth[0] = fwRun.LM.TotalBandwidth
	r.MemPeak[0] = fwRun.LM.MemPeakBytes
	r.Blocks[1] = el.Total
	r.Bandwidth[1] = el.Run.LM.TotalBandwidth
	r.MemPeak[1] = el.Run.LM.MemPeakBytes

	// Hybrid at the same budget split as EL — a live run outside the
	// harness, so it goes through Do rather than the cache.
	err := p.Do(func() error {
		eng := sim.NewEngine(base.Seed, base.Seed^0x9e3779b97f4a7c15)
		hs, err := hybrid.NewSetup(eng, hybrid.Params{
			QueueSizes:         []int{el.Gen0, el.Gen1},
			Recirculate:        true,
			GroupCommitTimeout: 100 * sim.Millisecond,
		}, hybrid.FlushConfig{
			Drives:     base.Flush.Drives,
			Transfer:   base.Flush.Transfer,
			NumObjects: base.Flush.NumObjects,
		})
		if err != nil {
			return err
		}
		gen, err := workload.New(eng, hs.LM, base.Workload)
		if err != nil {
			return err
		}
		gen.Start()
		eng.Run(base.Workload.Runtime)
		hst := hs.LM.Stats()
		r.Blocks[2] = hst.TotalBlocks
		r.Bandwidth[2] = hst.TotalBandwidth
		r.MemPeak[2] = hst.MemPeakBytes
		r.HybridRegens = hst.Regenerated
		return nil
	})
	return r, err
}

// FormatHybridCompare renders the three-technique comparison.
func FormatHybridCompare(r HybridCompareResult) string {
	var b strings.Builder
	b.WriteString("FW vs EL vs EL-FW hybrid on an update-heavy mix (10 updates per long tx):\n")
	fmt.Fprintf(&b, "  %-8s %10s %12s %12s\n", "", "blocks", "writes/s", "mem peak B")
	names := []string{"FW", "EL", "hybrid"}
	for i, n := range names {
		fmt.Fprintf(&b, "  %-8s %10d %12.2f %12.0f\n", n, r.Blocks[i], r.Bandwidth[i], r.MemPeak[i])
	}
	fmt.Fprintf(&b, "  (hybrid regenerated %d records — its bandwidth premium for FW-like memory)\n", r.HybridRegens)
	return b.String()
}

// AdaptiveResult records the adaptive-sizing run.
type AdaptiveResult struct {
	StartSizes []int
	FinalSizes []int
	OfflineMin int
	Kills      uint64 // total (all during convergence)
	LateKills  uint64 // kills in the final quarter of the run — should be 0
	Grown      int
	Shrunk     int
}

// Adaptive starts EL far too small, lets the controller converge, and
// compares the result with the offline search minimum.
func Adaptive(o Options) (AdaptiveResult, error) {
	o = o.WithDefaults()
	p := o.pool()
	base := o.base(o.Mixes[0])

	r := AdaptiveResult{StartSizes: []int{6, 6}}
	// The offline reference search and the live adaptive run are
	// independent; run them side by side.
	errs := [2]error{}
	_ = p.ForEach(2, func(j int) error {
		if j == 0 {
			off, err := search.MinTwoGen(p, base, false, 0, 0)
			if err == nil {
				r.OfflineMin = off.Total
			}
			errs[0] = err
			return err
		}
		errs[1] = p.Do(func() error {
			cfg := base
			cfg.LM = core.Params{Mode: core.ModeEphemeral, GenSizes: r.StartSizes, Recirculate: false}
			live, err := harness.Build(cfg)
			if err != nil {
				return err
			}
			ctl := adaptive.Attach(live.Setup.Eng, live.Setup.LM, adaptive.Config{})
			threeQuarters := cfg.Workload.Runtime / 4 * 3
			live.Setup.Eng.Run(threeQuarters)
			killsAt75 := live.Gen.Stats().Killed
			live.Setup.Eng.Run(cfg.Workload.Runtime)
			r.Kills = live.Gen.Stats().Killed
			r.LateKills = r.Kills - killsAt75
			r.FinalSizes = ctl.Sizes()
			r.Grown = ctl.Grown()
			r.Shrunk = ctl.Shrunk()
			return nil
		})
		return errs[1]
	})
	for _, err := range errs {
		if err != nil {
			return r, err
		}
	}
	return r, nil
}

// FormatAdaptive renders the adaptive-sizing result.
func FormatAdaptive(r AdaptiveResult) string {
	total := 0
	for _, v := range r.FinalSizes {
		total += v
	}
	var b strings.Builder
	b.WriteString("Adaptive generation sizing (section 6 wish):\n")
	fmt.Fprintf(&b, "  started at %v, converged to %v (total %d; offline minimum %d)\n",
		r.StartSizes, r.FinalSizes, total, r.OfflineMin)
	fmt.Fprintf(&b, "  %d kills during convergence, %d in the final quarter; +%d/-%d blocks\n",
		r.Kills, r.LateKills, r.Grown, r.Shrunk)
	return b.String()
}

// ArrivalPoint is one arrival process's minimum-space result.
type ArrivalPoint struct {
	Process  workload.Arrival
	FWBlocks int
	ELGen0   int
	ELGen1   int
	ELBlocks int
}

// ArrivalSensitivity continues the paper's future-work sentence ("more
// complicated probabilistic models (such as Markov arrivals) may be
// investigated"): the same 5% mix under deterministic, Poisson and bursty
// Markov-modulated arrivals. Burstier arrivals need bigger logs — for both
// techniques — because minimum space is set by peak, not mean, backlog.
func ArrivalSensitivity(o Options) ([]ArrivalPoint, error) {
	o = o.WithDefaults()
	p := o.pool()
	procs := []workload.Arrival{
		workload.ArrivalDeterministic, workload.ArrivalPoisson, workload.ArrivalBursty,
	}
	out := make([]ArrivalPoint, len(procs))
	err := p.ForEach(len(procs), func(i int) error {
		proc := procs[i]
		base := o.base(o.Mixes[0])
		base.Workload.Arrival = proc
		var (
			fwSize       int
			el           search.TwoGenResult
			fwErr, elErr error
		)
		_ = p.ForEach(2, func(j int) error {
			if j == 0 {
				fwSize, _, fwErr = search.MinFirewall(p, base, 256)
				return fwErr
			}
			el, elErr = search.MinTwoGen(p, base, false, 0, 0)
			return elErr
		})
		if fwErr != nil {
			return fmt.Errorf("arrivals %v: %w", proc, fwErr)
		}
		if elErr != nil {
			return fmt.Errorf("arrivals %v: %w", proc, elErr)
		}
		out[i] = ArrivalPoint{
			Process:  proc,
			FWBlocks: fwSize,
			ELGen0:   el.Gen0,
			ELGen1:   el.Gen1,
			ELBlocks: el.Total,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatArrivals renders the arrival-sensitivity table.
func FormatArrivals(points []ArrivalPoint) string {
	var b strings.Builder
	b.WriteString("Arrival-process sensitivity (5% mix, minimum blocks with no kills):\n")
	fmt.Fprintf(&b, "  %-14s %8s %14s %10s\n", "process", "FW", "EL split", "EL total")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-14v %8d %11d+%-3d %10d\n", p.Process, p.FWBlocks, p.ELGen0, p.ELGen1, p.ELBlocks)
	}
	return b.String()
}

// StealResult is the UNDO/REDO ablation: the same workload and sizes with
// and without the steal policy.
type StealResult struct {
	Sizes        []int
	NoStealBW    float64
	StealBW      float64
	NoStealFlush uint64 // total stable-database writes
	StealFlush   uint64
	NoStealMem   float64 // peak LOT+LTT bytes
	StealMem     float64
	MinTotalNS   int // minimum two-generation total without steal
	MinTotalS    int // and with
}

// Steal compares EL with and without the UNDO/REDO extension at the 5%
// mix: stealing flushes updates earlier (smaller unflushed backlog, less
// LOT memory) but pays a commit-time cleaning write per stolen object and
// keeps stolen records non-garbage until cleaned.
func Steal(o Options) (StealResult, error) {
	o = o.WithDefaults()
	p := o.pool()
	base := o.base(o.Mixes[0])
	stealBase := base
	stealBase.LM.Steal = true

	// The two minimum searches (without and with steal) are independent.
	var (
		elNR, elS      search.TwoGenResult
		nrErr, stemErr error
	)
	_ = p.ForEach(2, func(j int) error {
		if j == 0 {
			elNR, nrErr = search.MinTwoGen(p, base, false, 0, 0)
			return nrErr
		}
		elS, stemErr = search.MinTwoGen(p, stealBase, false, 0, 0)
		return stemErr
	})
	if nrErr != nil {
		return StealResult{}, nrErr
	}
	r := StealResult{Sizes: []int{elNR.Gen0, elNR.Gen1}, MinTotalNS: elNR.Total}
	if stemErr != nil {
		return r, stemErr
	}
	r.MinTotalS = elS.Total

	run := func(steal bool) (harness.Result, error) {
		cfg := base
		cfg.LM = core.Params{
			Mode:     core.ModeEphemeral,
			GenSizes: []int{elNR.Gen0, elNR.Gen1},
			Steal:    steal,
		}
		return p.Run(cfg)
	}
	var ns, st harness.Result
	errs := [2]error{}
	_ = p.ForEach(2, func(j int) error {
		if j == 0 {
			ns, errs[0] = run(false)
			return errs[0]
		}
		st, errs[1] = run(true)
		return errs[1]
	})
	for _, err := range errs {
		if err != nil {
			return r, err
		}
	}
	r.NoStealBW = ns.LM.TotalBandwidth
	r.StealBW = st.LM.TotalBandwidth
	r.NoStealFlush = ns.LM.Flush.Flushes + ns.LM.Flush.Forced
	r.StealFlush = st.LM.Flush.Flushes + st.LM.Flush.Forced
	r.NoStealMem = ns.LM.MemPeakBytes
	r.StealMem = st.LM.MemPeakBytes
	return r, nil
}

// FormatSteal renders the steal ablation.
func FormatSteal(r StealResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "UNDO/REDO (steal) ablation at EL %v:\n", r.Sizes)
	fmt.Fprintf(&b, "  %-10s %12s %16s %14s\n", "", "log writes/s", "DB writes total", "mem peak B")
	fmt.Fprintf(&b, "  %-10s %12.2f %16d %14.0f\n", "no-steal", r.NoStealBW, r.NoStealFlush, r.NoStealMem)
	fmt.Fprintf(&b, "  %-10s %12.2f %16d %14.0f\n", "steal", r.StealBW, r.StealFlush, r.StealMem)
	fmt.Fprintf(&b, "  minimum two-generation total: %d blocks without steal, %d with\n", r.MinTotalNS, r.MinTotalS)
	return b.String()
}

// ScalePoint is one partition-count measurement of the shared-nothing
// multilog experiment.
type ScalePoint struct {
	Partitions   int
	TPS          float64 // aggregate sustained transactions/s
	Bandwidth    float64 // aggregate log writes/s
	Blocks       int     // total log disk across partitions
	RecoveryPar  sim.Time
	RecoverySer  sim.Time
	Insufficient bool
}

// Scale runs the paper's motivating scenario — a highly concurrent system
// — as P shared-nothing EL partitions, P = 1,2,4,8, each at the paper's
// per-partition workload. No checkpoints means no cross-partition
// synchronization: throughput scales linearly in the number of logs, and
// crash recovery time stays flat (each partition replays only its own
// small log, in parallel).
func Scale(o Options) ([]ScalePoint, error) {
	o = o.WithDefaults()
	p := o.pool()
	partCounts := []int{1, 2, 4, 8}
	out := make([]ScalePoint, len(partCounts))
	err := p.ForEach(len(partCounts), func(idx int) error {
		parts := partCounts[idx]
		// A whole multi-partition system is one live simulation; Do keeps
		// the four systems within the pool's concurrency bound.
		return p.Do(func() error {
			eng := sim.NewEngine(o.Seed, o.Seed^0xabcdef)
			perPart := o.NumObjects / 8 // keep total object count comparable
			if perPart%10 != 0 {
				perPart -= perPart % 10
			}
			sys, err := multilog.New(eng, parts, core.Params{
				Mode: core.ModeEphemeral, GenSizes: []int{20, 16}, Recirculate: true,
			}, core.FlushConfig{Drives: 10, Transfer: 25 * sim.Millisecond, NumObjects: perPart})
			if err != nil {
				return err
			}
			var gens []*workload.Generator
			for i := 0; i < parts; i++ {
				sink, err := sys.Sink(i)
				if err != nil {
					return err
				}
				g, err := workload.New(eng, sink, workload.Config{
					Mix:         workload.PaperMix(0.05),
					ArrivalRate: 100,
					Runtime:     o.Runtime,
					NumObjects:  perPart,
					OIDBase:     uint64(i) * perPart,
					TidBase:     uint64(i) << 32,
				})
				if err != nil {
					return err
				}
				g.Start()
				gens = append(gens, g)
			}
			eng.Run(o.Runtime)
			var committed uint64
			for _, g := range gens {
				committed += g.Stats().Committed
			}
			st := sys.Stats()
			_, report, err := sys.RecoverAll(0)
			if err != nil {
				return err
			}
			out[idx] = ScalePoint{
				Partitions:   parts,
				TPS:          float64(committed) / o.Runtime.Seconds(),
				Bandwidth:    st.Bandwidth,
				Blocks:       st.TotalBlocks,
				RecoveryPar:  report.ParallelTime,
				RecoverySer:  report.SerialTime,
				Insufficient: sys.Insufficient(),
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CrossShardPoint is one (shard count, cross-shard fraction) cell of the
// distributed-transaction sweep.
type CrossShardPoint struct {
	Shards int
	Frac   float64 // fraction of transactions spanning two shards

	TPS       float64 // aggregate committed transactions/s
	Bandwidth float64 // aggregate log writes/s

	// Commit latency split by path: local transactions pay one group
	// commit, cross-shard ones pay prepare durability on the participant
	// plus the coordinator's decision record.
	LocalMean float64
	LocalP99  float64
	CrossMean float64
	CrossP99  float64

	// Crash recovery of the whole machine at end of run: parallel replay
	// time and the 2PC resolution work the crash image demanded.
	RecoveryPar    sim.Time
	InDoubt        int
	ResolvedCommit int
	ResolvedAbort  int

	Insufficient bool
}

// CrossShard sweeps shard count x cross-shard fraction through the
// router's 2PC-in-the-log: each cell runs the paper workload at 100 TPS
// per shard with the given fraction of transactions drawing oids from two
// shards, then crashes the whole machine and recovers, reporting how the
// distributed-commit path prices against the local one and what the
// in-doubt resolution pass had to settle.
func CrossShard(o Options) ([]CrossShardPoint, error) {
	o = o.WithDefaults()
	p := o.pool()
	type cell struct {
		shards int
		frac   float64
	}
	var cells []cell
	for _, s := range []int{1, 2, 4} {
		for _, f := range []float64{0, 0.05, 0.20} {
			if s == 1 && f > 0 {
				continue // a single shard has no second shard to cross to
			}
			cells = append(cells, cell{s, f})
		}
	}
	out := make([]CrossShardPoint, len(cells))
	err := p.ForEach(len(cells), func(idx int) error {
		c := cells[idx]
		return p.Do(func() error {
			perShard := o.NumObjects / 8
			if perShard%10 != 0 {
				perShard -= perShard % 10
			}
			live, err := multilog.RunSharded(multilog.ShardedConfig{
				Seed:   o.Seed,
				Shards: c.shards,
				LM: core.Params{
					Mode: core.ModeEphemeral, GenSizes: []int{20, 16}, Recirculate: true,
				},
				Flush: core.FlushConfig{Drives: 10, Transfer: o.FlushTransfer, NumObjects: perShard},
				Workload: workload.Config{
					Mix:            workload.PaperMix(0.05),
					ArrivalRate:    100 * float64(c.shards),
					Runtime:        o.Runtime,
					CrossShardFrac: c.frac,
				},
			})
			if err != nil {
				return err
			}
			ws := live.Gen.Stats()
			_, report, err := live.Sys.RecoverAll(0)
			if err != nil {
				return err
			}
			out[idx] = CrossShardPoint{
				Shards:         c.shards,
				Frac:           c.frac,
				TPS:            float64(ws.Committed) / o.Runtime.Seconds(),
				Bandwidth:      live.Sys.Stats().Bandwidth,
				LocalMean:      ws.LocalEndToEndMean,
				LocalP99:       ws.LocalEndToEndP99,
				CrossMean:      ws.CrossEndToEndMean,
				CrossP99:       ws.CrossEndToEndP99,
				RecoveryPar:    report.ParallelTime,
				InDoubt:        report.InDoubt,
				ResolvedCommit: report.ResolvedCommit,
				ResolvedAbort:  report.ResolvedAbort,
				Insufficient:   live.Sys.Insufficient(),
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatCrossShard renders the distributed-transaction sweep.
func FormatCrossShard(points []CrossShardPoint) string {
	var b strings.Builder
	b.WriteString("Cross-shard transactions (2PC in the log, 100 TPS per shard):\n")
	fmt.Fprintf(&b, "  %-7s %-6s %9s %12s %11s %11s %14s %8s\n",
		"shards", "cross", "commit/s", "log writes/s", "local e2e", "cross e2e", "recovery(par)", "indoubt")
	for _, p := range points {
		cross := "-"
		if p.Frac > 0 {
			cross = fmt.Sprintf("%.2fs/%.2fs", p.CrossMean, p.CrossP99)
		}
		note := ""
		if p.Insufficient {
			note = "  INSUFFICIENT"
		}
		fmt.Fprintf(&b, "  %-7d %-6.2f %9.1f %12.2f %5.2fs/%.2fs %11s %14v %8d%s\n",
			p.Shards, p.Frac, p.TPS, p.Bandwidth, p.LocalMean, p.LocalP99, cross,
			p.RecoveryPar, p.InDoubt, note)
	}
	b.WriteString("  (e2e columns are mean/p99; indoubt counts prepared branches the crash left unresolved)\n")
	return b.String()
}

// FormatScale renders the multilog scaling table.
func FormatScale(points []ScalePoint) string {
	var b strings.Builder
	b.WriteString("Shared-nothing scaling (100 TPS per partition, no cross-log synchronization):\n")
	fmt.Fprintf(&b, "  %-11s %10s %12s %10s %14s %14s\n",
		"partitions", "commit/s", "log writes/s", "blocks", "recovery(par)", "recovery(ser)")
	for _, p := range points {
		note := ""
		if p.Insufficient {
			note = "  INSUFFICIENT"
		}
		fmt.Fprintf(&b, "  %-11d %10.1f %12.2f %10d %14v %14v%s\n",
			p.Partitions, p.TPS, p.Bandwidth, p.Blocks, p.RecoveryPar, p.RecoverySer, note)
	}
	return b.String()
}
