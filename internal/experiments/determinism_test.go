package experiments

import (
	"testing"

	"ellog/internal/runner"
	"ellog/internal/sim"
)

// TestFig456ParallelMatchesSequential is the experiment layer's parallelism
// contract: fanning the mixes and searches across a pool must produce a
// formatted report byte-identical to the strictly sequential run. The pool
// may only schedule simulations, never perturb them.
//
// Deliberately NOT gated on testing.Short(): this is the goroutine-bearing
// test the `-race -short` CI job exists to exercise.
func TestFig456ParallelMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		o := Options{
			Seed:       seed,
			Runtime:    15 * sim.Second,
			NumObjects: 200_000,
			Mixes:      []float64{0.05, 0.30},
		}
		o.Parallel = -1 // strictly sequential, no pool
		seqPts, err := Fig456(o)
		if err != nil {
			t.Fatal(err)
		}
		o.Parallel = 0
		o.Pool = runner.New(4)
		parPts, err := Fig456(o)
		if err != nil {
			t.Fatal(err)
		}
		seq, par := FormatFig456(seqPts), FormatFig456(parPts)
		if par != seq {
			t.Fatalf("seed %d: parallel report diverged\n--- sequential ---\n%s--- parallel ---\n%s", seed, seq, par)
		}
		if runs, _ := o.Pool.Stats(); runs == 0 {
			t.Fatalf("seed %d: pool executed no runs", seed)
		}
	}
}
