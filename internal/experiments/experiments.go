// Package experiments regenerates every figure and headline number of the
// paper's evaluation (section 4):
//
//   - Figure 4: minimum disk space vs. transaction mix, FW and EL (two
//     generations, recirculation off).
//   - Figure 5: log disk bandwidth vs. mix at those minimum sizes.
//   - Figure 6: main-memory requirements vs. mix at those minimum sizes.
//   - Figure 7: EL last-generation and total bandwidth vs. last-generation
//     size with recirculation on, generation 0 fixed at its Figure-4
//     minimum.
//   - The scarce-flush-bandwidth experiment (45 ms transfers): space,
//     bandwidth and flush locality when the flush service rate barely
//     exceeds the update rate.
//   - The headline ratios: EL's disk-space reduction factor and bandwidth
//     increase vs. FW at the 5% mix, without and with recirculation.
//
// All experiments share the paper's fixed frame: two transaction types
// (1 s/2x100 B and 10 s/4x100 B), 100 TPS, 500 s, 10^7 objects, 10 flush
// drives. Options can scale runtime and object count down for quick runs;
// the shapes survive scaling.
package experiments

import (
	"fmt"
	"strings"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/metrics"
	"ellog/internal/runner"
	"ellog/internal/search"
	"ellog/internal/sim"
)

// Options scales the experimental frame.
type Options struct {
	Seed       uint64
	Runtime    sim.Time // default 500 s (the paper's duration)
	NumObjects uint64   // default 10^7
	Mixes      []float64
	// FlushTransfer overrides the per-object flush time (default 25 ms).
	FlushTransfer sim.Time
	// Parallel bounds how many simulations run concurrently: 0 selects
	// GOMAXPROCS, negative forces strictly sequential execution. Results
	// are byte-identical either way — each simulation is single-threaded
	// and seeded; parallelism only schedules whole runs.
	Parallel int
	// Pool, when set, overrides Parallel and lets several experiments
	// share one worker pool and probe cache (the figures share many
	// search points, so a shared cache skips whole simulations).
	Pool *runner.Pool
	// RealDir is the log directory for the sim-vs-real validation's real
	// run (SimVsReal); empty means a temporary directory, removed after.
	RealDir string
	// RealDirect selects the real run's direct-I/O mode ("auto", "on",
	// "off"); empty means auto, which falls back to buffered I/O where
	// O_DIRECT is unavailable (tmpfs, CI).
	RealDirect string
}

// WithDefaults fills in the paper's frame.
func (o Options) WithDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Runtime == 0 {
		o.Runtime = 500 * sim.Second
	}
	if o.NumObjects == 0 {
		o.NumObjects = 10_000_000
	}
	if len(o.Mixes) == 0 {
		o.Mixes = []float64{0.05, 0.10, 0.20, 0.30, 0.40}
	}
	if o.FlushTransfer == 0 {
		o.FlushTransfer = 25 * sim.Millisecond
	}
	return o
}

// pool materializes the configured concurrency. Each call builds a fresh
// pool unless the caller pinned one in o.Pool, so cross-experiment cache
// sharing is opt-in.
func (o Options) pool() *runner.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	if o.Parallel < 0 {
		return nil
	}
	return runner.New(o.Parallel)
}

func (o Options) base(fracLong float64) harness.Config {
	cfg := harness.PaperDefaults(fracLong)
	cfg.Seed = o.Seed
	cfg.Workload.Runtime = o.Runtime
	cfg.Workload.NumObjects = o.NumObjects
	cfg.Flush.NumObjects = o.NumObjects
	cfg.Flush.Transfer = o.FlushTransfer
	return cfg
}

// MixPoint is one transaction-mix column of Figures 4, 5 and 6.
type MixPoint struct {
	FracLong float64

	FWBlocks  int
	FWBW      float64 // block writes/s at the minimum size
	FWMemPeak float64 // bytes

	ELGen0, ELGen1 int
	ELBlocks       int
	ELBW           float64
	ELMemPeak      float64
}

// Fig456 runs the minimum-space searches for each mix and returns the data
// behind Figures 4 (disk space), 5 (bandwidth) and 6 (memory). EL runs two
// generations with recirculation disabled, exactly as in the paper's
// Figure 4 ("recirculation in the last generation is disabled for EL, so
// that we can assess the effect of simply segmenting the log").
// Fig456 fans the per-mix searches across the pool: every mix column is
// independent, and within a column the FW and EL searches are too. Results
// land in mix order regardless of which finishes first.
func Fig456(o Options) ([]MixPoint, error) {
	o = o.WithDefaults()
	p := o.pool()
	out := make([]MixPoint, len(o.Mixes))
	err := p.ForEach(len(o.Mixes), func(i int) error {
		mix := o.Mixes[i]
		base := o.base(mix)
		var (
			fwSize       int
			fwRun        harness.Result
			el           search.TwoGenResult
			fwErr, elErr error
		)
		_ = p.ForEach(2, func(j int) error {
			if j == 0 {
				fwSize, fwRun, fwErr = search.MinFirewall(p, base, 192)
				return fwErr
			}
			el, elErr = search.MinTwoGen(p, base, false, 0, 0)
			return elErr
		})
		if fwErr != nil {
			return fmt.Errorf("fig4 FW at mix %.2f: %w", mix, fwErr)
		}
		if elErr != nil {
			return fmt.Errorf("fig4 EL at mix %.2f: %w", mix, elErr)
		}
		out[i] = MixPoint{
			FracLong:  mix,
			FWBlocks:  fwSize,
			FWBW:      fwRun.LM.TotalBandwidth,
			FWMemPeak: fwRun.LM.MemPeakBytes,
			ELGen0:    el.Gen0,
			ELGen1:    el.Gen1,
			ELBlocks:  el.Total,
			ELBW:      el.Run.LM.TotalBandwidth,
			ELMemPeak: el.Run.LM.MemPeakBytes,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatFig456 renders the three figures' data as aligned tables.
func FormatFig456(points []MixPoint) string {
	var b strings.Builder
	mixCol := func(p MixPoint) string { return fmt.Sprintf("%.0f%%", p.FracLong*100) }
	b.WriteString("Figure 4 — minimum log disk space (blocks) vs. transaction mix\n")
	fmt.Fprintf(&b, "  %-6s %8s %14s %10s %8s\n", "mix", "FW", "EL split", "EL total", "FW/EL")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-6s %8d %11d+%-3d %10d %8.2f\n",
			mixCol(p), p.FWBlocks, p.ELGen0, p.ELGen1, p.ELBlocks,
			float64(p.FWBlocks)/float64(p.ELBlocks))
	}
	b.WriteString("\nFigure 5 — log disk bandwidth (block writes/s) vs. transaction mix\n")
	fmt.Fprintf(&b, "  %-6s %10s %10s %10s\n", "mix", "FW", "EL", "EL-FW")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-6s %10.2f %10.2f %+9.1f%%\n",
			mixCol(p), p.FWBW, p.ELBW, 100*(p.ELBW/p.FWBW-1))
	}
	b.WriteString("\nFigure 6 — peak LOT+LTT memory (bytes) vs. transaction mix\n")
	fmt.Fprintf(&b, "  %-6s %10s %10s %10s\n", "mix", "FW", "EL", "EL/FW")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-6s %10.0f %10.0f %9.2fx\n",
			mixCol(p), p.FWMemPeak, p.ELMemPeak, p.ELMemPeak/p.FWMemPeak)
	}
	b.WriteString("\n")
	b.WriteString(PlotFig456(points))
	return b.String()
}

// Fig7Point is one last-generation size of Figure 7.
type Fig7Point struct {
	Gen1    int
	Total   int
	Gen1BW  float64 // bandwidth to the last generation only
	TotalBW float64 // overall logging bandwidth
	Recirc  uint64  // records recirculated during the run
}

// Fig7Result carries the sweep plus its reference points.
type Fig7Result struct {
	Gen0        int // fixed at the Figure-4 minimum (paper: 18)
	NoRecircG1  int // Figure-4 minimum last generation (paper: 16)
	MinRecircG1 int // smallest sustainable with recirculation (paper: 10)
	Points      []Fig7Point
	FWBlocks    int
	FWBW        float64
}

// Fig7 reproduces Figure 7: with recirculation enabled and generation 0
// fixed at its Figure-4 minimum, the last generation shrinks until
// transactions die; bandwidth to the last generation (and in total) rises
// as recirculation does more work.
func Fig7(o Options) (Fig7Result, error) {
	o = o.WithDefaults()
	p := o.pool()
	mix := o.Mixes[0] // the paper uses the 5% mix
	base := o.base(mix)

	// The EL baseline and the FW reference are independent searches.
	var (
		el           search.TwoGenResult
		fwSize       int
		fwRun        harness.Result
		elErr, fwErr error
	)
	_ = p.ForEach(2, func(j int) error {
		if j == 0 {
			el, elErr = search.MinTwoGen(p, base, false, 0, 0)
			return elErr
		}
		fwSize, fwRun, fwErr = search.MinFirewall(p, base, 192)
		return fwErr
	})
	if elErr != nil {
		return Fig7Result{}, fmt.Errorf("fig7 baseline search: %w", elErr)
	}
	if fwErr != nil {
		return Fig7Result{}, fmt.Errorf("fig7 FW reference: %w", fwErr)
	}
	res := Fig7Result{
		Gen0:       el.Gen0,
		NoRecircG1: el.Gen1,
		FWBlocks:   fwSize,
		FWBW:       fwRun.LM.TotalBandwidth,
	}
	minG1, _, err := search.MinLastGen(p, base, core.ModeEphemeral, []int{el.Gen0}, true, el.Gen1+2)
	if err != nil {
		return res, fmt.Errorf("fig7 recirculation minimum: %w", err)
	}
	res.MinRecircG1 = minG1
	// Sweep the last generation downward. The points are independent runs,
	// so probe them all concurrently and fold in descending-size order,
	// truncating at the first insufficient point exactly like the
	// sequential sweep would.
	n := res.NoRecircG1 - minG1 + 1
	if n < 0 {
		n = 0
	}
	type sweep struct {
		ok  bool
		run harness.Result
		err error
	}
	outs := make([]sweep, n)
	_ = p.ForEach(n, func(i int) error {
		g1 := res.NoRecircG1 - i
		outs[i].ok, outs[i].run, outs[i].err = search.Probe(p, base, core.ModeEphemeral, []int{el.Gen0, g1}, true)
		return outs[i].err
	})
	for i := 0; i < n; i++ {
		if outs[i].err != nil {
			return res, outs[i].err
		}
		if !outs[i].ok {
			break
		}
		g1 := res.NoRecircG1 - i
		res.Points = append(res.Points, Fig7Point{
			Gen1:    g1,
			Total:   el.Gen0 + g1,
			Gen1BW:  outs[i].run.LM.Gens[1].Bandwidth,
			TotalBW: outs[i].run.LM.TotalBandwidth,
			Recirc:  outs[i].run.LM.Recirculated,
		})
	}
	return res, nil
}

// FormatFig7 renders the Figure 7 sweep.
func FormatFig7(r Fig7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — EL disk bandwidth vs. space (gen 0 fixed at %d blocks, recirculation on)\n", r.Gen0)
	fmt.Fprintf(&b, "  FW reference: %d blocks, %.2f writes/s\n", r.FWBlocks, r.FWBW)
	fmt.Fprintf(&b, "  last generation shrinks %d -> %d blocks:\n", r.NoRecircG1, r.MinRecircG1)
	fmt.Fprintf(&b, "  %-10s %-8s %12s %12s %12s\n", "gen1", "total", "gen1 BW", "total BW", "recirculated")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-10d %-8d %12.2f %12.2f %12d\n", p.Gen1, p.Total, p.Gen1BW, p.TotalBW, p.Recirc)
	}
	if len(r.Points) > 1 {
		b.WriteString("\n")
		b.WriteString(PlotFig7(r))
	}
	return b.String()
}

// ScarceResult is the section-4 scarce-flush-bandwidth experiment.
type ScarceResult struct {
	Transfer      sim.Time
	MaxFlushRate  float64
	UpdateRate    float64
	Gen0, Gen1    int
	TotalBlocks   int
	TotalBW       float64
	AvgDist       float64 // locality under scarcity
	BaselineDist  float64 // locality at the default 25 ms transfer
	Recirculated  uint64
	FlushBacklog  int
	FlushBusyFrac float64
}

// Scarce reproduces the experiment where flush transfer time rises to
// 45 ms, giving 222 flushes/s against 210 updates/s at the 5% mix:
// unflushed committed updates recirculate until flushed, and the flush
// backlog makes disk I/O markedly more sequential (the inter-flush oid
// distance drops — the paper reports 109,000 vs 235,000).
func Scarce(o Options) (ScarceResult, error) {
	o = o.WithDefaults()
	p := o.pool()
	mix := o.Mixes[0]

	// Baseline locality at the default transfer on a sufficient recirc
	// configuration. The scarce search is anchored at the baseline's
	// split, so the two stages are inherently sequential; the searches
	// themselves still fan probes across the pool.
	baseOpt := o
	baseOpt.FlushTransfer = 25 * sim.Millisecond
	baseCfg := baseOpt.base(mix)
	baseEL, err := search.MinTwoGen(p, baseCfg, false, 0, 0)
	if err != nil {
		return ScarceResult{}, fmt.Errorf("scarce baseline: %w", err)
	}

	scarceOpt := o
	scarceOpt.FlushTransfer = 45 * sim.Millisecond
	cfg := scarceOpt.base(mix)
	g1, run, err := search.MinLastGen(p, cfg, core.ModeEphemeral, []int{baseEL.Gen0}, true, baseEL.Gen1+16)
	if err != nil {
		return ScarceResult{}, fmt.Errorf("scarce search: %w", err)
	}
	return ScarceResult{
		Transfer:      45 * sim.Millisecond,
		MaxFlushRate:  float64(cfg.Flush.Drives) / (45 * sim.Millisecond).Seconds(),
		UpdateRate:    cfg.Workload.Mix.UpdatesPerSecond(cfg.Workload.ArrivalRate),
		Gen0:          baseEL.Gen0,
		Gen1:          g1,
		TotalBlocks:   baseEL.Gen0 + g1,
		TotalBW:       run.LM.TotalBandwidth,
		AvgDist:       run.LM.Flush.AvgDistance,
		BaselineDist:  baseEL.Run.LM.Flush.AvgDistance,
		Recirculated:  run.LM.Recirculated,
		FlushBacklog:  run.LM.Flush.MaxPending,
		FlushBusyFrac: run.LM.Flush.BusyFrac,
	}, nil
}

// FormatScarce renders the scarce-bandwidth experiment.
func FormatScarce(r ScarceResult) string {
	var b strings.Builder
	b.WriteString("Scarce flush bandwidth (section 4): 10 drives x 45 ms = ")
	fmt.Fprintf(&b, "%.0f flushes/s vs %.0f updates/s\n", r.MaxFlushRate, r.UpdateRate)
	fmt.Fprintf(&b, "  EL with recirculation: %d blocks (%d + %d), %.2f writes/s, %d recirculated\n",
		r.TotalBlocks, r.Gen0, r.Gen1, r.TotalBW, r.Recirculated)
	fmt.Fprintf(&b, "  avg inter-flush oid distance: %.0f (vs %.0f at 25 ms) — backlog makes I/O more sequential\n",
		r.AvgDist, r.BaselineDist)
	fmt.Fprintf(&b, "  flush: busy %.0f%%, peak backlog %d\n", r.FlushBusyFrac*100, r.FlushBacklog)
	return b.String()
}

// HeadlineResult carries the paper's summary ratios at the 5% mix.
type HeadlineResult struct {
	FWBlocks      int
	FWBW          float64
	ELNoRecirc    int // total blocks (paper: 34)
	ELNoRecircBW  float64
	ELRecirc      int // total blocks (paper: 28)
	ELRecircBW    float64
	SpaceFactorNR float64 // paper: 3.6
	BWIncreaseNR  float64 // paper: +11%
	SpaceFactorR  float64 // paper: 4.4
	BWIncreaseR   float64 // paper: +12%
}

// Headline computes the paper's summary numbers: "It reduces disk space by
// a factor of 3.6 with only an 11% increase in bandwidth" (no
// recirculation) and "a factor of 4.4 reduction in disk space and a 12%
// increase in bandwidth" (with recirculation), at the 5% mix.
func Headline(o Options) (HeadlineResult, error) {
	o = o.WithDefaults()
	p := o.pool()
	base := o.base(o.Mixes[0])
	var (
		fwSize       int
		fwRun        harness.Result
		el           search.TwoGenResult
		fwErr, elErr error
	)
	_ = p.ForEach(2, func(j int) error {
		if j == 0 {
			fwSize, fwRun, fwErr = search.MinFirewall(p, base, 192)
			return fwErr
		}
		el, elErr = search.MinTwoGen(p, base, false, 0, 0)
		return elErr
	})
	if fwErr != nil {
		return HeadlineResult{}, fwErr
	}
	if elErr != nil {
		return HeadlineResult{}, elErr
	}
	g1, recircRun, err := search.MinLastGen(p, base, core.ModeEphemeral, []int{el.Gen0}, true, el.Gen1+2)
	if err != nil {
		return HeadlineResult{}, err
	}
	h := HeadlineResult{
		FWBlocks:     fwSize,
		FWBW:         fwRun.LM.TotalBandwidth,
		ELNoRecirc:   el.Total,
		ELNoRecircBW: el.Run.LM.TotalBandwidth,
		ELRecirc:     el.Gen0 + g1,
		ELRecircBW:   recircRun.LM.TotalBandwidth,
	}
	h.SpaceFactorNR = float64(h.FWBlocks) / float64(h.ELNoRecirc)
	h.BWIncreaseNR = 100 * (h.ELNoRecircBW/h.FWBW - 1)
	h.SpaceFactorR = float64(h.FWBlocks) / float64(h.ELRecirc)
	h.BWIncreaseR = 100 * (h.ELRecircBW/h.FWBW - 1)
	return h, nil
}

// FormatHeadline renders the summary comparison.
func FormatHeadline(h HeadlineResult) string {
	var b strings.Builder
	b.WriteString("Headline comparison at the 5% mix (paper section 4):\n")
	fmt.Fprintf(&b, "  FW:               %4d blocks, %6.2f writes/s\n", h.FWBlocks, h.FWBW)
	fmt.Fprintf(&b, "  EL (no recirc):   %4d blocks, %6.2f writes/s  -> space /%.1f, bandwidth %+.0f%%  (paper: /3.6, +11%%)\n",
		h.ELNoRecirc, h.ELNoRecircBW, h.SpaceFactorNR, h.BWIncreaseNR)
	fmt.Fprintf(&b, "  EL (recirc):      %4d blocks, %6.2f writes/s  -> space /%.1f, bandwidth %+.0f%%  (paper: /4.4, +12%%)\n",
		h.ELRecirc, h.ELRecircBW, h.SpaceFactorR, h.BWIncreaseR)
	return b.String()
}

// PlotFig456 draws the three figures' curves as terminal charts.
func PlotFig456(points []MixPoint) string {
	mk := func(name string, y func(MixPoint) float64) metrics.Series {
		s := metrics.Series{Name: name}
		for _, p := range points {
			s.Add(p.FracLong*100, y(p))
		}
		return s
	}
	var b strings.Builder
	b.WriteString(metrics.AsciiPlot("Figure 4: min disk space (blocks) vs % long txs", 48, 10,
		mk("FW", func(p MixPoint) float64 { return float64(p.FWBlocks) }),
		mk("EL", func(p MixPoint) float64 { return float64(p.ELBlocks) })))
	b.WriteString("\n")
	b.WriteString(metrics.AsciiPlot("Figure 5: log bandwidth (writes/s) vs % long txs", 48, 10,
		mk("FW", func(p MixPoint) float64 { return p.FWBW }),
		mk("EL", func(p MixPoint) float64 { return p.ELBW })))
	b.WriteString("\n")
	b.WriteString(metrics.AsciiPlot("Figure 6: peak memory (bytes) vs % long txs", 48, 10,
		mk("FW", func(p MixPoint) float64 { return p.FWMemPeak }),
		mk("EL", func(p MixPoint) float64 { return p.ELMemPeak })))
	return b.String()
}

// PlotFig7 draws the Figure 7 sweep.
func PlotFig7(r Fig7Result) string {
	total := metrics.Series{Name: "total BW"}
	last := metrics.Series{Name: "last-gen BW"}
	for _, p := range r.Points {
		total.Add(float64(p.Gen1), p.TotalBW)
		last.Add(float64(p.Gen1), p.Gen1BW)
	}
	return metrics.AsciiPlot("Figure 7: bandwidth (writes/s) vs last-generation blocks", 48, 10, total, last)
}
