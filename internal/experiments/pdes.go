package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"time"

	"ellog/internal/core"
	"ellog/internal/multilog"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// PDESResult is the within-run parallelism benchmark: the same 4-shard
// cross-shard workload executed twice — once on the sequential reference
// schedule (1 worker) and once on ParWorkers goroutines — with the
// identity contract checked (both runs must produce byte-identical
// reports) and the wall-clock speedup measured.
//
// The simulated results (Stats, Identical) are pure functions of (seed,
// config) and are gated against the committed baseline; the wall-clock
// fields are machine-dependent and reported informationally only.
type PDESResult struct {
	Shards     int
	ParWorkers int
	CrossFrac  float64
	// CPUs is runtime.NumCPU() — the ceiling on any real speedup. On a
	// single-CPU host the parallel run can only tie the sequential one
	// (minus scheduling overhead); the identity check still bites.
	CPUs int

	// Stats is the (identical) report of both executions.
	Stats multilog.PDESStats
	// Identical records whether the parallel run reproduced the
	// sequential reference byte-for-byte. Anything but true is a bug.
	Identical    bool
	Insufficient bool

	// Wall-clock, informational: seconds for the sequential and parallel
	// executions and their ratio.
	SeqSeconds float64
	ParSeconds float64
	Speedup    float64
}

// pdesFrame builds the benchmark configuration: four shards at 9x the
// paper's per-shard rate with a fifth of the traffic crossing shards, so
// each conservative window carries enough model work (~90 events per LP
// per 15 ms window) to amortize the barrier. The flush array trades the
// paper's 10x25 ms drives for 10x3 ms ones — same arithmetic shape, the
// service rate the 9x update rate needs — because this experiment
// measures engine scaling, not flush economics (figures 4-7 and the
// scarce run own those). 900 TPS per shard is the highest rate whose
// forwarding pipeline stays healthy (no refugee stalls) at these sizes;
// past it the head wraps onto in-flight buffers.
func pdesFrame(o Options, workers int) multilog.PDESConfig {
	perShard := o.NumObjects / 8
	if perShard%10 != 0 {
		perShard -= perShard % 10
	}
	return multilog.PDESConfig{
		Seed:    o.Seed,
		Shards:  4,
		Workers: workers,
		LM: core.Params{
			Mode: core.ModeEphemeral, GenSizes: []int{190, 152}, Recirculate: true,
		},
		Flush: core.FlushConfig{Drives: 10, Transfer: 3 * sim.Millisecond, NumObjects: perShard},
		Workload: workload.Config{
			Mix:         workload.PaperMix(0.05),
			ArrivalRate: 900,
			Runtime:     o.Runtime,
		},
		CrossFrac: 0.2,
	}
}

// PDES runs the parallel-engine speedup benchmark. Both executions run on
// the calling goroutine with nothing else in flight — wall-clock numbers
// are meaningless if the run shares the machine, which is also why this
// experiment takes no pool: within-run workers are the parallelism here.
func PDES(o Options) (PDESResult, error) {
	o = o.WithDefaults()
	const parWorkers = 4

	seqStart := time.Now() //ellint:allow wallclock speedup benchmark timing
	seqLive, seqStats, err := multilog.RunPDES(pdesFrame(o, 1))
	if err != nil {
		return PDESResult{}, err
	}
	seqSeconds := time.Since(seqStart).Seconds() //ellint:allow wallclock speedup benchmark timing

	parStart := time.Now() //ellint:allow wallclock speedup benchmark timing
	_, parStats, err := multilog.RunPDES(pdesFrame(o, parWorkers))
	if err != nil {
		return PDESResult{}, err
	}
	parSeconds := time.Since(parStart).Seconds() //ellint:allow wallclock speedup benchmark timing

	r := PDESResult{
		Shards:       4,
		ParWorkers:   parWorkers,
		CrossFrac:    0.2,
		CPUs:         runtime.NumCPU(),
		Stats:        seqStats,
		Identical:    reflect.DeepEqual(seqStats, parStats) && seqStats.String() == parStats.String(),
		Insufficient: seqLive.Insufficient(),
		SeqSeconds:   seqSeconds,
		ParSeconds:   parSeconds,
	}
	if parSeconds > 0 {
		r.Speedup = seqSeconds / parSeconds
	}
	return r, nil
}

// FormatPDES renders the speedup benchmark.
func FormatPDES(r PDESResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PDES speedup (%d shards as LPs, %.0f%% cross-shard, %d workers vs sequential):\n",
		r.Shards, r.CrossFrac*100, r.ParWorkers)
	identical := "byte-identical"
	if !r.Identical {
		identical = "DIVERGED (determinism bug)"
	}
	note := ""
	if r.Insufficient {
		note = "  INSUFFICIENT"
	}
	fmt.Fprintf(&b, "  parallel vs sequential report: %s%s\n", identical, note)
	fmt.Fprintf(&b, "  simulated: %d events, %d windows, %d cross-LP events, %d local + %d cross commits\n",
		r.Stats.Events, r.Stats.Windows, r.Stats.Delivered, r.Stats.Committed, r.Stats.CrossCommitted)
	fmt.Fprintf(&b, "  wall-clock: sequential %.2fs, %d workers %.2fs -> %.2fx speedup on %d CPUs (machine-dependent, not gated)\n",
		r.SeqSeconds, r.ParWorkers, r.ParSeconds, r.Speedup, r.CPUs)
	return b.String()
}
