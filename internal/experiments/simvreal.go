package experiments

import (
	"fmt"
	"os"
	"strings"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/obs"
	"ellog/internal/realdev"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// SimVsRealTolerance is the shape gate: the maximum allowed pointwise
// deviation between the simulated and real backends' normalized cumulative
// commit curves. The gate is deliberately on shape, not absolute numbers —
// wall-clock fsync latencies vary machine to machine, but both backends
// run the identical manager and workload code, so their commit curves must
// climb the same way.
const SimVsRealTolerance = 0.15

// SimVsRealSeriesTolerance gates the shared ellog_* probe series: both
// backends sample the canonical schema (internal/obs) at the same cadence,
// and every cumulative (_total) series they share must climb the same way.
// The bound is looser than the commit gate because secondary counters
// (flushes, block writes) sit behind more machine-dependent latency.
const SimVsRealSeriesTolerance = 0.25

// simVsRealSeriesFloor is the final-count floor below which a shared
// series is reported but not gated: a counter that fired a handful of
// times has no statistically meaningful shape.
const simVsRealSeriesFloor = 50

// SeriesDeviation compares one identically-named cumulative series
// sampled on both backends.
type SeriesDeviation struct {
	Name      string  `json:"name"`
	SimFinal  float64 `json:"sim_final"`
	RealFinal float64 `json:"real_final"`
	// MaxDev is the largest pointwise gap between the normalized curves.
	MaxDev float64 `json:"max_dev"`
	// Gated is false when either side's final count is under the floor —
	// the deviation is then informational only.
	Gated bool `json:"gated"`
}

// SimVsRealSide summarizes one backend's run of the shared configuration.
type SimVsRealSide struct {
	Committed   uint64
	Killed      uint64
	BlockWrites uint64
	WritesPerS  float64
	E2EMeanMS   float64
	TotalBlocks int // configured log size (min-space view)
}

// SimVsRealResult is the comparison report of one configuration run
// through both backends.
type SimVsRealResult struct {
	Seed       uint64
	RuntimeS   float64
	Arrival    float64
	NumObjects uint64
	// RuntimeClamped notes that the requested runtime was cut down to keep
	// the real run's wall-clock cost bounded.
	RuntimeClamped bool

	Sim  SimVsRealSide
	Real SimVsRealSide
	IO   realdev.RealStats

	// MaxCurveDev is the largest pointwise gap between the two normalized
	// commit curves, measured at CurvePoints checkpoints.
	MaxCurveDev     float64
	CurvePoints     int
	Tolerance       float64
	WithinTolerance bool

	// Series holds the per-metric comparison of every cumulative ellog_*
	// series both backends sampled; SeriesOK is true when every gated
	// entry stays within SeriesTolerance.
	Series          []SeriesDeviation
	SeriesTolerance float64
	SeriesOK        bool
}

// simVsRealConfig is the shared configuration: a compressed version of the
// paper's workload (10 ms and 50 ms transactions instead of 1 s and 10 s)
// so the real backend — which pays the runtime in actual wall time —
// finishes in seconds. Both backends receive identical parameters; only
// the clock and the device differ.
func simVsRealConfig(opt Options, runtime sim.Time) (core.Params, core.FlushConfig, workload.Config) {
	objects := opt.NumObjects
	if objects == 0 || objects > 20_000 {
		objects = 10_000
	}
	if rem := objects % 4; rem != 0 {
		objects += 4 - rem // flush array wants a multiple of the drive count
	}
	p := core.Params{
		Mode:               core.ModeEphemeral,
		GenSizes:           []int{16, 12, 10},
		Recirculate:        true,
		GroupCommitTimeout: 5 * sim.Millisecond,
		WriteLatency:       5 * sim.Millisecond,
	}
	fc := core.FlushConfig{Drives: 4, Transfer: 2 * sim.Millisecond, NumObjects: objects}
	wl := workload.Config{
		Mix: workload.Mix{
			{Name: "short", Prob: 0.8, Lifetime: 10 * sim.Millisecond, NumRecords: 2, RecordSize: 100},
			{Name: "long", Prob: 0.2, Lifetime: 50 * sim.Millisecond, NumRecords: 4, RecordSize: 100},
		},
		ArrivalRate: 400,
		Runtime:     runtime,
		NumObjects:  objects,
	}
	return p, fc, wl
}

// SimVsReal runs one configuration through the simulated backend and the
// real-file backend and compares the two commit curves. The real run's log
// directory is taken from opt.RealDir (a temporary directory when empty,
// removed afterwards). Direct I/O follows opt.RealDirect ("auto" when
// empty, so tmpfs and CI fall back to buffered I/O).
func SimVsReal(opt Options) (SimVsRealResult, error) {
	runtime := opt.Runtime
	res := SimVsRealResult{Seed: opt.Seed, Tolerance: SimVsRealTolerance}
	// The real backend spends the runtime in wall time: cap it so the
	// default 500 s paper runtime doesn't mean 500 s of fsync traffic.
	if runtime > 10*sim.Second {
		runtime = 2 * sim.Second
		res.RuntimeClamped = true
	}
	if runtime < 200*sim.Millisecond {
		runtime = 200 * sim.Millisecond
		res.RuntimeClamped = true
	}
	p, fc, wl := simVsRealConfig(opt, runtime)
	res.RuntimeS = runtime.Seconds()
	res.Arrival = wl.ArrivalRate
	res.NumObjects = wl.NumObjects
	sampleEvery := runtime / 100

	// Simulated side, with the same commit-curve sampling the real run does.
	live, err := harness.Build(harness.Config{Seed: opt.Seed, LM: p, Flush: fc, Workload: wl})
	if err != nil {
		return res, err
	}
	var simCurve []realdev.CurvePoint
	var sample func()
	sample = func() {
		simCurve = append(simCurve, realdev.CurvePoint{
			At:        live.Setup.Eng.Now(),
			Committed: live.Gen.Stats().Committed,
		})
		if live.Setup.Eng.Now() < runtime {
			live.Setup.Eng.After(sampleEvery, sample)
		}
	}
	live.Setup.Eng.After(sampleEvery, sample)
	// The canonical probe schema on the simulated clock; the real side
	// samples the same names at the same cadence via RunConfig.ProbeEvery.
	simSampler := obs.NewSampler(live.Setup.Eng, sampleEvery, 0)
	obs.RegisterStandardProbes(simSampler, live.Setup)
	simSampler.Start()
	live.Setup.Eng.Run(runtime)
	simStats := live.Setup.LM.Stats()
	simW := live.Gen.Stats()
	res.Sim = SimVsRealSide{
		Committed:   simW.Committed,
		Killed:      simW.Killed,
		BlockWrites: simStats.TotalWrites,
		WritesPerS:  simStats.TotalBandwidth,
		E2EMeanMS:   simW.EndToEndMean * 1000,
		TotalBlocks: simStats.TotalBlocks,
	}

	// Real side.
	dir := opt.RealDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ellog-simvreal-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	direct := realdev.DirectMode(opt.RealDirect)
	// The entire point of this experiment is to run the identical
	// workload against the wall clock and compare; the deterministic sim
	// half above is unaffected, and callers (cmd/elbench -simvreal)
	// invoke this knowingly. The allow also sanitizes SimVsReal's own
	// summary, so merely linking it does not taint the bench harness.
	//ellint:allow detflow sim-vs-real validation deliberately drives the wall-clock backend
	realRes, err := realdev.Run(realdev.RunConfig{
		Seed:        opt.Seed,
		Dir:         dir,
		LM:          p,
		Flush:       fc,
		Workload:    wl,
		Device:      realdev.Options{Direct: direct},
		SampleEvery: sampleEvery,
		ProbeEvery:  sampleEvery,
	})
	if err != nil {
		return res, err
	}
	res.Real = SimVsRealSide{
		Committed:   realRes.Workload.Committed,
		Killed:      realRes.Workload.Killed,
		BlockWrites: realRes.LM.TotalWrites,
		WritesPerS:  realRes.LM.TotalBandwidth,
		E2EMeanMS:   realRes.Workload.EndToEndMean * 1000,
		TotalBlocks: realRes.LM.TotalBlocks,
	}
	res.IO = realRes.Real

	if res.Sim.Committed == 0 || res.Real.Committed == 0 {
		return res, fmt.Errorf("simvreal: a backend committed nothing (sim %d, real %d)",
			res.Sim.Committed, res.Real.Committed)
	}
	res.CurvePoints = 100
	res.MaxCurveDev = maxDeviation(commitCurve(simCurve), commitCurve(realRes.Curve), runtime, res.CurvePoints)
	res.WithinTolerance = res.MaxCurveDev <= res.Tolerance

	res.SeriesTolerance = SimVsRealSeriesTolerance
	res.Series = compareSeries(simSampler.Series(), realRes.Probes, runtime, res.CurvePoints)
	res.SeriesOK = true
	for _, sd := range res.Series {
		if sd.Gated && sd.MaxDev > res.SeriesTolerance {
			res.SeriesOK = false
		}
	}
	return res, nil
}

// compareSeries joins the two probe snapshots by exact series name and
// measures the normalized-curve deviation of every shared cumulative
// (_total) metric. Gauges are excluded: levels like generation occupancy
// oscillate, so a pointwise fraction-of-final comparison is meaningless
// for them — the cumulative counters are the cross-backend contract.
func compareSeries(simS, realS []obs.Series, runtime sim.Time, n int) []SeriesDeviation {
	realByName := make(map[string]obs.Series, len(realS))
	for _, s := range realS {
		realByName[s.Name] = s
	}
	var out []SeriesDeviation
	for _, ss := range simS {
		family, _ := obs.SplitName(ss.Name)
		if !strings.HasSuffix(family, "_total") {
			continue
		}
		rs, ok := realByName[ss.Name]
		if !ok {
			continue
		}
		sc, rc := probeCurve(ss), probeCurve(rs)
		sd := SeriesDeviation{Name: ss.Name, SimFinal: sc.final(), RealFinal: rc.final()}
		sd.MaxDev = maxDeviation(sc, rc, runtime, n)
		sd.Gated = sd.SimFinal >= simVsRealSeriesFloor && sd.RealFinal >= simVsRealSeriesFloor
		out = append(out, sd)
	}
	return out
}

// fcurve is a sampled cumulative curve. Commit curves and probe series
// both normalize through it, so the same shape gate serves both.
type fcurve []fpoint

type fpoint struct {
	at sim.Time
	v  float64
}

// commitCurve adapts the realdev commit-curve samples.
func commitCurve(c []realdev.CurvePoint) fcurve {
	out := make(fcurve, len(c))
	for i, p := range c {
		out[i] = fpoint{p.At, float64(p.Committed)}
	}
	return out
}

// probeCurve adapts one sampled probe series. Sampler points carry a
// bucket mean, which for an un-downsampled run is the raw sample itself.
func probeCurve(s obs.Series) fcurve {
	out := make(fcurve, len(s.Points))
	for i, p := range s.Points {
		out[i] = fpoint{p.At, p.Mean}
	}
	return out
}

// final returns the curve's last value (its normalization constant).
func (c fcurve) final() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].v
}

// frac evaluates the curve at time t as a fraction of its final value:
// the step interpolation of the last sample at or before t.
func (c fcurve) frac(t sim.Time) float64 {
	final := c.final()
	if final == 0 {
		return 0
	}
	var at float64
	for _, pt := range c {
		if pt.at > t {
			break
		}
		at = pt.v
	}
	return at / final
}

// maxDeviation measures the largest pointwise gap between two normalized
// cumulative curves over n evenly spaced checkpoints.
func maxDeviation(a, b fcurve, runtime sim.Time, n int) float64 {
	maxDev := 0.0
	for k := 1; k <= n; k++ {
		t := sim.Time(int64(runtime) * int64(k) / int64(n))
		dev := a.frac(t) - b.frac(t)
		if dev < 0 {
			dev = -dev
		}
		if dev > maxDev {
			maxDev = dev
		}
	}
	return maxDev
}

// FormatSimVsReal renders the comparison report.
func FormatSimVsReal(r SimVsRealResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sim-vs-real validation: one configuration, both backends (seed %d)\n", r.Seed)
	fmt.Fprintf(&sb, "  runtime %.2g s, %g TPS, %d objects", r.RuntimeS, r.Arrival, r.NumObjects)
	if r.RuntimeClamped {
		sb.WriteString(" (runtime clamped: real runs pay wall time)")
	}
	sb.WriteString("\n\n")
	fmt.Fprintf(&sb, "  %-22s %12s %12s\n", "", "sim", "real")
	fmt.Fprintf(&sb, "  %-22s %12d %12d\n", "committed", r.Sim.Committed, r.Real.Committed)
	fmt.Fprintf(&sb, "  %-22s %12d %12d\n", "killed", r.Sim.Killed, r.Real.Killed)
	fmt.Fprintf(&sb, "  %-22s %12d %12d\n", "block writes", r.Sim.BlockWrites, r.Real.BlockWrites)
	fmt.Fprintf(&sb, "  %-22s %12.1f %12.1f\n", "writes/s", r.Sim.WritesPerS, r.Real.WritesPerS)
	fmt.Fprintf(&sb, "  %-22s %12.1f %12.1f\n", "end-to-end mean (ms)", r.Sim.E2EMeanMS, r.Real.E2EMeanMS)
	fmt.Fprintf(&sb, "  %-22s %12d %12d\n", "log blocks (min-space)", r.Sim.TotalBlocks, r.Real.TotalBlocks)
	sb.WriteString("\n")
	io := "buffered"
	if r.IO.Direct {
		io = "O_DIRECT"
	}
	fmt.Fprintf(&sb, "  real I/O path: %s, %d B slots, %d batches (%d fsyncs, max %d blocks), batch mean %.2f ms p99 %.2f ms, %d pipeline stalls\n",
		io, r.IO.SlotBytes, r.IO.Batches, r.IO.Fsyncs, r.IO.MaxBatchBlocks, r.IO.BatchMeanMS, r.IO.BatchP99MS, r.IO.PipelineStalls)
	verdict := "OK"
	if !r.WithinTolerance {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "  commit-curve max deviation %.3f over %d checkpoints (tolerance %.2f): %s\n",
		r.MaxCurveDev, r.CurvePoints, r.Tolerance, verdict)
	if len(r.Series) > 0 {
		fmt.Fprintf(&sb, "\n  shared ellog_* series (tolerance %.2f; ~ = under %d events, informational):\n",
			r.SeriesTolerance, simVsRealSeriesFloor)
		for _, sd := range r.Series {
			mark := "~"
			if sd.Gated {
				mark = "OK"
				if sd.MaxDev > r.SeriesTolerance {
					mark = "FAIL"
				}
			}
			fmt.Fprintf(&sb, "    %-28s sim %8.0f  real %8.0f  max dev %.3f  %s\n",
				sd.Name, sd.SimFinal, sd.RealFinal, sd.MaxDev, mark)
		}
	}
	return sb.String()
}
