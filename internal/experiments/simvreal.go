package experiments

import (
	"fmt"
	"os"
	"strings"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/realdev"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// SimVsRealTolerance is the shape gate: the maximum allowed pointwise
// deviation between the simulated and real backends' normalized cumulative
// commit curves. The gate is deliberately on shape, not absolute numbers —
// wall-clock fsync latencies vary machine to machine, but both backends
// run the identical manager and workload code, so their commit curves must
// climb the same way.
const SimVsRealTolerance = 0.15

// SimVsRealSide summarizes one backend's run of the shared configuration.
type SimVsRealSide struct {
	Committed   uint64
	Killed      uint64
	BlockWrites uint64
	WritesPerS  float64
	E2EMeanMS   float64
	TotalBlocks int // configured log size (min-space view)
}

// SimVsRealResult is the comparison report of one configuration run
// through both backends.
type SimVsRealResult struct {
	Seed       uint64
	RuntimeS   float64
	Arrival    float64
	NumObjects uint64
	// RuntimeClamped notes that the requested runtime was cut down to keep
	// the real run's wall-clock cost bounded.
	RuntimeClamped bool

	Sim  SimVsRealSide
	Real SimVsRealSide
	IO   realdev.RealStats

	// MaxCurveDev is the largest pointwise gap between the two normalized
	// commit curves, measured at CurvePoints checkpoints.
	MaxCurveDev     float64
	CurvePoints     int
	Tolerance       float64
	WithinTolerance bool
}

// simVsRealConfig is the shared configuration: a compressed version of the
// paper's workload (10 ms and 50 ms transactions instead of 1 s and 10 s)
// so the real backend — which pays the runtime in actual wall time —
// finishes in seconds. Both backends receive identical parameters; only
// the clock and the device differ.
func simVsRealConfig(opt Options, runtime sim.Time) (core.Params, core.FlushConfig, workload.Config) {
	objects := opt.NumObjects
	if objects == 0 || objects > 20_000 {
		objects = 10_000
	}
	if rem := objects % 4; rem != 0 {
		objects += 4 - rem // flush array wants a multiple of the drive count
	}
	p := core.Params{
		Mode:               core.ModeEphemeral,
		GenSizes:           []int{16, 12, 10},
		Recirculate:        true,
		GroupCommitTimeout: 5 * sim.Millisecond,
		WriteLatency:       5 * sim.Millisecond,
	}
	fc := core.FlushConfig{Drives: 4, Transfer: 2 * sim.Millisecond, NumObjects: objects}
	wl := workload.Config{
		Mix: workload.Mix{
			{Name: "short", Prob: 0.8, Lifetime: 10 * sim.Millisecond, NumRecords: 2, RecordSize: 100},
			{Name: "long", Prob: 0.2, Lifetime: 50 * sim.Millisecond, NumRecords: 4, RecordSize: 100},
		},
		ArrivalRate: 400,
		Runtime:     runtime,
		NumObjects:  objects,
	}
	return p, fc, wl
}

// SimVsReal runs one configuration through the simulated backend and the
// real-file backend and compares the two commit curves. The real run's log
// directory is taken from opt.RealDir (a temporary directory when empty,
// removed afterwards). Direct I/O follows opt.RealDirect ("auto" when
// empty, so tmpfs and CI fall back to buffered I/O).
func SimVsReal(opt Options) (SimVsRealResult, error) {
	runtime := opt.Runtime
	res := SimVsRealResult{Seed: opt.Seed, Tolerance: SimVsRealTolerance}
	// The real backend spends the runtime in wall time: cap it so the
	// default 500 s paper runtime doesn't mean 500 s of fsync traffic.
	if runtime > 10*sim.Second {
		runtime = 2 * sim.Second
		res.RuntimeClamped = true
	}
	if runtime < 200*sim.Millisecond {
		runtime = 200 * sim.Millisecond
		res.RuntimeClamped = true
	}
	p, fc, wl := simVsRealConfig(opt, runtime)
	res.RuntimeS = runtime.Seconds()
	res.Arrival = wl.ArrivalRate
	res.NumObjects = wl.NumObjects
	sampleEvery := runtime / 100

	// Simulated side, with the same commit-curve sampling the real run does.
	live, err := harness.Build(harness.Config{Seed: opt.Seed, LM: p, Flush: fc, Workload: wl})
	if err != nil {
		return res, err
	}
	var simCurve []realdev.CurvePoint
	var sample func()
	sample = func() {
		simCurve = append(simCurve, realdev.CurvePoint{
			At:        live.Setup.Eng.Now(),
			Committed: live.Gen.Stats().Committed,
		})
		if live.Setup.Eng.Now() < runtime {
			live.Setup.Eng.After(sampleEvery, sample)
		}
	}
	live.Setup.Eng.After(sampleEvery, sample)
	live.Setup.Eng.Run(runtime)
	simStats := live.Setup.LM.Stats()
	simW := live.Gen.Stats()
	res.Sim = SimVsRealSide{
		Committed:   simW.Committed,
		Killed:      simW.Killed,
		BlockWrites: simStats.TotalWrites,
		WritesPerS:  simStats.TotalBandwidth,
		E2EMeanMS:   simW.EndToEndMean * 1000,
		TotalBlocks: simStats.TotalBlocks,
	}

	// Real side.
	dir := opt.RealDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ellog-simvreal-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	direct := realdev.DirectMode(opt.RealDirect)
	realRes, err := realdev.Run(realdev.RunConfig{
		Seed:        opt.Seed,
		Dir:         dir,
		LM:          p,
		Flush:       fc,
		Workload:    wl,
		Device:      realdev.Options{Direct: direct},
		SampleEvery: sampleEvery,
	})
	if err != nil {
		return res, err
	}
	res.Real = SimVsRealSide{
		Committed:   realRes.Workload.Committed,
		Killed:      realRes.Workload.Killed,
		BlockWrites: realRes.LM.TotalWrites,
		WritesPerS:  realRes.LM.TotalBandwidth,
		E2EMeanMS:   realRes.Workload.EndToEndMean * 1000,
		TotalBlocks: realRes.LM.TotalBlocks,
	}
	res.IO = realRes.Real

	if res.Sim.Committed == 0 || res.Real.Committed == 0 {
		return res, fmt.Errorf("simvreal: a backend committed nothing (sim %d, real %d)",
			res.Sim.Committed, res.Real.Committed)
	}
	res.CurvePoints = 100
	res.MaxCurveDev = maxCurveDeviation(simCurve, realRes.Curve, runtime, res.CurvePoints)
	res.WithinTolerance = res.MaxCurveDev <= res.Tolerance
	return res, nil
}

// curveFrac evaluates a sampled cumulative curve at time t as a fraction
// of its final value: the step interpolation of the last sample at or
// before t.
func curveFrac(c []realdev.CurvePoint, t sim.Time) float64 {
	if len(c) == 0 {
		return 0
	}
	final := c[len(c)-1].Committed
	if final == 0 {
		return 0
	}
	var at uint64
	for _, pt := range c {
		if pt.At > t {
			break
		}
		at = pt.Committed
	}
	return float64(at) / float64(final)
}

// maxCurveDeviation measures the largest pointwise gap between two
// normalized cumulative curves over n evenly spaced checkpoints.
func maxCurveDeviation(a, b []realdev.CurvePoint, runtime sim.Time, n int) float64 {
	maxDev := 0.0
	for k := 1; k <= n; k++ {
		t := sim.Time(int64(runtime) * int64(k) / int64(n))
		dev := curveFrac(a, t) - curveFrac(b, t)
		if dev < 0 {
			dev = -dev
		}
		if dev > maxDev {
			maxDev = dev
		}
	}
	return maxDev
}

// FormatSimVsReal renders the comparison report.
func FormatSimVsReal(r SimVsRealResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sim-vs-real validation: one configuration, both backends (seed %d)\n", r.Seed)
	fmt.Fprintf(&sb, "  runtime %.2g s, %g TPS, %d objects", r.RuntimeS, r.Arrival, r.NumObjects)
	if r.RuntimeClamped {
		sb.WriteString(" (runtime clamped: real runs pay wall time)")
	}
	sb.WriteString("\n\n")
	fmt.Fprintf(&sb, "  %-22s %12s %12s\n", "", "sim", "real")
	fmt.Fprintf(&sb, "  %-22s %12d %12d\n", "committed", r.Sim.Committed, r.Real.Committed)
	fmt.Fprintf(&sb, "  %-22s %12d %12d\n", "killed", r.Sim.Killed, r.Real.Killed)
	fmt.Fprintf(&sb, "  %-22s %12d %12d\n", "block writes", r.Sim.BlockWrites, r.Real.BlockWrites)
	fmt.Fprintf(&sb, "  %-22s %12.1f %12.1f\n", "writes/s", r.Sim.WritesPerS, r.Real.WritesPerS)
	fmt.Fprintf(&sb, "  %-22s %12.1f %12.1f\n", "end-to-end mean (ms)", r.Sim.E2EMeanMS, r.Real.E2EMeanMS)
	fmt.Fprintf(&sb, "  %-22s %12d %12d\n", "log blocks (min-space)", r.Sim.TotalBlocks, r.Real.TotalBlocks)
	sb.WriteString("\n")
	io := "buffered"
	if r.IO.Direct {
		io = "O_DIRECT"
	}
	fmt.Fprintf(&sb, "  real I/O path: %s, %d B slots, %d batches (%d fsyncs, max %d blocks), batch mean %.2f ms p99 %.2f ms, %d pipeline stalls\n",
		io, r.IO.SlotBytes, r.IO.Batches, r.IO.Fsyncs, r.IO.MaxBatchBlocks, r.IO.BatchMeanMS, r.IO.BatchP99MS, r.IO.PipelineStalls)
	verdict := "OK"
	if !r.WithinTolerance {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "  commit-curve max deviation %.3f over %d checkpoints (tolerance %.2f): %s\n",
		r.MaxCurveDev, r.CurvePoints, r.Tolerance, verdict)
	return sb.String()
}
