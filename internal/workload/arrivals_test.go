package workload

import (
	"math"
	"testing"

	"ellog/internal/sim"
)

func TestArrivalString(t *testing.T) {
	if ArrivalDeterministic.String() != "deterministic" ||
		ArrivalPoisson.String() != "poisson" ||
		ArrivalBursty.String() != "bursty" {
		t.Fatal("arrival names wrong")
	}
	if Arrival(9).String() == "" {
		t.Fatal("unknown arrival unnamed")
	}
}

// runArrivals counts arrivals and inter-arrival gap variance for a process.
func runArrivals(t *testing.T, a Arrival, rate float64, runtime sim.Time) (n int, cv float64) {
	t.Helper()
	eng := sim.NewEngine(21, 22)
	lm := &fakeLM{eng: eng, ackImmediately: true}
	cfg := Config{
		Mix:         Mix{{Name: "t", Prob: 1, Lifetime: 50 * sim.Millisecond, NumRecords: 1, RecordSize: 10}},
		ArrivalRate: rate,
		Runtime:     runtime,
		NumObjects:  1_000_000,
		Arrival:     a,
	}
	g, err := New(eng, lm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(runtime + sim.Second)
	var begins []sim.Time
	for i, e := range lm.events {
		if e == "begin" {
			begins = append(begins, lm.times[i])
		}
	}
	var gaps []float64
	for i := 1; i < len(begins); i++ {
		gaps = append(gaps, float64(begins[i]-begins[i-1]))
	}
	mean, varsum := 0.0, 0.0
	for _, gp := range gaps {
		mean += gp
	}
	mean /= float64(len(gaps))
	for _, gp := range gaps {
		varsum += (gp - mean) * (gp - mean)
	}
	sd := math.Sqrt(varsum / float64(len(gaps)))
	return len(begins), sd / mean
}

func TestArrivalRatesMatchAcrossProcesses(t *testing.T) {
	const rate, runtime = 200.0, 60 * sim.Second
	want := int(rate * runtime.Seconds())
	for _, a := range []Arrival{ArrivalDeterministic, ArrivalPoisson, ArrivalBursty} {
		n, _ := runArrivals(t, a, rate, runtime)
		// All processes share the same mean rate; bursty wobbles the most.
		if n < want*7/10 || n > want*13/10 {
			t.Fatalf("%v: %d arrivals, want ~%d", a, n, want)
		}
	}
}

func TestArrivalVariability(t *testing.T) {
	const rate, runtime = 200.0, 60 * sim.Second
	_, cvDet := runArrivals(t, ArrivalDeterministic, rate, runtime)
	_, cvPoi := runArrivals(t, ArrivalPoisson, rate, runtime)
	_, cvBur := runArrivals(t, ArrivalBursty, rate, runtime)
	// Deterministic: zero variance. Poisson: CV = 1. Bursty: heavier.
	if cvDet > 1e-9 {
		t.Fatalf("deterministic CV = %v, want 0", cvDet)
	}
	if math.Abs(cvPoi-1) > 0.15 {
		t.Fatalf("poisson CV = %v, want ~1", cvPoi)
	}
	if cvBur <= cvPoi {
		t.Fatalf("bursty CV %v not above poisson %v", cvBur, cvPoi)
	}
}

// TestBurstyLongRunMeanRate measures the bursty process's long-run mean
// over a horizon long enough that modulation noise is ~1%: the unbalanced
// 2x/0.1x rates this replaced ran ≈5% hot, which a ±3% bound catches. The
// gap process is driven directly (one event per arrival, no transaction
// machinery) so a long horizon stays cheap.
func TestBurstyLongRunMeanRate(t *testing.T) {
	const rate = 100.0
	const horizon = 40_000 * sim.Second
	eng := sim.NewEngine(5, 7)
	g := &Generator{eng: eng, cfg: Config{ArrivalRate: rate, Arrival: ArrivalBursty}}
	n := 0
	var step func()
	step = func() {
		if eng.Now() >= horizon {
			return
		}
		n++
		eng.After(g.nextGap(), step)
	}
	eng.At(0, step)
	eng.Run(horizon + sim.Second)
	want := rate * horizon.Seconds()
	if ratio := float64(n) / want; ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("bursty long-run rate %.3fx configured (%d arrivals over %v), want 1.00±0.03",
			ratio, n, horizon)
	}
}

func TestBurstyNeverStalls(t *testing.T) {
	// The off state trickles rather than stopping; the engine must never
	// run out of arrivals mid-runtime.
	n, _ := runArrivals(t, ArrivalBursty, 50, 30*sim.Second)
	if n < 100 {
		t.Fatalf("bursty arrivals starved: %d", n)
	}
}
