package workload

import (
	"math"
	"testing"

	"ellog/internal/logrec"
	"ellog/internal/sim"
)

func TestMixValidate(t *testing.T) {
	if err := PaperMix(0.05).Validate(); err != nil {
		t.Fatalf("paper mix rejected: %v", err)
	}
	bad := []Mix{
		{},
		{{Prob: 0.5, Lifetime: sim.Second, NumRecords: 1, RecordSize: 1}}, // sums to 0.5
		{{Prob: 1, Lifetime: 0, NumRecords: 1, RecordSize: 1}},
		{{Prob: 1, Lifetime: sim.Second, NumRecords: 0, RecordSize: 1}},
		{{Prob: -1, Lifetime: sim.Second, NumRecords: 1, RecordSize: 1},
			{Prob: 2, Lifetime: sim.Second, NumRecords: 1, RecordSize: 1}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad mix %d accepted", i)
		}
	}
}

func TestPaperMixRates(t *testing.T) {
	// Section 4: "As the fraction of 10 s transactions increases from 5%
	// to 40%, the average number of updates per second rises from 210 to
	// 280" at 100 TPS.
	if got := PaperMix(0.05).UpdatesPerSecond(100); math.Abs(got-210) > 1e-9 {
		t.Fatalf("5%% mix updates/s = %v, want 210", got)
	}
	if got := PaperMix(0.40).UpdatesPerSecond(100); math.Abs(got-280) > 1e-9 {
		t.Fatalf("40%% mix updates/s = %v, want 280", got)
	}
	// 5% mix bytes: 0.95*(200+16) + 0.05*(400+16) = 226 per tx.
	if got := PaperMix(0.05).LogBytesPerSecond(100, 8); math.Abs(got-22600) > 1e-6 {
		t.Fatalf("5%% mix bytes/s = %v, want 22600", got)
	}
}

// fakeLM records the call sequence the generator produces.
type fakeLM struct {
	events []string
	times  []sim.Time
	eng    *sim.Engine
	lsn    logrec.LSN
	// ackImmediately controls whether Commit acks synchronously.
	ackImmediately bool
	pendingAcks    []func()
	killFn         func(logrec.TxID)
}

func (f *fakeLM) BeginHinted(tid logrec.TxID, expected sim.Time) {
	f.events = append(f.events, "begin")
	f.times = append(f.times, f.eng.Now())
	_ = expected
}

func (f *fakeLM) WriteData(tid logrec.TxID, oid logrec.OID, size int) logrec.LSN {
	f.events = append(f.events, "data")
	f.times = append(f.times, f.eng.Now())
	f.lsn++
	return f.lsn
}

func (f *fakeLM) Commit(tid logrec.TxID, onDurable func()) {
	f.events = append(f.events, "commit")
	f.times = append(f.times, f.eng.Now())
	if f.ackImmediately && onDurable != nil {
		onDurable()
	} else if onDurable != nil {
		f.pendingAcks = append(f.pendingAcks, onDurable)
	}
}

func (f *fakeLM) SetKillHandler(fn func(logrec.TxID)) { f.killFn = fn }

func singleTypeCfg(life sim.Time, n int) Config {
	return Config{
		Mix:         Mix{{Name: "t", Prob: 1, Lifetime: life, NumRecords: n, RecordSize: 100}},
		ArrivalRate: 1,
		Runtime:     sim.Second / 2, // exactly one arrival at t=0
		NumObjects:  1000,
	}
}

func TestFigure3Schedule(t *testing.T) {
	// One transaction, T=1s, N=2, eps=1ms: BEGIN at 0, data at (T-eps)/2
	// = 499.5ms and 999ms, COMMIT at 1s.
	eng := sim.NewEngine(1, 2)
	lm := &fakeLM{eng: eng, ackImmediately: true}
	g, err := New(eng, lm, singleTypeCfg(sim.Second, 2))
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(2 * sim.Second)
	want := []string{"begin", "data", "data", "commit"}
	if len(lm.events) != len(want) {
		t.Fatalf("events %v, want %v", lm.events, want)
	}
	for i := range want {
		if lm.events[i] != want[i] {
			t.Fatalf("events %v, want %v", lm.events, want)
		}
	}
	step := (sim.Second - DefaultEpsilon) / 2
	wantTimes := []sim.Time{0, step, 2 * step, sim.Second}
	for i, w := range wantTimes {
		if lm.times[i] != w {
			t.Fatalf("event %d at %v, want %v (all: %v)", i, lm.times[i], w, lm.times)
		}
	}
	// Last data record is exactly epsilon before the commit record.
	if lm.times[3]-lm.times[2] != DefaultEpsilon {
		t.Fatalf("commit gap %v, want epsilon %v", lm.times[3]-lm.times[2], DefaultEpsilon)
	}
}

func TestRegularArrivals(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	lm := &fakeLM{eng: eng, ackImmediately: true}
	cfg := singleTypeCfg(100*sim.Millisecond, 1)
	cfg.ArrivalRate = 100
	cfg.Runtime = 100 * sim.Millisecond
	g, err := New(eng, lm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(sim.Second)
	// Arrivals at 0,10,...,90 ms: exactly 10.
	if got := g.Stats().Started; got != 10 {
		t.Fatalf("started %d transactions, want 10", got)
	}
	var begins []sim.Time
	for i, e := range lm.events {
		if e == "begin" {
			begins = append(begins, lm.times[i])
		}
	}
	for i, b := range begins {
		if b != sim.Time(i)*10*sim.Millisecond {
			t.Fatalf("begin %d at %v, want %v", i, b, sim.Time(i)*10*sim.Millisecond)
		}
	}
}

func TestMixProportions(t *testing.T) {
	eng := sim.NewEngine(5, 6)
	lm := &fakeLM{eng: eng, ackImmediately: true}
	cfg := Config{
		Mix:         PaperMix(0.25),
		ArrivalRate: 1000,
		Runtime:     20 * sim.Second,
		NumObjects:  10_000_000,
	}
	g, err := New(eng, lm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(cfg.Runtime)
	st := g.Stats()
	frac := float64(st.PerType["long-10s"]) / float64(st.Started)
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("long fraction %v after %d arrivals, want ~0.25", frac, st.Started)
	}
}

func TestOIDsUniqueAmongActive(t *testing.T) {
	// Small object space and many concurrent writers: no two active
	// transactions may ever hold the same oid.
	eng := sim.NewEngine(7, 8)
	lm := &fakeLM{eng: eng} // acks withheld: transactions stay "active"
	cfg := Config{
		Mix:         Mix{{Name: "w", Prob: 1, Lifetime: 100 * sim.Millisecond, NumRecords: 4, RecordSize: 10}},
		ArrivalRate: 200,
		Runtime:     sim.Second,
		NumObjects:  1200,
	}
	g, err := New(eng, lm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(2 * sim.Second)
	// With acks withheld, every written oid is still held.
	dataWrites := 0
	for _, e := range lm.events {
		if e == "data" {
			dataWrites++
		}
	}
	if g.ActiveHeld() != dataWrites {
		t.Fatalf("%d oids held, %d data writes — duplicate draw", g.ActiveHeld(), dataWrites)
	}
}

func TestOracleAndCommitAccounting(t *testing.T) {
	eng := sim.NewEngine(9, 10)
	lm := &fakeLM{eng: eng, ackImmediately: true}
	cfg := singleTypeCfg(100*sim.Millisecond, 2)
	cfg.ArrivalRate = 10
	cfg.Runtime = sim.Second
	g, err := New(eng, lm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(5 * sim.Second)
	st := g.Stats()
	if st.Started != 10 || st.Committed != 10 || st.Killed != 0 {
		t.Fatalf("stats %+v", st)
	}
	if len(g.Oracle()) != 20 {
		t.Fatalf("oracle has %d entries, want 20 (2 per tx, distinct oids)", len(g.Oracle()))
	}
	if g.ActiveHeld() != 0 {
		t.Fatalf("%d oids still held after all commits", g.ActiveHeld())
	}
	if st.EndToEndMean < 0.099 {
		t.Fatalf("end-to-end mean %v below lifetime", st.EndToEndMean)
	}
}

func TestKilledTransactionStopsWriting(t *testing.T) {
	eng := sim.NewEngine(11, 12)
	lm := &fakeLM{eng: eng, ackImmediately: true}
	cfg := singleTypeCfg(sim.Second, 4)
	g, err := New(eng, lm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(300 * sim.Millisecond) // one data record written (at ~249.75ms)
	lm.killFn(1)                   // the LM kills tx 1
	eng.Run(5 * sim.Second)
	dataWrites := 0
	commits := 0
	for _, e := range lm.events {
		switch e {
		case "data":
			dataWrites++
		case "commit":
			commits++
		}
	}
	if dataWrites != 1 {
		t.Fatalf("%d data writes after kill, want 1 (pre-kill only)", dataWrites)
	}
	if commits != 0 {
		t.Fatal("killed transaction still committed")
	}
	st := g.Stats()
	if st.Killed != 1 || st.Committed != 0 {
		t.Fatalf("stats %+v", st)
	}
	if g.ActiveHeld() != 0 {
		t.Fatal("killed transaction's oids not released")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	lm := &fakeLM{eng: eng}
	bad := []Config{
		{Mix: PaperMix(0.05), ArrivalRate: 0, Runtime: sim.Second, NumObjects: 10},
		{Mix: PaperMix(0.05), ArrivalRate: 1, Runtime: 0, NumObjects: 10},
		{Mix: PaperMix(0.05), ArrivalRate: 1, Runtime: sim.Second, NumObjects: 0},
		{Mix: Mix{{Prob: 1, Lifetime: sim.Millisecond / 2, NumRecords: 1, RecordSize: 1}},
			ArrivalRate: 1, Runtime: sim.Second, NumObjects: 10}, // lifetime <= epsilon
	}
	for i, cfg := range bad {
		if _, err := New(eng, lm, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	run := func() []string {
		eng := sim.NewEngine(42, 43)
		lm := &fakeLM{eng: eng, ackImmediately: true}
		cfg := Config{Mix: PaperMix(0.3), ArrivalRate: 50, Runtime: 2 * sim.Second, NumObjects: 100000}
		g, _ := New(eng, lm, cfg)
		g.Start()
		eng.Run(15 * sim.Second)
		return lm.events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at event %d", i)
		}
	}
}
