package workload

import (
	"fmt"

	"ellog/internal/sim"
)

// Arrival selects the transaction initiation process. The paper uses
// deterministic arrivals ("transactions are initiated at regular
// intervals") and defers richer models to future work ("more complicated
// probabilistic models (such as Markov arrivals) may be investigated");
// this package implements the deterministic baseline plus two of those
// richer processes, used by the arrival-sensitivity extension experiment.
type Arrival int

const (
	// ArrivalDeterministic initiates one transaction every 1/rate seconds —
	// the paper's model and the default.
	ArrivalDeterministic Arrival = iota
	// ArrivalPoisson draws exponential inter-arrival gaps with the same
	// mean rate: memoryless arrivals, the classic open-system model.
	ArrivalPoisson
	// ArrivalBursty is a two-state Markov-modulated process: an "on" state
	// arriving at 1.9x the mean rate and an "off" state trickling at 0.1x,
	// alternating with exponentially distributed sojourns of equal mean.
	// The factors average to one, so the long-run mean rate matches the
	// configured rate, but arrivals clump — the hardest case for a fixed
	// disk budget.
	ArrivalBursty
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case ArrivalDeterministic:
		return "deterministic"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// burstySojourn is the mean sojourn time in each modulation state. The
// on/off rate factors must average to one across the (equal-sojourn)
// states so the long-run mean arrival rate equals the configured rate;
// the off state cannot be fully silent or the process could starve for
// arbitrarily long, so it trickles at a tenth of the rate and the on
// state burns at 1.9x rather than 2x.
const (
	burstySojourn   = 2 * sim.Second
	burstyOnFactor  = 1.9
	burstyOffFactor = 0.1
)

// nextGap returns the next inter-arrival gap for the configured process.
func (g *Generator) nextGap() sim.Time {
	mean := g.interval()
	switch g.cfg.Arrival {
	case ArrivalPoisson:
		return expGap(g, float64(mean))
	case ArrivalBursty:
		// Within each modulation state arrivals are Poisson at that
		// state's rate. A gap that would cross the state boundary is
		// re-drawn from the boundary at the new state's rate — the
		// exponential is memoryless, so this samples the modulated process
		// exactly. (Letting a slow off-state gap overrun into the on state
		// would silently shave ~4% off the long-run rate.)
		start := g.eng.Now()
		t := start
		for {
			// Flip modulation state when its sojourn expires.
			for t >= g.burstUntil {
				g.burstOn = !g.burstOn
				g.burstUntil += expGap(g, float64(burstySojourn))
			}
			factor := burstyOffFactor
			if g.burstOn {
				factor = burstyOnFactor
			}
			gap := expGap(g, float64(mean)/factor)
			if t+gap <= g.burstUntil {
				return t + gap - start
			}
			t = g.burstUntil
		}
	default:
		return mean
	}
}

// expGap draws an exponential gap with the given mean (in µs), at least
// 1 µs so simulated time always advances.
func expGap(g *Generator, mean float64) sim.Time {
	gap := sim.Time(g.eng.Rand().ExpFloat64() * mean)
	if gap < 1 {
		gap = 1
	}
	return gap
}
