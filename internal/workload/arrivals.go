package workload

import (
	"fmt"

	"ellog/internal/sim"
)

// Arrival selects the transaction initiation process. The paper uses
// deterministic arrivals ("transactions are initiated at regular
// intervals") and defers richer models to future work ("more complicated
// probabilistic models (such as Markov arrivals) may be investigated");
// this package implements the deterministic baseline plus two of those
// richer processes, used by the arrival-sensitivity extension experiment.
type Arrival int

const (
	// ArrivalDeterministic initiates one transaction every 1/rate seconds —
	// the paper's model and the default.
	ArrivalDeterministic Arrival = iota
	// ArrivalPoisson draws exponential inter-arrival gaps with the same
	// mean rate: memoryless arrivals, the classic open-system model.
	ArrivalPoisson
	// ArrivalBursty is a two-state Markov-modulated process: an "on" state
	// arriving at twice the mean rate and an "off" state at ~zero,
	// alternating with exponentially distributed sojourns. Mean rate
	// matches the configured rate, but arrivals clump — the hardest case
	// for a fixed disk budget.
	ArrivalBursty
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case ArrivalDeterministic:
		return "deterministic"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// burstySojourn is the mean sojourn time in each modulation state.
const burstySojourn = 2 * sim.Second

// nextGap returns the next inter-arrival gap for the configured process.
func (g *Generator) nextGap() sim.Time {
	mean := g.interval()
	switch g.cfg.Arrival {
	case ArrivalPoisson:
		return expGap(g, float64(mean))
	case ArrivalBursty:
		// Flip modulation state when its sojourn expires.
		for g.eng.Now() >= g.burstUntil {
			g.burstOn = !g.burstOn
			g.burstUntil += expGap(g, float64(burstySojourn))
		}
		if g.burstOn {
			return expGap(g, float64(mean)/2)
		}
		// The off state still trickles at a tenth of the rate so the
		// process cannot starve forever.
		return expGap(g, float64(mean)*10)
	default:
		return mean
	}
}

// expGap draws an exponential gap with the given mean (in µs), at least
// 1 µs so simulated time always advances.
func expGap(g *Generator, mean float64) sim.Time {
	gap := sim.Time(g.eng.Rand().ExpFloat64() * mean)
	if gap < 1 {
		gap = 1
	}
	return gap
}
