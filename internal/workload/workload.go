// Package workload implements the paper's transaction model (section 3,
// Figure 3): the user specifies transaction types — probability of
// occurrence, duration, number of data log records, record size — and an
// arrival rate. Transactions are initiated at exactly regular intervals; a
// transaction of lifetime T writes BEGIN at t0, its N data records at
// equally spaced intervals (T-epsilon)/N apart with the last at t0+T-epsilon,
// and COMMIT at t0+T, then waits for the logging manager's group-commit
// acknowledgement (t4) to actually commit.
//
// Object identifiers are drawn uniformly from [0, NumObjects), rejecting
// any oid already updated by a still-active transaction, exactly as the
// paper specifies.
package workload

import (
	"fmt"
	"math"

	"ellog/internal/logrec"
	"ellog/internal/metrics"
	"ellog/internal/sim"
)

// TxType describes one class of transactions.
type TxType struct {
	Name       string
	Prob       float64  // probability of occurrence
	Lifetime   sim.Time // T: duration from BEGIN to the COMMIT record
	NumRecords int      // data log records written
	RecordSize int      // bytes per data record
}

// Mix is a probability distribution over transaction types.
type Mix []TxType

// Validate checks the distribution.
func (m Mix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("workload: empty mix")
	}
	sum := 0.0
	for i, t := range m {
		if t.Prob < 0 {
			return fmt.Errorf("workload: type %d has negative probability", i)
		}
		if t.Lifetime <= 0 || t.NumRecords <= 0 || t.RecordSize <= 0 {
			return fmt.Errorf("workload: type %d (%s) has non-positive parameters", i, t.Name)
		}
		sum += t.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("workload: probabilities sum to %v, want 1", sum)
	}
	return nil
}

// PaperMix returns the two-type workload used for all experiments in
// section 4: a 1 s transaction writing two 100-byte records and a 10 s
// transaction writing four 100-byte records, with fracLong the fraction of
// the long type (0.05 to 0.40 in the paper).
func PaperMix(fracLong float64) Mix {
	return Mix{
		{Name: "short-1s", Prob: 1 - fracLong, Lifetime: 1 * sim.Second, NumRecords: 2, RecordSize: 100},
		{Name: "long-10s", Prob: fracLong, Lifetime: 10 * sim.Second, NumRecords: 4, RecordSize: 100},
	}
}

// UpdatesPerSecond returns the expected data-record rate at the given
// arrival rate (the paper quotes 210/s at a 5% mix and 280/s at 40%).
func (m Mix) UpdatesPerSecond(arrivalRate float64) float64 {
	exp := 0.0
	for _, t := range m {
		exp += t.Prob * float64(t.NumRecords)
	}
	return exp * arrivalRate
}

// LogBytesPerSecond returns the expected log payload rate, counting
// txRecSize bytes each for BEGIN and COMMIT.
func (m Mix) LogBytesPerSecond(arrivalRate float64, txRecSize int) float64 {
	exp := 0.0
	for _, t := range m {
		exp += t.Prob * (float64(t.NumRecords*t.RecordSize) + 2*float64(txRecSize))
	}
	return exp * arrivalRate
}

// DefaultEpsilon is the paper's fixed 1 ms gap between a transaction's last
// data record and its COMMIT record.
const DefaultEpsilon = sim.Millisecond

// Config parameterizes a Generator, mirroring the paper's simulator inputs.
type Config struct {
	Mix         Mix
	ArrivalRate float64  // transactions per second (100 in the paper)
	Runtime     sim.Time // how long to initiate transactions (500 s)
	NumObjects  uint64   // object space (10^7)
	Epsilon     sim.Time // defaults to 1 ms
	Hints       bool     // pass expected lifetimes to the LM (section 6 extension)
	Arrival     Arrival  // initiation process (default: the paper's deterministic)
	// OIDBase offsets every drawn oid: partition p of a shared-nothing
	// system gives its generator base p*NumObjects so the partitions'
	// object ranges are disjoint (multilog).
	OIDBase uint64
	// TidBase offsets transaction identifiers the same way.
	TidBase uint64
	// NumShards > 1 turns on shard-aware object draws against a sharded
	// system (multilog.Router): the object space [OIDBase, OIDBase+
	// NumObjects) is split into NumShards equal ranges, each transaction
	// gets a home shard, and its oids are drawn from its shards' ranges.
	// Zero or one means the classic unsharded draw — and makes exactly the
	// same Rand calls as before the knob existed, so unsharded runs stay
	// byte-identical.
	NumShards int
	// CrossShardFrac is the fraction of transactions (among those writing
	// at least two records) that draw oids from two shards instead of one,
	// exercising the router's two-phase commit. Requires NumShards >= 2.
	CrossShardFrac float64
}

// LogManager is the interface the generator drives; *core.Manager and the
// hybrid manager satisfy it.
type LogManager interface {
	BeginHinted(tid logrec.TxID, expected sim.Time)
	WriteData(tid logrec.TxID, oid logrec.OID, size int) logrec.LSN
	Commit(tid logrec.TxID, onDurable func())
	SetKillHandler(fn func(logrec.TxID))
}

// Stats summarizes a generator run.
type Stats struct {
	Started   uint64
	Committed uint64 // durably committed (acknowledged)
	Killed    uint64
	PerType   map[string]uint64 // started per type
	// EndToEnd is t4-t0: lifetime plus group-commit delay. All committed
	// transactions, local and cross-shard alike.
	EndToEndMean float64
	EndToEndP99  float64
	// Sharded runs split the latency by commit path: a local transaction
	// pays one group-commit delay, a cross-shard one pays prepare
	// durability on every participant plus the coordinator's decision.
	CrossStarted      uint64
	CrossCommitted    uint64
	LocalEndToEndMean float64
	LocalEndToEndP99  float64
	CrossEndToEndMean float64
	CrossEndToEndP99  float64
}

type txRun struct {
	typ          *TxType
	killed       bool
	commitIssued bool // COMMIT record handed to the log manager
	durable      bool // group-commit acknowledgement received (t4)
	cross        bool // draws oids from two shards (2PC on commit)
	home, remote int  // shard assignment (equal unless cross)
	began        sim.Time
	writes       map[logrec.OID]logrec.LSN
}

// Generator initiates transactions against a LogManager on a simulation
// engine.
type Generator struct {
	eng sim.Source
	lm  LogManager
	cfg Config

	nextTid logrec.TxID
	txs     map[logrec.TxID]*txRun
	held    map[logrec.OID]logrec.TxID
	oracle  map[logrec.OID]logrec.LSN

	started, committed, killed   metrics.Counter
	crossStarted, crossCommitted metrics.Counter
	perType                      map[string]uint64
	endToEnd                     metrics.Histogram
	localE2E, crossE2E           metrics.Histogram

	// bursty-arrival modulation state
	burstOn    bool
	burstUntil sim.Time
}

// New builds a generator. It registers itself as the manager's kill
// handler. eng is the run's clock-and-random source: a *sim.Engine in
// simulation mode, a realtime loop in real mode — the generator makes
// exactly the same scheduling and Rand calls either way.
func New(eng sim.Source, lm LogManager, cfg Config) (*Generator, error) {
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	if cfg.ArrivalRate <= 0 || cfg.Runtime <= 0 || cfg.NumObjects == 0 {
		return nil, fmt.Errorf("workload: rate, runtime and object count must be positive")
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = DefaultEpsilon
	}
	if cfg.CrossShardFrac < 0 || cfg.CrossShardFrac > 1 {
		return nil, fmt.Errorf("workload: cross-shard fraction %v outside [0,1]", cfg.CrossShardFrac)
	}
	if cfg.CrossShardFrac > 0 && cfg.NumShards < 2 {
		return nil, fmt.Errorf("workload: cross-shard fraction %v needs at least 2 shards, have %d", cfg.CrossShardFrac, cfg.NumShards)
	}
	if cfg.NumShards > 1 && cfg.NumObjects%uint64(cfg.NumShards) != 0 {
		return nil, fmt.Errorf("workload: %d objects do not split evenly over %d shards", cfg.NumObjects, cfg.NumShards)
	}
	for _, t := range cfg.Mix {
		if t.Lifetime <= cfg.Epsilon {
			return nil, fmt.Errorf("workload: type %s lifetime %v not greater than epsilon %v", t.Name, t.Lifetime, cfg.Epsilon)
		}
	}
	g := &Generator{
		eng:     eng,
		lm:      lm,
		cfg:     cfg,
		txs:     make(map[logrec.TxID]*txRun),
		held:    make(map[logrec.OID]logrec.TxID),
		oracle:  make(map[logrec.OID]logrec.LSN),
		perType: make(map[string]uint64),
	}
	lm.SetKillHandler(g.onKill)
	return g, nil
}

// Start schedules the first arrival; transactions then initiate at regular
// intervals for the configured runtime.
func (g *Generator) Start() {
	g.eng.At(0, g.arrival)
}

func (g *Generator) interval() sim.Time {
	return sim.Time(float64(sim.Second) / g.cfg.ArrivalRate)
}

func (g *Generator) arrival() {
	now := g.eng.Now()
	if now >= g.cfg.Runtime {
		return
	}
	g.initiate()
	g.eng.At(now+g.nextGap(), g.arrival)
}

// pickType selects a transaction type according to the pdf.
func (g *Generator) pickType() *TxType {
	r := g.eng.Rand().Float64()
	acc := 0.0
	for i := range g.cfg.Mix {
		acc += g.cfg.Mix[i].Prob
		if r < acc {
			return &g.cfg.Mix[i]
		}
	}
	return &g.cfg.Mix[len(g.cfg.Mix)-1]
}

func (g *Generator) initiate() {
	typ := g.pickType()
	g.nextTid++
	tid := logrec.TxID(g.cfg.TidBase) + g.nextTid
	run := &txRun{typ: typ, began: g.eng.Now(), writes: make(map[logrec.OID]logrec.LSN)}
	if g.cfg.NumShards > 1 {
		run.home = int(g.eng.Rand().Uint64N(uint64(g.cfg.NumShards)))
		run.remote = run.home
		if g.cfg.CrossShardFrac > 0 && typ.NumRecords >= 2 &&
			g.eng.Rand().Float64() < g.cfg.CrossShardFrac {
			run.cross = true
			// A distinct second shard, uniform over the others.
			run.remote = int(g.eng.Rand().Uint64N(uint64(g.cfg.NumShards - 1)))
			if run.remote >= run.home {
				run.remote++
			}
			g.crossStarted.Inc()
		}
	}
	g.txs[tid] = run
	g.started.Inc()
	g.perType[typ.Name]++

	hint := sim.Time(0)
	if g.cfg.Hints {
		hint = typ.Lifetime
	}
	g.lm.BeginHinted(tid, hint)

	// Schedule the N data records: record j at t0 + j*(T-eps)/N, so the
	// last lands at t0 + T - eps (Figure 3).
	step := (typ.Lifetime - g.cfg.Epsilon) / sim.Time(typ.NumRecords)
	for j := 1; j <= typ.NumRecords; j++ {
		j := j
		g.eng.After(sim.Time(j)*step, func() { g.writeRecord(tid, j) })
	}
	g.eng.After(typ.Lifetime, func() { g.commit(tid) })
}

// recordShard decides which shard transaction run's j-th record writes
// to. A cross-shard transaction's first record goes to the home shard
// (making it the coordinator) and its second to the remote shard (so at
// least two shards are always enlisted); further records flip a coin.
func (g *Generator) recordShard(run *txRun, j int) int {
	if !run.cross {
		return run.home
	}
	switch j {
	case 1:
		return run.home
	case 2:
		return run.remote
	default:
		if g.eng.Rand().Float64() < 0.5 {
			return run.remote
		}
		return run.home
	}
}

// drawOID picks an object not currently updated by any active
// transaction — from the whole space in unsharded runs (the classic
// draw, bit-for-bit), or from the given shard's range.
func (g *Generator) drawOID(shard int) logrec.OID {
	if g.cfg.NumShards <= 1 {
		for {
			oid := logrec.OID(g.cfg.OIDBase + g.eng.Rand().Uint64N(g.cfg.NumObjects))
			if _, taken := g.held[oid]; !taken {
				return oid
			}
		}
	}
	per := g.cfg.NumObjects / uint64(g.cfg.NumShards)
	for {
		oid := logrec.OID(g.cfg.OIDBase + uint64(shard)*per + g.eng.Rand().Uint64N(per))
		if _, taken := g.held[oid]; !taken {
			return oid
		}
	}
}

func (g *Generator) writeRecord(tid logrec.TxID, j int) {
	run := g.txs[tid]
	if run.killed {
		return
	}
	oid := g.drawOID(g.recordShard(run, j))
	g.held[oid] = tid
	lsn := g.lm.WriteData(tid, oid, run.typ.RecordSize)
	if run.killed {
		// The write itself triggered space pressure that killed this very
		// transaction; the record is already garbage and the oid is free.
		delete(g.held, oid)
		return
	}
	run.writes[oid] = lsn
}

func (g *Generator) commit(tid logrec.TxID) {
	run := g.txs[tid]
	if run.killed {
		return
	}
	run.commitIssued = true
	g.lm.Commit(tid, func() {
		run.durable = true
		g.committed.Inc()
		e2e := (g.eng.Now() - run.began).Seconds()
		g.endToEnd.Observe(e2e)
		if run.cross {
			g.crossCommitted.Inc()
			g.crossE2E.Observe(e2e)
		} else {
			g.localE2E.Observe(e2e)
		}
		for oid, lsn := range run.writes {
			if g.oracle[oid] < lsn {
				g.oracle[oid] = lsn
			}
			if g.held[oid] == tid {
				delete(g.held, oid)
			}
		}
	})
}

func (g *Generator) onKill(tid logrec.TxID) {
	run, ok := g.txs[tid]
	if !ok {
		return
	}
	run.killed = true
	g.killed.Inc()
	for oid := range run.writes {
		if g.held[oid] == tid {
			delete(g.held, oid)
		}
	}
}

// Stats snapshots the generator's counters.
func (g *Generator) Stats() Stats {
	per := make(map[string]uint64, len(g.perType))
	for k, v := range g.perType {
		per[k] = v
	}
	return Stats{
		Started:           g.started.Count(),
		Committed:         g.committed.Count(),
		Killed:            g.killed.Count(),
		PerType:           per,
		EndToEndMean:      g.endToEnd.Mean(),
		EndToEndP99:       g.endToEnd.Quantile(0.99),
		CrossStarted:      g.crossStarted.Count(),
		CrossCommitted:    g.crossCommitted.Count(),
		LocalEndToEndMean: g.localE2E.Mean(),
		LocalEndToEndP99:  g.localE2E.Quantile(0.99),
		CrossEndToEndMean: g.crossE2E.Mean(),
		CrossEndToEndP99:  g.crossE2E.Quantile(0.99),
	}
}

// MergeLatencies merges the generator's end-to-end latency samples into
// the given histograms (any may be nil to skip that slot). Quantiles of
// separate generators cannot be combined after the fact, so aggregators
// spanning several generators — the PDES binding runs one per logical
// process — merge the raw samples and compute global statistics once.
func (g *Generator) MergeLatencies(all, local, cross *metrics.Histogram) {
	if all != nil {
		all.Merge(&g.endToEnd)
	}
	if local != nil {
		local.Merge(&g.localE2E)
	}
	if cross != nil {
		cross.Merge(&g.crossE2E)
	}
}

// Oracle returns the latest durably committed LSN per object — ground
// truth for recovery verification. The map is live; callers must not
// mutate it.
func (g *Generator) Oracle() map[logrec.OID]logrec.LSN { return g.oracle }

// ActiveHeld reports how many objects are currently locked by active
// transactions (used by tests of the paper's unique-oid draw).
func (g *Generator) ActiveHeld() int { return len(g.held) }

// TxInfo describes one transaction's progress at the time of the call —
// crash-campaign harnesses use it to decide whether a transaction that
// recovery reports as a winner was legitimately commit-pending at the
// crash. The Writes map is live; callers must not mutate it.
type TxInfo struct {
	Known        bool
	CommitIssued bool // COMMIT record handed to the log manager
	Acked        bool // group-commit acknowledgement received (t4)
	Killed       bool
	Writes       map[logrec.OID]logrec.LSN
}

// TxInfo reports the progress of one transaction (zero value if unknown).
func (g *Generator) TxInfo(tid logrec.TxID) TxInfo {
	run, ok := g.txs[tid]
	if !ok {
		return TxInfo{}
	}
	return TxInfo{
		Known:        true,
		CommitIssued: run.commitIssued,
		Acked:        run.durable,
		Killed:       run.killed,
		Writes:       run.writes,
	}
}
