package fault

import (
	"fmt"
	"strings"

	"ellog/internal/harness"
	"ellog/internal/logrec"
	"ellog/internal/recovery"
	"ellog/internal/runner"
	"ellog/internal/sim"
	"ellog/internal/statedb"
	"ellog/internal/trace"
)

// PointKind distinguishes the two crash models the campaign sweeps.
type PointKind int

const (
	// PointClean crashes immediately after the K-th block-write completion
	// (and its synchronous effects: acknowledgements, flush enqueues). The
	// crash image holds only whole, checksum-valid blocks.
	PointClean PointKind = iota + 1
	// PointTorn crashes with the K-th issued block write still in flight
	// and tears it: only the first Frac of its bytes reach the image, the
	// rest keeps the block's previous contents (blockdev.TearOldestInFlight).
	PointTorn
)

func (k PointKind) String() string {
	switch k {
	case PointClean:
		return "clean"
	case PointTorn:
		return "torn"
	default:
		return fmt.Sprintf("PointKind(%d)", int(k))
	}
}

// Point is one crash point in a campaign sweep.
type Point struct {
	Index int
	Kind  PointKind
	K     int     // ordinal of the triggering event (1-based)
	Frac  float64 // torn prefix fraction (PointTorn only)
}

func (p Point) String() string {
	if p.Kind == PointTorn {
		return fmt.Sprintf("torn seal #%d frac %.2f", p.K, p.Frac)
	}
	return fmt.Sprintf("clean durable #%d", p.K)
}

// Failure describes one crash point where the recovery property did not
// hold.
type Failure struct {
	Point  Point
	Reason string
}

// CampaignConfig parameterizes a crash-point sweep. The base configuration
// must be fault-free (the campaign injects crashes, not I/O faults — the
// strict oracle property only holds when every issued write either
// completes untouched or is the one torn at the crash) and must not
// recirculate: recirculation rewrites a pending buffer into its own origin
// slot, where a torn write can destroy the only durable copies of records
// the crash image is supposed to retain.
type CampaignConfig struct {
	Base harness.Config
	// TornFracs are the mid-write tear boundaries swept per sealed block;
	// nil selects {0.3, 0.7}.
	TornFracs []float64
	// MaxPoints bounds the sweep: when the full point list is larger, every
	// ceil(total/MaxPoints)-th point is taken so the sample still spans the
	// whole run. 0 means sweep everything.
	MaxPoints int
	// Horizon is how far past the workload runtime each run may execute
	// before it is considered drained; 0 selects Runtime + 30 s.
	Horizon sim.Time
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.TornFracs == nil {
		c.TornFracs = []float64{0.3, 0.7}
	}
	if c.Horizon == 0 {
		c.Horizon = c.Base.Workload.Runtime + 30*sim.Second
	}
	return c
}

// Validate rejects configurations the campaign's oracle cannot reason
// about.
func (c CampaignConfig) Validate() error {
	if c.Base.LM.Recirculate {
		return fmt.Errorf("fault: campaign base must not recirculate (in-place pending rewrites break the torn-write guarantee)")
	}
	for _, f := range c.TornFracs {
		if f < 0 || f > 1 {
			return fmt.Errorf("fault: torn fraction %v outside [0, 1]", f)
		}
	}
	if c.MaxPoints < 0 {
		return fmt.Errorf("fault: negative MaxPoints")
	}
	return nil
}

// CampaignResult summarizes a sweep.
type CampaignResult struct {
	Seals    int // block writes issued by the reference run
	Durables int // block writes completed by the reference run
	Points   int // crash points actually swept (after sampling)
	Clean    int
	Torn     int

	TornDetected int // points where recovery flagged at least one torn block
	Salvaged     int // records salvaged from torn blocks across all points

	Failures []Failure
}

// Passed reports whether every swept point upheld the recovery property.
func (r CampaignResult) Passed() bool { return len(r.Failures) == 0 }

// String renders a one-screen summary.
func (r CampaignResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d points (%d clean, %d torn) over a run of %d seals / %d durables\n",
		r.Points, r.Clean, r.Torn, r.Seals, r.Durables)
	fmt.Fprintf(&b, "  torn blocks detected at %d points, %d records salvaged\n",
		r.TornDetected, r.Salvaged)
	if r.Passed() {
		b.WriteString("  PASS: recovered state matched the committed-transaction oracle at every point\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %d points violated the recovery property\n", len(r.Failures))
		for i, f := range r.Failures {
			if i == 10 {
				fmt.Fprintf(&b, "    ... and %d more\n", len(r.Failures)-10)
				break
			}
			fmt.Fprintf(&b, "    %v: %s\n", f.Point, f.Reason)
		}
	}
	return b.String()
}

// RunCampaign sweeps crash points over the base configuration: a reference
// run counts the block writes issued and completed, then every sampled
// point re-runs the identical simulation from scratch, stops it at the
// point's trigger, optionally tears the in-flight write, runs single-pass
// recovery on the crash image and verifies the recovered database against
// the workload's oracle.
//
// The verification contract per point:
//
//   - Every acknowledged commit's updates are recovered exactly (at their
//     latest acknowledged LSN or newer from a legitimate winner).
//   - At a clean point, recovery's winners are exactly the acknowledged
//     transactions — nothing resurrects, nothing is lost.
//   - At a torn point, a transaction may additionally win if and only if
//     its COMMIT was issued and survived in the torn block's salvaged
//     prefix; its writes then count as committed (records precede their
//     COMMIT in the log, so a salvaged COMMIT implies recoverable data).
//     A transaction whose COMMIT fell in the lost suffix was never
//     acknowledged and must recover as a loser.
//
// Points are independent simulations, so a pool parallelizes them; results
// are assembled in point order, making parallel and sequential campaigns
// byte-identical.
func RunCampaign(cfg CampaignConfig, pool *runner.Pool) (CampaignResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return CampaignResult{}, err
	}
	var res CampaignResult

	// Reference run: count seals (writes issued) and durables (writes
	// completed). Every point run replays the same seed, so ordinal K
	// identifies the same block write in every replay.
	ref, err := harness.Build(cfg.Base)
	if err != nil {
		return res, err
	}
	ref.Setup.LM.SetTracer(trace.Func(func(e trace.Event) {
		switch e.Kind {
		case trace.EvSeal:
			res.Seals++
		case trace.EvDurable:
			res.Durables++
		}
	}))
	ref.Setup.Eng.Run(cfg.Horizon)

	points := make([]Point, 0, res.Durables+res.Seals*len(cfg.TornFracs))
	for k := 1; k <= res.Durables; k++ {
		points = append(points, Point{Kind: PointClean, K: k})
	}
	for k := 1; k <= res.Seals; k++ {
		for _, f := range cfg.TornFracs {
			points = append(points, Point{Kind: PointTorn, K: k, Frac: f})
		}
	}
	if cfg.MaxPoints > 0 && len(points) > cfg.MaxPoints {
		stride := (len(points) + cfg.MaxPoints - 1) / cfg.MaxPoints
		sampled := points[:0]
		for i := 0; i < len(points); i += stride {
			sampled = append(sampled, points[i])
		}
		points = sampled
	}
	for i := range points {
		points[i].Index = i
	}

	type outcome struct {
		torn     int
		salvaged int
		reason   string // empty: property held
	}
	outcomes := make([]outcome, len(points))
	err = pool.ForEach(len(points), func(i int) error {
		return pool.Do(func() error {
			rres, verr, berr := runPoint(cfg, points[i], nil)
			if berr != nil {
				return berr
			}
			outcomes[i] = outcome{torn: rres.TornBlocks, salvaged: rres.SalvagedRecs}
			if verr != nil {
				outcomes[i].reason = verr.Error()
			}
			return nil
		})
	})
	if err != nil {
		return res, err
	}

	for i, o := range outcomes {
		res.Points++
		if points[i].Kind == PointTorn {
			res.Torn++
		} else {
			res.Clean++
		}
		if o.torn > 0 {
			res.TornDetected++
		}
		res.Salvaged += o.salvaged
		if o.reason != "" {
			res.Failures = append(res.Failures, Failure{Point: points[i], Reason: o.reason})
		}
	}
	return res, nil
}

// TracePoint replays one crash point exactly as the campaign would,
// streaming every trace event up to (and including) the crash trigger to
// sink. A campaign run keeps no traces — points are too numerous — so
// this is the diagnosis hook: rerun the one failing point and dump its
// full event stream for eltrace. The returned triple matches runPoint.
func TracePoint(cfg CampaignConfig, pt Point, sink trace.Sink) (recovery.Result, error, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return recovery.Result{}, nil, err
	}
	return runPoint(cfg, pt, sink)
}

// runPoint replays the base run, crashes it at the point, recovers, and
// verifies, forwarding events to sink when one is given. The returned
// error triple is (recovery result, property violation, infrastructure
// error).
func runPoint(cfg CampaignConfig, pt Point, sink trace.Sink) (recovery.Result, error, error) {
	live, err := harness.Build(cfg.Base)
	if err != nil {
		return recovery.Result{}, nil, err
	}
	trigger := trace.EvDurable
	if pt.Kind == PointTorn {
		trigger = trace.EvSeal
	}
	n := 0
	live.Setup.LM.SetTracer(trace.Func(func(e trace.Event) {
		if sink != nil {
			sink.Emit(e)
		}
		if e.Kind == trigger {
			n++
			if n == pt.K {
				live.Setup.Eng.Stop()
			}
		}
	}))
	live.Setup.Eng.Run(cfg.Horizon)
	if n < pt.K {
		return recovery.Result{}, nil, fmt.Errorf("fault: %v never reached (saw %d of %d events; replay diverged?)", pt, n, pt.K)
	}
	if pt.Kind == PointTorn {
		if _, ok := live.Setup.Dev.TearOldestInFlight(pt.Frac); !ok {
			return recovery.Result{}, nil, fmt.Errorf("fault: %v: no write in flight to tear", pt)
		}
	}
	recovered, rres, rerr := recovery.Recover(live.Setup.Dev, live.Setup.DB, 0)
	if rerr != nil {
		return rres, fmt.Errorf("recovery failed: %v", rerr), nil
	}
	return rres, verifyPoint(live, pt, rres, recovered), nil
}

// verifyPoint checks the recovered database against the workload oracle,
// applying the torn-point expected-loss rule for commit-pending winners.
func verifyPoint(live *harness.Live, pt Point, rres recovery.Result, recovered *statedb.DB) error {
	gen := live.Gen
	expected := make(map[logrec.OID]logrec.LSN, len(gen.Oracle()))
	for oid, lsn := range gen.Oracle() {
		expected[oid] = lsn
	}
	for _, tx := range rres.WinnerTxs {
		info := gen.TxInfo(tx)
		if info.Acked {
			continue
		}
		if pt.Kind == PointClean {
			return fmt.Errorf("clean crash: tx %d recovered as a winner without acknowledgement", tx)
		}
		if !info.Known || !info.CommitIssued || info.Killed {
			return fmt.Errorf("torn crash: tx %d recovered as a winner but never issued a COMMIT", tx)
		}
		// Commit-pending at the crash and its COMMIT survived in the torn
		// block's salvaged prefix: all its data records precede the COMMIT
		// in the log, so they are recoverable and the transaction
		// legitimately wins. Fold its writes into the expectation.
		for oid, lsn := range info.Writes {
			if expected[oid] < lsn {
				expected[oid] = lsn
			}
		}
	}
	return recovery.VerifyOracle(recovered, expected)
}
