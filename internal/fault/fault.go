// Package fault is the deterministic fault-injection and crash-campaign
// subsystem. It perturbs the simulated I/O substrate — the log device and
// the flush-disk array — with seeded, reproducible faults: transient write
// errors, silent corruption, latency inflation and per-drive stalls. The
// paper's model assumes a disciplined disk ("block writes are atomic",
// section 2.2); this package exists to check the reproduction's recovery
// story when that discipline is relaxed, without disturbing the fault-free
// model: every hook is nil or disabled by default, and a run with no plan
// attached is byte-for-byte identical to a build without this package.
//
// Two usage modes:
//
//   - Chaos: Attach a Plan built from a Config with non-zero probabilities
//     to a live setup; the run proceeds under fire and the manager's
//     retry/abandon machinery (core.EnableFaultRetries) keeps the
//     acknowledged-commit contract.
//   - Campaign: RunCampaign sweeps deterministic crash points over a
//     fault-free run — after every block-write completion, and mid-write at
//     torn boundaries — re-running recovery at each point and verifying the
//     recovered database against the workload's committed-transaction
//     oracle.
package fault

import (
	"fmt"
	"math/rand/v2"

	"ellog/internal/blockdev"
	"ellog/internal/core"
	"ellog/internal/metrics"
	"ellog/internal/sim"
	"ellog/internal/trace"
)

// Kind classifies injected faults (carried in trace.EvFault's N field).
type Kind int

const (
	// KindWriteFail: a block write returned a transient error.
	KindWriteFail Kind = iota + 1
	// KindCorrupt: a block write silently flipped a durable bit.
	KindCorrupt
	// KindSlow: a block write's latency was inflated.
	KindSlow
	// KindStall: a flush drive stalled before a service.
	KindStall
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KindWriteFail:
		return "write-fail"
	case KindCorrupt:
		return "corrupt"
	case KindSlow:
		return "slow"
	case KindStall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config parameterizes a fault plan. The zero value injects nothing.
// Probabilities are per opportunity: per block write for WriteFailProb,
// CorruptProb and SlowProb, per flush-drive service for StallProb.
type Config struct {
	Seed uint64

	WriteFailProb float64 // transient write error
	CorruptProb   float64 // silent single-bit corruption of the durable image
	SlowProb      float64 // latency inflation
	SlowMax       sim.Time
	StallProb     float64 // flush-drive stall before a service
	StallMax      sim.Time

	// Retry policy handed to core.EnableFaultRetries. Zero values select
	// the defaults (3 retries, 1 ms initial backoff, doubling).
	MaxRetries   int
	RetryBackoff sim.Time
}

// WithDefaults fills zero-valued policy fields.
func (c Config) WithDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = sim.Millisecond
	}
	if c.SlowMax == 0 {
		c.SlowMax = 15 * sim.Millisecond
	}
	if c.StallMax == 0 {
		c.StallMax = 25 * sim.Millisecond
	}
	return c
}

// Validate rejects out-of-range probabilities.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"WriteFailProb", c.WriteFailProb},
		{"CorruptProb", c.CorruptProb},
		{"SlowProb", c.SlowProb},
		{"StallProb", c.StallProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.MaxRetries < 0 || c.RetryBackoff < 0 || c.SlowMax < 0 || c.StallMax < 0 {
		return fmt.Errorf("fault: negative policy value")
	}
	return nil
}

// Active reports whether any fault has a non-zero probability.
func (c Config) Active() bool {
	return c.WriteFailProb > 0 || c.CorruptProb > 0 || c.SlowProb > 0 || c.StallProb > 0
}

// Stats counts injected faults.
type Stats struct {
	WriteFails  uint64
	Corruptions uint64
	Slowdowns   uint64
	Stalls      uint64
}

// Plan is a seeded fault injector: a deterministic function of its own
// PCG stream, independent of the simulation's random stream, so the same
// (workload seed, fault seed) pair replays the same faults at the same
// opportunities.
type Plan struct {
	eng  *sim.Engine
	cfg  Config
	rng  *rand.Rand
	sink trace.Sink

	writeFails, corruptions metrics.Counter
	slowdowns, stalls       metrics.Counter
}

// NewPlan builds a plan for the given engine (used only for timestamps on
// trace events) and validated config.
func NewPlan(eng *sim.Engine, cfg Config) (*Plan, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Plan{
		eng: eng,
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xda3e39cb94b95bdb)),
	}, nil
}

// SetTracer attaches a sink receiving trace.EvFault events; nil detaches.
func (p *Plan) SetTracer(s trace.Sink) { p.sink = s }

func (p *Plan) emit(k Kind, gen int) {
	if p.sink == nil {
		return
	}
	p.sink.Emit(trace.Event{At: p.eng.Now(), Kind: trace.EvFault, Gen: gen, N: int(k)})
}

// BlockWriteFault implements blockdev.Injector. Draw order is fixed
// (slow, fail, corrupt) so the random stream is consumed identically for
// a given config regardless of outcomes.
func (p *Plan) BlockWriteFault(gen, size int) blockdev.WriteFault {
	var f blockdev.WriteFault
	if p.cfg.SlowProb > 0 && p.rng.Float64() < p.cfg.SlowProb {
		f.Extra = sim.Time(1 + p.rng.Int64N(int64(p.cfg.SlowMax)))
		p.slowdowns.Inc()
		p.emit(KindSlow, gen)
	}
	if p.cfg.WriteFailProb > 0 && p.rng.Float64() < p.cfg.WriteFailProb {
		f.Fail = true
		p.writeFails.Inc()
		p.emit(KindWriteFail, gen)
		return f
	}
	if p.cfg.CorruptProb > 0 && p.rng.Float64() < p.cfg.CorruptProb {
		if size < 1 {
			size = 1
		}
		f.CorruptOff = p.rng.IntN(size)
		f.CorruptMask = 1 << p.rng.IntN(8)
		p.corruptions.Inc()
		p.emit(KindCorrupt, gen)
	}
	return f
}

// FlushStall is the flushdisk stall hook: extra time a drive spends
// stalled before its next service.
func (p *Plan) FlushStall(drive int) sim.Time {
	if p.cfg.StallProb > 0 && p.rng.Float64() < p.cfg.StallProb {
		p.stalls.Inc()
		p.emit(KindStall, -1)
		return sim.Time(1 + p.rng.Int64N(int64(p.cfg.StallMax)))
	}
	return 0
}

// Stats snapshots the injection counters.
func (p *Plan) Stats() Stats {
	return Stats{
		WriteFails:  p.writeFails.Count(),
		Corruptions: p.corruptions.Count(),
		Slowdowns:   p.slowdowns.Count(),
		Stalls:      p.stalls.Count(),
	}
}

// Attach wires a plan into a live setup: the log device gets the injector,
// the flush array gets the stall hook, and the manager's bounded
// retry-with-backoff path is armed. Returns the attached plan.
func Attach(s *core.Setup, cfg Config) (*Plan, error) {
	cfg = cfg.WithDefaults()
	p, err := NewPlan(s.Eng, cfg)
	if err != nil {
		return nil, err
	}
	s.Dev.SetInjector(p)
	s.Flush.SetStall(p.FlushStall)
	s.LM.EnableFaultRetries(cfg.MaxRetries, cfg.RetryBackoff)
	return p, nil
}
