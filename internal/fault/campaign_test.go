package fault

import (
	"reflect"
	"testing"

	"ellog/internal/runner"
	"ellog/internal/trace"
)

func TestCampaignRejectsRecirculation(t *testing.T) {
	cfg := CampaignConfig{Base: campaignBase(1)}
	cfg.Base.LM.Recirculate = true
	if _, err := RunCampaign(cfg, nil); err == nil {
		t.Fatal("recirculating base accepted")
	}
}

func TestCampaignRejectsBadFracs(t *testing.T) {
	cfg := CampaignConfig{Base: campaignBase(1), TornFracs: []float64{1.5}}
	if _, err := RunCampaign(cfg, nil); err == nil {
		t.Fatal("torn fraction > 1 accepted")
	}
}

// The tentpole property: at every crash point — after each block-write
// completion and at torn boundaries inside each issued write — single-pass
// recovery reconstructs exactly the acknowledged transactions (plus, at
// torn points, commit-pending transactions whose COMMIT survived the
// salvaged prefix).
func TestCampaignPropertyHolds(t *testing.T) {
	cfg := CampaignConfig{Base: campaignBase(23), TornFracs: []float64{0.25, 0.6, 1}}
	res, err := RunCampaign(cfg, runner.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seals == 0 || res.Durables == 0 {
		t.Fatalf("reference run wrote nothing: %+v", res)
	}
	if res.Points != res.Durables+3*res.Seals {
		t.Fatalf("swept %d points, want %d clean + %d torn", res.Points, res.Durables, 3*res.Seals)
	}
	if res.TornDetected == 0 {
		t.Fatal("no torn block was ever detected; the checksum path was not exercised")
	}
	if !res.Passed() {
		t.Fatalf("recovery property violated:\n%v", res)
	}
}

// A parallel campaign must be byte-identical to a sequential one: the pool
// only schedules, it never reorders or perturbs results.
func TestCampaignParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps; skipped in -short")
	}
	cfg := CampaignConfig{Base: campaignBase(29), MaxPoints: 40}
	seq, err := RunCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCampaign(cfg, runner.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel and sequential campaigns diverged:\n%+v\nvs\n%+v", seq, par)
	}
}

// TracePoint replays one point with a sink attached: the sink must see
// the event stream up to the crash, and the verdict must match the
// campaign's own run of the same point.
func TestTracePointStreamsEvents(t *testing.T) {
	cfg := CampaignConfig{Base: campaignBase(23)}
	var got []trace.Event
	sink := trace.Func(func(e trace.Event) { got = append(got, e) })
	rres, verr, berr := TracePoint(cfg, Point{Kind: PointClean, K: 3}, sink)
	if berr != nil {
		t.Fatal(berr)
	}
	if verr != nil {
		t.Fatalf("clean point 3 violated the property: %v", verr)
	}
	if rres.BlocksRead == 0 {
		t.Fatal("recovery read nothing")
	}
	durables, lastDur := 0, -1
	for i, e := range got {
		if e.Kind == trace.EvDurable {
			durables++
			lastDur = i
		}
	}
	if durables != 3 {
		t.Fatalf("sink saw %d durables, want exactly 3 (crash at the 3rd)", durables)
	}
	// Stop() fires inside the 3rd durable's dispatch, so anything after it
	// is that event's synchronous effects (acks) at the same instant.
	for _, e := range got[lastDur:] {
		if e.At != got[lastDur].At {
			t.Fatalf("event %v dispatched after the crash trigger", e)
		}
	}
}

// MaxPoints samples the sweep but still spans it: the last sampled point
// must come from the tail of the full list.
func TestCampaignMaxPointsSpansRun(t *testing.T) {
	cfg := CampaignConfig{Base: campaignBase(31), MaxPoints: 10}
	res, err := RunCampaign(cfg, runner.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Points == 0 || res.Points > 10+1 {
		t.Fatalf("sampled %d points, want <= ~10", res.Points)
	}
	if res.Clean == 0 || res.Torn == 0 {
		t.Fatalf("sampling dropped a whole point kind: clean=%d torn=%d", res.Clean, res.Torn)
	}
	if !res.Passed() {
		t.Fatalf("sampled campaign failed:\n%v", res)
	}
}
