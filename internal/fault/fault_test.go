package fault

import (
	"testing"

	"ellog/internal/blockdev"
	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/recovery"
	"ellog/internal/sim"
	"ellog/internal/trace"
	"ellog/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	good := Config{WriteFailProb: 0.5, CorruptProb: 1, StallProb: 0}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{WriteFailProb: -0.1},
		{CorruptProb: 1.5},
		{SlowProb: 2},
		{StallProb: -1},
		{MaxRetries: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigDefaultsAndActive(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.MaxRetries != 3 || c.RetryBackoff != sim.Millisecond {
		t.Fatalf("retry defaults wrong: %+v", c)
	}
	if c.Active() {
		t.Fatal("zero config reported active")
	}
	if !(Config{StallProb: 0.01}).Active() {
		t.Fatal("stall-only config reported inactive")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindWriteFail, KindCorrupt, KindSlow, KindStall} {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Fatalf("kind %d has no name: %q", k, s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind not reported as such")
	}
}

// Same seed, same opportunity sequence => identical faults; a different
// seed diverges.
func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, WriteFailProb: 0.2, CorruptProb: 0.2, SlowProb: 0.2, StallProb: 0.3}
	mk := func(seed uint64) ([]blockdev.WriteFault, []sim.Time) {
		c := cfg
		c.Seed = seed
		p, err := NewPlan(sim.NewEngine(1, 2), c)
		if err != nil {
			t.Fatal(err)
		}
		var fs []blockdev.WriteFault
		var ss []sim.Time
		for i := 0; i < 200; i++ {
			fs = append(fs, p.BlockWriteFault(i%3, 2000))
			ss = append(ss, p.FlushStall(i%10))
		}
		return fs, ss
	}
	f1, s1 := mk(42)
	f2, s2 := mk(42)
	f3, _ := mk(43)
	same, diverged := true, false
	for i := range f1 {
		if f1[i] != f2[i] || s1[i] != s2[i] {
			same = false
		}
		if f1[i] != f3[i] {
			diverged = true
		}
	}
	if !same {
		t.Fatal("same seed produced different fault sequences")
	}
	if !diverged {
		t.Fatal("different seeds produced identical fault sequences")
	}
	injected := false
	for _, f := range f1 {
		if f.Fail || f.Extra > 0 || f.CorruptMask != 0 {
			injected = true
		}
	}
	if !injected {
		t.Fatal("plan with 20% probabilities injected nothing in 200 draws")
	}
}

// chaosBase is a heavy-enough workload (~150 block writes) that fault
// probabilities of a few percent reliably fire.
func chaosBase(seed uint64) harness.Config {
	return harness.Config{
		Seed: seed,
		LM: core.Params{
			Mode:        core.ModeEphemeral,
			GenSizes:    []int{10, 10},
			Recirculate: false,
		},
		Flush: core.FlushConfig{Drives: 2, Transfer: 5 * sim.Millisecond, NumObjects: 1000},
		Workload: workload.Config{
			Mix:         workload.Mix{{Name: "t", Prob: 1, Lifetime: 300 * sim.Millisecond, NumRecords: 2, RecordSize: 400}},
			ArrivalRate: 100,
			Runtime:     4 * sim.Second,
			NumObjects:  1000,
		},
	}
}

// campaignBase is small (a dozen-odd block writes) so exhaustive crash-point
// sweeps stay fast.
func campaignBase(seed uint64) harness.Config {
	cfg := chaosBase(seed)
	cfg.Workload.ArrivalRate = 40
	cfg.Workload.Runtime = 2 * sim.Second
	cfg.Workload.Mix = workload.Mix{{Name: "t", Prob: 1, Lifetime: 300 * sim.Millisecond, NumRecords: 2, RecordSize: 100}}
	return cfg
}

// A chaos run under transient write failures completes, injects and
// retries faults, keeps the manager's invariants, and — once drained — the
// crash image still recovers exactly the acknowledged commits: retry
// windows have closed, abandoned blocks' committed updates were force
// flushed, so the strict oracle holds again.
func TestChaosRunWriteFailuresKeepAckedCommits(t *testing.T) {
	live, err := harness.Build(chaosBase(7))
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(4096)
	live.Setup.LM.SetTracer(ring)
	plan, err := Attach(live.Setup, Config{Seed: 3, WriteFailProb: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	plan.SetTracer(ring)
	live.Setup.Eng.Run(time30())

	ps := plan.Stats()
	if ps.WriteFails == 0 {
		t.Fatal("25% write-failure chaos injected nothing")
	}
	ls := live.Setup.LM.Stats()
	if ls.WriteErrors != ps.WriteFails {
		t.Fatalf("manager saw %d write errors, plan injected %d", ls.WriteErrors, ps.WriteFails)
	}
	if ls.WriteRetries == 0 {
		t.Fatal("no retries despite write failures")
	}
	if ring.Count(trace.EvFault) != ps.WriteFails {
		t.Fatalf("EvFault count %d != injected %d", ring.Count(trace.EvFault), ps.WriteFails)
	}
	if ring.Count(trace.EvRetry) != ls.WriteRetries {
		t.Fatalf("EvRetry count %d != retries %d", ring.Count(trace.EvRetry), ls.WriteRetries)
	}
	if err := live.Setup.LM.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after chaos: %v", err)
	}
	recovered, _, err := recovery.Recover(live.Setup.Dev, live.Setup.DB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if live.Gen.Stats().Committed == 0 {
		t.Fatal("no transaction survived the chaos run; test has no power")
	}
	if err := recovery.VerifyOracle(recovered, live.Gen.Oracle()); err != nil {
		t.Fatalf("acked commit lost under write-failure chaos: %v", err)
	}
}

// Chaos with every fault kind at once: the run completes without panicking
// or violating manager invariants, and all fault kinds actually fire.
func TestChaosRunAllFaultKinds(t *testing.T) {
	live, err := harness.Build(chaosBase(11))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Attach(live.Setup, Config{
		Seed: 5, WriteFailProb: 0.1, CorruptProb: 0.1, SlowProb: 0.2, StallProb: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	live.Setup.Eng.Run(time30())
	ps := plan.Stats()
	if ps.WriteFails == 0 || ps.Corruptions == 0 || ps.Slowdowns == 0 || ps.Stalls == 0 {
		t.Fatalf("not all fault kinds fired: %+v", ps)
	}
	if err := live.Setup.LM.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
	// Corruption may legitimately discard suffixes of durable blocks, so no
	// oracle check here — recovery must merely survive the corrupt image.
	if _, _, err := recovery.Recover(live.Setup.Dev, live.Setup.DB, 0); err != nil {
		t.Fatalf("recovery failed on corrupt image: %v", err)
	}
}

// An attached-but-inert plan (all probabilities zero) leaves the run
// byte-identical to one with no plan at all.
func TestInertPlanIsByteIdentical(t *testing.T) {
	run := func(attach bool) (core.Stats, workload.Stats) {
		live, err := harness.Build(chaosBase(19))
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			if _, err := Attach(live.Setup, Config{Seed: 99}); err != nil {
				t.Fatal(err)
			}
		}
		live.Setup.Eng.Run(time30())
		return live.Setup.LM.Stats(), live.Gen.Stats()
	}
	al, aw := run(false)
	bl, bw := run(true)
	if al.Commits != bl.Commits || al.TotalWrites != bl.TotalWrites ||
		al.Garbage != bl.Garbage || al.Flush.Flushes != bl.Flush.Flushes ||
		aw.Started != bw.Started || aw.Committed != bw.Committed ||
		aw.EndToEndMean != bw.EndToEndMean {
		t.Fatalf("inert plan diverged:\n%v\nvs\n%v", al, bl)
	}
}

func time30() sim.Time { return 30 * sim.Second }
