package sim

import "math/rand/v2"

// Clock is the scheduling surface model components run on: read the
// current time, schedule a callback at an absolute time, or after a
// delay. *Engine satisfies it natively — simulation mode is the zero-cost
// default — and internal/realtime.Loop satisfies it over the wall clock,
// which is how the same logging-manager core binds to real files without
// touching the determinism contract (the wall-clock implementation lives
// in a package the ellint ruleset exempts; everything importing only
// Clock stays under the module-wide wallclock rule).
//
// Implementations are single-threaded by contract, exactly like Engine:
// all calls happen on the loop goroutine, handlers run on it too, and
// EventIDs follow Engine's semantics (nonzero, unique per schedule).
type Clock interface {
	Now() Time
	At(t Time, fn Handler) EventID
	After(d Time, fn Handler) EventID
}

// Source extends Clock with the run's seeded random stream. The workload
// generator draws through it; in simulation mode that is the engine's PCG
// (one stream per engine, one per LP under PDES), in real mode a stream
// seeded from the run configuration so real runs are replayable in their
// inputs even though their timing is not.
type Source interface {
	Clock
	Rand() *rand.Rand
}

var (
	_ Clock  = (*Engine)(nil)
	_ Source = (*Engine)(nil)
)
