package sim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestCancelledIDNeverFiresAfterRecycle is the arena's central safety
// property: once an EventID is cancelled (or has fired), it stays dead —
// even after its slab slot is recycled by later events. A stale id must
// neither cancel nor otherwise disturb the slot's new occupant; the
// generation tag is what guarantees it.
func TestCancelledIDNeverFiresAfterRecycle(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
		e := NewEngine(seed, 7)
		firedByID := make(map[EventID]int)
		dead := make(map[EventID]bool) // cancelled or already fired
		var live []EventID

		schedule := func() {
			var id EventID
			id = e.At(e.Now()+Time(rng.IntN(50)), func() { firedByID[id]++ })
			if dead[id] {
				t.Fatalf("seed %d: recycled slot reissued a dead EventID %d", seed, id)
			}
			firedByID[id] = 0
			live = append(live, id)
		}

		for i := 0; i < 60; i++ {
			schedule()
		}
		for round := 0; round < 8; round++ {
			// Cancel a random half of the live set; record them dead.
			for _, id := range live {
				if rng.IntN(2) == 0 {
					if !e.Cancel(id) {
						return false // live id must be cancellable
					}
					dead[id] = true
				}
			}
			// Re-cancelling any dead id must be a miss, even though many of
			// their slots have been recycled by now.
			for id := range dead {
				if e.Cancel(id) {
					return false
				}
			}
			// Fire everything still pending; survivors become dead too.
			e.Run(e.Now() + 100)
			for _, id := range live {
				if !dead[id] {
					if firedByID[id] != 1 {
						return false // a surviving event fires exactly once
					}
					dead[id] = true
				}
			}
			live = live[:0]
			// Recycle the freed slots with a fresh batch.
			for i := 0; i < 60; i++ {
				schedule()
			}
		}
		e.Run(e.Now() + 1000)
		// Final ledger: every cancelled id fired zero times, every other
		// exactly once.
		for id, n := range firedByID {
			want := 1
			if n != want && !dead[id] {
				return false
			}
		}
		for id := range dead {
			if firedByID[id] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestStaleIDDoesNotCancelNewOccupant pins the exact aliasing scenario the
// generation tag exists for: cancel an event, let its slot be reissued, and
// check the stale id cannot kill the new occupant.
func TestStaleIDDoesNotCancelNewOccupant(t *testing.T) {
	e := NewEngine(1, 2)
	stale := e.At(10, func() { t.Error("cancelled event fired") })
	if !e.Cancel(stale) {
		t.Fatal("Cancel of a pending event returned false")
	}
	// The free list is LIFO, so the very next At reuses the slot.
	fired := false
	fresh := e.At(10, func() { fired = true })
	if fresh == stale {
		t.Fatal("recycled slot reissued the same EventID")
	}
	if e.Cancel(stale) {
		t.Fatal("stale id cancelled the slot's new occupant")
	}
	e.Run(100)
	if !fired {
		t.Fatal("new occupant did not fire")
	}
	if e.Cancel(fresh) {
		t.Fatal("Cancel returned true for a fired event")
	}
}

// TestScheduleFireLoopZeroAllocs is the allocation regression gate for the
// arena: once the slab has grown to the workload's peak pending count, the
// schedule→fire→cancel loop must not allocate at all.
func TestScheduleFireLoopZeroAllocs(t *testing.T) {
	e := NewEngine(1, 2)
	nop := func() {}
	// Warm the arena past its steady-state size.
	for i := 0; i < 512; i++ {
		e.After(Time(i%64), nop)
	}
	e.Run(e.Now() + 1000)

	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			e.After(Time(i%8), nop)
		}
		id := e.After(5, nop)
		if !e.Cancel(id) {
			t.Fatal("Cancel of pending event failed")
		}
		e.Run(e.Now() + 16)
	})
	if avg != 0 {
		t.Fatalf("schedule/fire/cancel loop allocates %v allocs/run, want 0", avg)
	}
}

// BenchmarkEngineScheduleFireCancel exercises the full arena cycle
// including cancellation, for -benchmem tracking in CI.
func BenchmarkEngineScheduleFireCancel(b *testing.B) {
	e := NewEngine(1, 2)
	nop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keep := e.After(Time(i%100), nop)
		drop := e.After(Time(i%100)+1, nop)
		e.Cancel(drop)
		_ = keep
		if i%64 == 63 {
			e.Run(e.Now() + 100)
		}
	}
	e.Run(e.Now() + 1000)
}
