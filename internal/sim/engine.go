package sim

import (
	"fmt"
	"math/rand/v2"
)

// Handler is a callback invoked when an event fires. The current simulated
// time is available through Engine.Now.
type Handler func()

// EventID identifies a scheduled event so that it can be cancelled.
// The zero EventID is never issued.
type EventID uint64

type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among simultaneous events, for determinism
	id   EventID
	fn   Handler
	heap int // index in the heap, -1 when popped/cancelled
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; the whole simulation is single-threaded, exactly like the
// paper's C simulator, which makes runs bit-for-bit reproducible for a given
// seed.
type Engine struct {
	now     Time
	events  []*event
	byID    map[EventID]*event
	nextSeq uint64
	nextID  EventID
	rng     *rand.Rand
	fired   uint64
	stopped bool
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// number generator is seeded with the two given words (PCG).
func NewEngine(seed1, seed2 uint64) *Engine {
	return &Engine{
		byID: make(map[EventID]*event),
		rng:  rand.New(rand.NewPCG(seed1, seed2)),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random number generator.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: the model must never travel backwards.
func (e *Engine) At(t Time, fn Handler) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.nextSeq++
	e.nextID++
	ev := &event{at: t, seq: e.nextSeq, id: e.nextID, fn: fn}
	e.push(ev)
	e.byID[ev.id] = ev
	return ev.id
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false if it already fired or was cancelled before).
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.byID[id]
	if !ok {
		return false
	}
	delete(e.byID, ev.id)
	e.remove(ev)
	return true
}

// Stop makes Run return after the event currently being dispatched.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in timestamp order (FIFO among equal timestamps)
// until the queue empties or the next event would fire strictly after the
// until time. The clock is left at the later of the last fired event and
// until — unless Stop() fired mid-run, in which case the clock stays at
// the stopping event's time so crash-injection callers read a truthful
// crash time instead of the run's nominal horizon.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			break
		}
		e.pop()
		delete(e.byID, next.id)
		e.now = next.at
		e.fired++
		next.fn()
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
}

// Step dispatches exactly one event, if any is pending, and reports whether
// one fired. Useful in tests that need to observe intermediate states.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	next := e.events[0]
	e.pop()
	delete(e.byID, next.id)
	e.now = next.at
	e.fired++
	next.fn()
	return true
}

// --- binary heap ordered by (at, seq) ---------------------------------

func (e *Engine) less(i, j int) bool {
	a, b := e.events[i], e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	e.events[i], e.events[j] = e.events[j], e.events[i]
	e.events[i].heap = i
	e.events[j].heap = j
}

func (e *Engine) push(ev *event) {
	ev.heap = len(e.events)
	e.events = append(e.events, ev)
	e.up(ev.heap)
}

func (e *Engine) pop() *event {
	ev := e.events[0]
	last := len(e.events) - 1
	e.swap(0, last)
	e.events = e.events[:last]
	if last > 0 {
		e.down(0)
	}
	ev.heap = -1
	return ev
}

func (e *Engine) remove(ev *event) {
	i := ev.heap
	if i < 0 {
		return
	}
	last := len(e.events) - 1
	e.swap(i, last)
	e.events = e.events[:last]
	if i < last {
		e.down(i)
		e.up(i)
	}
	ev.heap = -1
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) down(i int) {
	n := len(e.events)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.less(l, small) {
			small = l
		}
		if r < n && e.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		e.swap(i, small)
		i = small
	}
}
