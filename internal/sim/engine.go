package sim

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Handler is a callback invoked when an event fires. The current simulated
// time is available through Engine.Now.
type Handler func()

// EventID identifies a scheduled event so that it can be cancelled.
// The zero EventID is never issued.
//
// An EventID packs the event's slab index (low 32 bits, offset by one so
// index 0 still yields a nonzero id) with the slot's generation tag (high
// 32 bits). A slot's generation is bumped every time the slot is reissued,
// so an id kept past its event's firing or cancellation can never alias a
// later event that happens to reuse the same slot: Cancel on a stale id is
// a constant-time miss, not a misfire. (A single slot would have to be
// reused 2^32 times between a Cancel and its original schedule for a tag
// to wrap into a false positive — beyond any simulation this repo runs.)
type EventID uint64

// event is one slab slot. Slots are reused through a LIFO free list rather
// than a sync.Pool: the pool's per-P caches would make slot assignment — and
// with it EventID values — scheduling-dependent, while the free list keeps
// the engine bit-for-bit deterministic for a given seed.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among simultaneous events, for determinism
	fn   Handler
	gen  uint32 // generation tag; bumped on every (re)allocation of the slot
	heap int32  // index in the heap, -1 when the slot is not pending
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; the whole simulation is single-threaded, exactly like the
// paper's C simulator, which makes runs bit-for-bit reproducible for a given
// seed.
//
// Events live in an index-based arena: the slab holds the event records,
// the heap orders slab indices by (time, seq), and the free list recycles
// retired slots. Steady-state scheduling therefore performs zero heap
// allocations — the only growth is the slab and heap backing arrays, which
// amortize to nothing once the engine has seen its peak pending-event count.
type Engine struct {
	now     Time
	slab    []event
	heap    []int32 // slab indices ordered by (at, seq)
	free    []int32 // retired slot indices, reused LIFO
	nextSeq uint64
	rng     *rand.Rand
	fired   uint64
	stopped bool
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// number generator is seeded with the two given words (PCG).
func NewEngine(seed1, seed2 uint64) *Engine {
	return &Engine{rng: rand.New(rand.NewPCG(seed1, seed2))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random number generator.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// ArenaSlots reports the slab's current slot count — the peak number of
// simultaneously pending events seen so far. Exposed for the perf harness
// and allocation tests.
func (e *Engine) ArenaSlots() int { return len(e.slab) }

// alloc takes a slot off the free list (or grows the slab), stamps a fresh
// generation, and returns its index.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	if len(e.slab) >= math.MaxUint32 {
		panic("sim: event arena exhausted")
	}
	e.slab = append(e.slab, event{})
	return int32(len(e.slab) - 1)
}

// release retires a slot: it drops the handler reference (so the arena
// never pins caller closures) and pushes the index for LIFO reuse. The
// generation tag is left in place — lookup rejects retired slots via
// heap == -1 until the slot is reissued, at which point the bumped tag
// rejects all ids from the slot's previous life.
func (e *Engine) release(idx int32) {
	e.slab[idx].fn = nil
	e.free = append(e.free, idx)
}

// lookup resolves an EventID to its slab index, or -1 if the event already
// fired, was cancelled, or the id is from a recycled slot's earlier life.
func (e *Engine) lookup(id EventID) int32 {
	slot := int64(uint32(id)) - 1
	if slot < 0 || slot >= int64(len(e.slab)) {
		return -1
	}
	ev := &e.slab[slot]
	if ev.gen != uint32(id>>32) || ev.heap < 0 {
		return -1
	}
	return int32(slot)
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: the model must never travel backwards.
func (e *Engine) At(t Time, fn Handler) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.alloc()
	ev := &e.slab[idx]
	e.nextSeq++
	ev.at = t
	ev.seq = e.nextSeq
	ev.fn = fn
	ev.gen++
	ev.heap = int32(len(e.heap))
	e.heap = append(e.heap, idx)
	e.up(int(ev.heap))
	return EventID(uint64(ev.gen)<<32 | uint64(idx+1))
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false if it already fired or was cancelled before).
func (e *Engine) Cancel(id EventID) bool {
	idx := e.lookup(id)
	if idx < 0 {
		return false
	}
	e.removeHeap(idx)
	e.release(idx)
	return true
}

// Stop makes Run return after the event currently being dispatched.
func (e *Engine) Stop() { e.stopped = true }

// dispatch pops the minimum event, retires its slot, advances the clock,
// and invokes the handler. The slot is retired before the handler runs, so
// a handler cancelling its own id sees false, and a slot reused by a
// handler's own scheduling gets a fresh generation tag.
func (e *Engine) dispatch() {
	idx := e.heap[0]
	at, fn := e.slab[idx].at, e.slab[idx].fn
	e.popHeap()
	e.release(idx)
	e.now = at
	e.fired++
	fn()
}

// Run dispatches events in timestamp order (FIFO among equal timestamps)
// until the queue empties or the next event would fire strictly after the
// until time. The clock is left at the later of the last fired event and
// until — unless Stop() fired mid-run, in which case the clock stays at
// the stopping event's time so crash-injection callers read a truthful
// crash time instead of the run's nominal horizon.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.slab[e.heap[0]].at > until {
			break
		}
		e.dispatch()
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
}

// NextAt reports the timestamp of the earliest pending event, if any. The
// parallel engine's window loop uses it to skip empty time buckets.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slab[e.heap[0]].at, true
}

// Step dispatches exactly one event, if any is pending, and reports whether
// one fired. Useful in tests that need to observe intermediate states.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	e.dispatch()
	return true
}

// --- binary heap of slab indices ordered by (at, seq) -----------------

func (e *Engine) less(i, j int) bool {
	a, b := &e.slab[e.heap[i]], &e.slab[e.heap[j]]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.slab[e.heap[i]].heap = int32(i)
	e.slab[e.heap[j]].heap = int32(j)
}

// popHeap removes the minimum element and marks its slot off-heap.
func (e *Engine) popHeap() {
	idx := e.heap[0]
	last := len(e.heap) - 1
	e.swap(0, last)
	e.heap = e.heap[:last]
	if last > 0 {
		e.down(0)
	}
	e.slab[idx].heap = -1
}

// removeHeap deletes an arbitrary pending slot from the heap.
func (e *Engine) removeHeap(idx int32) {
	i := int(e.slab[idx].heap)
	if i < 0 {
		return
	}
	last := len(e.heap) - 1
	e.swap(i, last)
	e.heap = e.heap[:last]
	if i < last {
		e.down(i)
		e.up(i)
	}
	e.slab[idx].heap = -1
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.less(l, small) {
			small = l
		}
		if r < n && e.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		e.swap(i, small)
		i = small
	}
}
