package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestParallelEngineConstruction covers the constructor's contract checks.
func TestParallelEngineConstruction(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero LPs", func() { NewParallelEngine(1, 2, 0, Millisecond, 1) })
	mustPanic("zero lookahead", func() { NewParallelEngine(1, 2, 2, 0, 1) })
	mustPanic("negative lookahead", func() { NewParallelEngine(1, 2, 2, -Millisecond, 1) })

	pe := NewParallelEngine(1, 2, 4, Millisecond, 0) // workers clamp to 1
	if pe.Workers() != 1 {
		t.Fatalf("workers = %d, want 1", pe.Workers())
	}
	if pe.NumLPs() != 4 {
		t.Fatalf("LPs = %d, want 4", pe.NumLPs())
	}
}

// TestSendContract covers the conservative guarantee's enforcement: a
// cross-LP send below lookahead, or to a nonexistent LP, is a model bug.
func TestSendContract(t *testing.T) {
	pe := NewParallelEngine(1, 2, 2, 10*Millisecond, 1)
	lp := pe.LP(0)
	for name, fn := range map[string]func(){
		"below lookahead": func() { lp.Send(1, 9*Millisecond, func() {}) },
		"negative dst":    func() { lp.Send(-1, 10*Millisecond, func() {}) },
		"dst overflow":    func() { lp.Send(2, 10*Millisecond, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	// Exactly lookahead is legal — the boundary case.
	lp.Send(1, 10*Millisecond, func() {})
}

// TestSingleLPReducesToSequentialEngine is the reduction theorem at the
// engine level: a 1-LP parallel engine, whatever the worker setting, is
// bit-for-bit the plain Engine with the same seeds — same RNG stream, same
// dispatch order, same clock positions.
func TestSingleLPReducesToSequentialEngine(t *testing.T) {
	type record struct {
		At   Time
		Tag  int
		Rand uint64
	}
	run := func(schedule func(at Time, fn Handler), after func(d Time, fn Handler), rnd func() uint64, runTo func(Time), now func() Time) []record {
		var log []record
		for i := 0; i < 20; i++ {
			i := i
			at := Time(i * 700)
			schedule(at, func() {
				log = append(log, record{At: now(), Tag: i, Rand: rnd()})
				if i%3 == 0 {
					after(Time(100+i), func() {
						log = append(log, record{At: now(), Tag: 1000 + i, Rand: rnd()})
					})
				}
			})
		}
		runTo(20 * Millisecond)
		return log
	}

	seq := NewEngine(7, 11)
	seqLog := run(func(at Time, fn Handler) { seq.At(at, fn) },
		func(d Time, fn Handler) { seq.After(d, fn) },
		seq.Rand().Uint64, seq.Run, seq.Now)

	pe := NewParallelEngine(7, 11, 1, 3*Millisecond, 4)
	lp := pe.LP(0)
	parLog := run(func(at Time, fn Handler) { lp.At(at, fn) },
		func(d Time, fn Handler) { lp.After(d, fn) },
		lp.Rand().Uint64, pe.Run, lp.Now)

	if !reflect.DeepEqual(seqLog, parLog) {
		t.Fatalf("single-LP parallel run diverged from the sequential engine:\nseq: %v\npar: %v", seqLog, parLog)
	}
	if seq.Now() != pe.LP(0).Now() {
		t.Fatalf("clocks diverged: seq %v, parallel %v", seq.Now(), pe.LP(0).Now())
	}
	if seq.Fired() != pe.Fired() {
		t.Fatalf("fired %d vs %d", seq.Fired(), pe.Fired())
	}
}

// TestBucketBoundaryEvent pins down the window semantics the merge rule
// depends on: an event scheduled exactly at a bucket boundary k*L belongs
// to bucket k, and a cross-LP event sent with exactly lookahead delay from
// a bucket's first instant lands at the next boundary — delivered at the
// barrier before that bucket runs, never late ("zero-lookahead at a bucket
// boundary" is the degenerate case conservative sync must survive).
func TestBucketBoundaryEvent(t *testing.T) {
	const L = 10 * Millisecond
	pe := NewParallelEngine(1, 2, 2, L, 1)
	var order []string
	// LP 0, at the first instant of bucket 0, sends with exactly lookahead
	// delay: the event fires at time L — the first instant of bucket 1.
	pe.LP(0).At(0, func() {
		pe.LP(0).Send(1, L, func() { order = append(order, fmt.Sprintf("xlp@%v", pe.LP(1).Now())) })
	})
	// A local event on LP 1 already sitting exactly at the boundary.
	pe.LP(1).At(L, func() { order = append(order, fmt.Sprintf("local@%v", pe.LP(1).Now())) })
	pe.Run(2 * L)
	// Both fire at L. The local event was scheduled before the barrier
	// delivery, so its sequence number is lower: local first, then the
	// delivered cross-LP event.
	want := []string{"local@10ms", "xlp@10ms"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("boundary order = %v, want %v", order, want)
	}
}

// TestSimultaneousCrossLPEventsMergeDeterministically is the merge rule
// itself: cross-LP events with equal timestamps dispatch by source LP
// index first, then send sequence within the source — regardless of which
// order the sending LPs happened to run in.
func TestSimultaneousCrossLPEventsMergeDeterministically(t *testing.T) {
	const L = 5 * Millisecond
	for _, workers := range []int{1, 2, 4} {
		pe := NewParallelEngine(1, 2, 4, L, workers)
		var order []string
		record := func(tag string) func() {
			return func() { order = append(order, tag) }
		}
		// LPs 2, 1 and 0 all send events firing at the same instant 2*L
		// into LP 3. LP 2 sends two (seq order must hold within it), and
		// the sends are issued at different times inside bucket 0.
		pe.LP(2).At(0, func() {
			pe.LP(2).Send(3, 2*L, record("lp2-first"))
			pe.LP(2).Send(3, 2*L, record("lp2-second"))
		})
		pe.LP(1).At(2*Millisecond, func() {
			pe.LP(1).Send(3, 2*L-2*Millisecond, record("lp1"))
		})
		pe.LP(0).At(4*Millisecond, func() {
			pe.LP(0).Send(3, 2*L-4*Millisecond, record("lp0"))
		})
		pe.Run(3 * L)
		want := []string{"lp0", "lp1", "lp2-first", "lp2-second"}
		if !reflect.DeepEqual(order, want) {
			t.Fatalf("workers=%d: merge order = %v, want %v", workers, order, want)
		}
	}
}

// TestWorkerCountInvariance runs a communicating 8-LP token-ring model —
// every hop a cross-LP send, every LP consuming its own RNG — under
// several worker counts and demands identical traces. This is the PDES
// determinism contract in miniature; the full-model version lives in
// internal/multilog.
func TestWorkerCountInvariance(t *testing.T) {
	const L = Millisecond
	type hop struct {
		LP   int
		At   Time
		Draw uint64
	}
	runRing := func(workers int) ([]hop, uint64, uint64) {
		pe := NewParallelEngine(42, 43, 8, L, workers)
		// Handlers run on worker goroutines, so the trace is collected
		// per-LP (each slice touched only by its own LP) and merged in
		// index order after the run.
		perLP := make([][]hop, 8)
		var pass func(lp, hops int) Handler
		pass = func(lp, hops int) Handler {
			return func() {
				self := pe.LP(lp)
				perLP[lp] = append(perLP[lp], hop{LP: lp, At: self.Now(), Draw: self.Rand().Uint64()})
				if hops == 0 {
					return
				}
				next := (lp + 3) % 8
				// Variable but deterministic delay >= lookahead.
				d := L + Time(self.Rand().Uint64N(uint64(4*L)))
				self.Send(next, d, pass(next, hops-1))
			}
		}
		for i := 0; i < 8; i++ {
			pe.LP(i).At(Time(i)*200, pass(i, 40))
		}
		pe.Run(2 * Second)
		var merged []hop
		for _, hs := range perLP {
			merged = append(merged, hs...)
		}
		return merged, pe.Fired(), pe.Delivered()
	}

	base, baseFired, baseDelivered := runRing(1)
	if baseDelivered == 0 {
		t.Fatal("ring model produced no cross-LP events; test is vacuous")
	}
	for _, w := range []int{2, 4, 8} {
		got, fired, delivered := runRing(w)
		if fired != baseFired || delivered != baseDelivered {
			t.Fatalf("workers=%d: fired/delivered %d/%d, want %d/%d", w, fired, delivered, baseFired, baseDelivered)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: trace diverged from sequential reference", w)
		}
	}
}

// TestRunSkipsEmptyBuckets checks the fast-forward: a simulation whose
// events are sparse relative to the lookahead must not pay a barrier per
// empty bucket.
func TestRunSkipsEmptyBuckets(t *testing.T) {
	pe := NewParallelEngine(1, 2, 2, Millisecond, 1)
	fired := 0
	pe.LP(0).At(0, func() { fired++ })
	pe.LP(1).At(999*Millisecond, func() { fired++ })
	pe.Run(10 * Second)
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
	if pe.Windows() != 2 {
		t.Fatalf("executed %d windows, want 2 (empty buckets must be skipped)", pe.Windows())
	}
	if pe.LP(0).Now() != 10*Second || pe.LP(1).Now() != 10*Second {
		t.Fatalf("clocks %v/%v, want both at 10s", pe.LP(0).Now(), pe.LP(1).Now())
	}
}

// TestCrossEventBeyondHorizonStaysQueued checks Run's horizon contract:
// a delivered cross-LP event with a timestamp past until waits for the
// next Run, exactly like a local event would on the plain engine.
func TestCrossEventBeyondHorizonStaysQueued(t *testing.T) {
	const L = 10 * Millisecond
	pe := NewParallelEngine(1, 2, 2, L, 1)
	fired := false
	pe.LP(0).At(0, func() {
		pe.LP(0).Send(1, 5*L, func() { fired = true })
	})
	pe.Run(3 * L)
	if fired {
		t.Fatal("cross-LP event fired before its timestamp's horizon")
	}
	if pe.LP(1).Pending() != 1 {
		t.Fatalf("destination LP holds %d pending events, want 1", pe.LP(1).Pending())
	}
	pe.Run(6 * L)
	if !fired {
		t.Fatal("cross-LP event never fired")
	}
}
