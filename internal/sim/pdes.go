// Parallel discrete-event simulation with conservative synchronization.
//
// A ParallelEngine partitions one simulation into logical processes (LPs),
// each owning a full arena Engine — its own event slab, heap, sequence
// counter and RNG stream. Simulated time is divided into fixed buckets of
// the configured lookahead width; within a bucket every LP dispatches its
// own events independently (in parallel across worker goroutines), and at
// the bucket barrier all cross-LP events produced during the bucket are
// merged in (timestamp, source LP index, send sequence) order and scheduled
// into their destination LPs.
//
// The conservative guarantee is the classic one (Chandy/Misra/Bryant): a
// cross-LP event may not fire earlier than lookahead after its send time,
// so every event an LP could receive during bucket k is already in its
// queue when bucket k starts — no LP ever dispatches an event out of
// timestamp order, and no rollback machinery is needed. The physical
// latencies of the model (the 15 ms tau_DiskWrite, the 25/45 ms flush
// transfers) dwarf typical PDES lookahead, which is what makes this
// profitable here.
//
// Determinism. Worker count is invisible to the simulation: LPs share no
// state during a bucket (a model obligation — each LP's handlers may touch
// only that LP's components), each LP's dispatch order is fixed by its own
// (time, seq) heap, and the barrier merge order is a total order computed
// identically regardless of which goroutine ran which LP. A run with N
// workers is therefore byte-identical to the same run with 1 worker — the
// sequential reference execution — and a single-LP ParallelEngine reduces
// exactly to the plain Engine (same seeds, same dispatch order).
package sim

import (
	"fmt"
	"sync"
)

// LP is one logical process of a parallel simulation. It embeds a full
// Engine: model components attach to an LP exactly as they would to a
// standalone engine, and everything they schedule stays LP-local. The only
// cross-LP channel is Send.
type LP struct {
	*Engine
	idx     int
	pe      *ParallelEngine
	outbox  []xevent
	sendSeq uint64
}

// Index reports the LP's position in its parallel engine.
func (lp *LP) Index() int { return lp.idx }

// Send schedules fn on the destination LP, delay after the current time.
// The delay must be at least the engine's lookahead — that is the
// conservative contract that lets buckets run without intra-bucket
// communication. The event is buffered in the sender's outbox and merged
// into the destination at the next bucket barrier; among cross-LP events
// with equal timestamps, delivery (and thus dispatch) order is by source
// LP index, then by send order within the source.
func (lp *LP) Send(dst int, delay Time, fn Handler) {
	if dst < 0 || dst >= len(lp.pe.lps) {
		panic(fmt.Sprintf("sim: Send to LP %d out of range (engine has %d)", dst, len(lp.pe.lps)))
	}
	if delay < lp.pe.lookahead {
		panic(fmt.Sprintf("sim: cross-LP send with delay %v below lookahead %v", delay, lp.pe.lookahead))
	}
	lp.sendSeq++
	lp.outbox = append(lp.outbox, xevent{
		at:  lp.Now() + delay,
		dst: int32(dst),
		seq: lp.sendSeq,
		fn:  fn,
	})
}

// xevent is one buffered cross-LP event. The source LP index is implicit
// in which outbox holds it until the barrier gathers them.
type xevent struct {
	at  Time
	src int32
	dst int32
	seq uint64
	fn  Handler
}

// ParallelEngine runs one simulation decomposed into LPs under
// conservative synchronization. It is driven from a single goroutine
// (Run); worker goroutines exist only inside Run, between barriers.
type ParallelEngine struct {
	lps       []*LP
	lookahead Time
	workers   int
	cursor    Time // next unprocessed instant (start of the next window)

	// merge scratch, reused across barriers
	inbox []xevent

	windows   uint64 // buckets actually executed (empty buckets are skipped)
	delivered uint64 // cross-LP events merged at barriers
}

// NewParallelEngine builds an engine of n LPs with the given lookahead and
// worker count. LP 0 is seeded with exactly the two given words — so a
// 1-LP parallel engine is bit-for-bit the sequential NewEngine(seed1,
// seed2) — and every further LP derives its own independent stream from
// (seed1, seed2, index) via splitmix64. workers <= 1 runs every bucket on
// the calling goroutine: the sequential reference execution.
func NewParallelEngine(seed1, seed2 uint64, n int, lookahead Time, workers int) *ParallelEngine {
	if n <= 0 {
		panic(fmt.Sprintf("sim: parallel engine needs at least one LP, got %d", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: parallel engine needs positive lookahead, got %v", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	pe := &ParallelEngine{lookahead: lookahead, workers: workers}
	for i := 0; i < n; i++ {
		s1, s2 := seed1, seed2
		if i > 0 {
			s1 = splitmix64(seed1 + uint64(i)*0x9e3779b97f4a7c15)
			s2 = splitmix64(seed2 ^ s1)
		}
		pe.lps = append(pe.lps, &LP{Engine: NewEngine(s1, s2), idx: i, pe: pe})
	}
	return pe
}

// splitmix64 is the standard 64-bit mixer, used to derive per-LP seed
// streams that are independent of each other and of the LP-0 stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NumLPs reports the LP count.
func (pe *ParallelEngine) NumLPs() int { return len(pe.lps) }

// LP returns the i-th logical process.
func (pe *ParallelEngine) LP(i int) *LP {
	if i < 0 || i >= len(pe.lps) {
		panic(fmt.Sprintf("sim: LP %d out of range (engine has %d)", i, len(pe.lps)))
	}
	return pe.lps[i]
}

// Lookahead reports the conservative window width.
func (pe *ParallelEngine) Lookahead() Time { return pe.lookahead }

// Workers reports the configured worker count.
func (pe *ParallelEngine) Workers() int { return pe.workers }

// Windows reports how many non-empty time buckets have executed.
func (pe *ParallelEngine) Windows() uint64 { return pe.windows }

// Delivered reports how many cross-LP events have been merged at barriers.
func (pe *ParallelEngine) Delivered() uint64 { return pe.delivered }

// Fired sums the events dispatched across all LPs. Call only between Run
// calls (it reads every LP).
func (pe *ParallelEngine) Fired() uint64 {
	var n uint64
	for _, lp := range pe.lps {
		n += lp.Engine.Fired()
	}
	return n
}

// nextEventAt scans every LP for the earliest pending event. Runs
// single-threaded, at barriers.
func (pe *ParallelEngine) nextEventAt() (Time, bool) {
	var best Time
	found := false
	for _, lp := range pe.lps {
		if at, ok := lp.Engine.NextAt(); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

// bucketEnd returns the exclusive end of the fixed-grid bucket containing
// t: buckets are [k*L, (k+1)*L) for k = 0, 1, ...
func (pe *ParallelEngine) bucketEnd(t Time) Time {
	return (t/pe.lookahead + 1) * pe.lookahead
}

// Run advances the whole simulation through time until (inclusive), like
// Engine.Run: every event with timestamp <= until fires, in each LP's
// (time, seq) order, and every LP's clock ends at until. Buckets with no
// pending events anywhere are skipped without a barrier. Cross-LP events
// whose timestamps land beyond until stay queued for a later Run.
func (pe *ParallelEngine) Run(until Time) {
	for pe.cursor <= until {
		next, ok := pe.nextEventAt()
		if !ok || next > until {
			break
		}
		if next > pe.cursor {
			pe.cursor = next // skip empty buckets: nothing fires, nothing is sent
		}
		capT := pe.bucketEnd(pe.cursor) - 1
		if capT > until {
			capT = until
		}
		pe.runWindow(capT)
		pe.deliver()
		pe.windows++
		pe.cursor = capT + 1
	}
	// Mirror Engine.Run's trailing clock move: no events <= until remain
	// (delivered events always land at or after the sending bucket's end),
	// so this only positions every LP's clock at the horizon.
	for _, lp := range pe.lps {
		lp.Engine.Run(until)
	}
	if pe.cursor < until+1 {
		pe.cursor = until + 1
	}
}

// runWindow dispatches every LP's events with timestamps <= capT. With one
// worker the LPs run in index order on the calling goroutine — the
// sequential reference — and with W workers LP i runs on goroutine i mod W.
// The assignment is pure scheduling: LPs share no state inside a window,
// so which goroutine runs an LP (and in what order relative to other LPs)
// is unobservable.
func (pe *ParallelEngine) runWindow(capT Time) {
	if pe.workers <= 1 || len(pe.lps) == 1 {
		for _, lp := range pe.lps {
			lp.Engine.Run(capT)
		}
		return
	}
	w := pe.workers
	if w > len(pe.lps) {
		w = len(pe.lps)
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(pe.lps); i += w {
				pe.lps[i].Engine.Run(capT)
			}
		}(g)
	}
	wg.Wait()
}

// deliver runs at the bucket barrier, single-threaded: it gathers every
// LP's outbox, orders the union by (timestamp, source LP, send sequence) —
// a total order independent of worker scheduling — and schedules each
// event into its destination LP. Destination sequence numbers are assigned
// in that same order, so cross-LP events with equal timestamps dispatch
// deterministically: source LP index breaks the tie, then send order.
func (pe *ParallelEngine) deliver() {
	pe.inbox = pe.inbox[:0]
	for _, lp := range pe.lps {
		for _, x := range lp.outbox {
			x.src = int32(lp.idx)
			pe.inbox = append(pe.inbox, x)
		}
		lp.outbox = lp.outbox[:0]
	}
	if len(pe.inbox) == 0 {
		return
	}
	sortXevents(pe.inbox)
	for _, x := range pe.inbox {
		dst := pe.lps[x.dst]
		dst.Engine.At(x.at, x.fn)
		pe.delivered++
	}
	// Handlers must not linger in the scratch buffer past the barrier.
	for i := range pe.inbox {
		pe.inbox[i].fn = nil
	}
}

// sortXevents orders cross-LP events by (at, src, seq). Insertion sort:
// barriers see small batches (events produced in one lookahead window),
// and the gathered input is already sorted by (src, seq), so runs are
// nearly ordered.
func sortXevents(xs []xevent) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xeventAfter(xs[j], x) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// xeventAfter reports whether a orders strictly after b in the barrier
// merge order (timestamp, then source LP index, then send sequence).
func xeventAfter(a, b xevent) bool {
	if a.at != b.at {
		return a.at > b.at
	}
	if a.src != b.src {
		return a.src > b.src
	}
	return a.seq > b.seq
}
