package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000 {
		t.Fatalf("Second = %d, want 1e6 µs", Second)
	}
	if Millisecond != 1000 {
		t.Fatalf("Millisecond = %d, want 1000 µs", Millisecond)
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{3 * Second, "3s"},
		{15 * Millisecond, "15ms"},
		{1500 * Millisecond, "1.500s"},
		{42, "42µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1, 2)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %v after Run(100), want 100", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1, 2)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: position %d holds %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1, 2)
	fired := false
	id := e.At(10, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(id) {
		t.Fatal("Cancel returned true for an already-cancelled event")
	}
	e.Run(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1, 2)
	id := e.At(10, func() {})
	e.Run(100)
	if e.Cancel(id) {
		t.Fatal("Cancel returned true for an event that already fired")
	}
}

// TestAtExactlyNowDuringDrain pins the boundary semantics the arena
// rewrite must preserve: a handler scheduling At(Now()) mid-drain gets its
// event dispatched in the same Run, even when Now() equals Run's horizon,
// because Run only stops for events strictly after the horizon.
func TestAtExactlyNowDuringDrain(t *testing.T) {
	e := NewEngine(1, 2)
	var order []string
	e.At(10, func() {
		order = append(order, "A")
		e.At(e.Now(), func() { order = append(order, "C") })
	})
	e.At(10, func() { order = append(order, "B") })
	e.Run(10) // horizon == the events' time: all three must fire
	want := []string{"A", "B", "C"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v (FIFO among simultaneous, new arrivals last)", order, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
}

// TestCancelSelfDuringDispatch pins that an event is already retired when
// its handler runs: cancelling yourself reports false and has no effect.
func TestCancelSelfDuringDispatch(t *testing.T) {
	e := NewEngine(1, 2)
	var id EventID
	var got bool
	id = e.At(10, func() { got = e.Cancel(id) })
	e.Run(100)
	if got {
		t.Fatal("Cancel of the currently-dispatching event returned true")
	}
}

// TestCancelSiblingDuringDispatch pins that a handler may cancel a
// simultaneous event that has not yet been dispatched.
func TestCancelSiblingDuringDispatch(t *testing.T) {
	e := NewEngine(1, 2)
	var bFired bool
	var cancelled bool
	var idB EventID
	e.At(10, func() { cancelled = e.Cancel(idB) })
	idB = e.At(10, func() { bFired = true })
	e.Run(100)
	if !cancelled {
		t.Fatal("Cancel of a pending simultaneous event returned false")
	}
	if bFired {
		t.Fatal("cancelled simultaneous event fired anyway")
	}
}

// TestEventIDsNonZeroAndDistinct pins the documented EventID contract: the
// zero id is never issued and live ids are unique.
func TestEventIDsNonZeroAndDistinct(t *testing.T) {
	e := NewEngine(1, 2)
	seen := make(map[EventID]bool)
	for i := 0; i < 1000; i++ {
		id := e.At(Time(i), func() {})
		if id == 0 {
			t.Fatal("zero EventID issued")
		}
		if seen[id] {
			t.Fatalf("duplicate EventID %d among pending events", id)
		}
		seen[id] = true
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1, 2)
	var at Time
	e.At(40, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run(1000)
	if at != 45 {
		t.Fatalf("After(5) from t=40 fired at %v, want 45", at)
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	e := NewEngine(1, 2)
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.Run(15)
	if fired != 1 {
		t.Fatalf("Run(15) fired %d events, want 1", fired)
	}
	e.Run(25)
	if fired != 2 {
		t.Fatalf("after Run(25) fired %d events, want 2", fired)
	}
}

func TestEventsScheduledDuringDispatch(t *testing.T) {
	e := NewEngine(1, 2)
	var seen []Time
	var rec func()
	n := 0
	rec = func() {
		seen = append(seen, e.Now())
		n++
		if n < 5 {
			e.After(10, rec)
		}
	}
	e.At(0, rec)
	e.Run(1000)
	want := []Time{0, 10, 20, 30, 40}
	if len(seen) != len(want) {
		t.Fatalf("fired %d times, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1, 2)
	e.At(50, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(10, func() {})
	})
	e.Run(100)
}

func TestStop(t *testing.T) {
	e := NewEngine(1, 2)
	fired := 0
	e.At(10, func() { fired++; e.Stop() })
	e.At(20, func() { fired++ })
	e.Run(100)
	if fired != 1 {
		t.Fatalf("Stop did not halt dispatch: fired=%d", fired)
	}
}

// TestStopLeavesClockAtLastEvent: a stopped run must not advance the clock
// to the nominal horizon — a recovery drill that crashes via Stop() at
// t=10 really crashed at t=10, not at Run's until argument.
func TestStopLeavesClockAtLastEvent(t *testing.T) {
	e := NewEngine(1, 2)
	e.At(10, func() { e.Stop() })
	e.At(20, func() {})
	e.Run(100)
	if e.Now() != 10 {
		t.Fatalf("Now() = %v after Stop at t=10, want 10", e.Now())
	}
	// A fresh Run resumes from where the stop left off and, undisturbed,
	// advances to its horizon as usual.
	e.Run(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v after resumed Run(100), want 100", e.Now())
	}
}

func TestStep(t *testing.T) {
	e := NewEngine(1, 2)
	fired := 0
	e.At(10, func() { fired++ })
	if !e.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if fired != 1 || e.Now() != 10 {
		t.Fatalf("Step: fired=%d now=%v", fired, e.Now())
	}
	if e.Step() {
		t.Fatal("Step returned true with no pending events")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine(7, 9)
		var draws []uint64
		for i := 0; i < 20; i++ {
			e.At(Time(i*3), func() { draws = append(draws, e.Rand().Uint64()) })
		}
		e.Run(1000)
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestHeapOrderingProperty drives the event heap with random schedules and
// cancellations and checks that surviving events fire in nondecreasing time
// order with FIFO tie-breaking.
func TestHeapOrderingProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		e := NewEngine(seed, 1)
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		ids := make([]EventID, 0, 200)
		times := make(map[EventID]Time)
		for i := 0; i < 200; i++ {
			at := Time(rng.IntN(500))
			seq := i
			id := e.At(at, func() { fired = append(fired, rec{at, seq}) })
			ids = append(ids, id)
			times[id] = at
		}
		// Cancel a random third.
		for _, id := range ids {
			if rng.IntN(3) == 0 {
				e.Cancel(id)
				delete(times, id)
			}
		}
		e.Run(1000)
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		}) {
			return false
		}
		// Already-sorted means every adjacent pair is in order, including ties.
		for i := 1; i < len(fired); i++ {
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%100), func() {})
		if i%64 == 63 {
			e.Run(e.Now() + 100)
		}
	}
	e.Run(e.Now() + 1000)
}
