// Package sim provides the discrete-event simulation substrate used by the
// ephemeral-logging study: a virtual clock with microsecond resolution, an
// event queue with deterministic FIFO ordering of simultaneous events, and a
// seeded pseudo-random number generator.
//
// The paper's evaluation (Keen & Dally, SIGMOD 1993, section 3) is driven by
// an event-driven simulator written in C; this package is its Go equivalent.
// All model components (log managers, disks, workload generators) share one
// Engine and schedule callbacks on it.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in microseconds since the
// start of the simulation. All of the paper's constants (the 1 ms commit
// gap epsilon, the 15 ms log write latency, the 25/45 ms flush transfer
// times) are integral in microseconds, so no floating-point clock is needed.
type Time int64

// Convenient duration units expressed as Time deltas.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds, for
// reporting rates such as block writes per second.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts a simulated time span to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// String formats the time compactly, e.g. "1.250s" or "15ms".
func (t Time) String() string {
	switch {
	case t >= Second && t%Second == 0:
		return fmt.Sprintf("%ds", int64(t/Second))
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond && t%Millisecond == 0:
		return fmt.Sprintf("%dms", int64(t/Millisecond))
	default:
		return fmt.Sprintf("%dµs", int64(t))
	}
}
