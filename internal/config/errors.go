package config

import "fmt"

// UnsupportedCombo is the structured rejection for configurations that
// combine two features the implementation does not (yet) support together.
// Callers that care can errors.As for it — CLI layers to phrase the
// message, tests to assert on the exact pair — instead of matching error
// strings.
type UnsupportedCombo struct {
	Feature string // the feature being requested, e.g. "pdes"
	Other   string // the feature it cannot combine with, e.g. "faults"
	Hint    string // optional: what the user should do instead
}

func (e UnsupportedCombo) Error() string {
	msg := fmt.Sprintf("config: %s runs do not support %s", e.Feature, e.Other)
	if e.Hint != "" {
		msg += " (" + e.Hint + ")"
	}
	return msg
}

// Unsupported builds the error; a convenience for validation sites.
func Unsupported(feature, other, hint string) error {
	return UnsupportedCombo{Feature: feature, Other: other, Hint: hint}
}
