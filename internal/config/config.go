// Package config provides a JSON-serializable description of a simulation
// run, mirroring the input parameters of the paper's simulator (section 3):
// the statistical mix of transactions (pdf), the rate of transaction
// initiation, the flush rate (drives and per-object transfer time), the
// number and size of generations, the recirculation flag and the runtime.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"ellog/internal/core"
	"ellog/internal/fault"
	"ellog/internal/harness"
	"ellog/internal/multilog"
	"ellog/internal/obs"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// TxTypeJSON is one transaction type of the pdf. Durations are in
// milliseconds for JSON friendliness.
type TxTypeJSON struct {
	Name       string  `json:"name"`
	Prob       float64 `json:"prob"`
	LifetimeMS int64   `json:"lifetime_ms"`
	NumRecords int     `json:"num_records"`
	RecordSize int     `json:"record_size"`
}

// SimConfig is the JSON form of a full simulation run.
type SimConfig struct {
	Seed uint64 `json:"seed"`

	// Technique: "el" or "fw".
	Mode        string `json:"mode"`
	Generations []int  `json:"generations"`
	Recirculate bool   `json:"recirculate"`
	// LifetimeHintsMS optionally enables the section-6 placement
	// extension: boundary lifetimes (ms) between consecutive generations.
	LifetimeHintsMS []int64 `json:"lifetime_hints_ms,omitempty"`
	// GroupCommitTimeoutMS bounds commit latency in quiet generations
	// (0 = pure group commit, as in the paper).
	GroupCommitTimeoutMS int64 `json:"group_commit_timeout_ms,omitempty"`

	// Workload.
	Mix         []TxTypeJSON `json:"mix"`
	ArrivalRate float64      `json:"arrival_rate_tps"`
	RuntimeS    float64      `json:"runtime_s"`
	NumObjects  uint64       `json:"num_objects"`

	// Flushing.
	FlushDrives     int   `json:"flush_drives"`
	FlushTransferMS int64 `json:"flush_transfer_ms"`

	// Sharding (multilog). Shards > 1 runs the configuration as a
	// shared-nothing sharded system: each shard gets its own log of
	// Generations blocks, its own FlushDrives and an equal slice of
	// NumObjects, with transactions routed by object. CrossShardFrac is
	// the fraction of transactions spanning two shards via 2PC in the
	// log. Zero values mean the classic single-log run.
	Shards         int     `json:"shards,omitempty"`
	CrossShardFrac float64 `json:"cross_shard_frac,omitempty"`
	// PartitionHash switches the sharded system from range declustering to
	// hash declustering: ownership by splitmix64 hash over a GLOBAL object
	// space. Transactions go cross-shard (2PC in the log) exactly when the
	// hash scatters their objects, so CrossShardFrac must be zero; PDES
	// runs, whose logical processes own contiguous slices by construction,
	// do not support it.
	PartitionHash bool `json:"partition_hash,omitempty"`

	// Faults optionally arms the internal/fault injection plan. Omitted —
	// or present with all probabilities zero — means faults-off, and the
	// run is byte-identical to one with no plan attached at all. Fault
	// parameters deliberately live outside the harness configuration so
	// result-cache keys and seed fan-outs are unaffected by them.
	Faults *FaultsJSON `json:"faults,omitempty"`

	// Observability optionally arms the internal/obs layer (probe sampler
	// + streaming trace export). Like Faults it lives outside the harness
	// configuration: sampling and streaming never change a run's results,
	// so they must not change its cache identity either.
	Observability *ObsJSON `json:"observability,omitempty"`
}

// ObsJSON is the JSON form of an observability configuration.
type ObsJSON struct {
	// SampleIntervalMS is the probe cadence (default 100 ms).
	SampleIntervalMS int64 `json:"sample_interval_ms,omitempty"`
	// MaxPoints bounds each sampled series (default 512).
	MaxPoints int `json:"max_points,omitempty"`
	// TracePath streams every trace event to this file.
	TracePath string `json:"trace_path,omitempty"`
	// TraceFormat is "jsonl" (default) or "binary".
	TraceFormat string `json:"trace_format,omitempty"`
	// ProbesPath writes the sampled series snapshot to this file.
	ProbesPath string `json:"probes_path,omitempty"`
}

// ToObs converts to the obs package's native configuration.
func (o ObsJSON) ToObs() obs.Config {
	return obs.Config{
		SampleInterval: sim.Time(o.SampleIntervalMS) * sim.Millisecond,
		MaxPoints:      o.MaxPoints,
		TracePath:      o.TracePath,
		TraceFormat:    o.TraceFormat,
		ProbesPath:     o.ProbesPath,
	}
}

// FaultsJSON is the JSON form of a fault plan (durations in milliseconds).
type FaultsJSON struct {
	Seed          uint64  `json:"seed"`
	WriteFailProb float64 `json:"write_fail_prob,omitempty"`
	CorruptProb   float64 `json:"corrupt_prob,omitempty"`
	SlowProb      float64 `json:"slow_prob,omitempty"`
	SlowMaxMS     int64   `json:"slow_max_ms,omitempty"`
	StallProb     float64 `json:"stall_prob,omitempty"`
	StallMaxMS    int64   `json:"stall_max_ms,omitempty"`
	// Retry policy for the logging manager under transient write errors
	// (0 = package defaults: 3 retries, 1 ms initial backoff, doubling).
	MaxRetries     int   `json:"max_retries,omitempty"`
	RetryBackoffMS int64 `json:"retry_backoff_ms,omitempty"`
}

// ToFault converts to the fault package's native configuration.
func (f FaultsJSON) ToFault() fault.Config {
	return fault.Config{
		Seed:          f.Seed,
		WriteFailProb: f.WriteFailProb,
		CorruptProb:   f.CorruptProb,
		SlowProb:      f.SlowProb,
		SlowMax:       sim.Time(f.SlowMaxMS) * sim.Millisecond,
		StallProb:     f.StallProb,
		StallMax:      sim.Time(f.StallMaxMS) * sim.Millisecond,
		MaxRetries:    f.MaxRetries,
		RetryBackoff:  sim.Time(f.RetryBackoffMS) * sim.Millisecond,
	}
}

// Default returns the paper's 5%-mix EL configuration at its measured
// minimum sizes.
func Default() SimConfig {
	return SimConfig{
		Seed:        1,
		Mode:        "el",
		Generations: []int{18, 16},
		Recirculate: false,
		Mix: []TxTypeJSON{
			{Name: "short-1s", Prob: 0.95, LifetimeMS: 1000, NumRecords: 2, RecordSize: 100},
			{Name: "long-10s", Prob: 0.05, LifetimeMS: 10000, NumRecords: 4, RecordSize: 100},
		},
		ArrivalRate:     100,
		RuntimeS:        500,
		NumObjects:      10_000_000,
		FlushDrives:     10,
		FlushTransferMS: 25,
	}
}

// Load reads a SimConfig from a JSON file.
func Load(path string) (SimConfig, error) {
	var cfg SimConfig
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("config %s: %w", path, err)
	}
	return cfg, nil
}

// Save writes the configuration as indented JSON.
func (c SimConfig) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ToHarness converts to a runnable harness configuration.
func (c SimConfig) ToHarness() (harness.Config, error) {
	var mode core.Mode
	switch c.Mode {
	case "el", "EL", "":
		mode = core.ModeEphemeral
	case "fw", "FW":
		mode = core.ModeFirewall
	default:
		return harness.Config{}, fmt.Errorf("config: unknown mode %q (want \"el\" or \"fw\")", c.Mode)
	}
	mix := make(workload.Mix, 0, len(c.Mix))
	for _, t := range c.Mix {
		mix = append(mix, workload.TxType{
			Name:       t.Name,
			Prob:       t.Prob,
			Lifetime:   sim.Time(t.LifetimeMS) * sim.Millisecond,
			NumRecords: t.NumRecords,
			RecordSize: t.RecordSize,
		})
	}
	var hints []sim.Time
	for _, h := range c.LifetimeHintsMS {
		hints = append(hints, sim.Time(h)*sim.Millisecond)
	}
	cfg := harness.Config{
		Seed: c.Seed,
		LM: core.Params{
			Mode:               mode,
			GenSizes:           append([]int(nil), c.Generations...),
			Recirculate:        c.Recirculate,
			HintBoundaries:     hints,
			GroupCommitTimeout: sim.Time(c.GroupCommitTimeoutMS) * sim.Millisecond,
		},
		Flush: core.FlushConfig{
			Drives:     c.FlushDrives,
			Transfer:   sim.Time(c.FlushTransferMS) * sim.Millisecond,
			NumObjects: c.NumObjects,
		},
		Workload: workload.Config{
			Mix:         mix,
			ArrivalRate: c.ArrivalRate,
			Runtime:     sim.Time(c.RuntimeS * float64(sim.Second)),
			NumObjects:  c.NumObjects,
			Hints:       len(hints) > 0,
		},
	}
	if err := mix.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// ToSharded converts to a runnable sharded (multilog) configuration.
// Under range declustering NumObjects is split evenly across the shards,
// each of which gets its own log and flush drives sized like the
// single-log run's; under hash declustering (PartitionHash) every shard
// spans the whole object space and CrossShardFrac does not apply — 2PC
// frequency is a consequence of the hash, not a knob.
func (c SimConfig) ToSharded() (multilog.ShardedConfig, error) {
	var scfg multilog.ShardedConfig
	if c.Shards < 2 {
		return scfg, fmt.Errorf("config: sharded run needs shards >= 2, have %d", c.Shards)
	}
	if c.PartitionHash && c.CrossShardFrac != 0 {
		return scfg, Unsupported("partition_hash", "cross_shard_frac",
			"hash declustering decides cross-shard frequency itself; drop cross_shard_frac")
	}
	if !c.PartitionHash && c.NumObjects%uint64(c.Shards) != 0 {
		return scfg, fmt.Errorf("config: %d objects do not split evenly over %d shards", c.NumObjects, c.Shards)
	}
	hcfg, err := c.ToHarness()
	if err != nil {
		return scfg, err
	}
	scfg = multilog.ShardedConfig{
		Seed:     hcfg.Seed,
		Shards:   c.Shards,
		Hash:     c.PartitionHash,
		LM:       hcfg.LM,
		Flush:    hcfg.Flush,
		Workload: hcfg.Workload,
	}
	if c.PartitionHash {
		scfg.Flush.NumObjects = c.NumObjects
	} else {
		scfg.Flush.NumObjects = c.NumObjects / uint64(c.Shards)
		scfg.Workload.CrossShardFrac = c.CrossShardFrac
	}
	return scfg, nil
}

// ToPDES converts to a runnable parallel (PDES) sharded configuration:
// every shard becomes one logical process with its own slice of the object
// space, and CrossShardFrac becomes the 2PC overlay's share of each
// shard's arrival rate. workers is the goroutine count — pure scheduling,
// any value gives byte-identical results. A single shard is allowed (it
// reduces exactly to the sequential harness run).
func (c SimConfig) ToPDES(workers int) (multilog.PDESConfig, error) {
	var pcfg multilog.PDESConfig
	if c.Shards < 1 {
		return pcfg, fmt.Errorf("config: pdes run needs shards >= 1, have %d", c.Shards)
	}
	if c.PartitionHash {
		return pcfg, Unsupported("pdes", "partition_hash",
			"each logical process owns a contiguous object slice by construction; use a sequential sharded run")
	}
	if c.NumObjects%uint64(c.Shards) != 0 {
		return pcfg, fmt.Errorf("config: %d objects do not split evenly over %d shards", c.NumObjects, c.Shards)
	}
	hcfg, err := c.ToHarness()
	if err != nil {
		return pcfg, err
	}
	pcfg = multilog.PDESConfig{
		Seed:      hcfg.Seed,
		Shards:    c.Shards,
		Workers:   workers,
		LM:        hcfg.LM,
		Flush:     hcfg.Flush,
		Workload:  hcfg.Workload,
		CrossFrac: c.CrossShardFrac,
	}
	pcfg.Flush.NumObjects = c.NumObjects / uint64(c.Shards)
	return pcfg, nil
}
