package config

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/sim"
)

func TestDefaultRoundTripsThroughJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	if err := Default().Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Mode != "el" || len(loaded.Generations) != 2 || loaded.ArrivalRate != 100 {
		t.Fatalf("round trip lost fields: %+v", loaded)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/cfg.json"); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestLoadBadJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("bad JSON loaded")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestFaultsRoundTripAndConversion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := Default()
	cfg.Faults = &FaultsJSON{
		Seed: 7, WriteFailProb: 0.1, SlowProb: 0.2, SlowMaxMS: 10,
		StallProb: 0.05, StallMaxMS: 20, MaxRetries: 4, RetryBackoffMS: 2,
	}
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Faults == nil || *loaded.Faults != *cfg.Faults {
		t.Fatalf("faults section lost in round trip: %+v", loaded.Faults)
	}
	fc := loaded.Faults.ToFault()
	if fc.Seed != 7 || fc.WriteFailProb != 0.1 || fc.SlowMax != 10*sim.Millisecond ||
		fc.StallMax != 20*sim.Millisecond || fc.MaxRetries != 4 || fc.RetryBackoff != 2*sim.Millisecond {
		t.Fatalf("conversion wrong: %+v", fc)
	}
	if !fc.Active() {
		t.Fatal("converted config should be active")
	}

	// A config with no faults section stays that way through a round trip.
	plain := Default()
	if err := plain.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Faults != nil {
		t.Fatalf("faults section materialized from nothing: %+v", loaded.Faults)
	}
}

func TestToHarnessConversion(t *testing.T) {
	cfg := Default()
	cfg.LifetimeHintsMS = []int64{2000}
	cfg.GroupCommitTimeoutMS = 50
	h, err := cfg.ToHarness()
	if err != nil {
		t.Fatal(err)
	}
	if h.LM.Mode != core.ModeEphemeral {
		t.Fatal("mode wrong")
	}
	if h.LM.GroupCommitTimeout != 50*sim.Millisecond {
		t.Fatal("group commit timeout wrong")
	}
	if len(h.LM.HintBoundaries) != 1 || h.LM.HintBoundaries[0] != 2*sim.Second {
		t.Fatal("hints wrong")
	}
	if !h.Workload.Hints {
		t.Fatal("workload hints not enabled")
	}
	if h.Workload.Runtime != 500*sim.Second {
		t.Fatalf("runtime %v", h.Workload.Runtime)
	}
	if h.Flush.Transfer != 25*sim.Millisecond || h.Flush.Drives != 10 {
		t.Fatal("flush config wrong")
	}
}

func TestToHarnessRejectsBadMode(t *testing.T) {
	cfg := Default()
	cfg.Mode = "wal"
	if _, err := cfg.ToHarness(); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestToHarnessRejectsBadMix(t *testing.T) {
	cfg := Default()
	cfg.Mix[0].Prob = 0.1 // sums to 0.15
	if _, err := cfg.ToHarness(); err == nil {
		t.Fatal("bad pdf accepted")
	}
}

func TestDefaultConfigRuns(t *testing.T) {
	cfg := Default()
	cfg.RuntimeS = 5
	cfg.NumObjects = 1_000_000
	h, err := cfg.ToHarness()
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload.Started != 500 {
		t.Fatalf("started %d, want 500", res.Workload.Started)
	}
}

// TestUnsupportedCombos pins the structured rejection: callers must be
// able to errors.As for the exact feature pair instead of matching
// message strings.
func TestUnsupportedCombos(t *testing.T) {
	hash := Default()
	hash.Shards = 2
	hash.PartitionHash = true

	t.Run("hash+crossfrac", func(t *testing.T) {
		cfg := hash
		cfg.CrossShardFrac = 0.3
		_, err := cfg.ToSharded()
		var combo UnsupportedCombo
		if !errors.As(err, &combo) {
			t.Fatalf("ToSharded returned %v, want UnsupportedCombo", err)
		}
		if combo.Feature != "partition_hash" || combo.Other != "cross_shard_frac" {
			t.Fatalf("combo = %+v", combo)
		}
	})
	t.Run("pdes+hash", func(t *testing.T) {
		cfg := hash
		_, err := cfg.ToPDES(2)
		var combo UnsupportedCombo
		if !errors.As(err, &combo) {
			t.Fatalf("ToPDES returned %v, want UnsupportedCombo", err)
		}
		if combo.Feature != "pdes" || combo.Other != "partition_hash" {
			t.Fatalf("combo = %+v", combo)
		}
	})
	t.Run("hash sharded converts", func(t *testing.T) {
		cfg := hash
		scfg, err := cfg.ToSharded()
		if err != nil {
			t.Fatal(err)
		}
		if !scfg.Hash || scfg.Flush.NumObjects != cfg.NumObjects {
			t.Fatalf("hash sharded config = %+v, want global object space", scfg)
		}
	})
}

// TestPartitionHashJSONRoundTrip keeps the knob out of configs that do not
// set it (omitempty) and intact in those that do.
func TestPartitionHashJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := Default()
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "partition_hash") {
		t.Fatal("partition_hash serialized despite being unset")
	}
	cfg.PartitionHash = true
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.PartitionHash {
		t.Fatal("partition_hash lost in the round trip")
	}
}
