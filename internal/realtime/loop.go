// Package realtime is the wall-clock twin of the simulation engine: a
// single-goroutine event loop whose clock is elapsed real time. It
// satisfies sim.Source, so the logging-manager core, the flush-array model
// and the workload generator — all written against that interface — run on
// real hardware unchanged, with their simulated-time constants (the 1 ms
// commit epsilon, the 25 ms flush transfer) paid in actual wall time.
//
// The package is deliberately OUTSIDE the determinism contract: it reads
// the wall clock and its runs are not reproducible in their timing (the
// ellint ruleset exempts it from the wallclock and rngsource rules by
// scope). What stays deterministic is the input side — the workload's
// random stream is seeded from the run configuration — so a real run
// replays the same transaction schedule even though durability timings
// differ run to run.
package realtime

import (
	"container/heap"
	"math/rand/v2"
	"sync"
	"time"

	"ellog/internal/sim"
)

// Loop is a wall-clock event loop. All scheduling (At/After) and all
// handler execution happen on the goroutine that calls Run — the same
// single-threaded discipline as sim.Engine. Other goroutines (the device's
// fsync worker) hand completions back with Post; the loop wakes and runs
// them in arrival order.
type Loop struct {
	start time.Time
	rng   *rand.Rand

	// Timer state; loop-goroutine only.
	evs     evHeap
	nextSeq uint64
	fired   uint64

	// Cross-goroutine mailbox.
	mu     sync.Mutex
	posted []func()
	wake   chan struct{}
}

type ev struct {
	at  sim.Time
	seq uint64
	fn  sim.Handler
}

// New returns a loop whose clock starts at 0 now and whose random stream is
// seeded like the simulation harness seeds its engine, so sim and real runs
// of the same configuration draw identical workload schedules.
func New(seed uint64) *Loop {
	return &Loop{
		start: time.Now(),
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		wake:  make(chan struct{}, 1),
	}
}

// Now returns the wall-clock time elapsed since the loop was created, as a
// sim.Time (microseconds) — the real backend's reading of the paper's
// simulated clock.
func (l *Loop) Now() sim.Time {
	return sim.Time(time.Since(l.start) / time.Microsecond)
}

// Rand returns the loop's seeded random stream.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// Fired reports how many events have been dispatched so far.
func (l *Loop) Fired() uint64 { return l.fired }

// Pending reports how many timer events are currently scheduled.
func (l *Loop) Pending() int { return len(l.evs) }

// At schedules fn to run at absolute loop time t. Unlike the simulation
// engine, scheduling "in the past" is legal and fires on the next loop
// pass: real time advances between the caller reading Now and the loop
// acting, so a hard panic would turn an innocent scheduling race with the
// wall clock into a crash.
func (l *Loop) At(t sim.Time, fn sim.Handler) sim.EventID {
	l.nextSeq++
	heap.Push(&l.evs, &ev{at: t, seq: l.nextSeq, fn: fn})
	return sim.EventID(l.nextSeq)
}

// After schedules fn to run d after the current time.
func (l *Loop) After(d sim.Time, fn sim.Handler) sim.EventID {
	if d < 0 {
		d = 0
	}
	return l.At(l.Now()+d, fn)
}

// Post hands a callback to the loop from another goroutine; it runs on the
// loop goroutine, before any timer event, on the next pass. This is how
// the real device's fsync worker delivers write completions without the
// manager ever seeing a second thread.
func (l *Loop) Post(fn func()) {
	l.mu.Lock()
	l.posted = append(l.posted, fn)
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Run dispatches posted callbacks and due timer events until the wall
// clock passes the until time. Timer events scheduled beyond the horizon
// stay pending, exactly like sim.Engine.Run; repeated calls with a later
// horizon continue the run. Run returns with the loop idle at or past
// until.
func (l *Loop) Run(until sim.Time) {
	for {
		l.drainPosted()
		now := l.Now()
		for len(l.evs) > 0 && l.evs[0].at <= now {
			e := heap.Pop(&l.evs).(*ev)
			l.fired++
			e.fn()
		}
		now = l.Now()
		if now >= until {
			return
		}
		next := until
		if len(l.evs) > 0 && l.evs[0].at < next {
			next = l.evs[0].at
		}
		sleep := time.Duration(next-now) * time.Microsecond
		timer := time.NewTimer(sleep)
		select {
		case <-l.wake:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// Step runs one pass of posted callbacks plus any due timer events without
// sleeping, and reports whether anything fired. Drain loops use it to
// quiesce in-flight completions after Run returns.
func (l *Loop) Step() bool {
	fired := l.drainPosted()
	now := l.Now()
	for len(l.evs) > 0 && l.evs[0].at <= now {
		e := heap.Pop(&l.evs).(*ev)
		l.fired++
		e.fn()
		fired = true
	}
	return fired
}

func (l *Loop) drainPosted() bool {
	l.mu.Lock()
	posts := l.posted
	l.posted = nil
	l.mu.Unlock()
	for _, fn := range posts {
		fn()
	}
	return len(posts) > 0
}

// --- timer heap ordered by (at, seq) ----------------------------------

type evHeap []*ev

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(*ev)) }
func (h *evHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

var _ sim.Source = (*Loop)(nil)
