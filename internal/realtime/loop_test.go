package realtime

import (
	"sync/atomic"
	"testing"
	"time"

	"ellog/internal/sim"
)

func TestRunFiresInTimeOrder(t *testing.T) {
	l := New(1)
	var got []int
	l.After(3*sim.Millisecond, func() { got = append(got, 3) })
	l.After(1*sim.Millisecond, func() { got = append(got, 1) })
	l.After(2*sim.Millisecond, func() { got = append(got, 2) })
	l.Run(20 * sim.Millisecond)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", got)
	}
	if l.Fired() != 3 || l.Pending() != 0 {
		t.Fatalf("Fired=%d Pending=%d, want 3 and 0", l.Fired(), l.Pending())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	l := New(1)
	var got []int
	at := l.Now() + 2*sim.Millisecond
	for i := 0; i < 5; i++ {
		i := i
		l.At(at, func() { got = append(got, i) })
	}
	l.Run(10 * sim.Millisecond)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired %v, want FIFO order", got)
		}
	}
}

func TestPastEventFiresInsteadOfPanicking(t *testing.T) {
	l := New(1)
	time.Sleep(2 * time.Millisecond)
	fired := false
	l.At(0, func() { fired = true }) // wall clock has moved past 0
	l.Run(l.Now() + sim.Millisecond)
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
}

func TestEventsBeyondHorizonStayPending(t *testing.T) {
	l := New(1)
	fired := false
	l.After(3600*sim.Second, func() { fired = true })
	l.Run(l.Now() + sim.Millisecond)
	if fired {
		t.Fatal("event beyond the horizon fired")
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending=%d, want 1", l.Pending())
	}
}

func TestPostWakesRun(t *testing.T) {
	l := New(1)
	var fired atomic.Bool
	start := time.Now()
	go func() {
		time.Sleep(5 * time.Millisecond)
		l.Post(func() { fired.Store(true) })
	}()
	// The loop sleeps toward a far horizon; the Post must wake it long
	// before that.
	done := make(chan struct{})
	go func() {
		for !fired.Load() {
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	go l.Run(5 * sim.Second)
	select {
	case <-done:
		if time.Since(start) > 2*time.Second {
			t.Fatal("Post took implausibly long to be dispatched")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("posted callback never ran")
	}
}

func TestStepDrainsWithoutSleeping(t *testing.T) {
	l := New(1)
	ran := false
	l.Post(func() { ran = true })
	if !l.Step() {
		t.Fatal("Step reported nothing fired")
	}
	if !ran {
		t.Fatal("posted callback did not run")
	}
	if l.Step() {
		t.Fatal("idle Step reported work")
	}
}

func TestRandIsSeededDeterministically(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 16; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same seed produced different random streams")
		}
	}
}
