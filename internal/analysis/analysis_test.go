package analysis

import (
	"math"
	"testing"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/sim"
)

// within asserts |got-want|/want <= tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if math.Abs(got-want)/math.Abs(want) > tol {
		t.Fatalf("%s: model %v vs measured %v (tolerance %.0f%%)", name, got, want, tol*100)
	}
}

func TestClosedFormRates(t *testing.T) {
	m := Derive(PaperInputs(0.05))
	// Section 4's own numbers.
	within(t, "updates/s", m.UpdatesPerSec, 210, 1e-9)
	within(t, "bytes/s", m.LogBytesPerSec, 22600, 1e-9)
	// 145 mean active transactions by Little's law.
	within(t, "active txs", m.ActiveTxs, 145, 1e-9)
	m40 := Derive(PaperInputs(0.40))
	within(t, "updates/s @40%", m40.UpdatesPerSec, 280, 1e-9)
}

func simulated(t *testing.T, mode core.Mode, sizes []int) harness.Result {
	t.Helper()
	cfg := harness.PaperDefaults(0.05)
	cfg.LM = core.Params{Mode: mode, GenSizes: sizes}
	cfg.Workload.Runtime = 60 * sim.Second
	cfg.Workload.NumObjects = 1_000_000
	cfg.Flush.NumObjects = 1_000_000
	res, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestModelPredictsBandwidth(t *testing.T) {
	in := PaperInputs(0.05)
	in.NumObjects = 1_000_000
	m := Derive(in)
	res := simulated(t, core.ModeFirewall, []int{200})
	// A pure append log's block rate, within block-packing slack.
	within(t, "FW bandwidth", m.LogBlocksPS, res.LM.TotalBandwidth, 0.10)
}

func TestModelPredictsFWSpace(t *testing.T) {
	in := PaperInputs(0.05)
	in.NumObjects = 1_000_000
	m := Derive(in)
	// The paper (and our search) put the FW minimum at ~121-123 blocks.
	within(t, "FW min space", m.FWMinBlocks, 123, 0.15)
}

func TestModelPredictsGen0(t *testing.T) {
	m := Derive(PaperInputs(0.05))
	// The paper's generation 0 minimum is 18 blocks (ours 16-21).
	within(t, "gen0 min", m.Gen0MinBlocks, 18, 0.35)
	if m.Gen1MinBlocks < 8 || m.Gen1MinBlocks > 24 {
		t.Fatalf("gen1 min %v outside the plausible 8-24 (paper: 16)", m.Gen1MinBlocks)
	}
}

func TestModelPredictsMemory(t *testing.T) {
	in := PaperInputs(0.05)
	in.NumObjects = 1_000_000
	m := Derive(in)
	res := simulated(t, core.ModeFirewall, []int{200})
	within(t, "FW memory", m.FWMemBytes, res.LM.MemPeakBytes, 0.35)
	el := simulated(t, core.ModeEphemeral, []int{18, 16})
	within(t, "EL memory", m.ELMemBytes, el.LM.MemPeakBytes, 0.45)
}

func TestModelPredictsFlushBehaviour(t *testing.T) {
	in := PaperInputs(0.05)
	in.NumObjects = 1_000_000
	m := Derive(in)
	res := simulated(t, core.ModeEphemeral, []int{18, 16})
	within(t, "flush utilization", m.FlushRho, res.LM.Flush.BusyFrac, 0.10)
	// Locality: expected inter-flush distance within a factor of two.
	ratio := m.FlushLocality / res.LM.Flush.AvgDistance
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("flush locality: model %v vs measured %v", m.FlushLocality, res.LM.Flush.AvgDistance)
	}
}

func TestScarceFlushSaturation(t *testing.T) {
	in := PaperInputs(0.05)
	in.FlushXfer = 45 * sim.Millisecond
	m := Derive(in)
	// 210/222 ~ 0.945: near saturation, large backlog, much better locality.
	within(t, "scarce rho", m.FlushRho, 0.945, 0.01)
	if m.FlushBacklog < 15 {
		t.Fatalf("scarce backlog %v too small", m.FlushBacklog)
	}
	healthy := Derive(PaperInputs(0.05))
	if m.FlushLocality >= healthy.FlushLocality {
		t.Fatalf("model does not predict the locality gain: %v vs %v", m.FlushLocality, healthy.FlushLocality)
	}
}

func TestOverloadedFlushIsInfinite(t *testing.T) {
	in := PaperInputs(0.40) // 280 updates/s
	in.FlushXfer = 45 * sim.Millisecond
	m := Derive(in)
	if !math.IsInf(m.FlushBacklog, 1) {
		t.Fatalf("overloaded backlog finite: %v", m.FlushBacklog)
	}
	if m.FlushLocality != 0 {
		t.Fatalf("overloaded locality should be reported as 0, got %v", m.FlushLocality)
	}
}

func TestModelScalesWithMix(t *testing.T) {
	m5 := Derive(PaperInputs(0.05))
	m40 := Derive(PaperInputs(0.40))
	if m40.FWMinBlocks <= m5.FWMinBlocks {
		t.Fatal("FW space should grow with the long fraction")
	}
	if m40.Gen1MinBlocks <= m5.Gen1MinBlocks {
		t.Fatal("gen1 space should grow with the long fraction")
	}
	if m40.ELMemBytes <= m5.ELMemBytes || m40.FWMemBytes <= m5.FWMemBytes {
		t.Fatal("memory should grow with the long fraction")
	}
	// The paper's Figure 4 shape in closed form: EL's advantage shrinks.
	r5 := m5.FWMinBlocks / (m5.Gen0MinBlocks + m5.Gen1MinBlocks)
	r40 := m40.FWMinBlocks / (m40.Gen0MinBlocks + m40.Gen1MinBlocks)
	if r40 >= r5 {
		t.Fatalf("space ratio did not shrink with the mix: %v -> %v", r5, r40)
	}
}
