// Package analysis provides the closed-form performance model the paper
// gestures at ("familiarity with queueing theory suggests...", section 4):
// back-of-envelope predictions for log traffic, minimum disk space, flush
// utilization, backlog and I/O locality, derived purely from the workload
// parameters. The test suite checks the simulator against these
// predictions — theory validating simulation and vice versa — and the
// predictions make good starting points for the search harness and the
// adaptive controller.
package analysis

import (
	"math"

	"ellog/internal/core"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// Model holds the derived quantities for one workload configuration.
type Model struct {
	// Log traffic.
	UpdatesPerSec  float64 // data records per second
	LogBytesPerSec float64 // payload entering the log
	LogBlocksPS    float64 // block writes per second for a pure append log

	// Transaction population (Little's law: N = lambda * T).
	ActiveTxs float64 // mean concurrently active transactions

	// Space.
	FWMinBlocks   float64 // firewall: everything since the oldest active tx
	Gen0MinBlocks float64 // EL generation 0: short records must die in place
	Gen1MinBlocks float64 // EL generation 1 (no recirc): residual long records

	// Memory (the paper's per-entry estimates).
	FWMemBytes float64
	ELMemBytes float64

	// Flushing (M/D/1-ish).
	FlushRho      float64 // utilization
	FlushBacklog  float64 // mean queue length (whole array)
	FlushLocality float64 // expected inter-flush oid distance per drive
}

// Inputs bundles what the model needs.
type Inputs struct {
	Mix          workload.Mix
	ArrivalRate  float64
	NumObjects   uint64
	FlushDrives  int
	FlushXfer    sim.Time
	BlockPayload int      // default 2000
	TxRecSize    int      // default 8
	CommitDelay  sim.Time // mean group-commit delay; ~60 ms at the paper's rates
	ThresholdK   int      // default 2
}

// Derive computes the model.
func Derive(in Inputs) Model {
	if in.BlockPayload == 0 {
		in.BlockPayload = core.DefaultBlockPayload
	}
	if in.TxRecSize == 0 {
		in.TxRecSize = core.DefaultTxRecSize
	}
	if in.CommitDelay == 0 {
		// Mean time for a buffer to fill is payload/bytesPerSec; a commit
		// waits on average half of that plus the 15 ms transfer.
		bytesPS := in.Mix.LogBytesPerSecond(in.ArrivalRate, in.TxRecSize)
		in.CommitDelay = sim.Time(float64(in.BlockPayload)/bytesPS/2*float64(sim.Second)) +
			core.DefaultWriteLatency
	}
	if in.ThresholdK == 0 {
		in.ThresholdK = core.DefaultThresholdK
	}

	var m Model
	m.UpdatesPerSec = in.Mix.UpdatesPerSecond(in.ArrivalRate)
	m.LogBytesPerSec = in.Mix.LogBytesPerSecond(in.ArrivalRate, in.TxRecSize)
	m.LogBlocksPS = m.LogBytesPerSec / float64(in.BlockPayload)

	var maxLife, shortLife sim.Time
	for _, t := range in.Mix {
		if t.Lifetime > maxLife {
			maxLife = t.Lifetime
		}
		m.ActiveTxs += t.Prob * in.ArrivalRate * t.Lifetime.Seconds()
	}
	shortLife = maxLife
	for _, t := range in.Mix {
		if t.Lifetime < shortLife {
			shortLife = t.Lifetime
		}
	}

	// FW: the log must hold every record written during the longest
	// transaction's life (plus its commit acknowledgement), plus the gap.
	fwWindow := maxLife + in.CommitDelay
	m.FWMinBlocks = m.LogBlocksPS*fwWindow.Seconds() + float64(in.ThresholdK) + 1

	// EL generation 0: a record of the shortest (dominant) transactions,
	// written at worst right after BEGIN, must become garbage — commit
	// durable plus a small flush wait — before the head comes around.
	gen0Window := shortLife + in.CommitDelay + 2*in.FlushXfer
	m.Gen0MinBlocks = m.LogBlocksPS*gen0Window.Seconds() + float64(in.ThresholdK) + 1

	// EL generation 1 (no recirculation): the records surviving generation
	// 0 belong to longer transactions; they trickle in at the long types'
	// byte rate and must live out the rest of those lifetimes.
	longBytesPS := 0.0
	for _, t := range in.Mix {
		if t.Lifetime > shortLife {
			longBytesPS += t.Prob * in.ArrivalRate *
				(float64(t.NumRecords*t.RecordSize) + 2*float64(in.TxRecSize))
		}
	}
	gen0Transit := gen0Window
	residual := maxLife + in.CommitDelay - gen0Transit
	if residual < 0 {
		residual = 0
	}
	m.Gen1MinBlocks = longBytesPS/float64(in.BlockPayload)*residual.Seconds() +
		float64(in.ThresholdK) + 1

	// Memory.
	m.FWMemBytes = float64(core.MemPerTxFW) * m.ActiveTxs
	// EL's LTT also covers committed-but-unflushed transactions and the
	// LOT their updates; with healthy flushing the backlog is small, so
	// active transactions plus their in-flight updates dominate.
	unflushed := m.UpdatesPerSec * (in.CommitDelay.Seconds() + in.FlushXfer.Seconds()*2)
	liveUpdates := 0.0
	for _, t := range in.Mix {
		// Updates are written uniformly over the lifetime: half are
		// present on average while the transaction is active.
		liveUpdates += t.Prob * in.ArrivalRate * t.Lifetime.Seconds() * float64(t.NumRecords) / 2
	}
	m.ELMemBytes = float64(core.MemPerTxEL)*(m.ActiveTxs+unflushed/4) +
		float64(core.MemPerObjEL)*(liveUpdates+unflushed)

	// Flushing: D parallel drives, deterministic service.
	mu := float64(in.FlushDrives) / in.FlushXfer.Seconds()
	m.FlushRho = m.UpdatesPerSec / mu
	if m.FlushRho < 1 {
		// M/D/1 mean queue (waiting) per drive, times drives, plus those
		// in service.
		rho := m.FlushRho
		m.FlushBacklog = rho*rho/(2*(1-rho)) + rho*float64(in.FlushDrives)
	} else {
		m.FlushBacklog = math.Inf(1)
	}
	// Shortest-seek over q uniformly scattered pending oids in a drive's
	// range R wrapping circularly: E[min distance] ~ (R/2)/(q+1).
	perDrive := float64(in.NumObjects) / float64(in.FlushDrives)
	qPerDrive := m.FlushBacklog / float64(in.FlushDrives)
	if math.IsInf(qPerDrive, 1) {
		m.FlushLocality = 0
	} else {
		m.FlushLocality = perDrive / 2 / (qPerDrive + 1)
	}
	return m
}

// PaperInputs returns the inputs for the paper's frame at the given mix.
func PaperInputs(fracLong float64) Inputs {
	return Inputs{
		Mix:         workload.PaperMix(fracLong),
		ArrivalRate: 100,
		NumObjects:  10_000_000,
		FlushDrives: 10,
		FlushXfer:   25 * sim.Millisecond,
	}
}
