package multilog

import (
	"fmt"
	"testing"

	"ellog/internal/core"
	"ellog/internal/logrec"
	"ellog/internal/recovery"
	"ellog/internal/runner"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// smallSharded is a deliberately small sharded run — a couple of simulated
// seconds, a thousand objects per shard — so exhaustive crash sweeps stay
// within test budgets.
func smallSharded(shards int, crossFrac float64, seed uint64) ShardedConfig {
	return ShardedConfig{
		Seed:   seed,
		Shards: shards,
		LM: core.Params{
			Mode: core.ModeEphemeral, GenSizes: []int{10, 10},
			// Seal partial blocks quickly: with the load split across
			// shards, pure group commit would leave most of the run in
			// unsealed blocks and the crash sweep with almost no durable
			// events to crash at.
			GroupCommitTimeout: 20 * sim.Millisecond,
		},
		Flush: core.FlushConfig{Drives: 2, Transfer: 5 * sim.Millisecond, NumObjects: 1000},
		Workload: workload.Config{
			Mix: workload.Mix{
				{Name: "short", Prob: 1, Lifetime: 300 * sim.Millisecond, NumRecords: 2, RecordSize: 100},
			},
			ArrivalRate:    40,
			Runtime:        2 * sim.Second,
			CrossShardFrac: crossFrac,
		},
	}
}

func TestShardedRunCommitsCrossShard(t *testing.T) {
	live, err := RunSharded(smallSharded(3, 0.3, 1))
	if err != nil {
		t.Fatal(err)
	}
	live.Eng.Run(live.Eng.Now() + 30*sim.Second) // drain in-flight transactions
	ws := live.Gen.Stats()
	if ws.CrossStarted == 0 || ws.CrossCommitted == 0 {
		t.Fatalf("no cross-shard traffic: %+v", ws)
	}
	rs := live.Router.Stats()
	if rs.DistCommits == 0 || rs.LocalCommits == 0 {
		t.Fatalf("router saw no 2PC commits: %+v", rs)
	}
	if rs.DistCommits != ws.CrossCommitted {
		t.Fatalf("router acked %d distributed commits, workload saw %d", rs.DistCommits, ws.CrossCommitted)
	}
	// Distributed commits wait for prepare + decide durability, so their
	// end-to-end latency cannot undercut the local path's.
	if ws.CrossEndToEndMean < ws.LocalEndToEndMean {
		t.Fatalf("cross-shard mean %.4fs below local mean %.4fs", ws.CrossEndToEndMean, ws.LocalEndToEndMean)
	}
	for i := 0; i < live.Sys.Partitions(); i++ {
		if err := live.Sys.Partition(i).LM.CheckInvariants(); err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
	}
	// Crash now and recover: the merged state must be exactly the
	// acknowledged commits, cross-shard ones included.
	merged, report, err := live.Sys.RecoverAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.VerifyOracle(merged, live.Gen.Oracle()); err != nil {
		t.Fatal(err)
	}
	if len(report.Per) != 3 {
		t.Fatalf("%d partition recoveries", len(report.Per))
	}
}

// TestShardedByteIdentical re-runs one configuration and demands identical
// results — the determinism contract extended to the sharded system, 2PC
// callbacks included.
func TestShardedByteIdentical(t *testing.T) {
	run := func() string {
		live, err := RunSharded(smallSharded(3, 0.3, 7))
		if err != nil {
			t.Fatal(err)
		}
		_, report, err := live.Sys.RecoverAll(0)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v\n%+v\n%+v\n%+v",
			live.Gen.Stats(), live.Router.Stats(), live.Sys.Stats(), report)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two runs of the same sharded config diverged:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestMemPeakStaggered is the regression test for the multilog Stats.MemPeak
// bug: partitions loaded at different times peak at different times, so the
// sum of per-partition peaks overstates the true simultaneous footprint.
// The combined gauge must report the peak of the sum, not the sum of peaks.
func TestMemPeakStaggered(t *testing.T) {
	eng := sim.NewEngine(5, 6)
	sys, err := New(eng, 2, core.Params{
		Mode: core.ModeEphemeral, GenSizes: []int{20, 16}, Recirculate: true,
		// Pure group commit would leave each partition's last COMMIT in an
		// unsealed block forever, freezing its memory at the peak; the
		// timeout lets the early partition drain before the late one loads.
		GroupCommitTimeout: 50 * sim.Millisecond,
	}, core.FlushConfig{Drives: 4, Transfer: 5 * sim.Millisecond, NumObjects: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Partition 0 carries transactions early, partition 1 late; neither is
	// loaded while the other is.
	load := func(part int, tid logrec.TxID, at sim.Time) {
		lm := sys.Partition(part).LM
		eng.At(at, func() {
			lm.BeginHinted(tid, 0)
			for j := 0; j < 20; j++ {
				lm.WriteData(tid, logrec.OID(int(tid)*100+j), 100)
			}
		})
		eng.At(at+2*sim.Second, func() { lm.Commit(tid, func() {}) })
	}
	load(0, 1, 0)
	load(0, 2, 100*sim.Millisecond)
	load(1, 3, 20*sim.Second)
	load(1, 4, 20*sim.Second+100*sim.Millisecond)
	eng.Run(40 * sim.Second)

	st := sys.Stats()
	sumOfPeaks := st.PerPartition[0].MemPeakBytes + st.PerPartition[1].MemPeakBytes
	if st.MemPeak <= 0 {
		t.Fatal("no combined memory peak recorded")
	}
	for i, p := range st.PerPartition {
		if st.MemPeak < p.MemPeakBytes {
			t.Fatalf("combined peak %.0f below partition %d's own peak %.0f", st.MemPeak, i, p.MemPeakBytes)
		}
	}
	if st.MemPeak >= sumOfPeaks {
		t.Fatalf("combined peak %.0f not below sum of per-partition peaks %.0f — staggered load should separate them",
			st.MemPeak, sumOfPeaks)
	}
}

// TestCrossCampaignAtomicity sweeps crash points across the whole run —
// in particular through every 2PC window — and demands that recovery never
// splits a cross-shard transaction: committed on all its shards or absent
// from all of them.
func TestCrossCampaignAtomicity(t *testing.T) {
	res, err := RunCrossCampaign(CrossCampaignConfig{
		Base:      smallSharded(3, 0.3, 1),
		MaxPoints: 200,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("atomicity violated:\n%s", res)
	}
	if res.CrossCommitted == 0 {
		t.Fatal("campaign base committed no cross-shard transactions — sweep proves nothing")
	}
	// The sweep must actually have landed inside the 2PC window, both ways:
	// crashes after a PREPARE but before the decision (presumed abort, the
	// coordinator-crash case) and crashes after the DECIDE with the
	// participant still in doubt (resolved commit).
	if res.ResolvedAbort == 0 {
		t.Fatalf("no crash point exercised presumed abort: %s", res)
	}
	if res.ResolvedCommit == 0 {
		t.Fatalf("no crash point exercised in-doubt commit resolution: %s", res)
	}
}

// TestCrossCampaignParallelMatchesSequential runs the same sweep with and
// without a worker pool; point outcomes are assembled in point order, so
// the results must be byte-identical.
func TestCrossCampaignParallelMatchesSequential(t *testing.T) {
	cfg := CrossCampaignConfig{Base: smallSharded(2, 0.25, 3), MaxPoints: 60}
	seq, err := RunCrossCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCrossCampaign(cfg, runner.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", seq) != fmt.Sprintf("%+v", par) {
		t.Fatalf("parallel campaign diverged from sequential:\n--- sequential\n%+v\n--- parallel\n%+v", seq, par)
	}
}
