package multilog

import (
	"fmt"

	"ellog/internal/logrec"
	"ellog/internal/metrics"
	"ellog/internal/sim"
)

// Router is the sharded system's transaction interface: it satisfies
// workload.LogManager over GLOBAL object identifiers, routing each record
// to the shard owning its object and running two-phase commit in the log
// for transactions that touch more than one shard.
//
// The protocol is 2PC with presumed abort, written entirely as log
// records:
//
//   - A shard is enlisted lazily on the transaction's first write to it
//     (a BEGIN record enters that shard's log). The first-touched shard
//     is the coordinator.
//   - Commit of a multi-shard transaction logs a PREPARE record on every
//     participant (non-coordinator) shard. A durable PREPARE makes that
//     branch in-doubt: it can no longer be killed or aborted locally, so
//     it pins its shard's generation retirement until resolved.
//   - When every PREPARE is durable, the coordinator logs the DECIDE
//     record — simultaneously its own COMMIT and the global decision.
//     The transaction is acknowledged when the DECIDE is durable, and
//     the participants' branches are then resolved as committed.
//   - Abort (a space-pressure kill on any enlisted shard before the
//     decision) is never logged: the router aborts the sibling branches
//     in memory, and a crashed shard replaying a durable PREPARE with no
//     durable DECIDE anywhere presumes abort.
//
// The coordinator's DECIDE record is pinned in its log (core's pin count)
// until every remote participant branch retires, so an in-doubt PREPARE
// can always find the durable decision it needs.
type Router struct {
	sys    *System
	onKill func(logrec.TxID)
	txs    map[logrec.TxID]*routedTx

	localCommits metrics.Counter // single-shard transactions acknowledged
	distCommits  metrics.Counter // cross-shard transactions acknowledged
	aborted      metrics.Counter // cross-shard transactions aborted by a branch kill
}

// routedTx tracks one in-flight transaction's enlistment and 2PC state.
type routedTx struct {
	hint sim.Time
	// shards in enlistment order; shards[0] is the coordinator.
	shards []int
	// pendingPrepares counts participant PREPARE records not yet durable.
	pendingPrepares int
	killed          bool
	onDurable       func()
}

// NewRouter builds a router over the system and installs itself as every
// partition manager's kill handler (kills must fan out to a victim's
// sibling branches on other shards).
func NewRouter(sys *System) *Router {
	r := &Router{sys: sys, txs: make(map[logrec.TxID]*routedTx)}
	for i, p := range sys.parts {
		shard := i
		p.LM.SetKillHandler(func(tid logrec.TxID) { r.branchKilled(shard, tid) })
	}
	return r
}

// enlisted reports whether the transaction already has a branch on shard.
func (rt *routedTx) enlisted(shard int) bool {
	for _, s := range rt.shards {
		if s == shard {
			return true
		}
	}
	return false
}

// BeginHinted registers the transaction. No shard is touched yet: shards
// are enlisted lazily on first write, so a BEGIN record enters only the
// logs the transaction actually uses.
func (r *Router) BeginHinted(tid logrec.TxID, expected sim.Time) {
	if _, ok := r.txs[tid]; ok {
		panic(fmt.Sprintf("multilog: BeginHinted of existing transaction %d", tid))
	}
	r.txs[tid] = &routedTx{hint: expected}
}

// WriteData routes an update to the shard owning its object, enlisting
// the shard first if this is the transaction's first touch of it. A zero
// LSN means the transaction was killed during the write (the caller's
// kill handler has already fired).
func (r *Router) WriteData(tid logrec.TxID, oid logrec.OID, size int) logrec.LSN {
	rt, ok := r.txs[tid]
	if !ok {
		panic(fmt.Sprintf("multilog: WriteData on unknown transaction %d", tid))
	}
	shard := r.sys.OwnerOf(oid)
	if shard < 0 {
		panic(fmt.Sprintf("multilog: object %d outside the %d-object space of %d shards",
			oid, r.sys.totalObjects, len(r.sys.parts)))
	}
	if rt.killed {
		return 0
	}
	if !rt.enlisted(shard) {
		// Enlist: the branch's BEGIN enters the shard's log. The append's
		// space-making cascade can kill this very transaction (or another,
		// whose abort fans out through the router) — re-check before
		// writing.
		r.sys.parts[shard].LM.BeginHinted(tid, rt.hint)
		rt.shards = append(rt.shards, shard)
		if rt.killed {
			return 0
		}
	}
	return r.sys.parts[shard].LM.WriteData(tid, r.sys.localOID(shard, oid), size)
}

// Commit requests commit. A single-shard transaction commits locally
// (one COMMIT record, group-commit acknowledgement as ever); a
// cross-shard transaction runs the 2PC described on Router. onDurable
// fires when the commit — for cross-shard transactions, the DECIDE
// record — is durable.
func (r *Router) Commit(tid logrec.TxID, onDurable func()) {
	rt, ok := r.txs[tid]
	if !ok {
		panic(fmt.Sprintf("multilog: Commit on unknown transaction %d", tid))
	}
	if rt.killed {
		return
	}
	switch len(rt.shards) {
	case 0:
		// Never wrote anything: nothing was logged anywhere, so there is
		// nothing to make durable.
		delete(r.txs, tid)
		r.localCommits.Inc()
		if onDurable != nil {
			onDurable()
		}
	case 1:
		r.sys.parts[rt.shards[0]].LM.Commit(tid, func() {
			delete(r.txs, tid)
			r.localCommits.Inc()
			if onDurable != nil {
				onDurable()
			}
		})
	default:
		rt.onDurable = onDurable
		rt.pendingPrepares = len(rt.shards) - 1
		for _, s := range rt.shards[1:] {
			r.sys.parts[s].LM.Prepare(tid, func() { r.branchPrepared(tid) })
		}
	}
}

// branchPrepared runs when one participant's PREPARE record becomes
// durable; the last one triggers the coordinator's DECIDE.
func (r *Router) branchPrepared(tid logrec.TxID) {
	rt, ok := r.txs[tid]
	if !ok || rt.killed {
		return // aborted while the prepare was in flight
	}
	rt.pendingPrepares--
	if rt.pendingPrepares > 0 {
		return
	}
	// All participants voted; the coordinator (still txActive — it never
	// prepares) writes the decision, pinned until every remote branch
	// retires.
	r.sys.parts[rt.shards[0]].LM.DecideCommit(tid, len(rt.shards)-1, func() { r.decided(tid) })
}

// decided runs when the DECIDE record is durable: the transaction is
// globally committed. The participants' branches are resolved, each
// unpinning the coordinator when it retires, and the client is
// acknowledged — durability is claimed only now, with the decision on
// disk.
func (r *Router) decided(tid logrec.TxID) {
	rt, ok := r.txs[tid]
	if !ok {
		return
	}
	coord := r.sys.parts[rt.shards[0]].LM
	for _, s := range rt.shards[1:] {
		r.sys.parts[s].LM.ResolveCommit(tid, func() { coord.Unpin(tid) })
	}
	delete(r.txs, tid)
	r.distCommits.Inc()
	if rt.onDurable != nil {
		rt.onDurable()
	}
}

// branchKilled is a partition manager's kill callback: shard killed its
// branch of tid for want of log space. The other enlisted branches are
// aborted — they are all pre-decision (a prepared branch is unkillable
// and the coordinator decides only after every vote), so unilateral abort
// is safe — and the workload's kill handler fires once for the whole
// transaction.
func (r *Router) branchKilled(shard int, tid logrec.TxID) {
	rt, ok := r.txs[tid]
	if !ok || rt.killed {
		return
	}
	rt.killed = true
	for _, s := range rt.shards {
		if s == shard {
			continue
		}
		// ResolveAbort drops the branch without firing kill callbacks, so
		// the fan-out cannot recurse.
		r.sys.parts[s].LM.ResolveAbort(tid)
	}
	if len(rt.shards) > 1 {
		r.aborted.Inc()
	}
	delete(r.txs, tid)
	if r.onKill != nil {
		r.onKill(tid)
	}
}

// SetKillHandler registers the workload's kill callback, invoked once per
// killed transaction regardless of how many shards it had enlisted.
func (r *Router) SetKillHandler(fn func(logrec.TxID)) { r.onKill = fn }

// RouterStats counts the router's commit outcomes.
type RouterStats struct {
	LocalCommits uint64 // single-shard transactions acknowledged
	DistCommits  uint64 // cross-shard transactions acknowledged (2PC)
	Aborted      uint64 // cross-shard transactions aborted by a branch kill
	InFlight     int    // transactions still tracked
}

// Stats snapshots the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		LocalCommits: r.localCommits.Count(),
		DistCommits:  r.distCommits.Count(),
		Aborted:      r.aborted.Count(),
		InFlight:     len(r.txs),
	}
}
