package multilog

import (
	"reflect"
	"testing"

	"ellog/internal/core"
	"ellog/internal/harness"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// smallPDES mirrors smallSharded at PDES scale: a few simulated seconds,
// a thousand objects per shard, quick group commit so blocks seal.
func smallPDES(shards, workers int, crossFrac float64, seed uint64) PDESConfig {
	return PDESConfig{
		Seed:    seed,
		Shards:  shards,
		Workers: workers,
		LM: core.Params{
			Mode: core.ModeEphemeral, GenSizes: []int{10, 10},
			GroupCommitTimeout: 20 * sim.Millisecond,
		},
		Flush: core.FlushConfig{Drives: 2, Transfer: 5 * sim.Millisecond, NumObjects: 1000},
		Workload: workload.Config{
			Mix: workload.Mix{
				{Name: "short", Prob: 0.8, Lifetime: 300 * sim.Millisecond, NumRecords: 2, RecordSize: 100},
				{Name: "long", Prob: 0.2, Lifetime: 900 * sim.Millisecond, NumRecords: 3, RecordSize: 100},
			},
			ArrivalRate: 40,
			Runtime:     4 * sim.Second,
		},
		CrossFrac: crossFrac,
	}
}

// TestPDESWorkerInvariance is the CI determinism matrix in miniature: the
// full model (base and xshard configs) run under every worker count must
// produce byte-identical reports to the 1-worker sequential reference.
func TestPDESWorkerInvariance(t *testing.T) {
	cases := []struct {
		name      string
		crossFrac float64
	}{
		{"base", 0},
		{"xshard", 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ref, err := RunPDES(smallPDES(4, 1, tc.crossFrac, 12345))
			if err != nil {
				t.Fatal(err)
			}
			if ref.Events == 0 || ref.Committed == 0 {
				t.Fatalf("vacuous reference run: %+v", ref)
			}
			if tc.crossFrac > 0 && ref.Delivered == 0 {
				t.Fatal("xshard run produced no cross-LP events")
			}
			for _, workers := range []int{2, 4, 8} {
				_, got, err := RunPDES(smallPDES(4, workers, tc.crossFrac, 12345))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("workers=%d stats diverged from sequential reference:\nref: %+v\ngot: %+v", workers, ref, got)
				}
				if got.String() != ref.String() {
					t.Fatalf("workers=%d report text diverged:\nref:\n%s\ngot:\n%s", workers, ref, got)
				}
			}
		})
	}
}

// TestPDESSingleShardReducesToHarness is the reduction theorem at the
// model level: a 1-shard base-mode PDES run is bit-for-bit the classic
// single-engine harness run of the same configuration — same seeds, same
// generator calls, same stats.
func TestPDESSingleShardReducesToHarness(t *testing.T) {
	cfg := smallPDES(1, 4, 0, 99)
	seqCfg := harness.Config{
		Seed:     cfg.Seed,
		LM:       cfg.LM,
		Flush:    cfg.Flush,
		Workload: cfg.Workload,
	}
	seqCfg.Workload.NumObjects = cfg.Flush.NumObjects
	want, err := harness.Run(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	live, got, err := RunPDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PerShard) != 1 {
		t.Fatalf("%d shards in stats, want 1", len(got.PerShard))
	}
	if !reflect.DeepEqual(got.PerShard[0], want.LM) {
		t.Fatalf("LM stats diverged:\nharness: %+v\npdes:    %+v", want.LM, got.PerShard[0])
	}
	if ws := live.Shards[0].Gen.Stats(); !reflect.DeepEqual(ws, want.Workload) {
		t.Fatalf("workload stats diverged:\nharness: %+v\npdes:    %+v", want.Workload, ws)
	}
}

// TestPDESCrossCommitsAndRecovers drains an xshard run and checks the 2PC
// overlay's accounting, the managers' internal invariants, and that each
// shard's crash image recovers to exactly the acknowledged local commits.
func TestPDESCrossCommitsAndRecovers(t *testing.T) {
	live, err := BuildPDES(smallPDES(3, 2, 0.3, 7))
	if err != nil {
		t.Fatal(err)
	}
	live.Run()
	// Drain in-flight transactions and protocol messages.
	live.PE.Run(live.PE.LP(0).Now() + 30*sim.Second)
	st := live.Stats()
	if st.CrossStarted == 0 || st.CrossCommitted == 0 {
		t.Fatalf("no cross-shard traffic: %+v", st)
	}
	if st.Delivered == 0 {
		t.Fatal("cross-shard run delivered no cross-LP events")
	}
	// The overlay path pays a message delay each way plus prepare and
	// decide durability, so it cannot undercut the local commit path.
	if st.CrossE2EMean < st.E2EMean/2 {
		t.Fatalf("cross e2e mean %.4fs implausibly low vs overall %.4fs", st.CrossE2EMean, st.E2EMean)
	}
	var inflight int
	for _, s := range live.Shards {
		if err := s.Setup.LM.CheckInvariants(); err != nil {
			t.Fatalf("shard %d: %v", s.LP.Index(), err)
		}
		inflight += len(s.cross.out) + len(s.cross.in)
	}
	if inflight != 0 {
		t.Fatalf("%d overlay transactions still in flight after drain", inflight)
	}
	for _, s := range live.Shards {
		c := s.cross
		if c.Started() != c.Committed()+c.Aborted() {
			t.Fatalf("shard %d overlay accounting: started %d != committed %d + aborted %d",
				s.LP.Index(), c.Started(), c.Committed(), c.Aborted())
		}
	}
}

// TestPDESNestedParallelismGuard exercises the named panic: a Workers>1
// run refuses to start while another parallel run owns the process slot.
func TestPDESNestedParallelismGuard(t *testing.T) {
	if !pdesActive.CompareAndSwap(0, 1) {
		t.Fatal("parallel-run slot unexpectedly taken")
	}
	defer pdesActive.Store(0)
	live, err := BuildPDES(smallPDES(2, 2, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("nested Workers>1 run did not panic")
		}
		if msg, ok := r.(string); !ok || msg != ErrNestedParallelism {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	live.Run()
}

// TestPDESSequentialRunsInsidePool checks the documented composition rule:
// Workers=1 PDES runs may fan out across runner.Pool goroutines freely —
// the guard only rejects parallel (Workers>1) overlap.
func TestPDESSequentialRunsInsidePool(t *testing.T) {
	if !pdesActive.CompareAndSwap(0, 1) {
		t.Fatal("parallel-run slot unexpectedly taken")
	}
	defer pdesActive.Store(0)
	if _, _, err := RunPDES(smallPDES(2, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestPDESConfigValidation covers BuildPDES's rejection paths.
func TestPDESConfigValidation(t *testing.T) {
	bad := []func(*PDESConfig){
		func(c *PDESConfig) { c.Shards = 0 },
		func(c *PDESConfig) { c.CrossFrac = 1.0 },
		func(c *PDESConfig) { c.CrossFrac = -0.1 },
		func(c *PDESConfig) { c.Shards = 1; c.CrossFrac = 0.5 },
		func(c *PDESConfig) { c.Flush.NumObjects = 4; c.CrossFrac = 0.5 },
	}
	for i, mutate := range bad {
		cfg := smallPDES(4, 1, 0, 1)
		mutate(&cfg)
		if _, err := BuildPDES(cfg); err == nil {
			t.Errorf("case %d: config accepted, want error", i)
		}
	}
}
