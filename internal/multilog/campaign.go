package multilog

import (
	"fmt"
	"strings"

	"ellog/internal/logrec"
	"ellog/internal/recovery"
	"ellog/internal/runner"
	"ellog/internal/sim"
	"ellog/internal/trace"
)

// CrossPoint is one crash point in a cross-shard campaign: stop the whole
// simulated machine immediately after the K-th completed block write
// (counting across every shard's log), then crash either everything or a
// single shard.
type CrossPoint struct {
	Index int
	K     int // ordinal of the triggering durable event (1-based)
	// Shard -1 crashes the whole machine (every shard recovers from its
	// image); otherwise only this shard crashes and recovers against the
	// other shards' intact logs.
	Shard int
}

func (p CrossPoint) String() string {
	if p.Shard < 0 {
		return fmt.Sprintf("whole-machine crash at durable #%d", p.K)
	}
	return fmt.Sprintf("shard %d crash at durable #%d", p.Shard, p.K)
}

// CrossFailure describes one crash point where cross-shard atomicity or
// the recovery property did not hold.
type CrossFailure struct {
	Point  CrossPoint
	Reason string
}

// CrossCampaignConfig parameterizes a cross-shard crash sweep.
type CrossCampaignConfig struct {
	Base ShardedConfig
	// Horizon is how far each run may execute before it is considered
	// drained; 0 selects Runtime + 30 s.
	Horizon sim.Time
	// MaxPoints bounds the sweep by stride-sampling; 0 sweeps everything.
	MaxPoints int
}

func (c CrossCampaignConfig) withDefaults() CrossCampaignConfig {
	if c.Horizon == 0 {
		c.Horizon = c.Base.Workload.Runtime + 30*sim.Second
	}
	return c
}

// CrossCampaignResult summarizes a sweep.
type CrossCampaignResult struct {
	Durables     int // block-write completions in the reference run, all shards
	Points       int // crash points actually swept (after sampling)
	WholeMachine int
	SingleShard  int

	// 2PC resolution work across all points' recoveries: how often a
	// crash landed inside the prepare window and how the in-doubt
	// branches were settled.
	InDoubt        int
	ResolvedCommit int
	ResolvedAbort  int

	// Reference-run workload shape, to confirm the sweep exercised 2PC.
	CrossStarted   uint64
	CrossCommitted uint64

	Failures []CrossFailure
}

// Passed reports whether every swept point upheld atomicity.
func (r CrossCampaignResult) Passed() bool { return len(r.Failures) == 0 }

// String renders a one-screen summary.
func (r CrossCampaignResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cross-shard campaign: %d points (%d whole-machine, %d single-shard) over a run of %d durables\n",
		r.Points, r.WholeMachine, r.SingleShard, r.Durables)
	fmt.Fprintf(&b, "  workload: %d cross-shard transactions started, %d committed\n",
		r.CrossStarted, r.CrossCommitted)
	fmt.Fprintf(&b, "  in-doubt branches: %d total, %d resolved commit, %d presumed abort\n",
		r.InDoubt, r.ResolvedCommit, r.ResolvedAbort)
	if r.Passed() {
		b.WriteString("  PASS: every point recovered to exactly the acknowledged commits on every shard\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %d points violated atomicity\n", len(r.Failures))
		for i, f := range r.Failures {
			if i == 10 {
				fmt.Fprintf(&b, "    ... and %d more\n", len(r.Failures)-10)
				break
			}
			fmt.Fprintf(&b, "    %v: %s\n", f.Point, f.Reason)
		}
	}
	return b.String()
}

// RunCrossCampaign sweeps crash points over a sharded run. A reference
// run counts block-write completions across all shards; then every
// sampled point replays the identical simulation, stops the machine at
// the point's trigger, recovers — the whole machine or one shard — and
// verifies against the workload oracle.
//
// The property checked is cross-shard atomicity on top of the usual
// recovery contract: at every point, each acknowledged transaction's
// updates are recovered on every shard it touched, and no unacknowledged
// transaction's updates survive anywhere — a cross-shard transaction
// never recovers committed on one shard and aborted on another. Crashes
// are clean (the trigger's synchronous effects, including commit
// acknowledgements, complete before the stop), so acknowledged and
// decision-durable coincide exactly and the oracle check is strict in
// both directions.
//
// Points are independent simulations; a pool parallelizes them and
// results are assembled in point order, keeping parallel and sequential
// campaigns byte-identical.
func RunCrossCampaign(cfg CrossCampaignConfig, pool *runner.Pool) (CrossCampaignResult, error) {
	cfg = cfg.withDefaults()
	var res CrossCampaignResult

	// Reference run: count durable block writes across every shard. Every
	// point replays the same seed, so ordinal K identifies the same write
	// completion in every replay.
	ref, err := BuildSharded(cfg.Base)
	if err != nil {
		return res, err
	}
	tr := trace.Func(func(e trace.Event) {
		if e.Kind == trace.EvDurable {
			res.Durables++
		}
	})
	for i := 0; i < ref.Sys.Partitions(); i++ {
		ref.Sys.Partition(i).LM.SetTracer(tr)
	}
	ref.Eng.Run(cfg.Horizon)
	ws := ref.Gen.Stats()
	res.CrossStarted = ws.CrossStarted
	res.CrossCommitted = ws.CrossCommitted

	// Two points per durable: the whole machine, and one shard (rotating
	// through them so every shard crashes at many different instants).
	points := make([]CrossPoint, 0, 2*res.Durables)
	for k := 1; k <= res.Durables; k++ {
		points = append(points, CrossPoint{K: k, Shard: -1})
		points = append(points, CrossPoint{K: k, Shard: (k - 1) % cfg.Base.Shards})
	}
	if cfg.MaxPoints > 0 && len(points) > cfg.MaxPoints {
		stride := (len(points) + cfg.MaxPoints - 1) / cfg.MaxPoints
		sampled := points[:0]
		for i := 0; i < len(points); i += stride {
			sampled = append(sampled, points[i])
		}
		points = sampled
	}
	for i := range points {
		points[i].Index = i
	}

	type outcome struct {
		inDoubt, resolvedCommit, resolvedAbort int
		reason                                 string // empty: property held
	}
	outcomes := make([]outcome, len(points))
	err = pool.ForEach(len(points), func(i int) error {
		return pool.Do(func() error {
			report, verr, berr := runCrossPoint(cfg, points[i])
			if berr != nil {
				return berr
			}
			outcomes[i] = outcome{
				inDoubt:        report.InDoubt,
				resolvedCommit: report.ResolvedCommit,
				resolvedAbort:  report.ResolvedAbort,
			}
			if verr != nil {
				outcomes[i].reason = verr.Error()
			}
			return nil
		})
	})
	if err != nil {
		return res, err
	}

	for i, o := range outcomes {
		res.Points++
		if points[i].Shard < 0 {
			res.WholeMachine++
		} else {
			res.SingleShard++
		}
		res.InDoubt += o.inDoubt
		res.ResolvedCommit += o.resolvedCommit
		res.ResolvedAbort += o.resolvedAbort
		if o.reason != "" {
			res.Failures = append(res.Failures, CrossFailure{Point: points[i], Reason: o.reason})
		}
	}
	return res, nil
}

// runCrossPoint replays the base run, crashes it at the point, recovers
// and verifies. The returned error pair is (property violation,
// infrastructure error).
func runCrossPoint(cfg CrossCampaignConfig, pt CrossPoint) (RecoveryReport, error, error) {
	live, err := BuildSharded(cfg.Base)
	if err != nil {
		return RecoveryReport{}, nil, err
	}
	n := 0
	tr := trace.Func(func(e trace.Event) {
		if e.Kind == trace.EvDurable {
			n++
			if n == pt.K {
				live.Eng.Stop()
			}
		}
	})
	for i := 0; i < live.Sys.Partitions(); i++ {
		live.Sys.Partition(i).LM.SetTracer(tr)
	}
	live.Eng.Run(cfg.Horizon)
	if n < pt.K {
		return RecoveryReport{}, nil, fmt.Errorf("multilog: %v never reached (saw %d of %d durables; replay diverged?)", pt, n, pt.K)
	}

	oracle := live.Gen.Oracle()
	if pt.Shard < 0 {
		merged, report, rerr := live.Sys.RecoverAll(0)
		if rerr != nil {
			return report, fmt.Errorf("recovery failed: %v", rerr), nil
		}
		// Clean crash: a winner on any shard must have been acknowledged —
		// in particular, a participant branch resolved as committed without
		// the client ever hearing the decision would show up here.
		for i, per := range report.Per {
			for _, tx := range per.WinnerTxs {
				if !live.Gen.TxInfo(tx).Acked {
					return report, fmt.Errorf("shard %d: tx %d recovered as a winner without acknowledgement", i, tx), nil
				}
			}
		}
		return report, recovery.VerifyOracle(merged, oracle), nil
	}
	// Single-shard crash: the shard's recovered state must match the
	// oracle restricted to its object range — its slice of every
	// acknowledged cross-shard transaction included, even when the
	// coordinator was elsewhere.
	shardDB, report, rerr := live.Sys.RecoverShard(pt.Shard, 0)
	if rerr != nil {
		return report, fmt.Errorf("recovery failed: %v", rerr), nil
	}
	restricted := make(map[logrec.OID]logrec.LSN)
	for oid, lsn := range oracle {
		if live.Sys.OwnerOf(oid) == pt.Shard {
			restricted[oid] = lsn
		}
	}
	return report, recovery.VerifyOracle(shardDB, restricted), nil
}
