// Package multilog composes ephemeral logging across a shared-nothing
// highly concurrent system — the setting the paper's introduction
// motivates: "the advent of highly concurrent systems consisting of
// hundreds or thousands of processors has offered much greater processing
// power, but has made synchronization much more difficult. Traditionally,
// checkpointing has been a part of all DBMS designs [and] relies on some
// form of synchronization of activity in the entire system."
//
// Because EL needs no checkpoints, partitions need no cross-log
// synchronization at all: each partition runs its own logging manager over
// its own generations, flush drives and slice of the object space (range
// partitioning, as in the parallel database systems of the paper's
// reference [3], DeWitt & Gray). Transactions are routed to the partition
// owning their objects. Crash recovery is embarrassingly parallel — each
// partition replays its own small log — so recovery time is the maximum
// over partitions, not the sum.
package multilog

import (
	"fmt"

	"ellog/internal/core"
	"ellog/internal/logrec"
	"ellog/internal/recovery"
	"ellog/internal/sim"
	"ellog/internal/statedb"
)

// System is a set of independent EL partitions sharing one simulated
// machine (engine) and nothing else.
type System struct {
	eng   *sim.Engine
	parts []*core.Setup
	// objectsPerPart is each partition's object-range width; partition p
	// owns oids [p*objectsPerPart, (p+1)*objectsPerPart).
	objectsPerPart uint64
}

// New builds a system of n identical partitions. Each partition gets its
// own log (params.GenSizes blocks), its own flush drives and the object
// range [i*fc.NumObjects, (i+1)*fc.NumObjects).
func New(eng *sim.Engine, n int, params core.Params, fc core.FlushConfig) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("multilog: need at least one partition")
	}
	sys := &System{eng: eng, objectsPerPart: fc.NumObjects}
	for i := 0; i < n; i++ {
		setup, err := core.NewSetup(eng, params, fc)
		if err != nil {
			return nil, fmt.Errorf("multilog: partition %d: %w", i, err)
		}
		sys.parts = append(sys.parts, setup)
	}
	return sys, nil
}

// Partitions reports the partition count.
func (s *System) Partitions() int { return len(s.parts) }

// Partition returns one partition's components.
func (s *System) Partition(i int) *core.Setup { return s.parts[i] }

// OwnerOf returns the partition index owning an object.
func (s *System) OwnerOf(oid logrec.OID) int {
	return int(uint64(oid) / s.objectsPerPart)
}

// Sink returns partition i's transaction interface in GLOBAL object
// coordinates: the partition internally works on its local object range
// [0, NumObjects) (its flush drives are range partitioned over exactly
// that), and the sink translates. It satisfies workload.LogManager.
func (s *System) Sink(i int) *PartitionSink {
	return &PartitionSink{sys: s, part: i, base: uint64(i) * s.objectsPerPart}
}

// PartitionSink routes one partition's transactions, translating global
// object identifiers to the partition's local range.
type PartitionSink struct {
	sys  *System
	part int
	base uint64
}

// BeginHinted starts a transaction on the partition.
func (ps *PartitionSink) BeginHinted(tid logrec.TxID, expected sim.Time) {
	ps.sys.parts[ps.part].LM.BeginHinted(tid, expected)
}

// WriteData logs an update; oid is global and must belong to the
// partition.
func (ps *PartitionSink) WriteData(tid logrec.TxID, oid logrec.OID, size int) logrec.LSN {
	local := uint64(oid) - ps.base
	if local >= ps.sys.objectsPerPart {
		panic(fmt.Sprintf("multilog: object %d routed to partition %d (owner %d)",
			oid, ps.part, ps.sys.OwnerOf(oid)))
	}
	return ps.sys.parts[ps.part].LM.WriteData(tid, logrec.OID(local), size)
}

// Commit requests commit; onDurable fires at the group-commit ack.
func (ps *PartitionSink) Commit(tid logrec.TxID, onDurable func()) {
	ps.sys.parts[ps.part].LM.Commit(tid, onDurable)
}

// SetKillHandler registers the kill callback for this partition.
func (ps *PartitionSink) SetKillHandler(fn func(logrec.TxID)) {
	ps.sys.parts[ps.part].LM.SetKillHandler(fn)
}

// Stats aggregates all partitions.
type Stats struct {
	PerPartition []core.Stats
	TotalBlocks  int
	TotalWrites  uint64
	Bandwidth    float64
	Killed       uint64
	MemPeak      float64
}

// Stats snapshots every partition.
func (s *System) Stats() Stats {
	var out Stats
	for _, p := range s.parts {
		st := p.LM.Stats()
		out.PerPartition = append(out.PerPartition, st)
		out.TotalBlocks += st.TotalBlocks
		out.TotalWrites += st.TotalWrites
		out.Bandwidth += st.TotalBandwidth
		out.Killed += st.Killed
		out.MemPeak += st.MemPeakBytes
	}
	return out
}

// Insufficient reports whether any partition exceeded its budget.
func (s *System) Insufficient() bool {
	for _, p := range s.parts {
		if p.LM.Stats().Insufficient() {
			return true
		}
	}
	return false
}

// RecoverAll recovers every partition independently and merges the
// results. Returned alongside are the per-partition recovery details and
// the parallel recovery time: since no partition needs any other, wall
// time is the slowest partition — the payoff of checkpoint-free logs.
func (s *System) RecoverAll(blockRead sim.Time) (*statedb.DB, []recovery.Result, sim.Time, error) {
	merged := statedb.New()
	var results []recovery.Result
	var slowest sim.Time
	for i, p := range s.parts {
		rec, res, err := recovery.Recover(p.Dev, p.DB, blockRead)
		if err != nil {
			return nil, results, slowest, fmt.Errorf("multilog: partition %d: %w", i, err)
		}
		results = append(results, res)
		if res.EstimatedTime > slowest {
			slowest = res.EstimatedTime
		}
		base := uint64(i) * s.objectsPerPart
		var mergeErr error
		rec.Range(func(oid logrec.OID, v statedb.Version) bool {
			if uint64(oid) >= s.objectsPerPart {
				mergeErr = fmt.Errorf("multilog: partition %d recovered out-of-range local object %d", i, oid)
				return false
			}
			merged.ForceSet(logrec.OID(base+uint64(oid)), v)
			return true
		})
		if mergeErr != nil {
			return nil, results, slowest, mergeErr
		}
	}
	return merged, results, slowest, nil
}
