// Package multilog composes ephemeral logging across a shared-nothing
// highly concurrent system — the setting the paper's introduction
// motivates: "the advent of highly concurrent systems consisting of
// hundreds or thousands of processors has offered much greater processing
// power, but has made synchronization much more difficult. Traditionally,
// checkpointing has been a part of all DBMS designs [and] relies on some
// form of synchronization of activity in the entire system."
//
// Because EL needs no checkpoints, partitions need no cross-log
// synchronization for local work: each partition runs its own logging
// manager over its own generations, flush drives and slice of the object
// space (range partitioning, as in the parallel database systems of the
// paper's reference [3], DeWitt & Gray). Transactions touching a single
// partition are routed to it outright; transactions spanning several run
// two-phase commit in the log itself (see Router): participants log
// PREPARE records, the coordinator logs the DECIDE record, and no shard
// ever needs a synchronized checkpoint — the decision lives in a log that
// is always small enough to replay in full. Crash recovery replays each
// partition's own small log in parallel, then resolves in-doubt prepared
// branches against the coordinator logs' decision records.
package multilog

import (
	"fmt"

	"ellog/internal/core"
	"ellog/internal/logrec"
	"ellog/internal/metrics"
	"ellog/internal/recovery"
	"ellog/internal/sim"
	"ellog/internal/statedb"
)

// Partitioning selects how the object space maps onto partitions.
type Partitioning int

const (
	// PartitionRange is DeWitt & Gray's range declustering: partition p
	// owns the contiguous slice [p*width, (p+1)*width) of the object
	// space. Transactions with locality stay single-shard.
	PartitionRange Partitioning = iota
	// PartitionHash spreads the GLOBAL object space over the partitions by
	// a splitmix64 hash of the oid. Load balances regardless of key
	// skew, at the price of multi-record transactions routinely spanning
	// shards — every such transaction pays 2PC with the probability the
	// hash scatters its objects.
	PartitionHash
)

// System is a set of EL partitions sharing one simulated machine (engine)
// and nothing else.
type System struct {
	eng    *sim.Engine
	parts  []*core.Setup
	scheme Partitioning
	// objectsPerPart is each partition's object-range width under
	// PartitionRange; partition p owns oids
	// [p*objectsPerPart, (p+1)*objectsPerPart). Zero under PartitionHash.
	objectsPerPart uint64
	// totalObjects is the size of the global object space under either
	// scheme.
	totalObjects uint64
	// memGauge tracks the combined LOT+LTT memory of all partitions at
	// every change, so its peak is the true system peak — partition peaks
	// occur at different simulated times, and summing them overstates what
	// must actually be provisioned.
	memGauge metrics.Gauge
}

// New builds a range-partitioned system of n identical partitions. Each
// partition gets its own log (params.GenSizes blocks), its own flush
// drives and the object range [i*fc.NumObjects, (i+1)*fc.NumObjects).
func New(eng *sim.Engine, n int, params core.Params, fc core.FlushConfig) (*System, error) {
	sys := &System{
		scheme:         PartitionRange,
		objectsPerPart: fc.NumObjects,
		totalObjects:   uint64(n) * fc.NumObjects,
	}
	return build(sys, eng, n, params, fc)
}

// NewHash builds a hash-partitioned system of n identical partitions over
// a GLOBAL object space of fc.NumObjects: any oid may land on any
// partition (owner = splitmix64(oid) mod n), so every partition's flush
// drives span the whole space and object identifiers are never translated.
func NewHash(eng *sim.Engine, n int, params core.Params, fc core.FlushConfig) (*System, error) {
	sys := &System{scheme: PartitionHash, totalObjects: fc.NumObjects}
	return build(sys, eng, n, params, fc)
}

func build(sys *System, eng *sim.Engine, n int, params core.Params, fc core.FlushConfig) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("multilog: need at least one partition")
	}
	if fc.NumObjects == 0 {
		return nil, fmt.Errorf("multilog: partition object range must be positive")
	}
	sys.eng = eng
	for i := 0; i < n; i++ {
		setup, err := core.NewSetup(eng, params, fc)
		if err != nil {
			return nil, fmt.Errorf("multilog: partition %d: %w", i, err)
		}
		setup.LM.SetMemHook(sys.touchMem)
		sys.parts = append(sys.parts, setup)
	}
	return sys, nil
}

// splitmix64 is the splitmix64 output finalizer: a cheap, well-mixed
// 64-bit permutation, so consecutive oids scatter uniformly over the
// partitions.
func splitmix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// touchMem refreshes the combined memory gauge. It is installed as every
// partition manager's memory hook, so it fires whenever any partition's
// LOT or LTT changes size.
func (s *System) touchMem() {
	total := 0.0
	for _, p := range s.parts {
		total += p.LM.MemBytes()
	}
	s.memGauge.Set(s.eng.Now(), total)
}

// Partitions reports the partition count.
func (s *System) Partitions() int { return len(s.parts) }

// Partition returns one partition's components. An out-of-range index is
// a caller bug and panics with a diagnostic rather than a bare index
// error.
func (s *System) Partition(i int) *core.Setup {
	if i < 0 || i >= len(s.parts) {
		panic(fmt.Sprintf("multilog: partition %d out of range (system has %d)", i, len(s.parts)))
	}
	return s.parts[i]
}

// OwnerOf returns the partition index owning an object, or -1 when the
// oid lies outside the object space (callers decide whether that is an
// error; the Router turns it into a diagnostic).
func (s *System) OwnerOf(oid logrec.OID) int {
	if s.totalObjects == 0 || uint64(oid) >= s.totalObjects {
		return -1
	}
	if s.scheme == PartitionHash {
		return int(splitmix64(uint64(oid)) % uint64(len(s.parts)))
	}
	return int(uint64(oid) / s.objectsPerPart)
}

// Scheme reports the partitioning scheme.
func (s *System) Scheme() Partitioning { return s.scheme }

// localOID translates a global oid to the coordinates partition shard
// works in: its slice offset under range partitioning, the oid unchanged
// under hash partitioning (hash partitions keep global coordinates — their
// flush drives span the whole space).
func (s *System) localOID(shard int, oid logrec.OID) logrec.OID {
	if s.scheme == PartitionHash {
		return oid
	}
	return logrec.OID(uint64(oid) - uint64(shard)*s.objectsPerPart)
}

// globalOID is the inverse of localOID: it lifts a partition-local oid —
// e.g. one read back out of a recovered log — to global coordinates,
// reporting false for an oid the partition cannot legitimately hold.
func (s *System) globalOID(shard int, local logrec.OID) (logrec.OID, bool) {
	if s.scheme == PartitionHash {
		return local, s.OwnerOf(local) == shard
	}
	if uint64(local) >= s.objectsPerPart {
		return 0, false
	}
	return logrec.OID(uint64(shard)*s.objectsPerPart + uint64(local)), true
}

// Sink returns partition i's transaction interface in GLOBAL object
// coordinates: the partition internally works on its local object range
// [0, NumObjects) (its flush drives are range partitioned over exactly
// that), and the sink translates. It satisfies workload.LogManager. An
// out-of-range index is reported here, at construction, instead of
// panicking on first use.
func (s *System) Sink(i int) (*PartitionSink, error) {
	if i < 0 || i >= len(s.parts) {
		return nil, fmt.Errorf("multilog: sink for partition %d out of range (system has %d)", i, len(s.parts))
	}
	return &PartitionSink{sys: s, part: i}, nil
}

// PartitionSink routes one partition's transactions, translating global
// object identifiers to the partition's local coordinates.
type PartitionSink struct {
	sys  *System
	part int
}

// BeginHinted starts a transaction on the partition.
func (ps *PartitionSink) BeginHinted(tid logrec.TxID, expected sim.Time) {
	ps.sys.parts[ps.part].LM.BeginHinted(tid, expected)
}

// WriteData logs an update; oid is global and must belong to the
// partition.
func (ps *PartitionSink) WriteData(tid logrec.TxID, oid logrec.OID, size int) logrec.LSN {
	if ps.sys.OwnerOf(oid) != ps.part {
		panic(fmt.Sprintf("multilog: object %d routed to partition %d of %d (owner %d)",
			oid, ps.part, len(ps.sys.parts), ps.sys.OwnerOf(oid)))
	}
	return ps.sys.parts[ps.part].LM.WriteData(tid, ps.sys.localOID(ps.part, oid), size)
}

// Commit requests commit; onDurable fires at the group-commit ack.
func (ps *PartitionSink) Commit(tid logrec.TxID, onDurable func()) {
	ps.sys.parts[ps.part].LM.Commit(tid, onDurable)
}

// SetKillHandler registers the kill callback for this partition.
func (ps *PartitionSink) SetKillHandler(fn func(logrec.TxID)) {
	ps.sys.parts[ps.part].LM.SetKillHandler(fn)
}

// Stats aggregates all partitions.
type Stats struct {
	PerPartition []core.Stats
	TotalBlocks  int
	TotalWrites  uint64
	Bandwidth    float64
	Killed       uint64
	// MemPeak is the peak of the combined memory gauge — the highest
	// simultaneous LOT+LTT footprint across all partitions. Per-partition
	// peaks remain available in PerPartition; their sum is an upper bound,
	// not the true peak, because the partitions peak at different times.
	MemPeak float64
}

// Stats snapshots every partition.
func (s *System) Stats() Stats {
	var out Stats
	for _, p := range s.parts {
		st := p.LM.Stats()
		out.PerPartition = append(out.PerPartition, st)
		out.TotalBlocks += st.TotalBlocks
		out.TotalWrites += st.TotalWrites
		out.Bandwidth += st.TotalBandwidth
		out.Killed += st.Killed
	}
	out.MemPeak = s.memGauge.Peak()
	return out
}

// Insufficient reports whether any partition exceeded its budget, via the
// managers' O(1) health probes — no full Stats snapshot is built for this
// single bool.
func (s *System) Insufficient() bool {
	for _, p := range s.parts {
		if p.LM.Insufficient() {
			return true
		}
	}
	return false
}

// RecoveryReport describes a whole-machine recovery: the per-partition
// replay passes plus the cross-shard resolution pass.
type RecoveryReport struct {
	Per []recovery.Result // one per partition, in partition order
	// ParallelTime is the slowest partition's replay: partitions share
	// nothing, so wall time is the maximum, not the sum — the payoff of
	// checkpoint-free logs.
	ParallelTime sim.Time
	// SerialTime is the sum over partitions — what a single log reader
	// would pay.
	SerialTime sim.Time
	// 2PC resolution: in-doubt prepared branches surfaced by the replay
	// passes, and how the coordinator logs settled them.
	InDoubt        int
	ResolvedCommit int // a coordinator shard held a durable DECIDE
	ResolvedAbort  int // no durable decision anywhere: presumed abort
}

// RecoverAll recovers every partition independently, resolves in-doubt
// prepared transactions against the union of decision records, and merges
// the partitions' recovered states into one database in global object
// coordinates.
func (s *System) RecoverAll(blockRead sim.Time) (*statedb.DB, RecoveryReport, error) {
	recs, report, winners, err := s.recoverParts(blockRead)
	if err != nil {
		return nil, report, err
	}
	merged := statedb.New()
	for i, rec := range recs {
		s.resolveInDoubt(rec, &report, report.Per[i], winners)
		var mergeErr error
		rec.Range(func(oid logrec.OID, v statedb.Version) bool {
			gid, ok := s.globalOID(i, oid)
			if !ok {
				mergeErr = fmt.Errorf("multilog: partition %d recovered object %d it does not own", i, oid)
				return false
			}
			merged.ForceSet(gid, v)
			return true
		})
		if mergeErr != nil {
			return nil, report, mergeErr
		}
	}
	return merged, report, nil
}

// RecoverShard recovers a single crashed partition against the other
// partitions' (intact) logs: partition i's image is replayed, and its
// in-doubt prepared branches are resolved by consulting every shard's
// durable decision records — the coordinator of a cross-shard transaction
// may be any of them. The recovered state is returned in GLOBAL object
// coordinates, covering only partition i's range.
func (s *System) RecoverShard(i int, blockRead sim.Time) (*statedb.DB, RecoveryReport, error) {
	if i < 0 || i >= len(s.parts) {
		return nil, RecoveryReport{}, fmt.Errorf("multilog: recover of partition %d out of range (system has %d)", i, len(s.parts))
	}
	recs, report, winners, err := s.recoverParts(blockRead)
	if err != nil {
		return nil, report, err
	}
	// Only partition i crashed: its replay is the recovery cost, and only
	// its in-doubt branches need resolution.
	report.ParallelTime = report.Per[i].EstimatedTime
	report.SerialTime = report.Per[i].EstimatedTime
	s.resolveInDoubt(recs[i], &report, report.Per[i], winners)
	out := statedb.New()
	var mergeErr error
	recs[i].Range(func(oid logrec.OID, v statedb.Version) bool {
		gid, ok := s.globalOID(i, oid)
		if !ok {
			mergeErr = fmt.Errorf("multilog: partition %d recovered object %d it does not own", i, oid)
			return false
		}
		out.ForceSet(gid, v)
		return true
	})
	if mergeErr != nil {
		return nil, report, mergeErr
	}
	return out, report, nil
}

// recoverParts replays every partition's durable log and collects the
// global winner set — every transaction with a durable COMMIT or DECIDE
// on any shard. Transaction identifiers are globally unique and only a
// coordinator ever logs a decision, so the union is exactly the set of
// globally committed transactions.
func (s *System) recoverParts(blockRead sim.Time) ([]*statedb.DB, RecoveryReport, map[logrec.TxID]bool, error) {
	var report RecoveryReport
	recs := make([]*statedb.DB, len(s.parts))
	winners := make(map[logrec.TxID]bool)
	for i, p := range s.parts {
		rec, res, err := recovery.Recover(p.Dev, p.DB, blockRead)
		if err != nil {
			return nil, report, nil, fmt.Errorf("multilog: partition %d: %w", i, err)
		}
		recs[i] = rec
		report.Per = append(report.Per, res)
		report.SerialTime += res.EstimatedTime
		if res.EstimatedTime > report.ParallelTime {
			report.ParallelTime = res.EstimatedTime
		}
		for _, tx := range res.WinnerTxs {
			winners[tx] = true
		}
	}
	return recs, report, winners, nil
}

// resolveInDoubt settles one partition's in-doubt prepared branches: a
// branch whose transaction appears in the global winner set redoes its
// durable updates (the decision was commit); otherwise it is presumed
// aborted — abort decisions are never logged, so absence of a durable
// DECIDE is the abort verdict.
func (s *System) resolveInDoubt(rec *statedb.DB, report *RecoveryReport, res recovery.Result, winners map[logrec.TxID]bool) {
	for _, idt := range res.InDoubt {
		report.InDoubt++
		if !winners[idt.Tx] {
			report.ResolvedAbort++
			continue
		}
		report.ResolvedCommit++
		for _, w := range idt.Writes {
			rec.Apply(w.Obj, w.LSN, w.Val, idt.Tx)
		}
	}
}
