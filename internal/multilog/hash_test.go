package multilog

import (
	"fmt"
	"testing"

	"ellog/internal/core"
	"ellog/internal/logrec"
	"ellog/internal/recovery"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// tableSystem builds a System with just enough state for ownership
// arithmetic — no engine, no partitions' logs.
func tableSystem(scheme Partitioning, n int, perPart, total uint64) *System {
	return &System{
		scheme:         scheme,
		parts:          make([]*core.Setup, n),
		objectsPerPart: perPart,
		totalObjects:   total,
	}
}

func TestOwnerOfRangeTable(t *testing.T) {
	sys := tableSystem(PartitionRange, 3, 100, 300)
	cases := []struct {
		oid  logrec.OID
		want int
	}{
		{0, 0}, {99, 0}, {100, 1}, {199, 1}, {200, 2}, {299, 2},
		{300, -1}, {1 << 40, -1},
	}
	for _, c := range cases {
		if got := sys.OwnerOf(c.oid); got != c.want {
			t.Errorf("range OwnerOf(%d) = %d, want %d", c.oid, got, c.want)
		}
	}
}

func TestOwnerOfHashTable(t *testing.T) {
	sys := tableSystem(PartitionHash, 3, 0, 300)
	cases := []struct {
		oid  logrec.OID
		want int
	}{
		{0, int(splitmix64(0) % 3)},
		{1, int(splitmix64(1) % 3)},
		{42, int(splitmix64(42) % 3)},
		{299, int(splitmix64(299) % 3)},
		{300, -1}, // outside the object space, hash or not
		{1 << 40, -1},
	}
	for _, c := range cases {
		if got := sys.OwnerOf(c.oid); got != c.want {
			t.Errorf("hash OwnerOf(%d) = %d, want %d", c.oid, got, c.want)
		}
	}
	// The finalizer must actually spread a contiguous key range: over the
	// whole space every partition should hold roughly a third.
	counts := make([]int, 3)
	for oid := logrec.OID(0); oid < 300; oid++ {
		p := sys.OwnerOf(oid)
		if p < 0 || p > 2 {
			t.Fatalf("OwnerOf(%d) = %d out of range", oid, p)
		}
		counts[p]++
	}
	for p, n := range counts {
		if n < 60 || n > 140 {
			t.Errorf("partition %d owns %d of 300 objects — hash is not spreading (%v)", p, n, counts)
		}
	}
}

func TestOIDTranslationRoundTrip(t *testing.T) {
	rng := tableSystem(PartitionRange, 3, 100, 300)
	hsh := tableSystem(PartitionHash, 3, 0, 300)
	for _, sys := range []*System{rng, hsh} {
		for oid := logrec.OID(0); oid < 300; oid += 7 {
			shard := sys.OwnerOf(oid)
			local := sys.localOID(shard, oid)
			back, ok := sys.globalOID(shard, local)
			if !ok || back != oid {
				t.Fatalf("scheme %v: oid %d -> shard %d local %d -> (%d, %v)",
					sys.scheme, oid, shard, local, back, ok)
			}
		}
	}
	// A local oid a partition cannot own is rejected, both schemes.
	if _, ok := rng.globalOID(1, 100); ok {
		t.Error("range: local oid beyond the slice width globalized")
	}
	wrong := (hsh.OwnerOf(5) + 1) % 3 // any shard that is not OwnerOf(5)
	if _, ok := hsh.globalOID(wrong, 5); ok {
		t.Error("hash: oid globalized through a shard that does not own it")
	}
}

// smallHashSharded mirrors smallSharded under hash declustering: a global
// object space, cross-shard traffic arising from hash scatter alone.
func smallHashSharded(shards int, seed uint64) ShardedConfig {
	return ShardedConfig{
		Seed:   seed,
		Shards: shards,
		Hash:   true,
		LM: core.Params{
			Mode: core.ModeEphemeral, GenSizes: []int{10, 10},
			GroupCommitTimeout: 20 * sim.Millisecond,
		},
		Flush: core.FlushConfig{Drives: 2, Transfer: 5 * sim.Millisecond, NumObjects: 3000},
		Workload: workload.Config{
			Mix: workload.Mix{
				{Name: "short", Prob: 1, Lifetime: 300 * sim.Millisecond, NumRecords: 2, RecordSize: 100},
			},
			ArrivalRate: 40,
			Runtime:     2 * sim.Second,
		},
	}
}

func TestHashShardedRunCommitsAndRecovers(t *testing.T) {
	live, err := RunSharded(smallHashSharded(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	live.Eng.Run(live.Eng.Now() + 30*sim.Second) // drain in-flight transactions
	if live.Sys.Scheme() != PartitionHash {
		t.Fatal("system did not come up hash-partitioned")
	}
	ws := live.Gen.Stats()
	if ws.Committed == 0 {
		t.Fatalf("nothing committed: %+v", ws)
	}
	rs := live.Router.Stats()
	// With 2-record transactions over 3 hash partitions, both records land
	// on one shard with probability ~1/3 — so both local and distributed
	// commits must occur without any CrossShardFrac knob.
	if rs.DistCommits == 0 || rs.LocalCommits == 0 {
		t.Fatalf("hash scatter produced no organic 2PC mix: %+v", rs)
	}
	// Every partition carried some of the load: the hash spreads the
	// whole space over all shards.
	for i := 0; i < live.Sys.Partitions(); i++ {
		if err := live.Sys.Partition(i).LM.CheckInvariants(); err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		if live.Sys.Partition(i).LM.Stats().AppendedRecs == 0 {
			t.Fatalf("partition %d never saw a record — hash not spreading", i)
		}
	}
	merged, report, err := live.Sys.RecoverAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.VerifyOracle(merged, live.Gen.Oracle()); err != nil {
		t.Fatal(err)
	}
	if len(report.Per) != 3 {
		t.Fatalf("%d partition recoveries", len(report.Per))
	}
}

// TestHashShardedByteIdentical extends the determinism contract to hash
// declustering.
func TestHashShardedByteIdentical(t *testing.T) {
	run := func() string {
		live, err := RunSharded(smallHashSharded(3, 7))
		if err != nil {
			t.Fatal(err)
		}
		_, report, err := live.Sys.RecoverAll(0)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v\n%+v\n%+v\n%+v",
			live.Gen.Stats(), live.Router.Stats(), live.Sys.Stats(), report)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two runs of the same hash-sharded config diverged:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
