// PDES binding: the sharded system on the parallel engine.
//
// BuildPDES maps every shard onto one logical process of a
// sim.ParallelEngine: the shard's log device, flush array, stable database,
// logging manager and workload generator all attach to that LP's embedded
// engine, so everything a shard does is LP-local — the obligation the
// parallel engine's determinism contract places on the model. The only
// cross-LP channel is the 2PC overlay (pdes_cross.go), whose every
// protocol step travels as an LP.Send with the engine's lookahead as its
// delay: cross-shard messages ARE the cross-LP events, and the lookahead
// doubles as the inter-shard message latency. With the default lookahead —
// the 15 ms tau_DiskWrite already in the model — that is a plausible
// same-machine interconnect delay and an enormous PDES lookahead at once.
//
// Identity contract. The worker count is pure scheduling: a run with N
// workers is byte-identical to the same run with 1 worker (the sequential
// reference execution — CI's pdes-determinism matrix asserts exactly
// this). Separately, a 1-shard PDES run reduces bit-for-bit to the classic
// harness.Build run of the same configuration, because LP 0 is seeded with
// exactly the words harness.Build feeds sim.NewEngine and the generator
// wiring is call-for-call identical (pdes_test.go proves it).
package multilog

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"ellog/internal/core"
	"ellog/internal/logrec"
	"ellog/internal/metrics"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// Transaction-identifier layout. Each LP owns a disjoint stride of the tid
// space; within a stride, the high bit separates the cross-shard overlay's
// transactions from the local generator's, so a kill callback can be
// demultiplexed from the tid alone. A 500 s run at paper rates uses a few
// hundred thousand tids per LP — nowhere near the 2^31 per class.
const (
	pdesTidStride uint64 = 1 << 32
	pdesCrossBit  uint64 = 1 << 31
)

// pdesCrossTid builds the overlay's n-th transaction identifier homed on
// the given LP.
func pdesCrossTid(lp int, n uint64) logrec.TxID {
	return logrec.TxID(uint64(lp)*pdesTidStride + pdesCrossBit + n)
}

// PDESConfig parameterizes a parallel sharded run.
type PDESConfig struct {
	Seed   uint64
	Shards int // logical processes; one full EL instance each
	// Workers is the goroutine count the parallel engine schedules LPs
	// onto. It is pure scheduling — any value produces byte-identical
	// results — and <= 1 selects the sequential reference execution.
	Workers int
	// Lookahead is the conservative window width and the cross-shard
	// message latency. Zero defaults to the logging manager's block write
	// latency (tau_DiskWrite, 15 ms) — the physical constant the ROADMAP
	// names as the model's natural lookahead source.
	Lookahead sim.Time
	LM        core.Params
	Flush     core.FlushConfig // per shard: own drives, own object range
	// Workload is the per-shard traffic template. Mix, Runtime, Epsilon,
	// Hints and Arrival apply as given; ArrivalRate is the per-shard total
	// (local + cross). NumObjects, OIDBase, TidBase, NumShards and
	// CrossShardFrac are overridden by the binding — each LP's generator
	// works in its shard's local object coordinates with an LP-strided tid
	// base, and cross-shard traffic is the overlay's job, not the
	// generator's.
	Workload workload.Config
	// CrossFrac in [0, 1) is the fraction of each shard's arrival rate
	// initiated as cross-shard two-branch 2PC transactions by the overlay.
	// Zero runs pure shared-nothing traffic with no cross-LP events at all.
	CrossFrac float64
}

// pdesReserveDiv carves 1/8 of each shard's object range out of the local
// generator's draw space for the cross-shard overlay, so overlay and
// generator can never contend for an object (they keep separate held-sets).
const pdesReserveDiv = 8

// ShardLP is one shard bound to its logical process.
type ShardLP struct {
	LP    *sim.LP
	Setup *core.Setup
	Gen   *workload.Generator
	sink  *lpSink
	cross *crossArm // nil when CrossFrac == 0
}

// Cross returns the shard's 2PC overlay arm, or nil in base mode.
func (s *ShardLP) Cross() *crossArm { return s.cross }

// PDESLive is an assembled parallel run.
type PDESLive struct {
	PE     *sim.ParallelEngine
	Shards []*ShardLP
	cfg    PDESConfig
}

// pdesActive guards against nested within-run parallelism: two parallel
// PDES runs in one process would oversubscribe the machine and — far worse
// for a simulator whose whole value is reproducibility — suggest a caller
// composing runner.Pool's across-runs fan-out with within-run workers.
// Those are alternatives, not layers; see runner.Pool's documentation.
var pdesActive atomic.Int32

// ErrNestedParallelism is the named panic message raised when a second
// parallel (Workers > 1) PDES run starts while one is active.
const ErrNestedParallelism = "multilog: nested within-run parallelism: a Workers>1 PDES run is already active in this process; use Workers=1 inside runner.Pool fan-outs (across-runs and within-run parallelism are alternatives, not layers)"

// BuildPDES assembles a parallel sharded run without executing it.
func BuildPDES(cfg PDESConfig) (*PDESLive, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("multilog: pdes needs at least one shard, got %d", cfg.Shards)
	}
	if cfg.CrossFrac < 0 || cfg.CrossFrac >= 1 {
		return nil, fmt.Errorf("multilog: pdes cross fraction %v outside [0,1) — some local traffic must remain", cfg.CrossFrac)
	}
	if cfg.CrossFrac > 0 && cfg.Shards < 2 {
		return nil, fmt.Errorf("multilog: pdes cross fraction %v needs at least 2 shards, have %d", cfg.CrossFrac, cfg.Shards)
	}
	lookahead := cfg.Lookahead
	if lookahead == 0 {
		lookahead = cfg.LM.WithDefaults().WriteLatency
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("multilog: pdes lookahead %v must be positive", lookahead)
	}
	genObjects := cfg.Flush.NumObjects
	var reserve uint64
	if cfg.CrossFrac > 0 {
		reserve = cfg.Flush.NumObjects / pdesReserveDiv
		if reserve == 0 {
			return nil, fmt.Errorf("multilog: pdes object range %d too small to carve a cross-shard reserve", cfg.Flush.NumObjects)
		}
		genObjects = cfg.Flush.NumObjects - reserve
	}

	// Seeded exactly like harness.Build seeds its engine, so LP 0 of a
	// 1-shard run is bit-for-bit the classic sequential engine.
	pe := sim.NewParallelEngine(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15, cfg.Shards, lookahead, cfg.Workers)
	live := &PDESLive{PE: pe, cfg: cfg}
	var arms []*crossArm
	for i := 0; i < cfg.Shards; i++ {
		lp := pe.LP(i)
		setup, err := core.NewSetup(lp.Engine, cfg.LM, cfg.Flush)
		if err != nil {
			return nil, fmt.Errorf("multilog: pdes shard %d: %w", i, err)
		}
		sink := &lpSink{lm: setup.LM}
		wcfg := cfg.Workload
		wcfg.NumObjects = genObjects
		wcfg.OIDBase = 0
		wcfg.TidBase = uint64(i) * pdesTidStride
		wcfg.NumShards = 0
		wcfg.CrossShardFrac = 0
		wcfg.ArrivalRate = cfg.Workload.ArrivalRate * (1 - cfg.CrossFrac)
		gen, err := workload.New(lp.Engine, sink, wcfg)
		if err != nil {
			return nil, fmt.Errorf("multilog: pdes shard %d: %w", i, err)
		}
		gen.Start()
		shard := &ShardLP{LP: lp, Setup: setup, Gen: gen, sink: sink}
		if cfg.CrossFrac > 0 {
			arm := newCrossArm(lp, setup.LM, i, cfg.Shards, lookahead, &cfg, genObjects, reserve)
			shard.cross = arm
			sink.arm = arm
			arms = append(arms, arm)
		}
		// The manager's kill callback runs through the sink's demux: local
		// tids go to the generator, overlay tids to the cross arm.
		setup.LM.SetKillHandler(sink.dispatchKill)
		live.Shards = append(live.Shards, shard)
	}
	for _, arm := range arms {
		arm.peers = arms
		arm.start()
	}
	return live, nil
}

// Run executes the simulation to the configured workload runtime. A
// Workers>1 run registers itself in a process-wide slot for its duration
// and panics with ErrNestedParallelism if the slot is taken.
func (pl *PDESLive) Run() {
	if pl.PE.Workers() > 1 {
		if !pdesActive.CompareAndSwap(0, 1) {
			panic(ErrNestedParallelism)
		}
		defer pdesActive.Store(0)
	}
	pl.PE.Run(pl.cfg.Workload.Runtime)
}

// RunPDES builds, runs and summarizes a parallel sharded run.
func RunPDES(cfg PDESConfig) (*PDESLive, PDESStats, error) {
	live, err := BuildPDES(cfg)
	if err != nil {
		return nil, PDESStats{}, err
	}
	live.Run()
	return live, live.Stats(), nil
}

// lpSink is the LP-local transaction interface handed to the workload
// generator. It forwards to the shard's manager unchanged — so a 1-shard
// base run makes exactly the calls harness.Build's direct wiring makes —
// and demultiplexes the manager's kill callback between the generator and
// the cross-shard overlay by tid class.
type lpSink struct {
	lm      *core.Manager
	arm     *crossArm // nil in base mode
	genKill func(logrec.TxID)
}

func (s *lpSink) BeginHinted(tid logrec.TxID, expected sim.Time) { s.lm.BeginHinted(tid, expected) }

func (s *lpSink) WriteData(tid logrec.TxID, oid logrec.OID, size int) logrec.LSN {
	return s.lm.WriteData(tid, oid, size)
}

func (s *lpSink) Commit(tid logrec.TxID, onDurable func()) { s.lm.Commit(tid, onDurable) }

func (s *lpSink) SetKillHandler(fn func(logrec.TxID)) { s.genKill = fn }

// dispatchKill routes a space-pressure kill to whoever initiated the
// victim: overlay tids carry the cross bit within their LP stride.
func (s *lpSink) dispatchKill(tid logrec.TxID) {
	if s.arm != nil && uint64(tid)%pdesTidStride >= pdesCrossBit {
		s.arm.killed(tid)
		return
	}
	if s.genKill != nil {
		s.genKill(tid)
	}
}

// PDESStats aggregates a parallel run. Every field is a pure function of
// simulation state, so it is identical for any worker count; the worker
// count itself is deliberately absent (the CI determinism matrix diffs
// whole reports across worker counts).
type PDESStats struct {
	Shards    int
	Lookahead sim.Time
	Windows   uint64 // non-empty conservative windows executed
	Delivered uint64 // cross-LP events merged at barriers
	Events    uint64 // total events dispatched across all LPs

	PerShard    []core.Stats
	TotalBlocks int
	TotalWrites uint64
	Bandwidth   float64
	Killed      uint64
	// MemPeakBound sums the per-shard memory peaks. Unlike System.Stats,
	// whose partitions share one engine and can maintain a combined gauge,
	// LPs may not touch shared state mid-window — so the true simultaneous
	// peak is unobservable and this upper bound is reported instead.
	MemPeakBound float64

	// Local (generator) traffic, aggregated across shards. Latency moments
	// come from the merged raw samples, not from merging per-shard
	// quantiles.
	Started   uint64
	Committed uint64
	GenKilled uint64
	PerType   map[string]uint64
	E2EMean   float64
	E2EP99    float64

	// Cross-shard overlay traffic.
	CrossStarted   uint64
	CrossCommitted uint64
	CrossAborted   uint64
	CrossE2EMean   float64
	CrossE2EP99    float64
}

// Stats snapshots the whole run, shard by shard in index order.
func (pl *PDESLive) Stats() PDESStats {
	st := PDESStats{
		Shards:    len(pl.Shards),
		Lookahead: pl.PE.Lookahead(),
		Windows:   pl.PE.Windows(),
		Delivered: pl.PE.Delivered(),
		Events:    pl.PE.Fired(),
		PerType:   make(map[string]uint64),
	}
	var e2e, crossE2E metrics.Histogram
	for _, s := range pl.Shards {
		lm := s.Setup.LM.Stats()
		st.PerShard = append(st.PerShard, lm)
		st.TotalBlocks += lm.TotalBlocks
		st.TotalWrites += lm.TotalWrites
		st.Bandwidth += lm.TotalBandwidth
		st.Killed += lm.Killed
		st.MemPeakBound += lm.MemPeakBytes

		ws := s.Gen.Stats()
		st.Started += ws.Started
		st.Committed += ws.Committed
		st.GenKilled += ws.Killed
		// Key-order independence: addition commutes, so ranging the map is
		// deterministic in effect even though iteration order is not.
		for name, n := range ws.PerType {
			st.PerType[name] += n
		}
		s.Gen.MergeLatencies(&e2e, nil, nil)

		if s.cross != nil {
			st.CrossStarted += s.cross.started.Count()
			st.CrossCommitted += s.cross.committed.Count()
			st.CrossAborted += s.cross.aborted.Count()
			e2e.Merge(&s.cross.e2e)
			crossE2E.Merge(&s.cross.e2e)
		}
	}
	st.E2EMean = e2e.Mean()
	st.E2EP99 = e2e.Quantile(0.99)
	st.CrossE2EMean = crossE2E.Mean()
	st.CrossE2EP99 = crossE2E.Quantile(0.99)
	return st
}

// Insufficient reports whether any shard exceeded its disk budget.
func (pl *PDESLive) Insufficient() bool {
	for _, s := range pl.Shards {
		if s.Setup.LM.Insufficient() {
			return true
		}
	}
	return false
}

// String renders a deterministic multi-line report: map-backed sections
// are emitted in sorted key order, and nothing scheduling-dependent (no
// worker count, no wall-clock) appears — the report is a fixed function of
// (seed, config), which is what the CI determinism matrix diffs.
func (st PDESStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pdes: %d shards, lookahead %v, %d windows, %d cross-LP events, %d events\n",
		st.Shards, st.Lookahead, st.Windows, st.Delivered, st.Events)
	fmt.Fprintf(&b, "  local: %d started, %d committed, %d killed; e2e mean %.1f ms p99 %.1f ms\n",
		st.Started, st.Committed, st.GenKilled, st.E2EMean*1e3, st.E2EP99*1e3)
	names := make([]string, 0, len(st.PerType))
	for name := range st.PerType {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "    type %s: %d\n", name, st.PerType[name])
	}
	if st.CrossStarted > 0 {
		fmt.Fprintf(&b, "  cross: %d started, %d committed, %d aborted; e2e mean %.1f ms p99 %.1f ms\n",
			st.CrossStarted, st.CrossCommitted, st.CrossAborted, st.CrossE2EMean*1e3, st.CrossE2EP99*1e3)
	}
	fmt.Fprintf(&b, "  log: %d blocks, %d writes, %.2f writes/s, %d space kills, mem peak bound %.0f B\n",
		st.TotalBlocks, st.TotalWrites, st.Bandwidth, st.Killed, st.MemPeakBound)
	for i, lm := range st.PerShard {
		fmt.Fprintf(&b, "  shard %d: %d begun, %d committed, %d writes, %d recs in, %d forwarded, %d recirculated\n",
			i, lm.Begins, lm.Commits, lm.TotalWrites, lm.AppendedRecs, lm.Forwarded, lm.Recirculated)
	}
	return b.String()
}
