package multilog

import (
	"testing"

	"ellog/internal/core"
	"ellog/internal/logrec"
	"ellog/internal/recovery"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// buildSystem assembles n partitions, each driven by its own generator at
// the paper workload scaled to perPartTPS.
func buildSystem(t *testing.T, n int, perPartTPS float64, runtime sim.Time) (*System, []*workload.Generator, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine(3, 4)
	sys, err := New(eng, n, core.Params{
		Mode: core.ModeEphemeral, GenSizes: []int{20, 16}, Recirculate: true,
	}, core.FlushConfig{Drives: 10, Transfer: 25 * sim.Millisecond, NumObjects: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	var gens []*workload.Generator
	for i := 0; i < n; i++ {
		sink, err := sys.Sink(i)
		if err != nil {
			t.Fatal(err)
		}
		g, err := workload.New(eng, sink, workload.Config{
			Mix:         workload.PaperMix(0.05),
			ArrivalRate: perPartTPS,
			Runtime:     runtime,
			NumObjects:  1_000_000,
			OIDBase:     uint64(i) * 1_000_000,
			TidBase:     uint64(i) << 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		gens = append(gens, g)
	}
	return sys, gens, eng
}

func TestPartitionsRunIndependently(t *testing.T) {
	sys, gens, eng := buildSystem(t, 4, 100, 30*sim.Second)
	eng.Run(30 * sim.Second)
	if sys.Insufficient() {
		t.Fatalf("system insufficient: %+v", sys.Stats())
	}
	st := sys.Stats()
	// Four partitions at 100 TPS each: aggregate bandwidth ~4x one log's.
	if st.Bandwidth < 45 || st.Bandwidth > 60 {
		t.Fatalf("aggregate bandwidth %.1f, want ~4x12.7", st.Bandwidth)
	}
	total := uint64(0)
	for i, g := range gens {
		ws := g.Stats()
		if ws.Started != 3000 {
			t.Fatalf("partition %d started %d, want 3000", i, ws.Started)
		}
		if ws.Killed != 0 {
			t.Fatalf("partition %d killed %d", i, ws.Killed)
		}
		total += ws.Committed
	}
	if total < 11000 {
		t.Fatalf("only %d commits across 4 partitions", total)
	}
	// No invariant violations anywhere.
	for i := 0; i < sys.Partitions(); i++ {
		if err := sys.Partition(i).LM.CheckInvariants(); err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
	}
}

func TestGlobalCrashRecovery(t *testing.T) {
	sys, gens, eng := buildSystem(t, 4, 100, 60*sim.Second)
	eng.Run(37 * sim.Second) // crash the whole machine at once

	merged, report, err := sys.RecoverAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Per) != 4 {
		t.Fatalf("%d partition recoveries", len(report.Per))
	}
	// Global oracle = union of the per-partition oracles (disjoint oid
	// ranges guarantee no conflicts).
	oracle := make(map[logrec.OID]logrec.LSN)
	for _, g := range gens {
		for oid, lsn := range g.Oracle() {
			oracle[oid] = lsn
		}
	}
	if len(oracle) == 0 {
		t.Fatal("empty oracle")
	}
	if err := recovery.VerifyOracle(merged, oracle); err != nil {
		t.Fatal(err)
	}
	// Parallel recovery time = slowest partition, about one partition's
	// log; total blocks read is ~4x that.
	totalRead := 0
	for _, r := range report.Per {
		totalRead += r.BlocksRead
	}
	if report.ParallelTime <= 0 {
		t.Fatal("no parallel recovery time")
	}
	serialTime := sim.Time(totalRead) * recovery.DefaultBlockRead
	if report.SerialTime != serialTime {
		t.Fatalf("serial time %v, want %v", report.SerialTime, serialTime)
	}
	if report.ParallelTime*3 > serialTime {
		t.Fatalf("parallel recovery %v not well below serial %v", report.ParallelTime, serialTime)
	}
}

func TestKillIsolation(t *testing.T) {
	// Partition 0 gets a hopeless budget; the others are generous. Kills
	// must stay confined to partition 0 — no global synchronization means
	// no global fallout.
	eng := sim.NewEngine(9, 10)
	mk := func(sizes []int) *core.Setup {
		s, err := core.NewSetup(eng, core.Params{
			Mode: core.ModeEphemeral, GenSizes: sizes, Recirculate: true,
		}, core.FlushConfig{Drives: 10, Transfer: 25 * sim.Millisecond, NumObjects: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sys := &System{eng: eng, objectsPerPart: 1_000_000, totalObjects: 3_000_000}
	sys.parts = []*core.Setup{mk([]int{5, 4}), mk([]int{20, 16}), mk([]int{20, 16})}
	var gens []*workload.Generator
	for i := 0; i < 3; i++ {
		sink, err := sys.Sink(i)
		if err != nil {
			t.Fatal(err)
		}
		g, err := workload.New(eng, sink, workload.Config{
			Mix:         workload.PaperMix(0.05),
			ArrivalRate: 100,
			Runtime:     30 * sim.Second,
			NumObjects:  1_000_000,
			OIDBase:     uint64(i) * 1_000_000,
			TidBase:     uint64(i) << 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		gens = append(gens, g)
	}
	eng.Run(30 * sim.Second)
	if gens[0].Stats().Killed == 0 {
		t.Fatal("starved partition killed nothing — test premise broken")
	}
	for i := 1; i < 3; i++ {
		if gens[i].Stats().Killed != 0 {
			t.Fatalf("kills leaked into healthy partition %d", i)
		}
	}
	// And recovery of the whole machine is still exact.
	merged, _, err := sys.RecoverAll(0)
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[logrec.OID]logrec.LSN)
	for _, g := range gens {
		for oid, lsn := range g.Oracle() {
			oracle[oid] = lsn
		}
	}
	if err := recovery.VerifyOracle(merged, oracle); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingGuards(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	sys, err := New(eng, 2, core.Params{Mode: core.ModeEphemeral, GenSizes: []int{8, 8}},
		core.FlushConfig{Drives: 2, Transfer: 10 * sim.Millisecond, NumObjects: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if sys.OwnerOf(500) != 0 || sys.OwnerOf(1500) != 1 {
		t.Fatal("owner mapping wrong")
	}
	if _, err := sys.Sink(2); err == nil {
		t.Fatal("out-of-range sink accepted")
	}
	if _, err := sys.Sink(-1); err == nil {
		t.Fatal("negative sink accepted")
	}
	if sys.OwnerOf(2000) != -1 {
		t.Fatal("oid beyond the last shard should have no owner")
	}
	sink, err := sys.Sink(0)
	if err != nil {
		t.Fatal(err)
	}
	sink.BeginHinted(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign-object write did not panic")
		}
	}()
	sink.WriteData(1, 1500, 100) // belongs to partition 1
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	if _, err := New(eng, 0, core.Params{}, core.FlushConfig{}); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := New(eng, 2, core.Params{Mode: core.ModeEphemeral, GenSizes: []int{8, 8}},
		core.FlushConfig{Drives: 2, Transfer: 10 * sim.Millisecond, NumObjects: 0}); err == nil {
		t.Fatal("zero-width object range accepted (OwnerOf would divide by zero)")
	}
	if _, err := New(eng, 2, core.Params{Mode: core.ModeFirewall, GenSizes: []int{4, 4}},
		core.FlushConfig{Drives: 1, Transfer: sim.Millisecond, NumObjects: 100}); err == nil {
		t.Fatal("invalid params accepted")
	}
}
