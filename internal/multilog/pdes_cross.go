// Cross-shard 2PC over cross-LP messages.
//
// The classic Router (router.go) drives two-phase commit as synchronous
// calls into several shards' managers — possible only because every shard
// shares one engine. Under PDES the shards are logical processes that may
// not touch each other's state, so the protocol becomes what it is on real
// hardware: messages. Every step travels as an LP.Send carrying the
// engine's lookahead as its delay, and each handler touches only the
// receiving LP's components:
//
//	home LP                                  remote LP
//	-------                                  ---------
//	BEGIN + local write
//	  |--- open ---------------------------> BEGIN + remote write
//	  |--- prepare (at t0+lifetime) -------> LM.Prepare
//	  |                                        (PREPARE durable)
//	  |<-- vote ----------------------------------|
//	LM.DecideCommit(pins=1)
//	  (DECIDE durable => globally committed)
//	  |--- resolve -------------------------> LM.ResolveCommit
//	  |                                        (branch retired)
//	  |<-- unpin ---------------------------------|
//	LM.Unpin => DECIDE record free to retire
//
// Space-pressure kills turn into abort messages: a killed home branch
// sends abortBranch (remote resolves presumed-abort), a killed remote
// branch sends peerAborted (home aborts its half). Messages crossing an
// abort find no transaction entry and are dropped — the same
// presumed-abort indifference the recovery path relies on. Prepared
// branches are unkillable (core), so a vote always finds its home branch
// either alive or already counted aborted, never half-decided.
package multilog

import (
	"fmt"

	"ellog/internal/core"
	"ellog/internal/logrec"
	"ellog/internal/metrics"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// crossOut is the home (coordinator) half of one overlay transaction.
type crossOut struct {
	remote  int
	began   sim.Time
	oid     logrec.OID
	haveOID bool
	opened  bool // open message sent; a kill must chase it with an abort
	killed  bool
	decided bool
}

// crossIn is the remote (participant) half.
type crossIn struct {
	home    int
	oid     logrec.OID
	haveOID bool
	killed  bool
}

// crossArm is one LP's end of the overlay: initiator for transactions
// homed here, participant for branches opened by peers. All state is
// LP-local; peers are reached only through LP.Send closures that run on
// the destination LP.
type crossArm struct {
	lp    *sim.LP
	lm    *core.Manager
	self  int
	n     int
	d     sim.Time // message latency == engine lookahead
	peers []*crossArm

	mix      workload.Mix
	interval sim.Time
	runtime  sim.Time
	hints    bool

	// Object reserve: local-coordinate range [base, base+reserve) carved
	// out of the generator's draw space. held enforces the paper's
	// unique-active-writer rule within the reserve.
	base    uint64
	reserve uint64
	held    map[logrec.OID]logrec.TxID

	nextTid uint64
	out     map[logrec.TxID]*crossOut
	in      map[logrec.TxID]*crossIn

	started, committed, aborted metrics.Counter
	e2e                         metrics.Histogram
}

// newCrossArm builds one LP's overlay arm. The peers slice is wired by
// BuildPDES once every arm exists.
func newCrossArm(lp *sim.LP, lm *core.Manager, self, n int, lookahead sim.Time, cfg *PDESConfig, base, reserve uint64) *crossArm {
	rate := cfg.Workload.ArrivalRate * cfg.CrossFrac
	return &crossArm{
		lp:       lp,
		lm:       lm,
		self:     self,
		n:        n,
		d:        lookahead,
		mix:      cfg.Workload.Mix,
		interval: sim.Time(float64(sim.Second) / rate),
		runtime:  cfg.Workload.Runtime,
		hints:    cfg.Workload.Hints,
		base:     base,
		reserve:  reserve,
		held:     make(map[logrec.OID]logrec.TxID),
		out:      make(map[logrec.TxID]*crossOut),
		in:       make(map[logrec.TxID]*crossIn),
	}
}

// start schedules the arrival chain, phase-shifted half an interval so
// overlay arrivals interleave with (rather than pile onto) the local
// generator's regular arrivals.
func (a *crossArm) start() {
	a.lp.At(a.interval/2, a.arrival)
}

func (a *crossArm) arrival() {
	now := a.lp.Now()
	if now >= a.runtime {
		return
	}
	a.initiate()
	a.lp.At(now+a.interval, a.arrival)
}

// pickType draws a transaction type from the mix, exactly like the
// generator does, off this LP's own RNG stream.
func (a *crossArm) pickType() *workload.TxType {
	r := a.lp.Rand().Float64()
	acc := 0.0
	for i := range a.mix {
		acc += a.mix[i].Prob
		if r < acc {
			return &a.mix[i]
		}
	}
	return &a.mix[len(a.mix)-1]
}

// initiate starts one cross-shard transaction homed here: one data record
// on the home branch, one on a uniformly drawn remote peer, lifetime and
// record size from the mix. The overlay models the 2PC control path with
// this minimal two-branch write set; the full paper mix runs on the local
// generators.
func (a *crossArm) initiate() {
	typ := a.pickType()
	a.nextTid++
	tid := pdesCrossTid(a.self, a.nextTid)
	remote := int(a.lp.Rand().Uint64N(uint64(a.n - 1)))
	if remote >= a.self {
		remote++
	}
	tx := &crossOut{remote: remote, began: a.lp.Now()}
	a.out[tid] = tx
	a.started.Inc()

	hint := sim.Time(0)
	if a.hints {
		hint = typ.Lifetime
	}
	// Any of the LM calls below can cascade into a space kill of this very
	// transaction (dispatched synchronously through the sink demux), hence
	// the killed re-checks.
	a.lm.BeginHinted(tid, hint)
	if tx.killed {
		return
	}
	if oid, ok := a.draw(tid); ok {
		a.lm.WriteData(tid, oid, typ.RecordSize)
		if tx.killed {
			return
		}
		tx.oid, tx.haveOID = oid, true
	}
	tx.opened = true
	r := a.peers[remote]
	home, size := a.self, typ.RecordSize
	a.lp.Send(remote, a.d, func() { r.open(home, tid, size) })
	a.lp.After(typ.Lifetime, func() { a.beginCommit(tid) })
}

// open runs on the remote LP: begin the participant branch and write its
// record.
func (a *crossArm) open(home int, tid logrec.TxID, size int) {
	if _, dup := a.in[tid]; dup {
		panic(fmt.Sprintf("multilog: duplicate cross-shard open of %d on shard %d", tid, a.self))
	}
	br := &crossIn{home: home}
	a.in[tid] = br
	a.lm.BeginHinted(tid, 0)
	if br.killed {
		return
	}
	if oid, ok := a.draw(tid); ok {
		a.lm.WriteData(tid, oid, size)
		if br.killed {
			return
		}
		br.oid, br.haveOID = oid, true
	}
}

// beginCommit fires on the home LP at t0+lifetime: ask the participant to
// prepare.
func (a *crossArm) beginCommit(tid logrec.TxID) {
	tx := a.out[tid]
	if tx == nil || tx.killed {
		return
	}
	r := a.peers[tx.remote]
	home := a.self
	a.lp.Send(tx.remote, a.d, func() { r.prepare(home, tid) })
}

// prepare runs on the remote LP: append the PREPARE record; once durable,
// vote commit back to the coordinator. A branch that died before the
// request arrives is simply gone — the home shard has already been told.
func (a *crossArm) prepare(home int, tid logrec.TxID) {
	br := a.in[tid]
	if br == nil || br.killed {
		return
	}
	h := a.peers[home]
	a.lm.Prepare(tid, func() {
		if br.killed {
			return
		}
		a.lp.Send(home, a.d, func() { h.vote(tid) })
	})
}

// vote runs on the home LP: the participant's PREPARE is durable, so log
// the DECIDE — at once the coordinator's own commit and the global
// decision — pinned until the participant retires.
func (a *crossArm) vote(tid logrec.TxID) {
	tx := a.out[tid]
	if tx == nil || tx.killed {
		return
	}
	a.lm.DecideCommit(tid, 1, func() { a.decided(tid) })
}

// decided runs on the home LP when the DECIDE record is durable: the
// transaction is globally committed (the overlay's t4). Tell the
// participant to resolve its in-doubt branch.
func (a *crossArm) decided(tid logrec.TxID) {
	tx := a.out[tid]
	if tx == nil || tx.decided {
		return
	}
	tx.decided = true
	a.committed.Inc()
	a.e2e.Observe((a.lp.Now() - tx.began).Seconds())
	if tx.haveOID {
		a.release(tx.oid, tid)
		tx.haveOID = false
	}
	r := a.peers[tx.remote]
	home := a.self
	a.lp.Send(tx.remote, a.d, func() { r.resolve(home, tid) })
}

// resolve runs on the remote LP: apply the commit decision to the prepared
// branch; when every branch update has flushed the branch retires and the
// coordinator's DECIDE pin is released.
func (a *crossArm) resolve(home int, tid logrec.TxID) {
	br := a.in[tid]
	if br == nil {
		return // branch aborted under a crossing decision: cannot happen for commit, but stay indifferent
	}
	h := a.peers[home]
	a.lm.ResolveCommit(tid, func() {
		a.lp.Send(home, a.d, func() { h.unpin(tid) })
	})
	if br.haveOID {
		a.release(br.oid, tid)
	}
	delete(a.in, tid)
}

// unpin runs on the home LP: the participant branch has fully retired, so
// the DECIDE record no longer needs to be findable and may itself retire.
func (a *crossArm) unpin(tid logrec.TxID) {
	if tx := a.out[tid]; tx != nil {
		a.lm.Unpin(tid)
		delete(a.out, tid)
	}
}

// abortBranch runs on the remote LP after the home branch was killed:
// presumed abort for the participant, whatever phase it reached (core
// accepts active, preparing and prepared branches).
func (a *crossArm) abortBranch(tid logrec.TxID) {
	br := a.in[tid]
	if br == nil {
		return // branch already died locally; both sides are settled
	}
	br.killed = true
	a.lm.ResolveAbort(tid)
	if br.haveOID {
		a.release(br.oid, tid)
	}
	delete(a.in, tid)
}

// peerAborted runs on the home LP after the remote branch was killed: the
// transaction cannot commit, abort the home half. The home branch is
// necessarily still active — a vote (the only path toward DecideCommit)
// requires a durable remote PREPARE, and prepared branches cannot be
// killed.
func (a *crossArm) peerAborted(tid logrec.TxID) {
	tx := a.out[tid]
	if tx == nil || tx.killed {
		return
	}
	tx.killed = true
	a.aborted.Inc()
	a.lm.ResolveAbort(tid)
	if tx.haveOID {
		a.release(tx.oid, tid)
		tx.haveOID = false
	}
	delete(a.out, tid)
}

// killed handles a space-pressure kill of an overlay transaction on this
// LP, routed here by the sink demux. Core fires it synchronously from
// inside whatever LM call provoked the space cascade.
func (a *crossArm) killed(tid logrec.TxID) {
	if tx, ok := a.out[tid]; ok { // home branch killed
		tx.killed = true
		a.aborted.Inc()
		if tx.haveOID {
			a.release(tx.oid, tid)
			tx.haveOID = false
		}
		if tx.opened {
			r := a.peers[tx.remote]
			a.lp.Send(tx.remote, a.d, func() { r.abortBranch(tid) })
		}
		delete(a.out, tid)
		return
	}
	if br, ok := a.in[tid]; ok { // participant branch killed
		br.killed = true
		if br.haveOID {
			a.release(br.oid, tid)
			br.haveOID = false
		}
		h := a.peers[br.home]
		a.lp.Send(br.home, a.d, func() { h.peerAborted(tid) })
		delete(a.in, tid)
		return
	}
	// Unknown tid: the kill crossed resolution bookkeeping; nothing left
	// to clean up.
}

// draw picks a free object from the reserve and records the hold. A
// saturated reserve skips the write (the branch still carries its BEGIN
// record) instead of spinning on the rejection loop.
func (a *crossArm) draw(tid logrec.TxID) (logrec.OID, bool) {
	if uint64(len(a.held)) >= a.reserve {
		return 0, false
	}
	for {
		oid := logrec.OID(a.base + a.lp.Rand().Uint64N(a.reserve))
		if _, taken := a.held[oid]; !taken {
			a.held[oid] = tid
			return oid, true
		}
	}
}

// release drops a hold if tid still owns it.
func (a *crossArm) release(oid logrec.OID, tid logrec.TxID) {
	if a.held[oid] == tid {
		delete(a.held, oid)
	}
}

// Started, Committed and Aborted expose the overlay counters for tests.
func (a *crossArm) Started() uint64   { return a.started.Count() }
func (a *crossArm) Committed() uint64 { return a.committed.Count() }
func (a *crossArm) Aborted() uint64   { return a.aborted.Count() }
