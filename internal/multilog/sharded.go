package multilog

import (
	"ellog/internal/core"
	"ellog/internal/sim"
	"ellog/internal/workload"
)

// ShardedConfig is one full sharded simulation: a multilog System of
// identical partitions, a Router in front of it, and a workload generator
// issuing transactions — a configurable fraction of them cross-shard —
// through the router. The workload's NumShards/CrossShardFrac knobs and
// OIDBase come from here; callers set only the per-shard frame.
type ShardedConfig struct {
	Seed   uint64
	Shards int
	// Hash selects hash declustering: the object space is GLOBAL
	// (Flush.NumObjects is the whole space, not a range width), ownership
	// is by splitmix64 hash, and the workload draws objects from the whole
	// space — transactions go cross-shard exactly when the hash scatters
	// their objects, so CrossShardFrac does not apply.
	Hash     bool
	LM       core.Params
	Flush    core.FlushConfig // per partition; NumObjects is the range width (Hash: the whole space)
	Workload workload.Config  // NumShards/NumObjects/OIDBase are filled in
}

// ShardedLive exposes the assembled components of a sharded run.
type ShardedLive struct {
	Eng    *sim.Engine
	Sys    *System
	Router *Router
	Gen    *workload.Generator
}

// BuildSharded assembles a sharded run without executing it; callers drive
// the engine themselves (crash campaigns stop it mid-flight). The engine
// seeding matches the single-log harness, so a 1-shard sharded run with
// CrossShardFrac 0 reproduces the unsharded workload exactly.
func BuildSharded(cfg ShardedConfig) (*ShardedLive, error) {
	eng := sim.NewEngine(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)
	newSys := New
	if cfg.Hash {
		newSys = NewHash
	}
	sys, err := newSys(eng, cfg.Shards, cfg.LM, cfg.Flush)
	if err != nil {
		return nil, err
	}
	router := NewRouter(sys)
	wcfg := cfg.Workload
	if cfg.Hash {
		// Hash declustering: the generator draws from the whole space
		// (NumShards 1 is the classic whole-space draw) and the router's
		// lazy enlistment turns hash scatter into 2PC organically.
		wcfg.NumShards = 1
		wcfg.NumObjects = cfg.Flush.NumObjects
		wcfg.CrossShardFrac = 0
	} else {
		wcfg.NumShards = cfg.Shards
		wcfg.NumObjects = uint64(cfg.Shards) * cfg.Flush.NumObjects
	}
	wcfg.OIDBase = 0
	gen, err := workload.New(eng, router, wcfg)
	if err != nil {
		return nil, err
	}
	gen.Start()
	return &ShardedLive{Eng: eng, Sys: sys, Router: router, Gen: gen}, nil
}

// RunSharded executes the configuration to its workload runtime and
// returns the live components for inspection.
func RunSharded(cfg ShardedConfig) (*ShardedLive, error) {
	live, err := BuildSharded(cfg)
	if err != nil {
		return nil, err
	}
	live.Eng.Run(cfg.Workload.Runtime)
	return live, nil
}
