// Package linttest runs lint analyzers over fixture packages, in the style
// of golang.org/x/tools/go/analysis/analysistest but built on the standard
// library only.
//
// A fixture is a directory of Go files under internal/lint/testdata/src.
// Expected diagnostics are declared inline with want comments:
//
//	t := time.Now() // want `time\.Now reads the wall clock`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match a diagnostic reported on that line; every
// diagnostic must in turn be matched by a want. //ellint:allow suppressions
// are honored, so a fixture line carrying an allow annotation and no want
// asserts that suppression works.
//
// RunWithSuggestedFixes additionally applies every suggested fix and
// compares the result (gofmt-ed) against the fixture file + ".golden".
package linttest

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ellog/internal/lint"
)

// Run loads the fixture package in dir, applies a, and matches diagnostics
// against want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	runFixture(t, dir, a, false)
}

// RunWithSuggestedFixes is Run plus golden-file verification of the
// analyzer's suggested fixes.
func RunWithSuggestedFixes(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	runFixture(t, dir, a, true)
}

// loadFixture parses and type-checks the fixture package in dir.
func loadFixture(t *testing.T, dir string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parse fixture %s: %v", dir, err)
	}
	info := lint.NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkgPath := "ellint.test/" + filepath.Base(dir)
	pkg, _ := conf.Check(pkgPath, fset, files, info)
	if len(typeErrs) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, typeErrs)
	}
	return fset, files, pkg, info
}

func runFixture(t *testing.T, dir string, a *lint.Analyzer, fixes bool) {
	t.Helper()
	fset, files, pkg, info := loadFixture(t, dir)

	// nil Context: interprocedural analyzers get a facts-free Interp,
	// which is exactly right for self-contained fixture packages.
	diags, err := lint.Check(a, fset, files, pkg, info, nil)
	if err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	checkWants(t, fset, files, a.Name, diags)
	if fixes {
		checkGoldens(t, fset, diags)
	}
}

// RunCompare loads the fixture once, runs two analyzers over it, and
// hands their per-line diagnostic sets to check. Want comments are
// ignored: this exists to assert relationships between two analyzers'
// coverage (e.g. detflow flags laundered sites wallclock misses, and
// the two never double-report one line).
func RunCompare(t *testing.T, dir string, a, b *lint.Analyzer, check func(t *testing.T, aLines, bLines map[int]bool)) {
	t.Helper()
	fset, files, pkg, info := loadFixture(t, dir)
	lines := func(an *lint.Analyzer) map[int]bool {
		diags, err := lint.Check(an, fset, files, pkg, info, nil)
		if err != nil {
			t.Fatalf("analyzer %s: %v", an.Name, err)
		}
		out := make(map[int]bool)
		for _, d := range diags {
			out[fset.Position(d.Pos).Line] = true
		}
		return out
	}
	check(t, lines(a), lines(b))
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// wantRe matches one quoted or backquoted regexp in a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type wantKey struct {
	file string
	line int
}

// collectWants parses `// want "re" ...` comments into per-line regexps.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
					}
					wants[key] = append(wants[key], re)
				}
				if len(wants[key]) == 0 {
					t.Fatalf("%s: want comment with no pattern", pos)
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, name string, diags []lint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	matched := make(map[wantKey][]bool)
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		ok := false
		for i, re := range wants[key] {
			if !matched[key][i] && re.MatchString(d.Message) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, name, d.Message)
		}
	}
	keys := make([]wantKey, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, key := range keys {
		for i, re := range wants[key] {
			if !matched[key][i] {
				t.Errorf("%s:%d: no %s diagnostic matching %q", key.file, key.line, name, re)
			}
		}
	}
}

// checkGoldens applies all suggested fixes per file and compares against
// the .golden neighbor. Both sides are gofmt-ed before comparison so the
// generated edits need not reproduce exact indentation.
func checkGoldens(t *testing.T, fset *token.FileSet, diags []lint.Diagnostic) {
	t.Helper()
	type edit struct {
		lo, hi  int
		newText []byte
	}
	byFile := make(map[string][]edit)
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				file := fset.File(te.Pos)
				if file == nil {
					t.Fatalf("fix edit with position outside fixture")
				}
				byFile[file.Name()] = append(byFile[file.Name()], edit{
					lo: file.Offset(te.Pos), hi: file.Offset(te.End), newText: te.NewText,
				})
			}
		}
	}
	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		edits := byFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].lo > edits[j].lo })
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range edits {
			if i > 0 && e.hi > edits[i-1].lo {
				t.Fatalf("%s: overlapping suggested fixes", name)
			}
			data = append(data[:e.lo:e.lo], append(e.newText, data[e.hi:]...)...)
		}
		got, err := format.Source(data)
		if err != nil {
			t.Fatalf("%s: fixed source does not parse: %v\n%s", name, err, data)
		}
		goldenBytes, err := os.ReadFile(name + ".golden")
		if err != nil {
			t.Fatalf("%s: suggested fixes produced output but no golden file: %v", name, err)
		}
		golden, err := format.Source(goldenBytes)
		if err != nil {
			t.Fatalf("%s.golden does not parse: %v", name, err)
		}
		if string(got) != string(golden) {
			t.Errorf("%s: fixed output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, golden)
		}
	}
}
