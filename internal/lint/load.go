package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// An offline package loader. The module has zero external dependencies, so
// the whole load is: enumerate package directories, parse, topologically
// sort by intra-module imports, and type-check with an importer that
// resolves module packages from the in-memory graph and standard-library
// packages from GOROOT source (go/importer's "source" compiler — no
// network, no pre-built export data needed).

// A Package is one loaded, type-checked package of the module.
type Package struct {
	PkgPath string // full import path, e.g. ellog/internal/sim
	Rel     string // module-relative path, "" for the root package
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// Imports lists the package's intra-module imports (full import
	// paths), for demand-driven fact computation in dependency order.
	Imports []string

	// TypeErrors collects type-checker complaints. The drivers surface
	// them: analyzers over a broken package are unreliable.
	TypeErrors []error
}

// A Loader holds shared parse/type-check state across packages.
type Loader struct {
	Fset *token.FileSet

	root    string // module root directory
	modPath string
	std     types.Importer
	pkgs    map[string]*Package // by import path, in-flight and done
}

// NewLoader locates the module root at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
	}, nil
}

// ModulePath returns the module's import path (from go.mod).
func (l *Loader) ModulePath() string { return l.modPath }

// Lookup returns an already-loaded package by full import path, or nil.
func (l *Loader) Lookup(pkgPath string) *Package { return l.pkgs[pkgPath] }

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
			}
			return d, string(m[1]), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// Load resolves patterns ("./...", "./dir/...", "./dir", import paths) to
// module packages, loads them plus their intra-module dependencies, and
// returns the matched packages in deterministic (path-sorted) order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	rels, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, rel := range rels {
		pkg, err := l.loadRel(rel, nil)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// expand turns CLI patterns into module-relative package dirs.
func (l *Loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var rels []string
	add := func(rel string) {
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		if !seen[rel] {
			seen[rel] = true
			rels = append(rels, rel)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat == "" {
			pat = "."
		}
		if rel, ok := strings.CutSuffix(pat, "..."); ok {
			rel = strings.TrimSuffix(rel, "/")
			if rel == "" || rel == "." {
				rel = ""
			}
			base := filepath.Join(l.root, filepath.FromSlash(rel))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					r, _ := filepath.Rel(l.root, path)
					add(r)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		// A single package: directory path or module import path.
		rel := strings.TrimPrefix(pat, l.modPath+"/")
		if pat == l.modPath {
			rel = ""
		}
		add(rel)
	}
	sort.Strings(rels)
	return rels, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadRel loads the package in module-relative dir rel (and, recursively,
// its intra-module imports). stack carries the DFS path for cycle reports.
// Returns nil for directories with no non-test Go files.
func (l *Loader) loadRel(rel string, stack []string) (*Package, error) {
	pkgPath := l.modPath
	if rel != "" {
		pkgPath = l.modPath + "/" + rel
	}
	if pkg, ok := l.pkgs[pkgPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle: %s", strings.Join(append(stack, pkgPath), " -> "))
		}
		return pkg, nil
	}
	l.pkgs[pkgPath] = nil // in-flight marker
	dir := filepath.Join(l.root, filepath.FromSlash(rel))

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !fileIncluded(name, src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		delete(l.pkgs, pkgPath)
		return nil, nil
	}

	// Load intra-module imports first so the importer can serve them.
	var modImports []string
	seenImp := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != l.modPath && !strings.HasPrefix(path, l.modPath+"/") {
				continue
			}
			if !seenImp[path] {
				seenImp[path] = true
				modImports = append(modImports, path)
			}
			depRel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
			if _, err := l.loadRel(depRel, append(stack, pkgPath)); err != nil {
				return nil, err
			}
		}
	}
	sort.Strings(modImports)

	pkg := &Package{PkgPath: pkgPath, Rel: rel, Dir: dir, Files: files, Info: NewInfo(), Imports: modImports}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(pkgPath, l.Fset, files, pkg.Info)
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// loaderImporter resolves module packages from the loader's graph and
// everything else from GOROOT source.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if pkg, ok := l.pkgs[path]; ok && pkg != nil && pkg.Types != nil {
			return pkg.Types, nil
		}
		return nil, fmt.Errorf("module package %s not loaded", path)
	}
	return l.std.Import(path)
}
