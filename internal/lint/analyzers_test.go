package lint_test

import (
	"path/filepath"
	"testing"

	"ellog/internal/lint"
	"ellog/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestWallclock(t *testing.T) {
	linttest.Run(t, fixture("wallclock"), lint.WallclockAnalyzer)
}

func TestRngsource(t *testing.T) {
	linttest.Run(t, fixture("rngsource"), lint.RngsourceAnalyzer)
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, fixture("maporder"), lint.MaporderAnalyzer)
}

func TestMaporderSuggestedFixes(t *testing.T) {
	linttest.RunWithSuggestedFixes(t, fixture("maporderfix"), lint.MaporderAnalyzer)
}

func TestNilgate(t *testing.T) {
	linttest.Run(t, fixture("nilgate"), lint.NilgateAnalyzer)
}

func TestFloatorder(t *testing.T) {
	linttest.Run(t, fixture("floatorder"), lint.FloatorderAnalyzer)
}
