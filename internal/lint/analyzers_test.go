package lint_test

import (
	"path/filepath"
	"testing"

	"ellog/internal/lint"
	"ellog/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestWallclock(t *testing.T) {
	linttest.Run(t, fixture("wallclock"), lint.WallclockAnalyzer)
}

func TestRngsource(t *testing.T) {
	linttest.Run(t, fixture("rngsource"), lint.RngsourceAnalyzer)
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, fixture("maporder"), lint.MaporderAnalyzer)
}

func TestMaporderSuggestedFixes(t *testing.T) {
	linttest.RunWithSuggestedFixes(t, fixture("maporderfix"), lint.MaporderAnalyzer)
}

func TestNilgate(t *testing.T) {
	linttest.Run(t, fixture("nilgate"), lint.NilgateAnalyzer)
}

func TestFloatorder(t *testing.T) {
	linttest.Run(t, fixture("floatorder"), lint.FloatorderAnalyzer)
}

func TestDetflow(t *testing.T) {
	linttest.Run(t, fixture("detflow"), lint.DetflowAnalyzer)
}

func TestRngflow(t *testing.T) {
	linttest.Run(t, fixture("rngflow"), lint.RngflowAnalyzer)
}

func TestAtomicsafety(t *testing.T) {
	linttest.Run(t, fixture("atomicsafety"), lint.AtomicsafetyAnalyzer)
}

func TestGoroleak(t *testing.T) {
	linttest.Run(t, fixture("goroleak"), lint.GoroleakAnalyzer)
}

func TestErrsink(t *testing.T) {
	linttest.Run(t, fixture("errsink"), lint.ErrsinkAnalyzer)
}

// TestDetflowCatchesWhatWallclockMisses is the acceptance case stated in
// the contract: on the detflow fixture, where time.Now is laundered
// through two wrapper hops, the old wallclock analyzer reports only the
// direct read inside the wrappers and provably misses every laundered
// call site, while detflow flags each one.
func TestDetflowCatchesWhatWallclockMisses(t *testing.T) {
	linttest.RunCompare(t, fixture("detflow"), lint.WallclockAnalyzer, lint.DetflowAnalyzer,
		func(t *testing.T, wallLines, flowLines map[int]bool) {
			for line := range flowLines {
				if wallLines[line] {
					t.Errorf("line %d: wallclock and detflow double-report the same site", line)
				}
			}
			if len(flowLines) == 0 {
				t.Fatalf("detflow reported nothing on its fixture")
			}
			if len(wallLines) == 0 {
				t.Fatalf("wallclock reported nothing: fixture lost its direct clock reads")
			}
		})
}
