package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroleakAnalyzer enforces the goroutine-lifecycle half of the
// real-mode concurrency contract: every goroutine launched in the
// scoped packages must have a reachable stop signal, so shutting down a
// device or a metrics server cannot strand a spinning worker.
//
// The check is per go statement. The launched body (a function literal,
// or a same-package function/method whose declaration is visible) is
// fine when any of these holds:
//
//   - it contains no loop at all — it runs to completion on its own;
//   - it ranges over, or receives from, a channel that some function in
//     the package closes (close(ch) on the same object, including a
//     channel passed as an argument at the go site);
//   - it receives from a context's Done() channel;
//   - it signals a sync.WaitGroup (wg.Done, usually deferred) that some
//     function in the package waits on — the join point proves someone
//     observes termination.
//
// Otherwise the go statement is flagged. Cross-package and interface
// targets are skipped: the contract is enforced where the goroutine is
// launched, and the scoped packages launch only their own code.
var GoroleakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc: "flags goroutines in real-mode packages without a reachable stop signal\n\n" +
		"A looping goroutine must be stoppable: range over a channel the package\n" +
		"closes, receive from a closable channel or ctx.Done(), or signal a\n" +
		"WaitGroup the package waits on. Add a stop signal, or annotate a\n" +
		"deliberately process-lifetime goroutine with //ellint:allow goroleak.",
	Run: runGoroleak,
}

func runGoroleak(pass *Pass) error {
	info := pass.TypesInfo
	closed := make(map[types.Object]bool) // channels close()d anywhere in the package
	waited := make(map[types.Object]bool) // WaitGroups with a .Wait() call
	decls := make(map[*types.Func]*ast.FuncDecl)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
				if _, isBuiltin := objectOf(info, id).(*types.Builtin); isBuiltin {
					if obj := chanObject(info, call.Args[0]); obj != nil {
						closed[obj] = true
					}
				}
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if obj := chanObject(info, sel.X); obj != nil && isWaitGroup(info.TypeOf(sel.X)) {
					waited[obj] = true
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, params := goTarget(info, decls, g)
			if body == nil {
				return true // cross-package or dynamic target: launch site can't see it
			}
			// Bind channel-typed parameters to the argument objects at
			// the go site, so `go watch(reg, n, done)` + `close(done)`
			// resolves.
			bound := make(map[types.Object]types.Object)
			for i, p := range params {
				if i < len(g.Call.Args) {
					if argObj := chanObject(info, g.Call.Args[i]); argObj != nil {
						bound[p] = argObj
					}
				}
			}
			resolve := func(obj types.Object) types.Object {
				if b, ok := bound[obj]; ok {
					return b
				}
				return obj
			}
			if !hasLoop(body) {
				return true
			}
			if hasStopSignal(info, body, closed, waited, resolve) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: g.Pos(),
				End: g.Call.End(),
				Message: "goroutine loops without a reachable stop signal; range over a channel the package closes, " +
					"receive from ctx.Done(), or signal a WaitGroup the package waits on",
			})
			return true
		})
	}
	return nil
}

// goTarget resolves the body a go statement launches, plus the target's
// parameter objects for argument binding. Returns nil for targets whose
// declaration is not visible in this package.
func goTarget(info *types.Info, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) (*ast.BlockStmt, []types.Object) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, nil
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if fd, ok := decls[fn]; ok {
				return fd.Body, paramObjects(info, fd)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if fd, ok := decls[fn]; ok {
					return fd.Body, paramObjects(info, fd)
				}
			}
		}
	}
	return nil, nil
}

func paramObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// hasLoop reports whether body contains any for/range statement,
// including inside nested function literals (which the goroutine may
// invoke).
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// hasStopSignal scans a goroutine body for any of the accepted
// termination signals.
func hasStopSignal(info *types.Info, body *ast.BlockStmt, closed, waited map[types.Object]bool, resolve func(types.Object) types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				if obj := chanObject(info, n.X); obj != nil && closed[resolve(obj)] {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			// <-ctx.Done()
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if m, ok := objectOf(info, sel.Sel).(*types.Func); ok &&
						m.Name() == "Done" && m.Pkg() != nil && m.Pkg().Path() == "context" {
						found = true
					}
				}
				return true
			}
			if obj := chanObject(info, n.X); obj != nil && closed[resolve(obj)] {
				found = true
			}
		case *ast.CallExpr:
			// wg.Done() against a waited-on WaitGroup.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if obj := chanObject(info, sel.X); obj != nil && isWaitGroup(info.TypeOf(sel.X)) && waited[resolve(obj)] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// chanObject resolves an expression to the variable or field object it
// names: an identifier, a field selection, or a pointer dereference of
// either.
func chanObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objectOf(info, e)
	case *ast.SelectorExpr:
		return selectedField(info, e)
	case *ast.StarExpr:
		return chanObject(info, e.X)
	case *ast.UnaryExpr:
		return chanObject(info, e.X)
	}
	return nil
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup"
}
