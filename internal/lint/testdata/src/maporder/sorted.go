package maporder

import "sort"

// goodCollectSort is the canonical deterministic idiom: the appends are
// neutralized by the later sort of the same slice.
func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type row struct {
	name string
	v    int
}

// goodStructSort collects whole rows and sorts them afterwards — also
// deterministic, as in perf.Diff.
func goodStructSort(m map[string]int) []row {
	rows := make([]row, 0, len(m))
	for k, v := range m {
		rows = append(rows, row{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// goodNestedSort: the loop sits inside an if, the sort one block out.
func goodNestedSort(m map[string]int, enabled bool) []string {
	var keys []string
	if enabled {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// badNeverSorted appends but nothing downstream sorts the slice. This file
// imports sort, so the diagnostic carries a suggested fix (exercised by the
// maporderfix fixture; here only the message is asserted).
func badNeverSorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to out`
		out = append(out, k)
	}
	return out
}

// badSortInClosure: a sort inside a later func literal body does not
// neutralize the append — the closure may never run.
func badSortInClosure(m map[string]int) func() {
	var out []string
	for k := range m { // want `appends to out`
		out = append(out, k)
	}
	return func() { sort.Strings(out) }
}
