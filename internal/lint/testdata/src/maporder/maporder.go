// Fixture for the maporder analyzer: order-dependent effects inside map
// iteration. This file deliberately does not import "sort", so none of the
// diagnostics carry suggested fixes (see the maporderfix fixture for those)
// and the sorted.go neighbor holds the sort-exempt idioms.
package maporder

import "fmt"

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `iteration over map m has order-dependent effects \(appends to out\)`
		out = append(out, k)
	}
	return out
}

func badPrint(m map[string]int) {
	for k, v := range m { // want `calls fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

type sink struct{}

func (sink) Emit(string) {}

func badSink(m map[string]bool, s sink) {
	for k := range m { // want `calls s\.Emit`
		s.Emit(k)
	}
}

func badConcat(m map[string]int) string {
	out := ""
	for k := range m { // want `concatenates onto out`
		out += k
	}
	return out
}

func badSend(m map[int]int, ch chan int) {
	for k := range m { // want `sends on ch`
		ch <- k
	}
}

func badFieldAppend(m map[string]int) {
	var r struct{ rows []string }
	for k := range m { // want `appends to r\.rows`
		r.rows = append(r.rows, k)
	}
	_ = r
}

// goodCount only accumulates an integer: commutative, order-independent.
func goodCount(m map[string]int) int {
	n := 0
	for range m {
		n += 1
	}
	return n
}

// goodLocal appends to a slice scoped to the loop body.
func goodLocal(m map[string]int) {
	for k := range m {
		tmp := []string{}
		tmp = append(tmp, k)
		_ = tmp
	}
}

// goodMapBuild writes another map: insertion order does not matter.
func goodMapBuild(m map[string]int) map[string]int {
	inv := make(map[string]int, len(m))
	for k, v := range m {
		inv[k] = v * 2
	}
	return inv
}

func suppressed(m map[string]int) []string {
	var out []string
	//ellint:allow maporder fixture: consumer treats out as an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}
