// Fixture for the nilgate analyzer. The hook and out fields are
// nil-compared somewhere in the package, marking them optional; every
// direct call through them must then be nil-gated. The must field is never
// nil-compared and is assumed required.
package nilgate

type event struct{ at int64 }

type sink interface{ Emit(event) }

type dev struct {
	hook func(int)
	out  sink
	must func()
}

func (d *dev) guardedInline(n int) {
	if d.hook != nil {
		d.hook(n)
	}
}

func (d *dev) guardedEarlyReturn(e event) {
	if d.out == nil {
		return
	}
	d.out.Emit(e)
}

func (d *dev) guardedElse(n int) {
	if d.hook == nil {
		_ = n
	} else {
		d.hook(n)
	}
}

func (d *dev) guardedAndChain(n int) {
	if n > 0 && d.hook != nil {
		d.hook(n)
	}
}

func (d *dev) guardedDeep(events []event) {
	if d.out == nil {
		return
	}
	for _, e := range events {
		if e.at > 0 {
			d.out.Emit(e)
		}
	}
}

func (d *dev) viaLocal() {
	h := d.hook
	if h != nil {
		h(1)
	}
}

func (d *dev) unguardedFunc(n int) {
	d.hook(n) // want `call through optional hook field d\.hook is not nil-gated`
}

func (d *dev) unguardedIface(e event) {
	d.out.Emit(e) // want `call through optional hook field d\.out is not nil-gated`
}

// wrongGuard checks the other hook: no protection for the one called.
func (d *dev) wrongGuard(e event) {
	if d.hook != nil {
		d.out.Emit(e) // want `call through optional hook field d\.out is not nil-gated`
	}
}

// required is never nil-compared in this package, so calls through it are
// assumed safe.
func (d *dev) required() {
	d.must()
}

func (d *dev) suppressed(n int) {
	d.hook(n) //ellint:allow nilgate fixture: constructor always sets hook
}
