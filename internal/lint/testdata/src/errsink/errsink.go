// Fixture for the errsink analyzer: discarded errors on the durability
// surface (os.File write/sync/close/truncate, os.WriteFile, os.Rename).
package errsink

import "os"

func drops(f *os.File, b []byte) {
	f.Write(b)    // want `discarded error from \(\*os\.File\)\.Write on the durability path`
	f.Sync()      // want `discarded error from \(\*os\.File\)\.Sync on the durability path`
	f.Truncate(0) // want `discarded error from \(\*os\.File\)\.Truncate on the durability path`
}

func blanks(f *os.File, b []byte) {
	_ = f.Close()      // want `blanked error from \(\*os\.File\)\.Close`
	n, _ := f.Write(b) // want `blanked error from \(\*os\.File\)\.Write`
	_ = n
}

func deferred(f *os.File) {
	defer f.Close() // want `deferred call discards the error from \(\*os\.File\)\.Close`
}

func helpers(path string) {
	os.WriteFile(path, nil, 0o644) // want `discarded error from os\.WriteFile`
	os.Rename(path, path+".bak")   // want `discarded error from os\.Rename`
}

// checked propagates every error: no diagnostics.
func checked(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// closer is not an os.File: its dropped Close is a style question, not
// a durability violation.
type closer struct{}

func (closer) Close() error { return nil }

func notFile(c closer) {
	c.Close()
}

// reads are off the surface entirely.
func reads(f *os.File, b []byte) {
	f.Read(b)
	f.Name()
}

func suppressed(f *os.File) {
	f.Sync() //ellint:allow errsink fixture: best-effort flush on shutdown path
}
