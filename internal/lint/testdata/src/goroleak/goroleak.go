// Fixture for the goroleak analyzer: goroutines must have a reachable
// stop signal — closable channel, ctx.Done, or a WaitGroup someone
// waits on. Loop-free goroutines terminate on their own.
package goroleak

import (
	"context"
	"sync"
)

type worker struct {
	ch chan int
	wg sync.WaitGroup
}

// leaky spins forever with no signal.
func leaky() {
	go func() { // want `goroutine loops without a reachable stop signal`
		for {
		}
	}()
}

// leakyChan ranges over a channel nobody in the package closes.
func leakyChan(c chan int) {
	go func() { // want `goroutine loops without a reachable stop signal`
		for range c {
		}
	}()
}

// oneShot has no loop: it runs to completion on its own.
func oneShot(c chan int) {
	go func() { c <- 1 }()
}

// start launches a method whose range channel the package closes.
func (w *worker) start() { go w.drain() }

func (w *worker) drain() {
	for range w.ch {
	}
}

func (w *worker) stop() { close(w.ch) }

// watch receives its stop channel as a parameter; the binding at the go
// site connects it to the close in launches.
func watch(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
	}
}

func launches() {
	done := make(chan struct{})
	go watch(done)
	close(done)
}

// ctxLoop stops via context cancellation.
func ctxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// joined signals a WaitGroup the package waits on: the join point
// proves termination is observed.
func (w *worker) joined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
	w.wg.Wait()
}

// suppressed is a deliberate process-lifetime pump.
func suppressed() {
	//ellint:allow goroleak fixture: process-lifetime pump, dies with the process
	go func() {
		for {
		}
	}()
}
