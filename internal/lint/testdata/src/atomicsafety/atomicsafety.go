// Fixture for the atomicsafety analyzer: mixed atomic/plain access to
// legacy-API fields, and copies of values containing atomic state.
package atomicsafety

import "sync/atomic"

// counters mixes a legacy-API atomic field (hits) with a plain one
// (total, only ever touched single-threaded).
type counters struct {
	hits  uint64
	total uint64
}

func (c *counters) bump() { atomic.AddUint64(&c.hits, 1) }

func (c *counters) read() uint64 {
	return c.hits // want `plain access to c\.hits, which is updated with sync/atomic elsewhere in this package`
}

func (c *counters) write() {
	c.hits = 0 // want `plain access to c\.hits, which is updated with sync/atomic`
}

func (c *counters) okAtomic() uint64 { return atomic.LoadUint64(&c.hits) }

func (c *counters) okPlain() uint64 {
	c.total++ // total is never atomic: no diagnostic
	return c.total
}

// localsExempt: atomics on a local followed by a plain read after the
// join is the canonical safe pattern and must not be flagged.
func localsExempt() uint64 {
	var n uint64
	atomic.AddUint64(&n, 1)
	return n
}

// gauge carries new-API atomic state: mixed access is impossible, but
// copies silently fork the counter.
type gauge struct {
	bits atomic.Uint64
}

type board struct {
	g gauge
}

func copyDeref(g *gauge) gauge {
	return *g // want `copying a value of type gauge duplicates its atomic state \(atomic\.Uint64\)`
}

func copyAssign(b *board) {
	local := *b // want `copying a value of type board duplicates its atomic state \(atomic\.Uint64\)`
	_ = local
}

func takesByValue(gauge) {}

func copyArg(g *gauge) {
	takesByValue(*g) // want `copying a value of type gauge duplicates its atomic state`
}

func copyRange(gs []gauge) {
	for _, g := range gs { // want `ranging by value over elements of type gauge duplicates their atomic state`
		_ = g
	}
}

// legacy: a struct whose field is atomic only via the legacy API still
// must not be copied.
type legacy struct{ n uint64 }

func (l *legacy) inc() { atomic.AddUint64(&l.n, 1) }

func copyLegacy(l *legacy) legacy {
	return *l // want `copying a value of type legacy duplicates its atomic state \(field n, updated via atomic\.AddUint64\)`
}

// Sharing by pointer, indexing into atomic slices, and constructing
// fresh values are all fine.
func fine(gs []*gauge) *gauge {
	g := &gauge{}
	g.bits.Store(1)
	for _, p := range gs {
		p.bits.Add(1)
	}
	return g
}

func suppressedRead(c *counters) uint64 {
	return c.hits //ellint:allow atomicsafety fixture: read under external lock
}
