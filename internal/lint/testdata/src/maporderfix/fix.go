// Fixture for the maporder suggested fix: the file imports "sort", keys
// are ordered basic types, so each diagnostic carries the sorted-keys
// rewrite. fix.go.golden holds the expected post-fix source.
package maporderfix

import (
	"fmt"
	"sort"
)

func report(counts map[string]int) {
	for name, n := range counts { // want `calls fmt\.Printf`
		fmt.Printf("%-12s %d\n", name, n)
	}
}

func dumpGens(sizes map[int]float64) {
	for gen := range sizes { // want `calls fmt\.Println`
		fmt.Println(gen, sizes[gen])
	}
}

// sortedCopy keeps the sort import in use before fixes are applied.
func sortedCopy(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}
