// Fixture for the wallclock analyzer: positive, negative, and suppressed
// cases. Each `want` comment is a regexp the diagnostic on that line must
// match.
package wallclock

import "time"

func bad() {
	_ = time.Now()                   // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)     // want `time\.Sleep reads the wall clock`
	_ = time.Since(time.Time{})      // want `time\.Since reads the wall clock`
	_ = time.Until(time.Time{})      // want `time\.Until reads the wall clock`
	_ = time.After(time.Second)      // want `time\.After reads the wall clock`
	_ = time.Tick(time.Second)       // want `time\.Tick reads the wall clock`
	_ = time.NewTimer(time.Second)   // want `time\.NewTimer reads the wall clock`
	_ = time.NewTicker(time.Second)  // want `time\.NewTicker reads the wall clock`
	_ = time.AfterFunc(0, func() {}) // want `time\.AfterFunc reads the wall clock`
}

func good() {
	// Pure value constructors and conversions are deterministic functions
	// of their arguments.
	_ = 5 * time.Millisecond
	_ = time.Duration(7)
	_ = time.Date(1993, time.May, 26, 0, 0, 0, 0, time.UTC)
	_ = time.Unix(0, 0)
	var t time.Time
	_ = t.Add(time.Second)
}

func suppressedTrailing() {
	_ = time.Now() //ellint:allow wallclock fixture: deliberate wall timing
}

func suppressedOwnLine() {
	//ellint:allow wallclock fixture: annotation on the line above
	_ = time.Now()
}
