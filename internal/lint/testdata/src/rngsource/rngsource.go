// Fixture for the rngsource analyzer. Global draws and ad-hoc generator
// construction are flagged; methods on an engine-provided *rand.Rand are
// fine.
package rngsource

import (
	randv1 "math/rand"
	"math/rand/v2"
)

func badGlobals() {
	_ = rand.Int()                     // want `rand\.Int draws from the process-global source`
	_ = rand.IntN(10)                  // want `rand\.IntN draws from the process-global source`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	_ = randv1.Intn(10)                // want `rand\.Intn draws from the process-global source`
}

func badConstructors() {
	_ = rand.New(rand.NewPCG(1, 2))     // want `rand\.New constructs a generator` `rand\.NewPCG constructs a generator`
	_ = randv1.New(randv1.NewSource(7)) // want `rand\.New constructs a generator` `rand\.NewSource constructs a generator`
	_ = rand.NewChaCha8([32]byte{})     // want `rand\.NewChaCha8 constructs a generator`
}

// good draws through a stream the caller obtained from the seeded engine.
func good(rng *rand.Rand) uint64 {
	_ = rng.IntN(10)
	_ = rng.Float64()
	var zero rand.Rand // type references are fine
	_ = zero
	return rng.Uint64()
}

func suppressed() {
	_ = rand.Int() //ellint:allow rngsource fixture: deliberately unseeded
}
