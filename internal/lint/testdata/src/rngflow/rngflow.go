// Fixture for the rngflow analyzer: ad-hoc randomness laundered through
// call hops. Direct math/rand references are rngsource's to flag; rngflow
// reports calls to functions that transitively construct or consume
// unseeded randomness.
package rngflow

import "math/rand"

// makeGen constructs its own generator; the construction sites are
// rngsource's to flag, not rngflow's.
func makeGen() *rand.Rand { return rand.New(rand.NewSource(42)) }

// wrapper launders the construction through one hop.
func wrapper() int {
	return makeGen().Int() // want `call to rngflow\.makeGen transitively reaches ad-hoc randomness \(rngflow\.makeGen → rand\.New\)`
}

// twoHops is the two-hop laundering case.
func twoHops() int {
	return wrapper() // want `call to rngflow\.wrapper transitively reaches ad-hoc randomness \(rngflow\.wrapper → rngflow\.makeGen → rand\.New\)`
}

// injected draws from a generator handed in by the caller: method calls
// on a *rand.Rand value are clean — the stream was seeded elsewhere.
func injected(r *rand.Rand) int { return r.Intn(10) }

func usesInjected(r *rand.Rand) int { return injected(r) }

// suppressed is an audited ad-hoc consumer; the allow sanitizes the
// summary so callers stay clean.
func suppressed() int {
	return wrapper() //ellint:allow rngflow fixture: audited throwaway sampling
}

func callsSuppressed() int { return suppressed() }
