// Fixture for the floatorder analyzer: float reduction in map-iteration or
// goroutine order is flagged; integer accumulation and slice-order
// reduction are fine.
package floatorder

func badMapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum is order-dependent`
	}
	return sum
}

func badMapExpandedForm(m map[int]float64) float64 {
	total := 0.0
	for k := range m {
		total = total + m[k] // want `float accumulation into total`
	}
	return total
}

func badMapProduct(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `float accumulation into p`
	}
	return p
}

type stats struct{ mean float64 }

func badFieldAccum(m map[string]float64) stats {
	var s stats
	for _, v := range m {
		s.mean += v // want `float accumulation into s\.mean`
	}
	return s
}

func badGoroutine(xs []float64) float64 {
	var sum float64
	done := make(chan struct{})
	for _, x := range xs {
		x := x
		go func() {
			sum += x // want `goroutine completion order is scheduler-dependent`
			done <- struct{}{}
		}()
	}
	for range xs {
		<-done
	}
	return sum
}

// goodIntCount: integer addition commutes exactly.
func goodIntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// goodSliceSum: slice iteration order is deterministic.
func goodSliceSum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// goodLoopLocal: the accumulator lives inside the loop body.
func goodLoopLocal(m map[string]float64) {
	for _, v := range m {
		scaled := 0.0
		scaled += v
		_ = scaled
	}
}

func suppressed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ellint:allow floatorder fixture: downstream compares with tolerance
	}
	return sum
}
