// Fixture for the detflow analyzer: wall-clock taint laundered through
// call hops. Direct time.Now sites are wallclock's to flag, so they carry
// no want here; detflow reports at the call (or reference) sites of
// tainted functions — the gap the local analyzer provably misses.
package detflow

import "time"

// hop2 reads the clock directly. wallclock would flag this line; detflow
// does not (no double-reporting of the same site).
func hop2() time.Time { return time.Now() }

// hop1 launders the clock through one hop: the old wallclock analyzer
// sees nothing on this line.
func hop1() time.Time {
	return hop2() // want `call to detflow\.hop2 transitively reaches the wall clock \(detflow\.hop2 → time\.Now\)`
}

// use is two hops from the clock — the acceptance case.
func use() time.Time {
	return hop1() // want `call to detflow\.hop1 transitively reaches the wall clock \(detflow\.hop1 → detflow\.hop2 → time\.Now\)`
}

type ticker struct{}

// now reads the clock directly (wallclock's site, not detflow's).
func (t *ticker) now() time.Time { return time.Now() }

// methodCall resolves the concrete method to its declared-type target.
func methodCall() time.Time {
	var t ticker
	return t.now() // want `call to \(\*detflow\.ticker\)\.now transitively reaches the wall clock`
}

// passes cannot be tainted by its dynamic argument: calling a function
// parameter resolves to no edge.
func passes(f func() time.Time) time.Time { return f() }

// refSite leaks the clock by handing a tainted function away as a value.
func refSite() time.Time {
	return passes(hop2) // want `reference to detflow\.hop2 transitively reaches the wall clock`
}

// clock is the seam shape: interface dispatch resolves to no edge, so
// code that takes its time through an interface is clean by design.
type clock interface{ Now() time.Time }

func throughSeam(c clock) time.Time { return c.Now() }

// pingPong exercises recursion: the fixpoint converges and the self-call
// reports once the function's own summary is tainted.
func pingPong(n int) time.Time {
	if n%2 == 0 {
		return pingPong(n - 1) // want `call to detflow\.pingPong transitively reaches the wall clock`
	}
	return hop2() // want `call to detflow\.hop2 transitively reaches the wall clock`
}

// pure is deterministic: no diagnostics anywhere below.
func pure(d time.Duration) time.Time {
	return time.Unix(0, 0).Add(d)
}

func usesPure() time.Time { return pure(time.Second) }

// suppressed is an audited wall-clock consumer; the allow both silences
// the report and sanitizes the summary, so callers stay clean.
func suppressed() time.Time {
	return hop1() //ellint:allow detflow fixture: audited wall-clock experiment
}

func callsSuppressed() time.Time { return suppressed() }
