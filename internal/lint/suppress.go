package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression syntax
//
// A site that deliberately breaks a rule carries an explicit annotation:
//
//	start := time.Now() //ellint:allow wallclock harness wall-clock timing
//
// or, on its own line immediately above the flagged statement:
//
//	//ellint:allow maporder output feeds a set, order is irrelevant
//	for k := range m { ... }
//
// The first whitespace-delimited token after "ellint:allow" is a
// comma-separated list of rule names; everything after it is a free-form
// reason (strongly encouraged — the annotation is the audit trail for why
// the determinism contract tolerates the site). A trailing allow comment
// suppresses matching diagnostics on its own line only; a standalone allow
// comment also covers the line directly below it, so two consecutive
// violations never share one annotation by accident.

const allowPrefix = "ellint:allow"

// allowSet records, per file line, which rules are allowed there.
type allowSet map[int]map[string]bool

// collectAllows scans the comments of files for //ellint:allow annotations.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string]allowSet {
	byFile := make(map[string]allowSet)
	for _, f := range files {
		code := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(text[len(allowPrefix):])
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				set := byFile[pos.Filename]
				if set == nil {
					set = make(allowSet)
					byFile[pos.Filename] = set
				}
				lines := []int{pos.Line}
				if !code[pos.Line] {
					// Standalone comment: it annotates the line below.
					lines = append(lines, pos.Line+1)
				}
				for _, rule := range strings.Split(fields[0], ",") {
					rule = strings.TrimSpace(rule)
					if rule == "" {
						continue
					}
					for _, line := range lines {
						m := set[line]
						if m == nil {
							m = make(map[string]bool)
							set[line] = m
						}
						m[rule] = true
					}
				}
			}
		}
	}
	return byFile
}

// codeLines marks the lines of f that contain non-comment tokens, so a
// trailing allow comment can be told apart from a standalone one.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return true
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// suppressed reports whether d is covered by an //ellint:allow annotation.
func suppressed(fset *token.FileSet, allows map[string]allowSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	set := allows[pos.Filename]
	if set == nil {
		return false
	}
	return set[pos.Line][d.Category]
}

// Filter drops diagnostics covered by //ellint:allow annotations in files.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	allows := collectAllows(fset, files)
	if len(allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(fset, allows, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
