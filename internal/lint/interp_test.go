package lint

import (
	"strings"
	"testing"
)

// loadOne loads a single package from a temp module and returns its
// Interp built without cross-package facts.
func loadOne(t *testing.T, root, rel string) (*Loader, *Package, *Interp) {
	t.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./" + rel})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	return loader, pkg, NewInterp(loader.Fset, pkg.Files, pkg.Types, pkg.Info, nil)
}

func summaryFor(t *testing.T, in *Interp, name string) *FuncSummary {
	t.Helper()
	for _, fn := range in.funcs {
		if fn.Name() == name {
			return in.sums[fn]
		}
	}
	t.Fatalf("no function %q in package", name)
	return nil
}

func TestInterpSummaries(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		"p.go": `package det

import (
	"os"
	"time"
)

type clock interface{ Now() time.Time }

type wall struct{}

func (wall) Now() time.Time { return time.Now() }

func direct() time.Time { return time.Now() }

func wrapped() time.Time { return direct() }

func twoHops() time.Time { return wrapped() }

// Interface dispatch is the seam: no edge, no taint, even though the
// only implementation in scope is tainted.
func seam(c clock) time.Time { return c.Now() }

// Mutual recursion must converge, with both halves tainted.
func pingA(n int) time.Time {
	if n == 0 {
		return direct()
	}
	return pingB(n - 1)
}

func pingB(n int) time.Time { return pingA(n) }

// A method value taken from a concrete receiver is a conservative edge.
func methodValue() func() time.Time {
	var w wall
	return w.Now
}

func spawns() { go func() {}() }

func drops(f *os.File) { f.Close() }

func pure(n int) int { return n * 2 }
`,
	})
	_, _, in := loadOne(t, root, "")

	cases := []struct {
		fn        string
		wallclock bool
		via       string // "" means direct (or don't care when !wallclock)
	}{
		{"direct", true, ""},
		{"wrapped", true, "example.test/det.direct"},
		{"twoHops", true, "example.test/det.wrapped"},
		{"pingA", true, "example.test/det.direct"},
		{"methodValue", true, "(example.test/det.wall).Now"},
	}
	for _, c := range cases {
		sum := summaryFor(t, in, c.fn)
		if (sum.Wallclock != nil) != c.wallclock {
			t.Errorf("%s: Wallclock = %+v, want tainted=%v", c.fn, sum.Wallclock, c.wallclock)
			continue
		}
		if c.wallclock && sum.Wallclock.Via != c.via {
			t.Errorf("%s: Via = %q, want %q", c.fn, sum.Wallclock.Via, c.via)
		}
		if c.wallclock && sum.Wallclock.Root != "time.Now" {
			t.Errorf("%s: Root = %q, want time.Now", c.fn, sum.Wallclock.Root)
		}
	}
	// pingB's taint arrives through pingA; either hop is acceptable as
	// Via, but taint itself is mandatory (fixpoint convergence).
	if sum := summaryFor(t, in, "pingB"); sum.Wallclock == nil {
		t.Errorf("pingB: recursion did not converge to tainted")
	}
	for _, clean := range []string{"seam", "pure"} {
		if sum := summaryFor(t, in, clean); sum.Wallclock != nil {
			t.Errorf("%s: unexpectedly tainted via %+v", clean, sum.Wallclock)
		}
	}
	if sum := summaryFor(t, in, "spawns"); !sum.Spawns {
		t.Errorf("spawns: Spawns not recorded")
	}
	if sum := summaryFor(t, in, "drops"); sum.Dropped != 1 {
		t.Errorf("drops: Dropped = %d, want 1", sum.Dropped)
	}
}

func TestInterpExportSealsRng(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		"internal/sim/s.go": `package sim

import "math/rand/v2"

func New(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 1)) }
`,
	})
	_, pkg, in := loadOne(t, root, "internal/sim")
	sealed := in.Export(SealsRng(pkg.Rel))
	if sum := sealed.Funcs["example.test/det/internal/sim.New"]; sum != nil && sum.Rng != nil {
		t.Errorf("sealed export still carries Rng taint: %+v", sum.Rng)
	}
	open := in.Export(false)
	sum := open.Funcs["example.test/det/internal/sim.New"]
	if sum == nil || sum.Rng == nil {
		t.Errorf("unsealed export lost Rng taint: %+v", sum)
	}
}

// TestCrossPackageTaint drives the full standalone pipeline: a helper
// package launders time.Now, a determinism-scoped package calls it, and
// detflow reports at the caller with the chain.
func TestCrossPackageTaint(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		"internal/util/u.go": `package util

import "time"

func WallNow() time.Time { return time.Now() }
`,
		"internal/core/c.go": `package core

import "example.test/det/internal/util"

func Stamp() int64 { return util.WallNow().UnixNano() }
`,
	})
	findings, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var wall, flow int
	for _, f := range findings {
		switch f.Analyzer {
		case "wallclock":
			wall++
			if !strings.Contains(f.Pos.Filename, "util") {
				t.Errorf("wallclock reported outside util: %s", f)
			}
		case "detflow":
			flow++
			if !strings.Contains(f.Pos.Filename, "core") {
				t.Errorf("detflow reported outside core: %s", f)
			}
			if !strings.Contains(f.Message, "util.WallNow → time.Now") {
				t.Errorf("detflow chain missing: %s", f.Message)
			}
		}
	}
	if wall != 1 || flow != 1 {
		t.Errorf("wallclock=%d detflow=%d, want 1 and 1; findings:\n%s",
			wall, flow, FormatFindings(findings, root))
	}
}

// TestRngSealAcrossPackages: calling into internal/sim (the PCG seam) is
// clean; calling an identical constructor in a non-seam package is not.
func TestRngSealAcrossPackages(t *testing.T) {
	const gen = `package %s

import "math/rand/v2"

func New(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 1)) }
`
	root := writeTempModule(t, map[string]string{
		"go.mod":             tempGoMod,
		"internal/sim/s.go":  strings.Replace(gen, "%s", "sim", 1),
		"internal/gens/g.go": strings.Replace(gen, "%s", "gens", 1),
		"internal/work/w.go": `package work

import (
	"example.test/det/internal/gens"
	"example.test/det/internal/sim"
)

func FromSeam(seed uint64) int { return sim.New(seed).IntN(6) }

func FromAdHoc(seed uint64) int { return gens.New(seed).IntN(6) }
`,
	})
	findings, err := Run(root, []string{"./internal/work"})
	if err != nil {
		t.Fatal(err)
	}
	var flows []string
	for _, f := range findings {
		if f.Analyzer == "rngflow" {
			flows = append(flows, f.Message)
		}
	}
	if len(flows) != 1 {
		t.Fatalf("rngflow findings = %d, want exactly 1 (the ad-hoc path):\n%s",
			len(flows), strings.Join(flows, "\n"))
	}
	if !strings.Contains(flows[0], "gens.New") {
		t.Errorf("rngflow flagged the wrong path: %s", flows[0])
	}
}

// TestAtomicFactsAcrossPackages: a field updated atomically by its own
// package, read plainly by a dependent package.
func TestAtomicFactsAcrossPackages(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		"internal/stat/s.go": `package stat

import "sync/atomic"

type Counter struct{ N uint64 }

func (c *Counter) Inc() { atomic.AddUint64(&c.N, 1) }
`,
		"internal/view/v.go": `package view

import "example.test/det/internal/stat"

func Read(c *stat.Counter) uint64 { return c.N }
`,
	})
	findings, err := Run(root, []string{"./internal/view"})
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	for _, f := range findings {
		if f.Analyzer == "atomicsafety" && strings.Contains(f.Message, "c.N") {
			hits++
			if !strings.Contains(f.Message, "by the package that owns it") {
				t.Errorf("message should attribute the atomic access to the owning package: %s", f.Message)
			}
		}
	}
	if hits != 1 {
		t.Errorf("atomicsafety cross-package findings = %d, want 1:\n%s",
			hits, FormatFindings(findings, root))
	}
}

// TestRulesetSeamConsistency pins RngSealPackages to rngflow's Skip
// list: the seam definition and the scope exemption must not drift.
func TestRulesetSeamConsistency(t *testing.T) {
	rule := RuleByName("rngflow")
	if rule == nil {
		t.Fatal("no rngflow rule in Ruleset")
	}
	if got, want := strings.Join(rule.Scope.Skip, ","), strings.Join(RngSealPackages, ","); got != want {
		t.Errorf("rngflow Skip = %s, RngSealPackages = %s; keep them identical", got, want)
	}
	// detflow's scope must match wallclock's: same exemption rationale.
	dw, ww := RuleByName("detflow"), RuleByName("wallclock")
	if got, want := strings.Join(dw.Scope.Skip, ","), strings.Join(ww.Scope.Skip, ","); got != want {
		t.Errorf("detflow Skip = %s, wallclock Skip = %s; keep them identical", got, want)
	}
}

// TestShortFuncName pins the chain rendering's name trimming.
func TestShortFuncName(t *testing.T) {
	cases := map[string]string{
		"ellog/internal/realdev.Run":              "realdev.Run",
		"(*ellog/internal/realdev.Device).syncer": "(*realdev.Device).syncer",
		"(ellog/internal/lint.Scope).Applies":     "(lint.Scope).Applies",
		"time.Now":                                "time.Now",
		"main.main":                               "main.main",
	}
	for in, want := range cases {
		if got := shortFuncName(in); got != want {
			t.Errorf("shortFuncName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestInterpAllowSanitizesSummary: an //ellint:allow at the tainting
// site keeps the function's exported summary clean, so callers (and
// callers' callers) need no annotations of their own.
func TestInterpAllowSanitizesSummary(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		"p.go": `package det

import "time"

func audited() time.Time {
	return time.Now() //ellint:allow wallclock test: audited site
}

func caller() time.Time { return audited() }
`,
	})
	_, _, in := loadOne(t, root, "")
	if sum := summaryFor(t, in, "audited"); sum.Wallclock != nil {
		t.Errorf("audited: allow did not sanitize the root: %+v", sum.Wallclock)
	}
	if sum := summaryFor(t, in, "caller"); sum.Wallclock != nil {
		t.Errorf("caller: taint leaked through a sanitized summary: %+v", sum.Wallclock)
	}
}
