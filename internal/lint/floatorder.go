package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The floatorder rule targets a subtler replay hazard than maporder: float
// addition is not associative, so reducing values into a float accumulator
// in map-iteration order (randomized per run) or goroutine-completion
// order (scheduler-dependent) produces results that differ in the low bits
// between replays — enough to break byte-identical stats and the
// parallel-equals-sequential contract. Integer accumulation commutes
// exactly and is not flagged; reductions over slices are in deterministic
// order and are fine.
//
// Flagged shapes:
//   - `sum += x` (or -=, *=, /=, or `sum = sum + x`) on a float-typed
//     accumulator declared outside a `for ... range m` over a map
//   - the same accumulation inside a `go func() { ... }()` body on a
//     captured float variable
//
// The deterministic alternatives: reduce over sorted keys, or have workers
// return per-shard partials that the coordinator folds in a fixed order
// (see internal/metrics.Histogram.Merge and runner's result ordering).

// FloatorderAnalyzer implements the floatorder rule.
var FloatorderAnalyzer = &Analyzer{
	Name: "floatorder",
	Doc: "flag float accumulation in map-iteration or goroutine order; float " +
		"addition is non-associative, so nondeterministic reduction order " +
		"changes low bits between replays. Reduce over sorted keys or fold " +
		"fixed-order partials instead.",
	Run: runFloatorder,
}

func runFloatorder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				reportFloatAccum(pass, n.Body, n, "map-iteration order is randomized per run")
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					reportFloatAccum(pass, lit.Body, lit, "goroutine completion order is scheduler-dependent")
				}
			}
			return true
		})
	}
	return nil
}

// reportFloatAccum flags float accumulation inside body onto variables
// declared outside scope.
func reportFloatAccum(pass *Pass, body *ast.BlockStmt, scope ast.Node, why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 {
			return true
		}
		if !isFloatAccum(pass, assign) {
			return true
		}
		obj := lhsObject(pass, assign.Lhs[0])
		if obj == nil || declaredWithin(obj, scope) {
			return true
		}
		pass.Report(Diagnostic{
			Pos: assign.Pos(),
			End: assign.End(),
			Message: "float accumulation into " + exprText(pass.Fset, assign.Lhs[0]) +
				" is order-dependent (" + why + "); float addition is " +
				"non-associative — reduce in a fixed order instead",
		})
		return true
	})
}

// isFloatAccum reports whether assign accumulates onto a float-typed
// target: `x op= e` or `x = x + e`.
func isFloatAccum(pass *Pass, assign *ast.AssignStmt) bool {
	tv, ok := pass.TypesInfo.Types[assign.Lhs[0]]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return false
	}
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		bin, ok := ast.Unparen(assign.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return sameObjectExpr(pass, assign.Lhs[0], bin.X)
		}
	}
	return false
}
