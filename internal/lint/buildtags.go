package lint

import (
	"go/build/constraint"
	"runtime"
	"strings"
)

// Build-constraint filtering for the offline loader. The module's only
// platform-split package is internal/realdev (the O_DIRECT open path), but
// without this filter the loader would parse both halves of a GOOS split
// into one package and report bogus redeclaration type errors. Only the
// constraints the module actually uses are understood: filename GOOS/GOARCH
// suffixes and //go:build lines over goos, goarch, unix and go1.N tags.

// fileIncluded reports whether a file named name with contents src belongs
// to the package when building for the host platform.
func fileIncluded(name string, src []byte) bool {
	if !matchFileSuffix(name) {
		return false
	}
	for _, line := range strings.Split(leadingComments(src), "\n") {
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue // malformed constraint: let the type checker complain
		}
		if !expr.Eval(matchTag) {
			return false
		}
	}
	return true
}

// leadingComments returns the file contents up to the package clause —
// the only region where a //go:build line is effective.
func leadingComments(src []byte) string {
	head := string(src)
	if i := strings.Index(head, "\npackage "); i >= 0 {
		head = head[:i]
	}
	return head
}

func matchTag(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixOS[runtime.GOOS]
	case strings.HasPrefix(tag, "go1"):
		// Release tags: the toolchain compiling this code satisfies any
		// go1.N the module (go.mod) is allowed to require.
		return true
	}
	return false
}

// matchFileSuffix implements the _GOOS, _GOARCH and _GOOS_GOARCH filename
// constraints. A lone component (e.g. a file named linux.go) is not a
// constraint.
func matchFileSuffix(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 {
			if osPart := parts[len(parts)-2]; knownOS[osPart] && osPart != runtime.GOOS {
				return false
			}
		}
		return true
	}
	if knownOS[last] && last != runtime.GOOS {
		return false
	}
	return true
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}
