package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// The maporder rule flags `for ... range m` over a map whose body has
// order-dependent effects: Go randomizes map iteration order per run, so
// any output, accumulation, or event scheduling performed inside the loop
// varies between bit-identical replays. This is exactly the bug class fixed
// by hand in PR 4 (per-type counters printed in elsim -v).
//
// Order-dependent effects recognized in the body:
//   - appending to a slice declared outside the loop
//   - concatenating onto a string declared outside the loop
//   - sending on a channel
//   - calling a sink method (Write*, Emit, Encode, Schedule, Print*) or a
//     fmt printing function
//
// The canonical deterministic idiom is exempt: appends into a slice that a
// later statement in an enclosing block passes to sort/slices are
// discounted, because sorting collapses the insertion order. This covers
// both collect-keys-then-sort:
//
//	names := make([]string, 0, len(m))
//	for name := range m { names = append(names, name) }
//	sort.Strings(names)
//
// and collect-structs-then-sort (e.g. perf.Diff building deltas). Loops
// whose body only reads, counts, or writes other maps are
// order-independent and not flagged. Where the key type is ordered and the
// file imports "sort", the analyzer attaches a suggested fix that rewrites
// the loop to iterate over sorted keys (apply with `ellint -fix`).

// MaporderAnalyzer implements the maporder rule.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration with order-dependent effects (slice appends, sink " +
		"writes, event scheduling); map order is randomized per run, so such " +
		"loops must iterate over sorted keys to keep replays bit-identical.",
	Run: runMaporder,
}

// sinkMethods are method names whose call inside a map-range body is
// treated as an order-dependent effect.
var sinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Emit":        true,
	"Encode":      true,
	"Schedule":    true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		parents := buildParents([]*ast.File{f})
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			mapType, isMap := tv.Type.Underlying().(*types.Map)
			if !isMap {
				return true
			}
			effects := orderEffects(pass, parents, rng)
			if len(effects) == 0 {
				return true
			}
			d := Diagnostic{
				Pos: rng.For,
				End: rng.X.End(),
				Message: fmt.Sprintf(
					"iteration over map %s has order-dependent effects (%s); map order "+
						"is randomized per run — iterate over sorted keys",
					exprText(pass.Fset, rng.X), strings.Join(effects, ", ")),
			}
			if fix, ok := sortedKeysFix(pass, f, rng, mapType); ok {
				d.SuggestedFixes = []SuggestedFix{fix}
			}
			pass.Report(d)
			return true
		})
	}
	return nil
}

// appendTarget returns the object a statement `s = append(s, ...)` appends
// to, or nil if stmt is not a self-append. Via selOK it also accepts
// appends through a field selector (outer state by construction).
func appendTarget(pass *Pass, stmt ast.Stmt) (types.Object, ast.Expr) {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil, nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil, nil
	}
	if _, isBuiltin := objectOf(pass.TypesInfo, fn).(*types.Builtin); !isBuiltin {
		return nil, nil
	}
	switch lhs := ast.Unparen(assign.Lhs[0]).(type) {
	case *ast.Ident:
		return objectOf(pass.TypesInfo, lhs), assign.Lhs[0]
	case *ast.SelectorExpr:
		if obj := selectedField(pass.TypesInfo, lhs); obj != nil {
			return obj, assign.Lhs[0]
		}
	}
	return nil, nil
}

// orderEffects scans the body of a map-range loop for operations whose
// result depends on iteration order, returning human-readable descriptions.
func orderEffects(pass *Pass, parents parentMap, rng *ast.RangeStmt) []string {
	var effects []string
	seen := make(map[string]bool)
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			effects = append(effects, s)
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if obj, lhs := appendTarget(pass, n); obj != nil && !declaredWithin(obj, rng) {
				if !sortedLater(pass, parents, rng, obj) {
					add("appends to " + exprText(pass.Fset, lhs))
				}
				return true
			}
			// String concatenation onto outer state: x += e or x = x + e.
			// (Float accumulation is the floatorder rule's concern.)
			if len(n.Lhs) == 1 && isStringConcat(pass, n) {
				if obj := lhsObject(pass, n.Lhs[0]); obj != nil && !declaredWithin(obj, rng) {
					add("concatenates onto " + exprText(pass.Fset, n.Lhs[0]))
				}
			}
		case *ast.SendStmt:
			add("sends on " + exprText(pass.Fset, n.Chan))
		case *ast.CallExpr:
			if pkg, name := pkgFunc(pass.TypesInfo, n); pkg == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				add("calls fmt." + name)
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if _, isSel := pass.TypesInfo.Selections[sel]; isSel && sinkMethods[sel.Sel.Name] {
					add("calls " + exprText(pass.Fset, sel))
				}
			}
		}
		return true
	})
	return effects
}

// isStringConcat reports whether assign is `x += e` or `x = x + ...` with a
// string-typed left-hand side.
func isStringConcat(pass *Pass, assign *ast.AssignStmt) bool {
	tv, ok := pass.TypesInfo.Types[assign.Lhs[0]]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	switch assign.Tok {
	case token.ADD_ASSIGN:
		return true
	case token.ASSIGN:
		bin, ok := ast.Unparen(assign.Rhs[0]).(*ast.BinaryExpr)
		return ok && bin.Op == token.ADD && sameObjectExpr(pass, assign.Lhs[0], bin.X)
	}
	return false
}

// lhsObject resolves an assignment target to its object (ident or field).
func lhsObject(pass *Pass, e ast.Expr) types.Object {
	switch lhs := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objectOf(pass.TypesInfo, lhs)
	case *ast.SelectorExpr:
		return selectedField(pass.TypesInfo, lhs)
	}
	return nil
}

// sameObjectExpr reports whether a and b are identifiers naming the same
// object.
func sameObjectExpr(pass *Pass, a, b ast.Expr) bool {
	ai, ok := ast.Unparen(a).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := ast.Unparen(b).(*ast.Ident)
	if !ok {
		return false
	}
	ao := objectOf(pass.TypesInfo, ai)
	return ao != nil && ao == objectOf(pass.TypesInfo, bi)
}

// sortedLater reports whether slice obj, appended to inside rng, is passed
// to a sort or slices function by a statement that runs after the loop:
// sorting collapses the nondeterministic insertion order, so the append is
// not an order-dependent effect. The search walks outward block by block
// (stopping at the enclosing function) and looks only at statements after
// the one containing the loop.
func sortedLater(pass *Pass, parents parentMap, rng *ast.RangeStmt, obj types.Object) bool {
	for cur := ast.Node(rng); cur != nil; cur = parents[cur] {
		switch parent := parents[cur].(type) {
		case *ast.BlockStmt:
			after := false
			for _, stmt := range parent.List {
				if stmt == cur {
					after = true
					continue
				}
				if after && sortsObject(pass, stmt, obj) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

// sortsObject reports whether stmt contains a call to a sort or slices
// package function with obj among its arguments. Calls inside func
// literals do not count: a deferred or returned closure may never run.
func sortsObject(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, _ := pkgFunc(pass.TypesInfo, call); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && objectOf(pass.TypesInfo, id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// sortedKeysFix builds the mechanical rewrite to a sorted-keys loop. It is
// offered only when the rewrite is clearly safe: the key is a fresh ident
// of ordered basic type (string or integer), the map expression is a simple
// ident or selector (evaluated twice by the rewrite), and the file already
// imports "sort".
func sortedKeysFix(pass *Pass, f *ast.File, rng *ast.RangeStmt, mapType *types.Map) (SuggestedFix, bool) {
	if rng.Tok != token.DEFINE {
		return SuggestedFix{}, false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return SuggestedFix{}, false
	}
	basic, ok := mapType.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsString|types.IsInteger) == 0 {
		return SuggestedFix{}, false
	}
	switch ast.Unparen(rng.X).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return SuggestedFix{}, false
	}
	if !importsPath(f, "sort") {
		return SuggestedFix{}, false
	}
	body, ok := sourceRange(pass.Fset, rng.Body.Lbrace+1, rng.Body.Rbrace)
	if !ok {
		return SuggestedFix{}, false
	}

	keysName := "keys"
	if identDeclaredInFile(pass, f, keysName) {
		keysName = "sortedKeys"
		if identDeclaredInFile(pass, f, keysName) {
			return SuggestedFix{}, false
		}
	}
	qual := func(p *types.Package) string {
		if p == pass.Pkg {
			return ""
		}
		return p.Name()
	}
	mapText := exprText(pass.Fset, rng.X)
	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keysName, types.TypeString(mapType.Key(), qual), mapText)
	fmt.Fprintf(&b, "for %s := range %s {\n%s = append(%s, %s)\n}\n", key.Name, mapText, keysName, keysName, key.Name)
	fmt.Fprintf(&b, "sort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n", keysName, keysName, keysName)
	fmt.Fprintf(&b, "for _, %s := range %s {\n", key.Name, keysName)
	if v, ok := rng.Value.(*ast.Ident); ok && v.Name != "_" {
		fmt.Fprintf(&b, "%s := %s[%s]\n", v.Name, mapText, key.Name)
	}
	b.WriteString(strings.TrimRight(body, "\n\t "))
	b.WriteString("\n}")

	return SuggestedFix{
		Message: "iterate over sorted keys",
		TextEdits: []TextEdit{{
			Pos:     rng.Pos(),
			End:     rng.End(),
			NewText: []byte(b.String()),
		}},
	}, true
}

// importsPath reports whether file f imports the given path.
func importsPath(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// identDeclaredInFile reports whether name is declared anywhere in f.
func identDeclaredInFile(pass *Pass, f *ast.File, name string) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if pass.TypesInfo.Defs[id] != nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// sourceRange reads the raw source text between two positions, preserving
// comments that go/printer would drop.
func sourceRange(fset *token.FileSet, from, to token.Pos) (string, bool) {
	file := fset.File(from)
	if file == nil || fset.File(to) != file {
		return "", false
	}
	data, err := os.ReadFile(file.Name())
	if err != nil {
		return "", false
	}
	lo, hi := file.Offset(from), file.Offset(to)
	if lo < 0 || hi > len(data) || lo > hi {
		return "", false
	}
	return string(data[lo:hi]), true
}
