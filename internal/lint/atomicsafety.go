package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicsafetyAnalyzer enforces the real-mode memory contract: state
// accessed through sync/atomic anywhere must be accessed atomically
// everywhere, and values containing atomic state must be shared by
// pointer, never duplicated.
//
// Two distinct hazards are flagged:
//
//   - Mixed access: a field or package variable updated with the legacy
//     sync/atomic functions (atomic.AddUint64(&x.n, 1)) that is also read
//     or written plainly. The plain access is a data race even when it
//     "only reads a counter". Knowledge of which fields are atomic
//     crosses package boundaries through facts, so a dependent package
//     reading a field its dependency updates atomically is caught too.
//   - Copies: assigning, passing, returning, or ranging over a value
//     whose type (transitively, by value) contains a sync/atomic type —
//     e.g. copying an obs/live Histogram would silently fork its bucket
//     counters. The new-API atomic types make mixed access impossible
//     but make accidental copies easy; this is the check `go vet`'s
//     copylocks does for mutexes, extended to atomic state.
//
// Local variables are exempt from the mixed-access rule: the common
// pattern of atomics on a closure-captured local followed by a plain
// read after the goroutines are joined is safe, and flagging it would
// teach people to ignore the analyzer.
var AtomicsafetyAnalyzer = &Analyzer{
	Name: "atomicsafety",
	Doc: "flags mixed atomic/plain access to fields and copies of atomic-bearing values\n\n" +
		"A field updated via sync/atomic must be accessed atomically at every\n" +
		"site (including in dependent packages); values whose type contains\n" +
		"atomic state must be shared by pointer. Fix the access, or annotate a\n" +
		"provably-synchronized site with //ellint:allow atomicsafety.",
	Run:         runAtomicsafety,
	NeedsInterp: true,
}

// atomicOldAPI matches the legacy sync/atomic function families that
// take a pointer to the word they operate on.
func atomicOldAPI(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// plainAccess is one non-atomic use of an object known to be atomic.
type plainAccess struct {
	pos, end token.Pos
	id       string
	name     string // display name, e.g. "hits" or "devMetrics.writes"
	imported bool   // atomic knowledge came from a dependency's facts
}

// atomicTable is the package's atomic-access knowledge, built once by
// the interprocedural layer and shared between fact export and the
// atomicsafety analyzer.
type atomicTable struct {
	// atomicIDs are stable cross-package IDs (pkgpath.Type.field or
	// pkgpath.var) for state this package touches through sync/atomic.
	atomicIDs map[string]bool
	// atomicObjs maps the same state to the atomic call that proves it,
	// for diagnostics.
	atomicObjs map[types.Object]string
	// plain records every plain access to atomic state.
	plain []plainAccess
}

// atomicID derives the stable ID for a field or package-level variable,
// or "" when the object has no cross-package identity (locals, fields of
// anonymous structs).
func atomicID(obj types.Object, recv types.Type) string {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	if !v.IsField() {
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return "" // local: no cross-package identity, and exempt anyway
	}
	if recv == nil {
		return ""
	}
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return ""
	}
	return tn.Pkg().Path() + "." + tn.Name() + "." + v.Name()
}

// collectAtomics builds the package's atomic-access table. Pass one
// finds the legacy-API atomic call sites and records their operands;
// pass two finds every other access to those operands (or to state a
// dependency's facts mark atomic).
func collectAtomics(fset *token.FileSet, files []*ast.File, info *types.Info, facts *Facts) *atomicTable {
	t := &atomicTable{
		atomicIDs:  make(map[string]bool),
		atomicObjs: make(map[types.Object]string),
	}
	ids := make(map[types.Object]string) // object → stable ID
	consumed := make(map[ast.Expr]bool)  // operand exprs inside atomic calls
	record := func(operand ast.Expr, how string) {
		operand = ast.Unparen(operand)
		consumed[operand] = true
		var obj types.Object
		var recv types.Type
		switch e := operand.(type) {
		case *ast.SelectorExpr:
			sel, ok := info.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				return
			}
			obj, recv = sel.Obj(), sel.Recv()
		case *ast.Ident:
			obj = objectOf(info, e)
		default:
			return
		}
		if obj == nil {
			return
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || (!v.IsField() && v.Parent() != v.Pkg().Scope()) {
			return // locals are exempt
		}
		t.atomicObjs[obj] = how
		if id := atomicID(obj, recv); id != "" {
			t.atomicIDs[id] = true
			ids[obj] = id
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			pkgPath, name := pkgFunc(info, call)
			if pkgPath != "sync/atomic" || !atomicOldAPI(name) {
				return true
			}
			if addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && addr.Op == token.AND {
				record(addr.X, "atomic."+name)
			}
			return true
		})
	}
	// Pass two: plain accesses. A selector or identifier that resolves to
	// known-atomic state and is not an operand of an atomic call.
	seen := make(map[*ast.Ident]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				seen[e.Sel] = true
				if consumed[e] {
					return true
				}
				sel, ok := info.Selections[e]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				obj := sel.Obj()
				id := atomicID(obj, sel.Recv())
				t.notePlain(e.Pos(), e.End(), obj, id, exprString(e), facts)
			case *ast.Ident:
				if seen[e] || consumed[e] {
					return true
				}
				obj := objectOf(info, e)
				if v, ok := obj.(*types.Var); !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
					return true
				}
				t.notePlain(e.Pos(), e.End(), obj, atomicID(obj, nil), e.Name, facts)
			}
			return true
		})
	}
	return t
}

func (t *atomicTable) notePlain(pos, end token.Pos, obj types.Object, id, name string, facts *Facts) {
	if _, local := t.atomicObjs[obj]; local {
		t.plain = append(t.plain, plainAccess{pos: pos, end: end, id: id, name: name})
		return
	}
	if id != "" && facts != nil && facts.AtomicID(id) {
		t.plain = append(t.plain, plainAccess{pos: pos, end: end, id: id, name: name, imported: true})
	}
}

func exprString(e *ast.SelectorExpr) string {
	if x, ok := ast.Unparen(e.X).(*ast.Ident); ok {
		return x.Name + "." + e.Sel.Name
	}
	return e.Sel.Name
}

func runAtomicsafety(pass *Pass) error {
	in := pass.Interp
	if in == nil {
		return fmt.Errorf("atomicsafety requires the interprocedural layer")
	}
	for _, p := range in.atomics.plain {
		where := "elsewhere in this package"
		if p.imported {
			where = "by the package that owns it"
		}
		pass.Report(Diagnostic{
			Pos: p.pos,
			End: p.end,
			Message: fmt.Sprintf("plain access to %s, which is updated with sync/atomic %s; mixed atomic/plain access is a data race — use the atomic API at every site",
				p.name, where),
		})
	}
	reportAtomicCopies(pass, in)
	return nil
}

// reportAtomicCopies flags value copies of types that contain atomic
// state, mirroring vet's copylocks shape.
func reportAtomicCopies(pass *Pass, in *Interp) {
	info := pass.TypesInfo
	copies := func(e ast.Expr) (string, bool) {
		e = ast.Unparen(e)
		switch e.(type) {
		// Only flag copies of *existing* values. Composite literals and
		// calls construct or receive fresh state; taking an address is
		// sharing, not copying.
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return "", false
		}
		t := info.TypeOf(e)
		if t == nil {
			return "", false
		}
		part := atomicPart(t, in.atomics.atomicObjs, 0)
		return part, part != ""
	}
	report := func(n ast.Node, e ast.Expr, part string) {
		t := info.TypeOf(ast.Unparen(e))
		pass.Report(Diagnostic{
			Pos: n.Pos(),
			End: n.End(),
			Message: fmt.Sprintf("copying a value of type %s duplicates its atomic state (%s); share it by pointer instead",
				types.TypeString(t, types.RelativeTo(pass.Pkg)), part),
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to the blank identifier discards the
					// value: no second copy survives to race.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if part, ok := copies(rhs); ok {
						report(rhs, rhs, part)
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if part, ok := copies(arg); ok {
						report(arg, arg, part)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if part, ok := copies(res); ok {
						report(res, res, part)
					}
				}
			case *ast.RangeStmt:
				v := n.Value
				if v == nil {
					return true
				}
				if t := info.TypeOf(v); t != nil {
					if part := atomicPart(t, in.atomics.atomicObjs, 0); part != "" {
						pass.Report(Diagnostic{
							Pos: v.Pos(),
							End: v.End(),
							Message: fmt.Sprintf("ranging by value over elements of type %s duplicates their atomic state (%s); range by index and take pointers instead",
								types.TypeString(t, types.RelativeTo(pass.Pkg)), part),
						})
					}
				}
			}
			return true
		})
	}
}

// atomicPart reports the innermost atomic component reachable from t by
// value (through struct fields and array elements, never through
// pointers, slices, maps or channels), or "" if none. Both the new-API
// named types (atomic.Uint64 and friends) and fields this package
// updates through the legacy API count.
func atomicPart(t types.Type, owned map[types.Object]string, depth int) string {
	if depth > 10 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return "atomic." + named.Obj().Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if how, ok := owned[f]; ok {
				return fmt.Sprintf("field %s, updated via %s", f.Name(), how)
			}
			if part := atomicPart(f.Type(), owned, depth+1); part != "" {
				return part
			}
		}
	case *types.Array:
		return atomicPart(u.Elem(), owned, depth+1)
	}
	return ""
}
