package lint

import "fmt"

// DetflowAnalyzer flags calls (and function-value references) whose
// target transitively reaches a wall-clock read or timer without going
// through the sim.Clock seam. The local wallclock analyzer catches a
// direct time.Now() in determinism-scoped code; detflow catches the
// laundered version — a helper that wraps time.Now(), or a call into
// another package whose implementation does. Direct references to the
// time package stay wallclock's job, so the two rules never report the
// same site twice.
//
// The legitimate route is the interface seam: code that takes its clock
// as a sim.Clock (or sim.Source) is invisible to this analyzer because
// interface dispatch resolves to no call edge. That asymmetry is the
// point — the contract is "time flows in through the seam", and the
// analyzer's blind spot is exactly the shape the contract permits.
var DetflowAnalyzer = &Analyzer{
	Name: "detflow",
	Doc: "flags calls that transitively reach time.Now/timers outside the sim.Clock seam\n\n" +
		"A wrapper around time.Now (any number of hops deep, including in another\n" +
		"module package) taints its callers; calling a tainted function from a\n" +
		"determinism-scoped package is reported at the call site with the full\n" +
		"call chain. Take the clock through the sim.Clock interface instead, or\n" +
		"annotate audited wall-clock experiments with //ellint:allow detflow.",
	Run:         runDetflow,
	NeedsInterp: true,
}

// RngflowAnalyzer is detflow's RNG twin: it flags calls whose target
// transitively constructs or consumes ad-hoc randomness instead of
// drawing from the seeded PCG seam. Packages that own generator
// construction (RngSealPackages) export sealed summaries, so calling
// into them is clean by definition.
var RngflowAnalyzer = &Analyzer{
	Name: "rngflow",
	Doc: "flags calls that transitively reach global math/rand or ad-hoc generator construction\n\n" +
		"A helper that seeds its own rand.Rand (or leans on the global source)\n" +
		"taints its callers; calling it from determinism-scoped code is reported\n" +
		"at the call site with the full call chain. Draw randomness from the\n" +
		"engine's seeded PCG stream (sim.Source) instead.",
	Run:         runRngflow,
	NeedsInterp: true,
}

func runDetflow(pass *Pass) error { return runFlow(pass, true) }
func runRngflow(pass *Pass) error { return runFlow(pass, false) }

func runFlow(pass *Pass, wallclock bool) error {
	in := pass.Interp
	if in == nil {
		return fmt.Errorf("%s requires the interprocedural layer", map[bool]string{true: "detflow", false: "rngflow"}[wallclock])
	}
	for _, fn := range in.funcs {
		for _, e := range in.edges[fn] {
			cs := in.SummaryOf(e.callee)
			if cs == nil {
				continue
			}
			var tp *TaintPath
			if wallclock {
				tp = cs.Wallclock
			} else {
				tp = cs.Rng
			}
			if tp == nil {
				continue
			}
			pass.Report(Diagnostic{
				Pos:     e.pos,
				End:     e.end,
				Message: flowMessage(in, e, wallclock),
			})
		}
	}
	return nil
}

func flowMessage(in *Interp, e edge, wallclock bool) string {
	verb := "call to"
	if e.isRef {
		verb = "reference to"
	}
	chain := in.Chain(e.callee, wallclock)
	if wallclock {
		return fmt.Sprintf("%s %s transitively reaches the wall clock (%s); determinism-scoped code must take time through the sim.Clock seam",
			verb, shortFuncName(e.callee.FullName()), chain)
	}
	return fmt.Sprintf("%s %s transitively reaches ad-hoc randomness (%s); determinism-scoped code must draw from the seeded sim.Source stream",
		verb, shortFuncName(e.callee.FullName()), chain)
}
