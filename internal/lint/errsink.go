package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrsinkAnalyzer polices the durability surface: in the real-backend
// packages, a discarded error from a file write, fsync, truncate, or
// close is silent data loss — exactly the failure ephemeral logging's
// recovery story cannot tolerate, because the log is the only copy of
// recent history. The check is deliberately narrow (os.File methods and
// the handful of os helpers that move bytes to disk) so that every
// finding is actionable; ordinary dropped errors elsewhere stay a style
// question, not a lint error.
var ErrsinkAnalyzer = &Analyzer{
	Name: "errsink",
	Doc: "flags discarded errors on the durability path (os.File Write/Sync/Close/Truncate, os.WriteFile, os.Rename)\n\n" +
		"A swallowed write or fsync error means the log silently diverges from\n" +
		"what the caller was promised is durable. Propagate the error (the\n" +
		"device's completion callbacks carry one), or annotate a provably\n" +
		"harmless site with //ellint:allow errsink and say why.",
	Run: runErrsink,
}

// errsinkFileMethods is the os.File durability surface.
var errsinkFileMethods = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"Sync":        true,
	"Close":       true,
	"Truncate":    true,
}

// errsinkOsFuncs are package-level os helpers that write to disk.
var errsinkOsFuncs = map[string]bool{
	"WriteFile": true,
	"Rename":    true,
	"Remove":    true,
}

// durabilityCall reports whether call targets the durability surface,
// returning a display name like "(*os.File).Sync".
func durabilityCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := objectOf(info, sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		if fn.Pkg().Path() == "os" && errsinkOsFuncs[fn.Name()] {
			return "os." + fn.Name(), true
		}
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	if tn.Pkg() != nil && tn.Pkg().Path() == "os" && tn.Name() == "File" && errsinkFileMethods[fn.Name()] {
		return "(*os.File)." + fn.Name(), true
	}
	return "", false
}

func runErrsink(pass *Pass) error {
	info := pass.TypesInfo
	flag := func(call *ast.CallExpr, form string) {
		name, ok := durabilityCall(info, call)
		if !ok {
			return
		}
		pass.Report(Diagnostic{
			Pos:     call.Pos(),
			End:     call.End(),
			Message: fmt.Sprintf("%s error from %s on the durability path; a swallowed I/O error here is silent data loss", form, name),
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					flag(call, "discarded")
				}
			case *ast.DeferStmt:
				flag(n.Call, "deferred call discards the")
			case *ast.GoStmt:
				flag(n.Call, "goroutine launch discards the")
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				// The error is the final result; flag when that slot is
				// the blank identifier.
				last := ast.Unparen(n.Lhs[len(n.Lhs)-1])
				if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
					flag(call, "blanked")
				}
			}
			return true
		})
	}
	return nil
}
