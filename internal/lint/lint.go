// Package lint is a self-contained static-analysis suite that mechanically
// enforces the repository's determinism contract (see DESIGN.md, section
// "Determinism contract").
//
// The artifact's results are only trustworthy because a (seed, config) pair
// replays bit-identically. Earlier PRs promised that by convention ("all
// hooks nil-gated", "byte-identical parallel vs sequential") and the
// per-type map-order bug fixed in PR 4 shows convention leaks. This package
// turns the contract into machine-checked rules:
//
//	wallclock    — no wall-clock time in simulator code (virtual clock only)
//	rngsource    — every random draw flows from a seeded engine stream
//	maporder     — no order-dependent effects inside map iteration
//	nilgate      — optional hook fields are nil-gated at every call site
//	floatorder   — no float reduction in map- or goroutine-order
//	detflow      — no transitive wall-clock reach outside the sim.Clock seam
//	rngflow      — no transitive ad-hoc randomness outside the PCG seam
//	atomicsafety — atomic state is atomic everywhere, and never copied
//	goroleak     — real-mode goroutines have a reachable stop signal
//	errsink      — no discarded errors on the durability path
//
// The first five are local (one function at a time); the last five sit on
// an interprocedural layer (interp.go) that builds a call graph and
// per-function summaries, propagated across packages as facts.
//
// The framework mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Diagnostic, SuggestedFix) but is built purely on the standard
// library's go/ast and go/types so the module keeps zero external
// dependencies. Analyzers are pure rules; which packages each rule applies
// to is a driver concern (see ruleset.go), and individual sites are
// suppressed with an explicit comment (see suppress.go):
//
//	//ellint:allow <rule>[,<rule>...] <reason>
//
// Run the suite with `go run ./cmd/ellint ./...` or as a vet tool with
// `go vet -vettool=$(which ellint) ./...`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one rule of the determinism contract.
type Analyzer struct {
	// Name identifies the rule in diagnostics and in //ellint:allow
	// suppressions. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description: what the rule forbids and why
	// the determinism contract needs it.
	Doc string

	// Run applies the rule to a single type-checked package and reports
	// findings through the pass.
	Run func(*Pass) error

	// NeedsInterp marks analyzers that consume the interprocedural
	// layer; the drivers build (or thread) an Interp into the pass
	// before running them.
	NeedsInterp bool
}

// A Pass provides one analyzer run with a single type-checked package and
// collects its diagnostics. It deliberately mirrors analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Rel is the module-relative package path ("" at the root), when the
	// driver knows it.
	Rel string

	// Interp is the package's interprocedural context; non-nil whenever
	// the analyzer declares NeedsInterp.
	Interp *Interp

	diags []Diagnostic
}

// A Context carries driver-level state into an analyzer run: the
// package's module-relative path and, for interprocedural analyzers, a
// pre-built Interp (typically constructed with cross-package facts).
type Context struct {
	Rel    string
	Interp *Interp
}

// Report records a diagnostic, stamping the analyzer's name as category.
func (p *Pass) Report(d Diagnostic) {
	if d.Category == "" {
		d.Category = p.Analyzer.Name
	}
	p.diags = append(p.diags, d)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, optionally carrying mechanical fixes.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // or NoPos
	Category string    // analyzer name; filled in by Report
	Message  string

	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is a mechanical rewrite that resolves the diagnostic.
// Edits within one fix must not overlap.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// run executes a on one package and returns the raw (unsuppressed)
// diagnostics. A nil ctx is fine: an Interp without cross-package facts
// is built on demand for analyzers that need one.
func run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, ctx *Context) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	if ctx != nil {
		pass.Rel = ctx.Rel
		pass.Interp = ctx.Interp
	}
	if a.NeedsInterp && pass.Interp == nil {
		pass.Interp = NewInterp(fset, files, pkg, info, nil)
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return pass.diags, nil
}

// NewInfo returns a types.Info with every map analyzers rely on allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
