package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The interprocedural layer: a call graph over the typed loader plus
// per-function summaries, with taint propagated transitively. The local
// analyzers (wallclock, rngsource) flag a forbidden *site*; the summaries
// here record that a *function* reaches such a site through any number of
// call hops, so the flow analyzers (detflow, rngflow) can flag the caller
// that launders the dependency through a wrapper.
//
// Summaries cross package boundaries as Facts: the standalone driver
// computes them for dependencies on demand from the loader's graph, and
// the vet-tool driver serializes them through cmd/go's .vetx files (the
// same channel x/tools analysis facts ride). Functions are keyed by
// types.Func.FullName, which is stable across source and export-data
// type-checking.
//
// Resolution rules, deliberately conservative in opposite directions:
//
//   - Direct calls and method calls on concrete receivers resolve to the
//     declared target (the "declared-type target" — a method value
//     obj.M or a call x.M() where x's static type is not an interface).
//   - References to a function as a value (passing time.Now as a
//     callback) taint the referencing function: we cannot see when it
//     runs, so we assume it does.
//   - Calls through interface methods resolve to nothing. This is not a
//     soundness hole, it is the seam: sim.Clock / sim.Source is exactly
//     the interface determinism-scoped code is supposed to take its
//     clock and randomness through, and an interface call is the one
//     shape replay tooling can re-bind.
//
// An //ellint:allow at a site is an audited decision that the site is
// fine, so it sanitizes the summary too: the allowed root (or call edge)
// contributes no taint, and callers of the annotated function stay
// clean rather than needing annotations all the way up the call chain.

// A TaintPath explains why a function is tainted: the forbidden root it
// reaches and the first call hop on the way there ("" when the root is
// referenced directly in the function's own body).
type TaintPath struct {
	Root string `json:"root"`          // e.g. "time.Now" or "rand.IntN"
	Via  string `json:"via,omitempty"` // FullName of the callee hop
}

// A FuncSummary is what one function's body means to its callers.
type FuncSummary struct {
	// Wallclock is non-nil when the function transitively reaches a
	// wall-clock read or timer (the wallclockForbidden set).
	Wallclock *TaintPath `json:"wallclock,omitempty"`
	// Rng is non-nil when the function transitively reaches the global
	// math/rand source or ad-hoc generator construction.
	Rng *TaintPath `json:"rng,omitempty"`
	// Spawns reports that the body contains a go statement.
	Spawns bool `json:"spawns,omitempty"`
	// Dropped counts call statements whose final error result is
	// silently discarded (any callee, not just the durability surface
	// errsink polices).
	Dropped int `json:"dropped_errors,omitempty"`
}

// PkgFacts is the serialized interprocedural knowledge of one package —
// the wire format stored in .vetx files and in the standalone driver's
// fact store.
type PkgFacts struct {
	// Funcs maps types.Func FullName to its summary.
	Funcs map[string]*FuncSummary `json:"funcs,omitempty"`
	// Atomic lists IDs (pkgpath.Type.field or pkgpath.var) of fields and
	// package variables accessed through sync/atomic somewhere in the
	// package.
	Atomic []string `json:"atomic,omitempty"`
}

// Facts aggregates imported summaries across dependency packages.
type Facts struct {
	funcs  map[string]*FuncSummary
	atomic map[string]bool
}

// NewFacts returns an empty fact set.
func NewFacts() *Facts {
	return &Facts{funcs: make(map[string]*FuncSummary), atomic: make(map[string]bool)}
}

// Add merges one package's facts.
func (f *Facts) Add(pf PkgFacts) {
	for name, sum := range pf.Funcs {
		f.funcs[name] = sum
	}
	for _, id := range pf.Atomic {
		f.atomic[id] = true
	}
}

// Summary returns the imported summary for a function FullName, or nil.
func (f *Facts) Summary(fullName string) *FuncSummary { return f.funcs[fullName] }

// AtomicID reports whether the field/var ID was seen under sync/atomic
// in any imported package.
func (f *Facts) AtomicID(id string) bool { return f.atomic[id] }

// An edge is one resolved call (or function-value reference) site.
type edge struct {
	callee *types.Func
	pos    token.Pos
	end    token.Pos
	isRef  bool // referenced as a value rather than called
}

// Interp is the per-package interprocedural context handed to analyzers
// with NeedsInterp set.
type Interp struct {
	fset  *token.FileSet
	pkg   *types.Package
	info  *types.Info
	facts *Facts

	funcs []*types.Func // declared functions, source order
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*FuncSummary
	edges map[*types.Func][]edge

	// byName indexes local summaries for chain rendering.
	byName map[string]*FuncSummary

	// atomics is the package's atomic/plain field-access table, shared
	// with the atomicsafety analyzer.
	atomics *atomicTable

	allows map[string]allowSet
}

// NewInterp builds the call graph and summaries for one type-checked
// package. facts supplies dependency summaries and may be nil.
func NewInterp(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *Facts) *Interp {
	if facts == nil {
		facts = NewFacts()
	}
	in := &Interp{
		fset:   fset,
		pkg:    pkg,
		info:   info,
		facts:  facts,
		decls:  make(map[*types.Func]*ast.FuncDecl),
		sums:   make(map[*types.Func]*FuncSummary),
		edges:  make(map[*types.Func][]edge),
		byName: make(map[string]*FuncSummary),
		allows: collectAllows(fset, files),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			in.funcs = append(in.funcs, fn)
			in.decls[fn] = fd
			in.sums[fn] = &FuncSummary{}
		}
	}
	for _, fn := range in.funcs {
		in.walkBody(fn, in.decls[fn])
	}
	in.propagate()
	for _, fn := range in.funcs {
		in.byName[fn.FullName()] = in.sums[fn]
	}
	in.atomics = collectAtomics(fset, files, info, facts)
	return in
}

// allowedAt reports whether any of the rule names is allowed on the
// line of pos.
func (in *Interp) allowedAt(pos token.Pos, rules ...string) bool {
	p := in.fset.Position(pos)
	set := in.allows[p.Filename]
	if set == nil {
		return false
	}
	for _, r := range rules {
		if set[p.Line][r] {
			return true
		}
	}
	return false
}

// walkBody collects taint roots, call edges and local bookkeeping from
// one function body. Function literals inside the body are attributed to
// the enclosing declaration: a root inside a closure taints the function
// that built the closure, which is the conservative direction.
func (in *Interp) walkBody(fn *types.Func, fd *ast.FuncDecl) {
	sum := in.sums[fn]
	seen := make(map[*ast.Ident]bool) // idents consumed as part of a SelectorExpr
	called := make(map[ast.Node]bool) // expressions in call-operand position
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			called[ast.Unparen(n.Fun)] = true
		case *ast.GoStmt:
			sum.Spawns = true
		case *ast.ExprStmt:
			if dropsError(in.info, n.X) {
				sum.Dropped++
			}
		case *ast.DeferStmt:
			if dropsError(in.info, n.Call) {
				sum.Dropped++
			}
		case *ast.SelectorExpr:
			seen[n.Sel] = true
			if sel, ok := in.info.Selections[n]; ok {
				// Method value or method expression on a value. Interface
				// receivers are the seam; concrete receivers resolve to
				// the declared-type target.
				if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
					if m, ok := sel.Obj().(*types.Func); ok && !types.IsInterface(sel.Recv()) {
						in.addEdge(fn, m, n, called[n])
					}
				}
				return true
			}
			in.addRootOrEdge(fn, sum, n, objectOf(in.info, n.Sel), called[n])
		case *ast.Ident:
			if seen[n] {
				return true
			}
			// Unqualified references: same-package functions (and
			// dot-imported ones, which the module does not use).
			if m, ok := in.info.Uses[n].(*types.Func); ok {
				if m.Type().(*types.Signature).Recv() == nil {
					in.addRootOrEdge(fn, sum, n, m, called[n])
				}
			}
		}
		return true
	})
}

// addRootOrEdge classifies one function reference: a forbidden stdlib
// root, a call-graph edge, or nothing (unknown stdlib, builtins).
func (in *Interp) addRootOrEdge(fn *types.Func, sum *FuncSummary, site ast.Node, obj types.Object, isCall bool) {
	m, ok := obj.(*types.Func)
	if !ok || m.Pkg() == nil {
		return
	}
	switch m.Pkg().Path() {
	case "time":
		if wallclockForbidden[m.Name()] && sum.Wallclock == nil &&
			!in.allowedAt(site.Pos(), "wallclock", "detflow") {
			sum.Wallclock = &TaintPath{Root: "time." + m.Name()}
		}
		return
	case "math/rand", "math/rand/v2":
		if sum.Rng == nil && !in.allowedAt(site.Pos(), "rngsource", "rngflow") {
			sum.Rng = &TaintPath{Root: "rand." + m.Name()}
		}
		return
	}
	in.addEdge(fn, m, site, isCall)
}

func (in *Interp) addEdge(fn *types.Func, callee *types.Func, site ast.Node, isCall bool) {
	in.edges[fn] = append(in.edges[fn], edge{
		callee: callee,
		pos:    site.Pos(),
		end:    site.End(),
		isRef:  !isCall,
	})
}

// dropsError reports whether e is a call whose final result is an error
// that the statement form discards.
func dropsError(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	return finalIsError(tv.Type)
}

func finalIsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// SummaryOf resolves a function's summary: local declarations first,
// then imported facts. Returns nil for functions with no knowledge
// (stdlib, interface methods, bodyless declarations).
func (in *Interp) SummaryOf(fn *types.Func) *FuncSummary {
	if _, ok := in.decls[fn]; ok {
		return in.sums[fn]
	}
	return in.facts.Summary(fn.FullName())
}

func (in *Interp) summaryByName(name string) *FuncSummary {
	if s, ok := in.byName[name]; ok {
		return s
	}
	return in.facts.Summary(name)
}

// propagate runs the transitive-taint fixpoint over the package's call
// edges. Cross-package callees resolve through the fact store; recursion
// converges because taint only ever turns on.
func (in *Interp) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fn := range in.funcs {
			sum := in.sums[fn]
			for _, e := range in.edges[fn] {
				cs := in.SummaryOf(e.callee)
				if cs == nil {
					continue
				}
				if sum.Wallclock == nil && cs.Wallclock != nil && !in.allowedAt(e.pos, "detflow") {
					sum.Wallclock = &TaintPath{Root: cs.Wallclock.Root, Via: e.callee.FullName()}
					changed = true
				}
				if sum.Rng == nil && cs.Rng != nil && !in.allowedAt(e.pos, "rngflow") {
					sum.Rng = &TaintPath{Root: cs.Rng.Root, Via: e.callee.FullName()}
					changed = true
				}
			}
		}
	}
}

// Export serializes the package's summaries and atomic field set for
// dependent packages. sealRng strips RNG taint: the packages that own
// seeded-generator construction (the Ruleset's RngSealPackages) are the
// PCG seam, so calling into them is how everyone else is SUPPOSED to
// obtain randomness and must not read as taint. Wall-clock taint is
// never sealed — the legitimate route to the clock is the sim.Clock
// interface, not a concrete call into an exempt package.
func (in *Interp) Export(sealRng bool) PkgFacts {
	pf := PkgFacts{Funcs: make(map[string]*FuncSummary, len(in.funcs))}
	for _, fn := range in.funcs {
		sum := *in.sums[fn]
		if sealRng {
			sum.Rng = nil
		}
		if sum == (FuncSummary{}) {
			continue
		}
		s := sum
		pf.Funcs[fn.FullName()] = &s
	}
	for id := range in.atomics.atomicIDs {
		pf.Atomic = append(pf.Atomic, id)
	}
	sort.Strings(pf.Atomic)
	return pf
}

// Chain renders the call path from a tainted callee down to its root,
// e.g. "realdev.Run → (*realdev.Device).syncer → time.Now". Names are
// trimmed to their package base for readability.
func (in *Interp) Chain(callee *types.Func, wallclock bool) string {
	var parts []string
	name := callee.FullName()
	for depth := 0; depth < 8; depth++ {
		parts = append(parts, shortFuncName(name))
		s := in.summaryByName(name)
		if s == nil {
			break
		}
		tp := s.Wallclock
		if !wallclock {
			tp = s.Rng
		}
		if tp == nil {
			break
		}
		if tp.Via == "" {
			parts = append(parts, tp.Root)
			break
		}
		name = tp.Via
	}
	return strings.Join(parts, " → ")
}

// shortFuncName trims the package path of a FullName to its base:
// "ellog/internal/realdev.Run" → "realdev.Run",
// "(*ellog/internal/realdev.Device).syncer" → "(*realdev.Device).syncer".
func shortFuncName(full string) string {
	trim := func(s string) string {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if rest, ok := strings.CutPrefix(full, "(*"); ok {
		if i := strings.Index(rest, ")"); i >= 0 {
			return "(*" + trim(rest[:i]) + rest[i:]
		}
	}
	if rest, ok := strings.CutPrefix(full, "("); ok {
		if i := strings.Index(rest, ")"); i >= 0 {
			return "(" + trim(rest[:i]) + rest[i:]
		}
	}
	return trim(full)
}
