package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "suppress_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestAllowParsing(t *testing.T) {
	fset, f := parseOne(t, `package p

func f() {
	_ = 1 //ellint:allow wallclock harness timing
	_ = 2 //ellint:allow wallclock,maporder two rules, one comment
	//ellint:allow rngsource on the line above the site
	_ = 3
	_ = 4 // ordinary comment, no allow
	//ellint:allow
	_ = 5
}
`)
	allows := collectAllows(fset, []*ast.File{f})
	set := allows["suppress_fixture.go"]
	if set == nil {
		t.Fatal("no allows collected")
	}
	cases := []struct {
		line int
		rule string
		want bool
	}{
		{4, "wallclock", true},
		{4, "maporder", false},
		{5, "wallclock", true},
		{5, "maporder", true},
		{7, "rngsource", true}, // own-line comment covers the next line
		{6, "rngsource", true}, // ... and its own line
		{8, "wallclock", false},
		{10, "rngsource", false}, // bare allow with no rule list is inert
	}
	for _, c := range cases {
		if got := set[c.line][c.rule]; got != c.want {
			t.Errorf("line %d rule %s: allowed=%v, want %v", c.line, c.rule, got, c.want)
		}
	}
}

func TestFilterDropsSuppressed(t *testing.T) {
	fset, f := parseOne(t, `package p

func f() {
	_ = 1 //ellint:allow wallclock reason
	_ = 2
}
`)
	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	diags := []Diagnostic{
		{Pos: pos(4), Category: "wallclock", Message: "suppressed"},
		{Pos: pos(4), Category: "maporder", Message: "different rule, kept"},
		{Pos: pos(5), Category: "wallclock", Message: "other line, kept"},
	}
	got := Filter(fset, []*ast.File{f}, diags)
	if len(got) != 2 {
		t.Fatalf("Filter kept %d diagnostics, want 2: %v", len(got), got)
	}
	for _, d := range got {
		if d.Message == "suppressed" {
			t.Errorf("suppressed diagnostic survived: %+v", d)
		}
	}
}

func TestScopeApplies(t *testing.T) {
	cases := []struct {
		scope Scope
		rel   string
		want  bool
	}{
		{Scope{}, "", true},
		{Scope{}, "internal/sim", true},
		{Scope{Skip: []string{"internal/sim"}}, "internal/sim", false},
		{Scope{Skip: []string{"internal/sim"}}, "internal/sim/sub", false},
		{Scope{Skip: []string{"internal/sim"}}, "internal/simulator", true},
		{Scope{Skip: []string{"internal/sim"}}, "internal/fault", true},
		{Scope{Only: []string{"internal/metrics"}}, "internal/metrics", true},
		{Scope{Only: []string{"internal/metrics"}}, "internal/obs", false},
		{Scope{Only: []string{"internal"}, Skip: []string{"internal/sim"}}, "internal/sim", false},
		{Scope{Only: []string{"internal"}, Skip: []string{"internal/sim"}}, "cmd/elsim", false},
	}
	for _, c := range cases {
		if got := c.scope.Applies(c.rel); got != c.want {
			t.Errorf("Scope{Only:%v Skip:%v}.Applies(%q) = %v, want %v",
				c.scope.Only, c.scope.Skip, c.rel, got, c.want)
		}
	}
}

func TestRulesetNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, rule := range Ruleset {
		if rule.Name == "" || rule.Doc == "" || rule.Run == nil {
			t.Errorf("rule %q incompletely declared", rule.Name)
		}
		if seen[rule.Name] {
			t.Errorf("duplicate rule name %q", rule.Name)
		}
		seen[rule.Name] = true
	}
	if !seen["wallclock"] || !seen["rngsource"] || !seen["maporder"] || !seen["nilgate"] || !seen["floatorder"] {
		t.Errorf("ruleset missing a contract rule: %v", seen)
	}
	if r := RuleByName("maporder"); r == nil || r.Name != "maporder" {
		t.Errorf("RuleByName(maporder) = %v", r)
	}
	if r := RuleByName("nope"); r != nil {
		t.Errorf("RuleByName(nope) = %v, want nil", r)
	}
}
