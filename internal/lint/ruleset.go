package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The analyzers are pure rules; this file is the policy layer deciding
// where each rule applies. Scoping is by import path relative to the
// module root, so the table reads like the contract in DESIGN.md.
//
// Test files (_test.go) are excluded wholesale by the drivers: tests may
// construct fixed-seed RNGs and wall-time themselves freely, and test
// determinism is enforced dynamically by the determinism suites
// (internal/search/determinism_test.go, internal/experiments/...). The
// contract below is about shipped simulator code.

// A Scope restricts an analyzer to (Only) or away from (Skip) package
// path prefixes relative to the module root. Empty means module-wide.
type Scope struct {
	Only []string // if non-empty, only packages under these prefixes
	Skip []string // packages under these prefixes are exempt
}

// Applies reports whether a package at module-relative path rel is in
// scope. The module root itself is rel "".
func (s Scope) Applies(rel string) bool {
	if len(s.Only) > 0 {
		ok := false
		for _, p := range s.Only {
			if underPrefix(rel, p) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, p := range s.Skip {
		if underPrefix(rel, p) {
			return false
		}
	}
	return true
}

func underPrefix(rel, prefix string) bool {
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}

// A Rule pairs an analyzer with the scope it is enforced in.
type Rule struct {
	*Analyzer
	Scope Scope
}

// Ruleset is the determinism contract: every analyzer, and where it
// applies. Order is the reporting order. Empty scopes are module-wide,
// so new packages — internal/multilog and its 2PC router among them —
// are covered automatically; only add Skip entries for packages that
// legitimately own a source the rest of the module must not touch.
var Ruleset = []Rule{
	// Wall-clock reads are forbidden module-wide, with one structural
	// exemption: the real-backend packages exist to bind the model to the
	// wall clock (internal/realtime is a wall-clock sim.Source;
	// internal/realdev fsyncs real files; internal/obs/live is the live
	// metrics registry those goroutines update and the HTTP endpoint that
	// serves it; cmd/elreal drives them), so the rule cannot apply there
	// by construction. Note internal/obs itself is NOT exempt: the probe
	// sampler runs in both clock domains and must stay deterministic. The
	// CLI harnesses in cmd/ that merely wall-time whole runs for operator
	// feedback still carry //ellint:allow wallclock annotations rather
	// than a package-level exemption, so each of those sites is an
	// audited decision.
	{WallclockAnalyzer, Scope{Skip: []string{"internal/realdev", "internal/realtime", "internal/obs/live", "cmd/elreal"}}},

	// internal/sim owns the seeded engine streams and internal/fault
	// derives its plan stream from the config seed; everywhere else must
	// draw through them. Under PDES this rule carries extra weight: each
	// logical process owns exactly one stream (lp.Rand(), the LP engine's
	// PCG), and any ad-hoc source in model code would be shared across LP
	// goroutines — both a data race and a scheduling-order dependence.
	// The real-backend packages are exempt for the same reason as above:
	// internal/realtime seeds its own PCG to stand in for the engine's.
	{RngsourceAnalyzer, Scope{Skip: []string{"internal/sim", "internal/fault", "internal/realdev", "internal/realtime", "cmd/elreal"}}},

	{MaporderAnalyzer, Scope{}},
	{NilgateAnalyzer, Scope{}},
	// floatorder also polices the PDES barrier contract: float sums that
	// cross LPs (aggregate stats, merged histograms) must fold in LP index
	// order at a barrier, never in goroutine-completion order — addition
	// over different orders is a different float.
	{FloatorderAnalyzer, Scope{}},

	// The interprocedural rules. detflow/rngflow inherit their local
	// twins' scopes: the wall-clock-owning packages cannot meaningfully
	// be forbidden from *reaching* the wall clock, and the RNG-owning
	// packages are the seam itself. Note the asymmetry in how taint
	// crosses INTO the exempt packages' callers: summaries exported by
	// the RngSealPackages are stripped of RNG taint (calling sim/fault
	// is how everyone is supposed to obtain randomness), while
	// wall-clock taint is never stripped — the legitimate route to the
	// clock is the sim.Clock interface, so a concrete call chain from a
	// determinism-scoped package into realtime/realdev is a genuine
	// violation and reports at the first in-scope call site.
	{DetflowAnalyzer, Scope{Skip: []string{"internal/realdev", "internal/realtime", "internal/obs/live", "cmd/elreal"}}},
	{RngflowAnalyzer, Scope{Skip: []string{"internal/sim", "internal/fault", "internal/realdev", "internal/realtime", "cmd/elreal"}}},

	// The real-mode concurrency contract. atomicsafety is module-wide:
	// atomic state exists only in the real-mode packages today, but a
	// copied atomic or a plain read is a bug wherever it appears.
	// goroleak and errsink are scoped to the packages that launch
	// goroutines and own the durability path; elsewhere a goroutine or a
	// dropped Close error is a style question, not a contract violation.
	{AtomicsafetyAnalyzer, Scope{}},
	{GoroleakAnalyzer, Scope{Only: []string{"internal/realdev", "internal/realtime", "internal/obs/live", "cmd/elreal"}}},
	{ErrsinkAnalyzer, Scope{Only: []string{"internal/realdev", "internal/realtime", "cmd/elreal"}}},
}

// RngSealPackages are the module-relative packages that own seeded
// generator construction: their exported function summaries are
// stripped of RNG taint (see Interp.Export), because calling into them
// is the sanctioned way to obtain randomness. Kept in sync with
// rngflow's Skip list by TestRulesetSeamConsistency.
var RngSealPackages = []string{"internal/sim", "internal/fault", "internal/realdev", "internal/realtime", "cmd/elreal"}

// SealsRng reports whether a package at module-relative path rel
// exports RNG-sealed summaries.
func SealsRng(rel string) bool {
	for _, p := range RngSealPackages {
		if underPrefix(rel, p) {
			return true
		}
	}
	return false
}

// RuleByName returns the rule with the given analyzer name, or nil.
func RuleByName(name string) *Rule {
	for i := range Ruleset {
		if Ruleset[i].Name == name {
			return &Ruleset[i]
		}
	}
	return nil
}

// Check runs one analyzer over a type-checked package and returns its
// diagnostics with //ellint:allow suppressions already applied. ctx may
// be nil; interprocedural analyzers then run with a facts-free Interp
// built on the spot (package-local taint only).
func Check(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, ctx *Context) ([]Diagnostic, error) {
	diags, err := run(a, fset, files, pkg, info, ctx)
	if err != nil {
		return nil, err
	}
	return Filter(fset, files, diags), nil
}
