package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeTempModule lays out a throwaway module and returns its root.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const tempGoMod = "module example.test/det\n\ngo 1.22\n"

func TestRunFindsAndScopesViolations(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		// Root package: one wallclock violation, one suppressed.
		"clock.go": `package det

import "time"

func Wall() time.Time { return time.Now() }

func Allowed() time.Time {
	return time.Now() //ellint:allow wallclock test fixture
}
`,
		// internal/sim is exempt from rngsource by the ruleset.
		"internal/sim/sim.go": `package sim

import "math/rand/v2"

func New(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 1)) }
`,
		// Another package drawing from the global source: flagged.
		"internal/work/work.go": `package work

import "math/rand/v2"

func Draw() int { return rand.IntN(6) }
`,
	})
	findings, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		rel, _ := filepath.Rel(root, f.Pos.Filename)
		got = append(got, f.Analyzer+"@"+filepath.ToSlash(rel))
	}
	want := []string{"wallclock@clock.go", "rngsource@internal/work/work.go"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("findings = %v, want %v", got, want)
	}
}

// TestRealBackendScopeExemptions pins the declarative exemption for the
// real-backend packages: internal/realtime, internal/realdev and
// cmd/elreal exist to bind the model to the wall clock, so wallclock and
// rngsource do not apply there — while an identical file anywhere else in
// the module is still flagged, and the other analyzers still reach the
// exempt packages.
func TestRealBackendScopeExemptions(t *testing.T) {
	const wallAndRand = `package p

import (
	"math/rand/v2"
	"time"
)

func Now() time.Time { return time.Now() }

func Draw() int { return rand.IntN(6) }
`
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		// Exempt by scope: no wallclock or rngsource findings.
		"internal/realtime/loop.go": strings.Replace(wallAndRand, "package p", "package realtime", 1),
		"internal/realdev/dev.go":   strings.Replace(wallAndRand, "package p", "package realdev", 1),
		"cmd/elreal/main.go":        strings.Replace(wallAndRand, "package p", "package main", 1) + "\nfunc main() {}\n",
		// The same code outside the exempt prefixes is still a violation.
		"internal/model/model.go": strings.Replace(wallAndRand, "package p", "package model", 1),
		// The exemption is per-rule, not per-package: maporder still
		// applies inside internal/realdev.
		"internal/realdev/dump.go": `package realdev

import "fmt"

func Dump(counts map[string]int) {
	for name, n := range counts {
		fmt.Println(name, n)
	}
}
`,
	})
	findings, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		rel, _ := filepath.Rel(root, f.Pos.Filename)
		got = append(got, f.Analyzer+"@"+filepath.ToSlash(rel))
	}
	want := []string{
		"wallclock@internal/model/model.go",
		"rngsource@internal/model/model.go",
		"maporder@internal/realdev/dump.go",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("findings = %v, want %v", got, want)
	}
}

// TestLoaderHonorsBuildConstraints loads a package split across GOOS
// build tags the way internal/realdev splits its O_DIRECT open path. A
// tag-blind loader would see both halves and report a redeclaration.
func TestLoaderHonorsBuildConstraints(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		"split/doc.go": `package split

const base = flag
`,
		"split/flag_" + runtime.GOOS + ".go": `package split

const flag = 1
`,
		"split/flag_other.go": "//go:build !" + runtime.GOOS + "\n\npackage split\n\nconst flag = 0\n",
	})
	findings, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatalf("tag-split package did not load cleanly: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("unexpected findings: %v", findings)
	}
}

func TestRunRejectsTypeErrors(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod":    tempGoMod,
		"broken.go": "package det\n\nfunc f() { undefined() }\n",
	})
	if _, err := Run(root, []string{"./..."}); err == nil {
		t.Fatal("Run succeeded on a package with type errors")
	}
}

func TestApplyFixesRewritesMapOrder(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		"dump.go": `package det

import (
	"fmt"
	"sort"
)

func Dump(counts map[string]int) {
	for name, n := range counts {
		fmt.Printf("%s %d\n", name, n)
	}
}

func keep(xs []string) { sort.Strings(xs) }
`,
	})
	findings, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !findings[0].HasFix() {
		t.Fatalf("findings = %v, want one maporder finding with a fix", findings)
	}
	fixed, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("ApplyFixes rewrote %v, want one file", fixed)
	}
	data, err := os.ReadFile(filepath.Join(root, "dump.go"))
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	if !strings.Contains(src, "sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })") {
		t.Errorf("fixed source lacks sorted-keys loop:\n%s", src)
	}
	// The rewritten tree must now satisfy the whole contract.
	findings, err = Run(root, []string{"./..."})
	if err != nil {
		t.Fatalf("fixed tree does not load: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("fixed tree still has findings: %v", findings)
	}
}

// TestRepoIsCleanUnderRuleset is the acceptance criterion as a test: the
// shipped tree must satisfy the determinism contract with only its audited
// //ellint:allow annotations. Loading the full module type-checks the
// standard library from source, so keep it out of -short runs.
func TestRepoIsCleanUnderRuleset(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is slow; run without -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(wd, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("determinism contract violated:\n%s", FormatFindings(findings, wd))
	}
}
