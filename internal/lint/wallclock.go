package lint

import (
	"go/ast"
)

// wallclockForbidden lists the package time functions that observe or wait
// on the machine's clock. Simulator code must derive every timestamp and
// delay from the virtual clock (sim.Engine / sim.Time): a wall-clock read
// makes run output depend on host speed and scheduling, which breaks the
// (seed, config) → bit-identical-replay contract. Pure value constructors
// (time.Date, time.Unix) and conversions are untouched — they are
// deterministic functions of their arguments.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// WallclockAnalyzer implements the wallclock rule.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads and sleeps (time.Now, time.Since, time.Sleep, " +
		"timers); simulator code must use the virtual clock so a (seed, config) " +
		"pair replays bit-identically. Deliberate wall-timing in the CLI harness " +
		"is annotated //ellint:allow wallclock.",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := objectOf(pass.TypesInfo, sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if !wallclockForbidden[obj.Name()] {
				return true
			}
			pass.Report(Diagnostic{
				Pos: sel.Pos(),
				End: sel.End(),
				Message: "time." + obj.Name() + " reads the wall clock; simulated " +
					"code must use the virtual clock (sim.Engine.Now / scheduled events)",
			})
			return true
		})
	}
	return nil
}
