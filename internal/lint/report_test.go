package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONReport pins the machine-readable report: schema tag, module
// path, module-relative file names, rule names, and the suggested-fix
// passthrough for findings that carry one (maporder does).
func TestJSONReport(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"go.mod": tempGoMod,
		"p.go": `package det

import (
	"sort"
	"time"
)

func stamp() time.Time { return time.Now() }

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func sortLater(xs []string) { sort.Strings(xs) }
`,
	})
	findings, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("expected findings from the fixture module")
	}

	report := BuildJSONReport(findings, root)
	if report.Schema != JSONSchema {
		t.Errorf("Schema = %q, want %q", report.Schema, JSONSchema)
	}
	if report.Module != "example.test/det" {
		t.Errorf("Module = %q, want example.test/det", report.Module)
	}
	if report.Count != len(findings) || report.Count != len(report.Findings) {
		t.Errorf("Count = %d, findings = %d/%d", report.Count, len(findings), len(report.Findings))
	}
	rules := make(map[string]JSONFinding)
	for _, jf := range report.Findings {
		rules[jf.Rule] = jf
		if jf.File != "p.go" {
			t.Errorf("File = %q, want module-relative p.go", jf.File)
		}
		if jf.Line == 0 || jf.Col == 0 {
			t.Errorf("missing position in %+v", jf)
		}
	}
	if _, ok := rules["wallclock"]; !ok {
		t.Errorf("no wallclock finding in report: %v", rules)
	}
	mo, ok := rules["maporder"]
	if !ok {
		t.Fatalf("no maporder finding in report: %v", rules)
	}
	if mo.SuggestedFix == "" {
		t.Error("maporder finding lost its suggested fix")
	}

	// WriteJSONReport round-trips, ends with a newline, and is written
	// even for a clean run (CI archives the evidence either way).
	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteJSONReport(path, findings, root); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("report does not end with a newline")
	}
	var back JSONReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Count != report.Count {
		t.Errorf("round-trip Count = %d, want %d", back.Count, report.Count)
	}

	if err := WriteJSONReport(path, nil, root); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"findings": []`) {
		t.Errorf("clean report should encode an empty array, got:\n%s", data)
	}
}
