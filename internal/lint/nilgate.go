package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The nilgate rule guards the "off means byte-identical" contract: optional
// hooks — fault injectors, trace sinks, observability probes — are struct
// fields of func or interface type that stay nil in an unobserved run, and
// every call through them must be behind a nil check so attaching nothing
// costs nothing and changes nothing.
//
// Which fields are "optional" is inferred from the package itself rather
// than from a naming convention: a func- or interface-typed field that is
// compared against nil anywhere in the package is evidently nullable, so
// every direct call through it must be dominated by a guard. Recognized
// guards:
//
//	if p.sink != nil { p.sink.Emit(e) }       // enclosing condition
//	if p.sink == nil { return }               // early return above the call
//	p.sink.Emit(e)
//
// Calls through a local copy (`h := p.hook; if h != nil { h() }`) are not
// flagged — the analyzer only tracks direct field calls. Fields that are
// never nil-compared are assumed required and stay unflagged.

// NilgateAnalyzer implements the nilgate rule.
var NilgateAnalyzer = &Analyzer{
	Name: "nilgate",
	Doc: "optional hook fields (func- or interface-typed struct fields that the " +
		"package nil-checks somewhere) must be nil-gated at every call site, " +
		"preserving the guarantee that faults-off/untraced runs are " +
		"byte-identical to instrumented ones.",
	Run: runNilgate,
}

func runNilgate(pass *Pass) error {
	nullable := nullableFields(pass)
	if len(nullable) == 0 {
		return nil
	}
	parents := buildParents(pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			field, fieldExpr := calledHookField(pass, call)
			if field == nil || !nullable[field] {
				return true
			}
			if guarded(pass, parents, call, field) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: fieldExpr.Pos(),
				End: call.End(),
				Message: "call through optional hook field " +
					exprText(pass.Fset, fieldExpr) + " is not nil-gated; the field " +
					"is nil-checked elsewhere in this package, so an unguarded call " +
					"panics when the hook is unset (guard with `if " +
					exprText(pass.Fset, fieldExpr) + " != nil`)",
			})
			return true
		})
	}
	return nil
}

// nullableFields collects func- or interface-typed struct fields that the
// package compares against nil anywhere.
func nullableFields(pass *Pass) map[types.Object]bool {
	nullable := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			obj, _ := nilCompare(pass.TypesInfo, bin)
			if obj == nil {
				return true
			}
			switch obj.Type().Underlying().(type) {
			case *types.Signature, *types.Interface:
				nullable[obj] = true
			}
			return true
		})
	}
	return nullable
}

// calledHookField resolves a call to the optional field it goes through:
// either a direct call of a func-typed field (x.hook(...)) or a method call
// on an interface-typed field (x.sink.Emit(...)). Returns the field object
// and the selector expression naming the field.
func calledHookField(pass *Pass, call *ast.CallExpr) (types.Object, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	// x.hook(...): the callee itself selects a func-typed field.
	if obj := selectedField(pass.TypesInfo, sel); obj != nil {
		if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
			return obj, sel
		}
		return nil, nil
	}
	// x.sink.Emit(...): a method whose receiver selects an interface field.
	if recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if obj := selectedField(pass.TypesInfo, recv); obj != nil {
			if _, isIface := obj.Type().Underlying().(*types.Interface); isIface {
				return obj, recv
			}
		}
	}
	return nil, nil
}

// guarded reports whether a nil guard for field dominates the call:
// an enclosing if whose condition requires `field != nil` (call in the then
// branch, or in the else branch of `field == nil`), or an earlier statement
// in an enclosing block of the form `if field == nil { return/continue/... }`.
func guarded(pass *Pass, parents parentMap, call ast.Node, field types.Object) bool {
	for n := ast.Node(call); n != nil; n = parents[n] {
		parent := parents[n]
		switch p := parent.(type) {
		case *ast.IfStmt:
			if n == ast.Node(p.Body) && condAllows(pass.TypesInfo, p.Cond, field) {
				return true
			}
			if n == ast.Node(p.Else) {
				if obj, op := nilCompare(pass.TypesInfo, p.Cond); obj == field && op == token.EQL {
					return true
				}
			}
		case *ast.BlockStmt:
			// Scan earlier sibling statements for an early-return guard.
			for _, stmt := range p.List {
				if stmt == n {
					break
				}
				ifStmt, ok := stmt.(*ast.IfStmt)
				if !ok || !terminatesFlow(ifStmt.Body) {
					continue
				}
				if obj, op := nilCompare(pass.TypesInfo, ifStmt.Cond); obj == field && op == token.EQL {
					return true
				}
			}
		}
	}
	return false
}
