package lint

import (
	"go/ast"
	"go/types"
)

// The rngsource rule keeps every random draw on a seeded, replayable
// stream. Two failure modes are caught:
//
//  1. Package-level math/rand and math/rand/v2 functions (rand.IntN,
//     rand.Float64, rand.Shuffle, ...) draw from the process-global source,
//     which Go seeds randomly at startup — a silent determinism leak.
//  2. Constructing a fresh generator (rand.New, rand.NewPCG,
//     rand.NewSource, rand.NewChaCha8) outside the packages that own
//     seeding (internal/sim, internal/fault — exempted by the driver
//     ruleset) detaches the draw from the engine's seed plumbing even when
//     the literal seed looks fixed: replay tooling can no longer reach it.
//
// Methods on a *rand.Rand value are fine — values handed out by
// sim.Engine.Rand() are already on the seeded stream.

var rngConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewSource":  true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// RngsourceAnalyzer implements the rngsource rule.
var RngsourceAnalyzer = &Analyzer{
	Name: "rngsource",
	Doc: "forbid math/rand global functions and ad-hoc generator construction; " +
		"every random draw must flow from a seeded engine stream " +
		"(sim.Engine.Rand) so replay tooling can reproduce it. internal/sim and " +
		"internal/fault, which own seeding, are exempt via the driver ruleset.",
	Run: runRngsource,
}

func runRngsource(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if _, isSelection := pass.TypesInfo.Selections[sel]; isSelection {
				return true // method or field on a value, e.g. rng.IntN
			}
			fn, ok := objectOf(pass.TypesInfo, sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if pkg := fn.Pkg().Path(); pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			name := fn.Name()
			if rngConstructors[name] {
				pass.Report(Diagnostic{
					Pos: sel.Pos(),
					End: sel.End(),
					Message: "rand." + name + " constructs a generator outside the " +
						"seeded engine plumbing; draw from sim.Engine.Rand (RNG " +
						"construction lives in internal/sim and internal/fault)",
				})
			} else {
				pass.Report(Diagnostic{
					Pos: sel.Pos(),
					End: sel.End(),
					Message: "rand." + name + " draws from the process-global source, " +
						"which is seeded nondeterministically; use the engine's " +
						"seeded stream (sim.Engine.Rand)",
				})
			}
			return true
		})
	}
	return nil
}
