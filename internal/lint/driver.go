package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strings"
)

// The standalone driver behind cmd/ellint: load packages, apply the
// ruleset, collect findings, optionally apply suggested fixes.

// A Finding is one reported diagnostic with resolved positions.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string

	fixes []SuggestedFix
	fset  *token.FileSet
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// HasFix reports whether the finding carries a mechanical fix.
func (f Finding) HasFix() bool { return len(f.fixes) > 0 }

// A factStore computes interprocedural facts demand-first over the
// loader's package graph: a package's dependencies are summarized
// before the package itself, so cross-package taint (experiments →
// realdev → time.Now) resolves no matter what order patterns matched.
type factStore struct {
	loader *Loader
	facts  *Facts
	interp map[string]*Interp // by full import path
}

func newFactStore(loader *Loader) *factStore {
	return &factStore{loader: loader, facts: NewFacts(), interp: make(map[string]*Interp)}
}

// ensure returns the package's Interp, computing (and exporting into
// the shared fact set) its dependencies' summaries first. The loader
// already rejected import cycles, so the recursion terminates.
func (s *factStore) ensure(pkg *Package) *Interp {
	if in, ok := s.interp[pkg.PkgPath]; ok {
		return in
	}
	for _, imp := range pkg.Imports {
		if dep := s.loader.Lookup(imp); dep != nil {
			s.ensure(dep)
		}
	}
	in := NewInterp(s.loader.Fset, pkg.Files, pkg.Types, pkg.Info, s.facts)
	s.interp[pkg.PkgPath] = in
	s.facts.Add(in.Export(SealsRng(pkg.Rel)))
	return in
}

// Run loads the packages matched by patterns under dir's module and
// applies the full ruleset, returning findings sorted by position. Type
// errors in any loaded package abort the run: analyzer output over broken
// code is unreliable.
func Run(dir string, patterns []string) ([]Finding, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return nil, err
	}
	store := newFactStore(loader)
	var findings []Finding
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s: type errors: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
		ctx := &Context{Rel: pkg.Rel, Interp: store.ensure(pkg)}
		for _, rule := range Ruleset {
			if !rule.Scope.Applies(pkg.Rel) {
				continue
			}
			diags, err := Check(rule.Analyzer, loader.Fset, pkg.Files, pkg.Types, pkg.Info, ctx)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				findings = append(findings, Finding{
					Analyzer: d.Category,
					Pos:      loader.Fset.Position(d.Pos),
					Message:  d.Message,
					fixes:    d.SuggestedFixes,
					fset:     loader.Fset,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ApplyFixes applies every suggested fix among findings to the files on
// disk, gofmt-ing the result. Returns the rewritten file names. Edits are
// applied highest-offset first so positions stay valid; overlapping fixes
// in one file are rejected.
func ApplyFixes(findings []Finding) ([]string, error) {
	type edit struct {
		lo, hi  int
		newText []byte
	}
	byFile := make(map[string][]edit)
	for _, f := range findings {
		for _, fix := range f.fixes {
			for _, te := range fix.TextEdits {
				file := f.fset.File(te.Pos)
				if file == nil {
					return nil, fmt.Errorf("%s: fix position outside loaded files", f.Pos)
				}
				byFile[file.Name()] = append(byFile[file.Name()], edit{
					lo:      file.Offset(te.Pos),
					hi:      file.Offset(te.End),
					newText: te.NewText,
				})
			}
		}
	}
	var rewritten []string
	for name, edits := range byFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].lo > edits[j].lo })
		for i := 1; i < len(edits); i++ {
			if edits[i].hi > edits[i-1].lo {
				return nil, fmt.Errorf("%s: overlapping suggested fixes", name)
			}
		}
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for _, e := range edits {
			data = append(data[:e.lo:e.lo], append(e.newText, data[e.hi:]...)...)
		}
		formatted, err := format.Source(data)
		if err != nil {
			return nil, fmt.Errorf("%s: fixed source does not format: %w", name, err)
		}
		if err := os.WriteFile(name, formatted, 0o644); err != nil {
			return nil, err
		}
		rewritten = append(rewritten, name)
	}
	sort.Strings(rewritten)
	return rewritten, nil
}

// FormatFindings renders findings one per line, relative to dir when
// possible, for terminal output.
func FormatFindings(findings []Finding, dir string) string {
	var b strings.Builder
	for _, f := range findings {
		pos := f.Pos
		if rel, ok := strings.CutPrefix(pos.Filename, dir+string(os.PathSeparator)); ok {
			pos.Filename = rel
		}
		fmt.Fprintf(&b, "%s: %s: %s", pos, f.Analyzer, f.Message)
		if f.HasFix() {
			b.WriteString(" (mechanical fix available: rerun with -fix)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
