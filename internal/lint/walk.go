package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Shared AST plumbing for the analyzers: parent links, object resolution,
// and nil-comparison recognition.

// parentMap links every node in a file to its enclosing node.
type parentMap map[ast.Node]ast.Node

func buildParents(files []*ast.File) parentMap {
	parents := make(parentMap)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

// objectOf resolves an identifier to its object, checking uses then defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node's span.
// Analyzers use it to tell loop-local accumulators from outer state.
func declaredWithin(obj types.Object, node ast.Node) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// pkgFunc resolves a call's callee to a package-level function and returns
// its package path and name, or "" if the callee is something else (method,
// local func value, builtin, conversion).
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", ""
	}
	fn, ok := objectOf(info, id).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// isNil reports whether e is the predeclared nil.
func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := objectOf(info, id).(*types.Nil)
	return isNilObj
}

// nilCompare reports whether e is a comparison of a field selection against
// nil, returning the compared field object and the operator (token.EQL for
// `x == nil`, token.NEQ for `x != nil`). The field object is resolved
// through types.Selections so `p.sink` and `plan.sink` compare equal.
func nilCompare(info *types.Info, e ast.Expr) (types.Object, token.Token) {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, token.ILLEGAL
	}
	var other ast.Expr
	switch {
	case isNil(info, bin.X):
		other = bin.Y
	case isNil(info, bin.Y):
		other = bin.X
	default:
		return nil, token.ILLEGAL
	}
	if obj := selectedField(info, other); obj != nil {
		return obj, bin.Op
	}
	return nil, token.ILLEGAL
}

// selectedField resolves e to the struct field it selects (p.sink → sink),
// or nil when e is not a field selection.
func selectedField(info *types.Info, e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj()
}

// condAllows reports whether cond (possibly an && chain) contains a
// `field != nil` test for the given field object.
func condAllows(info *types.Info, cond ast.Expr, field types.Object) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return condAllows(info, e.X, field) || condAllows(info, e.Y, field)
		}
	}
	obj, op := nilCompare(info, cond)
	return obj == field && op == token.NEQ
}

// terminatesFlow reports whether the last statement of body unconditionally
// leaves the enclosing flow: return, break, continue, goto, or panic.
func terminatesFlow(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// exprText renders an expression as source text.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// nodeText renders any node as source text.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}
