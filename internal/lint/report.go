package lint

import (
	"encoding/json"
	"os"
	"strings"
)

// Machine-readable findings for CI and downstream tooling: `ellint
// -json <path>` writes this report next to the human-readable output.
// The schema string is versioned so consumers can reject reports from a
// future incompatible ellint rather than misparse them.

// JSONSchema identifies the report format.
const JSONSchema = "ellint-findings/1"

// A JSONFinding is one diagnostic in the machine-readable report.
type JSONFinding struct {
	File    string `json:"file"` // module-relative when under dir
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// SuggestedFix is the fix's description when the finding carries a
	// mechanical rewrite (apply with `ellint -fix`).
	SuggestedFix string `json:"suggested_fix,omitempty"`
}

// A JSONReport is the full report.
type JSONReport struct {
	Schema   string        `json:"schema"`
	Module   string        `json:"module"`
	Count    int           `json:"count"`
	Findings []JSONFinding `json:"findings"`
}

// BuildJSONReport converts findings (as returned by Run, already
// sorted) into the report form, relativizing file names to dir.
func BuildJSONReport(findings []Finding, dir string) JSONReport {
	module := ""
	if _, modPath, err := findModule(dir); err == nil {
		module = modPath
	}
	report := JSONReport{
		Schema:   JSONSchema,
		Module:   module,
		Count:    len(findings),
		Findings: []JSONFinding{}, // never null in the encoding
	}
	for _, f := range findings {
		jf := JSONFinding{
			File:    relToDir(f.Pos.Filename, dir),
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Rule:    f.Analyzer,
			Message: f.Message,
		}
		if len(f.fixes) > 0 {
			jf.SuggestedFix = f.fixes[0].Message
		}
		report.Findings = append(report.Findings, jf)
	}
	return report
}

// WriteJSONReport writes the report for findings to path. The report is
// written whether or not there are findings, so CI can archive a clean
// run's evidence too.
func WriteJSONReport(path string, findings []Finding, dir string) error {
	data, err := json.MarshalIndent(BuildJSONReport(findings, dir), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func relToDir(filename, dir string) string {
	if rel, ok := strings.CutPrefix(filename, dir+string(os.PathSeparator)); ok {
		return rel
	}
	return filename
}
