// Package blockdev models the disk device that holds the log. The paper's
// pragmatic constraints (section 2.2) are: information is written in fixed
// sized blocks (2048 bytes, 48 reserved for bookkeeping, 2000 of payload),
// a buffer's transfer to disk takes a conservative fixed
// tau_DiskWrite = 15 ms, and the log area is write-only storage — the
// logging manager never needs to read it back except during recovery.
//
// The device keeps the last durably written bytes of every block, which is
// exactly the crash image: records sitting in an unwritten buffer at crash
// time are lost, and a block whose write is still in flight retains its old
// contents (block writes are assumed atomic; see DESIGN.md).
package blockdev

import (
	"fmt"

	"ellog/internal/sim"
)

// BlockID names one disk block. IDs are allocated by the device and never
// reused, so a "freed" block's stale bytes remain readable until the block
// is physically rewritten — the property recirculation relies on.
// The zero BlockID is never allocated.
type BlockID uint64

type block struct {
	gen     int
	data    []byte // last durable contents; nil until first write completes
	writes  uint64
	pending bool
}

// Stats aggregates device activity for the bandwidth figures.
type Stats struct {
	Writes       uint64 // completed block writes
	Bytes        uint64 // durable payload bytes
	WritesPerGen map[int]uint64
}

// Device is the simulated log disk.
type Device struct {
	eng     *sim.Engine
	latency sim.Time
	nextID  BlockID
	blocks  map[BlockID]*block
	stats   Stats
}

// New returns a device whose block writes complete latency after they are
// issued (the paper fixes this at 15 ms).
func New(eng *sim.Engine, latency sim.Time) *Device {
	if latency < 0 {
		panic("blockdev: negative write latency")
	}
	return &Device{
		eng:     eng,
		latency: latency,
		blocks:  make(map[BlockID]*block),
		stats:   Stats{WritesPerGen: make(map[int]uint64)},
	}
}

// Latency returns the configured block write latency.
func (d *Device) Latency() sim.Time { return d.latency }

// Alloc reserves a new block belonging to the given generation and returns
// its ID. Allocation is pure bookkeeping; no simulated time passes.
func (d *Device) Alloc(gen int) BlockID {
	d.nextID++
	id := d.nextID
	d.blocks[id] = &block{gen: gen}
	return id
}

// Write issues an asynchronous write of data to block id. After the
// device's latency the bytes become durable — replacing the block's
// previous contents — and done (if non-nil) is invoked. Multiple writes to
// the same block are legal (recirculation reuses blocks) but may not
// overlap: the log's circular discipline guarantees a block is not reissued
// while a write to it is outstanding, and the device asserts it.
func (d *Device) Write(id BlockID, data []byte, done func()) {
	b, ok := d.blocks[id]
	if !ok {
		panic(fmt.Sprintf("blockdev: write to unallocated block %d", id))
	}
	if b.pending {
		panic(fmt.Sprintf("blockdev: overlapping writes to block %d", id))
	}
	b.pending = true
	buf := make([]byte, len(data))
	copy(buf, data)
	d.eng.After(d.latency, func() {
		b.pending = false
		b.data = buf
		b.writes++
		d.stats.Writes++
		d.stats.Bytes += uint64(len(buf))
		d.stats.WritesPerGen[b.gen]++
		if done != nil {
			done()
		}
	})
}

// Read returns the durable contents of a block (nil if never written) —
// used only by the recovery manager; the log is write-only in normal
// operation.
func (d *Device) Read(id BlockID) []byte {
	b, ok := d.blocks[id]
	if !ok {
		panic(fmt.Sprintf("blockdev: read of unallocated block %d", id))
	}
	return b.data
}

// Gen returns the generation a block was allocated for.
func (d *Device) Gen(id BlockID) int {
	b, ok := d.blocks[id]
	if !ok {
		panic(fmt.Sprintf("blockdev: gen of unallocated block %d", id))
	}
	return b.gen
}

// Pending reports whether a write to the block is in flight.
func (d *Device) Pending(id BlockID) bool {
	b, ok := d.blocks[id]
	return ok && b.pending
}

// NumBlocks reports how many blocks have been allocated.
func (d *Device) NumBlocks() int { return len(d.blocks) }

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats {
	out := Stats{Writes: d.stats.Writes, Bytes: d.stats.Bytes, WritesPerGen: make(map[int]uint64, len(d.stats.WritesPerGen))}
	for g, w := range d.stats.WritesPerGen {
		out.WritesPerGen[g] = w
	}
	return out
}

// RangeDurable calls fn for every block that has durable contents, in
// allocation order (deterministic). This is the recovery manager's read
// pass over the entire log area, including blocks the logging manager has
// logically freed but not yet overwritten.
func (d *Device) RangeDurable(fn func(id BlockID, gen int, data []byte) bool) {
	for id := BlockID(1); id <= d.nextID; id++ {
		b := d.blocks[id]
		if b == nil || b.data == nil {
			continue
		}
		if !fn(id, b.gen, b.data) {
			return
		}
	}
}
