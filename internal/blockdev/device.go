// Package blockdev models the disk device that holds the log. The paper's
// pragmatic constraints (section 2.2) are: information is written in fixed
// sized blocks (2048 bytes, 48 reserved for bookkeeping, 2000 of payload),
// a buffer's transfer to disk takes a conservative fixed
// tau_DiskWrite = 15 ms, and the log area is write-only storage — the
// logging manager never needs to read it back except during recovery.
//
// The device keeps the last durably written bytes of every block, which is
// exactly the crash image: records sitting in an unwritten buffer at crash
// time are lost, and a block whose write is still in flight retains its old
// contents (block writes are assumed atomic; see DESIGN.md).
//
// The fault-injection subsystem relaxes those assumptions on demand: an
// attached Injector can fail a write transiently, inflate its latency, or
// silently corrupt the durable bytes, and TearOldestInFlight breaks write
// atomicity at a crash point by letting only a prefix of the oldest
// in-flight write reach the image. With no injector attached the device
// behaves bit-for-bit as before.
package blockdev

import (
	"errors"
	"fmt"

	"ellog/internal/sim"
)

// BlockID names one disk block. IDs are allocated by the device and never
// reused, so a "freed" block's stale bytes remain readable until the block
// is physically rewritten — the property recirculation relies on.
// The zero BlockID is never allocated.
type BlockID uint64

type block struct {
	gen     int
	data    []byte // last durable contents; nil until first write completes
	writes  uint64
	pending bool
	// In-flight bookkeeping for the crash-image model under fault
	// injection: the bytes of the outstanding write and its global issue
	// sequence (TearOldestInFlight tears the lowest sequence — a single
	// log-disk head finishes writes in the order they were issued).
	inflight []byte
	seq      uint64
}

// Stats aggregates device activity for the bandwidth figures.
type Stats struct {
	Writes       uint64 // attempted block writes (failed attempts re-count on retry)
	Bytes        uint64 // durable payload bytes
	Failed       uint64 // write attempts that returned a transient error
	WritesPerGen map[int]uint64
}

// ErrWriteFault is the transient error an injected fault surfaces through a
// write's completion callback. The block's previous contents are untouched.
var ErrWriteFault = errors.New("blockdev: injected transient write fault")

// WriteFault is an Injector's verdict on one block write. The zero value
// means a clean write.
type WriteFault struct {
	Fail  bool     // the write fails after its (possibly inflated) latency
	Extra sim.Time // added latency (slow I/O)
	// Silent corruption: if CorruptMask is nonzero, the durable image gets
	// data[CorruptOff] XOR CorruptMask while the write still reports
	// success. CorruptOff is clamped to the payload.
	CorruptOff  int
	CorruptMask byte
}

// Injector decides the fate of each block write. Implementations must be
// deterministic functions of their own seeded state; internal/fault.Plan is
// the canonical one.
type Injector interface {
	BlockWriteFault(gen, size int) WriteFault
}

// Device is the simulated log disk.
type Device struct {
	eng     *sim.Engine
	latency sim.Time
	nextID  BlockID
	blocks  map[BlockID]*block
	stats   Stats
	inj     Injector
	nextSeq uint64
}

// New returns a device whose block writes complete latency after they are
// issued (the paper fixes this at 15 ms).
func New(eng *sim.Engine, latency sim.Time) *Device {
	if latency < 0 {
		panic("blockdev: negative write latency")
	}
	return &Device{
		eng:     eng,
		latency: latency,
		blocks:  make(map[BlockID]*block),
		stats:   Stats{WritesPerGen: make(map[int]uint64)},
	}
}

// Latency returns the configured block write latency.
func (d *Device) Latency() sim.Time { return d.latency }

// SetInjector attaches a fault injector; nil detaches it. With no injector
// every write is clean and the device is byte-identical to the fault-free
// model.
func (d *Device) SetInjector(inj Injector) { d.inj = inj }

// Alloc reserves a new block belonging to the given generation and returns
// its ID. Allocation is pure bookkeeping; no simulated time passes.
func (d *Device) Alloc(gen int) BlockID {
	d.nextID++
	id := d.nextID
	d.blocks[id] = &block{gen: gen}
	return id
}

// Write issues an asynchronous write of data to block id. After the
// device's latency the bytes become durable — replacing the block's
// previous contents — and done (if non-nil) is invoked with nil. Multiple
// writes to the same block are legal (recirculation reuses blocks) but may
// not overlap: the log's circular discipline guarantees a block is not
// reissued while a write to it is outstanding, and the device asserts it.
//
// An attached Injector can make the write fail transiently: the block then
// keeps its previous contents and done receives ErrWriteFault. The failed
// attempt still counts as a write in the bandwidth stats — the disk did the
// work — so a retried block is charged twice, but only durable bytes count
// as Bytes.
func (d *Device) Write(id BlockID, data []byte, done func(err error)) {
	b, ok := d.blocks[id]
	if !ok {
		panic(fmt.Sprintf("blockdev: write to unallocated block %d", id))
	}
	if b.pending {
		panic(fmt.Sprintf("blockdev: overlapping writes to block %d", id))
	}
	var f WriteFault
	if d.inj != nil {
		f = d.inj.BlockWriteFault(b.gen, len(data))
	}
	b.pending = true
	buf := make([]byte, len(data))
	copy(buf, data)
	b.inflight = buf
	d.nextSeq++
	b.seq = d.nextSeq
	d.eng.After(d.latency+f.Extra, func() {
		b.pending = false
		b.inflight = nil
		d.stats.Writes++
		d.stats.WritesPerGen[b.gen]++
		if f.Fail {
			d.stats.Failed++
			if done != nil {
				done(ErrWriteFault)
			}
			return
		}
		if f.CorruptMask != 0 && len(buf) > 0 {
			off := f.CorruptOff
			if off < 0 {
				off = 0
			}
			off %= len(buf)
			buf[off] ^= f.CorruptMask
		}
		b.data = buf
		b.writes++
		d.stats.Bytes += uint64(len(buf))
		if done != nil {
			done(nil)
		}
	})
}

// TearOldestInFlight mutates the crash image as a torn write would: of all
// writes still in flight, the oldest-issued one (the single log-disk head
// services writes in issue order, so it is the one physically under way at
// the crash) deposits only its first frac of bytes; the rest of the block
// keeps its previous contents. frac is clamped to [0, 1]; frac 1 models a
// write that fully reached the platter whose completion was never
// acknowledged. It returns the torn block and false if nothing was in
// flight. Only crash-point harnesses call this — simulated time must not
// advance afterwards.
func (d *Device) TearOldestInFlight(frac float64) (BlockID, bool) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	var victim *block
	var victimID BlockID
	for id := BlockID(1); id <= d.nextID; id++ {
		b := d.blocks[id]
		if b == nil || !b.pending {
			continue
		}
		if victim == nil || b.seq < victim.seq {
			victim = b
			victimID = id
		}
	}
	if victim == nil {
		return 0, false
	}
	prefix := int(frac * float64(len(victim.inflight)))
	torn := make([]byte, 0, len(victim.inflight))
	torn = append(torn, victim.inflight[:prefix]...)
	if len(victim.data) > prefix {
		torn = append(torn, victim.data[prefix:]...)
	}
	victim.data = torn
	victim.inflight = nil
	return victimID, true
}

// Read returns the durable contents of a block (nil if never written) —
// used only by the recovery manager; the log is write-only in normal
// operation.
func (d *Device) Read(id BlockID) []byte {
	b, ok := d.blocks[id]
	if !ok {
		panic(fmt.Sprintf("blockdev: read of unallocated block %d", id))
	}
	return b.data
}

// Gen returns the generation a block was allocated for.
func (d *Device) Gen(id BlockID) int {
	b, ok := d.blocks[id]
	if !ok {
		panic(fmt.Sprintf("blockdev: gen of unallocated block %d", id))
	}
	return b.gen
}

// Pending reports whether a write to the block is in flight.
func (d *Device) Pending(id BlockID) bool {
	b, ok := d.blocks[id]
	return ok && b.pending
}

// InFlight reports how many block writes are currently outstanding.
func (d *Device) InFlight() int {
	n := 0
	for _, b := range d.blocks {
		if b.pending {
			n++
		}
	}
	return n
}

// NumBlocks reports how many blocks have been allocated.
func (d *Device) NumBlocks() int { return len(d.blocks) }

// Writes reports the attempted block writes so far. Unlike Stats it
// allocates nothing, so probes can read it once per sample tick.
func (d *Device) Writes() uint64 { return d.stats.Writes }

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats {
	out := Stats{Writes: d.stats.Writes, Bytes: d.stats.Bytes, Failed: d.stats.Failed,
		WritesPerGen: make(map[int]uint64, len(d.stats.WritesPerGen))}
	for g, w := range d.stats.WritesPerGen {
		out.WritesPerGen[g] = w
	}
	return out
}

// RangeDurable calls fn for every block that has durable contents, in
// allocation order (deterministic). This is the recovery manager's read
// pass over the entire log area, including blocks the logging manager has
// logically freed but not yet overwritten.
func (d *Device) RangeDurable(fn func(id BlockID, gen int, data []byte) bool) {
	for id := BlockID(1); id <= d.nextID; id++ {
		b := d.blocks[id]
		if b == nil || b.data == nil {
			continue
		}
		if !fn(id, b.gen, b.data) {
			return
		}
	}
}
