package blockdev

import (
	"testing"

	"ellog/internal/sim"
)

func TestWriteBecomesDurableAfterLatency(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, 15*sim.Millisecond)
	id := dev.Alloc(0)
	var doneAt sim.Time = -1
	dev.Write(id, []byte("hello"), func(err error) {
		if err != nil {
			t.Errorf("clean write completed with error %v", err)
		}
		doneAt = eng.Now()
	})

	eng.Run(14 * sim.Millisecond)
	if dev.Read(id) != nil {
		t.Fatal("block durable before latency elapsed")
	}
	if !dev.Pending(id) {
		t.Fatal("write not pending mid-flight")
	}
	eng.Run(15 * sim.Millisecond)
	if string(dev.Read(id)) != "hello" {
		t.Fatalf("durable contents %q", dev.Read(id))
	}
	if doneAt != 15*sim.Millisecond {
		t.Fatalf("done callback at %v, want 15ms", doneAt)
	}
	if dev.Pending(id) {
		t.Fatal("write still pending after completion")
	}
}

func TestRewriteReplacesContents(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	id := dev.Alloc(1)
	dev.Write(id, []byte("old"), nil)
	eng.Run(sim.Millisecond)
	dev.Write(id, []byte("new"), nil)
	// Before the second write completes, old bytes remain (atomic blocks).
	if string(dev.Read(id)) != "old" {
		t.Fatalf("mid-rewrite contents %q, want old", dev.Read(id))
	}
	eng.Run(2 * sim.Millisecond)
	if string(dev.Read(id)) != "new" {
		t.Fatalf("contents %q after rewrite", dev.Read(id))
	}
}

func TestOverlappingWritesPanic(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	id := dev.Alloc(0)
	dev.Write(id, []byte("a"), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping write did not panic")
		}
	}()
	dev.Write(id, []byte("b"), nil)
}

func TestWriteToUnallocatedPanics(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("write to unallocated block did not panic")
		}
	}()
	dev.Write(42, []byte("x"), nil)
}

func TestStatsPerGeneration(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	g0 := dev.Alloc(0)
	g1a := dev.Alloc(1)
	g1b := dev.Alloc(1)
	dev.Write(g0, make([]byte, 100), nil)
	dev.Write(g1a, make([]byte, 200), nil)
	dev.Write(g1b, make([]byte, 300), nil)
	eng.Run(sim.Second)
	s := dev.Stats()
	if s.Writes != 3 {
		t.Fatalf("Writes = %d, want 3", s.Writes)
	}
	if s.Bytes != 600 {
		t.Fatalf("Bytes = %d, want 600", s.Bytes)
	}
	if s.WritesPerGen[0] != 1 || s.WritesPerGen[1] != 2 {
		t.Fatalf("WritesPerGen = %v", s.WritesPerGen)
	}
	// Stats must be a copy.
	s.WritesPerGen[0] = 99
	if dev.Stats().WritesPerGen[0] != 1 {
		t.Fatal("Stats map aliases internal state")
	}
}

func TestCrashImageExcludesInFlight(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, 10*sim.Millisecond)
	a := dev.Alloc(0)
	b := dev.Alloc(0)
	dev.Write(a, []byte("durable"), nil)
	eng.Run(10 * sim.Millisecond)
	dev.Write(b, []byte("lost"), nil)
	eng.Run(eng.Now() + 1) // crash 1µs later: b's write in flight

	var seen []BlockID
	dev.RangeDurable(func(id BlockID, gen int, data []byte) bool {
		seen = append(seen, id)
		return true
	})
	if len(seen) != 1 || seen[0] != a {
		t.Fatalf("crash image contains %v, want only block %d", seen, a)
	}
}

func TestRangeDurableDeterministicOrder(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	var ids []BlockID
	for i := 0; i < 10; i++ {
		id := dev.Alloc(i % 2)
		ids = append(ids, id)
		dev.Write(id, []byte{byte(i)}, nil)
	}
	eng.Run(sim.Second)
	var got []BlockID
	dev.RangeDurable(func(id BlockID, gen int, data []byte) bool {
		got = append(got, id)
		return true
	})
	if len(got) != len(ids) {
		t.Fatalf("RangeDurable visited %d blocks, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("RangeDurable order %v, want allocation order %v", got, ids)
		}
	}
	// Early stop.
	n := 0
	dev.RangeDurable(func(BlockID, int, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("RangeDurable after false: %d visits", n)
	}
}

func TestWriteCopiesCallerBuffer(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	id := dev.Alloc(0)
	buf := []byte("original")
	dev.Write(id, buf, nil)
	copy(buf, "clobber!")
	eng.Run(sim.Second)
	if string(dev.Read(id)) != "original" {
		t.Fatalf("device aliased caller buffer: %q", dev.Read(id))
	}
}

// scriptedInjector replays a fixed list of verdicts, clean after that.
type scriptedInjector struct {
	faults []WriteFault
	calls  int
}

func (s *scriptedInjector) BlockWriteFault(gen, size int) WriteFault {
	s.calls++
	if len(s.faults) == 0 {
		return WriteFault{}
	}
	f := s.faults[0]
	s.faults = s.faults[1:]
	return f
}

func TestInjectedTransientFailure(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, 10*sim.Millisecond)
	dev.SetInjector(&scriptedInjector{faults: []WriteFault{{Fail: true}}})
	id := dev.Alloc(0)
	dev.Write(id, []byte("first"), nil)
	eng.Run(sim.Millisecond)
	dev.Write(dev.Alloc(0), []byte("x"), nil) // sanity: injector consulted per write

	var gotErr error
	calls := 0
	id2 := dev.Alloc(0)
	eng.Run(sim.Second)
	dev.Write(id2, []byte("later"), func(err error) { gotErr = err; calls++ })
	eng.Run(2 * sim.Second)

	if dev.Read(id) != nil {
		t.Fatalf("failed write left contents %q", dev.Read(id))
	}
	if gotErr != nil || calls != 1 {
		t.Fatalf("post-fault write: err=%v calls=%d", gotErr, calls)
	}
	s := dev.Stats()
	if s.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", s.Failed)
	}
	if s.Writes != 3 {
		t.Fatalf("Writes = %d, want 3 (failed attempts count)", s.Writes)
	}
	if s.Bytes != 1+5 {
		t.Fatalf("Bytes = %d, want 6 (only durable bytes)", s.Bytes)
	}
}

func TestInjectedFailureReportsError(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, 10*sim.Millisecond)
	dev.SetInjector(&scriptedInjector{faults: []WriteFault{{Fail: true}}})
	id := dev.Alloc(0)
	var gotErr error
	dev.Write(id, []byte("doomed"), func(err error) { gotErr = err })
	eng.Run(sim.Second)
	if gotErr != ErrWriteFault {
		t.Fatalf("err = %v, want ErrWriteFault", gotErr)
	}
	// The block is reusable: a clean retry succeeds.
	dev.Write(id, []byte("retry"), func(err error) { gotErr = err })
	eng.Run(2 * sim.Second)
	if gotErr != nil || string(dev.Read(id)) != "retry" {
		t.Fatalf("retry: err=%v contents=%q", gotErr, dev.Read(id))
	}
}

func TestInjectedLatencyInflation(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, 10*sim.Millisecond)
	dev.SetInjector(&scriptedInjector{faults: []WriteFault{{Extra: 35 * sim.Millisecond}}})
	id := dev.Alloc(0)
	var doneAt sim.Time = -1
	dev.Write(id, []byte("slow"), func(error) { doneAt = eng.Now() })
	eng.Run(sim.Second)
	if doneAt != 45*sim.Millisecond {
		t.Fatalf("slow write completed at %v, want 45ms", doneAt)
	}
}

func TestInjectedSilentCorruption(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	dev.SetInjector(&scriptedInjector{faults: []WriteFault{{CorruptOff: 2, CorruptMask: 0xFF}}})
	id := dev.Alloc(0)
	var gotErr error = ErrWriteFault
	dev.Write(id, []byte{1, 2, 3, 4}, func(err error) { gotErr = err })
	eng.Run(sim.Second)
	if gotErr != nil {
		t.Fatalf("silent corruption surfaced an error: %v", gotErr)
	}
	want := []byte{1, 2, 3 ^ 0xFF, 4}
	if got := dev.Read(id); string(got) != string(want) {
		t.Fatalf("corrupted image %v, want %v", got, want)
	}
}

func TestTearOldestInFlight(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, 10*sim.Millisecond)
	a, b := dev.Alloc(0), dev.Alloc(0)
	// Give block a previous contents so the torn suffix has old bytes.
	dev.Write(a, []byte("OLDOLDOLD!"), nil)
	eng.Run(10 * sim.Millisecond)
	dev.Write(a, []byte("newnewnew!"), nil) // oldest in flight
	eng.Run(eng.Now() + sim.Millisecond)
	dev.Write(b, []byte("second"), nil) // younger in flight

	id, ok := dev.TearOldestInFlight(0.5)
	if !ok || id != a {
		t.Fatalf("tore block %d (ok=%v), want oldest %d", id, ok, a)
	}
	// 5 of 10 new bytes reach disk; the suffix keeps the old contents.
	if got, want := string(dev.Read(a)), "newne"+"DOLD!"; got != want {
		t.Fatalf("torn image %q, want %q", got, want)
	}
	if dev.Read(b) != nil {
		t.Fatal("younger in-flight write leaked into the crash image")
	}
}

func TestTearFullFraction(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, 10*sim.Millisecond)
	id := dev.Alloc(0)
	dev.Write(id, []byte("complete"), nil)
	eng.Run(sim.Millisecond)
	torn, ok := dev.TearOldestInFlight(1.0)
	if !ok || torn != id {
		t.Fatalf("tear: %d, %v", torn, ok)
	}
	if string(dev.Read(id)) != "complete" {
		t.Fatalf("frac=1 image %q, want full contents", dev.Read(id))
	}
}

func TestTearNothingInFlight(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	id := dev.Alloc(0)
	dev.Write(id, []byte("x"), nil)
	eng.Run(sim.Second)
	if _, ok := dev.TearOldestInFlight(0.5); ok {
		t.Fatal("tear succeeded with nothing in flight")
	}
	if dev.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", dev.InFlight())
	}
}

func TestGenLookup(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	id := dev.Alloc(3)
	if dev.Gen(id) != 3 {
		t.Fatalf("Gen = %d, want 3", dev.Gen(id))
	}
	if dev.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d", dev.NumBlocks())
	}
}
