package blockdev

import (
	"testing"

	"ellog/internal/sim"
)

func TestWriteBecomesDurableAfterLatency(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, 15*sim.Millisecond)
	id := dev.Alloc(0)
	var doneAt sim.Time = -1
	dev.Write(id, []byte("hello"), func() { doneAt = eng.Now() })

	eng.Run(14 * sim.Millisecond)
	if dev.Read(id) != nil {
		t.Fatal("block durable before latency elapsed")
	}
	if !dev.Pending(id) {
		t.Fatal("write not pending mid-flight")
	}
	eng.Run(15 * sim.Millisecond)
	if string(dev.Read(id)) != "hello" {
		t.Fatalf("durable contents %q", dev.Read(id))
	}
	if doneAt != 15*sim.Millisecond {
		t.Fatalf("done callback at %v, want 15ms", doneAt)
	}
	if dev.Pending(id) {
		t.Fatal("write still pending after completion")
	}
}

func TestRewriteReplacesContents(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	id := dev.Alloc(1)
	dev.Write(id, []byte("old"), nil)
	eng.Run(sim.Millisecond)
	dev.Write(id, []byte("new"), nil)
	// Before the second write completes, old bytes remain (atomic blocks).
	if string(dev.Read(id)) != "old" {
		t.Fatalf("mid-rewrite contents %q, want old", dev.Read(id))
	}
	eng.Run(2 * sim.Millisecond)
	if string(dev.Read(id)) != "new" {
		t.Fatalf("contents %q after rewrite", dev.Read(id))
	}
}

func TestOverlappingWritesPanic(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	id := dev.Alloc(0)
	dev.Write(id, []byte("a"), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping write did not panic")
		}
	}()
	dev.Write(id, []byte("b"), nil)
}

func TestWriteToUnallocatedPanics(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("write to unallocated block did not panic")
		}
	}()
	dev.Write(42, []byte("x"), nil)
}

func TestStatsPerGeneration(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	g0 := dev.Alloc(0)
	g1a := dev.Alloc(1)
	g1b := dev.Alloc(1)
	dev.Write(g0, make([]byte, 100), nil)
	dev.Write(g1a, make([]byte, 200), nil)
	dev.Write(g1b, make([]byte, 300), nil)
	eng.Run(sim.Second)
	s := dev.Stats()
	if s.Writes != 3 {
		t.Fatalf("Writes = %d, want 3", s.Writes)
	}
	if s.Bytes != 600 {
		t.Fatalf("Bytes = %d, want 600", s.Bytes)
	}
	if s.WritesPerGen[0] != 1 || s.WritesPerGen[1] != 2 {
		t.Fatalf("WritesPerGen = %v", s.WritesPerGen)
	}
	// Stats must be a copy.
	s.WritesPerGen[0] = 99
	if dev.Stats().WritesPerGen[0] != 1 {
		t.Fatal("Stats map aliases internal state")
	}
}

func TestCrashImageExcludesInFlight(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, 10*sim.Millisecond)
	a := dev.Alloc(0)
	b := dev.Alloc(0)
	dev.Write(a, []byte("durable"), nil)
	eng.Run(10 * sim.Millisecond)
	dev.Write(b, []byte("lost"), nil)
	eng.Run(eng.Now() + 1) // crash 1µs later: b's write in flight

	var seen []BlockID
	dev.RangeDurable(func(id BlockID, gen int, data []byte) bool {
		seen = append(seen, id)
		return true
	})
	if len(seen) != 1 || seen[0] != a {
		t.Fatalf("crash image contains %v, want only block %d", seen, a)
	}
}

func TestRangeDurableDeterministicOrder(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	var ids []BlockID
	for i := 0; i < 10; i++ {
		id := dev.Alloc(i % 2)
		ids = append(ids, id)
		dev.Write(id, []byte{byte(i)}, nil)
	}
	eng.Run(sim.Second)
	var got []BlockID
	dev.RangeDurable(func(id BlockID, gen int, data []byte) bool {
		got = append(got, id)
		return true
	})
	if len(got) != len(ids) {
		t.Fatalf("RangeDurable visited %d blocks, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("RangeDurable order %v, want allocation order %v", got, ids)
		}
	}
	// Early stop.
	n := 0
	dev.RangeDurable(func(BlockID, int, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("RangeDurable after false: %d visits", n)
	}
}

func TestWriteCopiesCallerBuffer(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	id := dev.Alloc(0)
	buf := []byte("original")
	dev.Write(id, buf, nil)
	copy(buf, "clobber!")
	eng.Run(sim.Second)
	if string(dev.Read(id)) != "original" {
		t.Fatalf("device aliased caller buffer: %q", dev.Read(id))
	}
}

func TestGenLookup(t *testing.T) {
	eng := sim.NewEngine(1, 2)
	dev := New(eng, sim.Millisecond)
	id := dev.Alloc(3)
	if dev.Gen(id) != 3 {
		t.Fatalf("Gen = %d, want 3", dev.Gen(id))
	}
	if dev.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d", dev.NumBlocks())
	}
}
