// Package adaptive implements the sizing controller the paper wishes for
// in its concluding remarks: "The optimal number of generations and their
// sizes depends on the application. ... Ideally, we would like an
// adaptable version of EL that dynamically chooses the number and sizes of
// generations itself" (section 6).
//
// The controller polls the logging manager's per-generation pressure once
// per epoch and resizes online:
//
//   - a generation that killed transactions or needed emergency blocks
//     grows immediately (kills are the signal the paper's own minimum-space
//     methodology uses);
//   - a generation whose peak occupancy left more slack than the target
//     margin shrinks gradually, reclaiming disk without risking kills.
//
// Growth is multiplicative-ish (pressure-proportional plus a boost) and
// shrinking is additive and slow, so the controller converges to a stable
// size just above the workload's true requirement — the knob a DBA would
// otherwise have to find by trial and error.
package adaptive

import (
	"fmt"

	"ellog/internal/core"
	"ellog/internal/sim"
)

// Config tunes the controller.
type Config struct {
	// Epoch is the observation interval (default 5 s).
	Epoch sim.Time
	// Margin is the slack in blocks, beyond the threshold gap, that a
	// generation should retain at peak (default 3).
	Margin int
	// MaxShrink bounds how many blocks one epoch may reclaim from one
	// generation (default 2).
	MaxShrink int
	// GrowBoost is the extra growth applied on any kill signal, on top of
	// one block per kill/emergency (default 2).
	GrowBoost int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Epoch == 0 {
		c.Epoch = 5 * sim.Second
	}
	if c.Margin == 0 {
		c.Margin = 3
	}
	if c.MaxShrink == 0 {
		c.MaxShrink = 2
	}
	if c.GrowBoost == 0 {
		c.GrowBoost = 2
	}
	return c
}

// Decision records one epoch's actions for one generation.
type Decision struct {
	At       sim.Time
	Gen      int
	Grown    int
	Shrunk   int
	Kills    uint64
	PeakUsed int
	Size     int // size after the action
}

// Controller resizes a manager's generations online.
type Controller struct {
	eng *sim.Engine
	lm  *core.Manager
	cfg Config

	decisions  []Decision
	grownTotal int
	shrunk     int
}

// Attach starts a controller on the manager; it reschedules itself every
// epoch until the engine stops running events.
func Attach(eng *sim.Engine, lm *core.Manager, cfg Config) *Controller {
	c := &Controller{eng: eng, lm: lm, cfg: cfg.WithDefaults()}
	lm.EpochStats() // reset counters at attach time
	eng.After(c.cfg.Epoch, c.tick)
	return c
}

// forwardThreshold is the fraction of a generation's inflow that may be
// forwarded onward before the controller treats the generation itself as
// undersized: a healthy generation 0 lets short transactions' records die
// in place, so most of its traffic should *not* survive to the next
// generation.
const forwardThreshold = 0.3

func (c *Controller) tick() {
	stats := c.lm.EpochStats()
	grown := make([]int, len(stats))

	// Growth: kills and emergency blocks signal an undersized log, but the
	// root cause may sit upstream — a too-small young generation forwards
	// still-hot records into its elder, which then overflows. Grow the
	// youngest generation whose forward ratio is excessive, else the
	// pressured generation itself. Growth is capped at half the current
	// size so one bad epoch cannot overshoot past the sweet spot.
	for i, gs := range stats {
		pressure := int(gs.Kills + gs.Emergency)
		if pressure == 0 {
			continue
		}
		target := i
		for j := 0; j < i; j++ {
			if stats[j].In > 20 && float64(stats[j].Out)/float64(stats[j].In) > forwardThreshold {
				target = j
				break
			}
		}
		n := pressure + c.cfg.GrowBoost
		if cap := c.lm.GenSize(target)/2 + 1; n > cap {
			n = cap
		}
		c.lm.GrowGeneration(target, n)
		grown[target] += n
		c.grownTotal += n
		c.decisions = append(c.decisions, Decision{
			At: c.eng.Now(), Gen: target, Grown: n, Kills: gs.Kills,
			PeakUsed: gs.PeakUsed, Size: c.lm.GenSize(target),
		})
	}

	// Shrinking: a generation truly needs (residence time of its records) x
	// (fill rate) blocks, plus the threshold gap and margin. Residence is
	// estimated from the garbage-age distribution: the age by which nearly
	// all of the generation's records have died in place. Records that
	// survive longer are exactly the ones forwarding or recirculation is
	// for, so they do not inflate the estimate — unlike raw occupancy,
	// which a single long transaction anchors indefinitely.
	k := c.lm.Params().ThresholdK
	last := len(stats) - 1
	for i, gs := range stats {
		if grown[i] > 0 || gs.Kills+gs.Emergency > 0 {
			continue
		}
		if gs.AgeSamples < 20 || gs.Claims == 0 {
			continue // not enough signal this epoch
		}
		age := gs.AgeQ90
		if i == last {
			// The last generation has no further generation to catch what
			// it evicts; cover nearly everything it retires.
			age = gs.AgeQ99
		}
		fillRate := float64(gs.Claims) / c.cfg.Epoch.Seconds()
		required := int(age.Seconds()*fillRate) + 1 + k + c.cfg.Margin
		if required < core.MinBlocksAdaptive {
			required = core.MinBlocksAdaptive
		}
		slack := c.lm.GenSize(i) - required
		if slack <= 0 {
			continue
		}
		want := slack
		if want > c.cfg.MaxShrink {
			want = c.cfg.MaxShrink
		}
		got := c.lm.ShrinkGeneration(i, want)
		if got > 0 {
			c.shrunk += got
			c.decisions = append(c.decisions, Decision{
				At: c.eng.Now(), Gen: i, Shrunk: got,
				PeakUsed: gs.PeakUsed, Size: c.lm.GenSize(i),
			})
		}
	}
	c.eng.After(c.cfg.Epoch, c.tick)
}

// ProbeRegistry is the subset of the observability sampler the
// controller registers against — declared locally so this package does
// not depend on the observability layer (*obs.Sampler satisfies it).
type ProbeRegistry interface {
	Register(name string, fn func() float64)
}

// RegisterProbes exposes the controller's activity as sampled series:
// cumulative blocks grown/shrunk and the decision count, so a probe dump
// shows *when* the controller resized, not just the end-of-run totals
// (generation sizes themselves are standard probes already).
func (c *Controller) RegisterProbes(r ProbeRegistry) {
	r.Register("adaptive/grown_blocks", func() float64 { return float64(c.grownTotal) })
	r.Register("adaptive/shrunk_blocks", func() float64 { return float64(c.shrunk) })
	r.Register("adaptive/decisions", func() float64 { return float64(len(c.decisions)) })
}

// Decisions returns the resize history.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Grown and Shrunk report total blocks added and removed.
func (c *Controller) Grown() int  { return c.grownTotal }
func (c *Controller) Shrunk() int { return c.shrunk }

// Sizes returns the current generation sizes.
func (c *Controller) Sizes() []int {
	out := make([]int, c.lm.NumGenerations())
	for i := range out {
		out[i] = c.lm.GenSize(i)
	}
	return out
}

// String summarizes the controller's activity.
func (c *Controller) String() string {
	return fmt.Sprintf("adaptive: sizes %v after +%d/-%d blocks over %d decisions",
		c.Sizes(), c.grownTotal, c.shrunk, len(c.decisions))
}
